package birp_test

import (
	"math/rand"
	"testing"

	birp "repro"
)

// TestFuzzFacadePipelines runs randomized end-to-end configurations through
// the public API with strict-mode semantics approximated by checking the
// Violations list: random topologies (including custom TPU/NX mixes), random
// catalogue shapes, random load regimes and schedulers must all produce
// clean, accountable runs.
func TestFuzzFacadePipelines(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		// Random topology: 2–4 edges from the device library.
		lib := []birp.EdgeSpec{
			{Device: birp.JetsonNano},
			{Device: birp.JetsonNX},
			{Device: birp.Atlas200DK},
			{Device: birp.EdgeTPU, MemoryMB: 1000},
		}
		n := 2 + rng.Intn(3)
		specs := make([]birp.EdgeSpec, n)
		for i := range specs {
			specs[i] = lib[rng.Intn(len(lib))]
		}
		c, err := birp.CustomCluster(specs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		apps := birp.Catalogue(1+rng.Intn(3), 2+rng.Intn(2))

		var sched birp.Scheduler
		switch rng.Intn(3) {
		case 0:
			sched, err = birp.NewBIRP(c, apps, birp.SchedulerOptions{})
		case 1:
			sched, err = birp.NewOAEI(c, apps, birp.SchedulerOptions{Seed: int64(trial)})
		default:
			sched, err = birp.NewMAX(c, apps, birp.SchedulerOptions{B0: 8})
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		tr, err := birp.GenerateTrace(birp.TraceConfig{
			Apps: len(apps), Edges: c.N(), Slots: 6, Seed: int64(trial),
			MeanPerSlot: 2 + rng.Float64()*48, Imbalance: rng.Float64(),
			BurstProb: 0.1, BurstScale: 2,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sim, err := birp.NewSimulator(c, apps, 0.03, int64(trial))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := sim.Run(sched, tr.R)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, sched.Name(), err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("trial %d (%s): %s", trial, sched.Name(), res.Violations[0])
		}
		if res.Served+res.Dropped != tr.Total() {
			t.Fatalf("trial %d (%s): served %d + dropped %d != arrivals %d",
				trial, sched.Name(), res.Served, res.Dropped, tr.Total())
		}
		if res.EnergyJ <= 0 {
			t.Fatalf("trial %d: non-positive energy %v", trial, res.EnergyJ)
		}
	}
}
