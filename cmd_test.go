package birp_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildOnce compiles every CLI into a shared temp dir so integration tests
// exercise the real binaries.
var (
	buildDir  string
	buildErr  error
	buildLock sync.Once
)

func binaries(t *testing.T) string {
	t.Helper()
	buildLock.Do(func() {
		dir, err := os.MkdirTemp("", "birp-bins-")
		if err != nil {
			buildErr = err
			return
		}
		for _, tool := range []string{"birpsim", "birpbench", "birpsched", "birpedge", "tirprofile"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("building %s: %v\n%s", tool, err, out)
				return
			}
		}
		buildDir = dir
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIBirpsim(t *testing.T) {
	out := runTool(t, "birpsim", "-small", "-apps", "1", "-versions", "3", "-slots", "10", "-mean", "40")
	for _, want := range []string{"algorithm", "BIRP", "requests served", "SLO failures"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCLIBirpsimTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	out1 := runTool(t, "birpsim", "-small", "-apps", "1", "-versions", "3",
		"-slots", "8", "-mean", "30", "-trace-out", trace)
	if !strings.Contains(out1, "trace saved") {
		t.Fatalf("no save confirmation:\n%s", out1)
	}
	out2 := runTool(t, "birpsim", "-small", "-apps", "1", "-versions", "3", "-trace-in", trace)
	// Replay must serve the identical request count.
	line := func(out string) string {
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, "requests served") {
				return l
			}
		}
		return ""
	}
	if line(out1) == "" || line(out1) != line(out2) {
		t.Fatalf("replay differs:\n%s\nvs\n%s", line(out1), line(out2))
	}
}

func TestCLIBirpbenchQuick(t *testing.T) {
	out := runTool(t, "birpbench", "-exp", "table1,fig2", "-quick")
	for _, want := range []string{"Table 1", "Fig. 2", "LeNet", "ResNet-18"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestCLITirprofile(t *testing.T) {
	out := runTool(t, "tirprofile", "-device", "atlas", "-maxb", "8", "-reps", "3")
	if !strings.Contains(out, "Atlas 200DK") || !strings.Contains(out, "TIR(b)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIDistributedPair(t *testing.T) {
	dir := binaries(t)
	// Pick a free port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	sched := exec.Command(filepath.Join(dir, "birpsched"),
		"-listen", addr, "-small", "-apps", "1", "-versions", "2", "-slots", "5")
	schedOut := &strings.Builder{}
	sched.Stdout = schedOut
	sched.Stderr = schedOut
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // listener startup

	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			agent := exec.Command(filepath.Join(dir, "birpedge"),
				"-addr", addr, "-edge", fmt.Sprint(k), "-small",
				"-apps", "1", "-versions", "2", "-slots", "5", "-mean", "20")
			if out, err := agent.CombinedOutput(); err != nil {
				t.Errorf("agent %d: %v\n%s", k, err, out)
			}
		}(k)
	}
	done := make(chan error, 1)
	go func() { done <- sched.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("scheduler: %v\n%s", err, schedOut.String())
		}
	case <-time.After(60 * time.Second):
		_ = sched.Process.Kill()
		t.Fatalf("distributed pair timed out\n%s", schedOut.String())
	}
	wg.Wait()
	if !strings.Contains(schedOut.String(), "done: served") {
		t.Fatalf("scheduler summary missing:\n%s", schedOut.String())
	}
}
