package birp_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildOnce compiles every CLI into a shared temp dir so integration tests
// exercise the real binaries.
var (
	buildDir  string
	buildErr  error
	buildLock sync.Once
)

func binaries(t *testing.T) string {
	t.Helper()
	buildLock.Do(func() {
		dir, err := os.MkdirTemp("", "birp-bins-")
		if err != nil {
			buildErr = err
			return
		}
		for _, tool := range []string{"birpsim", "birpbench", "birpsched", "birpedge", "birpserve", "tirprofile"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("building %s: %v\n%s", tool, err, out)
				return
			}
		}
		buildDir = dir
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

// runToolErr runs a CLI expected to fail, returning its combined output and
// exit error for the flag-validation tests.
func runToolErr(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIBirpsim(t *testing.T) {
	out := runTool(t, "birpsim", "-small", "-apps", "1", "-versions", "3", "-slots", "10", "-mean", "40")
	for _, want := range []string{"algorithm", "BIRP", "requests served", "SLO failures"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCLIBirpsimTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	out1 := runTool(t, "birpsim", "-small", "-apps", "1", "-versions", "3",
		"-slots", "8", "-mean", "30", "-trace-out", trace)
	if !strings.Contains(out1, "trace saved") {
		t.Fatalf("no save confirmation:\n%s", out1)
	}
	out2 := runTool(t, "birpsim", "-small", "-apps", "1", "-versions", "3", "-trace-in", trace)
	// Replay must serve the identical request count.
	line := func(out string) string {
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, "requests served") {
				return l
			}
		}
		return ""
	}
	if line(out1) == "" || line(out1) != line(out2) {
		t.Fatalf("replay differs:\n%s\nvs\n%s", line(out1), line(out2))
	}
}

func TestCLIBirpbenchQuick(t *testing.T) {
	out := runTool(t, "birpbench", "-exp", "table1,fig2", "-quick")
	for _, want := range []string{"Table 1", "Fig. 2", "LeNet", "ResNet-18"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestCLITirprofile(t *testing.T) {
	out := runTool(t, "tirprofile", "-device", "atlas", "-maxb", "8", "-reps", "3")
	if !strings.Contains(out, "Atlas 200DK") || !strings.Contains(out, "TIR(b)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCLIBirpserveReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	log1 := filepath.Join(dir, "w1.log")
	log4 := filepath.Join(dir, "w4.log")
	jsonOut := filepath.Join(dir, "serve.json")
	common := []string{"-gen", "2000", "-seed", "3", "-policy", "token-bucket",
		"-cap", "32", "-rate", "16", "-route", "least-loaded"}
	out := runTool(t, "birpserve", append(common, "-workers", "1", "-log", log1, "-json", jsonOut)...)
	if !strings.Contains(out, "replay: submitted 2000") {
		t.Fatalf("summary missing:\n%s", out)
	}
	runTool(t, "birpserve", append(common, "-workers", "4", "-log", log4)...)
	b1, err := os.ReadFile(log1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := os.ReadFile(log4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 || string(b1) != string(b4) {
		t.Fatalf("decision logs differ across -workers 1 vs 4 (%d vs %d bytes)", len(b1), len(b4))
	}
	var js struct {
		Submitted  int64   `json:"submitted"`
		Admitted   int64   `json:"admitted"`
		Rejected   int64   `json:"rejected"`
		StaleMax   float64 `json:"stale_max_ms"`
		StaleBound float64 `json:"stale_bound_ms"`
	}
	buf, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &js); err != nil {
		t.Fatalf("%v in %s", err, buf)
	}
	if js.Submitted != js.Admitted+js.Rejected {
		t.Fatalf("accounting leak in JSON: %d != %d + %d", js.Submitted, js.Admitted, js.Rejected)
	}
	if js.StaleMax > js.StaleBound {
		t.Fatalf("staleness bound violated: max %.1fms > bound %.1fms", js.StaleMax, js.StaleBound)
	}
}

func TestCLIBirpserveDaemonCleanShutdown(t *testing.T) {
	dir := binaries(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	daemon := exec.Command(filepath.Join(dir, "birpserve"), "-listen", addr, "-apps", "1")
	outBuf := &strings.Builder{}
	daemon.Stdout = outBuf
	daemon.Stderr = outBuf
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	var conn net.Conn
	for i := 0; i < 50; i++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		_ = daemon.Process.Kill()
		t.Fatalf("daemon never listened: %v\n%s", err, outBuf.String())
	}
	for q := 0; q < 3; q++ {
		fmt.Fprintf(conn, `{"id":%d,"app":0,"region":%d}`+"\n", q, q%3)
	}
	scan := make([]byte, 4096)
	total := ""
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for strings.Count(total, "\n") < 3 {
		n, err := conn.Read(scan)
		if err != nil {
			t.Fatalf("reading decisions: %v (got %q)", err, total)
		}
		total += string(scan[:n])
	}
	if !strings.Contains(total, `"admit":true`) {
		t.Fatalf("no admissions in daemon replies: %q", total)
	}
	conn.Close()
	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, outBuf.String())
		}
	case <-time.After(15 * time.Second):
		_ = daemon.Process.Kill()
		t.Fatalf("daemon did not shut down on SIGINT\n%s", outBuf.String())
	}
	if !strings.Contains(outBuf.String(), "daemon: submitted 3 admitted 3") {
		t.Fatalf("daemon summary missing:\n%s", outBuf.String())
	}
}

// TestCLIFlagValidationFailsFast pins the satellite audit: flag values that
// used to be silently reinterpreted (negative -domains meant "monolithic",
// unknown -exp names ran nothing and exited 0) now exit nonzero with one
// clear message listing every problem.
func TestCLIFlagValidationFailsFast(t *testing.T) {
	cases := []struct {
		tool string
		args []string
		want string
	}{
		{"birpsched", []string{"-listen", "127.0.0.1:0", "-domains", "-3"}, "-domains -3"},
		{"birpbench", []string{"-exp", "fig77", "-quick"}, `unknown name "fig77"`},
		{"birpserve", []string{"-policy", "token-bucket", "-rate", "0", "-gen", "10"}, "-rate 0"},
		{"birpserve", []string{"-policy", "lottery"}, "-policy"},
	}
	for _, tc := range cases {
		out, err := runToolErr(t, tc.tool, tc.args...)
		if err == nil {
			t.Fatalf("%s %v: accepted invalid flags:\n%s", tc.tool, tc.args, out)
		}
		if !strings.Contains(out, "invalid flags") || !strings.Contains(out, tc.want) {
			t.Fatalf("%s %v: message missing %q:\n%s", tc.tool, tc.args, tc.want, out)
		}
	}
}

func TestCLIDistributedPair(t *testing.T) {
	dir := binaries(t)
	// Pick a free port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	sched := exec.Command(filepath.Join(dir, "birpsched"),
		"-listen", addr, "-small", "-apps", "1", "-versions", "2", "-slots", "5")
	schedOut := &strings.Builder{}
	sched.Stdout = schedOut
	sched.Stderr = schedOut
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // listener startup

	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			agent := exec.Command(filepath.Join(dir, "birpedge"),
				"-addr", addr, "-edge", fmt.Sprint(k), "-small",
				"-apps", "1", "-versions", "2", "-slots", "5", "-mean", "20")
			if out, err := agent.CombinedOutput(); err != nil {
				t.Errorf("agent %d: %v\n%s", k, err, out)
			}
		}(k)
	}
	done := make(chan error, 1)
	go func() { done <- sched.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("scheduler: %v\n%s", err, schedOut.String())
		}
	case <-time.After(60 * time.Second):
		_ = sched.Process.Kill()
		t.Fatalf("distributed pair timed out\n%s", schedOut.String())
	}
	wg.Wait()
	if !strings.Contains(schedOut.String(), "done: served") {
		t.Fatalf("scheduler summary missing:\n%s", schedOut.String())
	}
}
