package birp_test

import (
	"fmt"

	birp "repro"
)

// Example demonstrates the minimal end-to-end loop: build the paper's
// small-scale cluster, run BIRP on a deterministic workload, read the
// metrics. Deterministic (noise 0), so the output is stable.
func Example() {
	cluster := birp.SmallCluster()
	apps := birp.Catalogue(1, 3)
	sched, err := birp.NewBIRP(cluster, apps, birp.SchedulerOptions{})
	if err != nil {
		panic(err)
	}
	trace, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 1, Edges: cluster.N(), Slots: 5, Seed: 7, MeanPerSlot: 10,
	})
	if err != nil {
		panic(err)
	}
	sim, err := birp.NewSimulator(cluster, apps, 0, 7)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(sched, trace.R)
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d requests, dropped %d, SLO failures %.0f%%\n",
		res.Served, res.Dropped, 100*res.FailureRate())
	// Output: served 176 requests, dropped 0, SLO failures 0%
}

// ExampleTable1 regenerates the paper's Table 1 row structure.
func ExampleTable1() {
	rows := birp.Table1(nil)
	fmt.Printf("%d rows; first: %s on %s\n", len(rows), rows[0].Model, rows[0].Device)
	// Output: 8 rows; first: Yolov4-t on Jetson Nano
}

// ExampleFig2 fits the TIR laws of the Fig. 2 networks.
func ExampleFig2() {
	panels, err := birp.Fig2(nil, 1)
	if err != nil {
		panic(err)
	}
	for _, p := range panels {
		fmt.Printf("%s plateau %.2f\n", p.Model, p.Fit.C)
	}
	// Output:
	// LeNet plateau 1.62
	// GoogLeNet plateau 1.29
	// ResNet-18 plateau 1.26
}
