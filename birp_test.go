package birp_test

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	birp "repro"
)

func TestClusters(t *testing.T) {
	if n := birp.DefaultCluster().N(); n != 6 {
		t.Fatalf("default cluster has %d edges, want 6", n)
	}
	if n := birp.SmallCluster().N(); n != 3 {
		t.Fatalf("small cluster has %d edges, want 3", n)
	}
}

func TestCatalogueAndTrace(t *testing.T) {
	apps := birp.Catalogue(5, 5)
	if len(apps) != 5 || len(apps[0].Models) != 5 {
		t.Fatal("catalogue shape wrong")
	}
	cfg := birp.DefaultTraceConfig()
	tr, err := birp.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Slots != cfg.Slots {
		t.Fatalf("trace slots = %d", tr.Slots)
	}
}

func TestAllSchedulerConstructors(t *testing.T) {
	c := birp.SmallCluster()
	apps := birp.Catalogue(1, 3)
	mks := map[string]func() (birp.Scheduler, error){
		"BIRP":     func() (birp.Scheduler, error) { return birp.NewBIRP(c, apps, birp.SchedulerOptions{}) },
		"BIRP-OFF": func() (birp.Scheduler, error) { return birp.NewBIRPOff(c, apps, birp.SchedulerOptions{}) },
		"OAEI":     func() (birp.Scheduler, error) { return birp.NewOAEI(c, apps, birp.SchedulerOptions{Seed: 1}) },
		"MAX":      func() (birp.Scheduler, error) { return birp.NewMAX(c, apps, birp.SchedulerOptions{}) },
	}
	for want, mk := range mks {
		s, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if s.Name() != want {
			t.Fatalf("name = %q, want %q", s.Name(), want)
		}
	}
}

func TestEndToEndThroughFacade(t *testing.T) {
	c := birp.SmallCluster()
	apps := birp.Catalogue(1, 3)
	s, err := birp.NewBIRP(c, apps, birp.SchedulerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 1, Edges: c.N(), Slots: 10, Seed: 2, MeanPerSlot: 30, Imbalance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := birp.NewSimulator(c, apps, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(s, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestExperimentsThroughFacade(t *testing.T) {
	var sb strings.Builder
	rows := birp.Table1(&sb)
	if len(rows) != 8 || !strings.Contains(sb.String(), "Table 1") {
		t.Fatal("Table1 facade broken")
	}
	panels, err := birp.Fig2(io.Discard, 1)
	if err != nil || len(panels) != 3 {
		t.Fatalf("Fig2 facade broken: %v", err)
	}
	results, err := birp.Fig6(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 15})
	if err != nil || len(results) != 4 {
		t.Fatalf("Fig6 facade broken: %v", err)
	}
	pts, err := birp.PresetSweep(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 10}, []int{10})
	if err != nil || len(pts) == 0 {
		t.Fatalf("PresetSweep facade broken: %v", err)
	}
}

func TestDistributedThroughFacade(t *testing.T) {
	c := birp.SmallCluster()
	apps := birp.Catalogue(1, 2)
	slots := 3
	sched, err := birp.NewBIRP(c, apps, birp.SchedulerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := birp.NewSchedulerServer(birp.ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots, SlotTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{3 + k}
		}
		agent, err := birp.NewEdgeAgent(birp.AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = agent.Run(ctx)
		}()
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rep.Served == 0 {
		t.Fatal("distributed run served nothing")
	}
}

func TestCustomClusterThroughFacade(t *testing.T) {
	c, err := birp.CustomCluster([]birp.EdgeSpec{
		{Device: birp.JetsonNX},
		{Device: birp.EdgeTPU, MemoryMB: 900},
	}, birp.WithSlotSeconds(8))
	if err != nil {
		t.Fatal(err)
	}
	apps := birp.Catalogue(1, 2)
	s, err := birp.NewBIRP(c, apps, birp.SchedulerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := birp.NewSimulator(c, apps, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := birp.GenerateTrace(birp.TraceConfig{
		Apps: 1, Edges: 2, Slots: 5, Seed: 1, MeanPerSlot: 10,
	})
	res, err := sim.Run(s, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("custom cluster served nothing")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}
