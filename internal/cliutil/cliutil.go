// Package cliutil centralizes flag validation for the birp command family.
// Every binary funnels its parsed flags through a Checker so invalid or
// contradictory values fail fast with one clear, complete error message —
// instead of being silently reinterpreted the way `birpsched -domains -3`
// (negative count meant "monolithic") or `birpbench -exp fig77` (unknown
// names ran nothing and exited 0) used to be.
package cliutil

import (
	"fmt"
	"sort"
	"strings"
)

// Checker accumulates flag problems; Err joins them so the user sees every
// mistake in one run instead of fixing them one rerun at a time.
type Checker struct{ problems []string }

// Checkf records a problem when ok is false.
func (c *Checker) Checkf(ok bool, format string, args ...any) {
	if !ok {
		c.problems = append(c.problems, fmt.Sprintf(format, args...))
	}
}

// PositiveInt requires v > 0.
func (c *Checker) PositiveInt(name string, v int) {
	c.Checkf(v > 0, "-%s %d: must be > 0", name, v)
}

// NonNegativeInt requires v ≥ 0.
func (c *Checker) NonNegativeInt(name string, v int) {
	c.Checkf(v >= 0, "-%s %d: must be >= 0", name, v)
}

// PositiveFloat requires v > 0.
func (c *Checker) PositiveFloat(name string, v float64) {
	c.Checkf(v > 0, "-%s %g: must be > 0", name, v)
}

// NonNegativeFloat requires v ≥ 0.
func (c *Checker) NonNegativeFloat(name string, v float64) {
	c.Checkf(v >= 0, "-%s %g: must be >= 0", name, v)
}

// MinInt requires v ≥ min.
func (c *Checker) MinInt(name string, v, min int) {
	c.Checkf(v >= min, "-%s %d: must be >= %d", name, v, min)
}

// OneOf requires v to be one of the allowed literals.
func (c *Checker) OneOf(name, v string, allowed ...string) {
	for _, a := range allowed {
		if v == a {
			return
		}
	}
	c.Checkf(false, "-%s %q: must be one of %s", name, v, strings.Join(allowed, ", "))
}

// KnownNames requires every entry of a comma-separated list flag to be a
// known name (e.g. -exp experiment lists); unknown entries are reported
// against the sorted vocabulary.
func (c *Checker) KnownNames(name, list string, known map[string]bool) {
	var vocab []string
	for k := range known {
		vocab = append(vocab, k)
	}
	sort.Strings(vocab)
	for _, v := range strings.Split(list, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		c.Checkf(known[v], "-%s %q: unknown name %q (known: %s)", name, list, v, strings.Join(vocab, ", "))
	}
}

// Conflict records a problem when two flags contradict each other.
func (c *Checker) Conflict(conflicting bool, msg string) {
	c.Checkf(!conflicting, "%s", msg)
}

// Err returns nil when every check passed, or one error listing every
// problem found.
func (c *Checker) Err() error {
	if len(c.problems) == 0 {
		return nil
	}
	return fmt.Errorf("invalid flags:\n  %s", strings.Join(c.problems, "\n  "))
}
