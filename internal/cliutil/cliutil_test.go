package cliutil

import (
	"strings"
	"testing"
)

func TestCheckerPassesCleanFlags(t *testing.T) {
	var c Checker
	c.PositiveInt("apps", 3)
	c.NonNegativeInt("domains", 0)
	c.PositiveFloat("rate", 0.5)
	c.NonNegativeFloat("stale-ms", 0)
	c.MinInt("k", 2, 1)
	c.OneOf("policy", "token-bucket", "always", "token-bucket")
	c.KnownNames("exp", "fig1, fig7", map[string]bool{"fig1": true, "fig7": true})
	c.Conflict(false, "never fires")
	if err := c.Err(); err != nil {
		t.Fatalf("clean flags rejected: %v", err)
	}
}

func TestCheckerNumericBounds(t *testing.T) {
	cases := []struct {
		name string
		bad  func(c *Checker)
		want string
	}{
		{"positive-int", func(c *Checker) { c.PositiveInt("domains", -3) }, "-domains -3: must be > 0"},
		{"positive-int-zero", func(c *Checker) { c.PositiveInt("slots", 0) }, "-slots 0: must be > 0"},
		{"non-negative-int", func(c *Checker) { c.NonNegativeInt("workers", -1) }, "-workers -1: must be >= 0"},
		{"positive-float", func(c *Checker) { c.PositiveFloat("rate", 0) }, "-rate 0: must be > 0"},
		{"non-negative-float", func(c *Checker) { c.NonNegativeFloat("stale-ms", -2.5) }, "-stale-ms -2.5: must be >= 0"},
		{"min-int", func(c *Checker) { c.MinInt("cap", 0, 1) }, "-cap 0: must be >= 1"},
	}
	for _, tc := range cases {
		var c Checker
		tc.bad(&c)
		err := c.Err()
		if err == nil {
			t.Fatalf("%s: bad value accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: message %q missing %q", tc.name, err.Error(), tc.want)
		}
	}
}

func TestCheckerOneOf(t *testing.T) {
	var c Checker
	c.OneOf("route", "random", "round-robin", "least-loaded", "affinity")
	err := c.Err()
	if err == nil {
		t.Fatal("unknown literal accepted")
	}
	if !strings.Contains(err.Error(), "round-robin, least-loaded, affinity") {
		t.Fatalf("allowed set not listed: %v", err)
	}
}

func TestCheckerKnownNames(t *testing.T) {
	known := map[string]bool{"fig1": true, "fig7": true, "all": true}
	var c Checker
	c.KnownNames("exp", "fig1,bogus , fig7", known)
	err := c.Err()
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	// One problem for the single bad entry, vocabulary sorted.
	if got := strings.Count(err.Error(), "unknown name"); got != 1 {
		t.Fatalf("%d problems, want 1: %v", got, err)
	}
	if !strings.Contains(err.Error(), `"bogus" (known: all, fig1, fig7)`) {
		t.Fatalf("vocabulary not sorted in message: %v", err)
	}
	// Empty entries (trailing comma) are not errors.
	var c2 Checker
	c2.KnownNames("exp", "fig1,", known)
	if err := c2.Err(); err != nil {
		t.Fatalf("trailing comma rejected: %v", err)
	}
}

func TestCheckerConflictAndJoinedMessage(t *testing.T) {
	var c Checker
	c.PositiveInt("apps", 0)
	c.Conflict(true, "-a and -b are mutually exclusive")
	err := c.Err()
	if err == nil {
		t.Fatal("conflict not reported")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "invalid flags:") {
		t.Fatalf("missing header: %q", msg)
	}
	// Both problems must be present, each on its own indented line.
	if !strings.Contains(msg, "\n  -apps 0") || !strings.Contains(msg, "\n  -a and -b") {
		t.Fatalf("problems not joined: %q", msg)
	}
}
