package edgenet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Direction selects one side of a proxied link.
type Direction int

const (
	// Upstream is client → target (edge agent → scheduler).
	Upstream Direction = iota
	// Downstream is target → client (scheduler → edge agent).
	Downstream
)

// FaultProxy is a fault-injection TCP proxy: every connection accepted on
// its listen address is forwarded to a target address, with injectable
// faults in between. It is frame-aware — it parses the 4-byte length prefix
// of the edgenet protocol — so faults land on message boundaries:
//
//   - SetDelay: per-direction delivery delay on every frame (a slow edge);
//   - Partition: silently discard one direction's frames while the
//     connection stays open (an asymmetric network split);
//   - DropAfter: a fuse that hard-closes every active link after the next N
//     forwarded frames (a deterministic mid-protocol crash);
//   - KillConns: hard-close every active link now, keeping the listener up
//     so clients can reconnect (a process restart).
//
// It is the test substrate for the failure and rejoin paths; peers that do
// not speak the length-prefixed framing will stall in the frame parser.
type FaultProxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	delay     [2]time.Duration
	partition [2]bool
	// fuse counts forwarded frames until every link is cut (-1 = disarmed).
	fuse  int
	links map[*link]bool
	wg    sync.WaitGroup
}

// link is one proxied client↔target connection pair.
type link struct {
	client, server net.Conn
}

func (l *link) closeBoth() {
	_ = l.client.Close()
	_ = l.server.Close()
}

// NewFaultProxy listens on listen (e.g. "127.0.0.1:0") and forwards each
// accepted connection to target.
func NewFaultProxy(listen, target string) (*FaultProxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("edgenet: faultnet listen: %w", err)
	}
	p := &FaultProxy{ln: ln, target: target, fuse: -1, links: make(map[*link]bool)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (for clients to dial).
func (p *FaultProxy) Addr() net.Addr { return p.ln.Addr() }

// SetDelay delays every forwarded frame in dir by d (0 restores instant
// forwarding).
func (p *FaultProxy) SetDelay(dir Direction, d time.Duration) {
	p.mu.Lock()
	p.delay[dir] = d
	p.mu.Unlock()
}

// Partition turns the one-way partition in dir on or off: while on, frames
// in that direction are read and silently discarded, so the receiving side
// sees an open-but-silent peer.
func (p *FaultProxy) Partition(dir Direction, on bool) {
	p.mu.Lock()
	p.partition[dir] = on
	p.mu.Unlock()
}

// DropAfter arms the frame fuse: after n more forwarded frames (both
// directions, all links combined) every active link is hard-closed. n <= 0
// cuts on the very next frame before forwarding it. Connections made after
// the fuse blows forward normally until DropAfter is armed again.
func (p *FaultProxy) DropAfter(n int) {
	p.mu.Lock()
	if n < 0 {
		n = 0
	}
	p.fuse = n
	p.mu.Unlock()
}

// KillConns hard-closes every active link immediately, leaving the listener
// up so clients can reconnect.
func (p *FaultProxy) KillConns() {
	p.mu.Lock()
	for l := range p.links {
		l.closeBoth()
	}
	p.links = make(map[*link]bool)
	p.mu.Unlock()
}

// Close shuts down the listener and every active link, and waits for the
// forwarding goroutines to drain.
func (p *FaultProxy) Close() error {
	err := p.ln.Close()
	p.KillConns()
	p.wg.Wait()
	return err
}

func (p *FaultProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cl, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sv, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = cl.Close()
			continue
		}
		l := &link{client: cl, server: sv}
		p.mu.Lock()
		p.links[l] = true
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(l, Upstream, cl, sv)
		go p.pump(l, Downstream, sv, cl)
	}
}

// pump forwards frames from src to dst, applying the faults configured for
// dir; any read or write error tears the whole link down.
func (p *FaultProxy) pump(l *link, dir Direction, src, dst net.Conn) {
	defer p.wg.Done()
	defer p.dropLink(l)
	var hdr [4]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxMessageBytes {
			return
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(src, buf); err != nil {
			return
		}
		delay, drop, cutBefore, cutAfter := p.frameFate(dir)
		if delay > 0 {
			time.Sleep(delay)
		}
		if cutBefore {
			p.KillConns()
			return
		}
		if drop {
			continue
		}
		if _, err := dst.Write(hdr[:]); err != nil {
			return
		}
		if _, err := dst.Write(buf); err != nil {
			return
		}
		if cutAfter {
			p.KillConns()
			return
		}
	}
}

// frameFate consumes one frame's worth of fault state under the lock: the
// configured delay, whether the partition swallows the frame, and whether
// the fuse blows before or after forwarding it.
func (p *FaultProxy) frameFate(dir Direction) (delay time.Duration, drop, cutBefore, cutAfter bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delay = p.delay[dir]
	drop = p.partition[dir]
	if drop {
		return delay, drop, false, false // a swallowed frame never burns the fuse
	}
	switch {
	case p.fuse < 0:
	case p.fuse == 0:
		cutBefore = true
		p.fuse = -1 // disarm: the links are about to die
	default:
		p.fuse--
		if p.fuse == 0 {
			cutAfter = true
			p.fuse = -1
		}
	}
	return delay, drop, cutBefore, cutAfter
}

func (p *FaultProxy) dropLink(l *link) {
	p.mu.Lock()
	delete(p.links, l)
	p.mu.Unlock()
	l.closeBoth()
}
