package edgenet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/models"
)

// ServerConfig assembles a scheduler server.
type ServerConfig struct {
	// Listen is the TCP address ("127.0.0.1:0" for an ephemeral port).
	Listen string
	// Cluster and Apps define the system; EdgeID k in the protocol refers to
	// Cluster.Edges[k].
	Cluster *cluster.Cluster
	Apps    []*models.Application
	// Scheduler is the decision algorithm (BIRP, OAEI, ...).
	Scheduler edgesim.Scheduler
	// Slots is the number of scheduling rounds to run.
	Slots int
	// SlotTimeout bounds each protocol phase (0 = 30s).
	SlotTimeout time.Duration
	// TolerateFailures keeps the run alive when an edge agent dies or
	// violates the protocol: the dead edge is excluded from planning (via the
	// scheduler's SetEdgeDown, when supported), its in-flight assignments
	// count as drops, and the remaining edges absorb the load. The listener
	// stays open, so a restarted or reconnecting agent can rejoin: its hello
	// is answered with a resync at the next slot boundary, the down flag is
	// cleared, and work is routed back to it. Without TolerateFailures, any
	// agent failure aborts the run.
	TolerateFailures bool
	// ArrivalSource overrides the planning arrivals: when set, slot t plans
	// against ArrivalSource(t) — e.g. the online serving layer's drained
	// request window — instead of the agents' phase-1 reports. The phase-1
	// barrier still runs (agents stay in step and protocol violations are
	// still policed); the reported counts just stop feeding the optimizer.
	// The returned matrix must be apps×edges and non-negative or the run
	// aborts.
	ArrivalSource func(t int) [][]int
	// PlanHook observes every accepted plan before its assignments are
	// dispatched — the serving layer installs its routing snapshot here.
	PlanHook func(t int, plan *edgesim.Plan)
}

// EdgeDownMarker is implemented by schedulers that can exclude failed edges
// from planning (core.Scheduler does).
type EdgeDownMarker interface {
	SetEdgeDown(k int, down bool)
}

// Report aggregates a distributed run; it mirrors edgesim.Results so the two
// executors can be compared directly.
type Report struct {
	Scheduler  string
	Completion []float64
	Loss       metrics.LossAccumulator
	Served     int
	Dropped    int
	// Failures counts per-application SLO violations (drops included).
	Failures int
	// FailedEdges lists edges whose agents died mid-run (TolerateFailures),
	// in first-failure order.
	FailedEdges []int
	// RejoinedEdges lists edges that failed and later re-registered, in
	// first-rejoin order. An edge can appear in both lists.
	RejoinedEdges []int
	// DownSlots[k] counts the slots edge k spent excluded from planning
	// (from failure detection to rejoin, or to the end of the run).
	DownSlots []int
	// ServedByEdge[k] counts the requests edge k reported completed.
	ServedByEdge []int
}

// FailureRate returns the paper's p%.
func (r *Report) FailureRate() float64 {
	if len(r.Completion) == 0 {
		return 0
	}
	return float64(r.Failures) / float64(len(r.Completion))
}

// Server coordinates edge agents through the slot protocol.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	// serialPhases disables the concurrent phase collection (test hook: the
	// fold order is by edge id either way, so the Report must not change).
	serialPhases bool
	// mu guards the shutdown state: Close must sever any connection whose
	// hello is still being read, or the reading goroutine stays parked
	// until its SlotTimeout deadline (the shutdown race this fixes).
	mu      sync.Mutex
	closed  bool
	pending map[net.Conn]struct{} // conns mid-hello during registration
}

// NewServer binds the listen address; call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Cluster == nil || len(cfg.Apps) == 0 || cfg.Scheduler == nil {
		return nil, fmt.Errorf("edgenet: server needs cluster, apps, and scheduler")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("edgenet: non-positive slot count %d", cfg.Slots)
	}
	if cfg.SlotTimeout == 0 {
		cfg.SlotTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("edgenet: listen: %w", err)
	}
	return &Server{cfg: cfg, ln: ln, pending: map[net.Conn]struct{}{}}, nil
}

// Addr returns the bound listen address (for agents to dial).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the server down: it releases the listener and severs any
// connection whose registration hello is still in flight, so goroutines
// parked in a hello read unblock immediately instead of waiting out their
// deadline. Idempotent and safe to call concurrently with Run — repeated
// or post-Run calls return nil rather than a spurious "use of closed
// network connection".
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	err := s.ln.Close()
	for c := range s.pending {
		_ = c.Close()
	}
	s.mu.Unlock()
	if already || err == nil || errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// track registers a conn whose hello is being read; false once Close has
// begun (the caller must abandon the conn).
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.pending[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, c)
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// rejoinReq is a validated mid-run hello parked by the accept loop until the
// slot loop folds it in at a boundary.
type rejoinReq struct {
	k        int
	c        *conn
	lastSlot int
	resume   bool
}

// Run accepts one agent per edge, then drives the slot protocol to
// completion and returns the aggregated report. It honors ctx cancellation
// between phases. After initial registration the listener keeps accepting,
// so agents that died can re-register mid-run (see TolerateFailures).
func (s *Server) Run(ctx context.Context) (*Report, error) {
	defer func() { _ = s.Close() }()
	K := s.cfg.Cluster.N()
	conns := make([]*conn, K)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.close()
			}
		}
	}()

	if err := s.register(ctx, conns); err != nil {
		return nil, err
	}

	// Rejoin plumbing: a background accept loop keeps the listener alive so
	// dead agents can re-register; validated hellos are parked on rejoins
	// and folded in at the next slot boundary, keeping the protocol state
	// machine single-threaded.
	rejoins := make(chan rejoinReq, 4*K)
	acceptDone := make(chan struct{})
	go s.acceptRejoins(rejoins, acceptDone, K)
	defer func() {
		// Close the listener here (not just in Run's outer defer, which runs
		// too late) so the accept loop exits, then release parked conns.
		_ = s.Close()
		<-acceptDone
		for {
			select {
			case r := <-rejoins:
				r.c.close()
			default:
				return
			}
		}
	}()

	rep := &Report{
		Scheduler:    s.cfg.Scheduler.Name(),
		DownSlots:    make([]int, K),
		ServedByEdge: make([]int, K),
	}
	slotMS := s.cfg.Cluster.SlotMS()
	I := len(s.cfg.Apps)
	maxLoss := make([]float64, I)
	for i, app := range s.cfg.Apps {
		for _, m := range app.Models {
			if m.Loss > maxLoss[i] {
				maxLoss[i] = m.Loss
			}
		}
	}

	// downSince[k] is the slot at which edge k was last marked down (-1 =
	// up); it feeds Report.DownSlots.
	downSince := make([]int, K)
	for k := range downSince {
		downSince[k] = -1
	}

	// fail marks edge k dead; it returns the original error when failures
	// are not tolerated (or when no edge remains).
	fail := func(t, k int, cause error) error {
		if !s.cfg.TolerateFailures {
			return cause
		}
		if conns[k] != nil {
			conns[k].close()
			conns[k] = nil
		}
		if downSince[k] < 0 {
			downSince[k] = t
		}
		if marker, ok := s.cfg.Scheduler.(EdgeDownMarker); ok {
			marker.SetEdgeDown(k, true)
		}
		if !containsInt(rep.FailedEdges, k) {
			rep.FailedEdges = append(rep.FailedEdges, k)
		}
		alive := 0
		for _, c := range conns {
			if c != nil {
				alive++
			}
		}
		if alive == 0 {
			return fmt.Errorf("edgenet: every edge agent failed (last: %w)", cause)
		}
		return nil
	}

	for t := 0; t < s.cfg.Slots; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.admitRejoins(t, conns, rejoins, downSince, rep)
		// Phase 1: collect arrivals (dead edges contribute none — their
		// regions are offline with them). Receives run concurrently so one
		// stalled agent costs at most one SlotTimeout instead of delaying
		// every edge behind it; the fold below is in edge-id order.
		arrivals := make([][]int, I)
		for i := range arrivals {
			arrivals[i] = make([]int, K)
		}
		got := s.collectPhase(conns)
		for k := 0; k < K; k++ {
			if conns[k] == nil {
				continue
			}
			m, err := got[k].m, got[k].err
			switch {
			case err != nil:
				err = fmt.Errorf("edgenet: edge %d arrivals: %w", k, err)
			case m.Type != TypeArrivals || m.Slot != t:
				err = fmt.Errorf("edgenet: edge %d sent %q for slot %d, want arrivals for %d",
					k, m.Type, m.Slot, t)
			case len(m.Arrivals) != I:
				err = fmt.Errorf("edgenet: edge %d reported %d apps, want %d", k, len(m.Arrivals), I)
			case minInt(m.Arrivals) < 0:
				err = fmt.Errorf("edgenet: edge %d negative arrivals", k)
			}
			if err != nil {
				// A protocol violation from a live agent is handled exactly
				// like a dead connection: drop that edge, keep the run.
				if ferr := fail(t, k, err); ferr != nil {
					return nil, ferr
				}
				continue
			}
			for i, n := range m.Arrivals {
				arrivals[i][k] = n
			}
		}
		// Serving-path override: the barrier above still synchronized the
		// fleet and policed the protocol, but planning demand comes from the
		// serving layer's rolling window instead of the agents' reports.
		if s.cfg.ArrivalSource != nil {
			src := s.cfg.ArrivalSource(t)
			if err := validArrivals(src, I, K); err != nil {
				return nil, fmt.Errorf("edgenet: arrival source slot %d: %w", t, err)
			}
			arrivals = src
		}
		// Phase 2: decide.
		plan, err := s.cfg.Scheduler.Decide(t, arrivals)
		if err != nil {
			s.broadcast(conns, &Message{Type: TypeError, Err: err.Error()})
			return nil, fmt.Errorf("edgenet: decide slot %d: %w", t, err)
		}
		if s.cfg.PlanHook != nil {
			s.cfg.PlanHook(t, plan)
		}
		// Phase 3: push per-edge assignments (transfers are already netted
		// into the deployments, which is all an executor needs).
		slotLoss := 0.0
		dropAssignment := func(msg *Message) {
			for _, asg := range msg.Assignments {
				rep.Dropped += asg.Requests
				rep.Failures += asg.Requests
				slotLoss += maxLoss[asg.App] * float64(asg.Requests)
				for q := 0; q < asg.Requests; q++ {
					rep.Completion = append(rep.Completion, edgesim.DroppedPenaltyTau)
				}
			}
		}
		msgs := make([]*Message, K)
		for k := 0; k < K; k++ {
			msg := &Message{Type: TypeAssign, Slot: t, EdgeID: k, Dropped: make([]int, I)}
			for _, d := range plan.Deployments {
				if d.Edge != k {
					continue
				}
				msg.Assignments = append(msg.Assignments, Assignment{
					App: d.App, Version: d.Version, Requests: d.Requests,
					BatchSizes: d.BatchSizes,
				})
			}
			if plan.Dropped != nil {
				for i := 0; i < I; i++ {
					n := plan.Dropped[i][k]
					msg.Dropped[i] = n
					if n > 0 {
						rep.Dropped += n
						rep.Failures += n
						slotLoss += maxLoss[i] * float64(n)
						for q := 0; q < n; q++ {
							rep.Completion = append(rep.Completion, edgesim.DroppedPenaltyTau)
						}
					}
				}
			}
			msgs[k] = msg
			c := conns[k]
			if c == nil {
				// Edge already dead: its planned work is lost.
				dropAssignment(msg)
				continue
			}
			if err := c.send(msg); err != nil {
				if ferr := fail(t, k, fmt.Errorf("edgenet: edge %d assign: %w", k, err)); ferr != nil {
					return nil, ferr
				}
				dropAssignment(msg)
			}
		}
		// Phase 4: collect execution reports (concurrently, like phase 1).
		var fbs []edgesim.Feedback
		got = s.collectPhase(conns)
		for k := 0; k < K; k++ {
			if conns[k] == nil {
				continue
			}
			m, err := got[k].m, got[k].err
			switch {
			case err != nil:
				err = fmt.Errorf("edgenet: edge %d report: %w", k, err)
			case m.Type != TypeReport || m.Slot != t:
				err = fmt.Errorf("edgenet: edge %d sent %q for slot %d, want report for %d",
					k, m.Type, m.Slot, t)
			}
			if err != nil {
				if ferr := fail(t, k, err); ferr != nil {
					return nil, ferr
				}
				dropAssignment(msgs[k])
				continue
			}
			for q, ms := range m.CompletionMS {
				tau := ms / slotMS
				rep.Completion = append(rep.Completion, tau)
				slo := 1.0
				if q < len(m.CompletionApp) {
					if app := m.CompletionApp[q]; app >= 0 && app < I {
						slo = s.cfg.Apps[app].SLO()
					}
				}
				if tau > slo {
					rep.Failures++
				}
			}
			rep.Served += len(m.CompletionMS)
			rep.ServedByEdge[k] += len(m.CompletionMS)
			slotLoss += m.Loss
			fbs = append(fbs, m.Feedback...)
		}
		rep.Loss.Add(slotLoss)
		s.cfg.Scheduler.Observe(t, fbs)
	}
	for k, since := range downSince {
		if since >= 0 {
			rep.DownSlots[k] += s.cfg.Slots - since
		}
	}
	s.broadcast(conns, &Message{Type: TypeDone})
	return rep, nil
}

// register accepts hellos until every edge has exactly one live agent. A
// malformed, version-mismatched, duplicate, or out-of-range hello rejects
// that connection with TypeError and keeps waiting — one misbehaving client
// must not abort the run for the correctly-behaving agents. Each accepted
// agent is acked with a resync at slot 0.
func (s *Server) register(ctx context.Context, conns []*conn) error {
	K := len(conns)
	deadline := time.Now().Add(s.cfg.SlotTimeout)
	if err := s.ln.(*net.TCPListener).SetDeadline(deadline); err != nil {
		return err
	}
	for registered := 0; registered < K; {
		if err := ctx.Err(); err != nil {
			return err
		}
		raw, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return fmt.Errorf("edgenet: server closed during registration (have %d/%d agents)", registered, K)
			}
			return fmt.Errorf("edgenet: accept (have %d/%d agents): %w", registered, K, err)
		}
		// Track the conn for the duration of the hello read so an external
		// Close severs it instead of leaving this loop parked until the
		// read deadline.
		if !s.track(raw) {
			_ = raw.Close()
			return fmt.Errorf("edgenet: server closed during registration (have %d/%d agents)", registered, K)
		}
		c := &conn{raw: raw}
		_ = raw.SetReadDeadline(deadline)
		m, err := c.recv()
		s.untrack(raw)
		if err != nil || m.Type != TypeHello {
			c.close()
			continue
		}
		if reason := s.vetHello(m, K); reason != "" {
			_ = c.send(&Message{Type: TypeError, Err: reason})
			c.close()
			continue
		}
		if conns[m.EdgeID] != nil {
			_ = c.send(&Message{Type: TypeError, Err: fmt.Sprintf("duplicate edge id %d", m.EdgeID)})
			c.close()
			continue
		}
		// Ack with the starting slot; agents wait for this before sending
		// their first arrivals.
		if err := c.send(&Message{Type: TypeResync, EdgeID: m.EdgeID, Slot: 0}); err != nil {
			c.close()
			continue
		}
		_ = raw.SetReadDeadline(time.Time{})
		conns[m.EdgeID] = c
		registered++
	}
	return s.ln.(*net.TCPListener).SetDeadline(time.Time{})
}

// vetHello checks the fields of a hello message, returning a rejection
// reason ("" = acceptable). Liveness of the slot (duplicate live agents) is
// checked by the caller, which owns the conn table.
func (s *Server) vetHello(m *Message, K int) string {
	if m.Version != ProtocolVersion {
		return fmt.Sprintf("protocol version %d, want %d", m.Version, ProtocolVersion)
	}
	if m.EdgeID < 0 || m.EdgeID >= K {
		return fmt.Sprintf("edge id %d out of range [0,%d)", m.EdgeID, K)
	}
	return ""
}

// acceptRejoins keeps accepting connections after initial registration so a
// restarted or reconnecting agent can re-register mid-run. Hellos are
// validated here; admission (the duplicate check against the live conn
// table, SetEdgeDown(k, false), the resync reply) happens on the slot loop
// at the next boundary. Exits when the listener closes.
func (s *Server) acceptRejoins(ch chan<- rejoinReq, done chan<- struct{}, K int) {
	defer close(done)
	var wg sync.WaitGroup
	var mu sync.Mutex
	open := make(map[net.Conn]bool)
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			break // listener closed: the run is over
		}
		mu.Lock()
		open[raw] = true
		mu.Unlock()
		wg.Add(1)
		go func(raw net.Conn) {
			defer wg.Done()
			s.vetRejoin(raw, ch, K)
			mu.Lock()
			delete(open, raw)
			mu.Unlock()
		}(raw)
	}
	mu.Lock()
	for c := range open {
		_ = c.Close() // interrupt in-flight hello reads so wg.Wait is prompt
	}
	mu.Unlock()
	wg.Wait()
}

// vetRejoin reads and validates one mid-run hello, parking the acceptable
// ones on ch for the slot loop to admit.
func (s *Server) vetRejoin(raw net.Conn, ch chan<- rejoinReq, K int) {
	c := &conn{raw: raw}
	_ = raw.SetReadDeadline(time.Now().Add(s.cfg.SlotTimeout))
	m, err := c.recv()
	if err != nil || m.Type != TypeHello {
		c.close()
		return
	}
	if reason := s.vetHello(m, K); reason != "" {
		_ = c.send(&Message{Type: TypeError, Err: reason})
		c.close()
		return
	}
	_ = raw.SetReadDeadline(time.Time{})
	select {
	case ch <- rejoinReq{k: m.EdgeID, c: c, lastSlot: m.LastSlot, resume: m.Resume}:
	default:
		_ = c.send(&Message{Type: TypeError, Err: "rejoin queue full"})
		c.close()
	}
}

// admitRejoins folds parked re-registrations into the conn table at a slot
// boundary: the down flag is cleared, downtime is charged, and the agent is
// resync'd to slot t so it re-enters the barrier in step. A rejoining edge
// starts from a clean slate — arrivals during its downtime were never
// reported and are not replayed. A rejoin for an edge whose previous
// connection still looks alive stays parked: a restarted agent routinely
// redials before the server has detected the old connection's death, and the
// next failed phase read settles which it was.
func (s *Server) admitRejoins(t int, conns []*conn, ch chan rejoinReq, downSince []int, rep *Report) {
	var pending []rejoinReq
	for draining := true; draining; {
		select {
		case r := <-ch:
			pending = append(pending, r)
		default:
			draining = false
		}
	}
	// Arrival order on the channel is wall-clock nondeterministic; admit in
	// edge-id order so the Report is stable given the same failure set.
	// Stable so duplicate rejoins by one edge keep a defined relative order.
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].k < pending[j].k })
	for _, r := range pending {
		if conns[r.k] != nil {
			select {
			case ch <- r: // revisit at the next boundary
			default:
				_ = r.c.send(&Message{Type: TypeError, Err: "rejoin queue full"})
				r.c.close()
			}
			continue
		}
		if err := r.c.send(&Message{Type: TypeResync, EdgeID: r.k, Slot: t}); err != nil {
			r.c.close()
			continue
		}
		conns[r.k] = r.c
		if downSince[r.k] >= 0 {
			rep.DownSlots[r.k] += t - downSince[r.k]
			downSince[r.k] = -1
		}
		if marker, ok := s.cfg.Scheduler.(EdgeDownMarker); ok {
			marker.SetEdgeDown(r.k, false)
		}
		if !containsInt(rep.RejoinedEdges, r.k) {
			rep.RejoinedEdges = append(rep.RejoinedEdges, r.k)
		}
	}
}

// phaseRecv is one edge's answer in a collection phase.
type phaseRecv struct {
	m   *Message
	err error
}

// collectPhase receives one message from every live edge, each under its own
// read deadline. The default is one goroutine per edge so worst-case phase
// latency is a single SlotTimeout rather than K of them (head-of-line
// blocking); results land in per-edge slots and the caller folds them in
// edge-id order, so concurrency never reaches the Report.
func (s *Server) collectPhase(conns []*conn) []phaseRecv {
	res := make([]phaseRecv, len(conns))
	recv := func(k int, c *conn) {
		_ = c.raw.SetReadDeadline(time.Now().Add(s.cfg.SlotTimeout))
		m, err := c.recv()
		res[k] = phaseRecv{m: m, err: err}
	}
	if s.serialPhases {
		for k, c := range conns {
			if c != nil {
				recv(k, c)
			}
		}
		return res
	}
	var wg sync.WaitGroup
	for k, c := range conns {
		if c == nil {
			continue
		}
		wg.Add(1)
		go func(k int, c *conn) {
			defer wg.Done()
			recv(k, c)
		}(k, c)
	}
	wg.Wait()
	return res
}

func (s *Server) broadcast(conns []*conn, m *Message) {
	for _, c := range conns {
		if c != nil {
			_ = c.send(m)
		}
	}
}

// validArrivals checks an ArrivalSource matrix: apps×edges, non-negative.
func validArrivals(a [][]int, I, K int) error {
	if len(a) != I {
		return fmt.Errorf("want %d app rows, got %d", I, len(a))
	}
	for i := range a {
		if len(a[i]) != K {
			return fmt.Errorf("app %d: want %d edge cells, got %d", i, K, len(a[i]))
		}
		if minInt(a[i]) < 0 {
			return fmt.Errorf("app %d: negative arrivals", i)
		}
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func minInt(xs []int) int {
	m := 0
	for i, v := range xs {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}
