package edgenet

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/models"
)

// ServerConfig assembles a scheduler server.
type ServerConfig struct {
	// Listen is the TCP address ("127.0.0.1:0" for an ephemeral port).
	Listen string
	// Cluster and Apps define the system; EdgeID k in the protocol refers to
	// Cluster.Edges[k].
	Cluster *cluster.Cluster
	Apps    []*models.Application
	// Scheduler is the decision algorithm (BIRP, OAEI, ...).
	Scheduler edgesim.Scheduler
	// Slots is the number of scheduling rounds to run.
	Slots int
	// SlotTimeout bounds each protocol phase (0 = 30s).
	SlotTimeout time.Duration
	// TolerateFailures keeps the run alive when an edge agent dies: the dead
	// edge is excluded from planning (via the scheduler's SetEdgeDown, when
	// supported), its in-flight assignments count as drops, and the remaining
	// edges absorb the load. Without it, any agent failure aborts the run.
	TolerateFailures bool
}

// EdgeDownMarker is implemented by schedulers that can exclude failed edges
// from planning (core.Scheduler does).
type EdgeDownMarker interface {
	SetEdgeDown(k int, down bool)
}

// Report aggregates a distributed run; it mirrors edgesim.Results so the two
// executors can be compared directly.
type Report struct {
	Scheduler  string
	Completion []float64
	Loss       metrics.LossAccumulator
	Served     int
	Dropped    int
	// Failures counts per-application SLO violations (drops included).
	Failures int
	// FailedEdges lists edges whose agents died mid-run (TolerateFailures).
	FailedEdges []int
}

// FailureRate returns the paper's p%.
func (r *Report) FailureRate() float64 {
	if len(r.Completion) == 0 {
		return 0
	}
	return float64(r.Failures) / float64(len(r.Completion))
}

// Server coordinates edge agents through the slot protocol.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
}

// NewServer binds the listen address; call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Cluster == nil || len(cfg.Apps) == 0 || cfg.Scheduler == nil {
		return nil, fmt.Errorf("edgenet: server needs cluster, apps, and scheduler")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("edgenet: non-positive slot count %d", cfg.Slots)
	}
	if cfg.SlotTimeout == 0 {
		cfg.SlotTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("edgenet: listen: %w", err)
	}
	return &Server{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound listen address (for agents to dial).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close releases the listener (Run closes it on return as well).
func (s *Server) Close() error { return s.ln.Close() }

// Run accepts one agent per edge, then drives the slot protocol to
// completion and returns the aggregated report. It honors ctx cancellation
// between phases.
func (s *Server) Run(ctx context.Context) (*Report, error) {
	defer s.ln.Close()
	K := s.cfg.Cluster.N()
	conns := make([]*conn, K)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.close()
			}
		}
	}()

	// Registration: every edge must say hello with a unique id.
	deadline := time.Now().Add(s.cfg.SlotTimeout)
	if err := s.ln.(*net.TCPListener).SetDeadline(deadline); err != nil {
		return nil, err
	}
	for registered := 0; registered < K; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		raw, err := s.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("edgenet: accept (have %d/%d agents): %w", registered, K, err)
		}
		c := &conn{raw: raw}
		_ = raw.SetReadDeadline(deadline)
		m, err := c.recv()
		if err != nil || m.Type != TypeHello {
			c.close()
			return nil, fmt.Errorf("edgenet: bad hello: %v", err)
		}
		if m.Version != ProtocolVersion {
			_ = c.send(&Message{Type: TypeError, Err: fmt.Sprintf("protocol version %d, want %d", m.Version, ProtocolVersion)})
			c.close()
			return nil, fmt.Errorf("edgenet: agent speaks protocol %d, want %d", m.Version, ProtocolVersion)
		}
		if m.EdgeID < 0 || m.EdgeID >= K || conns[m.EdgeID] != nil {
			_ = c.send(&Message{Type: TypeError, Err: fmt.Sprintf("bad edge id %d", m.EdgeID)})
			c.close()
			return nil, fmt.Errorf("edgenet: agent registered invalid edge id %d", m.EdgeID)
		}
		_ = raw.SetReadDeadline(time.Time{})
		conns[m.EdgeID] = c
		registered++
	}

	rep := &Report{Scheduler: s.cfg.Scheduler.Name()}
	slotMS := s.cfg.Cluster.SlotMS()
	I := len(s.cfg.Apps)
	maxLoss := make([]float64, I)
	for i, app := range s.cfg.Apps {
		for _, m := range app.Models {
			if m.Loss > maxLoss[i] {
				maxLoss[i] = m.Loss
			}
		}
	}

	// fail marks edge k dead; it returns the original error when failures
	// are not tolerated (or when no edge remains).
	fail := func(k int, cause error) error {
		if !s.cfg.TolerateFailures {
			return cause
		}
		if conns[k] != nil {
			conns[k].close()
			conns[k] = nil
		}
		for _, f := range rep.FailedEdges {
			if f == k {
				return nil
			}
		}
		rep.FailedEdges = append(rep.FailedEdges, k)
		if marker, ok := s.cfg.Scheduler.(EdgeDownMarker); ok {
			marker.SetEdgeDown(k, true)
		}
		alive := 0
		for _, c := range conns {
			if c != nil {
				alive++
			}
		}
		if alive == 0 {
			return fmt.Errorf("edgenet: every edge agent failed (last: %w)", cause)
		}
		return nil
	}

	for t := 0; t < s.cfg.Slots; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Phase 1: collect arrivals (dead edges contribute none — their
		// regions are offline with them).
		arrivals := make([][]int, I)
		for i := range arrivals {
			arrivals[i] = make([]int, K)
		}
		for k, c := range conns {
			if c == nil {
				continue
			}
			_ = c.raw.SetReadDeadline(time.Now().Add(s.cfg.SlotTimeout))
			m, err := c.recv()
			if err != nil {
				if ferr := fail(k, fmt.Errorf("edgenet: edge %d arrivals: %w", k, err)); ferr != nil {
					return nil, ferr
				}
				continue
			}
			if m.Type != TypeArrivals || m.Slot != t {
				return nil, fmt.Errorf("edgenet: edge %d sent %q for slot %d, want arrivals for %d",
					k, m.Type, m.Slot, t)
			}
			if len(m.Arrivals) != I {
				return nil, fmt.Errorf("edgenet: edge %d reported %d apps, want %d", k, len(m.Arrivals), I)
			}
			for i, n := range m.Arrivals {
				if n < 0 {
					return nil, fmt.Errorf("edgenet: edge %d negative arrivals", k)
				}
				arrivals[i][k] = n
			}
		}
		// Phase 2: decide.
		plan, err := s.cfg.Scheduler.Decide(t, arrivals)
		if err != nil {
			s.broadcast(conns, &Message{Type: TypeError, Err: err.Error()})
			return nil, fmt.Errorf("edgenet: decide slot %d: %w", t, err)
		}
		// Phase 3: push per-edge assignments (transfers are already netted
		// into the deployments, which is all an executor needs).
		slotLoss := 0.0
		dropAssignment := func(msg *Message) {
			for _, asg := range msg.Assignments {
				rep.Dropped += asg.Requests
				rep.Failures += asg.Requests
				slotLoss += maxLoss[asg.App] * float64(asg.Requests)
				for q := 0; q < asg.Requests; q++ {
					rep.Completion = append(rep.Completion, edgesim.DroppedPenaltyTau)
				}
			}
		}
		msgs := make([]*Message, K)
		for k := 0; k < K; k++ {
			msg := &Message{Type: TypeAssign, Slot: t, EdgeID: k, Dropped: make([]int, I)}
			for _, d := range plan.Deployments {
				if d.Edge != k {
					continue
				}
				msg.Assignments = append(msg.Assignments, Assignment{
					App: d.App, Version: d.Version, Requests: d.Requests,
					BatchSizes: d.BatchSizes,
				})
			}
			if plan.Dropped != nil {
				for i := 0; i < I; i++ {
					n := plan.Dropped[i][k]
					msg.Dropped[i] = n
					if n > 0 {
						rep.Dropped += n
						rep.Failures += n
						slotLoss += maxLoss[i] * float64(n)
						for q := 0; q < n; q++ {
							rep.Completion = append(rep.Completion, edgesim.DroppedPenaltyTau)
						}
					}
				}
			}
			msgs[k] = msg
			c := conns[k]
			if c == nil {
				// Edge already dead: its planned work is lost.
				dropAssignment(msg)
				continue
			}
			if err := c.send(msg); err != nil {
				if ferr := fail(k, fmt.Errorf("edgenet: edge %d assign: %w", k, err)); ferr != nil {
					return nil, ferr
				}
				dropAssignment(msg)
			}
		}
		// Phase 4: collect execution reports.
		var fbs []edgesim.Feedback
		for k, c := range conns {
			if c == nil {
				continue
			}
			_ = c.raw.SetReadDeadline(time.Now().Add(s.cfg.SlotTimeout))
			m, err := c.recv()
			if err != nil {
				if ferr := fail(k, fmt.Errorf("edgenet: edge %d report: %w", k, err)); ferr != nil {
					return nil, ferr
				}
				dropAssignment(msgs[k])
				continue
			}
			if m.Type != TypeReport || m.Slot != t {
				return nil, fmt.Errorf("edgenet: edge %d sent %q, want report", k, m.Type)
			}
			for q, ms := range m.CompletionMS {
				tau := ms / slotMS
				rep.Completion = append(rep.Completion, tau)
				slo := 1.0
				if q < len(m.CompletionApp) {
					if app := m.CompletionApp[q]; app >= 0 && app < I {
						slo = s.cfg.Apps[app].SLO()
					}
				}
				if tau > slo {
					rep.Failures++
				}
			}
			rep.Served += len(m.CompletionMS)
			slotLoss += m.Loss
			fbs = append(fbs, m.Feedback...)
		}
		rep.Loss.Add(slotLoss)
		s.cfg.Scheduler.Observe(t, fbs)
	}
	s.broadcast(conns, &Message{Type: TypeDone})
	return rep, nil
}

func (s *Server) broadcast(conns []*conn, m *Message) {
	for _, c := range conns {
		if c != nil {
			_ = c.send(m)
		}
	}
}
