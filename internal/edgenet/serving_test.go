package edgenet

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/serve"
)

// servingSched forwards SetEdgeDown to both the optimizer and the serving
// loop: when the slot barrier detects a dead agent, planning excludes the
// edge AND live routing steers away from it in the same breath.
type servingSched struct {
	*core.Scheduler
	loop *serve.Loop
}

func (s *servingSched) SetEdgeDown(k int, down bool) {
	s.Scheduler.SetEdgeDown(k, down)
	s.loop.SetEdgeDown(k, down)
}

// TestServingPathDispatchUnderTolerate wires the full serving seam through
// the distributed slot barrier: the serve loop's drained request window is
// the planning demand (ArrivalSource), every accepted plan becomes the
// routing snapshot (PlanHook), and an agent crash mid-run must both keep
// the barrier alive (-tolerate) and steer subsequent routing off the dead
// edge.
func TestServingPathDispatchUnderTolerate(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	K := c.N()
	slots := 6
	secNS := int64(1e9)

	loop, err := serve.NewLoop(serve.Config{Apps: len(apps), Edges: K, ExternalPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}

	var reqID int64
	var srv *Server
	srv, err = NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: &servingSched{Scheduler: sched, loop: loop},
		Slots:     slots, SlotTimeout: 5 * time.Second,
		TolerateFailures: true,
		// The serving frontend's arrivals since the last barrier: submit this
		// slot's burst, then drain the rolling window as planning demand.
		ArrivalSource: func(tt int) [][]int {
			for q := 0; q < 3*K; q++ {
				if _, err := loop.Submit(serve.Request{
					ID: reqID, App: 0, Region: q % K,
					ArriveNS: int64(tt+1) * secNS,
				}); err != nil {
					t.Errorf("slot %d submit: %v", tt, err)
				}
				reqID++
			}
			return loop.DrainWindow()
		},
		PlanHook: func(tt int, plan *edgesim.Plan) {
			loop.AdoptPlan(int64(tt+1)*secNS, plan)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		k := k
		if k == 1 {
			// Edge 1 crashes after two slots and never rejoins.
			wg.Add(1)
			go func() {
				defer wg.Done()
				runFlakyAgent(t, srv.Addr().String(), 1, len(apps), 2, emptyReport)
			}()
			continue
		}
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = make([]int, len(apps)) // agents report nothing; demand is the loop's
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps,
			Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("healthy agent %d: %v", k, err)
			}
		}()
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server must survive the crash: %v", err)
	}
	wg.Wait()

	if len(rep.FailedEdges) != 1 || rep.FailedEdges[0] != 1 {
		t.Fatalf("failed edges %v, want [1]", rep.FailedEdges)
	}
	if rep.Served == 0 {
		t.Fatal("surviving edges served nothing")
	}
	// Every slot's plan became a routing snapshot.
	if got := loop.Snapshot().ID; got != int64(slots) {
		t.Fatalf("snapshot id %d after %d slots, want one adoption per slot", got, slots)
	}
	stats := loop.Stats()
	if stats.Admitted == 0 {
		t.Fatal("serving loop admitted nothing")
	}
	if stats.Submitted != stats.Admitted+stats.RejectedTotal() {
		t.Fatalf("accounting leak: %d != %d + %d",
			stats.Submitted, stats.Admitted, stats.RejectedTotal())
	}
	// The failure must have reached the loop: post-run routing avoids edge 1.
	for q := 0; q < 2*K; q++ {
		d, err := loop.Submit(serve.Request{
			ID: reqID, App: 0, Region: q % K,
			ArriveNS: int64(slots+2) * secNS,
		})
		if err != nil {
			t.Fatal(err)
		}
		reqID++
		if d.Admitted && d.Edge == 1 {
			t.Fatalf("request routed to the dead edge: %+v", d)
		}
	}
}
