// Package edgenet is the distributed prototype of the edge collaborative
// system: a scheduler server and edge agents talking a length-prefixed JSON
// protocol over TCP. It mirrors the paper's deployment — a cloud-edge
// interface that collects each edge's arrivals every slot, runs the BIRP
// decision, pushes per-edge assignments, and folds execution feedback back
// into the MAB tuner — with real sockets instead of the in-process
// simulator. Both executors share edgesim.ExecuteEdge, so results agree.
package edgenet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/edgesim"
)

// ProtocolVersion is negotiated in the hello exchange; mismatched peers are
// rejected instead of silently mis-parsing each other. Version 2 added the
// hello → resync handshake and the rejoin fields (Resume, LastSlot): every
// hello — initial or re-registration — is answered with a TypeResync carrying
// the slot at which the agent (re)enters the barrier.
const ProtocolVersion = 2

// Message types.
const (
	// TypeHello registers an edge agent with the scheduler (initial
	// registration or mid-run rejoin; see Resume/LastSlot).
	TypeHello = "hello"
	// TypeResync acks a hello (scheduler → edge): Slot is the slot the agent
	// must serve next. Initial registrations are resync'd to slot 0;
	// rejoining agents are resync'd at the next slot boundary.
	TypeResync = "resync"
	// TypeArrivals reports one slot's local arrivals (edge → scheduler).
	TypeArrivals = "arrivals"
	// TypeAssign delivers one slot's work to an edge (scheduler → edge).
	TypeAssign = "assign"
	// TypeReport returns execution results (edge → scheduler).
	TypeReport = "report"
	// TypeDone ends the session (scheduler → edge).
	TypeDone = "done"
	// TypeError aborts the session.
	TypeError = "error"
)

// Assignment is the per-edge slice of a slot plan.
type Assignment struct {
	App        int   `json:"app"`
	Version    int   `json:"version"`
	Requests   int   `json:"requests"`
	BatchSizes []int `json:"batchSizes"`
}

// Message is the single wire envelope; unused fields are omitted.
type Message struct {
	Type   string `json:"type"`
	EdgeID int    `json:"edgeId"`
	Slot   int    `json:"slot"`
	// Name identifies the agent in hello messages.
	Name string `json:"name,omitempty"`
	// Version is the sender's ProtocolVersion (hello messages).
	Version int `json:"version,omitempty"`
	// Resume marks a hello as a mid-run rejoin after a connection loss
	// (informational — the scheduler treats any hello for a downed edge as a
	// rejoin, so a fully restarted agent process recovers too).
	Resume bool `json:"resume,omitempty"`
	// LastSlot is the last slot the resuming agent fully reported (-1 when it
	// never completed one). The scheduler's resync, not this value, decides
	// where the agent re-enters the barrier.
	LastSlot int `json:"lastSlot,omitempty"`
	// Arrivals[i] is the per-application arrival count (TypeArrivals).
	Arrivals []int `json:"arrivals,omitempty"`
	// Assignments carries the slot's work (TypeAssign).
	Assignments []Assignment `json:"assignments,omitempty"`
	// Dropped[i] is the per-application drop count at this edge (TypeAssign).
	Dropped []int `json:"dropped,omitempty"`
	// CompletionMS and Loss summarize execution (TypeReport);
	// CompletionApp carries each entry's application for per-app SLOs.
	CompletionMS  []float64 `json:"completionMs,omitempty"`
	CompletionApp []int     `json:"completionApp,omitempty"`
	Loss          float64   `json:"loss,omitempty"`
	// Feedback carries realized TIR observations (TypeReport).
	Feedback []edgesim.Feedback `json:"feedback,omitempty"`
	// Err carries the reason for TypeError.
	Err string `json:"err,omitempty"`
}

// MaxMessageBytes bounds a single frame; larger frames abort the connection
// (malformed peer or protocol desync).
const MaxMessageBytes = 16 << 20

// WriteMessage frames and writes one message: 4-byte big-endian length, then
// the JSON body. Safe for concurrent use only with external locking.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("edgenet: marshal: %w", err)
	}
	if len(body) > MaxMessageBytes {
		return fmt.Errorf("edgenet: message of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageBytes {
		return nil, fmt.Errorf("edgenet: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("edgenet: unmarshal: %w", err)
	}
	return &m, nil
}

// conn wraps a net.Conn with a write lock and framed codec.
type conn struct {
	raw net.Conn
	wmu sync.Mutex
}

func (c *conn) send(m *Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteMessage(c.raw, m)
}

func (c *conn) recv() (*Message, error) { return ReadMessage(c.raw) }

func (c *conn) close() { _ = c.raw.Close() }
