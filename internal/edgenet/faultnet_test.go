package edgenet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/models"
)

// startEchoBackend runs a framed echo server and returns its address.
func startEchoBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				c := &conn{raw: raw}
				for {
					m, err := c.recv()
					if err != nil {
						return
					}
					if err := c.send(m); err != nil {
						return
					}
				}
			}(raw)
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *FaultProxy) *conn {
	t.Helper()
	raw, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return &conn{raw: raw}
}

func TestFaultProxyForwardsFrames(t *testing.T) {
	backend := startEchoBackend(t)
	p, err := NewFaultProxy("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	defer c.close()
	in := &Message{Type: TypeArrivals, EdgeID: 3, Slot: 7, Arrivals: []int{1, 2}}
	if err := c.send(in); err != nil {
		t.Fatal(err)
	}
	out, err := c.recv()
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.EdgeID != 3 || out.Slot != 7 || len(out.Arrivals) != 2 {
		t.Fatalf("echo through proxy mismatch: %+v", out)
	}
}

func TestFaultProxyPartitionSwallowsOneDirection(t *testing.T) {
	backend := startEchoBackend(t)
	p, err := NewFaultProxy("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	defer c.close()
	p.Partition(Upstream, true)
	if err := c.send(&Message{Type: TypeArrivals, Slot: 1}); err != nil {
		t.Fatal(err)
	}
	// The frame is swallowed: no echo arrives, but the conn stays open.
	_ = c.raw.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if m, err := c.recv(); err == nil {
		t.Fatalf("partitioned frame was delivered: %+v", m)
	}
	_ = c.raw.SetReadDeadline(time.Time{})
	p.Partition(Upstream, false)
	if err := c.send(&Message{Type: TypeArrivals, Slot: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := c.recv()
	if err != nil {
		t.Fatalf("healed partition still blocks: %v", err)
	}
	if m.Slot != 2 {
		t.Fatalf("echoed slot = %d, want 2", m.Slot)
	}
}

func TestFaultProxyDropAfterCutsThenAllowsReconnect(t *testing.T) {
	backend := startEchoBackend(t)
	p, err := NewFaultProxy("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	// Fuse of 1: the request frame is forwarded, then the link is cut — the
	// echo (frame 2) never makes it back.
	p.DropAfter(1)
	if err := c.send(&Message{Type: TypeArrivals, Slot: 1}); err != nil {
		t.Fatal(err)
	}
	_ = c.raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if m, err := c.recv(); err == nil {
		t.Fatalf("link survived a blown fuse: %+v", m)
	}
	c.close()
	// The listener is still up and the fuse is spent: a fresh connection
	// forwards normally (this is what lets a killed agent rejoin).
	c2 := dialProxy(t, p)
	defer c2.close()
	if err := c2.send(&Message{Type: TypeArrivals, Slot: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := c2.recv()
	if err != nil {
		t.Fatalf("reconnect through proxy failed: %v", err)
	}
	if m.Slot != 9 {
		t.Fatalf("echoed slot = %d, want 9", m.Slot)
	}
}

func TestAgentReconnectsAfterFaultCut(t *testing.T) {
	// Drive the in-agent reconnect path end to end: the proxy's frame fuse
	// kills edge 1's connection mid-run, the agent redials through the
	// still-open proxy, re-helloes with Resume, and is resync'd back in.
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	slots := 30
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewFaultProxy("127.0.0.1:0", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// Edge 1's link carries hello+resync (2 frames) and 3 frames per slot;
	// a fuse of 12 cuts the link on the slot-3 arrivals, deterministically.
	proxy.DropAfter(12)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	mk := func(k int, addr string, reconnects int) *Agent {
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{10}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: addr, EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr, Seed: int64(k),
			ReconnectRetries: reconnects, Backoff: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return agent
	}
	for _, k := range []int{0, 2} {
		agent := mk(k, srv.Addr().String(), 0)
		wg.Add(1)
		go func(k int, agent *Agent) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("healthy agent %d: %v", k, err)
			}
		}(k, agent)
	}
	victim := mk(1, proxy.Addr().String(), 10)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := victim.Run(ctx); err != nil {
			t.Errorf("reconnecting agent must finish cleanly after its rejoin: %v", err)
		}
	}()

	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	if len(rep.FailedEdges) != 1 || rep.FailedEdges[0] != 1 {
		t.Fatalf("failed edges = %v, want [1]", rep.FailedEdges)
	}
	if len(rep.RejoinedEdges) != 1 || rep.RejoinedEdges[0] != 1 {
		t.Fatalf("rejoined edges = %v, want [1]", rep.RejoinedEdges)
	}
	if rep.DownSlots[1] == 0 {
		t.Fatal("reconnecting edge accrued no downtime")
	}
	if rep.Served == 0 {
		t.Fatal("nothing served")
	}
	if rep.Loss.Slots() != slots {
		t.Fatalf("loss recorded for %d slots, want %d", rep.Loss.Slots(), slots)
	}
}

func TestSlowEdgesDoNotStallSlotBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock fault-injection test skipped in short mode")
	}
	// Every edge answers through a proxy that delays each upstream frame by
	// 150ms. With the serial per-edge collection this run needs at least
	// K × 2 upstream frames × 150ms per slot (3.6s over 4 slots); the
	// concurrent collection overlaps the waits, so one slow edge costs one
	// delay, not K of them.
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	slots := 4
	const delay = 150 * time.Millisecond
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewFaultProxy("127.0.0.1:0", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetDelay(Upstream, delay)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{2}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: proxy.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(k int, agent *Agent) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("agent %d: %v", k, err)
			}
		}(k, agent)
	}
	start := time.Now()
	rep, err := srv.Run(ctx)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	if rep.Served == 0 {
		t.Fatal("nothing served")
	}
	if len(rep.FailedEdges) != 0 {
		t.Fatalf("failed edges = %v, want none", rep.FailedEdges)
	}
	// Serial lower bound: 3 edges × (arrivals+report) × 150ms × 4 slots =
	// 3.6s. Leave headroom for solver time under -race, but stay clearly
	// under the serial bound.
	if limit := 2800 * time.Millisecond; elapsed > limit {
		t.Fatalf("slot barrier stalled: %v elapsed, want < %v (serial collection needs ≥ 3.6s)", elapsed, limit)
	}
}
