package edgenet

import (
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// waitNoLeak polls until the goroutine count returns to the baseline — the
// shutdown path claims every parked reader has been joined, not abandoned.
func waitNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseUnblocksStalledRegistration is the shutdown-race regression: a
// client that connects during registration but never sends its hello used to
// park the accept loop in a blocking read until the SlotTimeout deadline —
// an external Close released the listener but not that read, so Run stayed
// wedged for up to 30s. Close must sever pending hello reads so Run returns
// promptly.
func TestCloseUnblocksStalledRegistration(t *testing.T) {
	base := runtime.NumGoroutine()
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: 2,
		SlotTimeout: 30 * time.Second, // long enough that waiting it out fails the test
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	stall, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	// Let register() accept the conn and park in the hello read.
	time.Sleep(200 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run succeeded with no registered agents")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run still blocked 5s after Close — the stalled hello read was not severed")
	}
	// Close is idempotent: post-Run and repeated calls stay nil instead of
	// surfacing "use of closed network connection".
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	waitNoLeak(t, base)
}

func TestCloseBeforeRunIsIdempotent(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps, Scheduler: sched, Slots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestRunReapsStrayMidRunConn covers the rejoin-path half of the shutdown
// sweep: a connection that arrives mid-run and never completes its hello is
// parked in acceptRejoins' vet read. When the run ends, cleanup must sever
// it and join its goroutine instead of waiting out the read deadline.
func TestRunReapsStrayMidRunConn(t *testing.T) {
	base := runtime.NumGoroutine()
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	slots := 3
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: slots, Seed: 11, MeanPerSlot: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	var strayOnce sync.Once
	var stray net.Conn
	var srv *Server
	srv, err = NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots, SlotTimeout: 10 * time.Second,
		// PlanHook fires after registration, mid-run: the perfect moment to
		// plant a stray half-open conn on the rejoin listener.
		PlanHook: func(tt int, plan *edgesim.Plan) {
			strayOnce.Do(func() {
				conn, err := net.Dial("tcp", srv.Addr().String())
				if err != nil {
					t.Errorf("stray dial: %v", err)
					return
				}
				stray = conn
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := runSystem(t, srv, c, apps, tr, slots, 0)
	if rep.Served == 0 {
		t.Fatal("nothing served")
	}
	// The server must have let go of the stray without the client closing.
	waitNoLeak(t, base)
	if stray != nil {
		stray.Close()
	}
}
