package edgenet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/accel"
	"repro/internal/edgesim"
	"repro/internal/models"
)

// AgentConfig assembles one edge agent.
type AgentConfig struct {
	// Addr is the scheduler's TCP address.
	Addr string
	// EdgeID is this agent's index in the server's cluster.
	EdgeID int
	// Device is the local accelerator model.
	Device *accel.Device
	// Apps is the application catalogue (must match the server's).
	Apps []*models.Application
	// Arrivals[t][i] is this edge's local arrival stream.
	Arrivals [][]int
	// NoiseSigma perturbs execution times; SlotNoiseSigma adds correlated
	// per-slot interference (see edgesim.Config); Seed drives both.
	NoiseSigma     float64
	SlotNoiseSigma float64
	Seed           int64
	// Realtime, when positive, makes the agent actually sleep
	// execution-time × Realtime (e.g. 0.001 to demo live pacing); zero
	// executes instantly on the device model.
	Realtime float64
	// DialTimeout bounds each connection attempt (0 = 10s).
	DialTimeout time.Duration
	// DialRetries is the number of extra dial attempts after the first one
	// fails, with exponential backoff and seeded jitter in between (0 = the
	// first dial error is fatal). With retries, launch order stops
	// mattering: the agent can come up before the scheduler.
	DialRetries int
	// ReconnectRetries bounds the redial attempts after a mid-run
	// connection loss; the agent re-helloes with Resume set and waits for
	// the scheduler's resync before re-entering the barrier. Each
	// successful rejoin refills the budget. 0 disables reconnection: the
	// first connection error is fatal.
	ReconnectRetries int
	// Backoff is the base delay of the exponential backoff schedule
	// (0 = 100ms). Retry n sleeps a jittered duration in [b·2ⁿ/2, b·2ⁿ],
	// capped at 5s; the jitter is drawn from a seeded RNG so a given agent
	// configuration retries on a reproducible schedule.
	Backoff time.Duration
}

// Agent is one edge node of the distributed prototype.
type Agent struct {
	cfg AgentConfig
	rng *rand.Rand
	// boff jitters retry delays; it is separate from rng so reconnects never
	// perturb the execution-noise stream.
	boff *rand.Rand

	// mu guards cur/closed so a context cancellation can sever whichever
	// connection the agent currently holds, including mid-reconnect.
	mu     sync.Mutex
	cur    *conn
	closed bool
}

// errConnLost tags connection-level failures (as opposed to the scheduler
// rejecting or aborting the session); only these are worth a reconnect.
var errConnLost = errors.New("connection lost")

// NewAgent validates the configuration.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Device == nil || len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("edgenet: agent needs a device and applications")
	}
	if cfg.EdgeID < 0 {
		return nil, fmt.Errorf("edgenet: negative edge id")
	}
	if len(cfg.Arrivals) == 0 {
		return nil, fmt.Errorf("edgenet: agent needs an arrival stream")
	}
	if cfg.DialRetries < 0 || cfg.ReconnectRetries < 0 {
		return nil, fmt.Errorf("edgenet: negative retry budget")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	return &Agent{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		boff: rand.New(rand.NewSource(cfg.Seed ^ 0x62697270)),
	}, nil
}

// Run connects, registers, and serves the slot protocol until the scheduler
// sends done (or an error/cancellation occurs). On a mid-run connection
// loss with ReconnectRetries budgeted, it redials, re-helloes with Resume
// set, and resumes at the slot the scheduler's resync names.
func (a *Agent) Run(ctx context.Context) error {
	a.mu.Lock()
	a.closed = false
	a.cur = nil
	a.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		a.mu.Lock()
		a.closed = true
		if a.cur != nil {
			a.cur.close()
		}
		a.mu.Unlock()
	})
	defer stop()
	defer a.setConn(nil)

	c, t, err := a.join(ctx, a.cfg.DialRetries, false, -1)
	if err != nil {
		return err
	}
	lastDone := -1
	for {
		err := a.serve(ctx, c, &t, &lastDone)
		c.close()
		a.setConn(nil)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || a.cfg.ReconnectRetries == 0 || !errors.Is(err, errConnLost) {
			return err
		}
		c2, t2, jerr := a.join(ctx, a.cfg.ReconnectRetries, true, lastDone)
		if jerr != nil {
			return fmt.Errorf("edgenet: agent %d reconnect: %w (after %v)", a.cfg.EdgeID, jerr, err)
		}
		c, t = c2, t2
	}
}

// setConn records the connection the context-cancel hook should sever; if
// the context already fired, the new connection is closed on the spot.
func (a *Agent) setConn(c *conn) {
	a.mu.Lock()
	a.cur = c
	if a.closed && c != nil {
		c.close()
	}
	a.mu.Unlock()
}

// join dials (with up to 1+retries attempts), says hello, and waits for the
// scheduler's resync ack; it returns the connection and the slot at which to
// (re)enter the barrier.
func (a *Agent) join(ctx context.Context, retries int, resume bool, lastSlot int) (*conn, int, error) {
	c, err := a.dial(ctx, retries)
	if err != nil {
		return nil, 0, err
	}
	a.setConn(c)
	hello := &Message{
		Type: TypeHello, EdgeID: a.cfg.EdgeID, Name: a.cfg.Device.Name,
		Version: ProtocolVersion, Resume: resume, LastSlot: lastSlot,
	}
	if err := c.send(hello); err != nil {
		c.close()
		return nil, 0, fmt.Errorf("edgenet: agent %d hello: %w", a.cfg.EdgeID, err)
	}
	m, err := c.recv()
	if err != nil {
		c.close()
		return nil, 0, fmt.Errorf("edgenet: agent %d await resync: %w", a.cfg.EdgeID, err)
	}
	switch m.Type {
	case TypeResync:
		return c, m.Slot, nil
	case TypeError:
		c.close()
		return nil, 0, fmt.Errorf("edgenet: agent %d rejected: %s", a.cfg.EdgeID, m.Err)
	default:
		c.close()
		return nil, 0, fmt.Errorf("edgenet: agent %d: unexpected %q before resync", a.cfg.EdgeID, m.Type)
	}
}

// dial connects with up to 1+retries attempts, sleeping a seeded
// exponential-backoff delay between failures; ctx cancellation aborts the
// wait immediately.
func (a *Agent) dial(ctx context.Context, retries int) (*conn, error) {
	d := net.Dialer{Timeout: a.cfg.DialTimeout}
	for attempt := 0; ; attempt++ {
		raw, err := d.DialContext(ctx, "tcp", a.cfg.Addr)
		if err == nil {
			return &conn{raw: raw}, nil
		}
		if attempt >= retries {
			return nil, fmt.Errorf("edgenet: agent %d dial (%d attempts): %w", a.cfg.EdgeID, attempt+1, err)
		}
		select {
		case <-time.After(a.backoffDelay(attempt)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// backoffDelay is retry attempt's delay: exponential in the attempt number
// with seeded jitter in [d/2, d], capped at 5s.
func (a *Agent) backoffDelay(attempt int) time.Duration {
	const maxDelay = 5 * time.Second
	d := a.cfg.Backoff
	for i := 0; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d <= 0 || d > maxDelay {
		d = maxDelay
	}
	half := d / 2
	return half + time.Duration(a.boff.Int63n(int64(half)+1))
}

// serve runs the slot barrier on c starting at slot *t until the scheduler
// says done (returns nil), the connection drops (returns an error wrapping
// errConnLost — recoverable when reconnects are budgeted), or the scheduler
// rejects or aborts the session (fatal). lastDone tracks the last slot
// fully reported, which a rejoin hello carries as LastSlot.
func (a *Agent) serve(ctx context.Context, c *conn, t, lastDone *int) error {
	for ; ; *t++ {
		arr := make([]int, len(a.cfg.Apps))
		if *t < len(a.cfg.Arrivals) {
			copy(arr, a.cfg.Arrivals[*t])
		}
		if err := c.send(&Message{Type: TypeArrivals, EdgeID: a.cfg.EdgeID, Slot: *t, Arrivals: arr}); err != nil {
			return fmt.Errorf("edgenet: agent %d arrivals: %w: %w", a.cfg.EdgeID, errConnLost, err)
		}
		m, err := c.recv()
		if err != nil {
			return fmt.Errorf("edgenet: agent %d recv: %w: %w", a.cfg.EdgeID, errConnLost, err)
		}
		switch m.Type {
		case TypeDone:
			return nil
		case TypeError:
			return fmt.Errorf("edgenet: agent %d: scheduler error: %s", a.cfg.EdgeID, m.Err)
		case TypeAssign:
			// fall through to execution
		default:
			return fmt.Errorf("edgenet: agent %d: unexpected %q", a.cfg.EdgeID, m.Type)
		}
		deps := make([]edgesim.Deployment, len(m.Assignments))
		for i, asg := range m.Assignments {
			deps[i] = edgesim.Deployment{
				App: asg.App, Version: asg.Version, Edge: a.cfg.EdgeID,
				Requests: asg.Requests, BatchSizes: asg.BatchSizes,
			}
		}
		scale := 1.0
		if a.cfg.SlotNoiseSigma > 0 {
			scale = 1 + a.rng.NormFloat64()*a.cfg.SlotNoiseSigma
			if scale < 0.5 {
				scale = 0.5
			}
		}
		exec := edgesim.ExecuteEdge(a.cfg.Device, a.cfg.Apps, a.cfg.EdgeID,
			deps, a.cfg.NoiseSigma, scale, a.rng)
		if a.cfg.Realtime > 0 {
			select {
			case <-time.After(time.Duration(exec.MakespanMS*a.cfg.Realtime) * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := c.send(&Message{
			Type: TypeReport, EdgeID: a.cfg.EdgeID, Slot: m.Slot,
			CompletionMS: exec.CompletionMS, CompletionApp: exec.CompletionApp,
			Loss: exec.Loss, Feedback: exec.Feedback,
		}); err != nil {
			return fmt.Errorf("edgenet: agent %d report: %w: %w", a.cfg.EdgeID, errConnLost, err)
		}
		*lastDone = *t
	}
}
