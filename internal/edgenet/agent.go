package edgenet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/accel"
	"repro/internal/edgesim"
	"repro/internal/models"
)

// AgentConfig assembles one edge agent.
type AgentConfig struct {
	// Addr is the scheduler's TCP address.
	Addr string
	// EdgeID is this agent's index in the server's cluster.
	EdgeID int
	// Device is the local accelerator model.
	Device *accel.Device
	// Apps is the application catalogue (must match the server's).
	Apps []*models.Application
	// Arrivals[t][i] is this edge's local arrival stream.
	Arrivals [][]int
	// NoiseSigma perturbs execution times; SlotNoiseSigma adds correlated
	// per-slot interference (see edgesim.Config); Seed drives both.
	NoiseSigma     float64
	SlotNoiseSigma float64
	Seed           int64
	// Realtime, when positive, makes the agent actually sleep
	// execution-time × Realtime (e.g. 0.001 to demo live pacing); zero
	// executes instantly on the device model.
	Realtime float64
	// DialTimeout bounds the initial connection (0 = 10s).
	DialTimeout time.Duration
}

// Agent is one edge node of the distributed prototype.
type Agent struct {
	cfg AgentConfig
	rng *rand.Rand
}

// NewAgent validates the configuration.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Device == nil || len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("edgenet: agent needs a device and applications")
	}
	if cfg.EdgeID < 0 {
		return nil, fmt.Errorf("edgenet: negative edge id")
	}
	if len(cfg.Arrivals) == 0 {
		return nil, fmt.Errorf("edgenet: agent needs an arrival stream")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	return &Agent{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Run connects, registers, and serves the slot protocol until the scheduler
// sends done (or an error/cancellation occurs).
func (a *Agent) Run(ctx context.Context) error {
	d := net.Dialer{Timeout: a.cfg.DialTimeout}
	raw, err := d.DialContext(ctx, "tcp", a.cfg.Addr)
	if err != nil {
		return fmt.Errorf("edgenet: agent %d dial: %w", a.cfg.EdgeID, err)
	}
	c := &conn{raw: raw}
	defer c.close()
	stop := context.AfterFunc(ctx, func() { c.close() })
	defer stop()

	if err := c.send(&Message{Type: TypeHello, EdgeID: a.cfg.EdgeID, Name: a.cfg.Device.Name, Version: ProtocolVersion}); err != nil {
		return fmt.Errorf("edgenet: agent %d hello: %w", a.cfg.EdgeID, err)
	}
	for t := 0; ; t++ {
		arr := make([]int, len(a.cfg.Apps))
		if t < len(a.cfg.Arrivals) {
			copy(arr, a.cfg.Arrivals[t])
		}
		if err := c.send(&Message{Type: TypeArrivals, EdgeID: a.cfg.EdgeID, Slot: t, Arrivals: arr}); err != nil {
			return fmt.Errorf("edgenet: agent %d arrivals: %w", a.cfg.EdgeID, err)
		}
		m, err := c.recv()
		if err != nil {
			return fmt.Errorf("edgenet: agent %d recv: %w", a.cfg.EdgeID, err)
		}
		switch m.Type {
		case TypeDone:
			return nil
		case TypeError:
			return fmt.Errorf("edgenet: agent %d: scheduler error: %s", a.cfg.EdgeID, m.Err)
		case TypeAssign:
			// fall through to execution
		default:
			return fmt.Errorf("edgenet: agent %d: unexpected %q", a.cfg.EdgeID, m.Type)
		}
		deps := make([]edgesim.Deployment, len(m.Assignments))
		for i, asg := range m.Assignments {
			deps[i] = edgesim.Deployment{
				App: asg.App, Version: asg.Version, Edge: a.cfg.EdgeID,
				Requests: asg.Requests, BatchSizes: asg.BatchSizes,
			}
		}
		scale := 1.0
		if a.cfg.SlotNoiseSigma > 0 {
			scale = 1 + a.rng.NormFloat64()*a.cfg.SlotNoiseSigma
			if scale < 0.5 {
				scale = 0.5
			}
		}
		exec := edgesim.ExecuteEdge(a.cfg.Device, a.cfg.Apps, a.cfg.EdgeID,
			deps, a.cfg.NoiseSigma, scale, a.rng)
		if a.cfg.Realtime > 0 {
			select {
			case <-time.After(time.Duration(exec.MakespanMS*a.cfg.Realtime) * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := c.send(&Message{
			Type: TypeReport, EdgeID: a.cfg.EdgeID, Slot: m.Slot,
			CompletionMS: exec.CompletionMS, CompletionApp: exec.CompletionApp,
			Loss: exec.Loss, Feedback: exec.Feedback,
		}); err != nil {
			return fmt.Errorf("edgenet: agent %d report: %w", a.cfg.EdgeID, err)
		}
	}
}
