package edgenet

import (
	"context"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// dialJoin completes the v2 hello → resync handshake by hand and returns the
// connection plus the slot to serve next (nil on failure).
func dialJoin(t *testing.T, addr string, edgeID int, resume bool, lastSlot int) (*conn, int) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Errorf("edge %d dial: %v", edgeID, err)
		return nil, 0
	}
	c := &conn{raw: raw}
	if err := c.send(&Message{
		Type: TypeHello, EdgeID: edgeID, Version: ProtocolVersion,
		Resume: resume, LastSlot: lastSlot,
	}); err != nil {
		t.Errorf("edge %d hello: %v", edgeID, err)
		c.close()
		return nil, 0
	}
	m, err := c.recv()
	if err != nil || m.Type != TypeResync {
		t.Errorf("edge %d: no resync after hello (msg %+v, err %v)", edgeID, m, err)
		c.close()
		return nil, 0
	}
	return c, m.Slot
}

// driveEmptySlots answers n slots starting at slot start with exec's report
// (negative n: until the scheduler stops sending assignments). Returns after
// the first protocol hiccup — the callers crash the conn on purpose.
func driveEmptySlots(c *conn, edgeID, apps, start, n int, exec func(*Message) *Message) {
	for slot := start; n < 0 || slot < start+n; slot++ {
		arr := make([]int, apps)
		arr[0] = 2
		if err := c.send(&Message{Type: TypeArrivals, EdgeID: edgeID, Slot: slot, Arrivals: arr}); err != nil {
			return // server may have shut us down already
		}
		m, err := c.recv()
		if err != nil || m.Type != TypeAssign {
			return
		}
		if err := c.send(exec(m)); err != nil {
			return
		}
	}
}

// runFlakyAgent speaks the slot protocol directly and slams the connection
// shut after serving dieAfter slots — a deterministic agent crash.
func runFlakyAgent(t *testing.T, addr string, edgeID, apps, dieAfter int, exec func(*Message) *Message) {
	t.Helper()
	c, start := dialJoin(t, addr, edgeID, false, -1)
	if c == nil {
		return
	}
	defer c.close()
	driveEmptySlots(c, edgeID, apps, start, dieAfter, exec)
	// Crash: close without a word, mid-protocol.
}

// serveRealSlots drives the slot protocol with genuine local execution and
// zero local arrivals for n slots (negative n: until done), returning the
// number of requests this edge completed.
func serveRealSlots(c *conn, dev *accel.Device, apps []*models.Application, edgeID, start, n int) int {
	rng := rand.New(rand.NewSource(77))
	served := 0
	for slot := start; n < 0 || slot < start+n; slot++ {
		arr := make([]int, len(apps))
		if err := c.send(&Message{Type: TypeArrivals, EdgeID: edgeID, Slot: slot, Arrivals: arr}); err != nil {
			return served
		}
		m, err := c.recv()
		if err != nil || m.Type != TypeAssign {
			return served
		}
		deps := make([]edgesim.Deployment, len(m.Assignments))
		for i, asg := range m.Assignments {
			deps[i] = edgesim.Deployment{
				App: asg.App, Version: asg.Version, Edge: edgeID,
				Requests: asg.Requests, BatchSizes: asg.BatchSizes,
			}
		}
		exec := edgesim.ExecuteEdge(dev, apps, edgeID, deps, 0, 1, rng)
		if err := c.send(&Message{
			Type: TypeReport, EdgeID: edgeID, Slot: m.Slot,
			CompletionMS: exec.CompletionMS, CompletionApp: exec.CompletionApp,
			Loss: exec.Loss, Feedback: exec.Feedback,
		}); err != nil {
			return served
		}
		served += len(exec.CompletionMS)
	}
	return served
}

// emptyReport pretends the edge executed nothing (it still answers the slot).
func emptyReport(m *Message) *Message {
	return &Message{Type: TypeReport, EdgeID: m.EdgeID, Slot: m.Slot}
}

func TestServerToleratesAgentFailure(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	slots := 30
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: slots, Seed: 3, MeanPerSlot: 15, Imbalance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		k := k
		if k == 1 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runFlakyAgent(t, srv.Addr().String(), 1, 1, 3, emptyReport)
			}()
			continue
		}
		arr := make([][]int, slots)
		for tt := 0; tt < slots; tt++ {
			arr[tt] = []int{tr.R[tt][0][k]}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps,
			Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("healthy agent %d: %v", k, err)
			}
		}()
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server must survive one agent failure: %v", err)
	}
	wg.Wait()
	if len(rep.FailedEdges) != 1 || rep.FailedEdges[0] != 1 {
		t.Fatalf("failed edges = %v, want [1]", rep.FailedEdges)
	}
	if len(rep.RejoinedEdges) != 0 {
		t.Fatalf("no agent rejoined, but RejoinedEdges = %v", rep.RejoinedEdges)
	}
	if rep.DownSlots[1] == 0 {
		t.Fatal("failed edge accrued no downtime")
	}
	if rep.Served == 0 {
		t.Fatal("surviving edges served nothing")
	}
	if rep.Loss.Slots() != slots {
		t.Fatalf("loss recorded for %d slots, want %d", rep.Loss.Slots(), slots)
	}
}

func TestServerAbortsWhenAllAgentsFail(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: 50,
		SlotTimeout:      2 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = ctx
	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			runFlakyAgent(t, srv.Addr().String(), k, 1, 2+k, emptyReport)
		}()
	}
	if _, err := srv.Run(ctx); err == nil {
		t.Fatal("server must abort once every edge is dead")
	}
	wg.Wait()
}

func TestFailedEdgeWorkCountsAsDropped(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	slots := 10
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		k := k
		if k == 0 {
			// This agent carries real load and dies after 2 slots; any work
			// routed to it afterwards must surface as drops, not vanish.
			wg.Add(1)
			go func() {
				defer wg.Done()
				runFlakyAgent(t, srv.Addr().String(), 0, 1, 2, emptyReport)
			}()
			continue
		}
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{5}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = agent.Run(ctx)
		}()
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The healthy edges' arrivals continue to be served after the failure.
	if rep.Served == 0 {
		t.Fatal("no requests served")
	}
	if len(rep.FailedEdges) != 1 {
		t.Fatalf("failed edges = %v", rep.FailedEdges)
	}
}

func TestKilledEdgeRejoinsAfterRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection rejoin test skipped in short mode")
	}
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	slots := 40
	sched, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Heavy arrivals at edges 0 and 2 only: every request in the run
	// originates at an always-healthy edge, so Served+Dropped must equal
	// the no-failure request count no matter when edge 1 dies or rejoins.
	// Edge 1 contributes pure capacity — any request it completes was
	// redistributed to it by the scheduler.
	perSlot := 120
	total := slots * perSlot * 2
	var wg sync.WaitGroup
	for _, k := range []int{0, 2} {
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{perSlot}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(k int, agent *Agent) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("healthy agent %d: %v", k, err)
			}
		}(k, agent)
	}
	// The victim executes its redistributed load for 3 slots, then its
	// process "crashes" (hard close, mid-protocol).
	died := make(chan struct{})
	servedBeforeCrash := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(died)
		vc, start := dialJoin(t, srv.Addr().String(), 1, false, -1)
		if vc == nil {
			return
		}
		servedBeforeCrash = serveRealSlots(vc, c.Edges[1].Device, apps, 1, start, 3)
		vc.close()
	}()
	// The "restarted" victim: a brand-new connection (fresh hello, as a
	// restarted process would send) that must be resync'd into the live run.
	servedAfterRejoin := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-died
		rc, start := dialJoin(t, srv.Addr().String(), 1, true, 2)
		if rc == nil {
			return
		}
		defer rc.close()
		servedAfterRejoin = serveRealSlots(rc, c.Edges[1].Device, apps, 1, start, -1)
	}()

	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	if len(rep.FailedEdges) != 1 || rep.FailedEdges[0] != 1 {
		t.Fatalf("failed edges = %v, want [1]", rep.FailedEdges)
	}
	if len(rep.RejoinedEdges) != 1 || rep.RejoinedEdges[0] != 1 {
		t.Fatalf("rejoined edges = %v, want [1]", rep.RejoinedEdges)
	}
	if servedAfterRejoin == 0 {
		t.Fatal("rejoined edge served nothing in post-rejoin slots")
	}
	if rep.DownSlots[1] == 0 {
		t.Fatal("rejoined edge accrued no downtime")
	}
	if got := rep.Served + rep.Dropped; got != total {
		t.Fatalf("served+dropped = %d, want the no-failure request count %d", got, total)
	}
	if want := servedBeforeCrash + servedAfterRejoin; rep.ServedByEdge[1] != want {
		t.Fatalf("ServedByEdge[1] = %d, want %d (= %d before crash + %d after rejoin)",
			rep.ServedByEdge[1], want, servedBeforeCrash, servedAfterRejoin)
	}
}

func TestProtocolViolationToleratedAsEdgeFailure(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	slots := 6
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	// Edge 1 stays alive but goes off-script: after one clean slot it sends
	// a report where arrivals belong. The server must drop just this edge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vc, start := dialJoin(t, srv.Addr().String(), 1, false, -1)
		if vc == nil {
			return
		}
		defer vc.close()
		driveEmptySlots(vc, 1, 1, start, 1, emptyReport)
		_ = vc.send(&Message{Type: TypeReport, EdgeID: 1, Slot: start + 1})
		_, _ = vc.recv() // wait for the server to hang up
	}()
	for _, k := range []int{0, 2} {
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{8}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(k int, agent *Agent) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("healthy agent %d: %v", k, err)
			}
		}(k, agent)
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("a protocol violation from one edge must not abort a tolerant run: %v", err)
	}
	wg.Wait()
	if len(rep.FailedEdges) != 1 || rep.FailedEdges[0] != 1 {
		t.Fatalf("failed edges = %v, want [1]", rep.FailedEdges)
	}
	if rep.Served == 0 {
		t.Fatal("surviving edges served nothing")
	}
	if rep.Loss.Slots() != slots {
		t.Fatalf("loss recorded for %d slots, want %d", rep.Loss.Slots(), slots)
	}
}

func TestProtocolViolationAbortsWithoutTolerance(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: 6,
		SlotTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		vc, start := dialJoin(t, srv.Addr().String(), 1, false, -1)
		if vc == nil {
			return
		}
		defer vc.close()
		_ = vc.send(&Message{Type: TypeReport, EdgeID: 1, Slot: start})
		_, _ = vc.recv()
	}()
	for _, k := range []int{0, 2} {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			runFlakyAgent(t, srv.Addr().String(), k, 1, 6, emptyReport)
		}(k)
	}
	_, err = srv.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "want arrivals") {
		t.Fatalf("expected a protocol-violation abort, got %v", err)
	}
	wg.Wait()
}

func TestRegistrationRejectsDuplicateEdgeID(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	slots := 2
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Run the server first: registration replies come from inside Run.
	type runResult struct {
		rep *Report
		err error
	}
	resCh := make(chan runResult, 1)
	go func() {
		rep, err := srv.Run(ctx)
		resCh <- runResult{rep, err}
	}()
	// Register edge 0 by hand so the duplicate attempt is deterministic.
	c0, start := dialJoin(t, srv.Addr().String(), 0, false, -1)
	if c0 == nil {
		t.Fatal("edge 0 failed to register")
	}
	defer c0.close()
	// A second hello for the same edge id must be bounced with TypeError —
	// and must not abort the run for the agents that behaved.
	rawDup, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rawDup.Close()
	dup := &conn{raw: rawDup}
	if err := dup.send(&Message{Type: TypeHello, EdgeID: 0, Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	m, err := dup.recv()
	if err != nil {
		t.Fatalf("duplicate registrant: %v", err)
	}
	if m.Type != TypeError || !strings.Contains(m.Err, "duplicate") {
		t.Fatalf("duplicate registrant got %q (%q), want TypeError about a duplicate", m.Type, m.Err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		driveEmptySlots(c0, 0, 1, start, slots, emptyReport)
	}()
	for _, k := range []int{1, 2} {
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{4}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(k int, agent *Agent) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("agent %d: %v", k, err)
			}
		}(k, agent)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatalf("run must survive a duplicate registration attempt: %v", res.err)
	}
	wg.Wait()
	if len(res.rep.FailedEdges) != 0 {
		t.Fatalf("failed edges = %v, want none", res.rep.FailedEdges)
	}
}

func TestConcurrentCollectionMatchesSerial(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	slots := 6
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: slots, Seed: 11, MeanPerSlot: 20, Imbalance: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(serial bool) *Report {
		sched, err := core.New(core.Config{Cluster: c, Apps: apps})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(ServerConfig{
			Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
			Scheduler: sched, Slots: slots, SlotTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.serialPhases = serial
		return runSystem(t, srv, c, apps, tr, slots, 0)
	}
	conc, ser := run(false), run(true)
	if conc.Served != ser.Served || conc.Dropped != ser.Dropped {
		t.Fatalf("served/dropped diverge: concurrent %d/%d vs serial %d/%d",
			conc.Served, conc.Dropped, ser.Served, ser.Dropped)
	}
	if conc.Loss.Total() != ser.Loss.Total() {
		t.Fatalf("loss diverges: concurrent %v vs serial %v", conc.Loss.Total(), ser.Loss.Total())
	}
	for k := range conc.ServedByEdge {
		if conc.ServedByEdge[k] != ser.ServedByEdge[k] {
			t.Fatalf("ServedByEdge[%d]: concurrent %d vs serial %d",
				k, conc.ServedByEdge[k], ser.ServedByEdge[k])
		}
	}
	a := append([]float64(nil), conc.Completion...)
	b := append([]float64(nil), ser.Completion...)
	sort.Float64s(a)
	sort.Float64s(b)
	if len(a) != len(b) {
		t.Fatalf("completion counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion[%d]: concurrent %v vs serial %v", i, a[i], b[i])
		}
	}
}

func TestSetEdgeDownExcludesEdgeFromPlans(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEdgeDown(1, true)
	// Arrivals only at healthy edges; edge 1 must receive nothing.
	plan, err := s.Decide(0, [][]int{{20, 0, 15}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Deployments {
		if d.Edge == 1 {
			t.Fatalf("deployment on downed edge: %+v", d)
		}
	}
	for _, tr := range plan.Transfers {
		if tr.To == 1 {
			t.Fatalf("transfer into downed edge: %+v", tr)
		}
	}
	// Recovery restores the edge as a target.
	s.SetEdgeDown(1, false)
	sawEdge1 := false
	for t2 := 1; t2 < 6 && !sawEdge1; t2++ {
		plan, err = s.Decide(t2, [][]int{{120, 120, 120}})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range plan.Deployments {
			if d.Edge == 1 {
				sawEdge1 = true
			}
		}
	}
	if !sawEdge1 {
		t.Fatal("recovered edge never used again")
	}
}

var _ EdgeDownMarker = (*core.Scheduler)(nil)

var _ = edgesim.Deployment{} // document the shared plan vocabulary
