package edgenet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// runFlakyAgent speaks the slot protocol directly and slams the connection
// shut after serving dieAfter slots — a deterministic agent crash.
func runFlakyAgent(t *testing.T, addr string, edgeID, apps, dieAfter int, exec func(*Message) *Message) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Errorf("flaky agent dial: %v", err)
		return
	}
	defer raw.Close()
	c := &conn{raw: raw}
	if err := c.send(&Message{Type: TypeHello, EdgeID: edgeID, Version: ProtocolVersion}); err != nil {
		t.Errorf("flaky hello: %v", err)
		return
	}
	for slot := 0; slot < dieAfter; slot++ {
		arr := make([]int, apps)
		arr[0] = 2
		if err := c.send(&Message{Type: TypeArrivals, EdgeID: edgeID, Slot: slot, Arrivals: arr}); err != nil {
			return // server may have shut us down already
		}
		m, err := c.recv()
		if err != nil || m.Type != TypeAssign {
			return
		}
		if err := c.send(exec(m)); err != nil {
			return
		}
	}
	// Crash: close without a word, mid-protocol.
}

// emptyReport pretends the edge executed nothing (it still answers the slot).
func emptyReport(m *Message) *Message {
	return &Message{Type: TypeReport, EdgeID: m.EdgeID, Slot: m.Slot}
}

func TestServerToleratesAgentFailure(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	slots := 30
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: slots, Seed: 3, MeanPerSlot: 15, Imbalance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		k := k
		if k == 1 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runFlakyAgent(t, srv.Addr().String(), 1, 1, 3, emptyReport)
			}()
			continue
		}
		arr := make([][]int, slots)
		for tt := 0; tt < slots; tt++ {
			arr[tt] = []int{tr.R[tt][0][k]}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps,
			Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("healthy agent %d: %v", k, err)
			}
		}()
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server must survive one agent failure: %v", err)
	}
	wg.Wait()
	if len(rep.FailedEdges) != 1 || rep.FailedEdges[0] != 1 {
		t.Fatalf("failed edges = %v, want [1]", rep.FailedEdges)
	}
	if rep.Served == 0 {
		t.Fatal("surviving edges served nothing")
	}
	if rep.Loss.Slots() != slots {
		t.Fatalf("loss recorded for %d slots, want %d", rep.Loss.Slots(), slots)
	}
}

func TestServerAbortsWhenAllAgentsFail(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: 50,
		SlotTimeout:      2 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = ctx
	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			runFlakyAgent(t, srv.Addr().String(), k, 1, 2+k, emptyReport)
		}()
	}
	if _, err := srv.Run(ctx); err == nil {
		t.Fatal("server must abort once every edge is dead")
	}
	wg.Wait()
}

func TestFailedEdgeWorkCountsAsDropped(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	sched, _ := core.New(core.Config{Cluster: c, Apps: apps})
	slots := 10
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		k := k
		if k == 0 {
			// This agent carries real load and dies after 2 slots; any work
			// routed to it afterwards must surface as drops, not vanish.
			wg.Add(1)
			go func() {
				defer wg.Done()
				runFlakyAgent(t, srv.Addr().String(), 0, 1, 2, emptyReport)
			}()
			continue
		}
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{5}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr, Seed: int64(k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = agent.Run(ctx)
		}()
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The healthy edges' arrivals continue to be served after the failure.
	if rep.Served == 0 {
		t.Fatal("no requests served")
	}
	if len(rep.FailedEdges) != 1 {
		t.Fatalf("failed edges = %v", rep.FailedEdges)
	}
}

func TestSetEdgeDownExcludesEdgeFromPlans(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEdgeDown(1, true)
	// Arrivals only at healthy edges; edge 1 must receive nothing.
	plan, err := s.Decide(0, [][]int{{20, 0, 15}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Deployments {
		if d.Edge == 1 {
			t.Fatalf("deployment on downed edge: %+v", d)
		}
	}
	for _, tr := range plan.Transfers {
		if tr.To == 1 {
			t.Fatalf("transfer into downed edge: %+v", tr)
		}
	}
	// Recovery restores the edge as a target.
	s.SetEdgeDown(1, false)
	sawEdge1 := false
	for t2 := 1; t2 < 6 && !sawEdge1; t2++ {
		plan, err = s.Decide(t2, [][]int{{120, 120, 120}})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range plan.Deployments {
			if d.Edge == 1 {
				sawEdge1 = true
			}
		}
	}
	if !sawEdge1 {
		t.Fatal("recovered edge never used again")
	}
}

var _ EdgeDownMarker = (*core.Scheduler)(nil)

var _ = edgesim.Deployment{} // document the shared plan vocabulary
