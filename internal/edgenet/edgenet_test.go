package edgenet

import (
	"bytes"
	"context"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type: TypeAssign, EdgeID: 2, Slot: 7,
		Assignments: []Assignment{{App: 1, Version: 2, Requests: 5, BatchSizes: []int{3, 2}}},
		Dropped:     []int{0, 1},
	}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.EdgeID != 2 || out.Slot != 7 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if len(out.Assignments) != 1 || out.Assignments[0].BatchSizes[1] != 2 {
		t.Fatalf("assignments mismatch: %+v", out.Assignments)
	}
}

func TestReadMessageRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

func TestReadMessageRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("{{{")
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("garbage JSON must be rejected")
	}
}

func TestReadMessageShortFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10})
	buf.WriteString("short")
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("truncated frame must error")
	}
}

// startSystem boots a server plus one agent per edge and returns the report.
func startSystem(t *testing.T, c *cluster.Cluster, apps []*models.Application, sched edgesim.Scheduler, tr *trace.Trace, slots int, sigma float64) *Report {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: sched, Slots: slots, SlotTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return runSystem(t, srv, c, apps, tr, slots, sigma)
}

// runSystem drives a prebuilt server with one well-behaved agent per edge.
func runSystem(t *testing.T, srv *Server, c *cluster.Cluster, apps []*models.Application, tr *trace.Trace, slots int, sigma float64) *Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	agentErrs := make([]error, c.N())
	for k := 0; k < c.N(); k++ {
		arr := make([][]int, slots)
		for tt := 0; tt < slots; tt++ {
			arr[tt] = make([]int, len(apps))
			for i := range apps {
				arr[tt][i] = tr.R[tt][i][k]
			}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps,
			Arrivals: arr, NoiseSigma: sigma, Seed: int64(100 + k),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			agentErrs[k] = agent.Run(ctx)
		}(k)
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	for k, err := range agentErrs {
		if err != nil {
			t.Fatalf("agent %d: %v", k, err)
		}
	}
	return rep
}

func TestDistributedRunMatchesSimulator(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	slots := 6
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: slots, Seed: 5, MeanPerSlot: 20, Imbalance: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}

	mk := func() edgesim.Scheduler {
		s, err := core.New(core.Config{Cluster: c, Apps: apps})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Deterministic execution (sigma 0) must make the TCP prototype and the
	// in-process simulator agree exactly: same scheduler, same arrivals,
	// same executor.
	rep := startSystem(t, c, apps, mk(), tr, slots, 0)

	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(mk(), tr.R)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Served != simRes.Served {
		t.Fatalf("served: net %d vs sim %d", rep.Served, simRes.Served)
	}
	if rep.Dropped != simRes.Dropped {
		t.Fatalf("dropped: net %d vs sim %d", rep.Dropped, simRes.Dropped)
	}
	if math.Abs(rep.Loss.Total()-simRes.Loss.Total()) > 1e-9 {
		t.Fatalf("loss: net %v vs sim %v", rep.Loss.Total(), simRes.Loss.Total())
	}
	a := append([]float64(nil), rep.Completion...)
	b := append([]float64(nil), simRes.Completion...)
	sort.Float64s(a)
	sort.Float64s(b)
	if len(a) != len(b) {
		t.Fatalf("completion counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("completion[%d]: net %v vs sim %v", i, a[i], b[i])
		}
	}
}

func TestDistributedRunWithNoise(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	slots := 4
	tr, _ := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: slots, Seed: 7, MeanPerSlot: 15, Imbalance: 0.5,
	})
	s, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	rep := startSystem(t, c, apps, s, tr, slots, 0.05)
	if rep.Served == 0 {
		t.Fatal("nothing served")
	}
	if rep.Loss.Slots() != slots {
		t.Fatalf("loss slots = %d, want %d", rep.Loss.Slots(), slots)
	}
	if fr := rep.FailureRate(); fr < 0 || fr > 1 {
		t.Fatalf("failure rate %v", fr)
	}
}

func TestServerValidation(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	s, _ := core.New(core.Config{Cluster: c, Apps: apps})
	cases := []ServerConfig{
		{Listen: "127.0.0.1:0", Apps: apps, Scheduler: s, Slots: 1},
		{Listen: "127.0.0.1:0", Cluster: c, Scheduler: s, Slots: 1},
		{Listen: "127.0.0.1:0", Cluster: c, Apps: apps, Slots: 1},
		{Listen: "127.0.0.1:0", Cluster: c, Apps: apps, Scheduler: s, Slots: 0},
	}
	for i, cfg := range cases {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAgentValidation(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	cases := []AgentConfig{
		{Addr: "x", EdgeID: 0, Apps: apps, Arrivals: [][]int{{1}}},
		{Addr: "x", EdgeID: 0, Device: c.Edges[0].Device, Arrivals: [][]int{{1}}},
		{Addr: "x", EdgeID: -1, Device: c.Edges[0].Device, Apps: apps, Arrivals: [][]int{{1}}},
		{Addr: "x", EdgeID: 0, Device: c.Edges[0].Device, Apps: apps},
	}
	for i, cfg := range cases {
		if _, err := NewAgent(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestServerRejectsBadEdgeID(t *testing.T) {
	// An out-of-range registration is bounced with TypeError, but the run
	// survives: the correctly-behaving agents still register and complete.
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	s, _ := core.New(core.Config{Cluster: c, Apps: apps})
	slots := 2
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps, Scheduler: s, Slots: slots,
		SlotTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	badDone := make(chan error, 1)
	go func() {
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: 99,
			Device: c.Edges[0].Device, Apps: apps, Arrivals: [][]int{{1}},
		})
		if err != nil {
			badDone <- err
			return
		}
		badDone <- agent.Run(ctx)
	}()
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: slots, Seed: 2, MeanPerSlot: 5, Imbalance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := runSystem(t, srv, c, apps, tr, slots, 0)
	if rep.Served == 0 {
		t.Fatal("run with one rejected registrant served nothing")
	}
	select {
	case err := <-badDone:
		if err == nil || !strings.Contains(err.Error(), "edge id") {
			t.Fatalf("bad registrant should be told about its edge id, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bad registrant never heard back")
	}
}

func TestServerTimesOutWithoutAgents(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	s, _ := core.New(core.Config{Cluster: c, Apps: apps})
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps, Scheduler: s, Slots: 1,
		SlotTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := srv.Run(context.Background()); err == nil {
		t.Fatal("server must fail when no agents register")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("registration timeout did not fire promptly")
	}
}

func TestAgentRealtimePacing(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	slots := 2
	s, _ := core.New(core.Config{Cluster: c, Apps: apps})
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps,
		Scheduler: s, Slots: slots, SlotTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < c.N(); k++ {
		arr := make([][]int, slots)
		for tt := range arr {
			arr[tt] = []int{2}
		}
		agent, err := NewAgent(AgentConfig{
			Addr: srv.Addr().String(), EdgeID: k,
			Device: c.Edges[k].Device, Apps: apps, Arrivals: arr,
			Seed: int64(k), Realtime: 0.0001, // sleeps ~a fraction of a ms
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = agent.Run(ctx)
		}()
	}
	rep, err := srv.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rep.Served == 0 {
		t.Fatal("realtime agents served nothing")
	}
}

func TestAgentContextCancel(t *testing.T) {
	// An agent dialing a black-hole listener must abort on context cancel.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	agent, err := NewAgent(AgentConfig{
		Addr: ln.Addr().String(), EdgeID: 0,
		Device: c.Edges[0].Device, Apps: apps, Arrivals: [][]int{{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- agent.Run(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled agent should report an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not honor context cancellation")
	}
}

func TestWriteMessageOversized(t *testing.T) {
	huge := &Message{Type: TypeReport, CompletionMS: make([]float64, 12<<20)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, huge); err == nil {
		t.Fatal("oversized message must be rejected at write time")
	}
}

func TestServerRejectsProtocolMismatch(t *testing.T) {
	// A version-mismatched client is bounced with TypeError naming both
	// versions; the run itself survives and completes with the good agents.
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	s, _ := core.New(core.Config{Cluster: c, Apps: apps})
	slots := 2
	srv, err := NewServer(ServerConfig{
		Listen: "127.0.0.1:0", Cluster: c, Apps: apps, Scheduler: s, Slots: slots,
		SlotTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	reply := make(chan *Message, 1)
	go func() {
		raw, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			reply <- nil
			return
		}
		defer raw.Close()
		cc := &conn{raw: raw}
		_ = cc.send(&Message{Type: TypeHello, EdgeID: 0, Version: 99})
		m, _ := cc.recv()
		reply <- m
	}()
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: slots, Seed: 4, MeanPerSlot: 5, Imbalance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := runSystem(t, srv, c, apps, tr, slots, 0)
	if rep.Served == 0 {
		t.Fatal("run with one mismatched client served nothing")
	}
	select {
	case m := <-reply:
		if m == nil || m.Type != TypeError || !strings.Contains(m.Err, "protocol version") {
			t.Fatalf("mismatched client got %+v, want TypeError naming the protocol version", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mismatched client never heard back")
	}
}
