package serve

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"repro/internal/edgesim"
	"repro/internal/metrics"
)

// Planner re-solves the slot optimizer over a rolling arrival window.
// window[i][k] aggregates the requests attributed to edge k for app i
// since the last re-optimization; windowNS is the window's virtual length.
// core.Scheduler implements Planner directly (see core's Replan: rate
// rescaling plus the cross-slot incumbent/memo reuse layer); NewSlotPlanner
// adapts any plain edgesim.Scheduler.
type Planner interface {
	Replan(window [][]int, windowNS int64) (*edgesim.Plan, error)
}

// NewSlotPlanner adapts an edgesim.Scheduler into a Planner by feeding each
// window as the next slot's arrivals, unscaled — adequate when the
// re-optimization cadence equals the slot length.
func NewSlotPlanner(s edgesim.Scheduler) Planner { return &slotPlanner{s: s} }

type slotPlanner struct {
	s edgesim.Scheduler
	t int
}

func (p *slotPlanner) Replan(window [][]int, _ int64) (*edgesim.Plan, error) {
	plan, err := p.s.Decide(p.t, window)
	if err != nil {
		return nil, err
	}
	p.t++
	return plan, nil
}

// Config assembles a serving loop.
type Config struct {
	// Apps and Edges fix the request shape: 0 ≤ App < Apps,
	// 0 ≤ Region < Edges.
	Apps  int
	Edges int
	// Planner re-solves over the rolling window. Required unless
	// ExternalPlans.
	Planner Planner
	// Admission shedding policy (nil = AlwaysAdmit).
	Admission AdmissionPolicy
	// Router picks the serving edge (nil = round-robin).
	Router Router
	// ReoptEveryNS is the re-optimization cadence on the virtual clock;
	// must be > 0 unless ExternalPlans. The in-process path replans
	// synchronously at cadence boundaries (deterministic); a daemon calls
	// Tick from a background goroutine to replan off the decision path.
	ReoptEveryNS int64
	// MaxStaleNS bounds snapshot staleness at any decision: a decision
	// that would read an older snapshot triggers a synchronous forced
	// re-optimization first, so the bound holds by construction.
	// 0 = default to 2×ReoptEveryNS; negative = unbounded. While an
	// asynchronous Tick solve is in flight the forced path stands down
	// and waits for it to land (the bound is hard on the replay path,
	// best-effort within one solve latency under a live daemon).
	MaxStaleNS int64
	// Log receives the canonical decision log, one line per request
	// (nil = discard). Call Flush before reading what was written.
	Log io.Writer
	// ExternalPlans: snapshots arrive only via AdoptPlan (the edgenet
	// slot barrier) and internal re-optimization is disabled; Planner,
	// ReoptEveryNS, and MaxStaleNS are ignored.
	ExternalPlans bool
	// Bootstrap seeds the first plan's arrival window (nil = one request
	// per (app, region), so every edge starts with real capacity instead
	// of rejecting until the first cadence fires).
	Bootstrap [][]int
}

// Loop is the online serving loop: Submit (or Replay) drives admission →
// routing → accounting one request at a time under a single decision lock,
// while snapshots swap atomically underneath. All methods are safe for
// concurrent use.
type Loop struct {
	cfg Config
	adm AdmissionPolicy
	rtr Router

	snap holder // readable without mu

	mu             sync.Mutex
	clockNS        int64
	seq            int64
	window         [][]int // arrivals attributed since last replan
	windowStartNS  int64
	lastDemand     [][]int // last non-empty window (quiet-period replan input)
	routed         []int64 // per-edge routed count under the current snapshot
	down           []bool
	up             []bool // scratch for routers
	nextReoptNS    int64
	replanInFlight bool
	stats          *metrics.ServeStats
	log            *bufio.Writer
}

// NewLoop validates the configuration, solves the bootstrap plan (unless
// ExternalPlans), and returns a loop ready to serve at virtual time 0.
func NewLoop(cfg Config) (*Loop, error) {
	if cfg.Apps <= 0 || cfg.Edges <= 0 {
		return nil, fmt.Errorf("serve: need Apps > 0 and Edges > 0 (got %d, %d)", cfg.Apps, cfg.Edges)
	}
	if !cfg.ExternalPlans {
		if cfg.Planner == nil {
			return nil, fmt.Errorf("serve: Planner is required unless ExternalPlans")
		}
		if cfg.ReoptEveryNS <= 0 {
			return nil, fmt.Errorf("serve: ReoptEveryNS %d must be > 0", cfg.ReoptEveryNS)
		}
		if cfg.MaxStaleNS == 0 {
			cfg.MaxStaleNS = 2 * cfg.ReoptEveryNS
		}
	}
	l := &Loop{
		cfg:    cfg,
		adm:    cfg.Admission,
		rtr:    cfg.Router,
		window: zeroWindow(cfg.Apps, cfg.Edges),
		routed: make([]int64, cfg.Edges),
		down:   make([]bool, cfg.Edges),
		up:     make([]bool, cfg.Edges),
		stats:  metrics.NewServeStats(cfg.Edges),
	}
	if l.adm == nil {
		l.adm = AlwaysAdmit{}
	}
	if l.rtr == nil {
		l.rtr = &RoundRobin{}
	}
	if cfg.Log != nil {
		l.log = bufio.NewWriter(cfg.Log)
	}
	l.snap.swap(BuildSnapshot(0, 0, cfg.Edges, nil))
	if !cfg.ExternalPlans {
		boot := cfg.Bootstrap
		if boot == nil {
			boot = onesWindow(cfg.Apps, cfg.Edges)
		}
		if err := validWindow(boot, cfg.Apps, cfg.Edges); err != nil {
			return nil, fmt.Errorf("serve: bootstrap window: %w", err)
		}
		l.lastDemand = copyWindow(boot)
		if err := l.replanLocked(0, false); err != nil {
			return nil, fmt.Errorf("serve: bootstrap plan: %w", err)
		}
	}
	return l, nil
}

// Submit offers one request at virtual time req.ArriveNS and returns its
// decision. Decisions are made one at a time under the loop's lock, in
// call order; an error means the re-optimizer failed and the request was
// not decided.
func (l *Loop) Submit(req Request) (Decision, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.decide(req)
}

// Replay drives the loop from a scripted request stream (ArriveNS must be
// non-decreasing) and returns the final counters.
func (l *Loop) Replay(script []Request) (*metrics.ServeStats, error) {
	for i := range script {
		if i > 0 && script[i].ArriveNS < script[i-1].ArriveNS {
			return nil, fmt.Errorf("serve: replay script out of order at %d: %d < %d",
				i, script[i].ArriveNS, script[i-1].ArriveNS)
		}
		if _, err := l.Submit(script[i]); err != nil {
			return nil, fmt.Errorf("serve: replay request %d: %w", i, err)
		}
	}
	if err := l.Flush(); err != nil {
		return nil, err
	}
	return l.Stats(), nil
}

func (l *Loop) decide(req Request) (Decision, error) {
	l.stats.Submitted++
	if req.ArriveNS > l.clockNS {
		l.clockNS = req.ArriveNS
	}
	now := l.clockNS
	if !l.cfg.ExternalPlans && !l.replanInFlight {
		if now >= l.nextReoptNS {
			if err := l.replanLocked(now, false); err != nil {
				return Decision{}, err
			}
		}
		if l.cfg.MaxStaleNS > 0 && l.snap.load().StaleNS(now) > l.cfg.MaxStaleNS {
			if err := l.replanLocked(now, true); err != nil {
				return Decision{}, err
			}
		}
	}
	snap := l.snap.load()
	d := Decision{
		Seq: l.seq, Req: req, Edge: -1,
		SnapshotID: snap.ID, StaleNS: snap.StaleNS(now),
	}
	l.seq++
	switch {
	case req.App < 0 || req.App >= l.cfg.Apps || req.Region < 0 || req.Region >= l.cfg.Edges:
		d.Reason = ReasonBadRequest
	default:
		if ok, reason := l.adm.Admit(now, req); !ok {
			d.Reason = reason
		} else {
			for k := range l.up {
				l.up[k] = !l.down[k]
			}
			edge, reason := l.rtr.Route(req, snap, l.up, l.routed)
			if edge < 0 {
				// Routing-rejected demand still informs the next plan:
				// attribute it to the arrival region so the optimizer
				// learns about unserved load. Admission-rejected
				// requests were shed before entering and do not.
				d.Reason = reason
				l.window[req.App][req.Region]++
			} else {
				d.Admitted = true
				d.Edge = edge
				l.window[req.App][edge]++
				l.routed[edge]++
			}
		}
	}
	if d.Admitted {
		l.stats.NoteAdmit(d.Edge, d.StaleNS)
	} else {
		l.stats.NoteReject(d.Reason, d.StaleNS)
	}
	if l.log != nil {
		fmt.Fprintf(l.log, "%s\n", d)
	}
	return d, nil
}

// replanLocked re-solves synchronously with mu held: the replay path's
// deterministic cadence and the forced staleness path. A quiet window (all
// zeros) re-solves against the last non-empty demand so capacity persists
// through idle periods while the bandwidth/tuner state still advances.
func (l *Loop) replanLocked(nowNS int64, forced bool) error {
	in, windowNS := l.takeWindowLocked(nowNS)
	plan, err := l.cfg.Planner.Replan(in, windowNS)
	if err != nil {
		l.stats.ReplanErrors++
		return err
	}
	l.adoptLocked(nowNS, plan, forced)
	return nil
}

// takeWindowLocked consumes the rolling window (resetting it) and returns
// the replan input and the window's virtual length.
func (l *Loop) takeWindowLocked(nowNS int64) ([][]int, int64) {
	in := l.window
	if windowZero(in) {
		in = l.lastDemand
	} else {
		l.lastDemand = in
	}
	windowNS := nowNS - l.windowStartNS
	if windowNS <= 0 {
		windowNS = l.cfg.ReoptEveryNS
	}
	l.window = zeroWindow(l.cfg.Apps, l.cfg.Edges)
	l.windowStartNS = nowNS
	l.nextReoptNS = nowNS + l.cfg.ReoptEveryNS
	return in, windowNS
}

// adoptLocked installs a freshly solved plan as the new snapshot.
func (l *Loop) adoptLocked(nowNS int64, plan *edgesim.Plan, forced bool) {
	id := l.snap.load().ID + 1
	l.snap.swap(BuildSnapshot(id, nowNS, l.cfg.Edges, plan))
	for k := range l.routed {
		l.routed[k] = 0
	}
	l.stats.NoteReplan(forced)
}

// Tick advances the virtual clock and runs any due re-optimization with
// the decision lock RELEASED during the solve — the daemon's background
// re-optimizer calls this on its cadence so admissions never wait on solve
// latency and snapshots stay fresh through quiet periods. Requests
// arriving mid-solve accumulate into the next window. No-op under
// ExternalPlans.
func (l *Loop) Tick(nowNS int64) error {
	l.mu.Lock()
	if nowNS > l.clockNS {
		l.clockNS = nowNS
	}
	if l.cfg.ExternalPlans || l.replanInFlight || l.clockNS < l.nextReoptNS {
		l.mu.Unlock()
		return nil
	}
	l.replanInFlight = true
	now := l.clockNS
	in, windowNS := l.takeWindowLocked(now)
	l.mu.Unlock()

	plan, err := l.cfg.Planner.Replan(in, windowNS) // expensive; unlocked

	l.mu.Lock()
	l.replanInFlight = false
	if err != nil {
		l.stats.ReplanErrors++
	} else {
		l.adoptLocked(now, plan, false)
	}
	l.mu.Unlock()
	return err
}

// AdoptPlan installs an externally computed plan (the edgenet slot
// barrier's Decide output) as the new snapshot at virtual time nowNS.
func (l *Loop) AdoptPlan(nowNS int64, plan *edgesim.Plan) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if nowNS > l.clockNS {
		l.clockNS = nowNS
	}
	l.adoptLocked(nowNS, plan, false)
}

// DrainWindow returns and resets the rolling arrival window — the edgenet
// serving path feeds this to the slot barrier as its ArrivalSource.
func (l *Loop) DrainWindow() [][]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	w := l.window
	l.window = zeroWindow(l.cfg.Apps, l.cfg.Edges)
	if !windowZero(w) {
		l.lastDemand = w
	}
	return copyWindow(w)
}

// SetEdgeDown marks edge k dead (down=true) or recovered; routers skip
// dead edges immediately. The planner's own down-marking (core
// SetEdgeDown) is the caller's responsibility — the loop only steers.
func (l *Loop) SetEdgeDown(k int, down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if k >= 0 && k < len(l.down) {
		l.down[k] = down
	}
}

// Snapshot returns the current routing snapshot (lock-free).
func (l *Loop) Snapshot() *Snapshot { return l.snap.load() }

// Stats returns a consistent copy of the serving counters.
func (l *Loop) Stats() *metrics.ServeStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats.Clone()
}

// Flush drains the buffered decision log to the configured writer.
func (l *Loop) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return nil
	}
	return l.log.Flush()
}

func zeroWindow(apps, edges int) [][]int {
	w := make([][]int, apps)
	cells := make([]int, apps*edges)
	for i := range w {
		w[i] = cells[i*edges : (i+1)*edges : (i+1)*edges]
	}
	return w
}

func onesWindow(apps, edges int) [][]int {
	w := zeroWindow(apps, edges)
	for i := range w {
		for k := range w[i] {
			w[i][k] = 1
		}
	}
	return w
}

func copyWindow(w [][]int) [][]int {
	out := make([][]int, len(w))
	for i := range w {
		out[i] = append([]int(nil), w[i]...)
	}
	return out
}

func windowZero(w [][]int) bool {
	for i := range w {
		for _, v := range w[i] {
			if v != 0 {
				return false
			}
		}
	}
	return true
}

func validWindow(w [][]int, apps, edges int) error {
	if len(w) != apps {
		return fmt.Errorf("want %d app rows, got %d", apps, len(w))
	}
	for i := range w {
		if len(w[i]) != edges {
			return fmt.Errorf("app %d: want %d edge cells, got %d", i, edges, len(w[i]))
		}
		for k, v := range w[i] {
			if v < 0 {
				return fmt.Errorf("app %d edge %d: negative count %d", i, k, v)
			}
		}
	}
	return nil
}
