package serve

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// stubPlanner deals fixed per-edge capacities and records every window it
// was asked to re-solve.
type stubPlanner struct {
	caps    []int
	calls   int
	windows [][][]int
}

func (p *stubPlanner) Replan(window [][]int, _ int64) (*edgesim.Plan, error) {
	p.calls++
	p.windows = append(p.windows, copyWindow(window))
	plan := &edgesim.Plan{}
	for k, c := range p.caps {
		if c > 0 {
			plan.Deployments = append(plan.Deployments, edgesim.Deployment{Edge: k, Requests: c})
		}
	}
	return plan, nil
}

const secNS = int64(1e9)

func TestLoopAccountingInvariants(t *testing.T) {
	var log bytes.Buffer
	adm, _ := NewTokenBucket(2, 1)
	l, err := NewLoop(Config{
		Apps: 2, Edges: 3,
		Planner:      &stubPlanner{caps: []int{5, 5, 5}},
		Admission:    adm,
		ReoptEveryNS: 10 * secNS,
		Log:          &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	script := []Request{
		{ID: 0, App: 0, Region: 0, ArriveNS: 0},
		{ID: 1, App: 1, Region: 1, ArriveNS: 0},
		{ID: 2, App: 0, Region: 2, ArriveNS: 0},          // bucket dry → rate-limit
		{ID: 3, App: 9, Region: 0, ArriveNS: 1 * secNS},  // bad app index
		{ID: 4, App: 0, Region: -1, ArriveNS: 1 * secNS}, // bad region
		{ID: 5, App: 1, Region: 0, ArriveNS: 5 * secNS},
	}
	stats, err := l.Replay(script)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != int64(len(script)) {
		t.Fatalf("submitted %d, want %d", stats.Submitted, len(script))
	}
	if got := stats.Admitted + stats.RejectedTotal(); got != stats.Submitted {
		t.Fatalf("accounting leak: admitted %d + rejected %d != submitted %d",
			stats.Admitted, stats.RejectedTotal(), stats.Submitted)
	}
	var routed int64
	for _, n := range stats.RoutedByEdge {
		routed += n
	}
	if routed != stats.Admitted {
		t.Fatalf("routed-by-edge sum %d != admitted %d", routed, stats.Admitted)
	}
	if stats.Rejected[ReasonRate] != 1 || stats.Rejected[ReasonBadRequest] != 2 {
		t.Fatalf("reject reasons %v, want 1 rate-limit and 2 bad-request", stats.Rejected)
	}
	if got := int64(bytes.Count(log.Bytes(), []byte("\n"))); got != stats.Submitted {
		t.Fatalf("decision log has %d lines, want one per request (%d)", got, stats.Submitted)
	}
}

func TestLoopForcedReplanBoundsStaleness(t *testing.T) {
	p := &stubPlanner{caps: []int{4, 4}}
	l, err := NewLoop(Config{
		Apps: 1, Edges: 2,
		Planner:      p,
		ReoptEveryNS: 10 * secNS,
		MaxStaleNS:   5 * secNS,
	})
	if err != nil {
		t.Fatal(err)
	}
	script := []Request{
		{ID: 0, App: 0, Region: 0, ArriveNS: 0},
		{ID: 1, App: 0, Region: 0, ArriveNS: 1 * secNS},
		{ID: 2, App: 0, Region: 0, ArriveNS: 7 * secNS},  // stale 7s > 5s → forced
		{ID: 3, App: 0, Region: 0, ArriveNS: 12 * secNS}, // stale 5s = bound, allowed
	}
	stats, err := l.Replay(script)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ForcedReplans == 0 {
		t.Fatal("expected at least one forced re-optimization")
	}
	if stats.MaxStaleNS > 5*secNS {
		t.Fatalf("staleness bound violated: max %dns > %dns", stats.MaxStaleNS, 5*secNS)
	}
}

func TestLoopNoEdgeDemandFeedsNextReplan(t *testing.T) {
	p := &stubPlanner{caps: []int{0, 0}} // plan allocates nothing
	l, err := NewLoop(Config{
		Apps: 1, Edges: 2,
		Planner:      p,
		ReoptEveryNS: 10 * secNS,
		MaxStaleNS:   -1, // unbounded: exercise the cadence path alone
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := l.Submit(Request{ID: 0, App: 0, Region: 1, ArriveNS: 1 * secNS})
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted || d.Reason != ReasonNoEdge {
		t.Fatalf("want no-edge rejection, got %+v", d)
	}
	// Cross the cadence: the rejected request's demand must reach the
	// planner, attributed to its arrival region.
	if _, err := l.Submit(Request{ID: 1, App: 0, Region: 0, ArriveNS: 11 * secNS}); err != nil {
		t.Fatal(err)
	}
	last := p.windows[len(p.windows)-1]
	if last[0][1] != 1 {
		t.Fatalf("unserved demand not attributed to region 1: %v", last)
	}
}

func TestLoopSetEdgeDownSteersRouting(t *testing.T) {
	l, err := NewLoop(Config{
		Apps: 1, Edges: 2,
		Planner:      &stubPlanner{caps: []int{4, 4}},
		ReoptEveryNS: 10 * secNS,
	})
	if err != nil {
		t.Fatal(err)
	}
	l.SetEdgeDown(0, true)
	for q := 0; q < 4; q++ {
		d, err := l.Submit(Request{ID: int64(q), App: 0, Region: 0, ArriveNS: int64(q)})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Admitted || d.Edge != 1 {
			t.Fatalf("request %d: want edge 1 (edge 0 down), got %+v", q, d)
		}
	}
	l.SetEdgeDown(0, false)
	d, _ := l.Submit(Request{ID: 9, App: 0, Region: 0, ArriveNS: 9})
	if d.Edge != 0 {
		t.Fatalf("recovered edge not routed to: %+v", d)
	}
}

func TestLoopTickReplansOffTheDecisionPath(t *testing.T) {
	p := &stubPlanner{caps: []int{4}}
	l, err := NewLoop(Config{
		Apps: 1, Edges: 1,
		Planner:      p,
		ReoptEveryNS: 10 * secNS,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := l.Snapshot().ID
	if err := l.Tick(5 * secNS); err != nil { // not due yet
		t.Fatal(err)
	}
	if l.Snapshot().ID != before {
		t.Fatal("tick before the cadence replanned")
	}
	if err := l.Tick(11 * secNS); err != nil {
		t.Fatal(err)
	}
	if l.Snapshot().ID != before+1 {
		t.Fatalf("due tick did not swap the snapshot (id %d → %d)", before, l.Snapshot().ID)
	}
	if l.Snapshot().MadeNS != 11*secNS {
		t.Fatalf("snapshot stamped %d, want 11s", l.Snapshot().MadeNS)
	}
}

func TestLoopAdoptPlanExternalMode(t *testing.T) {
	l, err := NewLoop(Config{Apps: 1, Edges: 2, ExternalPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	// Before any plan: zero capacity everywhere → accounted rejection.
	d, err := l.Submit(Request{ID: 0, App: 0, Region: 0, ArriveNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted || d.Reason != ReasonNoEdge {
		t.Fatalf("pre-plan request not rejected no-edge: %+v", d)
	}
	l.AdoptPlan(2, &edgesim.Plan{Deployments: []edgesim.Deployment{{Edge: 1, Requests: 3}}})
	d, err = l.Submit(Request{ID: 1, App: 0, Region: 0, ArriveNS: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted || d.Edge != 1 {
		t.Fatalf("post-adopt request not served by edge 1: %+v", d)
	}
	w := l.DrainWindow()
	if w[0][1] != 1 {
		t.Fatalf("drained window %v, want the routed request at (0,1)", w)
	}
	if w2 := l.DrainWindow(); !windowZero(w2) {
		t.Fatalf("second drain not empty: %v", w2)
	}
}

// genTestScript mirrors cmd/birpserve's generator: trace arrivals spread
// evenly over each slot in (app, edge) order.
func genTestScript(t *testing.T, c *cluster.Cluster, apps int, seed int64, n int) []Request {
	t.Helper()
	tr, err := trace.Generate(trace.Config{
		Apps: apps, Edges: c.N(), Slots: 32, Seed: seed,
		MeanPerSlot: 6, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	slotNS := int64(c.SlotMS()) * int64(1e6)
	var script []Request
	id := int64(0)
	for tt := 0; len(script) < n; tt++ {
		slot := tr.R[tt%tr.Slots]
		total := 0
		for i := range slot {
			for _, v := range slot[i] {
				total += v
			}
		}
		if total == 0 {
			continue
		}
		j := 0
		for i := range slot {
			for k, v := range slot[i] {
				for q := 0; q < v; q++ {
					if len(script) >= n {
						return script
					}
					script = append(script, Request{
						ID: id, App: i, Region: k,
						ArriveNS: int64(tt)*slotNS + int64(j)*slotNS/int64(total),
					})
					id++
					j++
				}
			}
		}
	}
	return script
}

// TestLoopDeterministicAcrossWorkers is the satellite determinism test:
// the same seed and arrival script must produce a byte-identical
// admit/route decision log whatever the planner's worker count — the
// optimizer's plans are byte-identical across workers, and the decision
// path is a pure function of script × plan.
func TestLoopDeterministicAcrossWorkers(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	script := genTestScript(t, c, len(apps), 7, 300)
	run := func(workers int) ([]byte, *int64) {
		sched, err := core.New(core.Config{Cluster: c, Apps: apps, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		adm, err := NewTokenBucket(16, 4)
		if err != nil {
			t.Fatal(err)
		}
		var log bytes.Buffer
		l, err := NewLoop(Config{
			Apps: len(apps), Edges: c.N(),
			Planner:      sched,
			Admission:    adm,
			Router:       LeastLoaded{},
			ReoptEveryNS: int64(c.SlotMS()) * int64(1e6),
			Log:          &log,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := l.Replay(script)
		if err != nil {
			t.Fatal(err)
		}
		return log.Bytes(), &stats.Admitted
	}
	log1, adm1 := run(1)
	log4, adm4 := run(4)
	if !bytes.Equal(log1, log4) {
		i := 0
		for i < len(log1) && i < len(log4) && log1[i] == log4[i] {
			i++
		}
		t.Fatalf("decision logs differ between workers 1 and 4 at byte %d:\n  w1: %s\n  w4: %s",
			i, excerpt(log1, i), excerpt(log4, i))
	}
	if *adm1 == 0 {
		t.Fatal("nothing admitted — the determinism check would be vacuous")
	}
	_ = adm4
}

func excerpt(b []byte, at int) string {
	lo, hi := at-40, at+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(b) {
		hi = len(b)
	}
	return fmt.Sprintf("%q", b[lo:hi])
}
