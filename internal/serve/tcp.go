package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// wireDecision is the JSON-lines response: one object per request object
// received, in order.
type wireDecision struct {
	ID     int64  `json:"id"`
	Admit  bool   `json:"admit"`
	Edge   int    `json:"edge"`
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Frontend serves the newline-delimited JSON request protocol over TCP:
// each line in is a Request object ({"id","app","region"}), each line out
// the matching decision ({"id","admit","edge","reason"}). A request
// carrying no arrive_ns is stamped with the injected clock — the only
// place wall time may enter the serving layer, and it stays in the
// caller's hands (tests inject a virtual counter; the daemon injects a
// monotonic wall reading).
type Frontend struct {
	loop *Loop
	now  func() int64
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewFrontend listens on addr ("host:port", empty port for ephemeral) and
// starts the accept loop. nowNS supplies arrival timestamps for requests
// that carry none; it must be monotone non-decreasing.
func NewFrontend(loop *Loop, addr string, nowNS func() int64) (*Frontend, error) {
	if nowNS == nil {
		return nil, fmt.Errorf("serve: frontend needs a clock")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	f := &Frontend{loop: loop, now: nowNS, ln: ln, conns: map[net.Conn]struct{}{}}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr is the bound listen address (useful with an ephemeral port).
func (f *Frontend) Addr() string { return f.ln.Addr().String() }

func (f *Frontend) acceptLoop() {
	defer f.wg.Done()
	for {
		c, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !f.track(c) {
			c.Close()
			return
		}
		f.wg.Add(1)
		go f.serveConn(c)
	}
}

func (f *Frontend) serveConn(c net.Conn) {
	defer f.wg.Done()
	defer f.untrack(c)
	defer c.Close()
	dec := json.NewDecoder(c)
	enc := json.NewEncoder(c)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF, malformed line, or conn severed by Close
		}
		if req.ArriveNS == 0 {
			req.ArriveNS = f.now()
		}
		d, err := f.loop.Submit(req)
		if err != nil {
			_ = enc.Encode(wireDecision{ID: req.ID, Edge: -1, Error: err.Error()})
			return
		}
		resp := wireDecision{ID: d.Req.ID, Admit: d.Admitted, Edge: d.Edge, Reason: d.Reason}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// track registers a live conn; false once Close has begun (the conn must
// not be served — Close already snapshotted the set it will sever).
func (f *Frontend) track(c net.Conn) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false
	}
	f.conns[c] = struct{}{}
	return true
}

func (f *Frontend) untrack(c net.Conn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.conns, c)
}

// Close stops accepting, severs every live connection (unblocking their
// reads), and waits for all handler goroutines to exit. Idempotent and
// safe to call concurrently.
func (f *Frontend) Close() error {
	f.mu.Lock()
	already := f.closed
	f.closed = true
	err := f.ln.Close()
	for c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
	if already || err == nil || errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
