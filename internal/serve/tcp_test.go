package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

func TestFrontendRoundTripAndCleanShutdown(t *testing.T) {
	base := runtime.NumGoroutine()
	l, err := NewLoop(Config{
		Apps: 1, Edges: 2,
		Planner:      &stubPlanner{caps: []int{4, 4}},
		ReoptEveryNS: 10 * secNS,
	})
	if err != nil {
		t.Fatal(err)
	}
	var clock int64
	fe, err := NewFrontend(l, "127.0.0.1:0", func() int64 { clock++; return clock })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	for q := 0; q < 3; q++ {
		fmt.Fprintf(conn, `{"id":%d,"app":0,"region":%d}`+"\n", q, q%2)
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("response %d: %v", q, err)
		}
		var d wireDecision
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("response %d: %v in %q", q, err, line)
		}
		if d.ID != int64(q) || !d.Admit || d.Edge < 0 {
			t.Fatalf("response %d: %+v", q, d)
		}
	}
	// A malformed line closes that conn without disturbing the loop.
	bad, err := net.Dial("tcp", fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(bad, "not json at all")
	_ = bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(bad).ReadByte(); err == nil {
		t.Fatal("malformed request did not close the connection")
	}
	bad.Close()

	// Close must sever the idle conn above (no in-flight request) and
	// reap every goroutine; double Close stays nil.
	if err := fe.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := fe.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	stats := l.Stats()
	if stats.Admitted != 3 {
		t.Fatalf("admitted %d, want 3", stats.Admitted)
	}
	waitGoroutines(t, base)
}

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline — Close claims every handler goroutine has been joined.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFrontendRequiresClock(t *testing.T) {
	l, err := NewLoop(Config{Apps: 1, Edges: 1, ExternalPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFrontend(l, "127.0.0.1:0", nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}
