package serve

import (
	"math/rand"
	"testing"
)

func TestNewTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(0.5, 10); err == nil {
		t.Fatal("capacity < 1 must be rejected")
	}
	if _, err := NewTokenBucket(10, 0); err == nil {
		t.Fatal("zero refill rate must be rejected")
	}
	if _, err := NewTokenBucket(10, -1); err == nil {
		t.Fatal("negative refill rate must be rejected")
	}
	if _, err := NewTokenBucket(1, 0.001); err != nil {
		t.Fatalf("minimal valid bucket rejected: %v", err)
	}
}

func TestTokenBucketStartsFullAndSheds(t *testing.T) {
	b, err := NewTokenBucket(3, 1) // 3-token burst, 1 token/s
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		if ok, _ := b.Admit(0, Request{}); !ok {
			t.Fatalf("burst request %d rejected with a full bucket", q)
		}
	}
	if ok, reason := b.Admit(0, Request{}); ok || reason != ReasonRate {
		t.Fatalf("dry bucket admitted (ok=%v reason=%q)", ok, reason)
	}
	// One virtual second refills exactly one token.
	if ok, _ := b.Admit(1e9, Request{}); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := b.Admit(1e9, Request{}); ok {
		t.Fatal("second request at the same instant over-granted")
	}
}

// TestTokenBucketLargeStepClamps is the regression for the refill-order
// bug: a single virtual-time step spanning many refill periods must credit
// at most one full bucket — accumulate-then-clamp. The broken order
// (clamp, then accumulate the whole span uncapped) leaves the bucket
// holding far more than capacity and the subsequent burst over-admits.
func TestTokenBucketLargeStepClamps(t *testing.T) {
	b, err := NewTokenBucket(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the initial burst at t=0.
	for q := 0; q < 5; q++ {
		b.Admit(0, Request{})
	}
	// Jump 100 virtual seconds: 1000 tokens of raw refill, clamped to 5.
	admitted := 0
	for q := 0; q < 50; q++ {
		if ok, _ := b.Admit(100e9, Request{}); ok {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("burst after a long quiet period admitted %d, want exactly capacity 5", admitted)
	}
}

func TestTokenBucketBackwardClockCreditsNothing(t *testing.T) {
	b, err := NewTokenBucket(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Admit(10e9, Request{})
	b.Admit(10e9, Request{}) // bucket dry at t=10s
	if ok, _ := b.Admit(5e9, Request{}); ok {
		t.Fatal("backward timestamp minted tokens")
	}
}

// TestTokenBucketWindowBound is the satellite property test: over ANY
// window of the admission history, admitted ≤ capacity + rate·window. A
// clamp-then-accumulate refill violates this after large time steps; the
// correct order satisfies it for every window.
func TestTokenBucketWindowBound(t *testing.T) {
	const (
		capacity = 7.0
		rate     = 3.0 // tokens per virtual second
	)
	rng := rand.New(rand.NewSource(42))
	b, err := NewTokenBucket(capacity, rate)
	if err != nil {
		t.Fatal(err)
	}
	type event struct {
		ns       int64
		admitted bool
	}
	var events []event
	now := int64(0)
	for q := 0; q < 400; q++ {
		// Mixed gaps: dense bursts, sub-second pacing, and occasional
		// multi-period jumps (the over-grant trigger).
		switch rng.Intn(5) {
		case 0: // same-instant burst
		case 1:
			now += int64(rng.Intn(50)) * 1e6 // up to 50ms
		case 2:
			now += int64(rng.Intn(500)) * 1e6 // up to 0.5s
		case 3:
			now += int64(1+rng.Intn(3)) * 1e9 // 1-3s
		case 4:
			now += int64(10+rng.Intn(30)) * 1e9 // 10-40s jump
		}
		ok, _ := b.Admit(now, Request{ID: int64(q)})
		events = append(events, event{ns: now, admitted: ok})
	}
	// Exhaustive O(n²) window check.
	for lo := 0; lo < len(events); lo++ {
		admitted := 0
		for hi := lo; hi < len(events); hi++ {
			if events[hi].admitted {
				admitted++
			}
			window := float64(events[hi].ns-events[lo].ns) / 1e9
			// +1: the window is closed on both ends, so the request AT the
			// left edge may itself have been granted from the same budget.
			bound := capacity + rate*window + 1
			if float64(admitted) > bound {
				t.Fatalf("window [%d,%d] (%.3fs): admitted %d > bound %.2f",
					lo, hi, window, admitted, bound)
			}
		}
	}
}

func TestNewAdmission(t *testing.T) {
	if p, err := NewAdmission("always", 0, 0); err != nil || p.Name() != "always" {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := NewAdmission("token-bucket", 4, 2); err != nil || p.Name() != "token-bucket" {
		t.Fatalf("token-bucket: %v %v", p, err)
	}
	if _, err := NewAdmission("token-bucket", 0, 2); err == nil {
		t.Fatal("invalid token-bucket knobs accepted")
	}
	if _, err := NewAdmission("nope", 0, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
