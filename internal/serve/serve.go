// Package serve is the online serving layer in front of the slot optimizer:
// a continuous request stream passes token-bucket admission and a pluggable
// router that dispatches against an immutable snapshot of the last plan,
// while re-optimization runs over the rolling arrival window and atomically
// swaps the snapshot. It decouples per-request serving latency from solve
// latency — the slot-batch pipeline aggregates a whole slot before anything
// runs; here a request is admitted and routed in microseconds against the
// most recent plan, and the optimizer catches up in the background.
//
// Everything in this package runs on a virtual clock: int64 nanoseconds
// carried by the requests themselves (Request.ArriveNS) or fed through
// Loop.Tick. Given the same request script and configuration the
// admit/route decision log is byte-identical run to run and across planner
// worker counts — the wall clock never feeds a decision. The daemon front
// end (cmd/birpserve) maps wall time onto the virtual clock at the very
// edge of the process; tests and replays never read a clock at all.
package serve

import "fmt"

// Request is one inference request offered to the serving loop.
type Request struct {
	// ID is the caller's correlation id (echoed in the decision log).
	ID int64 `json:"id"`
	// App indexes the application issuing the request.
	App int `json:"app"`
	// Region is the edge the request arrived at (its network home); the
	// affinity router prefers it and rejected demand is attributed to it.
	Region int `json:"region"`
	// ArriveNS is the arrival time on the virtual clock. Scripts must be
	// non-decreasing; the loop's clock never runs backward regardless.
	ArriveNS int64 `json:"arrive_ns"`
}

// Decision is the outcome of one request: admitted-and-routed, or rejected
// with a reason. Exactly one decision exists per submitted request.
type Decision struct {
	// Seq is the loop-assigned decision sequence number (0-based).
	Seq int64 `json:"seq"`
	// Req echoes the request being decided.
	Req Request `json:"req"`
	// Admitted is true when the request passed admission and was routed.
	Admitted bool `json:"admitted"`
	// Reason explains a rejection ("" when admitted): ReasonRate,
	// ReasonNoEdge, ReasonBadRequest.
	Reason string `json:"reason,omitempty"`
	// Edge is the serving edge (-1 when not routed).
	Edge int `json:"edge"`
	// SnapshotID and StaleNS identify the plan snapshot the decision was
	// made against and its age at decision time.
	SnapshotID int64 `json:"snapshot_id"`
	StaleNS    int64 `json:"stale_ns"`
}

// Rejection reasons. Every shed request carries exactly one.
const (
	// ReasonRate: the admission policy shed the request (token bucket dry).
	ReasonRate = "rate-limit"
	// ReasonNoEdge: no live edge with plan capacity could serve it.
	ReasonNoEdge = "no-edge"
	// ReasonBadRequest: app or region index outside the configured shape.
	ReasonBadRequest = "bad-request"
)

// String renders the canonical decision-log line (no trailing newline).
// The format is stable: the byte-identity acceptance check compares these
// lines across worker counts.
func (d Decision) String() string {
	admit := 0
	if d.Admitted {
		admit = 1
	}
	reason := d.Reason
	if reason == "" {
		reason = "-"
	}
	return fmt.Sprintf("%d %d app=%d region=%d admit=%d reason=%s edge=%d snap=%d stale_ns=%d",
		d.Seq, d.Req.ID, d.Req.App, d.Req.Region, admit, reason, d.Edge, d.SnapshotID, d.StaleNS)
}
