package serve

import (
	"sync/atomic"

	"repro/internal/edgesim"
)

// Snapshot is an immutable routing view of one optimizer plan — the
// substrate every decision between two re-optimizations dispatches
// against. Snapshots are never mutated after construction: the
// re-optimizer builds a fresh one and swaps the pointer, so the serving
// path reads a consistent plan without holding the optimizer's locks.
type Snapshot struct {
	// ID is the plan generation: 0 for the empty pre-plan snapshot, 1 for
	// the bootstrap plan, +1 per re-optimization adopted.
	ID int64
	// MadeNS is the virtual time the snapshot was installed; staleness at
	// a decision is the decision time minus MadeNS.
	MadeNS int64
	// CapPerSlot[k] is the number of requests the plan assigns edge k per
	// slot — the router's eligibility and proportional-load signal.
	CapPerSlot []int
	// Plan is the underlying slot plan (read-only; nil for ID 0).
	Plan *edgesim.Plan
}

// BuildSnapshot derives the routing view from a plan over a K-edge
// cluster: per-edge capacity is the sum of deployed request allocations.
func BuildSnapshot(id, madeNS int64, K int, plan *edgesim.Plan) *Snapshot {
	s := &Snapshot{ID: id, MadeNS: madeNS, CapPerSlot: make([]int, K), Plan: plan}
	if plan != nil {
		for _, d := range plan.Deployments {
			if d.Edge >= 0 && d.Edge < K {
				s.CapPerSlot[d.Edge] += d.Requests
			}
		}
	}
	return s
}

// StaleNS is the snapshot's age at virtual time nowNS (never negative).
func (s *Snapshot) StaleNS(nowNS int64) int64 {
	if d := nowNS - s.MadeNS; d > 0 {
		return d
	}
	return 0
}

// holder publishes the current snapshot with atomic pointer swaps so
// metrics readers outside the decision lock still see a whole snapshot.
type holder struct{ p atomic.Pointer[Snapshot] }

func (h *holder) load() *Snapshot  { return h.p.Load() }
func (h *holder) swap(s *Snapshot) { h.p.Store(s) }
