package serve

import (
	"testing"

	"repro/internal/edgesim"
)

func snapWithCaps(caps ...int) *Snapshot {
	plan := &edgesim.Plan{}
	for k, c := range caps {
		if c > 0 {
			plan.Deployments = append(plan.Deployments, edgesim.Deployment{
				Edge: k, App: 0, Version: 0, Requests: c,
			})
		}
	}
	return BuildSnapshot(1, 0, len(caps), plan)
}

func allUp(n int) []bool {
	up := make([]bool, n)
	for k := range up {
		up[k] = true
	}
	return up
}

func TestNewRouter(t *testing.T) {
	for _, name := range []string{"round-robin", "least-loaded", "affinity"} {
		r, err := NewRouter(name)
		if err != nil || r.Name() != name {
			t.Fatalf("%s: %v %v", name, r, err)
		}
	}
	if _, err := NewRouter("random"); err == nil {
		t.Fatal("unknown router accepted")
	}
}

func TestRoundRobinSkipsIneligible(t *testing.T) {
	snap := snapWithCaps(4, 0, 4) // edge 1 has no plan capacity
	up := allUp(3)
	r := &RoundRobin{}
	load := make([]int64, 3)
	var got []int
	for q := 0; q < 4; q++ {
		k, reason := r.Route(Request{}, snap, up, load)
		if k < 0 {
			t.Fatalf("rejected: %s", reason)
		}
		got = append(got, k)
	}
	want := []int{0, 2, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin order %v, want %v", got, want)
		}
	}
	// All edges ineligible → no-edge.
	down := make([]bool, 3)
	if k, reason := r.Route(Request{}, snap, down, load); k != -1 || reason != ReasonNoEdge {
		t.Fatalf("want no-edge, got %d %q", k, reason)
	}
}

func TestLeastLoadedTracksPlanProportionally(t *testing.T) {
	// Capacity 2:1 — the router should send ~2/3 of traffic to edge 0.
	snap := snapWithCaps(20, 10)
	up := allUp(2)
	load := make([]int64, 2)
	r := LeastLoaded{}
	for q := 0; q < 30; q++ {
		k, reason := r.Route(Request{}, snap, up, load)
		if k < 0 {
			t.Fatalf("rejected: %s", reason)
		}
		load[k]++
	}
	if load[0] != 20 || load[1] != 10 {
		t.Fatalf("load split %v, want proportional [20 10]", load)
	}
}

func TestLeastLoadedTieBreaksLowestID(t *testing.T) {
	snap := snapWithCaps(5, 5)
	load := make([]int64, 2)
	k, _ := LeastLoaded{}.Route(Request{}, snap, allUp(2), load)
	if k != 0 {
		t.Fatalf("tie went to edge %d, want 0", k)
	}
}

func TestAffinityPrefersRegionThenHashes(t *testing.T) {
	snap := snapWithCaps(3, 3, 3)
	up := allUp(3)
	load := make([]int64, 3)
	r := Affinity{}
	if k, _ := r.Route(Request{App: 1, Region: 2}, snap, up, load); k != 2 {
		t.Fatalf("eligible region not preferred: got %d", k)
	}
	// Region down → deterministic hash failover, stable per (app, region).
	up[2] = false
	k1, _ := r.Route(Request{App: 1, Region: 2}, snap, up, load)
	k2, _ := r.Route(Request{App: 1, Region: 2}, snap, up, load)
	if k1 != k2 || k1 == 2 || k1 < 0 {
		t.Fatalf("failover not stable/eligible: %d then %d", k1, k2)
	}
	// A different app may land elsewhere but must also be stable.
	k3, _ := r.Route(Request{App: 0, Region: 2}, snap, up, load)
	k4, _ := r.Route(Request{App: 0, Region: 2}, snap, up, load)
	if k3 != k4 {
		t.Fatalf("failover for app 0 not stable: %d then %d", k3, k4)
	}
}
