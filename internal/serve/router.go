package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Router picks the serving edge for an admitted request. Routers run under
// the loop's decision lock with a consistent view of the snapshot, edge
// liveness, and the per-edge routed counts since the snapshot was
// installed; they must be deterministic functions of exactly those inputs
// plus their own state.
type Router interface {
	Name() string
	// Route returns the serving edge, or (-1, reason) when no edge is
	// eligible. up[k] marks edges currently live; load[k] counts requests
	// already routed to edge k under the current snapshot.
	Route(req Request, snap *Snapshot, up []bool, load []int64) (int, string)
}

// NewRouter builds a router by name: "round-robin", "least-loaded", or
// "affinity".
func NewRouter(name string) (Router, error) {
	switch name {
	case "round-robin", "rr":
		return &RoundRobin{}, nil
	case "least-loaded", "least":
		return LeastLoaded{}, nil
	case "affinity":
		return Affinity{}, nil
	}
	return nil, fmt.Errorf("serve: unknown router %q (want round-robin, least-loaded, or affinity)", name)
}

// eligible: edge k can serve only when it is live and the current plan
// allocated it capacity (an edge the optimizer assigned nothing is not a
// serving target, whatever its hardware).
func eligible(snap *Snapshot, up []bool, k int) bool {
	return up[k] && snap.CapPerSlot[k] > 0
}

// RoundRobin cycles through eligible edges in id order, remembering its
// cursor across requests.
type RoundRobin struct{ next int }

func (r *RoundRobin) Name() string { return "round-robin" }

func (r *RoundRobin) Route(_ Request, snap *Snapshot, up []bool, _ []int64) (int, string) {
	n := len(up)
	for i := 0; i < n; i++ {
		k := (r.next + i) % n
		if eligible(snap, up, k) {
			r.next = (k + 1) % n
			return k, ""
		}
	}
	return -1, ReasonNoEdge
}

// LeastLoaded routes to the eligible edge with the lowest ratio of routed
// requests to plan capacity, so load tracks the optimizer's allocation
// proportionally. Ratios are compared by integer cross-multiplication
// (load[k]·cap[best] < load[best]·cap[k]) — no floats, no float ties; the
// lowest edge id wins exact ties.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Route(_ Request, snap *Snapshot, up []bool, load []int64) (int, string) {
	best := -1
	for k := range up {
		if !eligible(snap, up, k) {
			continue
		}
		if best < 0 ||
			load[k]*int64(snap.CapPerSlot[best]) < load[best]*int64(snap.CapPerSlot[k]) {
			best = k
		}
	}
	if best < 0 {
		return -1, ReasonNoEdge
	}
	return best, ""
}

// Affinity pins requests to a stable edge for cache and model-residency
// locality: the request's own region when that edge is eligible, otherwise
// an FNV-1a hash of (app, region) spread over the eligible edges —
// deterministic failover that keeps each (app, region) pair together.
type Affinity struct{}

func (Affinity) Name() string { return "affinity" }

func (Affinity) Route(req Request, snap *Snapshot, up []bool, _ []int64) (int, string) {
	if req.Region >= 0 && req.Region < len(up) && eligible(snap, up, req.Region) {
		return req.Region, ""
	}
	n := 0
	for k := range up {
		if eligible(snap, up, k) {
			n++
		}
	}
	if n == 0 {
		return -1, ReasonNoEdge
	}
	var key [16]byte
	binary.LittleEndian.PutUint64(key[0:], uint64(req.App))
	binary.LittleEndian.PutUint64(key[8:], uint64(req.Region))
	h := fnv.New64a()
	h.Write(key[:])
	want := int(h.Sum64() % uint64(n))
	for k := range up {
		if !eligible(snap, up, k) {
			continue
		}
		if want == 0 {
			return k, ""
		}
		want--
	}
	return -1, ReasonNoEdge // unreachable: n > 0
}
