package serve

import "fmt"

// AdmissionPolicy decides whether a request enters the system at all.
// Policies are called under the loop's decision lock with a non-decreasing
// virtual time, and must be deterministic functions of (time, request,
// their own state) — never the wall clock.
type AdmissionPolicy interface {
	Name() string
	// Admit returns (true, "") to admit, or (false, reason) to shed.
	Admit(nowNS int64, req Request) (bool, string)
}

// NewAdmission builds a policy by name: "always" admits everything;
// "token-bucket" applies NewTokenBucket(capacity, ratePerSec).
func NewAdmission(name string, capacity, ratePerSec float64) (AdmissionPolicy, error) {
	switch name {
	case "always", "always-admit":
		return AlwaysAdmit{}, nil
	case "token-bucket", "token":
		return NewTokenBucket(capacity, ratePerSec)
	}
	return nil, fmt.Errorf("serve: unknown admission policy %q (want always or token-bucket)", name)
}

// AlwaysAdmit admits every request — the slot-batch pipeline's implicit
// policy, kept as the explicit default.
type AlwaysAdmit struct{}

func (AlwaysAdmit) Name() string { return "always" }

func (AlwaysAdmit) Admit(int64, Request) (bool, string) { return true, "" }

// TokenBucket is a deterministic virtual-time token bucket: Capacity bounds
// the burst, ratePerSec the sustained admission rate (tokens per virtual
// second). One request costs one token; the bucket starts full at the first
// decision's timestamp.
//
// Refill is accumulate-then-clamp: the refill for the entire elapsed span
// is credited first and the capacity clamp applied once afterwards. The
// reversed order (clamp the stored level, then credit the span) lets a
// single large virtual-time step — e.g. a quiet period followed by a burst
// — leave the bucket holding capacity + rate·span tokens, over-granting
// the burst. TestTokenBucketWindowBound pins the admitted-count bound
// admitted(window) ≤ capacity + rate·window that only the correct order
// satisfies.
type TokenBucket struct {
	capacity float64
	rate     float64 // tokens per virtual second
	tokens   float64
	lastNS   int64
	primed   bool
}

// NewTokenBucket validates the knobs: capacity ≥ 1 (a bucket that cannot
// hold one whole token never admits) and ratePerSec > 0.
func NewTokenBucket(capacity, ratePerSec float64) (*TokenBucket, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("serve: token-bucket capacity %.3g < 1 would never admit a request", capacity)
	}
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("serve: token-bucket refill rate %.3g must be > 0", ratePerSec)
	}
	return &TokenBucket{capacity: capacity, rate: ratePerSec}, nil
}

func (b *TokenBucket) Name() string { return "token-bucket" }

// Admit spends one token if available.
func (b *TokenBucket) Admit(nowNS int64, _ Request) (bool, string) {
	b.refill(nowNS)
	if b.tokens >= 1 {
		b.tokens--
		return true, ""
	}
	return false, ReasonRate
}

// refill advances the bucket to nowNS. Accumulate THEN clamp — see the
// type comment; do not reorder. A clock that appears to run backward
// (never happens under the loop's monotone clock, but TCP callers are
// untrusted) credits nothing.
func (b *TokenBucket) refill(nowNS int64) {
	if !b.primed {
		b.primed = true
		b.lastNS = nowNS
		b.tokens = b.capacity
		return
	}
	if nowNS <= b.lastNS {
		return
	}
	b.tokens += b.rate * (float64(nowNS-b.lastNS) / 1e9)
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.lastNS = nowNS
}
