package qp

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestRegressionDegenerateVertexCycle reproduces a degenerate box-QP instance
// that cycled when the working set was seeded with every initially-active row.
func TestRegressionDegenerateVertexCycle(t *testing.T) {
	seed := int64(-5557986513931126379)
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(5)
	g := mat.New(n, n)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	q := g.T().Mul(g)
	for i := 0; i < n; i++ {
		q.Set(i, i, q.At(i, i)+0.5)
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	var aub [][]float64
	var bub []float64
	for i := 0; i < n; i++ {
		up := make([]float64, n)
		dn := make([]float64, n)
		up[i], dn[i] = 1, -1
		aub = append(aub, up, dn)
		bub = append(bub, 2, 2)
	}
	row := make([]float64, n)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	aub = append(aub, row)
	bub = append(bub, 1+rng.Float64()*3)
	p := &Problem{Q: q, C: c, Aub: aub, Bub: bub}
	res, err := Solve(p)
	t.Logf("n=%d err=%v status=%v x=%v iter=%d", n, err, res.Status, res.X, res.Iterations)
	if res.Status == StatusOptimal {
		for i, r := range aub {
			var s float64
			for j, a := range r {
				s += a * res.X[j]
			}
			t.Logf("row %d: Ax=%v b=%v viol=%v", i, s, bub[i], s-bub[i])
		}
	}
}
