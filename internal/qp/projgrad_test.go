package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestSolveBoxValidation(t *testing.T) {
	cases := []*BoxProblem{
		{C: nil},
		{C: []float64{1}, Q: mat.New(2, 2), Lo: []float64{0}, Hi: []float64{1}},
		{C: []float64{1}, Q: mat.Identity(1), Lo: []float64{0, 1}, Hi: []float64{1}},
		{C: []float64{1}, Q: mat.Identity(1), Lo: []float64{2}, Hi: []float64{1}},
	}
	for i, p := range cases {
		if _, err := SolveBox(p, BoxOptions{}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSolveBoxUnconstrainedInterior(t *testing.T) {
	// min ½x² − 3x over [0, 10] → x = 3.
	p := &BoxProblem{
		Q: mat.Identity(1), C: []float64{-3},
		Lo: []float64{0}, Hi: []float64{10},
	}
	res, err := SolveBox(p, BoxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.X[0]-3) > 1e-5 {
		t.Fatalf("x = %v (converged %v), want 3", res.X, res.Converged)
	}
}

func TestSolveBoxClampsAtBounds(t *testing.T) {
	// Minimizer at x = 9 but hi = 2 → lands on the bound.
	p := &BoxProblem{
		Q: mat.Identity(1), C: []float64{-9},
		Lo: []float64{0}, Hi: []float64{2},
	}
	res, err := SolveBox(p, BoxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Fatalf("x = %v, want the bound 2", res.X)
	}
}

// Property: projected gradient and the active-set method agree on random
// strictly convex box QPs — two structurally different algorithms, one
// answer.
func TestQuickBoxAgreesWithActiveSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		g := mat.New(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		q := g.T().Mul(g)
		for i := 0; i < n; i++ {
			q.Set(i, i, q.At(i, i)+1)
		}
		c := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		var aub [][]float64
		var bub []float64
		for j := 0; j < n; j++ {
			c[j] = rng.NormFloat64() * 2
			lo[j] = -1 - rng.Float64()
			hi[j] = 1 + rng.Float64()
			up := make([]float64, n)
			dn := make([]float64, n)
			up[j], dn[j] = 1, -1
			aub = append(aub, up, dn)
			bub = append(bub, hi[j], -lo[j])
		}
		pg, err := SolveBox(&BoxProblem{Q: q, C: c, Lo: lo, Hi: hi}, BoxOptions{})
		if err != nil || !pg.Converged {
			return false
		}
		as, err := Solve(&Problem{Q: q, C: c, Aub: aub, Bub: bub})
		if err != nil || as.Status != StatusOptimal {
			return false
		}
		return math.Abs(pg.Obj-as.Obj) < 1e-4*(1+math.Abs(as.Obj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBoxWarmStart(t *testing.T) {
	q := mat.Identity(3)
	p := &BoxProblem{
		Q: q, C: []float64{-1, -2, -3},
		Lo: []float64{0, 0, 0}, Hi: []float64{5, 5, 5},
	}
	cold, err := SolveBox(p, BoxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveBox(p, BoxOptions{X0: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cold.Obj-warm.Obj) > 1e-6 {
		t.Fatalf("warm start changed the optimum: %v vs %v", warm.Obj, cold.Obj)
	}
	if warm.Iterations > cold.Iterations {
		t.Logf("note: warm start took %d iters vs %d cold (acceleration restarts)", warm.Iterations, cold.Iterations)
	}
}
