// Package qp implements a primal active-set solver for convex quadratic
// programs of the form
//
//	minimize    ½·xᵀQx + cᵀx
//	subject to  Aeq·x  = beq
//	            Aub·x ≤ bub
//
// with Q symmetric positive semidefinite. Variable bounds are expressed as
// inequality rows by the caller (the miqp package does this automatically).
//
// The method is the textbook primal active-set algorithm (Nocedal & Wright,
// ch. 16): starting from a feasible point obtained with a Phase-I LP, it
// repeatedly solves the equality-constrained subproblem restricted to the
// working set via a dense KKT system, takes the longest feasible step toward
// the subproblem minimizer, and adds/drops constraints by blocking rows and
// Lagrange-multiplier signs. A small adaptive Tikhonov ridge keeps the KKT
// system nonsingular when Q is only semidefinite.
package qp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/mat"
)

// Status describes the outcome of a QP solve.
type Status int

const (
	// StatusOptimal means a KKT point (global optimum for convex Q) was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusIterLimit means the iteration budget was exhausted.
	StatusIterLimit
	// StatusUnbounded means the objective is unbounded below on the feasible
	// set (possible when Q is singular along a feasible ray).
	StatusUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProblem reports structurally invalid input.
var ErrBadProblem = errors.New("qp: malformed problem")

// Problem is a convex QP. Q may be nil for a pure LP objective (then the
// active-set loop still works, but callers usually prefer package lp).
type Problem struct {
	Q   *mat.Matrix // n×n symmetric PSD; nil means zero
	C   []float64   // length n
	Aeq [][]float64
	Beq []float64
	Aub [][]float64
	Bub []float64
}

// Result is the outcome of a solve.
type Result struct {
	Status     Status
	X          []float64
	Obj        float64
	Iterations int
}

// Options tunes the solver.
type Options struct {
	MaxIter int     // 0 means automatic
	Tol     float64 // 0 means 1e-8
	X0      []float64
	// X0, if non-nil and feasible, is used as the starting point.
}

// Solve runs the active-set method with default options.
func Solve(p *Problem) (*Result, error) { return SolveOpts(p, Options{}) }

// SolveOpts runs the active-set method.
func SolveOpts(p *Problem, opt Options) (*Result, error) {
	n := len(p.C)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	if p.Q != nil && (p.Q.Rows != n || p.Q.Cols != n) {
		return nil, fmt.Errorf("%w: Q is %dx%d, want %dx%d", ErrBadProblem, p.Q.Rows, p.Q.Cols, n, n)
	}
	if len(p.Aeq) != len(p.Beq) || len(p.Aub) != len(p.Bub) {
		return nil, fmt.Errorf("%w: constraint row/rhs count mismatch", ErrBadProblem)
	}
	for _, r := range p.Aeq {
		if len(r) != n {
			return nil, fmt.Errorf("%w: equality row width", ErrBadProblem)
		}
	}
	for _, r := range p.Aub {
		if len(r) != n {
			return nil, fmt.Errorf("%w: inequality row width", ErrBadProblem)
		}
	}
	tol := opt.Tol
	if mat.Zero(tol) {
		tol = 1e-8
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 50*(n+len(p.Aub)+len(p.Aeq)) + 200
	}

	x, st, err := startingPoint(p, opt.X0, tol)
	if err != nil {
		return nil, err
	}
	if st != StatusOptimal {
		return &Result{Status: st}, nil
	}
	return activeSet(p, x, tol, maxIter)
}

// startingPoint returns a feasible point: the supplied X0 if feasible,
// otherwise the Phase-I LP solution (minimize 0 subject to the constraints,
// free variables).
func startingPoint(p *Problem, x0 []float64, tol float64) (mat.Vec, Status, error) {
	n := len(p.C)
	if x0 != nil && len(x0) == n && isFeasible(p, x0, 1e-7) {
		return mat.Vec(x0).Clone(), StatusOptimal, nil
	}
	lb := make([]float64, n)
	for i := range lb {
		lb[i] = math.Inf(-1)
	}
	lpp := &lp.Problem{
		C:   make([]float64, n),
		Aeq: p.Aeq,
		Beq: p.Beq,
		Aub: p.Aub,
		Bub: p.Bub,
		Lb:  lb,
	}
	res, err := lp.Solve(lpp)
	if err != nil {
		return nil, StatusInfeasible, err
	}
	switch res.Status {
	case lp.StatusOptimal:
		return mat.Vec(res.X), StatusOptimal, nil
	case lp.StatusInfeasible:
		return nil, StatusInfeasible, nil
	default:
		return nil, StatusIterLimit, nil
	}
}

func isFeasible(p *Problem, x []float64, tol float64) bool {
	for i, row := range p.Aeq {
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		if math.Abs(s-p.Beq[i]) > tol*(1+math.Abs(p.Beq[i])) {
			return false
		}
	}
	for i, row := range p.Aub {
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		if s > p.Bub[i]+tol*(1+math.Abs(p.Bub[i])) {
			return false
		}
	}
	return true
}

// gradient computes Qx + c.
func gradient(p *Problem, x mat.Vec) mat.Vec {
	g := mat.Vec(p.C).Clone()
	if p.Q != nil {
		g.AddScaled(1, p.Q.MulVec(x))
	}
	return g
}

// objective computes ½xᵀQx + cᵀx.
func objective(p *Problem, x mat.Vec) float64 {
	obj := mat.Vec(p.C).Dot(x)
	if p.Q != nil {
		obj += 0.5 * x.Dot(p.Q.MulVec(x))
	}
	return obj
}

// activeSet is the main loop. x must be feasible on entry.
func activeSet(p *Problem, x mat.Vec, tol float64, maxIter int) (*Result, error) {
	nub := len(p.Aub)
	// Working set: all equalities (always) + a subset of inequalities,
	// tracked by index into Aub.
	inW := make([]bool, nub)
	var work []int
	// The working set starts empty: blocking rows are added one at a time,
	// which keeps the working-set rows linearly independent (a dependent row
	// satisfies A·p = 0 on the current working set and therefore can never
	// block) and so avoids the degenerate-vertex cycling that plagues
	// active-set methods seeded with every initially-active row.

	for iter := 1; iter <= maxIter; iter++ {
		g := gradient(p, x)
		pdir, lam, err := eqpStep(p, g, work)
		if err != nil {
			return nil, err
		}
		if pdir.NormInf() <= tol*(1+g.NormInf()) {
			// Stationary on the working set; check multipliers of the
			// inequality rows (equalities may have any sign).
			neq := len(p.Aeq)
			drop, most := -1, -tol
			for wi := range work {
				l := lam[neq+wi]
				if l < most {
					most = l
					drop = wi
				}
			}
			if drop < 0 {
				return &Result{Status: StatusOptimal, X: x, Obj: objective(p, x), Iterations: iter}, nil
			}
			inW[work[drop]] = false
			work = append(work[:drop], work[drop+1:]...)
			continue
		}
		// Step length: longest feasible step along pdir.
		alpha := 1.0
		block := -1
		for i, row := range p.Aub {
			if inW[i] {
				continue
			}
			var ap, ax float64
			for j, a := range row {
				ap += a * pdir[j]
				ax += a * x[j]
			}
			if ap <= tol {
				continue
			}
			ratio := (p.Bub[i] - ax) / ap
			if ratio < alpha {
				alpha = ratio
				block = i
			}
		}
		if alpha < 0 {
			alpha = 0
		}
		// alpha was assigned exactly 1 above when no row blocks the step.
		//birplint:ignore floateq
		if alpha == 1 && (p.Q == nil || unboundedRay(p, pdir, tol)) && block < 0 {
			// A full Newton step with no curvature and no blocking row means
			// descent forever (only possible with singular/zero Q).
			if descentForever(p, x, pdir, tol) {
				return &Result{Status: StatusUnbounded, Iterations: iter}, nil
			}
		}
		x.AddScaled(alpha, pdir)
		if block >= 0 {
			inW[block] = true
			work = append(work, block)
		}
	}
	return &Result{Status: StatusIterLimit, Iterations: maxIter}, nil
}

// unboundedRay reports whether Q·p ≈ 0, i.e. the direction has no curvature.
func unboundedRay(p *Problem, dir mat.Vec, tol float64) bool {
	if p.Q == nil {
		return true
	}
	return p.Q.MulVec(dir).NormInf() <= tol
}

// descentForever reports whether moving along dir decreases the objective
// without bound while staying feasible (no inequality row increases along dir).
func descentForever(p *Problem, x, dir mat.Vec, tol float64) bool {
	g := gradient(p, x)
	if g.Dot(dir) >= -tol {
		return false
	}
	for _, row := range p.Aub {
		var ap float64
		for j, a := range row {
			ap += a * dir[j]
		}
		if ap > tol {
			return false
		}
	}
	for _, row := range p.Aeq {
		var ap float64
		for j, a := range row {
			ap += a * dir[j]
		}
		if math.Abs(ap) > tol {
			return false
		}
	}
	return true
}

// eqpStep solves the equality-constrained subproblem
//
//	min ½pᵀQp + gᵀp   s.t.  Aeq·p = 0, Aub[work]·p = 0
//
// via the dense KKT system, returning the step p and the multipliers λ
// ordered [equalities..., working inequalities...]. A ridge is added to Q
// (and grown on singularity) so the system is solvable for PSD Q and
// possibly redundant working sets.
func eqpStep(p *Problem, g mat.Vec, work []int) (mat.Vec, mat.Vec, error) {
	n := len(g)
	neq := len(p.Aeq)
	m := neq + len(work)
	size := n + m
	ridge := 1e-10 * (1 + quadScale(p))
	for attempt := 0; attempt < 6; attempt++ {
		k := mat.New(size, size)
		for i := 0; i < n; i++ {
			if p.Q != nil {
				copy(k.Data[i*size:i*size+n], p.Q.Data[i*n:(i+1)*n])
			}
			k.Data[i*size+i] += ridge
		}
		for r := 0; r < m; r++ {
			var row []float64
			if r < neq {
				row = p.Aeq[r]
			} else {
				row = p.Aub[work[r-neq]]
			}
			for j := 0; j < n; j++ {
				k.Set(n+r, j, row[j])
				k.Set(j, n+r, row[j])
			}
		}
		rhs := mat.NewVec(size)
		for i := 0; i < n; i++ {
			rhs[i] = -g[i]
		}
		sol, err := mat.Solve(k, rhs)
		if err != nil {
			ridge *= 1000
			if mat.Zero(ridge) {
				ridge = 1e-8
			}
			continue
		}
		step := mat.Vec(sol[:n])
		lam := mat.Vec(sol[n:])
		bad := false
		for _, v := range sol {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad = true
				break
			}
		}
		if bad {
			ridge *= 1000
			continue
		}
		return step, lam, nil
	}
	return nil, nil, fmt.Errorf("qp: KKT system unsolvable after regularization")
}

func quadScale(p *Problem) float64 {
	if p.Q == nil {
		return 0
	}
	var m float64
	for _, v := range p.Q.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
