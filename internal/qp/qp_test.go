package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func solveOK(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestUnconstrainedQuadratic(t *testing.T) {
	// min ½(x² + y²) − x − 2y → x = 1, y = 2, obj −2.5.
	p := &Problem{
		Q: mat.Identity(2),
		C: []float64{-1, -2},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-2) > 1e-6 {
		t.Fatalf("x = %v, want (1,2)", res.X)
	}
	if math.Abs(res.Obj-(-2.5)) > 1e-6 {
		t.Fatalf("obj = %v, want -2.5", res.Obj)
	}
}

func TestEqualityConstrainedQuadratic(t *testing.T) {
	// min ½(x²+y²) s.t. x + y = 2 → x = y = 1.
	p := &Problem{
		Q:   mat.Identity(2),
		C:   []float64{0, 0},
		Aeq: [][]float64{{1, 1}},
		Beq: []float64{2},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-1) > 1e-6 {
		t.Fatalf("x = %v, want (1,1)", res.X)
	}
}

func TestActiveInequality(t *testing.T) {
	// min ½((x−3)² + (y−3)²) s.t. x + y ≤ 2 → projection onto the halfspace:
	// x = y = 1.
	q := mat.Identity(2)
	p := &Problem{
		Q:   q,
		C:   []float64{-3, -3},
		Aub: [][]float64{{1, 1}},
		Bub: []float64{2},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]-1) > 1e-5 {
		t.Fatalf("x = %v, want (1,1)", res.X)
	}
}

func TestInactiveInequality(t *testing.T) {
	// Same objective, constraint x + y ≤ 100 inactive → unconstrained optimum (3,3).
	p := &Problem{
		Q:   mat.Identity(2),
		C:   []float64{-3, -3},
		Aub: [][]float64{{1, 1}},
		Bub: []float64{100},
	}
	res := solveOK(t, p)
	if math.Abs(res.X[0]-3) > 1e-5 || math.Abs(res.X[1]-3) > 1e-5 {
		t.Fatalf("x = %v, want (3,3)", res.X)
	}
}

func TestBoxConstrainedProjection(t *testing.T) {
	// Project the point (5, -7) onto the box [0,1]² (bounds as Aub rows).
	p := &Problem{
		Q:   mat.Identity(2),
		C:   []float64{-5, 7},
		Aub: [][]float64{{1, 0}, {0, 1}, {-1, 0}, {0, -1}},
		Bub: []float64{1, 1, 0, 0},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]-0) > 1e-5 {
		t.Fatalf("x = %v, want (1,0)", res.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Q:   mat.Identity(1),
		C:   []float64{0},
		Aub: [][]float64{{1}, {-1}},
		Bub: []float64{-1, -1}, // x ≤ -1 and x ≥ 1
	}
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestSemidefiniteQ(t *testing.T) {
	// Q = diag(1, 0): flat in y. min ½x² + y s.t. 0 ≤ y ≤ 5, -5 ≤ x ≤ 5.
	// Optimum x = 0, y = 0.
	q := mat.New(2, 2)
	q.Set(0, 0, 1)
	p := &Problem{
		Q:   q,
		C:   []float64{0, 1},
		Aub: [][]float64{{0, 1}, {0, -1}, {1, 0}, {-1, 0}},
		Bub: []float64{5, 0, 5, 5},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]) > 1e-4 || math.Abs(res.X[1]) > 1e-4 {
		t.Fatalf("x = %v, want (0,0)", res.X)
	}
}

func TestWarmStartX0(t *testing.T) {
	p := &Problem{
		Q:   mat.Identity(2),
		C:   []float64{-1, -1},
		Aub: [][]float64{{1, 1}},
		Bub: []float64{10},
	}
	res, err := SolveOpts(p, Options{X0: []float64{0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]-1) > 1e-5 {
		t.Fatalf("x = %v, want (1,1)", res.X)
	}
}

func TestValidation(t *testing.T) {
	cases := []*Problem{
		{C: nil},
		{Q: mat.New(2, 3), C: []float64{1, 1}},
		{Q: mat.Identity(1), C: []float64{1}, Aeq: [][]float64{{1}}, Beq: []float64{}},
		{Q: mat.Identity(1), C: []float64{1}, Aub: [][]float64{{1, 2}}, Bub: []float64{1}},
		{Q: mat.Identity(2), C: []float64{1, 1}, Aeq: [][]float64{{1}}, Beq: []float64{1}},
	}
	for i, p := range cases {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusInfeasible, StatusIterLimit, StatusUnbounded, Status(42)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

// Reference: projected gradient descent for box-constrained convex QP,
// used to cross-check the active-set answer.
func projGrad(q *mat.Matrix, c []float64, lo, hi []float64, iters int) mat.Vec {
	n := len(c)
	x := mat.NewVec(n)
	// Step size from a crude bound on the Lipschitz constant.
	var lmax float64
	for i := 0; i < n; i++ {
		var rowsum float64
		for j := 0; j < n; j++ {
			rowsum += math.Abs(q.At(i, j))
		}
		if rowsum > lmax {
			lmax = rowsum
		}
	}
	step := 1 / (lmax + 1)
	for it := 0; it < iters; it++ {
		g := q.MulVec(x)
		for i := range g {
			g[i] += c[i]
		}
		for i := range x {
			x[i] -= step * g[i]
			if x[i] < lo[i] {
				x[i] = lo[i]
			}
			if x[i] > hi[i] {
				x[i] = hi[i]
			}
		}
	}
	return x
}

func TestAgainstProjectedGradientRandomBoxQPs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		g := mat.New(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		q := g.T().Mul(g)
		for i := 0; i < n; i++ {
			q.Set(i, i, q.At(i, i)+1) // strictly convex
		}
		c := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		var aub [][]float64
		var bub []float64
		for i := 0; i < n; i++ {
			c[i] = rng.NormFloat64() * 3
			lo[i] = -1 - rng.Float64()
			hi[i] = 1 + rng.Float64()
			up := make([]float64, n)
			dn := make([]float64, n)
			up[i] = 1
			dn[i] = -1
			aub = append(aub, up, dn)
			bub = append(bub, hi[i], -lo[i])
		}
		p := &Problem{Q: q, C: c, Aub: aub, Bub: bub}
		res := solveOK(t, p)
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		ref := projGrad(q, c, lo, hi, 20000)
		refObj := 0.5*ref.Dot(q.MulVec(ref)) + mat.Vec(c).Dot(ref)
		if res.Obj > refObj+1e-4 {
			t.Fatalf("trial %d: active-set obj %v worse than PG obj %v", trial, res.Obj, refObj)
		}
	}
}

// Property: the returned point satisfies every constraint.
func TestQuickSolutionFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		g := mat.New(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		q := g.T().Mul(g)
		for i := 0; i < n; i++ {
			q.Set(i, i, q.At(i, i)+0.5)
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		var aub [][]float64
		var bub []float64
		for i := 0; i < n; i++ {
			up := make([]float64, n)
			dn := make([]float64, n)
			up[i], dn[i] = 1, -1
			aub = append(aub, up, dn)
			bub = append(bub, 2, 2) // box [-2, 2]^n
		}
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		aub = append(aub, row)
		bub = append(bub, 1+rng.Float64()*3)
		p := &Problem{Q: q, C: c, Aub: aub, Bub: bub}
		res, err := Solve(p)
		if err != nil || res.Status != StatusOptimal {
			return false
		}
		for i, r := range aub {
			var s float64
			for j, a := range r {
				s += a * res.X[j]
			}
			if s > bub[i]+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: objective at the solution is no worse than at any of a sample of
// random feasible points (global optimality for convex problems).
func TestQuickNoBetterFeasiblePoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		q := mat.Identity(n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64() * 2
		}
		var aub [][]float64
		var bub []float64
		for i := 0; i < n; i++ {
			up := make([]float64, n)
			dn := make([]float64, n)
			up[i], dn[i] = 1, -1
			aub = append(aub, up, dn)
			bub = append(bub, 1, 1)
		}
		p := &Problem{Q: q, C: c, Aub: aub, Bub: bub}
		res, err := Solve(p)
		if err != nil || res.Status != StatusOptimal {
			return false
		}
		for k := 0; k < 50; k++ {
			y := mat.NewVec(n)
			for i := range y {
				y[i] = rng.Float64()*2 - 1
			}
			objY := 0.5*y.Dot(y) + mat.Vec(c).Dot(y)
			if objY < res.Obj-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearObjectiveOnPolytope(t *testing.T) {
	// Pure linear objective with Q nil over a bounded simplex: should match LP.
	p := &Problem{
		C:   []float64{-2, -3},
		Aub: [][]float64{{1, 1}, {-1, 0}, {0, -1}},
		Bub: []float64{4, 0, 0},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Obj-(-12)) > 1e-4 {
		t.Fatalf("obj = %v, want -12 (x=%v)", res.Obj, res.X)
	}
}

func BenchmarkActiveSetMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	g := mat.New(n, n)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	q := g.T().Mul(g)
	for i := 0; i < n; i++ {
		q.Set(i, i, q.At(i, i)+1)
	}
	c := make([]float64, n)
	var aub [][]float64
	var bub []float64
	for i := 0; i < n; i++ {
		c[i] = rng.NormFloat64()
		up := make([]float64, n)
		dn := make([]float64, n)
		up[i], dn[i] = 1, -1
		aub = append(aub, up, dn)
		bub = append(bub, 1, 1)
	}
	p := &Problem{Q: q, C: c, Aub: aub, Bub: bub}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
