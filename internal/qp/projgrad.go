package qp

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// BoxProblem is the box-constrained special case
//
//	minimize  ½·xᵀQx + cᵀx   s.t.  lo ≤ x ≤ hi
//
// solved by accelerated projected gradient descent. It serves as an
// independent oracle for the active-set method (differential tests) and as a
// robust fallback for callers that only need box constraints: projected
// gradient cannot cycle, cannot pivot wrong, and its fixed points are exactly
// the KKT points of the box QP.
type BoxProblem struct {
	Q      *mat.Matrix // symmetric PSD
	C      []float64
	Lo, Hi []float64
}

// BoxOptions tunes SolveBox.
type BoxOptions struct {
	MaxIter int     // 0 = 20000
	Tol     float64 // projected-gradient norm tolerance; 0 = 1e-8
	X0      []float64
}

// BoxResult is the outcome of SolveBox.
type BoxResult struct {
	X          []float64
	Obj        float64
	Iterations int
	// Converged reports whether the projected-gradient norm met Tol.
	Converged bool
}

// SolveBox runs FISTA-style accelerated projected gradient on the box QP.
func SolveBox(p *BoxProblem, opt BoxOptions) (*BoxResult, error) {
	n := len(p.C)
	if n == 0 {
		return nil, fmt.Errorf("qp: empty box problem")
	}
	if p.Q == nil || p.Q.Rows != n || p.Q.Cols != n {
		return nil, fmt.Errorf("qp: box problem needs an n×n Q")
	}
	if len(p.Lo) != n || len(p.Hi) != n {
		return nil, fmt.Errorf("qp: bounds length mismatch")
	}
	for j := 0; j < n; j++ {
		if p.Lo[j] > p.Hi[j] {
			return nil, fmt.Errorf("qp: crossed bounds at %d", j)
		}
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 20000
	}
	tol := opt.Tol
	if mat.Zero(tol) {
		tol = 1e-8
	}
	// Step size 1/L with L bounded by the max row sum of |Q|.
	var lip float64
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			row += math.Abs(p.Q.At(i, j))
		}
		lip = math.Max(lip, row)
	}
	step := 1.0
	if lip > 0 {
		step = 1 / lip
	}

	clamp := func(x mat.Vec) {
		for j := range x {
			if x[j] < p.Lo[j] {
				x[j] = p.Lo[j]
			}
			if x[j] > p.Hi[j] {
				x[j] = p.Hi[j]
			}
		}
	}
	x := mat.NewVec(n)
	if opt.X0 != nil && len(opt.X0) == n {
		copy(x, opt.X0)
	}
	clamp(x)
	y := x.Clone()
	tk := 1.0
	res := &BoxResult{}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		g := p.Q.MulVec(y)
		for j := range g {
			g[j] += p.C[j]
		}
		xNew := y.Clone()
		xNew.AddScaled(-step, g)
		clamp(xNew)
		// Convergence: the projected gradient mapping's displacement.
		var disp float64
		for j := range xNew {
			d := math.Abs(xNew[j] - y[j])
			if d > disp {
				disp = d
			}
		}
		// y_{k+1} = x_{k+1} + ((t_k − 1)/t_{k+1})·(x_{k+1} − x_k)
		tNew := (1 + math.Sqrt(1+4*tk*tk)) / 2
		yNew := xNew.Clone()
		for j := range yNew {
			yNew[j] = xNew[j] + (tk-1)/tNew*(xNew[j]-x[j])
		}
		clamp(yNew)
		x, y, tk = xNew, yNew, tNew
		if disp <= tol*(1+x.NormInf()) {
			res.Converged = true
			break
		}
	}
	res.X = x
	res.Obj = 0.5*x.Dot(p.Q.MulVec(x)) + mat.Vec(p.C).Dot(x)
	return res, nil
}
