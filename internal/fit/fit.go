// Package fit estimates the piecewise TIR law of BIRP Eq. 2,
//
//	TIR(b) = b^η  for b ≤ β,   TIR(b) = C  for b > β,
//
// from raw (batch size, TIR) measurements, reproducing the offline profiling
// the paper performs for Fig. 2 and for the BIRP-OFF baseline.
//
// The exponent is fit by least squares in log space (ln TIR = η·ln b is
// linear through the origin), the plateau by the sample mean beyond the
// knee, and the knee by an exhaustive changepoint search minimizing total
// squared error — exact for the small batch ranges involved (b ≤ 64).
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bandit"
	"repro/internal/mat"
)

// Sample is one TIR measurement at integer batch size B.
type Sample struct {
	B   int
	TIR float64
}

// ErrNoData is returned when the sample set cannot identify the law.
var ErrNoData = errors.New("fit: not enough usable samples")

// Piecewise fits the Eq. 2 law to the samples. Samples with B ≤ 0 or
// TIR ≤ 0 are ignored. At least two distinct batch sizes with B > 1 are
// required to identify the exponent.
func Piecewise(samples []Sample) (bandit.TIRParams, error) {
	clean := make([]Sample, 0, len(samples))
	maxB := 0
	distinct := map[int]bool{}
	for _, s := range samples {
		if s.B <= 0 || s.TIR <= 0 || math.IsNaN(s.TIR) || math.IsInf(s.TIR, 0) {
			continue
		}
		clean = append(clean, s)
		if s.B > maxB {
			maxB = s.B
		}
		if s.B > 1 {
			distinct[s.B] = true
		}
	}
	if len(distinct) < 2 {
		return bandit.TIRParams{}, fmt.Errorf("%w: %d distinct batch sizes > 1", ErrNoData, len(distinct))
	}
	// Stable: several samples can share a batch size, and the fit must not
	// depend on the arrival order of equal-B ties.
	sort.SliceStable(clean, func(i, j int) bool { return clean[i].B < clean[j].B })

	best := bandit.TIRParams{}
	bestSSE := math.Inf(1)
	found := false
	for beta := 2; beta <= maxB; beta++ {
		eta, ok := fitEta(clean, beta)
		if !ok {
			continue
		}
		c, nPlateau := plateauMean(clean, beta)
		if nPlateau == 0 {
			// No samples beyond the knee: plateau pinned by continuity.
			c = math.Pow(float64(beta), eta)
		}
		var sse float64
		for _, s := range clean {
			var pred float64
			if s.B <= beta {
				pred = math.Pow(float64(s.B), eta)
			} else {
				pred = c
			}
			d := s.TIR - pred
			sse += d * d
		}
		if sse < bestSSE {
			bestSSE = sse
			best = bandit.TIRParams{Eta: eta, Beta: float64(beta), C: c}
			found = true
		}
	}
	if !found {
		return bandit.TIRParams{}, ErrNoData
	}
	return best, nil
}

// fitEta returns the least-squares exponent over samples with 1 < B ≤ beta.
func fitEta(samples []Sample, beta int) (float64, bool) {
	var num, den float64
	n := 0
	for _, s := range samples {
		if s.B <= 1 || s.B > beta {
			continue
		}
		lb := math.Log(float64(s.B))
		num += lb * math.Log(s.TIR)
		den += lb * lb
		n++
	}
	if n == 0 || mat.Zero(den) {
		return 0, false
	}
	return num / den, true
}

// plateauMean returns the mean TIR of samples beyond the knee and their count.
func plateauMean(samples []Sample, beta int) (float64, int) {
	var sum float64
	n := 0
	for _, s := range samples {
		if s.B > beta {
			sum += s.TIR
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// RMSE computes the root-mean-square error of the law on the samples.
func RMSE(p bandit.TIRParams, samples []Sample) float64 {
	var sse float64
	n := 0
	for _, s := range samples {
		if s.B <= 0 || s.TIR <= 0 {
			continue
		}
		d := s.TIR - p.TIR(float64(s.B))
		sse += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sse / float64(n))
}

// LinearLS fits y = a + b·x by ordinary least squares; it returns a, b.
// Used by the experiment harness for trend summaries.
func LinearLS(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, fmt.Errorf("%w: need ≥ 2 paired points", ErrNoData)
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if mat.Zero(den) {
		return 0, 0, fmt.Errorf("%w: x values are constant", ErrNoData)
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}
