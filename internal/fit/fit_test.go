package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bandit"
)

// synth generates reps noisy samples at each batch size 1..maxB from a true law.
func synth(p bandit.TIRParams, maxB, reps int, noise float64, rng *rand.Rand) []Sample {
	var out []Sample
	for b := 1; b <= maxB; b++ {
		for r := 0; r < reps; r++ {
			v := p.TIR(float64(b)) * (1 + rng.NormFloat64()*noise)
			out = append(out, Sample{B: b, TIR: v})
		}
	}
	return out
}

func TestRecoverLeNetLikeLaw(t *testing.T) {
	// The paper's Fig. 2a law: TIR = b^0.32 for b ≤ 5, 1.68 beyond.
	truth := bandit.TIRParams{Eta: 0.32, Beta: 5, C: 1.68}
	rng := rand.New(rand.NewSource(1))
	samples := synth(truth, 16, 5, 0.02, rng)
	got, err := Piecewise(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Eta-0.32) > 0.05 {
		t.Fatalf("η = %v, want ≈0.32", got.Eta)
	}
	if math.Abs(got.Beta-5) > 1 {
		t.Fatalf("β = %v, want ≈5", got.Beta)
	}
	if math.Abs(got.C-1.68) > 0.08 {
		t.Fatalf("C = %v, want ≈1.68", got.C)
	}
}

func TestRecoverGoogLeNetLikeLaw(t *testing.T) {
	// Fig. 2b: TIR = b^0.12 for b ≤ 10, 1.30 beyond.
	truth := bandit.TIRParams{Eta: 0.12, Beta: 10, C: 1.30}
	rng := rand.New(rand.NewSource(2))
	samples := synth(truth, 16, 5, 0.015, rng)
	got, err := Piecewise(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Eta-0.12) > 0.03 {
		t.Fatalf("η = %v, want ≈0.12", got.Eta)
	}
	if math.Abs(got.C-1.30) > 0.06 {
		t.Fatalf("C = %v, want ≈1.30", got.C)
	}
}

func TestNoiselessExactRecovery(t *testing.T) {
	truth := bandit.TIRParams{Eta: 0.25, Beta: 8, C: math.Pow(8, 0.25)}
	var samples []Sample
	for b := 1; b <= 16; b++ {
		samples = append(samples, Sample{B: b, TIR: truth.TIR(float64(b))})
	}
	got, err := Piecewise(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Eta-0.25) > 1e-9 {
		t.Fatalf("η = %v, want 0.25 exactly", got.Eta)
	}
	if got.Beta != 8 {
		t.Fatalf("β = %v, want 8", got.Beta)
	}
}

func TestPureConstantBeyondKneeOnly(t *testing.T) {
	// All samples within the power regime (no plateau observed): continuity
	// pins the plateau at β^η.
	truth := bandit.TIRParams{Eta: 0.3, Beta: 100, C: math.Pow(100, 0.3)}
	var samples []Sample
	for b := 1; b <= 8; b++ {
		samples = append(samples, Sample{B: b, TIR: truth.TIR(float64(b))})
	}
	got, err := Piecewise(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Eta-0.3) > 1e-6 {
		t.Fatalf("η = %v, want 0.3", got.Eta)
	}
	// Several knee placements fit truncated pure-power data exactly; all
	// that matters is a perfect fit on the observed range.
	if r := RMSE(got, samples); r > 1e-9 {
		t.Fatalf("RMSE = %v, want 0 for noiseless data", r)
	}
}

func TestRejectsDegenerateInput(t *testing.T) {
	cases := [][]Sample{
		nil,
		{{B: 1, TIR: 1}},
		{{B: 1, TIR: 1}, {B: 1, TIR: 1.01}},
		{{B: 4, TIR: 1.2}},                // single distinct b > 1
		{{B: -1, TIR: 1}, {B: 0, TIR: 1}}, // all invalid
		{{B: 4, TIR: -1}, {B: 8, TIR: math.NaN()}}, // invalid TIR values
	}
	for i, s := range cases {
		if _, err := Piecewise(s); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestIgnoresGarbageSamples(t *testing.T) {
	truth := bandit.TIRParams{Eta: 0.2, Beta: 6, C: math.Pow(6, 0.2)}
	var samples []Sample
	for b := 1; b <= 12; b++ {
		samples = append(samples, Sample{B: b, TIR: truth.TIR(float64(b))})
	}
	samples = append(samples, Sample{B: -3, TIR: 5}, Sample{B: 4, TIR: math.Inf(1)})
	got, err := Piecewise(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Eta-0.2) > 1e-6 {
		t.Fatalf("η = %v, want 0.2 despite garbage rows", got.Eta)
	}
}

func TestRMSE(t *testing.T) {
	p := bandit.TIRParams{Eta: 0, Beta: 4, C: 1}
	samples := []Sample{{B: 2, TIR: 1.1}, {B: 3, TIR: 0.9}}
	want := math.Sqrt((0.01 + 0.01) / 2)
	if got := RMSE(p, samples); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if got := RMSE(p, nil); got != 0 {
		t.Fatalf("RMSE(nil) = %v, want 0", got)
	}
}

func TestLinearLS(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, err := LinearLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("fit = (%v, %v), want (1, 2)", a, b)
	}
}

func TestLinearLSErrors(t *testing.T) {
	if _, _, err := LinearLS([]float64{1}, []float64{2}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, _, err := LinearLS([]float64{1, 2}, []float64{2}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, _, err := LinearLS([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("expected error for constant x")
	}
}

// Property: fitted law never has a worse RMSE than the Eq. 23 default
// parameters on the same clean data (the fit must actually fit).
func TestQuickFitBeatsDefault(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := bandit.TIRParams{
			Eta:  0.1 + rng.Float64()*0.3,
			Beta: float64(3 + rng.Intn(10)),
		}
		truth.C = math.Pow(truth.Beta, truth.Eta)
		samples := synth(truth, 16, 3, 0.02, rng)
		got, err := Piecewise(samples)
		if err != nil {
			return false
		}
		def := bandit.TIRParams{Eta: bandit.InitEta, Beta: bandit.InitBeta, C: bandit.InitC}
		return RMSE(got, samples) <= RMSE(def, samples)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: fitted exponent is within a loose band of truth for moderate noise.
func TestQuickEtaRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := bandit.TIRParams{
			Eta:  0.15 + rng.Float64()*0.25,
			Beta: float64(4 + rng.Intn(8)),
		}
		truth.C = math.Pow(truth.Beta, truth.Eta)
		samples := synth(truth, 16, 5, 0.01, rng)
		got, err := Piecewise(samples)
		if err != nil {
			return false
		}
		return math.Abs(got.Eta-truth.Eta) < 0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the equal-B tie-order bug: Piecewise sorts samples by batch
// size with a stable sort, so permuting samples that share a batch size must
// not change the fitted law. (An unstable sort let the arrival order of
// equal-B ties leak into the changepoint search through plateauMean's
// accumulation order.)
func TestPiecewiseOrderInvariant(t *testing.T) {
	base := []Sample{
		{B: 1, TIR: 1.00},
		{B: 2, TIR: 1.15},
		{B: 2, TIR: 1.22},
		{B: 4, TIR: 1.41},
		{B: 4, TIR: 1.38},
		{B: 8, TIR: 1.62},
		{B: 8, TIR: 1.60},
		{B: 8, TIR: 1.65},
		{B: 16, TIR: 1.63},
		{B: 16, TIR: 1.61},
	}
	want, err := Piecewise(base)
	if err != nil {
		t.Fatalf("baseline fit: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := make([]Sample, len(base))
		copy(perm, base)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, err := Piecewise(perm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: permuted samples changed the fit: got %+v, want %+v", trial, got, want)
		}
	}
}
