package edgesim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/models"
)

// randomPlanScheduler emits random but *valid* plans: it shuffles arrivals
// between edges within bandwidth, serves each share with a random model and
// random physical batching, and drops a random remainder. It exists to fuzz
// the simulator's accounting: whatever a (buggy but constraint-respecting)
// scheduler does, the simulator's books must balance.
type randomPlanScheduler struct {
	apps []*models.Application
	K    int
	rng  *rand.Rand
}

func (r *randomPlanScheduler) Name() string { return "fuzz" }

func (r *randomPlanScheduler) Decide(t int, arrivals [][]int) (*Plan, error) {
	I := len(arrivals)
	plan := &Plan{Dropped: make([][]int, I)}
	alloc := make([][]int, I)
	for i := 0; i < I; i++ {
		plan.Dropped[i] = make([]int, r.K)
		alloc[i] = append([]int(nil), arrivals[i]...)
		// A couple of random small transfers. Eq. 3 only lets an edge
		// forward its *own* arrivals, so track the untransferred originals.
		orig := append([]int(nil), arrivals[i]...)
		for n := 0; n < 2; n++ {
			from := r.rng.Intn(r.K)
			to := r.rng.Intn(r.K)
			if from == to || orig[from] == 0 {
				continue
			}
			cnt := 1 + r.rng.Intn(orig[from])
			if cnt > 4 {
				cnt = 4
			}
			orig[from] -= cnt
			alloc[i][from] -= cnt
			alloc[i][to] += cnt
			plan.Transfers = append(plan.Transfers, Transfer{App: i, From: from, To: to, Count: cnt})
		}
		for k := 0; k < r.K; k++ {
			w := alloc[i][k]
			if w == 0 {
				continue
			}
			drop := r.rng.Intn(w + 1)
			serve := w - drop
			plan.Dropped[i][k] = drop
			if serve == 0 {
				continue
			}
			// Random batching of the served share, sometimes padded.
			var sizes []int
			left := serve
			for left > 0 {
				b := 1 + r.rng.Intn(left)
				sizes = append(sizes, b)
				left -= b
			}
			if r.rng.Intn(3) == 0 {
				sizes = append(sizes, 1+r.rng.Intn(3)) // padding batch
			}
			plan.Deployments = append(plan.Deployments, Deployment{
				App: i, Version: 0, Edge: k, Requests: serve, BatchSizes: sizes,
			})
		}
	}
	return plan, nil
}

func (r *randomPlanScheduler) Observe(int, []Feedback) {}

// TestFuzzSimulatorAccounting runs many random-plan slots and checks the
// simulator's global invariants: no violations, served + dropped == total
// arrivals, loss equals Σ served·loss(v0) + Σ dropped·maxLoss, and every
// dropped request appears in the completion sample at the penalty value.
func TestFuzzSimulatorAccounting(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		sched := &randomPlanScheduler{apps: apps, K: c.N(), rng: rng}
		sim, err := New(Config{Cluster: c, Apps: apps, NoiseSigma: 0.03, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		slots := 6
		arr := make([][][]int, slots)
		total := 0
		for tt := 0; tt < slots; tt++ {
			arr[tt] = make([][]int, 2)
			for i := 0; i < 2; i++ {
				arr[tt][i] = make([]int, c.N())
				for k := 0; k < c.N(); k++ {
					arr[tt][i][k] = rng.Intn(10)
					total += arr[tt][i][k]
				}
			}
		}
		res, err := sim.Run(sched, arr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("trial %d: violations from a valid random plan: %v", trial, res.Violations[0])
		}
		if res.Served+res.Dropped != total {
			t.Fatalf("trial %d: served %d + dropped %d != arrivals %d",
				trial, res.Served, res.Dropped, total)
		}
		if len(res.Completion) != total {
			t.Fatalf("trial %d: %d completion entries, want %d", trial, len(res.Completion), total)
		}
		dropTau := 0
		for _, tau := range res.Completion {
			if tau == DroppedPenaltyTau {
				dropTau++
			}
		}
		if dropTau < res.Dropped {
			t.Fatalf("trial %d: only %d penalty completions for %d drops", trial, dropTau, res.Dropped)
		}
		// Everything served used version 0, so total loss is bracketed by the
		// per-app extremes of v0 loss plus worst-loss drop charges.
		minLoss := math.Min(apps[0].Models[0].Loss, apps[1].Models[0].Loss) * float64(res.Served)
		maxLoss := math.Max(apps[0].Models[0].Loss, apps[1].Models[0].Loss)*float64(res.Served) +
			math.Max(worst(apps[0]), worst(apps[1]))*float64(res.Dropped)
		got := res.Loss.Total()
		if got < minLoss-1e-6 || got > maxLoss+1e-6 {
			t.Fatalf("trial %d: loss %v outside [%v, %v]", trial, got, minLoss, maxLoss)
		}
	}
}

func worst(a *models.Application) float64 {
	w := 0.0
	for _, m := range a.Models {
		if m.Loss > w {
			w = m.Loss
		}
	}
	return w
}
