package edgesim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/models"
)

// Summary renders a plan for humans: per-edge deployments with batch shapes,
// the transfer list, and drops. birpsim -verbose prints one per slot.
func (p *Plan) Summary(c *cluster.Cluster, apps []*models.Application) string {
	var b strings.Builder
	perEdge := map[int][]Deployment{}
	for _, d := range p.Deployments {
		perEdge[d.Edge] = append(perEdge[d.Edge], d)
	}
	var edges []int
	for k := range perEdge {
		edges = append(edges, k)
	}
	sort.Ints(edges)
	for _, k := range edges {
		name := fmt.Sprintf("edge-%d", k)
		if c != nil && k >= 0 && k < c.N() {
			name = c.Edges[k].Name
		}
		fmt.Fprintf(&b, "%s:\n", name)
		deps := perEdge[k]
		sort.SliceStable(deps, func(a, z int) bool {
			if deps[a].App != deps[z].App {
				return deps[a].App < deps[z].App
			}
			return deps[a].Version < deps[z].Version
		})
		for _, d := range deps {
			label := fmt.Sprintf("app%d/v%d", d.App, d.Version)
			if apps != nil && d.App >= 0 && d.App < len(apps) &&
				d.Version >= 0 && d.Version < len(apps[d.App].Models) {
				label = apps[d.App].Models[d.Version].Name
			}
			fmt.Fprintf(&b, "  %-28s %3d requests in batches %v\n", label, d.Requests, d.BatchSizes)
		}
	}
	if len(p.Transfers) > 0 {
		fmt.Fprintf(&b, "transfers:\n")
		for _, tr := range p.Transfers {
			appName := fmt.Sprintf("app%d", tr.App)
			if apps != nil && tr.App >= 0 && tr.App < len(apps) {
				appName = apps[tr.App].Name
			}
			fmt.Fprintf(&b, "  %-24s %3d requests  edge %d → edge %d\n", appName, tr.Count, tr.From, tr.To)
		}
	}
	dropped := 0
	for _, row := range p.Dropped {
		for _, n := range row {
			dropped += n
		}
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "dropped: %d requests\n", dropped)
	}
	if b.Len() == 0 {
		return "(empty plan)\n"
	}
	return b.String()
}

// Summary renders the run's headline metrics as a short human-readable
// report.
func (r *Results) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler        %s\n", r.Scheduler)
	fmt.Fprintf(&b, "requests served  %d (dropped %d)\n", r.Served, r.Dropped)
	fmt.Fprintf(&b, "total loss       %.1f\n", r.Loss.Total())
	fmt.Fprintf(&b, "SLO failures     %.2f%% (%d requests)\n", 100*r.FailureRate(), r.Failures)
	fmt.Fprintf(&b, "energy           %.1f kJ\n", r.EnergyJ/1000)
	if len(r.Violations) > 0 {
		fmt.Fprintf(&b, "plan violations  %d (first: %s)\n", len(r.Violations), r.Violations[0])
	}
	return b.String()
}
