// Package edgesim is the slot-level simulator of the edge collaborative
// system: it feeds per-slot arrivals to a Scheduler, validates the returned
// plan against the paper's resource constraints (Eq. 3–9), executes the
// planned batches on the accel device models, and records the evaluation
// metrics (per-request completion times, inference loss, SLO failures).
//
// The same Scheduler implementations drive both this simulator and the
// distributed TCP prototype in package edgenet — the decision layer never
// sees which executor it is attached to.
package edgesim

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/miqp"
	"repro/internal/models"
)

// Deployment is one (application, model version, edge) assignment for a slot:
// the x^t_{ijk} = 1 entries of the paper together with their batch plan.
type Deployment struct {
	App     int
	Version int
	Edge    int
	// Requests is the number of real requests this deployment serves
	// (the b^t_{ijk} of Eq. 5 summed over its physical batches).
	Requests int
	// BatchSizes are the physical batches to execute in order. Their sum may
	// exceed Requests (MAX pads batches to B0); padded slots consume compute
	// but produce no completions.
	BatchSizes []int
}

// Clone returns a deep copy of the deployment (BatchSizes included), so plan
// fragments served from a cache never alias slices a later consumer could
// mutate.
func (d Deployment) Clone() Deployment {
	d.BatchSizes = append([]int(nil), d.BatchSizes...)
	return d
}

// CloneDeployments deep-copies a deployment slice; nil stays nil.
func CloneDeployments(ds []Deployment) []Deployment {
	if ds == nil {
		return nil
	}
	out := make([]Deployment, len(ds))
	for i, d := range ds {
		out[i] = d.Clone()
	}
	return out
}

// Transfer moves Count requests of application App from edge From to edge To
// at the start of the slot (the y^t_{ikk'} of Eq. 3).
type Transfer struct {
	App   int
	From  int
	To    int
	Count int
}

// Preload ships a model to an edge this slot without executing it, so it is
// resident (free to deploy) from the next slot on — predictive pre-warming.
type Preload struct {
	App     int
	Version int
	Edge    int
}

// Plan is a full slot decision.
type Plan struct {
	Deployments []Deployment
	Transfers   []Transfer
	// Dropped[i][k] counts requests of app i at edge k the scheduler could
	// not serve this slot (overload fallback). Dropped requests score the
	// worst model loss and an SLO failure.
	Dropped [][]int
	// Preloads are models shipped ahead of demand; they consume this slot's
	// bandwidth and join the edge's resident set for subsequent slots.
	Preloads []Preload
	// Solver, when non-nil, aggregates the MIQP solver observability counters
	// for the fresh solves behind this plan (warm-start hit rate, pivot work,
	// presolve reductions). Purely diagnostic: the executor ignores it.
	Solver *miqp.Stats
}

// Feedback reports one executed physical batch back to the scheduler — the
// observation stream driving BIRP's MAB tuner.
type Feedback struct {
	App     int
	Version int
	Edge    int
	Batch   int // physical batch size
	// TIR is the realized throughput improvement ratio vs. batch 1.
	TIR float64
	// BatchMS is the realized execution time.
	BatchMS float64
}

// Scheduler is a per-slot decision maker.
type Scheduler interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Decide returns the plan for slot t given arrivals[i][k].
	Decide(t int, arrivals [][]int) (*Plan, error)
	// Observe receives execution feedback after the slot runs.
	Observe(t int, fb []Feedback)
}

// Config parameterizes a simulation run.
type Config struct {
	Cluster *cluster.Cluster
	Apps    []*models.Application
	// NoiseSigma is the relative per-batch execution-time noise
	// (0 = deterministic).
	NoiseSigma float64
	// SlotNoiseSigma adds correlated per-(slot, edge) interference: every
	// batch duration on an edge is scaled by the same ~N(1, σ) factor for
	// the whole slot. Per-batch noise averages out over a busy slot; this
	// does not, and is what makes realized makespans miss the budget the
	// way loaded testbeds do.
	SlotNoiseSigma float64
	// Seed drives execution noise.
	Seed int64
	// Strict makes constraint violations fatal errors instead of records.
	Strict bool
}

// Results aggregates a run.
type Results struct {
	Scheduler string
	// Completion holds per-request completion times normalized by the slot
	// duration (the τ axis of Fig. 6a/7a); dropped requests appear as 2.0.
	Completion []float64
	// Loss tracks per-slot and cumulative inference loss (Fig. 6b/c, 7b/c).
	Loss metrics.LossAccumulator
	// Violations lists constraint violations detected in submitted plans.
	Violations []string
	// Dropped is the total number of dropped requests.
	Dropped int
	// Served is the total number of completed requests.
	Served int
	// SlotMakespanMS records each edge's makespan per slot (K entries per
	// slot, in slot-major order).
	SlotMakespanMS []float64
	// SlotCompletionCounts records how many Completion entries each slot
	// appended (served + dropped), so time-truncated statistics like the
	// Fig. 5 p%(t) sweep can be computed from prefixes.
	SlotCompletionCounts []int
	// Failures counts requests that violated their application's SLO
	// (completion past SLOFrac·slot, or dropped); SlotFailureCounts holds
	// the per-slot breakdown.
	Failures          int
	SlotFailureCounts []int
	// EnergyJ is total cluster energy: active execution plus idle draw over
	// every slot (an edge that finishes early idles for the remainder).
	EnergyJ float64
}

// FailureRateUpTo returns p% over the first slots entries of the run.
func (r *Results) FailureRateUpTo(slots int) float64 {
	if slots >= len(r.SlotCompletionCounts) {
		return r.FailureRate()
	}
	n, f := 0, 0
	for i := 0; i < slots; i++ {
		n += r.SlotCompletionCounts[i]
		f += r.SlotFailureCounts[i]
	}
	if n == 0 {
		return 0
	}
	return float64(f) / float64(n)
}

// FailureRate returns the paper's p%: the fraction of requests that violated
// their application's response-time SLO (by default, the slot itself).
func (r *Results) FailureRate() float64 {
	if len(r.Completion) == 0 {
		return 0
	}
	return float64(r.Failures) / float64(len(r.Completion))
}

// DroppedPenaltyTau is the normalized completion time recorded for dropped
// requests (an unambiguous SLO failure).
const DroppedPenaltyTau = 2.0

// Sim executes schedulers against arrival streams.
type Sim struct {
	cfg     Config
	slotMS  float64
	maxLoss []float64 // per app: worst model loss, charged for drops
	// prevDeployed[k][model key] tracks x^{t-1} for bandwidth accounting.
	prevDeployed []map[[2]int]bool
	rng          *rand.Rand
}

// New creates a simulator. It validates the cluster topology.
func New(cfg Config) (*Sim, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("edgesim: nil cluster")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("edgesim: no applications")
	}
	s := &Sim{
		cfg:    cfg,
		slotMS: cfg.Cluster.SlotMS(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, app := range cfg.Apps {
		if len(app.Models) == 0 {
			return nil, fmt.Errorf("edgesim: application %q has no models", app.Name)
		}
		worst := 0.0
		for _, m := range app.Models {
			if m.Loss > worst {
				worst = m.Loss
			}
		}
		s.maxLoss = append(s.maxLoss, worst)
	}
	s.resetDeployed()
	return s, nil
}

func (s *Sim) resetDeployed() {
	s.prevDeployed = make([]map[[2]int]bool, s.cfg.Cluster.N())
	for k := range s.prevDeployed {
		s.prevDeployed[k] = map[[2]int]bool{}
	}
}

// Run drives sched over all slots of the arrival tensor arrivals[t][i][k]
// and returns aggregated results. The simulator state (previous deployments,
// noise stream) is reset at the start of each run.
func (s *Sim) Run(sched Scheduler, arrivals [][][]int) (*Results, error) {
	s.resetDeployed()
	s.rng = rand.New(rand.NewSource(s.cfg.Seed))
	res := &Results{Scheduler: sched.Name()}
	for t := 0; t < len(arrivals); t++ {
		if err := s.runSlot(sched, t, arrivals[t], res); err != nil {
			return nil, fmt.Errorf("slot %d: %w", t, err)
		}
	}
	return res, nil
}

func (s *Sim) runSlot(sched Scheduler, t int, arrivals [][]int, res *Results) error {
	completionsBefore := len(res.Completion)
	failuresBefore := res.Failures
	defer func() {
		res.SlotCompletionCounts = append(res.SlotCompletionCounts, len(res.Completion)-completionsBefore)
		res.SlotFailureCounts = append(res.SlotFailureCounts, res.Failures-failuresBefore)
	}()
	plan, err := sched.Decide(t, arrivals)
	if err != nil {
		return fmt.Errorf("%s.Decide: %w", sched.Name(), err)
	}
	viol := s.validate(t, arrivals, plan)
	if len(viol) > 0 {
		if s.cfg.Strict {
			return fmt.Errorf("plan violations: %v", viol)
		}
		for _, v := range viol {
			res.Violations = append(res.Violations, fmt.Sprintf("t=%d: %s", t, v))
		}
	}

	// Execute per edge: deployments run sequentially on the accelerator.
	K := s.cfg.Cluster.N()
	perEdge := make([][]Deployment, K)
	for _, d := range plan.Deployments {
		if d.Edge >= 0 && d.Edge < K {
			perEdge[d.Edge] = append(perEdge[d.Edge], d)
		}
	}
	var fbs []Feedback
	slotLoss := 0.0
	for k := 0; k < K; k++ {
		scale := 1.0
		if s.cfg.SlotNoiseSigma > 0 {
			scale = 1 + s.rng.NormFloat64()*s.cfg.SlotNoiseSigma
			if scale < 0.5 {
				scale = 0.5
			}
		}
		exec := ExecuteEdge(s.cfg.Cluster.Edges[k].Device, s.cfg.Apps, k,
			perEdge[k], s.cfg.NoiseSigma, scale, s.rng)
		for q, ms := range exec.CompletionMS {
			tau := ms / s.slotMS
			res.Completion = append(res.Completion, tau)
			if tau > s.cfg.Apps[exec.CompletionApp[q]].SLO() {
				res.Failures++
			}
		}
		res.Served += exec.Served
		slotLoss += exec.Loss
		fbs = append(fbs, exec.Feedback...)
		res.SlotMakespanMS = append(res.SlotMakespanMS, exec.MakespanMS)
		res.EnergyJ += exec.EnergyJ
		if idle := s.slotMS - exec.MakespanMS; idle > 0 {
			res.EnergyJ += s.cfg.Cluster.Edges[k].Device.IdleEnergyJ(idle)
		}
	}
	// Dropped requests: worst loss and a hard SLO failure.
	if plan.Dropped != nil {
		for i := range plan.Dropped {
			for k := range plan.Dropped[i] {
				n := plan.Dropped[i][k]
				if n <= 0 {
					continue
				}
				res.Dropped += n
				res.Failures += n // a dropped request always misses its SLO
				slotLoss += s.maxLoss[i] * float64(n)
				for q := 0; q < n; q++ {
					res.Completion = append(res.Completion, DroppedPenaltyTau)
				}
			}
		}
	}
	res.Loss.Add(slotLoss)

	// Update residency for next-slot bandwidth accounting: whatever was
	// deployed or preloaded this slot is on disk next slot.
	for k := range s.prevDeployed {
		s.prevDeployed[k] = map[[2]int]bool{}
	}
	for _, d := range plan.Deployments {
		if d.Edge >= 0 && d.Edge < K {
			s.prevDeployed[d.Edge][[2]int{d.App, d.Version}] = true
		}
	}
	for _, pl := range plan.Preloads {
		if pl.Edge >= 0 && pl.Edge < K {
			s.prevDeployed[pl.Edge][[2]int{pl.App, pl.Version}] = true
		}
	}
	sched.Observe(t, fbs)
	return nil
}
