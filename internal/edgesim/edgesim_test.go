package edgesim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/models"
)

// localScheduler serves every arrival on its own edge with the smallest model
// in one merged batch — the simplest valid policy.
type localScheduler struct{ apps []*models.Application }

func (l *localScheduler) Name() string { return "local" }
func (l *localScheduler) Decide(t int, arrivals [][]int) (*Plan, error) {
	p := &Plan{}
	for i := range arrivals {
		for k, n := range arrivals[i] {
			if n == 0 {
				continue
			}
			p.Deployments = append(p.Deployments, Deployment{
				App: i, Version: 0, Edge: k, Requests: n, BatchSizes: []int{n},
			})
		}
	}
	return p, nil
}
func (l *localScheduler) Observe(int, []Feedback) {}

// recordingScheduler wraps another scheduler and captures feedback.
type recordingScheduler struct {
	Scheduler
	fbs []Feedback
}

func (r *recordingScheduler) Observe(t int, fb []Feedback) { r.fbs = append(r.fbs, fb...) }

func smallConfig() Config {
	return Config{
		Cluster: cluster.Small(cluster.WithSlotSeconds(10)),
		Apps:    models.Catalogue(2, 3),
		Seed:    1,
	}
}

func arrivalsTensor(slots int, perSlot [][]int) [][][]int {
	out := make([][][]int, slots)
	for t := range out {
		cp := make([][]int, len(perSlot))
		for i := range perSlot {
			cp[i] = append([]int(nil), perSlot[i]...)
		}
		out[t] = cp
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil cluster must error")
	}
	if _, err := New(Config{Cluster: cluster.Small()}); err == nil {
		t.Fatal("no apps must error")
	}
	bad := Config{Cluster: cluster.Small(), Apps: []*models.Application{{Name: "x"}}}
	if _, err := New(bad); err == nil {
		t.Fatal("app without models must error")
	}
}

func TestRunLocalScheduler(t *testing.T) {
	cfg := smallConfig()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr := arrivalsTensor(5, [][]int{{3, 0, 2}, {1, 1, 1}})
	res, err := sim.Run(&localScheduler{apps: cfg.Apps}, arr)
	if err != nil {
		t.Fatal(err)
	}
	wantServed := 5 * (3 + 2 + 1 + 1 + 1)
	if res.Served != wantServed {
		t.Fatalf("served = %d, want %d", res.Served, wantServed)
	}
	if len(res.Completion) != wantServed {
		t.Fatalf("completions = %d, want %d", len(res.Completion), wantServed)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
	if res.Loss.Slots() != 5 {
		t.Fatalf("loss slots = %d", res.Loss.Slots())
	}
	// Loss per slot: version 0 of each app × request counts.
	want := cfg.Apps[0].Models[0].Loss*5 + cfg.Apps[1].Models[0].Loss*3
	if math.Abs(res.Loss.PerSlot()[0]-want) > 1e-9 {
		t.Fatalf("slot loss = %v, want %v", res.Loss.PerSlot()[0], want)
	}
	for _, tau := range res.Completion {
		if tau <= 0 {
			t.Fatalf("completion %v must be positive", tau)
		}
	}
}

func TestRunDeterministicForFixedSeed(t *testing.T) {
	cfg := smallConfig()
	cfg.NoiseSigma = 0.05
	sim, _ := New(cfg)
	arr := arrivalsTensor(3, [][]int{{4, 1, 0}, {0, 2, 3}})
	r1, err := sim.Run(&localScheduler{apps: cfg.Apps}, arr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(&localScheduler{apps: cfg.Apps}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Completion) != len(r2.Completion) {
		t.Fatal("runs differ in size")
	}
	for i := range r1.Completion {
		if r1.Completion[i] != r2.Completion[i] {
			t.Fatal("Run must reset noise state: completions differ between runs")
		}
	}
}

func TestFeedbackStream(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	rec := &recordingScheduler{Scheduler: &localScheduler{apps: cfg.Apps}}
	arr := arrivalsTensor(2, [][]int{{3, 0, 0}, {0, 0, 0}})
	if _, err := sim.Run(rec, arr); err != nil {
		t.Fatal(err)
	}
	if len(rec.fbs) != 2 {
		t.Fatalf("feedback count = %d, want 2 (one batch per slot)", len(rec.fbs))
	}
	fb := rec.fbs[0]
	if fb.Batch != 3 || fb.App != 0 || fb.Edge != 0 {
		t.Fatalf("feedback = %+v", fb)
	}
	if fb.TIR < 1-1e-9 || fb.TIR > 3+1e-9 {
		t.Fatalf("TIR = %v outside [1, b]", fb.TIR)
	}
}

// transferScheduler moves all arrivals at edge 0 to edge 1.
type transferScheduler struct{ apps []*models.Application }

func (s *transferScheduler) Name() string { return "xfer" }
func (s *transferScheduler) Decide(t int, arrivals [][]int) (*Plan, error) {
	p := &Plan{}
	for i := range arrivals {
		moved := arrivals[i][0]
		if moved > 0 {
			p.Transfers = append(p.Transfers, Transfer{App: i, From: 0, To: 1, Count: moved})
		}
		for k, n := range arrivals[i] {
			eff := n
			if k == 0 {
				eff = 0
			}
			if k == 1 {
				eff += moved
			}
			if eff == 0 {
				continue
			}
			p.Deployments = append(p.Deployments, Deployment{
				App: i, Version: 0, Edge: k, Requests: eff, BatchSizes: []int{eff},
			})
		}
	}
	return p, nil
}
func (s *transferScheduler) Observe(int, []Feedback) {}

func TestTransfersSatisfyConservation(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	arr := arrivalsTensor(2, [][]int{{4, 1, 0}, {2, 0, 0}})
	res, err := sim.Run(&transferScheduler{apps: cfg.Apps}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Served != 2*(4+1+2) {
		t.Fatalf("served = %d", res.Served)
	}
}

// brokenScheduler violates conservation (serves nothing, drops nothing).
type brokenScheduler struct{}

func (brokenScheduler) Name() string                       { return "broken" }
func (brokenScheduler) Decide(int, [][]int) (*Plan, error) { return &Plan{}, nil }
func (brokenScheduler) Observe(int, []Feedback)            {}

func TestViolationDetectionAndStrictMode(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	arr := arrivalsTensor(1, [][]int{{1, 0, 0}, {0, 0, 0}})
	res, err := sim.Run(brokenScheduler{}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("conservation violation not detected")
	}
	cfg.Strict = true
	sim, _ = New(cfg)
	if _, err := sim.Run(brokenScheduler{}, arr); err == nil {
		t.Fatal("strict mode must fail on violations")
	}
}

// droppingScheduler declares every arrival dropped.
type droppingScheduler struct{ apps int }

func (d *droppingScheduler) Name() string { return "drop" }
func (d *droppingScheduler) Decide(t int, arrivals [][]int) (*Plan, error) {
	p := &Plan{Dropped: make([][]int, len(arrivals))}
	for i := range arrivals {
		p.Dropped[i] = append([]int(nil), arrivals[i]...)
	}
	return p, nil
}
func (d *droppingScheduler) Observe(int, []Feedback) {}

func TestDropsScoreWorstLossAndFail(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	arr := arrivalsTensor(1, [][]int{{2, 0, 0}, {0, 0, 0}})
	res, err := sim.Run(&droppingScheduler{apps: 2}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("dropping everything is a legal (bad) plan: %v", res.Violations)
	}
	if res.Dropped != 2 {
		t.Fatalf("dropped = %d", res.Dropped)
	}
	if res.FailureRate() != 1 {
		t.Fatalf("failure rate = %v, want 1", res.FailureRate())
	}
	worst := cfg.Apps[0].Models[0].Loss
	for _, m := range cfg.Apps[0].Models {
		if m.Loss > worst {
			worst = m.Loss
		}
	}
	if math.Abs(res.Loss.Total()-2*worst) > 1e-9 {
		t.Fatalf("loss = %v, want %v", res.Loss.Total(), 2*worst)
	}
}

// paddedScheduler runs batches padded beyond the request count (MAX-style).
type paddedScheduler struct{}

func (paddedScheduler) Name() string { return "padded" }
func (paddedScheduler) Decide(t int, arrivals [][]int) (*Plan, error) {
	p := &Plan{}
	for i := range arrivals {
		for k, n := range arrivals[i] {
			if n == 0 {
				continue
			}
			p.Deployments = append(p.Deployments, Deployment{
				App: i, Version: 0, Edge: k, Requests: n, BatchSizes: []int{8},
			})
		}
	}
	return p, nil
}
func (paddedScheduler) Observe(int, []Feedback) {}

func TestPaddingProducesOnlyRealCompletions(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	arr := arrivalsTensor(1, [][]int{{3, 0, 0}, {0, 0, 0}})
	res, err := sim.Run(paddedScheduler{}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 3 || len(res.Completion) != 3 {
		t.Fatalf("served = %d, completions = %d; padding must not complete", res.Served, len(res.Completion))
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	arrivals := [][]int{{2, 0, 0}, {0, 0, 0}}
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"out-of-range deployment", &Plan{Deployments: []Deployment{{App: 9, Edge: 0, Requests: 2, BatchSizes: []int{2}}}}, "out of range"},
		{"negative requests", &Plan{Deployments: []Deployment{{App: 0, Edge: 0, Requests: -1, BatchSizes: []int{1}}}}, "negative requests"},
		{"uncovered batches", &Plan{Deployments: []Deployment{{App: 0, Edge: 0, Requests: 2, BatchSizes: []int{1}}}}, "physical batches cover"},
		{"bad transfer", &Plan{Transfers: []Transfer{{App: 0, From: 0, To: 99, Count: 1}}}, "out of range"},
		{"negative transfer", &Plan{Transfers: []Transfer{{App: 0, From: 0, To: 1, Count: -2}}}, "negative transfer"},
		{"over-forwarding", &Plan{
			Transfers:   []Transfer{{App: 0, From: 0, To: 1, Count: 5}},
			Deployments: []Deployment{{App: 0, Edge: 1, Requests: 5, BatchSizes: []int{5}}},
		}, "forwards"},
	}
	for _, tc := range cases {
		viol := sim.validate(0, arrivals, tc.plan)
		found := false
		for _, v := range viol {
			if strings.Contains(v, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: expected violation containing %q, got %v", tc.name, tc.want, viol)
		}
	}
}

func TestMemoryViolationDetected(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	// Deploy the biggest model with an enormous batch: activation memory
	// must blow past the edge budget.
	big := len(cfg.Apps[0].Models) - 1
	plan := &Plan{Deployments: []Deployment{{
		App: 0, Version: big, Edge: 0, Requests: 200,
		BatchSizes: []int{200},
	}}}
	arrivals := [][]int{{200, 0, 0}, {0, 0, 0}}
	viol := sim.validate(0, arrivals, plan)
	found := false
	for _, v := range viol {
		if strings.Contains(v, "memory") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected memory violation, got %v", viol)
	}
}

func TestBandwidthViolationDetected(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	// Forward an absurd volume of the largest-payload application.
	last := len(cfg.Apps) - 1
	n := 100000
	plan := &Plan{
		Transfers: []Transfer{{App: last, From: 0, To: 1, Count: n}},
		Deployments: []Deployment{{
			App: last, Version: 0, Edge: 1, Requests: n + 0, BatchSizes: []int{n},
		}},
	}
	arrivals := [][]int{{0, 0, 0}, {n, 0, 0}}
	viol := sim.validate(0, arrivals, plan)
	foundBW := false
	for _, v := range viol {
		if strings.Contains(v, "bandwidth") {
			foundBW = true
		}
	}
	if !foundBW {
		t.Fatalf("expected bandwidth violation, got %v", viol)
	}
}

func TestModelSwitchChargesBandwidthOnlyOnce(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	arr := arrivalsTensor(3, [][]int{{1, 0, 0}, {0, 0, 0}})
	// localScheduler deploys the same model every slot; only slot 0 should
	// be charged for the model weights — no bandwidth violations in any case
	// here, but exercise the prevDeployed tracking path.
	res, err := sim.Run(&localScheduler{apps: cfg.Apps}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestSelfTransferIsNoOp(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	plan := &Plan{
		Transfers:   []Transfer{{App: 0, From: 0, To: 0, Count: 5}},
		Deployments: []Deployment{{App: 0, Edge: 0, Requests: 2, BatchSizes: []int{2}}},
	}
	arrivals := [][]int{{2, 0, 0}, {0, 0, 0}}
	if viol := sim.validate(0, arrivals, plan); len(viol) != 0 {
		t.Fatalf("self transfer should be ignored: %v", viol)
	}
}

func TestMakespanRecorded(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	arr := arrivalsTensor(2, [][]int{{1, 0, 0}, {0, 0, 0}})
	res, err := sim.Run(&localScheduler{apps: cfg.Apps}, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SlotMakespanMS) != 2*cfg.Cluster.N() {
		t.Fatalf("makespans = %d, want %d", len(res.SlotMakespanMS), 2*cfg.Cluster.N())
	}
}

func TestPlanSummary(t *testing.T) {
	cfg := smallConfig()
	plan := &Plan{
		Deployments: []Deployment{
			{App: 0, Version: 1, Edge: 0, Requests: 5, BatchSizes: []int{5}},
			{App: 1, Version: 0, Edge: 2, Requests: 3, BatchSizes: []int{2, 1}},
		},
		Transfers: []Transfer{{App: 0, From: 1, To: 0, Count: 2}},
		Dropped:   [][]int{{0, 0, 1}, {0, 0, 0}},
	}
	out := plan.Summary(cfg.Cluster, cfg.Apps)
	for _, want := range []string{
		cfg.Cluster.Edges[0].Name,
		cfg.Apps[0].Models[1].Name,
		"transfers:",
		"dropped: 1 requests",
		"batches [2 1]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if got := (&Plan{}).Summary(nil, nil); got != "(empty plan)\n" {
		t.Fatalf("empty plan summary = %q", got)
	}
}

func TestResultsSummary(t *testing.T) {
	cfg := smallConfig()
	sim, _ := New(cfg)
	arr := arrivalsTensor(2, [][]int{{3, 0, 0}, {0, 1, 0}})
	res, err := sim.Run(&localScheduler{apps: cfg.Apps}, arr)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Summary()
	for _, want := range []string{"scheduler", "local", "requests served", "total loss", "SLO failures", "energy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
