package edgesim

import (
	"fmt"
)

// validate checks a plan against the paper's constraint system and returns a
// human-readable list of violations. It never mutates the plan.
//
// Checks, in paper order:
//
//	Eq. 3/5  workload conservation: served + dropped = arrivals − out + in
//	Eq. 4    batch/deployment coupling: Requests ≥ 1 per deployment and
//	         physical batches cover Requests
//	Eq. 6    memory: Σ (δ + μ·maxBatch) ≤ M_k per edge
//	Eq. 9    bandwidth: request forwarding + newly shipped model weights fit
//	         the slot budget N^t_k per edge
//
// The compute constraint (Eq. 8) is intentionally *not* validated: realized
// execution may exceed the slot, and that overflow IS the SLO-failure signal
// the evaluation measures.
func (s *Sim) validate(t int, arrivals [][]int, plan *Plan) []string {
	var viol []string
	I := len(s.cfg.Apps)
	K := s.cfg.Cluster.N()

	// Index bounds first; out-of-range entries are reported and skipped.
	okDep := func(d Deployment) bool {
		return d.App >= 0 && d.App < I &&
			d.Edge >= 0 && d.Edge < K &&
			d.Version >= 0 && d.Version < len(s.cfg.Apps[d.App].Models)
	}
	okTr := func(tr Transfer) bool {
		return tr.App >= 0 && tr.App < I &&
			tr.From >= 0 && tr.From < K && tr.To >= 0 && tr.To < K
	}

	// Net flow per (i, k).
	in := make([][]int, I)
	out := make([][]int, I)
	served := make([][]int, I)
	for i := 0; i < I; i++ {
		in[i] = make([]int, K)
		out[i] = make([]int, K)
		served[i] = make([]int, K)
	}
	for _, tr := range plan.Transfers {
		if !okTr(tr) {
			viol = append(viol, fmt.Sprintf("transfer out of range: %+v", tr))
			continue
		}
		if tr.Count < 0 {
			viol = append(viol, fmt.Sprintf("negative transfer count: %+v", tr))
			continue
		}
		if tr.From == tr.To {
			continue // self transfer is a no-op
		}
		out[tr.App][tr.From] += tr.Count
		in[tr.App][tr.To] += tr.Count
	}
	for _, d := range plan.Deployments {
		if !okDep(d) {
			viol = append(viol, fmt.Sprintf("deployment out of range: app=%d v=%d edge=%d", d.App, d.Version, d.Edge))
			continue
		}
		if d.Requests < 0 {
			viol = append(viol, fmt.Sprintf("negative requests: %+v", d))
			continue
		}
		served[d.App][d.Edge] += d.Requests
		total := 0
		for _, b := range d.BatchSizes {
			if b < 0 {
				viol = append(viol, fmt.Sprintf("negative batch size in %+v", d))
			}
			total += b
		}
		if total < d.Requests {
			viol = append(viol, fmt.Sprintf(
				"app %d v%d edge %d: physical batches cover %d of %d requests",
				d.App, d.Version, d.Edge, total, d.Requests))
		}
	}

	// Eq. 3/5: conservation.
	for i := 0; i < I; i++ {
		for k := 0; k < K; k++ {
			dropped := 0
			if plan.Dropped != nil && i < len(plan.Dropped) && k < len(plan.Dropped[i]) {
				dropped = plan.Dropped[i][k]
				if dropped < 0 {
					viol = append(viol, fmt.Sprintf("negative drop count at (%d,%d)", i, k))
					dropped = 0
				}
			}
			want := arrivals[i][k] - out[i][k] + in[i][k]
			if served[i][k]+dropped != want {
				viol = append(viol, fmt.Sprintf(
					"conservation broken at app %d edge %d: served %d + dropped %d != arrivals %d - out %d + in %d",
					i, k, served[i][k], dropped, arrivals[i][k], out[i][k], in[i][k]))
			}
			if out[i][k] > arrivals[i][k] {
				viol = append(viol, fmt.Sprintf(
					"app %d edge %d forwards %d of only %d arrivals", i, k, out[i][k], arrivals[i][k]))
			}
		}
	}

	// Eq. 6 memory per edge, under the time-sliced reading the paper's own
	// system description implies ("load all the inference models into the
	// memory ... execute each inference in a time-sliced manner"): all
	// deployed weights are resident simultaneously, but activations exist
	// only for the batch currently executing — so the requirement is
	// Σ δ·x + max over deployments of μ·b ≤ M.
	for k := 0; k < K; k++ {
		var weights, maxAct float64
		seen := map[[2]int]bool{}
		for _, d := range plan.Deployments {
			if !okDep(d) || d.Edge != k {
				continue
			}
			m := s.cfg.Apps[d.App].Models[d.Version]
			key := [2]int{d.App, d.Version}
			if !seen[key] {
				seen[key] = true
				weights += m.WeightsMB
			}
			for _, b := range d.BatchSizes {
				if act := m.IntermediateMB * float64(b); act > maxAct {
					maxAct = act
				}
			}
		}
		if cap := s.cfg.Cluster.Edges[k].MemoryMB; weights+maxAct > cap+1e-6 {
			viol = append(viol, fmt.Sprintf("edge %d memory %.1f MB (weights %.1f + peak batch %.1f) exceeds %.1f MB",
				k, weights+maxAct, weights, maxAct, cap))
		}
	}

	// Eq. 9: bandwidth per edge — request forwarding (both directions charge
	// the edge) plus compressed weights of newly deployed models.
	for k := 0; k < K; k++ {
		var mb float64
		for _, tr := range plan.Transfers {
			if !okTr(tr) || tr.From == tr.To || tr.Count <= 0 {
				continue
			}
			if tr.From == k || tr.To == k {
				mb += float64(tr.Count) * s.cfg.Apps[tr.App].RequestMB
			}
		}
		shipped := map[[2]int]bool{}
		for _, d := range plan.Deployments {
			if !okDep(d) || d.Edge != k {
				continue
			}
			key := [2]int{d.App, d.Version}
			if !s.prevDeployed[k][key] && !shipped[key] {
				shipped[key] = true
				mb += s.cfg.Apps[d.App].Models[d.Version].CompressedMB
			}
		}
		for _, pl := range plan.Preloads {
			if pl.Edge != k || pl.App < 0 || pl.App >= I ||
				pl.Version < 0 || pl.Version >= len(s.cfg.Apps[pl.App].Models) {
				if pl.Edge == k {
					viol = append(viol, fmt.Sprintf("preload out of range: %+v", pl))
				}
				continue
			}
			key := [2]int{pl.App, pl.Version}
			if !s.prevDeployed[k][key] && !shipped[key] {
				shipped[key] = true
				mb += s.cfg.Apps[pl.App].Models[pl.Version].CompressedMB
			}
		}
		if budget := s.cfg.Cluster.BandwidthMBAt(t, k); mb > budget+1e-6 {
			viol = append(viol, fmt.Sprintf("edge %d bandwidth %.1f MB exceeds %.1f MB", k, mb, budget))
		}
	}
	return viol
}
