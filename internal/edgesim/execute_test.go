package edgesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/models"
)

func execArgs() (*cluster.Cluster, []*models.Application) {
	return cluster.Small(), models.Catalogue(2, 3)
}

func TestExecuteEdgeBasics(t *testing.T) {
	c, apps := execArgs()
	deps := []Deployment{
		{App: 0, Version: 0, Edge: 0, Requests: 5, BatchSizes: []int{5}},
		{App: 1, Version: 1, Edge: 0, Requests: 3, BatchSizes: []int{2, 1}},
	}
	res := ExecuteEdge(c.Edges[0].Device, apps, 0, deps, 0, 1, rand.New(rand.NewSource(1)))
	if res.Served != 8 {
		t.Fatalf("served %d, want 8", res.Served)
	}
	if len(res.CompletionMS) != 8 {
		t.Fatalf("completions %d, want 8", len(res.CompletionMS))
	}
	wantLoss := apps[0].Models[0].Loss*5 + apps[1].Models[1].Loss*3
	if math.Abs(res.Loss-wantLoss) > 1e-9 {
		t.Fatalf("loss %v, want %v", res.Loss, wantLoss)
	}
	if len(res.Feedback) != 3 {
		t.Fatalf("feedback %d, want 3 (one per physical batch)", len(res.Feedback))
	}
	// Completions are nondecreasing within the edge (sequential execution).
	for i := 1; i < len(res.CompletionMS); i++ {
		if res.CompletionMS[i] < res.CompletionMS[i-1] {
			t.Fatal("completion times went backwards")
		}
	}
	if res.MakespanMS < res.CompletionMS[len(res.CompletionMS)-1] {
		t.Fatal("makespan before last completion")
	}
}

func TestExecuteEdgeDeterministicOrder(t *testing.T) {
	c, apps := execArgs()
	// Same deployments, shuffled input order, zero noise: identical output.
	deps := []Deployment{
		{App: 1, Version: 0, Edge: 0, Requests: 2, BatchSizes: []int{2}},
		{App: 0, Version: 2, Edge: 0, Requests: 1, BatchSizes: []int{1}},
		{App: 0, Version: 0, Edge: 0, Requests: 3, BatchSizes: []int{3}},
	}
	shuffled := []Deployment{deps[2], deps[0], deps[1]}
	a := ExecuteEdge(c.Edges[0].Device, apps, 0, deps, 0, 1, rand.New(rand.NewSource(1)))
	b := ExecuteEdge(c.Edges[0].Device, apps, 0, shuffled, 0, 1, rand.New(rand.NewSource(2)))
	if len(a.CompletionMS) != len(b.CompletionMS) {
		t.Fatal("lengths differ")
	}
	for i := range a.CompletionMS {
		if a.CompletionMS[i] != b.CompletionMS[i] {
			t.Fatal("execution order must be canonical, not input order")
		}
	}
}

func TestExecuteEdgeSlotScale(t *testing.T) {
	c, apps := execArgs()
	deps := []Deployment{{App: 0, Version: 0, Edge: 0, Requests: 4, BatchSizes: []int{4}}}
	base := ExecuteEdge(c.Edges[0].Device, apps, 0, deps, 0, 1, rand.New(rand.NewSource(1)))
	slow := ExecuteEdge(c.Edges[0].Device, apps, 0, deps, 0, 1.5, rand.New(rand.NewSource(1)))
	if math.Abs(slow.MakespanMS-1.5*base.MakespanMS) > 1e-9 {
		t.Fatalf("slot scale not applied: %v vs %v", slow.MakespanMS, base.MakespanMS)
	}
	// TIR feedback under uniform slowdown shrinks proportionally (the
	// baseline is unscaled) — that is exactly the signal a loaded edge emits.
	if slow.Feedback[0].TIR >= base.Feedback[0].TIR {
		t.Fatal("slot slowdown must depress observed TIR")
	}
}

func TestExecuteEdgeSkipsInvalidDeployments(t *testing.T) {
	c, apps := execArgs()
	deps := []Deployment{
		{App: 99, Version: 0, Edge: 0, Requests: 4, BatchSizes: []int{4}},
		{App: 0, Version: 99, Edge: 0, Requests: 4, BatchSizes: []int{4}},
		{App: -1, Version: 0, Edge: 0, Requests: 4, BatchSizes: []int{4}},
		{App: 0, Version: 0, Edge: 0, Requests: 2, BatchSizes: []int{2}},
	}
	res := ExecuteEdge(c.Edges[0].Device, apps, 0, deps, 0, 1, rand.New(rand.NewSource(1)))
	if res.Served != 2 {
		t.Fatalf("served %d, want only the valid deployment's 2", res.Served)
	}
}

func TestExecuteEdgePaddingAndZeroBatches(t *testing.T) {
	c, apps := execArgs()
	deps := []Deployment{{App: 0, Version: 0, Edge: 0, Requests: 3, BatchSizes: []int{0, 8, -2}}}
	res := ExecuteEdge(c.Edges[0].Device, apps, 0, deps, 0, 1, rand.New(rand.NewSource(1)))
	if res.Served != 3 {
		t.Fatalf("served %d, want 3 (padding completes nothing)", res.Served)
	}
	if len(res.Feedback) != 1 {
		t.Fatalf("feedback %d, want 1 (zero/negative batches are skipped)", len(res.Feedback))
	}
}

// Property: served == min(Requests, Σ positive batch sizes) per deployment,
// and loss is exactly served × model loss.
func TestQuickExecuteConservation(t *testing.T) {
	c, apps := execArgs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var deps []Deployment
		want := 0
		var wantLoss float64
		for n := 0; n < 1+rng.Intn(5); n++ {
			app := rng.Intn(2)
			ver := rng.Intn(3)
			req := rng.Intn(12)
			var sizes []int
			covered := 0
			for b := 0; b < 1+rng.Intn(3); b++ {
				sz := rng.Intn(8)
				sizes = append(sizes, sz)
				covered += sz
			}
			served := req
			if covered < served {
				served = covered
			}
			want += served
			wantLoss += apps[app].Models[ver].Loss * float64(served)
			deps = append(deps, Deployment{App: app, Version: ver, Edge: 0, Requests: req, BatchSizes: sizes})
		}
		res := ExecuteEdge(c.Edges[0].Device, apps, 0, deps, 0.05, 1, rng)
		return res.Served == want && math.Abs(res.Loss-wantLoss) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotNoiseChangesCompletions(t *testing.T) {
	c, apps := execArgs()
	sim1, _ := New(Config{Cluster: c, Apps: apps, Seed: 1})
	sim2, _ := New(Config{Cluster: c, Apps: apps, Seed: 1, SlotNoiseSigma: 0.2})
	sched := &localScheduler{apps: apps}
	arr := arrivalsTensor(4, [][]int{{6, 2, 1}, {0, 3, 2}})
	r1, err := sim1.Run(sched, arr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim2.Run(sched, arr)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Completion {
		if r1.Completion[i] != r2.Completion[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("slot noise had no effect")
	}
	// And it must be reproducible for a fixed seed.
	r3, err := sim2.Run(sched, arr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r2.Completion {
		if r2.Completion[i] != r3.Completion[i] {
			t.Fatal("slot noise must be deterministic per seed")
		}
	}
}

func TestThrottlingSlowsLateBatches(t *testing.T) {
	c, apps := execArgs()
	hot := *c.Edges[0].Device
	hot.ThrottleAfterMS = 50
	hot.ThrottleFactor = 2
	deps := []Deployment{{App: 0, Version: 0, Edge: 0, Requests: 20,
		BatchSizes: []int{5, 5, 5, 5}}}
	cool := ExecuteEdge(c.Edges[0].Device, apps, 0, deps, 0, 1, rand.New(rand.NewSource(1)))
	warm := ExecuteEdge(&hot, apps, 0, deps, 0, 1, rand.New(rand.NewSource(1)))
	if warm.MakespanMS <= cool.MakespanMS {
		t.Fatalf("throttled edge should be slower: %v vs %v", warm.MakespanMS, cool.MakespanMS)
	}
	// The first batch finishes before the threshold at the same time.
	if warm.CompletionMS[0] != cool.CompletionMS[0] {
		t.Fatalf("pre-threshold batch must be unaffected: %v vs %v",
			warm.CompletionMS[0], cool.CompletionMS[0])
	}
}
