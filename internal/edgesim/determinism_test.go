package edgesim

import "testing"

// TestPlanSummaryRepeatable renders the same plan twice and diffs the output:
// Summary groups deployments through a map keyed by edge, so without the
// sorted-edge pass the rendering would vary run to run. The two renderings
// must be byte-identical.
func TestPlanSummaryRepeatable(t *testing.T) {
	cfg := smallConfig()
	plan := &Plan{
		Deployments: []Deployment{
			{App: 0, Version: 1, Edge: 2, Requests: 5, BatchSizes: []int{5}},
			{App: 1, Version: 0, Edge: 0, Requests: 3, BatchSizes: []int{2, 1}},
			{App: 1, Version: 1, Edge: 1, Requests: 4, BatchSizes: []int{4}},
			{App: 0, Version: 0, Edge: 2, Requests: 2, BatchSizes: []int{2}},
		},
		Transfers: []Transfer{{App: 0, From: 1, To: 0, Count: 2}},
		Dropped:   [][]int{{0, 0, 1}, {0, 0, 0}},
	}
	first := plan.Summary(cfg.Cluster, cfg.Apps)
	second := plan.Summary(cfg.Cluster, cfg.Apps)
	if first != second {
		t.Fatalf("Plan.Summary not repeatable:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestRunRepeatable runs the simulator twice on the same arrivals and diffs
// the rendered results: the whole pipeline (scheduling, batching, loss and
// energy accounting, summary rendering) must be deterministic.
func TestRunRepeatable(t *testing.T) {
	cfg := smallConfig()
	arr := arrivalsTensor(2, [][]int{{3, 0, 1}, {0, 1, 2}})
	render := func() string {
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(&localScheduler{apps: cfg.Apps}, arr)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("simulation not repeatable:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
