package edgesim

import (
	"math/rand"
	"sort"

	"repro/internal/accel"
	"repro/internal/models"
)

// ExecResult is the outcome of executing one edge's slot assignment.
type ExecResult struct {
	// CompletionMS holds one entry per completed request: its finish time on
	// the edge's accelerator clock.
	CompletionMS []float64
	// CompletionApp holds the application index of each CompletionMS entry,
	// so per-application SLOs can be applied downstream.
	CompletionApp []int
	// Loss is the summed inference loss of completed requests.
	Loss float64
	// Served counts completed requests.
	Served int
	// Feedback carries the realized per-batch TIR observations.
	Feedback []Feedback
	// MakespanMS is the edge's total busy time.
	MakespanMS float64
	// EnergyJ is the active energy spent executing the batches (idle draw is
	// the simulator's to add — it knows the slot length).
	EnergyJ float64
}

// ExecuteEdge runs a slot's deployments for one edge on its device model:
// deployments execute sequentially in deterministic (app, version) order,
// each physical batch takes the (noisy) device batch time, and every real
// request in a batch completes when the batch does. Both the in-process
// simulator and the distributed edge agent call this, so the two executors
// cannot drift apart.
// slotScale multiplies every batch duration in the slot — correlated
// interference (thermal throttling, co-located load) that per-batch noise
// cannot express; pass 1 for none.
func ExecuteEdge(
	device *accel.Device,
	apps []*models.Application,
	edgeIdx int,
	deployments []Deployment,
	noiseSigma float64,
	slotScale float64,
	rng *rand.Rand,
) ExecResult {
	deps := append([]Deployment(nil), deployments...)
	// Tighter-SLO applications execute first (earliest-deadline order);
	// within an SLO class the order is canonical for reproducibility.
	sort.SliceStable(deps, func(a, b int) bool {
		da, db := deps[a], deps[b]
		sa, sb := 1.0, 1.0
		if da.App >= 0 && da.App < len(apps) {
			sa = apps[da.App].SLO()
		}
		if db.App >= 0 && db.App < len(apps) {
			sb = apps[db.App].SLO()
		}
		// Comparator tie-break: exact order on stored SLO fractions.
		//birplint:ignore floateq
		if sa != sb {
			return sa < sb
		}
		if da.App != db.App {
			return da.App < db.App
		}
		return da.Version < db.Version
	})
	var res ExecResult
	clock := 0.0
	for _, d := range deps {
		if d.App < 0 || d.App >= len(apps) || d.Version < 0 || d.Version >= len(apps[d.App].Models) {
			continue
		}
		m := apps[d.App].Models[d.Version]
		remaining := d.Requests
		base1 := device.BatchTimeMS(m.Profile, 1)
		for _, b := range d.BatchSizes {
			if b <= 0 {
				continue
			}
			dur := device.BatchTimeNoisyMS(m.Profile, b, noiseSigma, rng) * slotScale *
				device.ThrottleScale(clock)
			clock += dur
			res.EnergyJ += device.BatchEnergyJ(m.Profile, b)
			done := b
			if done > remaining {
				done = remaining
			}
			remaining -= done
			for q := 0; q < done; q++ {
				res.CompletionMS = append(res.CompletionMS, clock)
				res.CompletionApp = append(res.CompletionApp, d.App)
			}
			res.Served += done
			res.Loss += m.Loss * float64(done)
			if dur > 0 {
				res.Feedback = append(res.Feedback, Feedback{
					App: d.App, Version: d.Version, Edge: edgeIdx,
					Batch: b, TIR: (float64(b) / dur) * base1, BatchMS: dur,
				})
			}
		}
	}
	res.MakespanMS = clock
	return res
}
