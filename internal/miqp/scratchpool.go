package miqp

import (
	"sync"

	"repro/internal/lp"
)

// ScratchPool is a caller-owned free list of lp.Scratch arenas. Unlike the
// package-level sync.Pool — which the garbage collector may drain between
// slots, forcing the arenas to regrow from zero — a ScratchPool held by a
// long-lived scheduler keeps the arenas (and their high-water capacity) alive
// for the whole run, so steady-state slot solves allocate almost nothing.
//
// The zero value is ready to use. Get/Put are safe for concurrent use; the
// pool only hands out ownership, so determinism is unaffected: a Scratch
// carries capacity between solves, never solver state (its per-tree factor
// and basis arenas are recycled by Scratch.BeginTree at the start of each
// branch & bound tree, so nothing captured in one tree is visible to the
// next). The pool also recycles the solver's per-tree search state
// (treeState) under the same ownership discipline.
type ScratchPool struct {
	mu    sync.Mutex
	free  []*lp.Scratch
	trees []*treeState
}

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool { return &ScratchPool{} }

// Get returns a pooled Scratch, allocating a fresh one when the pool is empty.
func (sp *ScratchPool) Get() *lp.Scratch {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if n := len(sp.free); n > 0 {
		sc := sp.free[n-1]
		sp.free[n-1] = nil
		sp.free = sp.free[:n-1]
		return sc
	}
	return lp.NewScratch()
}

// Put returns a Scratch to the pool. Nil is ignored.
func (sp *ScratchPool) Put(sc *lp.Scratch) {
	if sc == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.free = append(sp.free, sc)
}

// getTree returns a pooled per-tree search-state bundle.
func (sp *ScratchPool) getTree() *treeState {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if n := len(sp.trees); n > 0 {
		t := sp.trees[n-1]
		sp.trees[n-1] = nil
		sp.trees = sp.trees[:n-1]
		return t
	}
	return &treeState{}
}

// putTree returns a treeState to the pool.
func (sp *ScratchPool) putTree(t *treeState) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.trees = append(sp.trees, t)
}

// treePool is the package-level fallback for callers without a ScratchPool.
var treePool = sync.Pool{New: func() interface{} { return &treeState{} }}

// treeState bundles every piece of per-tree storage SolveOpts needs — root
// bounds, the compiled lp.Form, the frontier heap backing, the node arena,
// batch and relaxation buffers, presolve work arrays — so a steady-state
// solve of a same-shaped problem allocates (almost) nothing. All storage is
// tree-scoped: nothing handed out from here may outlive the SolveOpts call
// that took it (results returned to the caller are always fresh or cloned).
type treeState struct {
	lb, ub    []float64
	form      *lp.Form
	root      node
	heap      nodeHeap
	batch     []*node
	relaxes   []relaxResult
	scratches []*lp.Scratch
	reduced   Problem

	// node arena: nodes are created only during the sequential merge phase
	// and die with the tree, so they recycle per tree like the lp arenas.
	nodes     []*node
	nodesUsed int

	// presolve work arrays; psAub/psBub back the reduced row set, which the
	// whole tree references (tree-scoped, like everything else here).
	psRemoved []bool
	psNegRow  []float64
	psAub     [][]float64
	psBub     []float64
}

// takeNode returns a recycled node with node-owned bound slices of length n
// (contents unspecified; the caller overwrites them).
func (t *treeState) takeNode(n int) *node {
	var nd *node
	if t.nodesUsed < len(t.nodes) {
		nd = t.nodes[t.nodesUsed]
	} else {
		nd = &node{}
		t.nodes = append(t.nodes, nd)
	}
	t.nodesUsed++
	if cap(nd.lb) < n {
		nd.lb = make([]float64, n)
		nd.ub = make([]float64, n)
	}
	nd.lb = nd.lb[:n]
	nd.ub = nd.ub[:n]
	nd.basis = nil
	return nd
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
