package miqp

import (
	"sync"

	"repro/internal/lp"
)

// ScratchPool is a caller-owned free list of lp.Scratch arenas. Unlike the
// package-level sync.Pool — which the garbage collector may drain between
// slots, forcing the arenas to regrow from zero — a ScratchPool held by a
// long-lived scheduler keeps the arenas (and their high-water capacity) alive
// for the whole run, so steady-state slot solves allocate almost nothing.
//
// The zero value is ready to use. Get/Put are safe for concurrent use; the
// pool only hands out ownership, so determinism is unaffected (a Scratch
// carries no solver state between solves, only capacity).
type ScratchPool struct {
	mu   sync.Mutex
	free []*lp.Scratch
}

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool { return &ScratchPool{} }

// Get returns a pooled Scratch, allocating a fresh one when the pool is empty.
func (sp *ScratchPool) Get() *lp.Scratch {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if n := len(sp.free); n > 0 {
		sc := sp.free[n-1]
		sp.free[n-1] = nil
		sp.free = sp.free[:n-1]
		return sc
	}
	return lp.NewScratch()
}

// Put returns a Scratch to the pool. Nil is ignored.
func (sp *ScratchPool) Put(sc *lp.Scratch) {
	if sc == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.free = append(sp.free, sc)
}
