package miqp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func solveOK(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestPureLPPassThrough(t *testing.T) {
	// No integer variables → equals the LP optimum.
	p := &Problem{
		C:   []float64{-1, -1},
		Aub: [][]float64{{1, 2}, {3, 1}},
		Bub: []float64{4, 6},
		Ub:  []float64{10, 10},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-14.0/5)) > 1e-7 {
		t.Fatalf("got %v obj %v", res.Status, res.Obj)
	}
}

func TestIntegerKnapsack(t *testing.T) {
	// max 10a + 13b + 7c, 3a + 4b + 2c ≤ 6, binary → best is a + c? check:
	// a+c: w=5, v=17; b+c: w=6, v=20; a+b: w=7 no. → optimum 20.
	p := &Problem{
		C:       []float64{-10, -13, -7},
		Aub:     [][]float64{{3, 4, 2}},
		Bub:     []float64{6},
		Ub:      []float64{1, 1, 1},
		Integer: []bool{true, true, true},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-20)) > 1e-7 {
		t.Fatalf("got %v obj %v x %v", res.Status, res.Obj, res.X)
	}
	if math.Round(res.X[0]) != 0 || math.Round(res.X[1]) != 1 || math.Round(res.X[2]) != 1 {
		t.Fatalf("x = %v, want (0,1,1)", res.X)
	}
}

func TestGeneralIntegerVariable(t *testing.T) {
	// min -x with x ≤ 7.3 integer → x = 7.
	p := &Problem{
		C:       []float64{-1},
		Ub:      []float64{7.3},
		Integer: []bool{true},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal || res.X[0] != 7 {
		t.Fatalf("got %v x %v", res.Status, res.X)
	}
}

func TestIntegralityGapInstance(t *testing.T) {
	// LP relax optimum is fractional; IP optimum differs.
	// max x + y s.t. 2x + 2y ≤ 3, binary → LP gives 1.5, IP gives 1.
	p := &Problem{
		C:       []float64{-1, -1},
		Aub:     [][]float64{{2, 2}},
		Bub:     []float64{3},
		Ub:      []float64{1, 1},
		Integer: []bool{true, true},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-1)) > 1e-7 {
		t.Fatalf("got %v obj %v", res.Status, res.Obj)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 ≤ x ≤ 0.6 integer → infeasible.
	p := &Problem{
		C:       []float64{1},
		Lb:      []float64{0.4},
		Ub:      []float64{0.6},
		Integer: []bool{true},
	}
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleConstraints(t *testing.T) {
	p := &Problem{
		C:       []float64{1},
		Aeq:     [][]float64{{1}},
		Beq:     []float64{0.5},
		Ub:      []float64{1},
		Integer: []bool{true},
	}
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedRoot(t *testing.T) {
	p := &Problem{C: []float64{-1}} // x ≥ 0 continuous, min -x
	res := solveOK(t, p)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestIntegerUnboundedRejected(t *testing.T) {
	p := &Problem{C: []float64{-1}, Integer: []bool{true}}
	if _, err := Solve(p); err == nil {
		t.Fatal("integer variable without finite bounds must error")
	}
}

func TestValidation(t *testing.T) {
	cases := []*Problem{
		{C: nil},
		{C: []float64{1}, Integer: []bool{true, false}},
		{C: []float64{1}, Lb: []float64{1, 2}},
		{C: []float64{1}, Ub: []float64{}},
		{C: []float64{1}, Lb: []float64{2}, Ub: []float64{1}},
		{C: []float64{1, 1}, Q: mat.Identity(3)},
	}
	for i, p := range cases {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestQuadraticIntegerObjective(t *testing.T) {
	// min (x−2.6)² over integers in [0,10] → x = 3.
	q := mat.New(1, 1)
	q.Set(0, 0, 2)
	p := &Problem{
		Q:       q,
		C:       []float64{-5.2},
		Ub:      []float64{10},
		Integer: []bool{true},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal || res.X[0] != 3 {
		t.Fatalf("got %v x=%v", res.Status, res.X)
	}
}

func TestQuadraticMixedInteger(t *testing.T) {
	// min (x−1.5)² + (y−2.5)², x integer in [0,5], y continuous in [0,5].
	// Optimum: x ∈ {1,2} (either gives 0.25), y = 2.5.
	q := mat.New(2, 2)
	q.Set(0, 0, 2)
	q.Set(1, 1, 2)
	p := &Problem{
		Q:       q,
		C:       []float64{-3, -5},
		Ub:      []float64{5, 5},
		Integer: []bool{true, false},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	objWant := 0.25 + 0 - (1.5*1.5 + 2.5*2.5) // complete the square offset
	if math.Abs(res.Obj-objWant) > 1e-5 {
		t.Fatalf("obj = %v, want %v (x=%v)", res.Obj, objWant, res.X)
	}
	x0 := math.Round(res.X[0])
	if x0 != 1 && x0 != 2 {
		t.Fatalf("x0 = %v, want 1 or 2", res.X[0])
	}
	if math.Abs(res.X[1]-2.5) > 1e-5 {
		t.Fatalf("y = %v, want 2.5", res.X[1])
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 14
	c := make([]float64, n)
	row := make([]float64, n)
	ub := make([]float64, n)
	integer := make([]bool, n)
	for j := 0; j < n; j++ {
		c[j] = -(1 + rng.Float64())
		row[j] = 1 + rng.Float64()
		ub[j] = 1
		integer[j] = true
	}
	p := &Problem{C: c, Aub: [][]float64{row}, Bub: []float64{float64(n) / 3}, Ub: ub, Integer: integer}
	res, err := SolveOpts(p, Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNodeLimit {
		t.Fatalf("status = %v, want node-limit", res.Status)
	}
}

// bruteKnapsack enumerates all binary assignments.
func bruteKnapsack(value, weight []float64, cap float64) float64 {
	n := len(value)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				v += value[j]
				w += weight[j]
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

func TestRandomKnapsacksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		value := make([]float64, n)
		weight := make([]float64, n)
		c := make([]float64, n)
		ub := make([]float64, n)
		integer := make([]bool, n)
		for j := 0; j < n; j++ {
			value[j] = 1 + rng.Float64()*9
			weight[j] = 1 + rng.Float64()*9
			c[j] = -value[j]
			ub[j] = 1
			integer[j] = true
		}
		cap := rng.Float64() * 25
		p := &Problem{C: c, Aub: [][]float64{weight}, Bub: []float64{cap}, Ub: ub, Integer: integer}
		res := solveOK(t, p)
		want := -bruteKnapsack(value, weight, cap)
		if res.Status != StatusOptimal || math.Abs(res.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: obj %v want %v status %v", trial, res.Obj, want, res.Status)
		}
	}
}

// Property: returned incumbents are integer feasible and respect constraints.
func TestQuickIncumbentFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		c := make([]float64, n)
		ub := make([]float64, n)
		integer := make([]bool, n)
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = rng.NormFloat64()
			ub[j] = float64(1 + rng.Intn(4))
			integer[j] = rng.Intn(2) == 0
			row[j] = rng.Float64()
		}
		p := &Problem{C: c, Aub: [][]float64{row}, Bub: []float64{rng.Float64() * 10}, Ub: ub, Integer: integer}
		res, err := Solve(p)
		if err != nil {
			return false
		}
		if res.Status != StatusOptimal {
			return false // x=0 is always feasible here
		}
		var s float64
		for j := 0; j < n; j++ {
			x := res.X[j]
			if x < -1e-6 || x > ub[j]+1e-6 {
				return false
			}
			if integer[j] && math.Abs(x-math.Round(x)) > 1e-6 {
				return false
			}
			s += row[j] * x
		}
		return s <= p.Bub[0]+1e-5 && res.Obj <= 1e-9 // 0 is feasible → optimum ≤ 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusInfeasible, StatusNodeLimit, StatusUnbounded, Status(7)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	x := b.AddBinary("x")
	y := b.AddVar("y", 0, 10, true)
	if b.NumVars() != 2 || b.Name(x) != "x" || b.Name(y) != "y" {
		t.Fatalf("builder bookkeeping broken")
	}
	b.SetObj(x, -5)
	b.SetObj(y, -1)
	b.AddLe([]int{x, y}, []float64{3, 1}, 7)
	p := b.Build()
	res := solveOK(t, p)
	// max 5x + y s.t. 3x + y ≤ 7 → x=1, y=4 → obj −9.
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-9)) > 1e-7 {
		t.Fatalf("obj = %v status %v x %v", res.Obj, res.Status, res.X)
	}
}

func TestBuilderGeConstraint(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x", 0, 10, false)
	b.SetObj(x, 1)
	b.AddGe([]int{x}, []float64{1}, 4)
	res := solveOK(t, b.Build())
	if res.Status != StatusOptimal || math.Abs(res.X[0]-4) > 1e-7 {
		t.Fatalf("x = %v, want 4", res.X)
	}
}

func TestBuilderEquality(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x", 0, 10, true)
	y := b.AddVar("y", 0, 10, true)
	b.SetObj(x, 1)
	b.SetObj(y, 3)
	b.AddEq([]int{x, y}, []float64{1, 1}, 6)
	res := solveOK(t, b.Build())
	if res.Status != StatusOptimal || math.Abs(res.Obj-6) > 1e-7 {
		t.Fatalf("obj = %v, want 6 (x=%v)", res.Obj, res.X)
	}
}

func TestBuilderQuadratic(t *testing.T) {
	// min x² − 4x over [0, 10] → x = 2, obj −4.
	b := NewBuilder()
	x := b.AddVar("x", 0, 10, false)
	b.SetQuad(x, x, 1)
	b.SetObj(x, -4)
	res := solveOK(t, b.Build())
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-4)) > 1e-5 {
		t.Fatalf("obj = %v, want -4", res.Obj)
	}
}

func TestBuilderSparsePanic(t *testing.T) {
	b := NewBuilder()
	b.AddVar("x", 0, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged cols/coefs")
		}
	}()
	b.AddLe([]int{0}, []float64{1, 2}, 1)
}

// TestLinearizeProductExactness checks z = x·y on every binary/integer combo.
func TestLinearizeProductExactness(t *testing.T) {
	for _, yMax := range []float64{1, 4, 16} {
		b := NewBuilder()
		x := b.AddBinary("x")
		y := b.AddVar("y", 0, yMax, true)
		z := b.LinearizeProduct("z", x, y, yMax)
		// Maximize z subject to forcing x and y to given values.
		b.SetObj(z, -1)
		xv := b.AddVar("xpin", 0, 1, false) // dummy to keep builder exercised
		_ = xv
		for xVal := 0.0; xVal <= 1; xVal++ {
			for yVal := 0.0; yVal <= yMax; yVal += math.Max(1, yMax/4) {
				bb := NewBuilder()
				x2 := bb.AddBinary("x")
				y2 := bb.AddVar("y", 0, yMax, true)
				z2 := bb.LinearizeProduct("z", x2, y2, yMax)
				bb.SetObj(z2, -1)
				bb.AddEq([]int{x2}, []float64{1}, xVal)
				bb.AddEq([]int{y2}, []float64{1}, yVal)
				res := solveOK(t, bb.Build())
				if res.Status != StatusOptimal {
					t.Fatalf("x=%v y=%v: status %v", xVal, yVal, res.Status)
				}
				want := xVal * yVal
				if math.Abs(res.X[z2]-want) > 1e-6 {
					t.Fatalf("x=%v y=%v: z=%v want %v", xVal, yVal, res.X[z2], want)
				}
				_ = x
				_ = y
				_ = z
			}
		}
	}
}

func BenchmarkKnapsack12(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	n := 12
	c := make([]float64, n)
	row := make([]float64, n)
	ub := make([]float64, n)
	integer := make([]bool, n)
	for j := 0; j < n; j++ {
		c[j] = -(1 + rng.Float64()*9)
		row[j] = 1 + rng.Float64()*9
		ub[j] = 1
		integer[j] = true
	}
	p := &Problem{C: c, Aub: [][]float64{row}, Bub: []float64{20}, Ub: ub, Integer: integer}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
