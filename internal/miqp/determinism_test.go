package miqp

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomMILP draws a seeded instance with mixed integer/continuous variables.
// Every row has nonnegative coefficients and a nonnegative right-hand side,
// so x = 0 is always feasible and no draw is degenerate-infeasible.
func randomMILP(rng *rand.Rand) *Problem {
	n := 5 + rng.Intn(7)
	m := 2 + rng.Intn(4)
	p := &Problem{
		C:       make([]float64, n),
		Ub:      make([]float64, n),
		Integer: make([]bool, n),
	}
	for j := 0; j < n; j++ {
		p.C[j] = -10 + 20*rng.Float64()
		p.Ub[j] = float64(1 + rng.Intn(4))
		p.Integer[j] = rng.Intn(3) > 0
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		var sum float64
		for j := range row {
			row[j] = 5 * rng.Float64()
			sum += row[j]
		}
		p.Aub = append(p.Aub, row)
		p.Bub = append(p.Bub, 0.4*sum*(0.5+rng.Float64()))
	}
	return p
}

// TestSolveOptsWorkerCountInvariant is the PR's headline determinism claim
// for the solver: the batch-synchronous search must return a bit-identical
// Result — status, solution vector, objective, node count, and gap — for
// every worker count, because Workers only changes which goroutine solves a
// relaxation, never which nodes are popped or in what order they merge.
func TestSolveOptsWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		p := randomMILP(rng)
		serial, err := SolveOpts(p, Options{Workers: 1})
		if err != nil {
			t.Fatalf("instance %d serial: %v", i, err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := SolveOpts(p, Options{Workers: workers})
			if err != nil {
				t.Fatalf("instance %d workers=%d: %v", i, workers, err)
			}
			if !reflect.DeepEqual(serial, got) {
				t.Fatalf("instance %d: workers=%d diverged from serial:\nserial: %+v\npar:    %+v",
					i, workers, serial, got)
			}
		}
	}
}

// TestSolveOptsWorkerCountInvariantWithIncumbent repeats the invariance check
// with a seeded incumbent and a tight node limit — the two options that
// interact with the deterministic tie-break (the seed carries node id 0 and
// must win objective ties against any discovered solution).
func TestSolveOptsWorkerCountInvariantWithIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 15; i++ {
		p := randomMILP(rng)
		inc := make([]float64, len(p.C)) // x = 0 is feasible by construction
		opt := Options{Incumbent: inc, MaxNodes: 12}
		serial, err := SolveOpts(p, Options{Workers: 1, Incumbent: opt.Incumbent, MaxNodes: opt.MaxNodes})
		if err != nil {
			t.Fatalf("instance %d serial: %v", i, err)
		}
		got, err := SolveOpts(p, Options{Workers: 8, Incumbent: opt.Incumbent, MaxNodes: opt.MaxNodes})
		if err != nil {
			t.Fatalf("instance %d workers=8: %v", i, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("instance %d: incumbent run diverged:\nserial: %+v\npar:    %+v", i, serial, got)
		}
	}
}
