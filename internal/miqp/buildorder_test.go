package miqp

import (
	"fmt"
	"reflect"
	"testing"
)

// quadTerms is a fixed set of distinct quadratic terms; every permutation of
// their insertion order must materialize the identical dense Q.
var quadTerms = []struct {
	i, j int
	coef float64
}{
	{0, 0, 1.3}, {1, 1, 2.1}, {2, 2, 0.7}, {3, 3, 1.9},
	{0, 1, 0.4}, {0, 2, -0.3}, {1, 3, 0.25}, {2, 3, -0.15}, {3, 0, 0.05},
}

// quadBuilder constructs the regression MIQP builder, inserting quadratic
// terms in the given order of quadTerms indices.
func quadBuilder(order []int) *Builder {
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddBinary(fmt.Sprintf("x%d", i))
		b.SetObj(i, 0.5*float64(i)-1)
	}
	for _, k := range order {
		term := quadTerms[k]
		b.SetQuad(term.i, term.j, term.coef)
	}
	b.AddEq([]int{0, 1, 2, 3}, []float64{1, 1, 1, 1}, 2)
	return b
}

// TestBuildQuadOrderIndependent is the regression test for the map-iteration
// hazard birplint's maporder analyzer caught in Builder.Build: b.q is a map,
// so materializing Q by ranging over it directly would depend on Go's
// randomized map order. Build must instead iterate sorted keys, making the
// dense Problem bit-identical for every insertion order.
func TestBuildQuadOrderIndependent(t *testing.T) {
	forward := make([]int, len(quadTerms))
	reversed := make([]int, len(quadTerms))
	for i := range quadTerms {
		forward[i] = i
		reversed[i] = len(quadTerms) - 1 - i
	}
	interleaved := []int{4, 0, 8, 2, 6, 1, 5, 3, 7}

	ref := quadBuilder(forward).Build()
	for _, order := range [][]int{reversed, interleaved} {
		p := quadBuilder(order).Build()
		if !reflect.DeepEqual(ref, p) {
			t.Fatalf("Build not insertion-order independent:\norder %v: %+v\nforward: %+v", order, p, ref)
		}
	}
}

// TestBuildRepeatable runs the affected path twice on one builder and diffs
// the outputs: two Build calls must produce deeply equal Problems.
func TestBuildRepeatable(t *testing.T) {
	order := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	b := quadBuilder(order)
	first := b.Build()
	second := b.Build()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("Build not repeatable:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestSolveQuadRepeatable solves the regression MIQP twice (serial and with a
// worker pool) and diffs the full results: status, solution vector, objective,
// and node count must be bit-identical run to run.
func TestSolveQuadRepeatable(t *testing.T) {
	order := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	for _, workers := range []int{1, 4} {
		first, err := SolveOpts(quadBuilder(order).Build(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d first solve: %v", workers, err)
		}
		second, err := SolveOpts(quadBuilder(order).Build(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d second solve: %v", workers, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("workers=%d solve not repeatable:\nfirst:  %+v\nsecond: %+v", workers, first, second)
		}
	}
}
