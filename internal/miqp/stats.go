package miqp

import "fmt"

// Stats is the solver observability layer: per-solve counters that make the
// warm-start and presolve work attributable ("how many relaxations were
// avoided, how many warm starts stuck") and regressions visible without a
// profiler. Aggregation happens in the deterministic sequential merge, so the
// counters are bit-identical for every worker count, like the solution.
type Stats struct {
	// Nodes is the number of branch & bound nodes expanded (same quantity as
	// Result.Nodes, duplicated here so a Stats aggregate is self-contained).
	Nodes int `json:"nodes"`
	// Relaxations is the number of continuous relaxations solved.
	Relaxations int `json:"relaxations"`
	// WarmAttempts counts relaxations entered with a parent basis;
	// WarmHits those where the re-entry certified optimality, and
	// WarmFallbacks those that abandoned the basis and re-solved cold.
	WarmAttempts  int `json:"warm_attempts"`
	WarmHits      int `json:"warm_hits"`
	WarmFallbacks int `json:"warm_fallbacks"`
	// Pivots is the total simplex pivot work across all relaxations (crash +
	// repair + main-loop iterations); the quantity warm starting exists to cut.
	Pivots int `json:"pivots"`
	// Revised-engine observability. DualReentries counts warm re-entries that
	// resolved through the dual simplex under the bounds-only-change
	// guarantee (including certified-infeasible children); DualPivots their
	// dual pivot work (a subset of Pivots); Refactorizations the basis LU
	// rebuilds (the deterministic eta-file trigger plus one per factorized
	// solve); EtaLength the total eta-file updates appended. All zero under
	// Options.DenseEngine.
	DualReentries    int `json:"dual_reentries"`
	DualPivots       int `json:"dual_pivots"`
	Refactorizations int `json:"refactorizations"`
	EtaLength        int `json:"eta_length"`
	// FactorReuses counts warm re-entries that loaded the parent basis's
	// captured LU factorization instead of refactorizing (the PR10 handoff;
	// bit-identical numerics, so only work accounting — zero under
	// Options.NoFactorReuse or DenseEngine).
	FactorReuses int `json:"factor_reuses"`
	// PresolveFixedVars / PresolveTightenedBounds / PresolveRemovedRows count
	// the pre-root reductions; RootCutBounds counts reduced-cost bound
	// tightenings applied at the root once an incumbent exists.
	PresolveFixedVars       int `json:"presolve_fixed_vars"`
	PresolveTightenedBounds int `json:"presolve_tightened_bounds"`
	PresolveRemovedRows     int `json:"presolve_removed_rows"`
	RootCutBounds           int `json:"root_cut_bounds"`
	// Cross-slot reuse provenance (maintained by the scheduler's temporal
	// layer, not by SolveOpts itself). IncumbentSeeded counts solves entered
	// with the previous slot's repaired solution as the incumbent;
	// IncumbentRepaired those where the repair pass had to modify it to regain
	// feasibility; IncumbentRejected those where the seed failed validation
	// and the solve fell back to the greedy incumbent.
	IncumbentSeeded   int `json:"incumbent_seeded"`
	IncumbentRepaired int `json:"incumbent_repaired"`
	IncumbentRejected int `json:"incumbent_rejected"`
	// MemoHits counts per-edge plans served from the fingerprint cache without
	// invoking the solver; DeltaSkippedEdges counts edges skipped because
	// their problem fingerprint was unchanged from the last solved slot.
	MemoHits          int `json:"memo_hits"`
	DeltaSkippedEdges int `json:"delta_skipped_edges"`
}

// Add accumulates o into s (used by callers that aggregate across many
// SolveOpts calls, e.g. the per-slot scheduler).
func (s *Stats) Add(o Stats) {
	s.Nodes += o.Nodes
	s.Relaxations += o.Relaxations
	s.WarmAttempts += o.WarmAttempts
	s.WarmHits += o.WarmHits
	s.WarmFallbacks += o.WarmFallbacks
	s.Pivots += o.Pivots
	s.DualReentries += o.DualReentries
	s.DualPivots += o.DualPivots
	s.Refactorizations += o.Refactorizations
	s.EtaLength += o.EtaLength
	s.FactorReuses += o.FactorReuses
	s.PresolveFixedVars += o.PresolveFixedVars
	s.PresolveTightenedBounds += o.PresolveTightenedBounds
	s.PresolveRemovedRows += o.PresolveRemovedRows
	s.RootCutBounds += o.RootCutBounds
	s.IncumbentSeeded += o.IncumbentSeeded
	s.IncumbentRepaired += o.IncumbentRepaired
	s.IncumbentRejected += o.IncumbentRejected
	s.MemoHits += o.MemoHits
	s.DeltaSkippedEdges += o.DeltaSkippedEdges
}

// WarmHitRate is the fraction of warm attempts that certified optimality
// without falling back (0 when no attempts were made).
func (s Stats) WarmHitRate() float64 {
	if s.WarmAttempts == 0 {
		return 0
	}
	return float64(s.WarmHits) / float64(s.WarmAttempts)
}

// PivotsPerRelaxation is the average simplex pivot work per relaxation solve
// (0 when no relaxations were solved).
func (s Stats) PivotsPerRelaxation() float64 {
	if s.Relaxations == 0 {
		return 0
	}
	return float64(s.Pivots) / float64(s.Relaxations)
}

// String renders the compact one-line form used by birpbench -solverstats.
func (s Stats) String() string {
	return fmt.Sprintf(
		"nodes=%d relax=%d warm=%d/%d (%.1f%% hit, %d fallback) pivots=%d (%.1f/relax) dual(reentry=%d pivots=%d refactor=%d factor-reuse=%d eta=%d) presolve(fix=%d tighten=%d drop-rows=%d root-cuts=%d) reuse(seed=%d rep=%d rej=%d memo=%d delta=%d)",
		s.Nodes, s.Relaxations, s.WarmHits, s.WarmAttempts, 100*s.WarmHitRate(),
		s.WarmFallbacks, s.Pivots, s.PivotsPerRelaxation(),
		s.DualReentries, s.DualPivots, s.Refactorizations, s.FactorReuses, s.EtaLength,
		s.PresolveFixedVars, s.PresolveTightenedBounds, s.PresolveRemovedRows, s.RootCutBounds,
		s.IncumbentSeeded, s.IncumbentRepaired, s.IncumbentRejected, s.MemoHits, s.DeltaSkippedEdges)
}
