package miqp

import (
	"math"

	"repro/internal/mat"
)

// Pre-root presolve: single-row bound implications.
//
// For every constraint row Σ a_j·x_j ≤ b the minimum activity of the other
// variables implies a bound on each variable in the row:
//
//	a_j > 0:  x_j ≤ (b − minAct_{≠j}) / a_j
//	a_j < 0:  x_j ≥ (b − minAct_{≠j}) / a_j
//
// Equality rows act as two opposing inequalities. Implied bounds never cut
// the continuous feasible set — they are consequences of the rows — but
// rounding them to integers (floor/ceil with a 1e-9 fuzz) does cut fractional
// vertices the relaxation could otherwise visit, which is the point: tighter
// integer boxes mean smaller trees and smaller tableaus. Only integer
// variables are tightened, so continuous bounds (and with them the relaxation
// geometry of continuous variables) are untouched.
//
// Rows whose maximum activity cannot exceed b are redundant and dropped from
// the copy of the problem the node loop solves; rows whose minimum activity
// already exceeds b prove infeasibility.

type presolveInfo struct {
	infeasible bool
	fixed      int         // integer variables whose bounds collapsed to a point
	tightened  int         // individual bound improvements applied
	removed    int         // redundant ≤ rows dropped
	aub        [][]float64 // reduced row set; nil when no rows were removed
	bub        []float64
}

// activityBounds returns the min/max activity of row·x over the box [lb, ub],
// treating ±Inf bounds correctly (an infinite contribution makes the
// corresponding activity infinite).
func activityBounds(row, lb, ub []float64) (minAct, maxAct float64) {
	for j, a := range row {
		switch {
		case a > 0:
			minAct += a * lb[j]
			maxAct += a * ub[j]
		case a < 0:
			minAct += a * ub[j]
			maxAct += a * lb[j]
		}
	}
	return minAct, maxAct
}

// tightenFromRow applies the single-row implications of Σ a_j·x_j ≤ b to the
// integer variables in lb/ub. Returns (bound improvements, infeasible).
func tightenFromRow(p *Problem, row []float64, b float64, lb, ub []float64) (int, bool) {
	const feasTol = 1e-7
	minAct, _ := activityBounds(row, lb, ub)
	if minAct > b+feasTol*(1+math.Abs(b)) {
		return 0, true
	}
	if math.IsInf(minAct, -1) {
		// An unbounded contribution makes every residual infinite; no single
		// variable can be tightened from this row. (The one-infinite-term
		// refinement is not needed for BIRP's all-finite boxes.)
		return 0, false
	}
	changed := 0
	for j, a := range row {
		if mat.Zero(a) || p.Integer == nil || !p.Integer[j] {
			continue
		}
		// Minimum activity of the other variables = minAct minus j's own
		// minimal contribution.
		ownMin := a * lb[j]
		if a < 0 {
			ownMin = a * ub[j]
		}
		residual := b - (minAct - ownMin)
		if a > 0 {
			cand := math.Floor(residual/a + 1e-9)
			if cand < ub[j]-0.5 {
				ub[j] = cand
				changed++
				if lb[j] > ub[j] {
					return changed, true
				}
			}
		} else {
			cand := math.Ceil(residual/a - 1e-9)
			if cand > lb[j]+0.5 {
				lb[j] = cand
				changed++
				if lb[j] > ub[j] {
					return changed, true
				}
			}
		}
	}
	return changed, false
}

// presolve runs the implication passes to a fixpoint (capped), mutating
// lb/ub in place and returning the reduced row set plus reduction counters.
// Work arrays and the reduced row set come from ts (tree-scoped storage: the
// returned aub/bub are valid until the next tree reuses ts).
func presolve(p *Problem, lb, ub []float64, ts *treeState) presolveInfo {
	const maxPasses = 10
	var info presolveInfo
	fixedBefore := countFixed(p, lb, ub)
	if cap(ts.psRemoved) < len(p.Aub) {
		ts.psRemoved = make([]bool, len(p.Aub))
	}
	removed := ts.psRemoved[:len(p.Aub)]
	for i := range removed {
		removed[i] = false
	}
	negRow := growFloats(ts.psNegRow, len(p.C)) // scratch for equality rows as ≥
	ts.psNegRow = negRow
	for pass := 0; pass < maxPasses; pass++ {
		changed := 0
		for i, row := range p.Aub {
			if removed[i] {
				continue
			}
			minAct, maxAct := activityBounds(row, lb, ub)
			b := p.Bub[i]
			if minAct > b+1e-7*(1+math.Abs(b)) {
				info.infeasible = true
				return info
			}
			if !math.IsInf(maxAct, 1) && maxAct <= b+1e-9*(1+math.Abs(b)) {
				removed[i] = true
				info.removed++
				changed++
				continue
			}
			n, bad := tightenFromRow(p, row, b, lb, ub)
			changed += n
			info.tightened += n
			if bad {
				info.infeasible = true
				return info
			}
		}
		for i, row := range p.Aeq {
			// row·x = b  ⇒  row·x ≤ b  and  −row·x ≤ −b.
			n1, bad1 := tightenFromRow(p, row, p.Beq[i], lb, ub)
			changed += n1
			info.tightened += n1
			if bad1 {
				info.infeasible = true
				return info
			}
			for j, a := range row {
				negRow[j] = -a
			}
			n2, bad2 := tightenFromRow(p, negRow, -p.Beq[i], lb, ub)
			changed += n2
			info.tightened += n2
			if bad2 {
				info.infeasible = true
				return info
			}
		}
		if changed == 0 {
			break
		}
	}
	info.fixed = countFixed(p, lb, ub) - fixedBefore
	if info.removed > 0 {
		ts.psAub = ts.psAub[:0]
		ts.psBub = ts.psBub[:0]
		for i, row := range p.Aub {
			if !removed[i] {
				ts.psAub = append(ts.psAub, row)
				ts.psBub = append(ts.psBub, p.Bub[i])
			}
		}
		info.aub = ts.psAub
		info.bub = ts.psBub
	}
	return info
}

func countFixed(p *Problem, lb, ub []float64) int {
	c := 0
	for j := range lb {
		// Presolve fixes variables by setting lb = ub to the same value, so
		// the equality is exact by construction.
		//birplint:ignore floateq
		if p.Integer != nil && p.Integer[j] && lb[j] == ub[j] {
			c++
		}
	}
	return c
}
