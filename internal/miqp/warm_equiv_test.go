package miqp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// coldOptions disables both acceleration layers, yielding the pre-warm-start
// engine: every relaxation solved from scratch on the original row set.
func coldOptions() Options {
	return Options{DisableWarmStart: true, DisablePresolve: true}
}

// TestWarmVsColdEquivalence is the PR's correctness claim for the accelerated
// engine: warm-started relaxations and presolve reductions are pure speedups —
// on every instance the accelerated solve must reach the same optimal
// objective (within 1e-9) and the same integer assignment as the cold engine.
func TestWarmVsColdEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	warmUsed := 0
	for i := 0; i < 60; i++ {
		p := randomMILP(rng)
		warm, err := SolveOpts(p, Options{})
		if err != nil {
			t.Fatalf("instance %d warm: %v", i, err)
		}
		cold, err := SolveOpts(p, coldOptions())
		if err != nil {
			t.Fatalf("instance %d cold: %v", i, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("instance %d: status warm=%v cold=%v", i, warm.Status, cold.Status)
		}
		if warm.Status != StatusOptimal {
			continue
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-9*(1+math.Abs(cold.Obj)) {
			t.Fatalf("instance %d: objective warm=%.12g cold=%.12g", i, warm.Obj, cold.Obj)
		}
		for j := range p.C {
			if p.Integer != nil && p.Integer[j] &&
				math.Round(warm.X[j]) != math.Round(cold.X[j]) {
				t.Fatalf("instance %d: integer var %d warm=%g cold=%g",
					i, j, warm.X[j], cold.X[j])
			}
		}
		warmUsed += warm.Stats.WarmHits
		if cold.Stats.WarmAttempts != 0 || cold.Stats.PresolveTightenedBounds != 0 {
			t.Fatalf("instance %d: cold engine reported acceleration counters %+v", i, cold.Stats)
		}
	}
	if warmUsed == 0 {
		t.Fatal("no instance exercised the warm-start path; the test is vacuous")
	}
}

// TestSolveOptsWorkerCountInvariantEngineConfigs repeats the worker-count
// invariance check for every engine configuration: both layers on (default),
// warm start off, presolve off, and fully cold. Each configuration must be
// deterministic in itself — Workers never changes the Result, including the
// aggregated Stats counters.
func TestSolveOptsWorkerCountInvariantEngineConfigs(t *testing.T) {
	configs := []struct {
		name string
		opt  Options
	}{
		{"default", Options{}},
		{"warm-off", Options{DisableWarmStart: true}},
		{"presolve-off", Options{DisablePresolve: true}},
		{"cold", coldOptions()},
		{"dense", Options{DenseEngine: true}},
		{"dense-cold", Options{DenseEngine: true, DisableWarmStart: true, DisablePresolve: true}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			for i := 0; i < 12; i++ {
				p := randomMILP(rng)
				base := cfg.opt
				base.Workers = 1
				serial, err := SolveOpts(p, base)
				if err != nil {
					t.Fatalf("instance %d serial: %v", i, err)
				}
				par := cfg.opt
				par.Workers = 8
				got, err := SolveOpts(p, par)
				if err != nil {
					t.Fatalf("instance %d workers=8: %v", i, err)
				}
				if !reflect.DeepEqual(serial, got) {
					t.Fatalf("instance %d: workers=8 diverged from serial:\nserial: %+v\npar:    %+v",
						i, serial, got)
				}
			}
		})
	}
}

// TestDenseVsRevisedEngineEquivalence is the A/B oracle contract for the
// sparse revised simplex: on every instance the default engine and the
// DenseEngine solve must reach the same status, the same certified objective,
// and the same integer assignment. The engines pivot differently, so
// continuous variables may land on different optimal vertices — the integer
// part and the objective are what branch & bound certifies. Dense runs must
// also report no revised-engine activity.
func TestDenseVsRevisedEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dualUsed := 0
	for i := 0; i < 60; i++ {
		p := randomMILP(rng)
		rev, err := SolveOpts(p, Options{})
		if err != nil {
			t.Fatalf("instance %d revised: %v", i, err)
		}
		den, err := SolveOpts(p, Options{DenseEngine: true})
		if err != nil {
			t.Fatalf("instance %d dense: %v", i, err)
		}
		if rev.Status != den.Status {
			t.Fatalf("instance %d: status revised=%v dense=%v", i, rev.Status, den.Status)
		}
		if den.Stats.DualReentries != 0 || den.Stats.Refactorizations != 0 || den.Stats.EtaLength != 0 {
			t.Fatalf("instance %d: dense engine reported revised counters %+v", i, den.Stats)
		}
		dualUsed += rev.Stats.DualReentries
		if rev.Status != StatusOptimal {
			continue
		}
		if math.Abs(rev.Obj-den.Obj) > 1e-9*(1+math.Abs(den.Obj)) {
			t.Fatalf("instance %d: objective revised=%.12g dense=%.12g", i, rev.Obj, den.Obj)
		}
		for j := range p.C {
			if p.Integer != nil && p.Integer[j] &&
				math.Round(rev.X[j]) != math.Round(den.X[j]) {
				t.Fatalf("instance %d: integer var %d revised=%g dense=%g",
					i, j, rev.X[j], den.X[j])
			}
		}
	}
	if dualUsed == 0 {
		t.Fatal("no instance exercised dual re-entry; the revised side of the differential is vacuous")
	}
}
