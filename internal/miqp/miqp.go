// Package miqp solves small mixed-integer linear/quadratic programs with
// best-first branch and bound:
//
//	minimize    ½·xᵀQx + cᵀx                    (Q symmetric PSD or nil)
//	subject to  Aeq·x  = beq
//	            Aub·x ≤ bub
//	            lb ≤ x ≤ ub                      (finite for integer variables)
//	            x[j] ∈ ℤ   for j with Integer[j]
//
// Continuous relaxations are solved with package lp (when Q is nil) or
// package qp (otherwise); branching splits on the most fractional integer
// variable. This is the drop-in substitute for the Gurobi MIQP calls in the
// BIRP paper: the per-slot instances are small (tens of binaries), so exact
// enumeration with bound pruning is fast and — unlike a heuristic — provably
// returns the optimum the paper's pipeline assumes.
package miqp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/qp"
)

// Status describes the solve outcome.
type Status int

const (
	// StatusOptimal means the incumbent is optimal within the gap tolerance.
	StatusOptimal Status = iota
	// StatusInfeasible means no integer-feasible point exists.
	StatusInfeasible
	// StatusNodeLimit means the node budget was exhausted; if X is non-nil it
	// is the best incumbent found.
	StatusNodeLimit
	// StatusUnbounded means the root relaxation is unbounded below.
	StatusUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusNodeLimit:
		return "node-limit"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProblem reports malformed input.
var ErrBadProblem = errors.New("miqp: malformed problem")

// validateRows checks the constraint matrices once per solve: row lengths
// match the variable count and no coefficient or rhs is NaN. The node
// relaxations then solve with lp.Options.AssumeValid, which moves this scan
// from once-per-node (hundreds of thousands across a branch & bound run) to
// once-per-problem while keeping the same typed error for malformed input.
func validateRows(p *Problem, n int) error {
	for _, v := range p.C {
		if math.IsNaN(v) {
			return fmt.Errorf("%w: NaN objective coefficient", ErrBadProblem)
		}
	}
	if len(p.Aeq) != len(p.Beq) {
		return fmt.Errorf("%w: %d equality rows but %d rhs entries", ErrBadProblem, len(p.Aeq), len(p.Beq))
	}
	if len(p.Aub) != len(p.Bub) {
		return fmt.Errorf("%w: %d inequality rows but %d rhs entries", ErrBadProblem, len(p.Aub), len(p.Bub))
	}
	scan := func(a [][]float64, b []float64, what string) error {
		for i, row := range a {
			if len(row) != n {
				return fmt.Errorf("%w: %s row %d has %d cols, want %d", ErrBadProblem, what, i, len(row), n)
			}
			for _, v := range row {
				if math.IsNaN(v) {
					return fmt.Errorf("%w: NaN in %s row %d", ErrBadProblem, what, i)
				}
			}
			if math.IsNaN(b[i]) {
				return fmt.Errorf("%w: NaN rhs in %s row %d", ErrBadProblem, what, i)
			}
		}
		return nil
	}
	if err := scan(p.Aeq, p.Beq, "Aeq"); err != nil {
		return err
	}
	return scan(p.Aub, p.Bub, "Aub")
}

// ErrInfeasibleIncumbent reports that Options.Incumbent violates the
// problem's constraints. An infeasible incumbent is worse than none: its
// objective becomes the pruning bound and silently cuts off the true optimum,
// so SolveOpts rejects it with this error instead of searching under it.
var ErrInfeasibleIncumbent = errors.New("miqp: infeasible incumbent")

// incFeasTol is the relative feasibility tolerance of ValidateIncumbent.
// Incumbents are typically assembled with a different floating-point
// summation order than the row evaluation below, so exact equality is not
// achievable; 1e-6 is far looser than that drift and far tighter than any
// violation that could mislead the bound.
const incFeasTol = 1e-6

// ValidateIncumbent checks that x is an integer-feasible point of p: inside
// the variable bounds, integral on the integer variables, and satisfying
// every equality and inequality row within a small relative tolerance. It
// returns nil when feasible and an error wrapping ErrInfeasibleIncumbent
// naming the first violated bound or row otherwise.
func ValidateIncumbent(p *Problem, x []float64) error {
	n := len(p.C)
	if len(x) != n {
		return fmt.Errorf("%w: length %d, want %d", ErrInfeasibleIncumbent, len(x), n)
	}
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite value at variable %d", ErrInfeasibleIncumbent, j)
		}
		lb, ub := 0.0, math.Inf(1)
		if p.Lb != nil {
			lb = p.Lb[j]
		}
		if p.Ub != nil {
			ub = p.Ub[j]
		}
		scale := incFeasTol * (1 + math.Abs(v))
		if v < lb-scale || v > ub+scale {
			return fmt.Errorf("%w: variable %d = %g outside [%g, %g]", ErrInfeasibleIncumbent, j, v, lb, ub)
		}
		if p.Integer != nil && p.Integer[j] && math.Abs(v-math.Round(v)) > 1e-6 {
			return fmt.Errorf("%w: integer variable %d = %g not integral", ErrInfeasibleIncumbent, j, v)
		}
	}
	rowAt := func(row []float64) (lhs, scale float64) {
		scale = 1
		for j, a := range row {
			t := a * x[j]
			lhs += t
			scale += math.Abs(t)
		}
		return lhs, scale
	}
	for i, row := range p.Aeq {
		lhs, scale := rowAt(row)
		if math.Abs(lhs-p.Beq[i]) > incFeasTol*(scale+math.Abs(p.Beq[i])) {
			return fmt.Errorf("%w: equality row %d: lhs %g != rhs %g", ErrInfeasibleIncumbent, i, lhs, p.Beq[i])
		}
	}
	for i, row := range p.Aub {
		lhs, scale := rowAt(row)
		if lhs > p.Bub[i]+incFeasTol*(scale+math.Abs(p.Bub[i])) {
			return fmt.Errorf("%w: inequality row %d: lhs %g > rhs %g", ErrInfeasibleIncumbent, i, lhs, p.Bub[i])
		}
	}
	return nil
}

// Problem is a mixed-integer quadratic program. Nil slices mean "absent".
type Problem struct {
	Q       *mat.Matrix
	C       []float64
	Aeq     [][]float64
	Beq     []float64
	Aub     [][]float64
	Bub     []float64
	Lb      []float64 // nil means all zeros
	Ub      []float64 // nil means all +Inf (illegal for integer variables)
	Integer []bool    // nil means all continuous
}

// Result is the solver outcome.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	Nodes  int     // number of branch-and-bound nodes solved
	Gap    float64 // |best bound − incumbent| at termination (0 when proven optimal)
	// Stats carries the solver observability counters (warm-start hit rate,
	// pivot work, presolve reductions). Deterministic across worker counts.
	Stats Stats
	// RootBasis is the optimal root-relaxation simplex basis, captured when
	// Options.CaptureRootBasis is set and the LP root solved to optimality.
	// Feed it to the next solve's Options.RootBasis for cross-solve warm
	// starts. Nil on the QP path, with warm starts disabled, or when the root
	// relaxation did not reach optimality.
	RootBasis *lp.Basis
}

// Options tunes the search.
type Options struct {
	MaxNodes int     // 0 means 200000
	IntTol   float64 // integrality tolerance; 0 means 1e-6
	GapTol   float64 // absolute optimality gap tolerance; 0 means 1e-7
	// Incumbent, when non-nil, is a known integer-feasible starting point.
	// It seeds the upper bound for pruning and guarantees the solver always
	// returns a solution even when MaxNodes is exhausted. SolveOpts validates
	// it with ValidateIncumbent and rejects an infeasible point with an error
	// wrapping ErrInfeasibleIncumbent — an unchecked bad incumbent would
	// silently prune the true optimum.
	Incumbent []float64
	// RootBasis, when non-nil, seeds the root relaxation's simplex warm start
	// (LP path only). It is intended for carrying the previous slot's optimal
	// root basis across solves of near-identical problems; a basis whose shape
	// does not fit the (post-presolve) root is ignored, and any warm re-entry
	// failure falls back to a cold solve, so a stale basis can cost time but
	// never correctness.
	RootBasis *lp.Basis
	// CaptureRootBasis asks SolveOpts to publish the optimal root-relaxation
	// basis in Result.RootBasis (LP path with warm starts enabled only), for
	// handing back via RootBasis on the next solve.
	CaptureRootBasis bool
	// Pool, when non-nil, supplies the per-worker lp.Scratch arenas instead of
	// the package-level sync.Pool. A caller-owned pool survives GC cycles
	// between slots, keeping the slot loop's allocation profile flat.
	Pool *ScratchPool
	// Workers caps the number of concurrent relaxation solves. Values ≤ 1
	// mean serial. The search is batch-synchronous: each round pops a fixed
	// batch of frontier nodes in a deterministic total order, solves their
	// (pure) relaxations concurrently, and merges the outcomes sequentially
	// in batch order — so the result is bit-identical for every worker
	// count; Workers only changes wall-clock time.
	Workers int
	// DisableWarmStart forces every relaxation to solve from a cold start
	// instead of re-entering from the parent node's basis. Warm starting is on
	// by default for LP relaxations (Q == nil); this switch exists for A/B
	// measurement and debugging.
	DisableWarmStart bool
	// DisablePresolve skips the pre-root bound-implication pass and the
	// root reduced-cost bound tightening.
	DisablePresolve bool
	// DenseEngine forces every LP relaxation onto the legacy dense tableau
	// kernel instead of the default sparse revised simplex. It exists as the
	// A/B oracle for bisecting solver regressions (birpbench -dense),
	// mirroring the cross-slot layer's -noreuse switch.
	DenseEngine bool
	// NoFactorReuse forwards lp.Options.NoFactorReuse: warm re-entries always
	// refactorize instead of loading the parent basis's captured LU. Debug
	// knob for A/B equivalence — solutions and node/pivot counts are identical
	// either way; only Stats.Refactorizations/FactorReuses move.
	NoFactorReuse bool
}

// relaxBatch is the number of frontier nodes expanded per batch-synchronous
// round. It is a fixed constant — deliberately NOT derived from Workers — so
// the search trajectory, and therefore the returned solution, never depends
// on the degree of parallelism.
const relaxBatch = 8

// Solve runs branch and bound with default options.
func Solve(p *Problem) (*Result, error) { return SolveOpts(p, Options{}) }

type node struct {
	lb, ub []float64
	bound  float64 // relaxation objective at the parent (lower bound)
	depth  int
	// id is the creation sequence number. Children are always pushed during
	// the sequential merge phase, so ids are deterministic; they complete the
	// heap order into a total order and break incumbent ties.
	id uint64
	// basis is the parent relaxation's optimal simplex basis (nil at the root
	// or when warm starting is off). A child differs from its parent by one
	// variable bound, so re-entering from this basis usually needs a handful
	// of pivots instead of a full two-phase solve.
	basis *lp.Basis
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }

// Less orders by best bound, breaking ties toward deeper nodes so the search
// plunges to integer-feasible leaves instead of breadth-thrashing. The final
// id tie-break makes the order total, so pops are deterministic even when
// bounds and depths coincide.
func (h nodeHeap) Less(i, j int) bool {
	// Comparators need an exact total order; a tolerance here would make
	// the heap order intransitive.
	//birplint:ignore floateq
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth
	}
	return h[i].id < h[j].id
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SolveOpts runs branch and bound.
func SolveOpts(p *Problem, opt Options) (*Result, error) {
	n := len(p.C)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	if p.Q != nil && (p.Q.Rows != n || p.Q.Cols != n) {
		return nil, fmt.Errorf("%w: Q shape", ErrBadProblem)
	}
	if p.Integer != nil && len(p.Integer) != n {
		return nil, fmt.Errorf("%w: Integer length %d, want %d", ErrBadProblem, len(p.Integer), n)
	}
	if p.Lb != nil && len(p.Lb) != n {
		return nil, fmt.Errorf("%w: Lb length", ErrBadProblem)
	}
	if p.Ub != nil && len(p.Ub) != n {
		return nil, fmt.Errorf("%w: Ub length", ErrBadProblem)
	}
	// Scan the constraint data once up front; every relaxation below runs
	// with lp.Options.AssumeValid, so nothing re-checks per node.
	if err := validateRows(p, n); err != nil {
		return nil, err
	}
	// Per-tree reusable storage: from the caller's pool when supplied (keeps
	// the slot loop's allocation profile flat across GC cycles), else the
	// package pool.
	var ts *treeState
	if opt.Pool != nil {
		ts = opt.Pool.getTree()
		defer opt.Pool.putTree(ts)
	} else {
		ts = treePool.Get().(*treeState)
		defer treePool.Put(ts)
	}
	ts.nodesUsed = 0
	lb := growFloats(ts.lb, n)
	ub := growFloats(ts.ub, n)
	ts.lb, ts.ub = lb, ub
	for j := 0; j < n; j++ {
		lb[j] = 0
		ub[j] = math.Inf(1)
		if p.Lb != nil {
			lb[j] = p.Lb[j]
		}
		if p.Ub != nil {
			ub[j] = p.Ub[j]
		}
		if lb[j] > ub[j] {
			return nil, fmt.Errorf("%w: crossed bounds on variable %d", ErrBadProblem, j)
		}
		if p.Integer != nil && p.Integer[j] {
			if math.IsInf(lb[j], 0) || math.IsInf(ub[j], 0) {
				return nil, fmt.Errorf("%w: integer variable %d must have finite bounds", ErrBadProblem, j)
			}
			lb[j] = math.Ceil(lb[j] - 1e-9)
			ub[j] = math.Floor(ub[j] + 1e-9)
			if lb[j] > ub[j] {
				return &Result{Status: StatusInfeasible}, nil
			}
		}
	}
	intTol := opt.IntTol
	if mat.Zero(intTol) {
		intTol = 1e-6
	}
	gapTol := opt.GapTol
	if mat.Zero(gapTol) {
		gapTol = 1e-7
	}
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}

	res := &Result{Status: StatusInfeasible, Obj: math.Inf(1)}
	var incumbent []float64
	var incumbentID uint64 // id of the node that produced the incumbent (0 = seeded)
	bestBound := math.Inf(-1)
	if opt.Incumbent != nil {
		if len(opt.Incumbent) != n {
			return nil, fmt.Errorf("%w: incumbent length %d, want %d", ErrBadProblem, len(opt.Incumbent), n)
		}
		if err := ValidateIncumbent(p, opt.Incumbent); err != nil {
			return nil, err
		}
		incumbent = clone(opt.Incumbent)
		res.Obj = evalObj(p, incumbent)
		res.Status = StatusOptimal
	}

	// Pre-root presolve: tighten integer boxes from single-row implications
	// and drop redundant rows. The node loop then solves the reduced problem
	// pp; the caller's p is never mutated (and the incumbent — an integer
	// point satisfying all original rows — survives every reduction).
	pp := p
	if !opt.DisablePresolve {
		info := presolve(p, lb, ub, ts)
		res.Stats.PresolveFixedVars = info.fixed
		res.Stats.PresolveTightenedBounds = info.tightened
		res.Stats.PresolveRemovedRows = info.removed
		if info.infeasible {
			if incumbent != nil {
				// The incumbent was validated feasible above; a presolve
				// infeasibility proof then means no strictly better point
				// exists, so the incumbent is the answer (this mirrors the
				// node loop's exhausted-frontier exit).
				res.X = incumbent
				res.Status = StatusOptimal
				return res, nil
			}
			res.Status = StatusInfeasible
			return res, nil
		}
		if info.aub != nil {
			ts.reduced = *p
			ts.reduced.Aub = info.aub
			ts.reduced.Bub = info.bub
			pp = &ts.reduced
		}
	}

	// Warm starting applies to the pure-LP relaxation path only; the QP paths
	// have no simplex basis to reuse.
	warmOK := p.Q == nil && !opt.DisableWarmStart

	// Compile the relaxation LP's standard form once per tree: every node
	// below shares pp's matrices and only tightens bounds, so the coefficient
	// transform is loop-invariant. A compile failure (possible only for inputs
	// validateRows cannot see, e.g. NaN bounds) just leaves the per-node path
	// building its own standard form, exactly as before.
	var form *lp.Form
	if p.Q == nil {
		// Recycling ts.form is safe because every factor snapshot keyed to its
		// compiled matrix died with the tree that captured it (BeginTree below).
		if f, err := lp.NewFormReuse(ts.form, &lp.Problem{
			C: pp.C, Aeq: pp.Aeq, Beq: pp.Beq, Aub: pp.Aub, Bub: pp.Bub, Lb: lb, Ub: ub,
		}); err == nil {
			form = f
			ts.form = f
		}
	}

	root := &ts.root
	root.lb, root.ub = lb, ub
	root.bound = math.Inf(-1)
	root.depth = 0
	root.id = 1
	root.basis = nil
	if warmOK && opt.RootBasis != nil {
		// Cross-solve warm start: re-enter the previous solve's optimal root
		// basis. Presolve may have rewritten the row set and bound tightening
		// may have un-split free columns, so check the basis against the exact
		// LP the root relaxation will build; a misfit is silently dropped (the
		// root then solves cold, exactly as without the option).
		rootLP := &lp.Problem{C: pp.C, Aeq: pp.Aeq, Beq: pp.Beq, Aub: pp.Aub, Bub: pp.Bub, Lb: lb, Ub: ub}
		if opt.RootBasis.Fits(rootLP) {
			root.basis = opt.RootBasis
		}
	}
	ts.heap = append(ts.heap[:0], root)
	h := &ts.heap
	heap.Init(h)
	nextID := uint64(2)
	// Root reduced-cost tightening needs the root solve to report reduced
	// costs; only worthwhile once an upper bound (incumbent) exists.
	rootRC := !opt.DisablePresolve && incumbent != nil && p.Q == nil

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > relaxBatch {
		workers = relaxBatch
	}
	// A pool wider than the schedulable CPUs only adds goroutine/merge
	// overhead (results are pool-width independent, so this is free).
	workers = par.CapWorkers(workers)
	if cap(ts.scratches) < workers {
		ts.scratches = make([]*lp.Scratch, workers)
	}
	scratches := ts.scratches[:workers]
	for w := range scratches {
		if opt.Pool != nil {
			scratches[w] = opt.Pool.Get()
		} else {
			scratches[w] = lpScratchPool.Get().(*lp.Scratch)
		}
		// Recycle the factor-snapshot arena: every basis captured on this
		// scratch by a previous tree is dead (or was CloneForHandoff'd).
		scratches[w].BeginTree()
	}
	defer func() {
		for _, sc := range scratches {
			if opt.Pool != nil {
				opt.Pool.Put(sc)
			} else {
				lpScratchPool.Put(sc)
			}
		}
	}()
	if cap(ts.batch) < relaxBatch {
		ts.batch = make([]*node, 0, relaxBatch)
	}
	batch := ts.batch[:0]
	if cap(ts.relaxes) < relaxBatch {
		ts.relaxes = make([]relaxResult, relaxBatch)
	}
	relaxes := ts.relaxes[:relaxBatch]

	for h.Len() > 0 {
		if res.Nodes >= maxNodes {
			res.Status = StatusNodeLimit
			res.Gap = math.Abs(res.Obj - bestBound)
			if incumbent != nil {
				res.X = incumbent
			}
			return res, nil
		}
		// Assemble this round's batch by popping the frontier in its
		// deterministic total order, honoring the node budget.
		batch = batch[:0]
		limit := relaxBatch
		if b := maxNodes - res.Nodes; limit > b {
			limit = b
		}
		for len(batch) < limit && h.Len() > 0 {
			nd := heap.Pop(h).(*node)
			if nd.bound >= res.Obj-gapTol {
				continue // pruned by bound
			}
			batch = append(batch, nd)
		}
		if len(batch) == 0 {
			break // frontier fully pruned
		}
		res.Nodes += len(batch)
		res.Stats.Nodes += len(batch)
		// Relaxations are pure functions of (problem, node bounds, parent
		// basis): solve the batch concurrently, then merge sequentially so the
		// search state evolves identically for every worker count.
		if err := par.ForEach(workers, len(batch), func(w, i int) error {
			nd := batch[i]
			var warm *lp.Basis
			if warmOK {
				warm = nd.basis
			}
			// Dual re-entry dispatch: a non-root node's warm basis came from
			// its parent in this same tree — identical costs and matrices,
			// bounds only tightened — which is exactly the dual-feasible
			// re-entry state the revised engine's PreferDual contract needs.
			// The root's cross-solve basis (RootBasis) may come from a
			// different slot's problem, so it stays on the primal path.
			preferDual := warm != nil && nd.depth > 0
			var err error
			relaxes[i], err = solveRelaxation(pp, form, nd.lb, nd.ub, scratches[w], warm, warmOK,
				rootRC && nd.depth == 0, opt.DenseEngine, preferDual, opt.NoFactorReuse)
			return err
		}); err != nil {
			return nil, err
		}
		// Aggregate solver counters in batch order (deterministic), including
		// for nodes a same-batch incumbent later prunes — their relaxations
		// were solved regardless.
		for i := range batch {
			r := &relaxes[i]
			res.Stats.Relaxations++
			res.Stats.Pivots += r.pivots
			res.Stats.DualPivots += r.dualPivots
			res.Stats.Refactorizations += r.refactorizations
			res.Stats.EtaLength += r.etaLen
			res.Stats.FactorReuses += r.factorReuses
			if r.dualReentry {
				res.Stats.DualReentries++
			}
			if r.warmAttempted {
				res.Stats.WarmAttempts++
				if r.warmFellBack {
					res.Stats.WarmFallbacks++
				} else {
					res.Stats.WarmHits++
				}
			}
			if opt.CaptureRootBasis && batch[i].depth == 0 && r.status == relaxOptimal {
				// The published basis outlives this tree (it seeds a future
				// solve over a different Form), so it must not retain the
				// tree-local factor snapshot: deep-copy without it.
				res.RootBasis = r.basis.CloneForHandoff()
			}
		}
		for i, nd := range batch {
			relax := relaxes[i]
			if nd.bound >= res.Obj-gapTol {
				continue // pruned by an earlier batch member's incumbent
			}
			switch relax.status {
			case relaxInfeasible:
				continue
			case relaxUnbounded:
				if nd.depth == 0 && incumbent == nil {
					return &Result{Status: StatusUnbounded, Nodes: res.Nodes}, nil
				}
				// A child relaxation cannot be unbounded if the root was bounded
				// (children have tighter bounds); treat defensively as no-prune.
				continue
			case relaxFailed:
				// Numerical failure: branch anyway using the parent bound, unless
				// nothing remains to branch on. Children restart cold (nil
				// basis): the failed solve produced nothing to re-enter from.
				if j := firstBranchable(p, nd.lb, nd.ub); j >= 0 {
					branchAt(h, ts, nd, j, (nd.lb[j]+nd.ub[j])/2, nd.bound, &nextID, nil)
				}
				continue
			}
			if relax.obj >= res.Obj-gapTol {
				continue
			}
			if relax.obj > bestBound {
				// Track the global bound loosely (best-first makes the heap top a
				// valid bound; this is only used for gap reporting).
				bestBound = relax.obj
			}
			if relax.rc != nil && res.Obj < math.Inf(1) {
				// Root reduced-cost tightening: a nonbasic integer variable
				// with reduced cost d moves the root bound L by d per unit, so
				// any solution beating the incumbent U keeps it within
				// (U − L)/|d| of its resting bound. Applied to the root node's
				// bounds before branching, so the whole tree inherits the cut.
				gap := res.Obj - relax.obj
				if gap >= 0 {
					for j := range p.C {
						if p.Integer == nil || !p.Integer[j] {
							continue
						}
						d := relax.rc[j]
						if d > 1e-9 {
							if cut := nd.lb[j] + math.Floor(gap/d+intTol); cut < nd.ub[j]-0.5 {
								nd.ub[j] = cut
								res.Stats.RootCutBounds++
							}
						} else if d < -1e-9 {
							if cut := nd.ub[j] - math.Floor(gap/(-d)+intTol); cut > nd.lb[j]+0.5 {
								nd.lb[j] = cut
								res.Stats.RootCutBounds++
							}
						}
					}
				}
			}
			// Find the most fractional integer variable. Binary variables win
			// ties and beat general integers outright: fixing a binary usually
			// moves the relaxation bound (fixed charges, big-M couplings) far
			// more than splitting a general integer's range.
			branch := -1
			worst := intTol
			branchBinary := false
			for j := 0; j < len(p.C); j++ {
				if p.Integer == nil || !p.Integer[j] {
					continue
				}
				f := math.Abs(relax.x[j] - math.Round(relax.x[j]))
				if f <= intTol {
					continue
				}
				// Bounds are integral here, so the width-1 test is exact.
				//birplint:ignore floateq
				isBin := ub[j]-lb[j] == 1
				switch {
				case isBin && !branchBinary:
					worst, branch, branchBinary = f, j, true
				case isBin == branchBinary && f > worst:
					worst, branch = f, j
				}
			}
			if branch < 0 {
				// Integer feasible: round integer coordinates exactly and accept.
				cand := make([]float64, len(relax.x))
				copy(cand, relax.x)
				for j := range cand {
					if p.Integer != nil && p.Integer[j] {
						cand[j] = math.Round(cand[j])
					}
				}
				obj := evalObj(p, cand)
				// Deterministic tie-break: on equal objective keep the solution
				// from the lexicographically-first node id.
				//birplint:ignore floateq
				if obj < res.Obj || (obj == res.Obj && nd.id < incumbentID) {
					res.Obj = obj
					incumbent = cand
					incumbentID = nd.id
					res.Status = StatusOptimal
				}
				continue
			}
			branchAt(h, ts, nd, branch, relax.x[branch], relax.obj, &nextID, relax.basis)
		}
	}
	if incumbent != nil {
		res.X = incumbent
		res.Status = StatusOptimal
		res.Gap = 0
	}
	return res, nil
}

// lpScratchPool amortizes per-worker LP scratch storage across SolveOpts
// calls (the scheduler solves one MILP per edge per slot).
var lpScratchPool = sync.Pool{New: func() interface{} { return lp.NewScratch() }}

func firstBranchable(p *Problem, lb, ub []float64) int {
	for j := range p.C {
		if p.Integer != nil && p.Integer[j] && ub[j]-lb[j] >= 1 {
			return j
		}
	}
	return -1
}

// branchAt pushes the floor/ceil children of nd split at value v on column j,
// handing both children the parent relaxation's basis for warm re-entry.
// Nodes come from the tree arena; ids are drawn from *nextID. Callers only
// invoke this from the sequential merge phase, so both the arena order and
// the numbering are deterministic.
func branchAt(h *nodeHeap, ts *treeState, nd *node, j int, v, bound float64, nextID *uint64, basis *lp.Basis) {
	n := len(nd.lb)
	lo := math.Floor(v)
	if lo < nd.lb[j] {
		lo = nd.lb[j]
	}
	hi := lo + 1
	if lo >= nd.lb[j] {
		left := ts.takeNode(n)
		copy(left.lb, nd.lb)
		copy(left.ub, nd.ub)
		left.bound, left.depth, left.id, left.basis = bound, nd.depth+1, *nextID, basis
		*nextID++
		left.ub[j] = lo
		if left.lb[j] <= left.ub[j] {
			heap.Push(h, left)
		}
	}
	if hi <= nd.ub[j] {
		right := ts.takeNode(n)
		copy(right.lb, nd.lb)
		copy(right.ub, nd.ub)
		right.bound, right.depth, right.id, right.basis = bound, nd.depth+1, *nextID, basis
		*nextID++
		right.lb[j] = hi
		if right.lb[j] <= right.ub[j] {
			heap.Push(h, right)
		}
	}
}

func clone(v []float64) []float64 {
	w := make([]float64, len(v))
	copy(w, v)
	return w
}

func evalObj(p *Problem, x []float64) float64 {
	var obj float64
	for j, cj := range p.C {
		obj += cj * x[j]
	}
	if p.Q != nil {
		obj += 0.5 * mat.Vec(x).Dot(p.Q.MulVec(mat.Vec(x)))
	}
	return obj
}

type relaxStatus int

const (
	relaxOptimal relaxStatus = iota
	relaxInfeasible
	relaxUnbounded
	relaxFailed
)

type relaxResult struct {
	status relaxStatus
	x      []float64
	obj    float64
	// basis is the optimal simplex basis (LP path with capture on), handed to
	// this node's children for warm re-entry; rc holds reduced costs when the
	// solve was asked for them (root tightening).
	basis *lp.Basis
	rc    []float64
	// observability counters for Stats aggregation.
	warmAttempted    bool
	warmFellBack     bool
	dualReentry      bool
	pivots           int
	dualPivots       int
	refactorizations int
	etaLen           int
	factorReuses     int
}

// solveRelaxation solves the continuous relaxation under node bounds. form,
// when non-nil, is the tree-wide precompiled standard form of p's LP (built
// once per SolveOpts; p and form must describe the same matrices). sc is
// the calling worker's LP scratch (unused on the QP paths); concurrent
// callers must pass distinct scratches. warm, when non-nil, is the parent
// basis to re-enter from; capture asks for the optimal basis (for this node's
// children); wantRC asks for reduced costs (root tightening). dense forces
// the dense tableau kernel; preferDual asserts warm is dual feasible here
// (bounds-only change), enabling the revised engine's dual re-entry.
func solveRelaxation(p *Problem, form *lp.Form, lb, ub []float64, sc *lp.Scratch, warm *lp.Basis, capture, wantRC, dense, preferDual, noReuse bool) (relaxResult, error) {
	if p.Q == nil {
		lpOpt := lp.Options{CaptureBasis: capture, WantReducedCosts: wantRC, AssumeValid: true, PreferDual: preferDual, NoFactorReuse: noReuse}
		if dense {
			lpOpt.Engine = lp.EngineDense
		}
		var res *lp.Result
		var err error
		if form != nil {
			// Precompiled standard form: only the bound-dependent vectors are
			// rebuilt for this node.
			res, err = form.SolveWarm(lb, ub, lpOpt, sc, warm)
		} else {
			res, err = lp.SolveWarm(&lp.Problem{
				C: p.C, Aeq: p.Aeq, Beq: p.Beq, Aub: p.Aub, Bub: p.Bub, Lb: lb, Ub: ub,
			}, lpOpt, sc, warm)
		}
		if err != nil {
			return relaxResult{}, err
		}
		out := relaxResult{
			warmAttempted:    warm != nil,
			warmFellBack:     res.WarmFallback,
			dualReentry:      res.DualReentry,
			pivots:           res.Pivots(),
			dualPivots:       res.DualPivots,
			refactorizations: res.Refactorizations,
			etaLen:           res.EtaLen,
			factorReuses:     res.FactorReuses,
		}
		switch res.Status {
		case lp.StatusOptimal:
			out.status, out.x, out.obj = relaxOptimal, res.X, res.Obj
			out.basis = res.Basis
			out.rc = res.ReducedCosts
		case lp.StatusInfeasible:
			out.status = relaxInfeasible
		case lp.StatusUnbounded:
			out.status = relaxUnbounded
		default:
			out.status = relaxFailed
		}
		return out, nil
	}
	// Box-only QP (no structural rows): the accelerated projected-gradient
	// solver is faster and cannot cycle; its fixed points are the box-QP
	// optima, so the relaxation bound stays valid.
	if len(p.Aeq) == 0 && len(p.Aub) == 0 {
		boxable := true
		for j := range lb {
			if math.IsInf(lb[j], -1) || math.IsInf(ub[j], 1) {
				boxable = false
				break
			}
		}
		if boxable {
			res, err := qp.SolveBox(&qp.BoxProblem{Q: p.Q, C: p.C, Lo: lb, Hi: ub}, qp.BoxOptions{})
			if err != nil {
				return relaxResult{}, err
			}
			if !res.Converged {
				return relaxResult{status: relaxFailed}, nil
			}
			return relaxResult{status: relaxOptimal, x: res.X, obj: res.Obj}, nil
		}
	}

	// QP path: fold node bounds into inequality rows.
	n := len(p.C)
	aub := make([][]float64, 0, len(p.Aub)+2*n)
	bub := make([]float64, 0, len(p.Bub)+2*n)
	aub = append(aub, p.Aub...)
	bub = append(bub, p.Bub...)
	for j := 0; j < n; j++ {
		if !math.IsInf(ub[j], 1) {
			row := make([]float64, n)
			row[j] = 1
			aub = append(aub, row)
			bub = append(bub, ub[j])
		}
		if !math.IsInf(lb[j], -1) {
			row := make([]float64, n)
			row[j] = -1
			aub = append(aub, row)
			bub = append(bub, -lb[j])
		}
	}
	res, err := qp.Solve(&qp.Problem{Q: p.Q, C: p.C, Aeq: p.Aeq, Beq: p.Beq, Aub: aub, Bub: bub})
	if err != nil {
		return relaxResult{}, err
	}
	switch res.Status {
	case qp.StatusOptimal:
		return relaxResult{status: relaxOptimal, x: res.X, obj: res.Obj}, nil
	case qp.StatusInfeasible:
		return relaxResult{status: relaxInfeasible}, nil
	case qp.StatusUnbounded:
		return relaxResult{status: relaxUnbounded}, nil
	default:
		return relaxResult{status: relaxFailed}, nil
	}
}

// Builder incrementally assembles a Problem. It exists because the BIRP
// per-slot models are built from many small constraint groups; the Builder
// owns variable naming, bound setting, and the x·b product linearization.
// Rows are stored as offset ranges into one entry slab, so a Reset/rebuild
// cycle of a same-shaped model touches no allocator at all.
type Builder struct {
	names   []string
	lb, ub  []float64
	integer []bool
	c       []float64
	q       map[[2]int]float64
	entries []sparseEntry
	aeq     []rowRef
	beq     []float64
	aub     []rowRef
	bub     []float64

	// BuildShared storage: the dense problem materialized into builder-owned
	// slabs, reused across Reset cycles.
	shared       Problem
	sharedSlab   []float64
	sharedEqRows [][]float64
	sharedUbRows [][]float64
}

type sparseEntry struct {
	col  int
	coef float64
}

// rowRef is a half-open range of Builder.entries holding one constraint row.
type rowRef struct{ start, end int32 }

// NewBuilder returns an empty model builder.
func NewBuilder() *Builder {
	return &Builder{q: make(map[[2]int]float64)}
}

// Reset empties the builder for a fresh model while keeping every backing
// array (names, bounds, rows, the entry slab, the BuildShared storage), so a
// long-lived builder assembles one model per slot without allocating.
// Problems obtained from BuildShared are invalidated.
func (b *Builder) Reset() {
	b.names = b.names[:0]
	b.lb = b.lb[:0]
	b.ub = b.ub[:0]
	b.integer = b.integer[:0]
	b.c = b.c[:0]
	//birplint:ordered // delete-every-key is iteration-order independent
	for k := range b.q {
		delete(b.q, k)
	}
	b.entries = b.entries[:0]
	b.aeq = b.aeq[:0]
	b.beq = b.beq[:0]
	b.aub = b.aub[:0]
	b.bub = b.bub[:0]
}

// AddVar adds a variable and returns its column index.
func (b *Builder) AddVar(name string, lb, ub float64, integer bool) int {
	b.names = append(b.names, name)
	b.lb = append(b.lb, lb)
	b.ub = append(b.ub, ub)
	b.integer = append(b.integer, integer)
	b.c = append(b.c, 0)
	return len(b.names) - 1
}

// AddBinary adds a {0,1} variable.
func (b *Builder) AddBinary(name string) int { return b.AddVar(name, 0, 1, true) }

// SetObj adds coef to the linear objective coefficient of column j.
func (b *Builder) SetObj(j int, coef float64) { b.c[j] += coef }

// SetQuad adds coef·x_i·x_j to the objective (symmetrized into Q).
func (b *Builder) SetQuad(i, j int, coef float64) {
	if i > j {
		i, j = j, i
	}
	b.q[[2]int{i, j}] += coef
}

// AddEq adds the constraint Σ coefs[k]·x[cols[k]] = rhs.
func (b *Builder) AddEq(cols []int, coefs []float64, rhs float64) {
	b.aeq = append(b.aeq, b.appendRow(cols, coefs, 1))
	b.beq = append(b.beq, rhs)
}

// AddLe adds the constraint Σ coefs[k]·x[cols[k]] ≤ rhs.
func (b *Builder) AddLe(cols []int, coefs []float64, rhs float64) {
	b.aub = append(b.aub, b.appendRow(cols, coefs, 1))
	b.bub = append(b.bub, rhs)
}

// AddGe adds the constraint Σ coefs[k]·x[cols[k]] ≥ rhs, stored as the
// negated ≤ row directly in the entry slab.
func (b *Builder) AddGe(cols []int, coefs []float64, rhs float64) {
	b.aub = append(b.aub, b.appendRow(cols, coefs, -1))
	b.bub = append(b.bub, -rhs)
}

// appendRow copies one sign-scaled row into the entry slab and returns its
// range.
func (b *Builder) appendRow(cols []int, coefs []float64, sign float64) rowRef {
	if len(cols) != len(coefs) {
		panic("miqp: cols/coefs length mismatch")
	}
	start := int32(len(b.entries))
	for i := range cols {
		b.entries = append(b.entries, sparseEntry{cols[i], sign * coefs[i]})
	}
	return rowRef{start, int32(len(b.entries))}
}

// LinearizeProduct adds a variable z = x·y where x is binary and y lies in
// [0, yMax], using the standard McCormick constraints
//
//	z ≤ yMax·x,   z ≤ y,   z ≥ y − yMax·(1−x),   z ≥ 0.
//
// It returns z's column index. This is how the bilinear loss·x·b objective
// terms of problem P1/P2 become quadratic-programming compatible.
func (b *Builder) LinearizeProduct(name string, x, y int, yMax float64) int {
	z := b.AddVar(name, 0, yMax, false)
	b.AddLe([]int{z, x}, []float64{1, -yMax}, 0)            // z − yMax·x ≤ 0
	b.AddLe([]int{z, y}, []float64{1, -1}, 0)               // z − y ≤ 0
	b.AddGe([]int{z, y, x}, []float64{1, -1, -yMax}, -yMax) // z − y − yMax·x ≥ −yMax
	return z
}

// NumVars returns the number of variables added so far.
func (b *Builder) NumVars() int { return len(b.names) }

// Name returns the name of column j.
func (b *Builder) Name(j int) string { return b.names[j] }

// Build materializes the dense Problem.
func (b *Builder) Build() *Problem {
	n := len(b.names)
	p := &Problem{
		C:       clone(b.c),
		Lb:      clone(b.lb),
		Ub:      clone(b.ub),
		Integer: append([]bool(nil), b.integer...),
	}
	if len(b.q) > 0 {
		q := mat.New(n, n)
		keys := make([][2]int, 0, len(b.q))
		for key := range b.q {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, z int) bool {
			if keys[a][0] != keys[z][0] {
				return keys[a][0] < keys[z][0]
			}
			return keys[a][1] < keys[z][1]
		})
		for _, key := range keys {
			v := b.q[key]
			i, j := key[0], key[1]
			if i == j {
				q.Set(i, i, q.At(i, i)+2*v) // ½xᵀQx convention
			} else {
				q.Set(i, j, q.At(i, j)+v)
				q.Set(j, i, q.At(j, i)+v)
			}
		}
		p.Q = q
	}
	dense := func(rows []rowRef) [][]float64 {
		out := make([][]float64, len(rows))
		for i, r := range rows {
			row := make([]float64, n)
			for _, e := range b.entries[r.start:r.end] {
				row[e.col] += e.coef
			}
			out[i] = row
		}
		return out
	}
	p.Aeq = dense(b.aeq)
	p.Beq = clone(b.beq)
	p.Aub = dense(b.aub)
	p.Bub = clone(b.bub)
	return p
}

// BuildShared materializes the dense Problem into builder-owned storage that
// is reused across Reset cycles, so a steady-state build of a same-shaped
// model performs no allocation. The returned Problem and every slice it
// references alias the builder: they are valid only until the next Reset or
// BuildShared call, and the builder must not be mutated (AddVar/SetObj/...)
// while the Problem is in use. Callers that need the model to outlive the
// builder cycle must use Build. Quadratic objectives fall back to the
// allocating Build path (BIRP's per-edge models are linear).
func (b *Builder) BuildShared() *Problem {
	if len(b.q) > 0 {
		return b.Build()
	}
	n := len(b.names)
	p := &b.shared
	p.C = b.c
	p.Lb = b.lb
	p.Ub = b.ub
	p.Integer = b.integer
	p.Q = nil
	p.Beq = b.beq
	p.Bub = b.bub
	m := len(b.aeq) + len(b.aub)
	need := m * n
	if cap(b.sharedSlab) < need {
		b.sharedSlab = make([]float64, need)
	}
	slab := b.sharedSlab[:need]
	for i := range slab {
		slab[i] = 0
	}
	b.sharedEqRows = growRowHeaders(b.sharedEqRows, len(b.aeq))
	b.sharedUbRows = growRowHeaders(b.sharedUbRows, len(b.aub))
	off := 0
	for i, r := range b.aeq {
		row := slab[off : off+n : off+n]
		off += n
		for _, e := range b.entries[r.start:r.end] {
			row[e.col] += e.coef
		}
		b.sharedEqRows[i] = row
	}
	for i, r := range b.aub {
		row := slab[off : off+n : off+n]
		off += n
		for _, e := range b.entries[r.start:r.end] {
			row[e.col] += e.coef
		}
		b.sharedUbRows[i] = row
	}
	p.Aeq = b.sharedEqRows
	p.Aub = b.sharedUbRows
	return p
}

func growRowHeaders(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		return make([][]float64, n)
	}
	return s[:n]
}
