package miqp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// bruteForce enumerates every integer assignment of a fully-integer problem
// with small bounds and returns the optimum (or +Inf when infeasible).
func bruteForce(p *Problem, lb, ub []int) float64 {
	n := len(p.C)
	x := make([]float64, n)
	best := math.Inf(1)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			for i, row := range p.Aub {
				var s float64
				for k, a := range row {
					s += a * x[k]
				}
				if s > p.Bub[i]+1e-9 {
					return
				}
			}
			for i, row := range p.Aeq {
				var s float64
				for k, a := range row {
					s += a * x[k]
				}
				if math.Abs(s-p.Beq[i]) > 1e-9 {
					return
				}
			}
			obj := 0.0
			for k, c := range p.C {
				obj += c * x[k]
			}
			if p.Q != nil {
				obj += 0.5 * mat.Vec(x).Dot(p.Q.MulVec(mat.Vec(x)))
			}
			if obj < best {
				best = obj
			}
			return
		}
		for v := lb[j]; v <= ub[j]; v++ {
			x[j] = float64(v)
			rec(j + 1)
		}
	}
	rec(0)
	return best
}

// Property: branch-and-bound matches exhaustive enumeration on random small
// fully-integer linear programs (including infeasible instances).
func TestQuickBranchAndBoundMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		p := &Problem{
			C:       make([]float64, n),
			Lb:      make([]float64, n),
			Ub:      make([]float64, n),
			Integer: make([]bool, n),
		}
		lb := make([]int, n)
		ub := make([]int, n)
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.NormFloat64()*4) / 2
			lb[j] = -rng.Intn(3)
			ub[j] = lb[j] + rng.Intn(4)
			p.Lb[j] = float64(lb[j])
			p.Ub[j] = float64(ub[j])
			p.Integer[j] = true
		}
		for i := 0; i < rng.Intn(3); i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = math.Round(rng.NormFloat64() * 2)
			}
			p.Aub = append(p.Aub, row)
			p.Bub = append(p.Bub, math.Round(rng.NormFloat64()*4))
		}
		if rng.Intn(3) == 0 {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(3))
			}
			p.Aeq = append(p.Aeq, row)
			p.Beq = append(p.Beq, float64(rng.Intn(5)))
		}
		want := bruteForce(p, lb, ub)
		res, err := Solve(p)
		if err != nil {
			return false
		}
		if math.IsInf(want, 1) {
			return res.Status == StatusInfeasible
		}
		return res.Status == StatusOptimal && math.Abs(res.Obj-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same differential with a convex diagonal quadratic objective
// (exercises the QP relaxation path).
func TestQuickQuadraticBranchAndBoundMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		q := mat.New(n, n)
		p := &Problem{
			C:       make([]float64, n),
			Lb:      make([]float64, n),
			Ub:      make([]float64, n),
			Integer: make([]bool, n),
			Q:       q,
		}
		lb := make([]int, n)
		ub := make([]int, n)
		for j := 0; j < n; j++ {
			q.Set(j, j, 0.5+rng.Float64()*2)
			p.C[j] = math.Round(rng.NormFloat64()*4) / 2
			lb[j] = -1 - rng.Intn(2)
			ub[j] = lb[j] + 1 + rng.Intn(3)
			p.Lb[j] = float64(lb[j])
			p.Ub[j] = float64(ub[j])
			p.Integer[j] = true
		}
		if rng.Intn(2) == 0 {
			row := make([]float64, n)
			for j := range row {
				row[j] = math.Round(rng.NormFloat64() * 2)
			}
			p.Aub = append(p.Aub, row)
			p.Bub = append(p.Bub, math.Round(rng.NormFloat64()*3))
		}
		want := bruteForce(p, lb, ub)
		res, err := Solve(p)
		if err != nil {
			return false
		}
		if math.IsInf(want, 1) {
			return res.Status == StatusInfeasible
		}
		return res.Status == StatusOptimal && math.Abs(res.Obj-want) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: a mixed instance (half integer, half continuous) returns a point
// that is feasible, integral where required, and no worse than any integer
// completion found by enumeration + LP on the continuous remainder.
func TestQuickMixedIntegerSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		p := &Problem{
			C:       make([]float64, n),
			Ub:      make([]float64, n),
			Integer: make([]bool, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = rng.NormFloat64()
			p.Ub[j] = float64(1 + rng.Intn(3))
			p.Integer[j] = j%2 == 0
		}
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.Aub = [][]float64{row}
		p.Bub = []float64{1 + rng.Float64()*3}
		res, err := Solve(p)
		if err != nil || res.Status != StatusOptimal {
			return false // x = 0 is feasible, must be optimal
		}
		var s float64
		for j := 0; j < n; j++ {
			x := res.X[j]
			if x < -1e-7 || x > p.Ub[j]+1e-7 {
				return false
			}
			if p.Integer[j] && math.Abs(x-math.Round(x)) > 1e-6 {
				return false
			}
			s += row[j] * x
		}
		return s <= p.Bub[0]+1e-6 && res.Obj <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// FuzzWarmStartEquivalence drives the accelerated engine (warm-started
// relaxations + presolve) against the cold engine on seeded random MILPs and
// requires status and objective to agree. The committed seeds include
// instances (5, 29) where the warm re-entry's basis crash or feasibility
// repair gives up mid-tree and falls back cold — the recovery path that a
// bug in fallback bookkeeping would corrupt first.
func FuzzWarmStartEquivalence(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 5, 17, 29} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := randomMILP(rng)
		warm, err := SolveOpts(p, Options{})
		if err != nil {
			t.Fatalf("warm: %v", err)
		}
		cold, err := SolveOpts(p, Options{DisableWarmStart: true, DisablePresolve: true})
		if err != nil {
			t.Fatalf("cold: %v", err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("status warm=%v cold=%v", warm.Status, cold.Status)
		}
		if warm.Status == StatusOptimal && math.Abs(warm.Obj-cold.Obj) > 1e-9*(1+math.Abs(cold.Obj)) {
			t.Fatalf("objective warm=%.12g cold=%.12g (stats %s)", warm.Obj, cold.Obj, warm.Stats.String())
		}
		// A fallback must never leave the counters inconsistent: every warm
		// attempt either hits or falls back.
		if s := warm.Stats; s.WarmHits+s.WarmFallbacks != s.WarmAttempts {
			t.Fatalf("warm counters inconsistent: %s", s.String())
		}
	})
}
