package miqp

import (
	"errors"
	"math"
	"testing"
)

// knapsack is the shared fixture for the incumbent regression tests: binary
// knapsack with optimum (0,1,1), objective −20 (see TestIntegerKnapsack).
func knapsack() *Problem {
	return &Problem{
		C:       []float64{-10, -13, -7},
		Aub:     [][]float64{{3, 4, 2}},
		Bub:     []float64{6},
		Ub:      []float64{1, 1, 1},
		Integer: []bool{true, true, true},
	}
}

// TestInfeasibleIncumbentRejected pins the validation contract: SolveOpts must
// refuse an Options.Incumbent that violates the problem with a typed error,
// never silently adopt it — an unchecked infeasible bound would prune the true
// optimum.
func TestInfeasibleIncumbentRejected(t *testing.T) {
	cases := []struct {
		name string
		inc  []float64
	}{
		{"violates knapsack row", []float64{1, 1, 1}}, // weight 9 > 6
		{"outside variable bounds", []float64{0, 2, 0}},
		{"non-integral integer var", []float64{0, 0.5, 0}},
		{"non-finite entry", []float64{0, math.NaN(), 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := SolveOpts(knapsack(), Options{Incumbent: tc.inc})
			if !errors.Is(err, ErrInfeasibleIncumbent) {
				t.Fatalf("err = %v (res %+v), want ErrInfeasibleIncumbent", err, res)
			}
		})
	}
}

// TestWrongLengthIncumbentRejected: a length mismatch is malformed input, not
// an infeasible point, so it reports ErrBadProblem.
func TestWrongLengthIncumbentRejected(t *testing.T) {
	if _, err := SolveOpts(knapsack(), Options{Incumbent: []float64{0, 1}}); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem", err)
	}
}

// TestFeasibleIncumbentAccepted: a valid seed must leave the certified answer
// unchanged — the incumbent only tightens the pruning bound.
func TestFeasibleIncumbentAccepted(t *testing.T) {
	res, err := SolveOpts(knapsack(), Options{Incumbent: []float64{1, 0, 1}}) // weight 5, obj −17
	if err != nil {
		t.Fatalf("SolveOpts: %v", err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-20)) > 1e-7 {
		t.Fatalf("got %v obj %v, want optimal −20", res.Status, res.Obj)
	}
}

// TestSeededNodeLimitReturnsIncumbent: with the node budget exhausted before
// any node completes, a seeded solve must still return a solution at least as
// good as the seed instead of reporting infeasibility.
func TestSeededNodeLimitReturnsIncumbent(t *testing.T) {
	res, err := SolveOpts(knapsack(), Options{Incumbent: []float64{1, 0, 1}, MaxNodes: 1})
	if err != nil {
		t.Fatalf("SolveOpts: %v", err)
	}
	if res.Status == StatusInfeasible || res.Obj > -17+1e-9 {
		t.Fatalf("got %v obj %v, want ≤ −17 (the seed)", res.Status, res.Obj)
	}
}

// TestRootBasisHandoffEquivalence covers the cross-solve basis path end to
// end: CaptureRootBasis publishes the optimal root basis, and feeding it back
// through Options.RootBasis must reproduce the identical certified result —
// the handoff is a warm start, never a behavioural change.
func TestRootBasisHandoffEquivalence(t *testing.T) {
	p := &Problem{
		C:       []float64{-3, -2, -4, -1},
		Aub:     [][]float64{{2, 1, 3, 1}, {1, 3, 1, 2}},
		Bub:     []float64{7, 8},
		Ub:      []float64{2, 2, 2, 2},
		Integer: []bool{true, true, true, true},
	}
	first, err := SolveOpts(p, Options{CaptureRootBasis: true})
	if err != nil {
		t.Fatalf("capture solve: %v", err)
	}
	if first.RootBasis == nil {
		t.Fatal("CaptureRootBasis set but Result.RootBasis is nil")
	}
	second, err := SolveOpts(p, Options{RootBasis: first.RootBasis})
	if err != nil {
		t.Fatalf("handoff solve: %v", err)
	}
	if second.Status != first.Status || math.Abs(second.Obj-first.Obj) > 1e-9 {
		t.Fatalf("handoff changed the answer: %v/%v vs %v/%v",
			second.Status, second.Obj, first.Status, first.Obj)
	}
	for j := range p.C {
		if math.Round(second.X[j]) != math.Round(first.X[j]) {
			t.Fatalf("handoff changed integer var %d: %g vs %g", j, second.X[j], first.X[j])
		}
	}
	// A stale basis of the wrong shape (captured from a different problem)
	// must be ignored, not crash or corrupt the solve.
	other, err := SolveOpts(knapsack(), Options{CaptureRootBasis: true})
	if err != nil || other.RootBasis == nil {
		t.Fatalf("stale-basis capture: %v (basis %v)", err, other.RootBasis)
	}
	third, err := SolveOpts(p, Options{RootBasis: other.RootBasis})
	if err != nil {
		t.Fatalf("stale-basis solve: %v", err)
	}
	if third.Status != first.Status || math.Abs(third.Obj-first.Obj) > 1e-9 {
		t.Fatalf("stale basis changed the answer: %v/%v", third.Status, third.Obj)
	}
}
