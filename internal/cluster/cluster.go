// Package cluster describes the edge collaborative system topology: which
// accelerators participate, how much memory each edge grants to inference,
// and the per-slot wireless bandwidth budget N^t_k of paper Eq. 9.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/accel"
	"repro/internal/mat"
)

// Edge is one participant in the collaborative system.
type Edge struct {
	Name   string
	Device *accel.Device
	// MemoryMB is M_k of Eq. 6: memory available to inference, net of system
	// overhead (paper range [4500, 6500] MB).
	MemoryMB float64
	// BandwidthLoMbps/BandwidthHiMbps bound the per-slot wireless budget
	// (paper range [50, 100] Mbps); the realized value varies per slot.
	BandwidthLoMbps float64
	BandwidthHiMbps float64
}

// Cluster is the edge collaborative system.
type Cluster struct {
	Edges []*Edge
	// SlotSeconds is the scheduling slot duration τ. The paper uses
	// 15-minute slots with its production trace; the simulator default of
	// 10 s keeps the same *ratios* (batch time : slot, transfer : bandwidth
	// budget) at laptop scale — see EXPERIMENTS.md for the scaling argument.
	SlotSeconds float64
	seed        int64
	// bwIndex, when non-nil, maps local edge index → the index used for
	// bandwidth realization. Sub views set it so a domain's edges draw
	// exactly the per-slot budgets they would draw in the parent fleet;
	// nil means the identity mapping.
	bwIndex []int
	// bw caches realized BandwidthMBAt draws per (t, k): seeding a fresh
	// math/rand source for every query is ~100× the cost of the single
	// uniform it produces, and the schedulers re-query the same slot's
	// budget many times (redistribution, per-edge ship budgets, preloads,
	// plan validation). Values are pure functions of (seed, t, k), so the
	// cache is transparent and safe for concurrent readers.
	bw sync.Map // [2]int{t, k} -> float64
}

// Option mutates cluster construction.
type Option func(*Cluster)

// WithSlotSeconds overrides the slot duration.
func WithSlotSeconds(s float64) Option {
	return func(c *Cluster) { c.SlotSeconds = s }
}

// WithSeed sets the seed for per-slot bandwidth realization.
func WithSeed(seed int64) Option {
	return func(c *Cluster) { c.seed = seed }
}

// Default builds the paper's testbed: three heterogeneous edge types
// (Jetson NX, Jetson Nano, Atlas 200DK), two instances each.
func Default(opts ...Option) *Cluster {
	mems := []float64{6500, 6100, 4500, 4800, 5500, 5900}
	devs := []*accel.Device{
		&accel.JetsonNX, &accel.JetsonNX,
		&accel.JetsonNano, &accel.JetsonNano,
		&accel.Atlas200DK, &accel.Atlas200DK,
	}
	c := &Cluster{SlotSeconds: 10, seed: 1}
	for i, d := range devs {
		c.Edges = append(c.Edges, &Edge{
			Name:            fmt.Sprintf("edge-%d(%s)", i, d.Name),
			Device:          d,
			MemoryMB:        mems[i],
			BandwidthLoMbps: 50,
			BandwidthHiMbps: 100,
		})
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Small builds the paper's small-scale testbed: one edge per type.
func Small(opts ...Option) *Cluster {
	c := Default(opts...)
	c.Edges = []*Edge{c.Edges[0], c.Edges[2], c.Edges[4]}
	for i, e := range c.Edges {
		// Re-key names to the small cluster's own indices.
		renamed := *e
		renamed.Name = fmt.Sprintf("edge-%d(%s)", i, e.Device.Name)
		c.Edges[i] = &renamed
	}
	return c
}

// EdgeSpec describes one edge for Custom.
type EdgeSpec struct {
	Device *accel.Device
	// MemoryMB defaults to the device's MemoryMB when zero.
	MemoryMB float64
	// Bandwidth range in Mbps; defaults to the paper's [50, 100] when zero.
	BandwidthLoMbps, BandwidthHiMbps float64
}

// Custom builds an arbitrary topology from edge specs — downstream users'
// clusters rarely look like the paper's testbed. The result is validated.
func Custom(specs []EdgeSpec, opts ...Option) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: Custom needs at least one edge")
	}
	c := &Cluster{SlotSeconds: 10, seed: 1}
	for i, sp := range specs {
		if sp.Device == nil {
			return nil, fmt.Errorf("cluster: edge %d has no device", i)
		}
		e := &Edge{
			Name:            fmt.Sprintf("edge-%d(%s)", i, sp.Device.Name),
			Device:          sp.Device,
			MemoryMB:        sp.MemoryMB,
			BandwidthLoMbps: sp.BandwidthLoMbps,
			BandwidthHiMbps: sp.BandwidthHiMbps,
		}
		if mat.Zero(e.MemoryMB) {
			e.MemoryMB = sp.Device.MemoryMB
		}
		if mat.Zero(e.BandwidthLoMbps) && mat.Zero(e.BandwidthHiMbps) {
			e.BandwidthLoMbps, e.BandwidthHiMbps = 50, 100
		}
		c.Edges = append(c.Edges, e)
	}
	for _, o := range opts {
		o(c)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// N returns the number of edges.
func (c *Cluster) N() int { return len(c.Edges) }

// BandwidthMBAt returns the Eq. 9 network budget N^t_k for edge k in slot t,
// in megabytes per slot. It is deterministic in (seed, t, k).
func (c *Cluster) BandwidthMBAt(t, k int) float64 {
	key := [2]int{t, k}
	if v, ok := c.bw.Load(key); ok {
		return v.(float64)
	}
	e := c.Edges[k]
	bk := k
	if c.bwIndex != nil {
		bk = c.bwIndex[k]
	}
	rng := rand.New(rand.NewSource(c.seed ^ int64(t)*1000003 ^ int64(bk)*10007))
	mbps := e.BandwidthLoMbps + rng.Float64()*(e.BandwidthHiMbps-e.BandwidthLoMbps)
	mb := mbps * c.SlotSeconds / 8
	c.bw.Store(key, mb)
	return mb
}

// Sub returns a restricted view of the cluster containing the given edges, in
// the given order. The view shares the parent's edge descriptors, slot
// duration, and seed, and — crucially — its bandwidth realizations: local edge
// j draws the per-slot budget of parent edge indices[j], so a domain solver
// plans against exactly the budgets the monolithic solver would see. The view
// keeps its own draw cache and is safe to use concurrently with the parent
// and with sibling views.
func (c *Cluster) Sub(indices []int) (*Cluster, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("cluster: Sub needs at least one edge")
	}
	sub := &Cluster{SlotSeconds: c.SlotSeconds, seed: c.seed}
	for _, k := range indices {
		if k < 0 || k >= len(c.Edges) {
			return nil, fmt.Errorf("cluster: Sub index %d out of range [0, %d)", k, len(c.Edges))
		}
		bk := k
		if c.bwIndex != nil {
			bk = c.bwIndex[k]
		}
		sub.Edges = append(sub.Edges, c.Edges[k])
		sub.bwIndex = append(sub.bwIndex, bk)
	}
	return sub, nil
}

// SlotMS returns the slot duration in milliseconds.
func (c *Cluster) SlotMS() float64 { return c.SlotSeconds * 1000 }

// Validate checks the topology for configuration mistakes.
func (c *Cluster) Validate() error {
	if len(c.Edges) == 0 {
		return fmt.Errorf("cluster: no edges")
	}
	if c.SlotSeconds <= 0 {
		return fmt.Errorf("cluster: slot duration %v must be positive", c.SlotSeconds)
	}
	for i, e := range c.Edges {
		if e.Device == nil {
			return fmt.Errorf("cluster: edge %d has no device", i)
		}
		if e.MemoryMB <= 0 {
			return fmt.Errorf("cluster: edge %d has memory %v", i, e.MemoryMB)
		}
		if e.BandwidthLoMbps <= 0 || e.BandwidthHiMbps < e.BandwidthLoMbps {
			return fmt.Errorf("cluster: edge %d has bandwidth range [%v, %v]",
				i, e.BandwidthLoMbps, e.BandwidthHiMbps)
		}
	}
	return nil
}
