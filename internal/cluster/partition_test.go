package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPartitionShapes(t *testing.T) {
	c, err := Scaled(50)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		domains, maxSize, wantD int
	}{
		{domains: 4, wantD: 4},
		{maxSize: 16, wantD: 4}, // ⌈50/16⌉
		{maxSize: 50, wantD: 1},
		{wantD: 4}, // DefaultDomainSize = 16
		{domains: 100, wantD: 50},
	}
	for _, tc := range cases {
		parts := Partition(c, tc.domains, tc.maxSize)
		if len(parts) != tc.wantD {
			t.Errorf("Partition(domains=%d, maxSize=%d): %d domains, want %d",
				tc.domains, tc.maxSize, len(parts), tc.wantD)
			continue
		}
		seen := make([]bool, c.N())
		for d, dom := range parts {
			if len(dom) == 0 {
				t.Errorf("domain %d is empty", d)
			}
			for i, k := range dom {
				if k < 0 || k >= c.N() || seen[k] {
					t.Fatalf("domain %d: bad or duplicate edge %d", d, k)
				}
				seen[k] = true
				if i > 0 && dom[i-1] >= k {
					t.Errorf("domain %d not in ascending edge order: %v", d, dom)
				}
			}
			if d > 0 && parts[d-1][0] >= dom[0] {
				t.Errorf("domains not ordered by first member")
			}
		}
		for k, ok := range seen {
			if !ok {
				t.Fatalf("edge %d missing from partition", k)
			}
		}
		// Snake dealing bounds the size spread to one edge.
		lo, hi := c.N(), 0
		for _, dom := range parts {
			if len(dom) < lo {
				lo = len(dom)
			}
			if len(dom) > hi {
				hi = len(dom)
			}
		}
		if hi-lo > 1 {
			t.Errorf("domain sizes spread [%d, %d], want balanced within 1", lo, hi)
		}
	}
}

func TestPartitionDeterministicAndRepeatable(t *testing.T) {
	c, err := Scaled(40, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	a := Partition(c, 0, 10)
	b := Partition(c, 0, 10)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Partition is not repeatable on the same cluster")
	}
}

// TestPartitionStableUnderPermutation: permuting the input edge order permutes
// the labels but must yield the same grouping — the affinity key is a pure
// function of the specs, so edge identity (not position) decides membership.
func TestPartitionStableUnderPermutation(t *testing.T) {
	c, err := Scaled(24, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(11)).Perm(c.N()) // permuted[p] = original perm[p]
	permuted := &Cluster{SlotSeconds: c.SlotSeconds, seed: c.seed}
	for _, k := range perm {
		permuted.Edges = append(permuted.Edges, c.Edges[k])
	}
	canon := func(parts [][]int, toOrig func(int) int) map[int][]int {
		// Key each domain by its lowest original-edge member.
		out := map[int][]int{}
		for _, dom := range parts {
			var orig []int
			lo := -1
			for _, k := range dom {
				o := toOrig(k)
				orig = append(orig, o)
				if lo < 0 || o < lo {
					lo = o
				}
			}
			out[lo] = orig
		}
		for _, dom := range out {
			sortInts(dom)
		}
		return out
	}
	a := canon(Partition(c, 0, 8), func(k int) int { return k })
	b := canon(Partition(permuted, 0, 8), func(k int) int { return perm[k] })
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("grouping changed under permutation:\noriginal: %v\npermuted: %v", a, b)
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
