package cluster

import "testing"

func TestScaledDeterministicAndValid(t *testing.T) {
	for _, k := range []int{1, 6, 50, 500} {
		a, err := Scaled(k, WithSeed(5))
		if err != nil {
			t.Fatalf("Scaled(%d): %v", k, err)
		}
		if a.N() != k {
			t.Fatalf("Scaled(%d) has %d edges", k, a.N())
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Scaled(%d) invalid: %v", k, err)
		}
		b, err := Scaled(k, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Edges {
			ea, eb := a.Edges[i], b.Edges[i]
			if ea.Name != eb.Name || ea.Device != eb.Device ||
				ea.MemoryMB != eb.MemoryMB ||
				ea.BandwidthLoMbps != eb.BandwidthLoMbps ||
				ea.BandwidthHiMbps != eb.BandwidthHiMbps {
				t.Fatalf("Scaled(%d) edge %d differs across identical calls", k, i)
			}
		}
		// Per-slot bandwidth realizations are part of the contract too.
		for tt := 0; tt < 3; tt++ {
			for i := 0; i < min(a.N(), 10); i++ {
				if a.BandwidthMBAt(tt, i) != b.BandwidthMBAt(tt, i) {
					t.Fatalf("Scaled(%d): bandwidth draw (%d, %d) differs", k, tt, i)
				}
			}
		}
	}
	if _, err := Scaled(0); err == nil {
		t.Fatal("Scaled(0) should fail")
	}
}

func TestScaledDeviceMixAndRanges(t *testing.T) {
	c, err := Scaled(100)
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	for _, e := range c.Edges {
		types[e.Device.Name]++
		if e.MemoryMB < 0.8*e.Device.MemoryMB-1e-9 || e.MemoryMB > 1.2*e.Device.MemoryMB+1e-9 {
			t.Errorf("%s: memory %v outside ±20%% of device default %v", e.Name, e.MemoryMB, e.Device.MemoryMB)
		}
		if e.BandwidthLoMbps < 40 || e.BandwidthHiMbps > 140 || e.BandwidthHiMbps <= e.BandwidthLoMbps {
			t.Errorf("%s: bandwidth range [%v, %v] outside envelope", e.Name, e.BandwidthLoMbps, e.BandwidthHiMbps)
		}
	}
	// 20-slot pattern at k=100: exact proportions.
	want := map[string]int{"Jetson NX": 30, "Jetson Nano": 30, "Atlas 200DK": 25, "Edge TPU": 15}
	for name, n := range want {
		if types[name] != n {
			t.Errorf("device %s: %d edges, want %d (mix %v)", name, types[name], n, types)
		}
	}
}

func TestSubSharesBandwidthRealizations(t *testing.T) {
	c, err := Scaled(12, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{3, 7, 10}
	sub, err := c.Sub(idx)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != len(idx) {
		t.Fatalf("sub has %d edges", sub.N())
	}
	for tt := 0; tt < 5; tt++ {
		for li, gk := range idx {
			if sub.BandwidthMBAt(tt, li) != c.BandwidthMBAt(tt, gk) {
				t.Fatalf("sub draw (%d, %d) != parent draw (%d, %d)", tt, li, tt, gk)
			}
		}
	}
	// A view of a view still maps to the root realization.
	nested, err := sub.Sub([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if nested.BandwidthMBAt(1, 0) != c.BandwidthMBAt(1, 10) ||
		nested.BandwidthMBAt(1, 1) != c.BandwidthMBAt(1, 3) {
		t.Fatal("nested sub view does not share root bandwidth realizations")
	}
	if _, err := c.Sub(nil); err == nil {
		t.Fatal("empty Sub should fail")
	}
	if _, err := c.Sub([]int{99}); err == nil {
		t.Fatal("out-of-range Sub should fail")
	}
}
