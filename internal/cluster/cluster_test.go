package cluster

import (
	"testing"

	"repro/internal/accel"
)

func TestDefaultTopology(t *testing.T) {
	c := Default()
	if c.N() != 6 {
		t.Fatalf("default cluster has %d edges, want 6", c.N())
	}
	types := map[string]int{}
	for _, e := range c.Edges {
		types[e.Device.Name]++
		if e.MemoryMB < 4500 || e.MemoryMB > 6500 {
			t.Errorf("%s: memory %v outside paper range [4500, 6500]", e.Name, e.MemoryMB)
		}
		if e.BandwidthLoMbps != 50 || e.BandwidthHiMbps != 100 {
			t.Errorf("%s: bandwidth range [%v, %v], paper uses [50, 100]",
				e.Name, e.BandwidthLoMbps, e.BandwidthHiMbps)
		}
	}
	for name, n := range types {
		if n != 2 {
			t.Errorf("device type %s has %d instances, want 2", name, n)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallTopology(t *testing.T) {
	c := Small()
	if c.N() != 3 {
		t.Fatalf("small cluster has %d edges, want 3", c.N())
	}
	seen := map[string]bool{}
	for _, e := range c.Edges {
		seen[e.Device.Name] = true
	}
	if len(seen) != 3 {
		t.Fatalf("small cluster should have one edge per device type, got %v", seen)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptions(t *testing.T) {
	c := Default(WithSlotSeconds(42), WithSeed(9))
	if c.SlotSeconds != 42 {
		t.Fatalf("SlotSeconds = %v", c.SlotSeconds)
	}
	if c.SlotMS() != 42000 {
		t.Fatalf("SlotMS = %v", c.SlotMS())
	}
}

func TestBandwidthWithinRangeAndDeterministic(t *testing.T) {
	c := Default(WithSeed(3))
	lo := 50 * c.SlotSeconds / 8
	hi := 100 * c.SlotSeconds / 8
	for tt := 0; tt < 50; tt++ {
		for k := 0; k < c.N(); k++ {
			v := c.BandwidthMBAt(tt, k)
			if v < lo || v > hi {
				t.Fatalf("bandwidth %v outside [%v, %v]", v, lo, hi)
			}
			if v != c.BandwidthMBAt(tt, k) {
				t.Fatal("bandwidth must be deterministic per (t, k)")
			}
		}
	}
	// Different slots should usually differ.
	if c.BandwidthMBAt(0, 0) == c.BandwidthMBAt(1, 0) && c.BandwidthMBAt(1, 0) == c.BandwidthMBAt(2, 0) {
		t.Fatal("bandwidth does not vary across slots")
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	cases := []*Cluster{
		{SlotSeconds: 10},
		{SlotSeconds: 0, Edges: []*Edge{{Device: &accel.JetsonNano, MemoryMB: 100, BandwidthLoMbps: 1, BandwidthHiMbps: 2}}},
		{SlotSeconds: 10, Edges: []*Edge{{Device: nil, MemoryMB: 100, BandwidthLoMbps: 1, BandwidthHiMbps: 2}}},
		{SlotSeconds: 10, Edges: []*Edge{{Device: &accel.JetsonNano, MemoryMB: 0, BandwidthLoMbps: 1, BandwidthHiMbps: 2}}},
		{SlotSeconds: 10, Edges: []*Edge{{Device: &accel.JetsonNano, MemoryMB: 100, BandwidthLoMbps: 5, BandwidthHiMbps: 2}}},
		{SlotSeconds: 10, Edges: []*Edge{{Device: &accel.JetsonNano, MemoryMB: 100, BandwidthLoMbps: 0, BandwidthHiMbps: 2}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
