package cluster

import "sort"

// DefaultDomainSize bounds collaboration domains when the caller fixes
// neither a domain count nor a size. Sixteen edges keeps every per-domain
// redistribution LP small enough that the per-slot joint stage stays in the
// millisecond range while leaving each domain enough heterogeneity for
// workload redistribution to pay off.
const DefaultDomainSize = 16

// Partition splits the fleet into bounded-size collaboration domains for
// hierarchical scheduling. domains > 0 fixes the number of domains; otherwise
// maxSize bounds each domain's edge count (≤ 0 means DefaultDomainSize) and
// the domain count becomes ⌈K/maxSize⌉.
//
// The clustering is a capacity-balanced affinity dealing: edges are ordered
// by a deterministic affinity key — device compute capability (SM count ×
// clock), then mean wireless bandwidth, then memory — and dealt snake-wise
// across the domains. Every domain therefore mixes fast and slow edges with
// near-equal aggregate capacity, which is what intra-domain redistribution
// needs (overloaded slow edges must find fast neighbours *inside* their
// domain, because the top-level coordinator only settles coarse cross-domain
// flow).
//
// Determinism: the key is a pure function of the edge specs (never of map
// order, RNG draws, or wall clock), ties break on edge index, each returned
// domain lists its edges in ascending index order, and domains are ordered by
// their lowest member. Permuting the input edge specs permutes the labels but
// yields the same grouping, and repeated calls are identical — the partition
// is stable across runs and across processes.
func Partition(c *Cluster, domains, maxSize int) [][]int {
	K := c.N()
	if K == 0 {
		return nil
	}
	D := domains
	if D <= 0 {
		size := maxSize
		if size <= 0 {
			size = DefaultDomainSize
		}
		D = (K + size - 1) / size
	}
	if D < 1 {
		D = 1
	}
	if D > K {
		D = K
	}

	// Affinity ordering: strongest edge first.
	order := make([]int, K)
	for i := range order {
		order[i] = i
	}
	score := func(k int) (compute, bw, mem float64) {
		e := c.Edges[k]
		return float64(e.Device.NumSM) * e.Device.Clock,
			(e.BandwidthLoMbps + e.BandwidthHiMbps) / 2,
			e.MemoryMB
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, ba, ma := score(order[a])
		cb, bb, mb := score(order[b])
		switch {
		case ca > cb || cb > ca:
			return ca > cb
		case ba > bb || bb > ba:
			return ba > bb
		case ma > mb || mb > ma:
			return ma > mb
		}
		return order[a] < order[b]
	})

	// Snake dealing balances aggregate capacity: 0..D-1, then D-1..0, ...
	out := make([][]int, D)
	for pos, k := range order {
		lap, off := pos/D, pos%D
		d := off
		if lap%2 == 1 {
			d = D - 1 - off
		}
		out[d] = append(out[d], k)
	}
	for d := range out {
		sort.Ints(out[d])
	}
	// Domain minima are distinct (domains partition the edge set), but keep
	// the sort stable so ties could never depend on deal order.
	sort.SliceStable(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
