package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/accel"
)

// Scaled builds a seeded synthetic fleet of k heterogeneous edges for
// scale experiments (K up to the hundreds), so benches and tests stop
// hand-rolling Custom specs. The fleet mixes the four standard device types
// in fixed proportions (NX-heavy, echoing the paper's testbed ratio plus a
// tail of weak Edge TPUs), with per-edge memory drawn within ±20% of the
// device default and bandwidth ranges drawn inside the paper's wireless
// envelope ([40, 140] Mbps).
//
// Every draw comes from a single rand source seeded by WithSeed (default 1),
// so the fleet is a pure function of (k, seed): repeated calls, different
// processes, and different worker counts all see byte-identical topologies.
// The same seed also drives the per-slot bandwidth realization, exactly as in
// Default/Custom clusters.
func Scaled(k int, opts ...Option) (*Cluster, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: Scaled needs at least one edge, got %d", k)
	}
	c := &Cluster{SlotSeconds: 10, seed: 1}
	for _, o := range opts {
		o(c)
	}
	rng := rand.New(rand.NewSource(c.seed))
	// Device mix: 30% NX, 30% Nano, 25% Atlas, 15% Edge TPU. A repeating
	// 20-slot pattern keeps the proportions exact at every fleet size and
	// independent of the RNG.
	pattern := []*accel.Device{
		&accel.JetsonNX, &accel.JetsonNano, &accel.Atlas200DK, &accel.JetsonNX,
		&accel.JetsonNano, &accel.EdgeTPU, &accel.Atlas200DK, &accel.JetsonNX,
		&accel.JetsonNano, &accel.Atlas200DK, &accel.JetsonNX, &accel.EdgeTPU,
		&accel.JetsonNano, &accel.Atlas200DK, &accel.JetsonNX, &accel.JetsonNano,
		&accel.EdgeTPU, &accel.Atlas200DK, &accel.JetsonNX, &accel.JetsonNano,
	}
	for i := 0; i < k; i++ {
		d := pattern[i%len(pattern)]
		mem := d.MemoryMB * (0.8 + 0.4*rng.Float64())
		lo := 40 + 40*rng.Float64()      // [40, 80] Mbps
		hi := lo + 20 + 40*rng.Float64() // up to [60, 140] Mbps
		c.Edges = append(c.Edges, &Edge{
			Name:            fmt.Sprintf("edge-%d(%s)", i, d.Name),
			Device:          d,
			MemoryMB:        mem,
			BandwidthLoMbps: lo,
			BandwidthHiMbps: hi,
		})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
