package cluster

import (
	"testing"

	"repro/internal/accel"
)

func TestCustomDefaultsAndValidation(t *testing.T) {
	c, err := Custom([]EdgeSpec{
		{Device: &accel.EdgeTPU},
		{Device: &accel.JetsonNano, MemoryMB: 2000, BandwidthLoMbps: 20, BandwidthHiMbps: 40},
	}, WithSlotSeconds(5))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 2 || c.SlotSeconds != 5 {
		t.Fatalf("cluster = %+v", c)
	}
	if c.Edges[0].MemoryMB != accel.EdgeTPU.MemoryMB {
		t.Fatalf("memory default not applied: %v", c.Edges[0].MemoryMB)
	}
	if c.Edges[0].BandwidthLoMbps != 50 || c.Edges[0].BandwidthHiMbps != 100 {
		t.Fatal("bandwidth default not applied")
	}
	if c.Edges[1].BandwidthLoMbps != 20 {
		t.Fatal("explicit bandwidth ignored")
	}
	if c.Edges[0].Name != "edge-0(Edge TPU)" {
		t.Fatalf("name = %q", c.Edges[0].Name)
	}
}

func TestCustomErrors(t *testing.T) {
	if _, err := Custom(nil); err == nil {
		t.Fatal("empty spec must error")
	}
	if _, err := Custom([]EdgeSpec{{}}); err == nil {
		t.Fatal("nil device must error")
	}
	if _, err := Custom([]EdgeSpec{{Device: &accel.EdgeTPU}}, WithSlotSeconds(-1)); err == nil {
		t.Fatal("invalid slot duration must fail validation")
	}
}

func TestEdgeTPUCharacter(t *testing.T) {
	// The TPU's character is efficiency: far lower energy per inference
	// than the Nano on small CNNs, but it loses throughput on the
	// transformer-class profile (narrow array, weak host, tiny memory).
	small := accel.KernelProfile{Kernels: 8, BlocksPerSample: 1.6, WaveMS: 0.2, HostMSPerSample: 2.78}
	big := accel.KernelProfile{Kernels: 144, BlocksPerSample: 40, WaveMS: 1.26, HostMSPerSample: 265}
	if accel.EdgeTPU.Throughput(small, 1) <= 0 {
		t.Fatal("TPU must run the small profile")
	}
	nanoBig := accel.JetsonNano.Throughput(big, 1)
	tpuBig := accel.EdgeTPU.Throughput(big, 1)
	if tpuBig >= nanoBig {
		t.Fatalf("TPU should lose on big models: %v vs %v", tpuBig, nanoBig)
	}
	nanoE := accel.JetsonNano.BatchEnergyJ(small, 1)
	tpuE := accel.EdgeTPU.BatchEnergyJ(small, 1)
	if tpuE >= 0.7*nanoE {
		t.Fatalf("TPU energy per inference should be well below Nano: %v vs %v", tpuE, nanoE)
	}
}
