package core

import (
	"math"
	"testing"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// utilizationSpread computes the variance of per-edge planned compute for a
// redistribution under fixed per-request costs.
func utilizationSpread(c *cluster.Cluster, apps []*models.Application, red *Redistribution,
	gamma func(ModelKey) float64) float64 {
	K := c.N()
	util := make([]float64, K)
	for k := 0; k < K; k++ {
		for i := range red.Alloc {
			// Cheapest model as the cost proxy (matches what stage 1 picks
			// under light constraints).
			util[k] += gamma(ModelKey{Edge: k, App: i, Version: 0}) * float64(red.Alloc[i][k])
		}
		util[k] /= c.SlotMS()
	}
	var mean float64
	for _, u := range util {
		mean += u
	}
	mean /= float64(K)
	var v float64
	for _, u := range util {
		v += (u - mean) * (u - mean)
	}
	return v / float64(K)
}

func TestBalanceWeightEvensUtilization(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	params := func(ModelKey) bandit.TIRParams { return bandit.TIRParams{Eta: 0.1, Beta: 16, C: 1.3} }
	gamma := func(k ModelKey) float64 {
		return c.Edges[k.Edge].Device.SingleLatencyMS(apps[k.App].Models[k.Version].Profile)
	}
	// All load lands on edge 0, comfortably within its own capacity: the
	// unbalanced LP has no reason to move it; the balanced one spreads it.
	arrivals := [][]int{{90, 0, 0}}
	plain, err := Redistribute(c, apps, arrivals, params, gamma, 0, RedistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := Redistribute(c, apps, arrivals, params, gamma, 0, RedistOptions{BalanceWeight: 5})
	if err != nil {
		t.Fatal(err)
	}
	vPlain := utilizationSpread(c, apps, plain, gamma)
	vBal := utilizationSpread(c, apps, balanced, gamma)
	if !(vBal < vPlain) {
		t.Fatalf("balancing did not reduce utilization variance: %v vs %v", vBal, vPlain)
	}
	// Conservation still holds.
	total := 0
	for _, row := range balanced.Alloc {
		for _, v := range row {
			total += v
		}
	}
	if total != 90 {
		t.Fatalf("balanced allocation total %d, want 90", total)
	}
}

func TestBalanceWeightEndToEnd(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	s, err := New(Config{
		Cluster: c, Apps: apps,
		Redist: RedistOptions{BalanceWeight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := edgesim.New(edgesim.Config{
		Cluster: c, Apps: apps, NoiseSigma: 0.02, SlotNoiseSigma: 0.08, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.Generate(trace.Config{
		Apps: 2, Edges: c.N(), Slots: 30, Seed: 8, MeanPerSlot: 40, Imbalance: 0.9,
	})
	res, err := sim.Run(s, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
	if math.IsNaN(res.Loss.Total()) {
		t.Fatal("NaN loss")
	}
}
