package core

import (
	"fmt"
	"math"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/miqp"
	"repro/internal/models"
)

// MemModel selects the Eq. 6 memory interpretation.
type MemModel int

const (
	// MemTimeSliced (default) matches the executor: all deployed weights
	// resident, activations allocated only for the batch currently running —
	// Σ δ·x + max_ij μ·b ≤ M. This is what the paper's "time-sliced
	// execution" description physically implies.
	MemTimeSliced MemModel = iota
	// MemSum is Eq. 6 verbatim: Σ (δ·x + μ·b) ≤ M, charging every
	// deployment's activations simultaneously. Far more conservative; kept
	// for the abl-memmodel ablation.
	MemSum
)

// String implements fmt.Stringer.
func (m MemModel) String() string {
	switch m {
	case MemTimeSliced:
		return "time-sliced"
	case MemSum:
		return "eq6-sum"
	default:
		return fmt.Sprintf("MemModel(%d)", int(m))
	}
}

// BatchMode selects how an edge executes each (app, model) workload share.
type BatchMode int

const (
	// ModeMerged merges all requests of one (app, model) into a single
	// batch-aware parallel batch (BIRP, paper Eq. 5).
	ModeMerged BatchMode = iota
	// ModeSerial executes requests one at a time (OAEI and the paper's
	// "serialized execution" prior work).
	ModeSerial
	// ModeFixed executes batches of exactly B0, padding the last (MAX).
	ModeFixed
)

// String implements fmt.Stringer.
func (m BatchMode) String() string {
	switch m {
	case ModeMerged:
		return "merged"
	case ModeSerial:
		return "serial"
	case ModeFixed:
		return "fixed-B0"
	default:
		return fmt.Sprintf("BatchMode(%d)", int(m))
	}
}

// Penalty defaults. The overflow price approximates the paper's *hard* Eq. 8
// budget: a few ms of planned overflow already outweighs fully downgrading a
// request, so schedulers exhaust every model downgrade before spilling past
// the slot (a soft price lets a serial baseline trade massive SLO violations
// for loss, which the paper's formulation forbids). Dropping costs the
// equivalent of half a second of overflow, so requests are shed only when
// the slot is hopelessly oversubscribed.
const (
	DefaultDropPenalty          = 25.0
	DefaultOverflowPenaltyPerMS = 0.05
	// DefaultMaxBatch caps merged batch sizes (the paper's knees never
	// exceed 16; a generous cap leaves room for exploration).
	DefaultMaxBatch = 32
)

// EdgeProblem is the per-edge, per-slot model-selection and batch-sizing
// program (stage 2 of the decomposed solver; also the body of each edge's
// terms inside the joint program).
type EdgeProblem struct {
	Edge    *cluster.Edge
	EdgeIdx int
	Apps    []*models.Application
	// Workload[i] is the number of requests of app i to serve here after
	// redistribution.
	Workload []int
	// Params yields the (shaded) TIR-law parameters per model.
	Params func(app, version int) bandit.TIRParams
	// GammaMS yields the predicted single-request latency γ per model.
	GammaMS func(app, version int) float64
	// SlotMS is the slot duration τ.
	SlotMS float64
	// ShipBudgetMB is the bandwidth left for shipping new model weights.
	ShipBudgetMB float64
	// PrevDeployed marks models already resident from the previous slot.
	PrevDeployed map[[2]int]bool

	Mode     BatchMode
	FixedB0  int // required for ModeFixed
	MaxBatch int // 0 = DefaultMaxBatch
	// Mem selects the Eq. 6 memory interpretation (default MemTimeSliced).
	Mem MemModel
	// KneeCap selects the paper-literal formulation: each (app, model, edge)
	// runs a single merged batch per slot with Eq. 12's b ≤ β̂ cap. The
	// default (false) generalizes to production behavior — the deployment
	// picks the throughput-optimal batch size b* = min(β̂, memory cap) and
	// runs ⌈n/b*⌉ such batches, so heavy workloads are served instead of
	// dropped. With n ≤ b* the two coincide. abl-batchcap quantifies the
	// difference.
	KneeCap bool

	DropPenalty          float64 // 0 = default
	OverflowPenaltyPerMS float64 // 0 = default
	SolveNodes           int     // 0 = 4000
	// Workers is the branch-and-bound relaxation parallelism (≤ 1 = serial).
	// The solve is deterministic for every value; see miqp.Options.Workers.
	Workers int
	// DenseEngine forwards miqp.Options.DenseEngine: solve every relaxation
	// with the legacy dense tableau engine (A/B oracle for the revised
	// simplex) instead of the sparse revised default.
	DenseEngine bool
	// NoFactorReuse forwards miqp.Options.NoFactorReuse: refactorize on
	// every warm re-entry instead of reusing the parent's LU snapshot.
	// Plan-neutral; only the factorization counters change.
	NoFactorReuse bool
	// SingleVersion restricts each application to at most one deployed model
	// version on this edge (Σ_j x_ij ≤ 1) — the "model selection" decision
	// granularity of the OAEI baseline, which picks a version per
	// application rather than mixing versions per request.
	SingleVersion bool

	// Seed, when non-nil, is a previous (typically last slot's) assignment for
	// this edge. SolveEdge rebuilds it against the current problem — clamping
	// batch sizes to the new workloads and dropping the overflow — validates
	// the repaired point, and uses it as the branch & bound incumbent when it
	// beats the greedy one. An unrepairable seed is rejected (never silently
	// wrong) and the greedy incumbent is used instead; see the Solver
	// IncumbentSeeded/IncumbentRepaired/IncumbentRejected counters.
	Seed *EdgeAssignment
	// RootBasis, when non-nil, warm-starts the root relaxation from a
	// previous solve's optimal basis (cold fallback on shape mismatch);
	// CaptureRootBasis publishes this solve's root basis in
	// EdgeAssignment.RootBasis for the next slot.
	RootBasis        *lp.Basis
	CaptureRootBasis bool
	// Pool, when non-nil, supplies the solver's per-worker LP scratch arenas
	// (see miqp.ScratchPool); nil uses the package-level pool.
	Pool *miqp.ScratchPool
	// scratch, when non-nil, is the caller-owned model-build working storage
	// for this solve. The scheduler keeps one per fan-out worker so repeated
	// slot solves reuse it without contention; external callers leave it nil
	// and SolveEdge borrows from a package pool.
	scratch *edgeScratch
}

// EdgeAssignment is the per-edge solve result.
type EdgeAssignment struct {
	// Deployments have Edge set to EdgeIdx and BatchSizes filled per Mode.
	Deployments []edgesim.Deployment
	// Dropped[i] counts unserved requests of app i.
	Dropped []int
	// PredictedMS is the planned total execution time (Taylor-linearized).
	PredictedMS float64
	// OverflowMS is the planned amount beyond the slot.
	OverflowMS float64
	// Obj is the solver objective (loss + penalties).
	Obj float64
	// Nodes is the number of branch-and-bound nodes the solve used.
	Nodes int
	// Bottleneck names the tightest resource at the solution: "compute",
	// "memory", "bandwidth", or "none" (plenty of headroom everywhere).
	// Diagnostic only; see Utilizations for the raw numbers.
	Bottleneck string
	// Utilizations maps resource name → fraction of its budget used.
	Utilizations map[string]float64
	// Solver carries the branch & bound observability counters for this solve
	// (warm-start hit rate, pivot work, presolve reductions, incumbent
	// provenance). Diagnostic only.
	Solver miqp.Stats
	// RootBasis is the root relaxation's optimal simplex basis, captured when
	// EdgeProblem.CaptureRootBasis was set; the temporal reuse layer feeds it
	// back via EdgeProblem.RootBasis at the next slot.
	RootBasis *lp.Basis
}

// SolveEdge solves the per-edge program exactly via branch and bound.
func SolveEdge(p *EdgeProblem) (*EdgeAssignment, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	I := len(p.Apps)
	dropPen := p.DropPenalty
	if mat.Zero(dropPen) {
		dropPen = DefaultDropPenalty
	}
	ovPen := p.OverflowPenaltyPerMS
	if mat.Zero(ovPen) {
		ovPen = DefaultOverflowPenaltyPerMS
	}
	maxBatch := p.MaxBatch
	if maxBatch == 0 {
		maxBatch = DefaultMaxBatch
	}
	nodes := p.SolveNodes
	if nodes == 0 {
		nodes = 4000
	}

	es := p.scratch
	if es == nil {
		es = edgeScratchPool.Get().(*edgeScratch)
		defer edgeScratchPool.Put(es)
	}
	b := es.b
	b.Reset()
	// Flat (app, model) variable table replacing a per-call map: entry
	// vsOff[i]+j is valid iff app i has positive workload (vsAt guards).
	// Variables are unnamed on this path; names only ever served debugging
	// and cost a Sprintf per variable per slot.
	total := 0
	vsOff := growInts(es.vsOff, I+1)
	for i := 0; i < I; i++ {
		vsOff[i] = total
		total += len(p.Apps[i].Models)
	}
	vsOff[I] = total
	es.vsOff = vsOff
	vars := growVarSets(es.vars, total)
	es.vars = vars
	vsAt := func(i, j int) *varSet {
		if i < 0 || i >= I || p.Workload[i] <= 0 || j < 0 || j >= vsOff[i+1]-vsOff[i] {
			return nil
		}
		return &vars[vsOff[i]+j]
	}
	if cap(es.appCols) < I {
		es.appCols = make([][]int, I)
		es.appCoefs = make([][]float64, I)
	}
	appComputeCols := es.appCols[:I]
	appComputeCoefs := es.appCoefs[:I]
	for i := range appComputeCols {
		appComputeCols[i] = appComputeCols[i][:0]
		appComputeCoefs[i] = appComputeCoefs[i][:0]
	}
	es.appCols, es.appCoefs = appComputeCols, appComputeCoefs
	var curApp int
	addCompute := func(cols []int, coefs []float64) {
		appComputeCols[curApp] = append(appComputeCols[curApp], cols...)
		appComputeCoefs[curApp] = append(appComputeCoefs[curApp], coefs...)
	}
	weightCols := es.weightCols[:0]
	weightCoefs := es.weightCoefs[:0]
	actTerms := es.actTerms[:0]
	shipCols := es.shipCols[:0]
	shipCoefs := es.shipCoefs[:0]

	for i := 0; i < I; i++ {
		w := p.Workload[i]
		if w <= 0 {
			continue
		}
		curApp = i
		for j, m := range p.Apps[i].Models {
			par := p.Params(i, j)
			gamma := p.GammaMS(i, j)
			vs := &vars[vsOff[i]+j]
			*vs = varSet{model: m, par: par, gamma: gamma}
			x := b.AddBinary("")
			vs.x = x
			switch p.Mode {
			case ModeMerged:
				if p.KneeCap {
					// Paper-literal: one merged batch, b ≤ β̂ (Eq. 12), time
					// by the Eq. 24 tangent.
					ub := int(math.Min(par.Beta, float64(maxBatch)))
					if ub > w {
						ub = w
					}
					if ub < 1 {
						ub = 1
					}
					units := b.AddVar("", 0, float64(ub), true)
					vs.units = units
					vs.unitCap = ub
					vs.bStar = ub
					vs.served = units // served == batch size
					vs.slopeMS = gamma * (1 - par.Eta)
					vs.fixedMS = gamma * par.Eta
					// Coupling: b ≤ ub·x  (Eq. 4).
					b.AddLe([]int{units, x}, []float64{1, -float64(ub)}, 0)
					// Taylor-linearized compute (Eq. 24/25): slope·b + γη·x.
					addCompute([]int{units, x}, []float64{vs.slopeMS, gamma * par.Eta})
					// Memory: δ·x + μ·b (Eq. 6).
					weightCols = append(weightCols, x)
					weightCoefs = append(weightCoefs, m.WeightsMB)
					actTerms = append(actTerms, actTerm{units, m.IntermediateMB})
					break
				}
				// Multi-batch generalization: serve n requests as ⌈n/b*⌉
				// batches of size b* = min(maxBatch, memory cap, w);
				// per-request planned time is γ/TIR(b*) under the shaded
				// law. TIR is flat beyond the knee, so exceeding β̂ costs no
				// throughput while amortizing the per-deployment fixed term.
				bStar := maxBatch
				// Keep the activation block of one batch under half the edge
				// memory so several models' weights still fit beside it; the
				// TIR plateau makes larger batches nearly free to give up.
				if memCap := int((0.5*p.Edge.MemoryMB - m.WeightsMB) / m.IntermediateMB); bStar > memCap {
					bStar = memCap
				}
				if bStar > w {
					bStar = w
				}
				if bStar < 1 {
					bStar = 1
				}
				units := b.AddVar("", 0, float64(w), true)
				vs.units = units
				vs.unitCap = w
				vs.bStar = bStar
				vs.served = units
				vs.slopeMS = gamma / math.Max(par.TIR(float64(bStar)), 1)
				// Fixed term: ⌈n/b*⌉ quantization costs half a batch in
				// expectation; charge that per deployment.
				vs.fixedMS = 0.5 * vs.slopeMS * float64(bStar)
				b.AddLe([]int{units, x}, []float64{1, -float64(w)}, 0)
				addCompute([]int{units, x}, []float64{vs.slopeMS, vs.fixedMS})
				weightCols = append(weightCols, x)
				weightCoefs = append(weightCoefs, m.WeightsMB)
				// Peak activations: one b*-sized batch while executing.
				actTerms = append(actTerms, actTerm{x, m.IntermediateMB * float64(bStar)})
			case ModeSerial:
				// units = request count, executed one by one (TIR = 1).
				units := b.AddVar("", 0, float64(w), true)
				vs.units = units
				vs.unitCap = w
				vs.served = units
				b.AddLe([]int{units, x}, []float64{1, -float64(w)}, 0)
				addCompute([]int{units}, []float64{gamma})
				weightCols = append(weightCols, x)
				weightCoefs = append(weightCoefs, m.WeightsMB)
				actTerms = append(actTerms, actTerm{x, m.IntermediateMB})
			case ModeFixed:
				// units = number of B0-sized physical batches; served ≤ B0·units.
				maxBatches := (w + p.FixedB0 - 1) / p.FixedB0
				units := b.AddVar("", 0, float64(maxBatches), true)
				served := b.AddVar("", 0, float64(w), true)
				vs.units = units
				vs.unitCap = maxBatches
				vs.served = served
				b.AddLe([]int{served, units}, []float64{1, -float64(p.FixedB0)}, 0)
				b.AddLe([]int{units, x}, []float64{1, -float64(maxBatches)}, 0)
				// Each padded batch costs the full-B0 batch time.
				batchMS := par.BatchTime(gamma, float64(p.FixedB0))
				addCompute([]int{units}, []float64{batchMS})
				weightCols = append(weightCols, x)
				weightCoefs = append(weightCoefs, m.WeightsMB)
				actTerms = append(actTerms, actTerm{x, m.IntermediateMB * float64(p.FixedB0)})
			}
			// Objective: loss per served request (Eq. 10; the bilinear
			// loss·x·b collapses to loss·served under the Eq. 4 coupling).
			b.SetObj(vs.served, m.Loss)
			// Bandwidth for shipping a model not already resident.
			if !p.PrevDeployed[[2]int{i, j}] {
				shipCols = append(shipCols, x)
				shipCoefs = append(shipCoefs, m.CompressedMB)
			}
		}
	}

	// Per-app conservation: Σ_j served + dropped = workload.
	drops := growInts(es.drops, I)
	es.drops = drops
	for i := range drops {
		drops[i] = -1
	}
	for i := 0; i < I; i++ {
		w := p.Workload[i]
		if w <= 0 {
			continue
		}
		d := b.AddVar("", 0, float64(w), true)
		drops[i] = d
		b.SetObj(d, dropPen)
		cols := append(es.rowCols[:0], d)
		coefs := append(es.rowCoefs[:0], 1)
		for j := range p.Apps[i].Models {
			cols = append(cols, vsAt(i, j).served)
			coefs = append(coefs, 1)
		}
		b.AddEq(cols, coefs, float64(w))
		es.rowCols, es.rowCoefs = cols, coefs
		if p.SingleVersion {
			xs := es.rowCols[:0]
			ones := es.rowCoefs[:0]
			for j := range p.Apps[i].Models {
				xs = append(xs, vsAt(i, j).x)
				ones = append(ones, 1)
			}
			b.AddLe(xs, ones, 1)
			es.rowCols, es.rowCoefs = xs, ones
		}
	}

	// Soft compute budgets, one per SLO class (Eq. 8/25 generalized):
	// the executor runs tighter-SLO applications first, so everything with
	// SLO ≤ f must fit within f·τ. With the paper's uniform SLO = 1 this is
	// exactly the single Eq. 25 row. Each class gets its own overflow slack.
	classes := sloClassesInto(es.classes[:0], p.Apps, p.Workload)
	es.classes = classes
	classSlack := growInts(es.classSlack, len(classes))
	es.classSlack = classSlack
	for ci, f := range classes {
		sl := b.AddVar("", 0, math.Inf(1), false)
		b.SetObj(sl, ovPen)
		classSlack[ci] = sl
		cols := es.rowCols[:0]
		coefs := es.rowCoefs[:0]
		for i := 0; i < I; i++ {
			if p.Workload[i] <= 0 || p.Apps[i].SLO() > f+1e-12 {
				continue
			}
			cols = append(cols, appComputeCols[i]...)
			coefs = append(coefs, appComputeCoefs[i]...)
		}
		if len(cols) != 0 {
			cols = append(cols, sl)
			coefs = append(coefs, -1)
			b.AddLe(cols, coefs, f*p.SlotMS)
		}
		es.rowCols, es.rowCoefs = cols, coefs
	}
	slack := classSlack[len(classSlack)-1] // widest class = total overflow
	// Hard memory budget (Eq. 6, under the configured interpretation).
	if len(weightCols) > 0 {
		switch p.Mem {
		case MemSum:
			cols := append(es.rowCols[:0], weightCols...)
			coefs := append(es.rowCoefs[:0], weightCoefs...)
			for _, a := range actTerms {
				cols = append(cols, a.col)
				coefs = append(coefs, a.coef)
			}
			b.AddLe(cols, coefs, p.Edge.MemoryMB)
			es.rowCols, es.rowCoefs = cols, coefs
		default: // MemTimeSliced: Σ δ·x + each deployment's peak batch ≤ M.
			for _, a := range actTerms {
				cols := append(es.rowCols[:0], weightCols...)
				coefs := append(es.rowCoefs[:0], weightCoefs...)
				cols = append(cols, a.col)
				coefs = append(coefs, a.coef)
				b.AddLe(cols, coefs, p.Edge.MemoryMB)
				es.rowCols, es.rowCoefs = cols, coefs
			}
		}
	}
	// Hard model-shipping budget (Eq. 9 residue after request forwarding).
	if len(shipCols) > 0 {
		b.AddLe(shipCols, shipCoefs, p.ShipBudgetMB)
	}
	es.weightCols, es.weightCoefs = weightCols, weightCoefs
	es.actTerms = actTerms
	es.shipCols, es.shipCoefs = shipCols, shipCoefs

	// The problem aliases builder-owned storage reused across slots; it is
	// consumed entirely within this call (SolveOpts copies what it keeps).
	prob := b.BuildShared()
	// greedyFill completes point into an integer-feasible plan: it serves as
	// many of remaining's requests as the leftover budgets allow — best
	// models first within budgets, overflow when cheaper than dropping —
	// mutating point and remaining in place. Deployments already present in
	// point are respected and extended (their budget spends must be reflected
	// in the budget arguments; see budgetsOf), which is what lets the
	// temporal seed below keep last slot's deployment structure and still
	// serve newly arrived requests. Iteration is index-ordered and every
	// float accumulation has a fixed order, so the result is deterministic.
	greedyFill := func(point []float64, remaining []int, computeLeft, memLeft, maxAct, shipLeft float64) {
		overflow := 0.0
		// spendCompute books ms against the slot budget, spilling the excess
		// into the overflow slack so the incumbent always satisfies Eq. 25.
		spendCompute := func(ms float64) {
			if ms <= computeLeft {
				computeLeft -= ms
				return
			}
			overflow += ms - math.Max(computeLeft, 0)
			if computeLeft > 0 {
				computeLeft = 0
			}
		}
		_ = overflow
		for i := 0; i < I; i++ {
			if p.Workload[i] <= 0 {
				continue
			}
			rem := remaining[i]
			chosenJ := -1 // SingleVersion: first deployed version locks the app
			if p.SingleVersion {
				for j := range p.Apps[i].Models {
					if vs := vsAt(i, j); vs != nil && point[vs.x] > 0.5 {
						chosenJ = j
						break
					}
				}
			}
			order := growInts(es.order, len(p.Apps[i].Models))
			es.order = order
			for j := range order {
				order[j] = j
			}
			sortByLoss(order, p.Apps[i].Models)
			for pass := 0; pass < 2 && rem > 0; pass++ {
				for _, j := range order {
					if rem == 0 {
						break
					}
					if p.SingleVersion && chosenJ >= 0 && chosenJ != j {
						continue
					}
					vs := vsAt(i, j)
					m := vs.model
					already := point[vs.x] > 0.5
					shipCost := 0.0
					if !already && !p.PrevDeployed[[2]int{i, j}] {
						shipCost = m.CompressedMB
					}
					if shipCost > shipLeft {
						continue
					}
					switch p.Mode {
					case ModeMerged:
						room := vs.unitCap - int(point[vs.units])
						if room <= 0 {
							continue
						}
						fixMem := 0.0
						if !already {
							fixMem = m.WeightsMB
						}
						actBatch := m.IntermediateMB * float64(vs.bStar) // multi-batch peak
						var uMem int
						switch {
						case p.KneeCap && p.Mem == MemSum:
							uMem = int((memLeft - fixMem) / m.IntermediateMB)
						case p.KneeCap:
							// New weights must leave room for every prior
							// deployment's peak batch, and this deployment's
							// total batch must fit beside all weights.
							if memLeft-fixMem < maxAct {
								continue
							}
							uMem = int((memLeft-fixMem)/m.IntermediateMB) - int(point[vs.units])
						case p.Mem == MemSum:
							// Multi-batch: one constant b*-sized activation block.
							if !already && memLeft-fixMem < actBatch {
								continue
							}
							uMem = rem
						default:
							if !already && memLeft-fixMem < math.Max(maxAct, actBatch) {
								continue
							}
							uMem = rem
						}
						perReq := vs.slopeMS
						uCompute := room
						if pass == 0 {
							budget := computeLeft
							if !already {
								budget -= vs.fixedMS
							}
							uCompute = int(budget / math.Max(perReq, 1e-9))
						} else if perReq*ovPen >= dropPen {
							continue // overflow costs more than dropping
						}
						u := minInt(room, rem, uMem, uCompute)
						if u <= 0 {
							continue
						}
						if !already {
							memLeft -= m.WeightsMB
							shipLeft -= shipCost
							spendCompute(vs.fixedMS)
							point[vs.x] = 1
							chosenJ = j
							if !p.KneeCap {
								if p.Mem == MemSum {
									memLeft -= actBatch
								} else if actBatch > maxAct {
									maxAct = actBatch
								}
							}
						}
						point[vs.units] += float64(u)
						if p.KneeCap {
							if p.Mem == MemSum {
								memLeft -= m.IntermediateMB * float64(u)
							} else if act := m.IntermediateMB * point[vs.units]; act > maxAct {
								maxAct = act
							}
						}
						spendCompute(perReq * float64(u))
						rem -= u
					case ModeSerial:
						if pass > 0 && vs.gamma*ovPen >= dropPen {
							continue
						}
						fixMem := m.WeightsMB + m.IntermediateMB
						if p.Mem != MemSum {
							fixMem = m.WeightsMB
							if weightsAfter := fixMem; !already && memLeft-weightsAfter < math.Max(maxAct, m.IntermediateMB) {
								continue
							}
						}
						if !already && fixMem > memLeft {
							continue
						}
						uCompute := rem
						if pass == 0 {
							uCompute = int(computeLeft / math.Max(vs.gamma, 1e-9))
						}
						u := minInt(rem, vs.unitCap-int(point[vs.units]), uCompute)
						if u <= 0 {
							continue
						}
						if !already {
							memLeft -= fixMem
							shipLeft -= shipCost
							point[vs.x] = 1
							chosenJ = j
							if p.Mem != MemSum && m.IntermediateMB > maxAct {
								maxAct = m.IntermediateMB
							}
						}
						point[vs.units] += float64(u)
						spendCompute(vs.gamma * float64(u))
						rem -= u
					case ModeFixed:
						batchMS := vs.par.BatchTime(vs.gamma, float64(p.FixedB0))
						if pass > 0 && batchMS*ovPen/float64(p.FixedB0) >= dropPen {
							continue
						}
						act := m.IntermediateMB * float64(p.FixedB0)
						fixMem := m.WeightsMB + act
						if p.Mem != MemSum {
							fixMem = m.WeightsMB
							if !already && memLeft-fixMem < math.Max(maxAct, act) {
								continue
							}
						}
						if !already && fixMem > memLeft {
							continue
						}
						for rem > 0 && int(point[vs.units]) < vs.unitCap {
							if pass == 0 && batchMS > computeLeft {
								break
							}
							if !already {
								memLeft -= fixMem
								shipLeft -= shipCost
								point[vs.x] = 1
								chosenJ = j
								already = true
								if p.Mem != MemSum && act > maxAct {
									maxAct = act
								}
							}
							point[vs.units]++
							take := minInt(rem, p.FixedB0)
							point[vs.served] += float64(take)
							rem -= take
							spendCompute(batchMS)
						}
					}
				}
			}
			remaining[i] = rem
		}
	}

	// budgetsOf recomputes the leftover budgets a partially built point
	// leaves for greedyFill, mirroring its bookkeeping exactly: per-mode
	// planned compute, resident weights (plus activations under MemSum),
	// the peak single-deployment activation (MemTimeSliced), and shipping
	// for deployments not already resident. Index-ordered accumulation.
	budgetsOf := func(point []float64) (computeLeft, memLeft, maxAct, shipLeft float64) {
		computeLeft, memLeft, maxAct, shipLeft = p.SlotMS, p.Edge.MemoryMB, 0, p.ShipBudgetMB
		for i := 0; i < I; i++ {
			if p.Workload[i] <= 0 {
				continue
			}
			for j := range p.Apps[i].Models {
				vs := vsAt(i, j)
				if point[vs.x] < 0.5 {
					continue
				}
				m := vs.model
				units := point[vs.units]
				switch p.Mode {
				case ModeMerged:
					computeLeft -= vs.slopeMS*units + vs.fixedMS
				case ModeSerial:
					computeLeft -= vs.gamma * units
				case ModeFixed:
					computeLeft -= vs.par.BatchTime(vs.gamma, float64(p.FixedB0)) * units
				}
				memLeft -= m.WeightsMB
				if !p.PrevDeployed[[2]int{i, j}] {
					shipLeft -= m.CompressedMB
				}
				var act float64
				switch {
				case p.Mode == ModeMerged && p.KneeCap:
					act = m.IntermediateMB * units
				case p.Mode == ModeMerged:
					act = m.IntermediateMB * float64(vs.bStar)
				case p.Mode == ModeSerial:
					act = m.IntermediateMB
				default: // ModeFixed
					act = m.IntermediateMB * float64(p.FixedB0)
				}
				if p.Mem == MemSum {
					memLeft -= act
				} else if act > maxAct {
					maxAct = act
				}
			}
		}
		if computeLeft < 0 {
			computeLeft = 0
		}
		return
	}

	// Seed a greedy incumbent: it is feasible by construction, usually
	// optimal or near, and collapses the search — without it, branching on
	// the fixed-charge x variables barely moves the LP bound and the tree
	// explodes.
	inc := growFloatsZero(es.inc, b.NumVars())
	es.inc = inc
	remaining := growInts(es.incRem, I)
	es.incRem = remaining
	copy(remaining, p.Workload)
	greedyFill(inc, remaining, p.SlotMS, p.Edge.MemoryMB, 0, p.ShipBudgetMB)
	for i := 0; i < I; i++ {
		if drops[i] >= 0 {
			inc[drops[i]] = float64(remaining[i])
		}
	}
	// setClassSlacks sets each class slack exactly from the point's planned
	// spends so a candidate incumbent satisfies every nested budget row.
	// Iterate (i, j) in order, not over the vars map: float addition is
	// order-sensitive and the incumbent must be identical run to run.
	setClassSlacks := func(point []float64) {
		for ci, f := range classes {
			var lhs float64
			for i := 0; i < I; i++ {
				if p.Workload[i] <= 0 || p.Apps[i].SLO() > f+1e-12 {
					continue
				}
				for j := range p.Apps[i].Models {
					vs := vsAt(i, j)
					units := point[vs.units]
					xv := point[vs.x]
					switch p.Mode {
					case ModeMerged:
						lhs += vs.slopeMS*units + vs.fixedMS*xv
					case ModeSerial:
						lhs += vs.gamma * units
					case ModeFixed:
						lhs += vs.par.BatchTime(vs.gamma, float64(p.FixedB0)) * units
					}
				}
			}
			point[classSlack[ci]] = 0
			if over := lhs - f*p.SlotMS; over > 0 {
				point[classSlack[ci]] = over
			}
		}
	}
	setClassSlacks(inc)

	// Temporal incumbent seeding: rebuild the previous slot's assignment
	// against this slot's problem — clamp every deployment to the new
	// workloads and caps, spill the overflow onto the drop variables, set the
	// class slacks exactly — then validate the repaired point against all
	// rows. A valid seed that beats the greedy incumbent replaces it; an
	// invalid one is rejected outright, so the solve is never entered under a
	// bound a stale plan cannot certify. Pure function of (Seed, problem):
	// deterministic across runs and worker counts.
	repairSeed := func() (point []float64, didRepair, ok bool) {
		point = growFloatsZero(es.seedPoint, b.NumVars())
		es.seedPoint = point
		remaining := growInts(es.seedRem, I)
		es.seedRem = remaining
		copy(remaining, p.Workload)
		for _, dep := range p.Seed.Deployments {
			vs := vsAt(dep.App, dep.Version)
			if vs == nil || dep.Requests <= 0 {
				if dep.Requests > 0 {
					didRepair = true // app lost its workload here; requests fall to drops
				}
				continue
			}
			i := dep.App
			take := dep.Requests
			if take > remaining[i] {
				take, didRepair = remaining[i], true
			}
			switch p.Mode {
			case ModeMerged, ModeSerial:
				// units counts served requests (KneeCap: the single merged
				// batch size, additionally capped at the knee/memory bound).
				if room := vs.unitCap - int(point[vs.units]); take > room {
					take, didRepair = room, true
				}
				if take <= 0 {
					continue
				}
				point[vs.x] = 1
				point[vs.units] += float64(take)
			case ModeFixed:
				nb := (take + p.FixedB0 - 1) / p.FixedB0
				if room := vs.unitCap - int(point[vs.units]); nb > room {
					nb, didRepair = room, true
					if fit := nb * p.FixedB0; take > fit {
						take = fit
					}
				}
				if nb <= 0 || take <= 0 {
					continue
				}
				point[vs.x] = 1
				point[vs.units] += float64(nb)
				point[vs.served] += float64(take)
			}
			remaining[i] -= take
		}
		// Greedy completion: the clamp above only shrinks the seed, so on its
		// own the rebuilt point drops every newly arrived request — and with
		// drops heavily penalized it would almost never beat the from-scratch
		// greedy incumbent, making the seed useless. Re-running the greedy
		// fill on top of the clamped point serves the new arrivals under the
		// leftover budgets while keeping last slot's deployment structure.
		computeLeft, memLeft, maxAct, shipLeft := budgetsOf(point)
		greedyFill(point, remaining, computeLeft, memLeft, maxAct, shipLeft)
		for i := 0; i < I; i++ {
			if drops[i] < 0 {
				continue
			}
			point[drops[i]] = float64(remaining[i])
			if i < len(p.Seed.Dropped) && p.Seed.Dropped[i] != remaining[i] {
				didRepair = true
			}
		}
		setClassSlacks(point)
		if miqp.ValidateIncumbent(prob, point) != nil {
			return nil, didRepair, false
		}
		return point, didRepair, true
	}
	var seeded, repaired, rejected int
	if p.Seed != nil {
		seed, didRepair, ok := repairSeed()
		switch {
		case !ok:
			rejected = 1
		case objOf(prob, seed) < objOf(prob, inc):
			inc = seed
			seeded = 1
			if didRepair {
				repaired = 1
			}
		}
	}
	res, err := miqp.SolveOpts(prob, miqp.Options{
		MaxNodes:  nodes,
		Incumbent: inc,
		// A 0.5% relative gap is far below the run-to-run noise of the
		// simulator and cuts the proof-of-optimality tail off the search.
		GapTol:           0.005 * (1 + objOf(prob, inc)),
		Workers:          p.Workers,
		DenseEngine:      p.DenseEngine,
		NoFactorReuse:    p.NoFactorReuse,
		RootBasis:        p.RootBasis,
		CaptureRootBasis: p.CaptureRootBasis,
		Pool:             p.Pool,
	})
	if err != nil {
		return nil, fmt.Errorf("core: edge %d solve: %w", p.EdgeIdx, err)
	}
	if res.X == nil {
		return nil, fmt.Errorf("core: edge %d: solver returned no incumbent (status %v)", p.EdgeIdx, res.Status)
	}

	out := &EdgeAssignment{Dropped: make([]int, I), Obj: res.Obj, Nodes: res.Nodes, Solver: res.Stats, RootBasis: res.RootBasis}
	out.Solver.IncumbentSeeded = seeded
	out.Solver.IncumbentRepaired = repaired
	out.Solver.IncumbentRejected = rejected
	for i := 0; i < I; i++ {
		if drops[i] >= 0 {
			out.Dropped[i] = int(math.Round(res.X[drops[i]]))
		}
	}
	out.OverflowMS = res.X[slack]
	// Extract deployments in (app, version) order so the plan — and the float
	// accumulation into PredictedMS — is deterministic.
	for i := 0; i < I; i++ {
		if p.Workload[i] <= 0 {
			continue
		}
		for j := range p.Apps[i].Models {
			vs := vsAt(i, j)
			served := int(math.Round(res.X[vs.served]))
			units := int(math.Round(res.X[vs.units]))
			if served <= 0 {
				continue
			}
			dep := edgesim.Deployment{
				App: i, Version: j, Edge: p.EdgeIdx, Requests: served,
			}
			switch p.Mode {
			case ModeMerged:
				if p.KneeCap || served <= vs.bStar {
					dep.BatchSizes = []int{served}
				} else {
					for left := served; left > 0; left -= vs.bStar {
						bsz := vs.bStar
						if left < bsz {
							bsz = left
						}
						dep.BatchSizes = append(dep.BatchSizes, bsz)
					}
				}
				out.PredictedMS += vs.slopeMS*float64(served) + vs.fixedMS
			case ModeSerial:
				dep.BatchSizes = make([]int, served)
				for q := range dep.BatchSizes {
					dep.BatchSizes[q] = 1
				}
				out.PredictedMS += vs.gamma * float64(served)
			case ModeFixed:
				dep.BatchSizes = make([]int, units)
				for q := range dep.BatchSizes {
					dep.BatchSizes[q] = p.FixedB0
				}
				out.PredictedMS += vs.par.BatchTime(vs.gamma, float64(p.FixedB0)) * float64(units)
			}
			out.Deployments = append(out.Deployments, dep)
		}
	}

	// Diagnostic: how much of each budget the plan consumes, and which one
	// binds. Memory usage is recomputed per the configured model.
	var memUsed, shipUsed float64
	maxAct2 := 0.0
	for i := 0; i < I; i++ {
		if p.Workload[i] <= 0 {
			continue
		}
		for j := range p.Apps[i].Models {
			vs := vsAt(i, j)
			if res.X[vs.x] < 0.5 {
				continue
			}
			m := vs.model
			// Each (i, j) owns a distinct x column, so weights/ship are
			// counted once per deployment.
			memUsed += m.WeightsMB
			if !p.PrevDeployed[[2]int{i, j}] {
				shipUsed += m.CompressedMB
			}
			act := 0.0
			switch p.Mode {
			case ModeMerged:
				if p.KneeCap {
					act = m.IntermediateMB * res.X[vs.units]
				} else {
					act = m.IntermediateMB * float64(vs.bStar)
				}
			case ModeSerial:
				act = m.IntermediateMB
			case ModeFixed:
				act = m.IntermediateMB * float64(p.FixedB0)
			}
			if p.Mem == MemSum {
				memUsed += act
			} else if act > maxAct2 {
				maxAct2 = act
			}
		}
	}
	memUsed += maxAct2
	out.Utilizations = map[string]float64{
		"compute":   out.PredictedMS / p.SlotMS,
		"memory":    memUsed / p.Edge.MemoryMB,
		"bandwidth": safeFrac(shipUsed, p.ShipBudgetMB),
	}
	out.Bottleneck = "none"
	worstU := 0.85 // below this nothing is considered binding
	for _, name := range []string{"compute", "memory", "bandwidth"} {
		if u := out.Utilizations[name]; u > worstU {
			worstU = u
			out.Bottleneck = name
		}
	}
	return out, nil
}

func safeFrac(used, budget float64) float64 {
	if budget <= 0 {
		if used > 0 {
			return 1
		}
		return 0
	}
	return used / budget
}

// sloClasses returns the distinct SLO fractions of the applications with
// positive workload, ascending (at least one class, 1.0, when none).
func sloClasses(apps []*models.Application, workload []int) []float64 {
	return sloClassesInto(nil, apps, workload)
}

// sloClassesInto is sloClasses appending into dst (allocation-free once dst
// has capacity). There are only ever a handful of classes, so the dedupe is
// a linear scan.
func sloClassesInto(dst []float64, apps []*models.Application, workload []int) []float64 {
	out := dst[:0]
	for i, a := range apps {
		if i < len(workload) && workload[i] <= 0 {
			continue
		}
		f := a.SLO()
		dup := false
		for _, g := range out {
			// SLO fractions compare exactly: the dedupe must treat two apps
			// with the same configured fraction as one class.
			//birplint:ignore floateq
			if g == f {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = append(out, 1)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// sortByLoss orders model indices by ascending loss (best models first).
func sortByLoss(order []int, ms []*models.Model) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && ms[order[j]].Loss < ms[order[j-1]].Loss; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

func minInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// objOf evaluates a linear objective at x (the edge programs have no Q).
func objOf(p *miqp.Problem, x []float64) float64 {
	var s float64
	for j, c := range p.C {
		s += c * x[j]
	}
	return math.Abs(s)
}

func (p *EdgeProblem) validate() error {
	if p.Edge == nil {
		return fmt.Errorf("core: EdgeProblem without edge")
	}
	if len(p.Workload) != len(p.Apps) {
		return fmt.Errorf("core: workload length %d, want %d apps", len(p.Workload), len(p.Apps))
	}
	if p.Params == nil || p.GammaMS == nil {
		return fmt.Errorf("core: EdgeProblem needs Params and GammaMS")
	}
	if p.SlotMS <= 0 {
		return fmt.Errorf("core: non-positive slot duration %v", p.SlotMS)
	}
	if p.Mode == ModeFixed && p.FixedB0 <= 0 {
		return fmt.Errorf("core: ModeFixed requires positive FixedB0")
	}
	for i, w := range p.Workload {
		if w < 0 {
			return fmt.Errorf("core: negative workload %d for app %d", w, i)
		}
	}
	return nil
}
