package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
)

// rampTrace builds a demand ramp: light warm-up, then a heavy phase.
func rampTrace(apps, edges, warm, heavy, lightLoad, heavyLoad int) [][][]int {
	out := make([][][]int, warm+heavy)
	for t := range out {
		out[t] = make([][]int, apps)
		for i := range out[t] {
			out[t][i] = make([]int, edges)
			for k := range out[t][i] {
				if t < warm {
					out[t][i][k] = lightLoad
				} else {
					out[t][i][k] = heavyLoad
				}
			}
		}
	}
	return out
}

func TestMaybePreloadMechanism(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps, Preload: true})
	if err != nil {
		t.Fatal(err)
	}
	// Seed predicted demand at edge 0 above the threshold; edge 1 below it.
	s.ewma[0][0] = 40
	s.ewma[0][1] = 1
	// Edge 0 currently holds only v0; the plan this slot redeploys v0.
	s.prev[0][[2]int{0, 0}] = true
	plan := &edgesim.Plan{Deployments: []edgesim.Deployment{
		{App: 0, Version: 0, Edge: 0, Requests: 10, BatchSizes: []int{10}},
	}}
	// Zero arrivals this slot: the EWMA decays but stays over threshold.
	s.maybePreload(0, [][]int{{0, 0, 0}}, plan)
	if len(plan.Preloads) == 0 {
		t.Fatalf("expected a preload for the predicted-hot edge; ewma=%v", s.ewma[0])
	}
	found := false
	for _, pl := range plan.Preloads {
		if pl.Edge == 1 {
			t.Fatalf("cold edge must not receive preloads: %+v", pl)
		}
		if pl.Edge == 0 {
			found = true
			if pl.Version <= 0 {
				t.Fatalf("preload should upgrade beyond the resident v0: %+v", pl)
			}
			// It must fit the slot's spare bandwidth.
			if apps[0].Models[pl.Version].CompressedMB > c.BandwidthMBAt(0, 0) {
				t.Fatalf("preload exceeds the slot budget: %+v", pl)
			}
		}
	}
	if !found {
		t.Fatal("no preload at edge 0")
	}
	// Strict end-to-end: plans carrying preloads stay valid.
	s2, _ := New(Config{Cluster: c, Apps: apps, Preload: true, PreloadMinDemand: 1})
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, Seed: 1, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	spy := &preloadSpy{Scheduler: s2}
	if _, err := sim.Run(spy, rampTrace(1, c.N(), 4, 3, 5, 50)); err != nil {
		t.Fatalf("strict run with preloading: %v", err)
	}
}

type preloadSpy struct {
	edgesim.Scheduler
	count int
}

func (p *preloadSpy) Decide(t int, arrivals [][]int) (*edgesim.Plan, error) {
	plan, err := p.Scheduler.Decide(t, arrivals)
	if plan != nil {
		p.count += len(plan.Preloads)
	}
	return plan, err
}

func TestPreloadNeverHurtsOnRamp(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	arr := rampTrace(2, c.N(), 5, 5, 4, 45)
	run := func(preload bool) float64 {
		s, err := New(Config{Cluster: c, Apps: apps, Preload: preload})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(s, arr)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations: %v", res.Violations[0])
		}
		return res.Loss.Total()
	}
	with := run(true)
	without := run(false)
	// Preloading spends only spare bandwidth, so it can only make more model
	// versions resident; allow a small numerical band for solver ties.
	if with > without*1.02 {
		t.Fatalf("preloading hurt the ramp: %v vs %v", with, without)
	}
	t.Logf("loss with preload %.1f vs without %.1f", with, without)
}

func TestPreloadDisabledByDefault(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	s, err := New(Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Decide(0, [][]int{{30, 30, 30}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Preloads) != 0 {
		t.Fatalf("preloads emitted without opt-in: %v", plan.Preloads)
	}
}
