package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// TestStrictValidationOverRandomTraces runs BIRP-family schedulers in the
// simulator's strict mode — any plan violating the Eq. 3–9 constraint system
// aborts the run — across random workload regimes. This is the repository's
// strongest integration property: whatever the load, every emitted plan must
// be exactly feasible.
func TestStrictValidationOverRandomTraces(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	configs := []struct {
		name string
		mod  func(*Config)
	}{
		{"birp", nil},
		{"kneecap", func(cfg *Config) { cfg.KneeCap = true }},
		{"memsum", func(cfg *Config) { cfg.Mem = MemSum }},
		{"singleversion", func(cfg *Config) { cfg.SingleVersion = true }},
		{"max", func(cfg *Config) { cfg.Mode = ModeFixed; cfg.FixedB0 = 16 }},
		{"serial", func(cfg *Config) { cfg.Mode = ModeSerial }},
		{"balanced", func(cfg *Config) { cfg.Redist.BalanceWeight = 3 }},
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, mean := range []float64{5, 45, 120} {
			tr, err := trace.Generate(trace.Config{
				Apps: 2, Edges: c.N(), Slots: 12, Seed: seed,
				MeanPerSlot: mean, Imbalance: 0.9, BurstProb: 0.1, BurstScale: 2.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, cc := range configs {
				cfg := Config{Cluster: c, Apps: apps, DisplayName: cc.name}
				if cc.mod != nil {
					cc.mod(&cfg)
				}
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				sim, err := edgesim.New(edgesim.Config{
					Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: seed, Strict: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sim.Run(s, tr.R); err != nil {
					t.Fatalf("seed %d mean %.0f %s: strict violation: %v", seed, mean, cc.name, err)
				}
			}
		}
	}
}

// TestStrictJointSmall does the same for the joint exact solver.
func TestStrictJointSmall(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	tr, _ := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: 8, Seed: 2, MeanPerSlot: 40, Imbalance: 0.9,
	})
	s, err := New(Config{Cluster: c, Apps: apps, SolveMode: SolveModeJoint})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, Seed: 2, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(s, tr.R); err != nil {
		t.Fatalf("joint strict violation: %v", err)
	}
}
