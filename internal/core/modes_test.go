package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

func TestSingleVersionRestriction(t *testing.T) {
	p := edgeProblem([]int{20, 12}, ModeMerged)
	p.SingleVersion = true
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	perApp := map[int]map[int]bool{}
	for _, d := range asg.Deployments {
		if perApp[d.App] == nil {
			perApp[d.App] = map[int]bool{}
		}
		perApp[d.App][d.Version] = true
	}
	for app, versions := range perApp {
		if len(versions) > 1 {
			t.Fatalf("app %d deployed %d versions under SingleVersion", app, len(versions))
		}
	}
	// Without the restriction, the same heavy instance mixes versions when
	// one model's batch cap or memory binds — verify it CAN mix (so the
	// restriction above is actually binding for the comparison).
	p2 := edgeProblem([]int{20, 12}, ModeMerged)
	p2.SlotMS = 1200 // tight slot forces a mix of cheap and good models
	asg2, err := SolveEdge(p2)
	if err != nil {
		t.Fatal(err)
	}
	_ = asg2 // mixing is allowed but not guaranteed; no assertion here
}

func TestMemSumIsMoreConservative(t *testing.T) {
	// Under MemSum the same workload must never use more peak memory, which
	// shows up as equal-or-worse loss (fewer/smaller batch deployments).
	mk := func(mem MemModel) *EdgeAssignment {
		p := edgeProblem([]int{40, 40}, ModeMerged)
		p.Mem = mem
		tiny := *p.Edge
		tiny.MemoryMB = 2500
		p.Edge = &tiny
		asg, err := SolveEdge(p)
		if err != nil {
			t.Fatal(err)
		}
		return asg
	}
	ts := mk(MemTimeSliced)
	sum := mk(MemSum)
	lossOf := func(a *EdgeAssignment, p *EdgeProblem) float64 {
		var l float64
		for _, d := range a.Deployments {
			l += p.Apps[d.App].Models[d.Version].Loss * float64(d.Requests)
		}
		for i, n := range a.Dropped {
			_ = i
			l += 25 * float64(n)
		}
		return l
	}
	ref := edgeProblem(nil, ModeMerged)
	if lossOf(sum, ref) < lossOf(ts, ref)-1e-9 {
		t.Fatalf("MemSum (%v) should not beat time-sliced (%v)",
			lossOf(sum, ref), lossOf(ts, ref))
	}
}

func TestKneeCapLimitsBatchSizes(t *testing.T) {
	p := edgeProblem([]int{60, 0}, ModeMerged)
	p.KneeCap = true
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range asg.Deployments {
		if len(d.BatchSizes) != 1 {
			t.Fatalf("KneeCap must use a single batch: %+v", d)
		}
		if float64(d.BatchSizes[0]) > 16 {
			t.Fatalf("batch %d exceeds the β̂ cap", d.BatchSizes[0])
		}
	}
	// The knee-capped capacity per app is Σ_j β̂; overload must drop.
	served := 0
	for _, d := range asg.Deployments {
		served += d.Requests
	}
	if served+asg.Dropped[0] != 60 {
		t.Fatalf("conservation broken: %d + %d != 60", served, asg.Dropped[0])
	}
}

func TestMultiBatchSplitsLargeWorkload(t *testing.T) {
	p := edgeProblem([]int{100, 0}, ModeMerged)
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	multi := false
	for _, d := range asg.Deployments {
		if len(d.BatchSizes) > 1 {
			multi = true
			total := 0
			for _, b := range d.BatchSizes {
				total += b
			}
			if total < d.Requests {
				t.Fatalf("batches cover %d of %d", total, d.Requests)
			}
		}
	}
	if !multi {
		t.Fatal("100 requests should need multiple physical batches")
	}
	if asg.Dropped[0] != 0 {
		t.Fatalf("multi-batch mode dropped %d of a servable load", asg.Dropped[0])
	}
}

func TestPenaltyOverridesChangeBehaviour(t *testing.T) {
	// With a sky-high overflow price and a cheap drop, an impossible load is
	// shed; with a cheap overflow price it is served late.
	mk := func(drop, ov float64) *EdgeAssignment {
		p := edgeProblem([]int{300, 300}, ModeMerged)
		p.SlotMS = 300
		p.DropPenalty = drop
		p.OverflowPenaltyPerMS = ov
		asg, err := SolveEdge(p)
		if err != nil {
			t.Fatal(err)
		}
		return asg
	}
	shed := mk(0.6, 50)
	late := mk(1000, 0.0001)
	if shed.Dropped[0]+shed.Dropped[1] == 0 {
		t.Fatal("cheap drops + dear overflow must shed load")
	}
	if late.Dropped[0]+late.Dropped[1] != 0 {
		t.Fatal("dear drops + cheap overflow must serve everything")
	}
	if late.OverflowMS <= 0 {
		t.Fatal("late plan must overflow")
	}
}

func TestSchedulerWithSingleVersionEndToEnd(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	s, err := New(Config{Cluster: c, Apps: apps, SingleVersion: true, DisplayName: "SV"})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.Generate(trace.Config{
		Apps: 2, Edges: c.N(), Slots: 10, Seed: 1, MeanPerSlot: 20, Imbalance: 0.5,
	})
	res, err := sim.Run(s, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestMemSumSchedulerEndToEnd(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps, Mem: MemSum})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: 10, Seed: 2, MeanPerSlot: 30, Imbalance: 0.5,
	})
	res, err := sim.Run(s, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	// MemSum plans satisfy the (looser) time-sliced validator a fortiori.
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestKneeCapSchedulerEndToEnd(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps, KneeCap: true})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: 10, Seed: 3, MeanPerSlot: 15, Imbalance: 0.5,
	})
	res, err := sim.Run(s, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestBottleneckDiagnostics(t *testing.T) {
	// Roomy instance: nothing binds.
	easy := edgeProblem([]int{4, 0}, ModeMerged)
	asg, err := SolveEdge(easy)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Bottleneck != "none" {
		t.Fatalf("easy instance bottleneck = %q (%v)", asg.Bottleneck, asg.Utilizations)
	}
	for name, u := range asg.Utilizations {
		if u < 0 || u > 1.5 {
			t.Fatalf("%s utilization %v implausible", name, u)
		}
	}
	// Compute-starved instance: compute binds.
	tight := edgeProblem([]int{200, 200}, ModeMerged)
	tight.SlotMS = 2000
	asg, err = SolveEdge(tight)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Bottleneck != "compute" {
		t.Fatalf("tight instance bottleneck = %q (%v)", asg.Bottleneck, asg.Utilizations)
	}
	// Ship-starved: only the resident model is usable, bandwidth flagged
	// once any shipping is attempted... with zero budget and nothing
	// resident the solver must reflect bandwidth pressure via utilization 1.
	noship := edgeProblem([]int{10, 0}, ModeMerged)
	noship.ShipBudgetMB = 0.5
	asg, err = SolveEdge(noship)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Utilizations["bandwidth"] > 1+1e-9 {
		t.Fatalf("bandwidth utilization %v exceeds budget", asg.Utilizations["bandwidth"])
	}
}
