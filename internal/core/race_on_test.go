//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation slows Decide by an order of magnitude and
// makes wall-clock assertions meaningless.
const raceEnabled = true
