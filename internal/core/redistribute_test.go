package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/models"
)

func redistArgs() (*cluster.Cluster, []*models.Application, func(ModelKey) bandit.TIRParams, func(ModelKey) float64) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	params := func(ModelKey) bandit.TIRParams { return bandit.TIRParams{Eta: 0.2, Beta: 16, C: 1.6} }
	gamma := func(k ModelKey) float64 {
		m := apps[k.App].Models[k.Version]
		return c.Edges[k.Edge].Device.SingleLatencyMS(m.Profile)
	}
	return c, apps, params, gamma
}

func allocTotals(alloc [][]int) []int {
	out := make([]int, len(alloc))
	for i := range alloc {
		for _, v := range alloc[i] {
			out[i] += v
		}
	}
	return out
}

func TestRedistributePreservesTotals(t *testing.T) {
	c, apps, params, gamma := redistArgs()
	arrivals := [][]int{{12, 0, 3}, {0, 7, 1}}
	red, err := Redistribute(c, apps, arrivals, params, gamma, 0, RedistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := allocTotals(red.Alloc)
	if got[0] != 15 || got[1] != 8 {
		t.Fatalf("allocation totals %v, want [15 8]", got)
	}
	// Transfers must realize the allocation from arrivals exactly.
	net := make([][]int, len(arrivals))
	for i := range arrivals {
		net[i] = append([]int(nil), arrivals[i]...)
	}
	for _, tr := range red.Transfers {
		net[tr.App][tr.From] -= tr.Count
		net[tr.App][tr.To] += tr.Count
		if tr.Count <= 0 {
			t.Fatalf("empty transfer %+v", tr)
		}
	}
	for i := range net {
		for k := range net[i] {
			if net[i][k] != red.Alloc[i][k] {
				t.Fatalf("transfers do not realize allocation at (%d,%d): %d vs %d",
					i, k, net[i][k], red.Alloc[i][k])
			}
		}
	}
}

func TestRedistributeOffloadsHotEdge(t *testing.T) {
	c, apps, params, gamma := redistArgs()
	// Everything lands on edge 0; with three edges and tight slots, stage 1
	// should spread it.
	short := cluster.Small(cluster.WithSlotSeconds(2))
	_ = c
	arrivals := [][]int{{60, 0, 0}, {40, 0, 0}}
	red, err := Redistribute(short, apps, arrivals, params, gamma, 0, RedistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, tr := range red.Transfers {
		if tr.From == 0 {
			moved += tr.Count
		}
	}
	if moved == 0 {
		t.Fatalf("hot edge not offloaded; alloc %v", red.Alloc)
	}
}

func TestRedistributeRespectsBandwidth(t *testing.T) {
	c, apps, params, gamma := redistArgs()
	arrivals := [][]int{{200, 0, 0}, {150, 0, 0}}
	red, err := Redistribute(c, apps, arrivals, params, gamma, 0, RedistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	used := make([]float64, c.N())
	for _, tr := range red.Transfers {
		mb := float64(tr.Count) * apps[tr.App].RequestMB
		used[tr.From] += mb
		used[tr.To] += mb
	}
	for k := range used {
		budget := 0.7 * c.BandwidthMBAt(0, k)
		if used[k] > budget+1e-6 {
			t.Fatalf("edge %d forwarding %v exceeds reserved budget %v", k, used[k], budget)
		}
	}
}

func TestRedistributeZeroArrivals(t *testing.T) {
	c, apps, params, gamma := redistArgs()
	arrivals := [][]int{{0, 0, 0}, {0, 0, 0}}
	red, err := Redistribute(c, apps, arrivals, params, gamma, 0, RedistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Transfers) != 0 {
		t.Fatalf("transfers on empty slot: %v", red.Transfers)
	}
	for _, row := range red.Alloc {
		for _, v := range row {
			if v != 0 {
				t.Fatal("nonzero allocation on empty slot")
			}
		}
	}
}

func TestRedistributeArrivalMismatch(t *testing.T) {
	c, apps, params, gamma := redistArgs()
	if _, err := Redistribute(c, apps, [][]int{{1, 2, 3}}, params, gamma, 0, RedistOptions{}); err == nil {
		t.Fatal("wrong arrivals shape must error")
	}
}

func TestRandomizedRoundingStillConserves(t *testing.T) {
	c, apps, params, gamma := redistArgs()
	arrivals := [][]int{{9, 4, 2}, {3, 3, 3}}
	opt := RedistOptions{RoundRNG: rand.New(rand.NewSource(5))}
	red, err := Redistribute(c, apps, arrivals, params, gamma, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := allocTotals(red.Alloc)
	if got[0] != 15 || got[1] != 9 {
		t.Fatalf("randomized rounding broke totals: %v", got)
	}
}

// Property: rounding preserves per-app totals and non-negativity for any
// fractional serve matrix consistent with arrivals.
func TestQuickRoundAllocConserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		I := 1 + rng.Intn(3)
		K := 1 + rng.Intn(5)
		arrivals := make([][]int, I)
		serve := make([][]float64, I)
		for i := 0; i < I; i++ {
			arrivals[i] = make([]int, K)
			serve[i] = make([]float64, K)
			total := 0
			for k := 0; k < K; k++ {
				arrivals[i][k] = rng.Intn(10)
				total += arrivals[i][k]
			}
			// Random fractional split of the total.
			if total > 0 {
				w := make([]float64, K)
				var sum float64
				for k := range w {
					w[k] = rng.Float64()
					sum += w[k]
				}
				for k := range w {
					serve[i][k] = float64(total) * w[k] / sum
				}
			}
		}
		var rrng *rand.Rand
		if seed%2 == 0 {
			rrng = rand.New(rand.NewSource(seed))
		}
		alloc := roundAlloc(serve, arrivals, rrng)
		for i := 0; i < I; i++ {
			total, allocd := 0, 0
			for k := 0; k < K; k++ {
				if alloc[i][k] < 0 {
					return false
				}
				total += arrivals[i][k]
				allocd += alloc[i][k]
			}
			if total != allocd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchTransfersExactness(t *testing.T) {
	arrivals := [][]int{{10, 0, 0}}
	alloc := [][]int{{2, 5, 3}}
	trs := matchTransfers(arrivals, alloc)
	moved := map[int]int{}
	for _, tr := range trs {
		if tr.From != 0 {
			t.Fatalf("only edge 0 has surplus: %+v", tr)
		}
		moved[tr.To] += tr.Count
	}
	if moved[1] != 5 || moved[2] != 3 {
		t.Fatalf("moved %v, want 5→1 and 3→2", moved)
	}
}
