package core

import (
	"fmt"
	"math"

	"repro/internal/edgesim"
)

// Replan is the online serving layer's windowed re-solve entry point
// (serve.Planner): window[i][k] aggregates the requests attributed to edge
// k for app i since the last re-optimization, collected over windowNS
// virtual nanoseconds. The window is rescaled to the scheduler's slot
// duration — the optimizer prices compute, bandwidth, and memory per slot,
// so feeding it a half-slot window unscaled would halve every demand — and
// then solved as the next slot of an ordinary Decide sequence. That keeps
// the cross-slot reuse layer (incumbent seeding, fingerprint memoization,
// root-basis handoff) carrying across re-optimizations exactly as it does
// across simulator slots: a serving workload whose window repeats hits the
// same memo and warm-start paths the replay benchmarks measure.
func (s *Scheduler) Replan(window [][]int, windowNS int64) (*edgesim.Plan, error) {
	if len(window) != len(s.cfg.Apps) {
		return nil, fmt.Errorf("core: replan window has %d app rows, want %d", len(window), len(s.cfg.Apps))
	}
	slotNS := int64(s.cfg.Cluster.SlotMS()) * int64(1e6)
	scaled := scaleWindow(window, windowNS, slotNS)
	plan, err := s.Decide(s.serveT, scaled)
	if err != nil {
		return nil, err
	}
	s.serveT++
	return plan, nil
}

// scaleWindow converts a windowNS-long arrival aggregate into a per-slot
// demand estimate: each count is scaled by slotNS/windowNS with
// deterministic round-half-away-from-zero, and any bucket that saw at
// least one arrival keeps at least one request — sporadic apps must not
// round out of the plan entirely or they lose all serving capacity until
// they next spike.
func scaleWindow(window [][]int, windowNS, slotNS int64) [][]int {
	out := make([][]int, len(window))
	if windowNS <= 0 || windowNS == slotNS {
		for i := range window {
			out[i] = append([]int(nil), window[i]...)
		}
		return out
	}
	f := float64(slotNS) / float64(windowNS)
	for i := range window {
		out[i] = make([]int, len(window[i]))
		for k, v := range window[i] {
			if v == 0 {
				continue
			}
			scaled := int(math.Floor(float64(v)*f + 0.5))
			if scaled < 1 {
				scaled = 1
			}
			out[i][k] = scaled
		}
	}
	return out
}
