package core

import (
	"sync"

	"repro/internal/bandit"
	"repro/internal/miqp"
	"repro/internal/models"
)

// varSet carries the column indices and per-deployment constants of one
// (app, model) candidate deployment in the per-edge program.
type varSet struct {
	x, served int
	units     int // interpretation depends on mode (batch, count, #batches)
	unitCap   int // upper bound of units
	bStar     int // merged multi-batch: physical batch size
	model     *models.Model
	par       bandit.TIRParams
	gamma     float64
	slopeMS   float64 // merged-mode per-request planned time
	fixedMS   float64 // merged-mode per-deployment fixed planned time
}

// actTerm is one activation-memory contribution to the Eq. 6 budget.
type actTerm struct {
	col  int
	coef float64
}

// edgeScratch is the reusable working storage of one SolveEdge call: the
// model builder, the flat (app, model) variable table, row-assembly buffers,
// and the incumbent/seed point vectors. A scheduler hands each fan-out worker
// its own scratch (EdgeProblem.scratch), so steady-state slot solves of
// same-shaped edges never touch the allocator; callers without one fall back
// to the package pool. Everything here is call-scoped — SolveEdge results
// never alias the scratch.
type edgeScratch struct {
	b     *miqp.Builder
	vars  []varSet
	vsOff []int // vars index of app i's first model; len I+1

	appCols  [][]int // per-app compute-row terms
	appCoefs [][]float64

	weightCols  []int
	weightCoefs []float64
	actTerms    []actTerm
	shipCols    []int
	shipCoefs   []float64

	drops      []int
	classes    []float64
	classSlack []int

	// rowCols/rowCoefs assemble one constraint row at a time (AddEq/AddLe
	// copy into the builder's slab, so sequential reuse is safe).
	rowCols  []int
	rowCoefs []float64

	order     []int // greedyFill model ordering
	inc       []float64
	incRem    []int
	seedPoint []float64
	seedRem   []int
}

var edgeScratchPool = sync.Pool{New: func() interface{} {
	return &edgeScratch{b: miqp.NewBuilder()}
}}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloatsZero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func growVarSets(s []varSet, n int) []varSet {
	if cap(s) < n {
		return make([]varSet, n)
	}
	return s[:n]
}
