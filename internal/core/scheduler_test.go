package core

import (
	"testing"
	"time"

	"repro/internal/bandit"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

func runSim(t *testing.T, sched edgesim.Scheduler, c *cluster.Cluster, apps []*models.Application, slots int, seed int64) *edgesim.Results {
	t.Helper()
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.Config{
		Apps: len(apps), Edges: c.N(), Slots: slots, Seed: seed,
		MeanPerSlot: 6, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sched, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSchedulerEndToEndSmallScale(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	res := runSim(t, s, c, apps, 40, 1)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[:min(3, len(res.Violations))])
	}
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
	if res.Dropped > res.Served/10 {
		t.Fatalf("excessive drops: %d dropped vs %d served", res.Dropped, res.Served)
	}
	if fr := res.FailureRate(); fr > 0.2 {
		t.Fatalf("failure rate %v too high for a light workload", fr)
	}
}

func TestSchedulerObserveFeedsTuner(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	runSim(t, s, c, apps, 30, 2)
	tuner := s.Provider().(*OnlineTuner)
	// At least one (edge, model) key must have moved off the prior.
	moved := false
	for k := range tuner.tuners {
		n1, n2 := tuner.tuners[k].Counts()
		if n1+n2 > 0 {
			moved = true
		}
		_ = k
	}
	if !moved {
		t.Fatal("no TIR observations reached the tuner")
	}
}

func TestSchedulerJointSmallScale(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps, SolveMode: SolveModeJoint, DisplayName: "BIRP-joint"})
	if err != nil {
		t.Fatal(err)
	}
	res := runSim(t, s, c, apps, 15, 3)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[:min(3, len(res.Violations))])
	}
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
}

func TestJointRejectsNonMergedModes(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	s, err := New(Config{Cluster: c, Apps: apps, SolveMode: SolveModeJoint, Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decide(0, [][]int{{1, 0, 0}}); err == nil {
		t.Fatal("joint mode must reject serial execution")
	}
}

func TestJointAndDecomposedAgreeApproximately(t *testing.T) {
	// On a small instance the decomposed solve should land within a modest
	// factor of the exact joint optimum (same workload, same params).
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	prov, err := ProfileOffline(c, apps, 16)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mode SolveMode, name string) *Scheduler {
		s, err := New(Config{Cluster: c, Apps: apps, Provider: prov, SolveMode: mode, DisplayName: name})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	arrivals := [][]int{{14, 2, 1}}
	lossOf := func(s *Scheduler) float64 {
		plan, err := s.Decide(0, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		var l float64
		for _, d := range plan.Deployments {
			l += apps[d.App].Models[d.Version].Loss * float64(d.Requests)
		}
		for i := range plan.Dropped {
			for _, n := range plan.Dropped[i] {
				if n > 0 {
					l += 10 * float64(n)
				}
			}
		}
		return l
	}
	joint := lossOf(mk(SolveModeJoint, "joint"))
	dec := lossOf(mk(SolveModeDecomposed, "dec"))
	if dec < joint-1e-6 {
		t.Fatalf("decomposed (%v) beat the exact joint optimum (%v): joint solve is broken", dec, joint)
	}
	if dec > joint*1.5+1e-6 {
		t.Fatalf("decomposed loss %v too far above joint %v", dec, joint)
	}
}

func TestMAXConfiguration(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps, Mode: ModeFixed, FixedB0: 16, DisplayName: "MAX"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "MAX" {
		t.Fatalf("name = %q", s.Name())
	}
	res := runSim(t, s, c, apps, 20, 4)
	if res.Served == 0 {
		t.Fatal("MAX served nothing")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[:min(3, len(res.Violations))])
	}
}

func TestBIRPBeatsMAXOnLoss(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	birp, _ := New(Config{Cluster: c, Apps: apps})
	max, _ := New(Config{Cluster: c, Apps: apps, Mode: ModeFixed, FixedB0: 16, DisplayName: "MAX"})
	rb := runSim(t, birp, c, apps, 60, 7)
	rm := runSim(t, max, c, apps, 60, 7)
	if rb.Loss.Total() >= rm.Loss.Total() {
		t.Fatalf("BIRP loss %v should beat MAX loss %v", rb.Loss.Total(), rm.Loss.Total())
	}
}

func TestLargeScaleDecideUnderTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("wall-clock threshold is meaningless under the race detector")
	}
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	s, err := New(Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.Generate(trace.DefaultConfig())
	start := time.Now()
	slots := 5
	for tt := 0; tt < slots; tt++ {
		if _, err := s.Decide(tt, tr.R[tt]); err != nil {
			t.Fatal(err)
		}
	}
	per := time.Since(start) / time.Duration(slots)
	t.Logf("large-scale Decide: %v per slot", per)
	if per > 500*time.Millisecond {
		t.Fatalf("Decide too slow for 300-slot runs: %v per slot", per)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkSolveEdgeLarge(b *testing.B) {
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	prov := NewOnlineTuner(0.04, 0.07)
	p := &EdgeProblem{
		Edge: c.Edges[0], EdgeIdx: 0, Apps: apps,
		Workload: []int{30, 25, 40, 15, 35},
		Params: func(i, j int) bandit.TIRParams {
			return prov.Params(ModelKey{Edge: 0, App: i, Version: j})
		},
		GammaMS: func(i, j int) float64 {
			return c.Edges[0].Device.SingleLatencyMS(apps[i].Models[j].Profile)
		},
		SlotMS: c.SlotMS(), ShipBudgetMB: 300,
		PrevDeployed: map[[2]int]bool{},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEdge(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRedistributeLarge(b *testing.B) {
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	prov := NewOnlineTuner(0.04, 0.07)
	gamma := func(k ModelKey) float64 {
		return c.Edges[k.Edge].Device.SingleLatencyMS(apps[k.App].Models[k.Version].Profile)
	}
	tr, err := trace.Generate(trace.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Redistribute(c, apps, tr.R[i%tr.Slots], prov.Params, gamma, i, RedistOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
