package core

import (
	"fmt"
	"math"

	"repro/internal/edgesim"
	"repro/internal/miqp"
	"repro/internal/par"
)

// decideJoint builds and solves the paper's full per-slot program P1/P2 over
// all edges at once: redistribution (y via out/in flows), model deployment
// (x), and batch sizing (b), with the Eq. 24/25 Taylor linearization of the
// computation constraint. Exact branch and bound — this is the faithful
// Gurobi-equivalent path, used at small scale and by the abl-solver bench.
func (s *Scheduler) decideJoint(t int, arrivals [][]int) (*edgesim.Plan, error) {
	if s.cfg.Mode != ModeMerged {
		return nil, fmt.Errorf("core: joint solver supports ModeMerged only, got %v", s.cfg.Mode)
	}
	c := s.cfg.Cluster
	I := len(s.cfg.Apps)
	K := c.N()
	maxBatch := s.cfg.MaxBatch
	if maxBatch == 0 {
		maxBatch = DefaultMaxBatch
	}
	nodes := s.cfg.SolveNodes
	if nodes == 0 {
		nodes = 20000
	}
	transferCost := orDefault(s.cfg.Redist.TransferCost, 1e-3)
	dropPen := orDefault(s.cfg.DropPenalty, DefaultDropPenalty)
	ovPen := orDefault(s.cfg.OverflowPenaltyPerMS, DefaultOverflowPenaltyPerMS)

	totalPerApp := make([]int, I)
	for i := 0; i < I; i++ {
		for k := 0; k < K; k++ {
			totalPerApp[i] += arrivals[i][k]
		}
	}

	b := miqp.NewBuilder()
	type cell struct {
		x, bb int
		eta   float64
		bStar int
	}
	cells := map[[3]int]*cell{} // (i, j, k)
	outV := make([][]int, I)
	inV := make([][]int, I)
	dropV := make([][]int, I)

	// Per-(edge, app) compute terms feed the nested SLO-class budgets below.
	computeCols := make([][][]int, K)
	computeCoefs := make([][][]float64, K)
	for k := 0; k < K; k++ {
		computeCols[k] = make([][]int, I)
		computeCoefs[k] = make([][]float64, I)
	}
	weightCols := make([][]int, K)
	weightCoefs := make([][]float64, K)
	type actTerm struct {
		col  int
		coef float64
	}
	actTerms := make([][]actTerm, K)
	bwCols := make([][]int, K)
	bwCoefs := make([][]float64, K)

	for i := 0; i < I; i++ {
		outV[i] = make([]int, K)
		inV[i] = make([]int, K)
		dropV[i] = make([]int, K)
		for k := 0; k < K; k++ {
			outV[i][k] = b.AddVar(fmt.Sprintf("out_%d_%d", i, k), 0, float64(arrivals[i][k]), true)
			inV[i][k] = b.AddVar(fmt.Sprintf("in_%d_%d", i, k), 0, float64(totalPerApp[i]), true)
			dropV[i][k] = b.AddVar(fmt.Sprintf("d_%d_%d", i, k), 0, float64(arrivals[i][k])+float64(totalPerApp[i]), true)
			b.SetObj(outV[i][k], transferCost)
			b.SetObj(inV[i][k], transferCost)
			b.SetObj(dropV[i][k], dropPen)
			// Forwarding charges both endpoints' bandwidth (Eq. 9).
			bwCols[k] = append(bwCols[k], outV[i][k], inV[i][k])
			bwCoefs[k] = append(bwCoefs[k], s.cfg.Apps[i].RequestMB, s.cfg.Apps[i].RequestMB)
		}
	}
	for i := 0; i < I; i++ {
		if totalPerApp[i] == 0 {
			continue
		}
		for j, m := range s.cfg.Apps[i].Models {
			for k := 0; k < K; k++ {
				key := ModelKey{Edge: k, App: i, Version: j}
				par := s.provider.Params(key)
				gamma := s.gamma(key)
				// Batch regime mirrors SolveEdge: paper-literal single batch
				// under KneeCap, multi-batch at b* otherwise.
				ub := totalPerApp[i]
				bStar := maxBatch
				if memCap := int((0.5*c.Edges[k].MemoryMB - m.WeightsMB) / m.IntermediateMB); bStar > memCap {
					bStar = memCap
				}
				if bStar < 1 {
					bStar = 1
				}
				slope := gamma / math.Max(par.TIR(float64(bStar)), 1)
				fixed := 0.5 * slope * float64(bStar) // expected ⌈n/b*⌉ quantization cost
				if s.cfg.KneeCap {
					ub = int(math.Min(par.Beta, float64(maxBatch)))
					slope = gamma * (1 - par.Eta)
					bStar = ub
					fixed = gamma * par.Eta
				}
				if ub > totalPerApp[i] {
					ub = totalPerApp[i]
				}
				if ub < 1 {
					ub = 1
				}
				x := b.AddBinary(fmt.Sprintf("x_%d_%d_%d", i, j, k))
				bb := b.AddVar(fmt.Sprintf("b_%d_%d_%d", i, j, k), 0, float64(ub), true)
				b.AddLe([]int{bb, x}, []float64{1, -float64(ub)}, 0) // Eq. 4
				b.SetObj(bb, m.Loss)                                 // Eq. 10 (x·b collapses to b)
				cells[[3]int{i, j, k}] = &cell{x: x, bb: bb, eta: par.Eta, bStar: bStar}
				computeCols[k][i] = append(computeCols[k][i], bb, x)
				computeCoefs[k][i] = append(computeCoefs[k][i], slope, fixed)
				weightCols[k] = append(weightCols[k], x)
				weightCoefs[k] = append(weightCoefs[k], m.WeightsMB)
				if s.cfg.KneeCap {
					actTerms[k] = append(actTerms[k], actTerm{bb, m.IntermediateMB})
				} else {
					actTerms[k] = append(actTerms[k], actTerm{x, m.IntermediateMB * float64(bStar)})
				}
				if !s.prev[k][[2]int{i, j}] {
					// Eq. 9's [x^t − x^{t-1}]⁺ shipping term (P1 vs P2 split).
					bwCols[k] = append(bwCols[k], x)
					bwCoefs[k] = append(bwCoefs[k], m.CompressedMB)
				}
			}
		}
	}

	// Conservation per (i, k): Σ_j b + d + out − in = arrivals (Eq. 3/5).
	for i := 0; i < I; i++ {
		for k := 0; k < K; k++ {
			cols := []int{dropV[i][k], outV[i][k], inV[i][k]}
			coefs := []float64{1, 1, -1}
			for j := range s.cfg.Apps[i].Models {
				if cl, ok := cells[[3]int{i, j, k}]; ok {
					cols = append(cols, cl.bb)
					coefs = append(coefs, 1)
				}
			}
			b.AddEq(cols, coefs, float64(arrivals[i][k]))
		}
		// Flow balance: Σ_k out = Σ_k in.
		cols := make([]int, 0, 2*K)
		coefs := make([]float64, 0, 2*K)
		for k := 0; k < K; k++ {
			cols = append(cols, outV[i][k], inV[i][k])
			coefs = append(coefs, 1, -1)
		}
		b.AddEq(cols, coefs, 0)
	}
	// Per-edge resources.
	slotMS := c.SlotMS()
	classes := sloClasses(s.cfg.Apps, totalPerApp)
	for k := 0; k < K; k++ {
		// Nested SLO-class budgets (Eq. 25 generalized; see SolveEdge).
		for ci, f := range classes {
			var cols []int
			var coefs []float64
			for i := 0; i < I; i++ {
				if s.cfg.Apps[i].SLO() > f+1e-12 {
					continue
				}
				cols = append(cols, computeCols[k][i]...)
				coefs = append(coefs, computeCoefs[k][i]...)
			}
			if len(cols) == 0 {
				continue
			}
			slack := b.AddVar(fmt.Sprintf("ov_%d_%d", k, ci), 0, math.Inf(1), false)
			b.SetObj(slack, ovPen)
			cols = append(cols, slack)
			coefs = append(coefs, -1)
			b.AddLe(cols, coefs, f*slotMS)
		}
		if len(weightCols[k]) > 0 { // Eq. 6, per the configured memory model
			if s.cfg.Mem == MemSum {
				cols := append([]int{}, weightCols[k]...)
				coefs := append([]float64{}, weightCoefs[k]...)
				for _, a := range actTerms[k] {
					cols = append(cols, a.col)
					coefs = append(coefs, a.coef)
				}
				b.AddLe(cols, coefs, c.Edges[k].MemoryMB)
			} else {
				for _, a := range actTerms[k] {
					cols := append([]int{}, weightCols[k]...)
					coefs := append([]float64{}, weightCoefs[k]...)
					cols = append(cols, a.col)
					coefs = append(coefs, a.coef)
					b.AddLe(cols, coefs, c.Edges[k].MemoryMB)
				}
			}
		}
		if len(bwCols[k]) > 0 {
			b.AddLe(bwCols[k], bwCoefs[k], c.BandwidthMBAt(t, k)) // Eq. 9
		}
	}

	prob := b.Build()
	// Seed the drop-everything incumbent (always feasible) so the search is
	// pruned from the start and a plan exists even at the node budget.
	inc := make([]float64, b.NumVars())
	for i := 0; i < I; i++ {
		for k := 0; k < K; k++ {
			inc[dropV[i][k]] = float64(arrivals[i][k])
		}
	}
	res, err := miqp.SolveOpts(prob, miqp.Options{
		MaxNodes:      nodes,
		Incumbent:     inc,
		GapTol:        1e-6, // exact: the joint path is the reference solver
		Workers:       par.CapWorkers(s.cfg.Workers),
		DenseEngine:   s.cfg.DenseEngine,
		NoFactorReuse: s.cfg.NoFactorReuse,
	})
	if err != nil {
		return nil, fmt.Errorf("core: joint solve: %w", err)
	}
	if res.X == nil {
		return nil, fmt.Errorf("core: joint solve found no incumbent (status %v)", res.Status)
	}
	s.solver.Add(res.Stats)

	plan := &edgesim.Plan{Dropped: make([][]int, I), Solver: &res.Stats}
	iv := func(col int) int { return int(math.Round(res.X[col])) }
	outN := make([][]int, I)
	inN := make([][]int, I)
	for i := 0; i < I; i++ {
		plan.Dropped[i] = make([]int, K)
		outN[i] = make([]int, K)
		inN[i] = make([]int, K)
		for k := 0; k < K; k++ {
			plan.Dropped[i][k] = iv(dropV[i][k])
			outN[i][k] = iv(outV[i][k])
			inN[i][k] = iv(inV[i][k])
		}
		for j := range s.cfg.Apps[i].Models {
			for k := 0; k < K; k++ {
				cl, ok := cells[[3]int{i, j, k}]
				if !ok {
					continue
				}
				served := iv(cl.bb)
				if served <= 0 {
					continue
				}
				var sizes []int
				for left := served; left > 0; left -= cl.bStar {
					bsz := cl.bStar
					if left < bsz {
						bsz = left
					}
					sizes = append(sizes, bsz)
				}
				plan.Deployments = append(plan.Deployments, edgesim.Deployment{
					App: i, Version: j, Edge: k, Requests: served,
					BatchSizes: sizes,
				})
			}
		}
	}
	// Realize out/in flows as pairwise transfers: build the implied
	// allocation and match surpluses to deficits.
	alloc := make([][]int, I)
	for i := 0; i < I; i++ {
		alloc[i] = make([]int, K)
		for k := 0; k < K; k++ {
			alloc[i][k] = arrivals[i][k] - outN[i][k] + inN[i][k]
		}
	}
	plan.Transfers = matchTransfers(arrivals, alloc)
	s.noteDeployments(plan)
	return plan, nil
}
