package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/miqp"
	"repro/internal/models"
	"repro/internal/trace"
)

// TestSlotLoopAllocBudget enforces the steady-state allocation budget of the
// closed Decide loop (the BenchmarkSlotLoop path): once the scheduler's
// scratch pools, slot buffers, and the LP arenas are warm, a slot decision
// must stay under an explicit allocs-per-op ceiling. The ceiling (300) sits
// above the measured steady state (~200) to absorb map rehashes and the
// occasional memo-miss resolve, but far below the pre-pooling baseline (938),
// so a leak that reintroduces per-slot churn fails loudly.
func TestSlotLoopAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted by the race detector's shadow allocations")
	}
	const budget = 300
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: 64, Seed: 3,
		MeanPerSlot: 60, Imbalance: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: c, Apps: apps, Workers: 1, Provider: NewOnlineTuner(0.04, 0.07)})
	if err != nil {
		t.Fatal(err)
	}
	// Warm phase: one full pass over the trace grows every pool to its
	// steady-state size (scratch slabs, slot buffers, memo entries).
	slot := 0
	decide := func() {
		if _, err := s.Decide(slot%64, tr.R[slot%64]); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		slot++
	}
	for i := 0; i < 64; i++ {
		decide()
	}
	if got := testing.AllocsPerRun(64, decide); got > budget {
		t.Fatalf("steady-state slot decision allocates %.1f objects/op, budget %d", got, budget)
	}
}

// TestFactorReuseKnobPlanEquivalence pins the determinism contract of the
// persistent-factorization handoff on the fig7 workload (5 apps × 5 versions
// on the six-edge default cluster): Config.NoFactorReuse must be plan-neutral
// AND search-neutral. Reusing a parent basis's LU factors is bit-identical to
// refactorizing the same basis, so toggling the knob may only move the work
// counters (Refactorizations, FactorReuses) — plans, node counts, and pivot
// counts must not change. A drift in nodes or pivots would mean reuse altered
// the numerics, not just the accounting.
func TestFactorReuseKnobPlanEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	tr, err := trace.Generate(trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(noReuse bool) ([]*edgePlanSeq, miqp.Stats) {
		s, err := New(Config{Cluster: c, Apps: apps, Workers: 1, NoFactorReuse: noReuse})
		if err != nil {
			t.Fatal(err)
		}
		var plans []*edgePlanSeq
		for tt := 0; tt < 4; tt++ {
			p, err := s.Decide(tt, tr.R[tt])
			if err != nil {
				t.Fatalf("noReuse=%v slot %d: %v", noReuse, tt, err)
			}
			// The plan's attached per-slot Solver stats carry the two work
			// counters the knob moves by design; the aggregate comparison
			// below checks them explicitly, so neutralize them here and hold
			// the rest of the plan (and its remaining counters) to identity.
			p.Solver.Refactorizations = 0
			p.Solver.FactorReuses = 0
			plans = append(plans, &edgePlanSeq{slot: tt, plan: p})
		}
		return plans, s.SolverStats()
	}
	withReuse, on := run(false)
	without, off := run(true)
	if !reflect.DeepEqual(withReuse, without) {
		for i := range withReuse {
			if !reflect.DeepEqual(withReuse[i], without[i]) {
				t.Fatalf("slot %d: plans diverged across the NoFactorReuse knob\nreuse on:  %+v\nreuse off: %+v",
					i, withReuse[i].plan, without[i].plan)
			}
		}
		t.Fatal("plan sequences diverged across the NoFactorReuse knob")
	}
	if off.FactorReuses != 0 {
		t.Fatalf("NoFactorReuse run still reused factors %d times", off.FactorReuses)
	}
	if on.FactorReuses == 0 {
		t.Fatal("reuse-enabled run never reused a factorization; the knob test is vacuous")
	}
	// Neutralize the two counters the knob is allowed to move, then demand
	// every remaining counter — nodes, relaxations, pivots, dual work, eta
	// updates, presolve and reuse provenance — be bit-identical.
	on.Refactorizations, off.Refactorizations = 0, 0
	on.FactorReuses, off.FactorReuses = 0, 0
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("search counters moved with the NoFactorReuse knob\nreuse on:  %+v\nreuse off: %+v", on, off)
	}
}

// edgePlanSeq pairs a plan with its slot for the equivalence diff output.
type edgePlanSeq struct {
	slot int
	plan interface{}
}
