package core

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/models"
)

func TestScaleWindow(t *testing.T) {
	slotNS := int64(10e9)
	cases := []struct {
		name     string
		window   [][]int
		windowNS int64
		want     [][]int
	}{
		{
			name:     "equal window passes through",
			window:   [][]int{{4, 0}, {1, 3}},
			windowNS: slotNS,
			want:     [][]int{{4, 0}, {1, 3}},
		},
		{
			name:     "half window doubles",
			window:   [][]int{{4, 1}},
			windowNS: slotNS / 2,
			want:     [][]int{{8, 2}},
		},
		{
			name:     "double window halves with rounding",
			window:   [][]int{{4, 3}},
			windowNS: 2 * slotNS,
			want:     [][]int{{2, 2}}, // 1.5 rounds half-away to 2
		},
		{
			name:     "sporadic demand never rounds to zero",
			window:   [][]int{{1, 0}},
			windowNS: 100 * slotNS,
			want:     [][]int{{1, 0}},
		},
		{
			name:     "degenerate window passes through",
			window:   [][]int{{2, 5}},
			windowNS: 0,
			want:     [][]int{{2, 5}},
		},
	}
	for _, tc := range cases {
		got := scaleWindow(tc.window, tc.windowNS, slotNS)
		for i := range tc.want {
			for k := range tc.want[i] {
				if got[i][k] != tc.want[i][k] {
					t.Errorf("%s: cell (%d,%d) = %d, want %d", tc.name, i, k, got[i][k], tc.want[i][k])
				}
			}
		}
	}
	// The scaled copy must never alias the caller's window.
	in := [][]int{{1, 2}}
	out := scaleWindow(in, slotNS, slotNS)
	out[0][0] = 99
	if in[0][0] != 1 {
		t.Fatal("scaleWindow aliased its input")
	}
}

func TestReplanShapeValidation(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replan([][]int{{1, 1, 1}, {1, 1, 1}}, 1e9); err == nil {
		t.Fatal("wrong app-row count accepted")
	}
	if _, err := s.Replan([][]int{{1, 1}}, 1e9); err == nil {
		t.Fatal("wrong edge-cell count accepted")
	}
}

// TestReplanSequencesAsSlots pins the serving entry point's contract:
// consecutive Replan calls behave as consecutive Decide slots (monotone
// internal slot index, reuse layer engaged) and produce plans covering the
// scaled demand.
func TestReplanSequencesAsSlots(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	window := [][]int{{3, 2, 4}}
	slotNS := int64(c.SlotMS()) * int64(1e6)
	for round := 0; round < 3; round++ {
		plan, err := s.Replan(window, slotNS/2) // half-slot window → demand ×2
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assigned := 0
		for _, d := range plan.Deployments {
			assigned += d.Requests
		}
		dropped := 0
		if plan.Dropped != nil {
			for i := range plan.Dropped {
				for _, n := range plan.Dropped[i] {
					dropped += n
				}
			}
		}
		// Scaled demand is 2×(3+2+4) = 18; every request must be planned
		// (assigned or an explicit drop — never silently lost).
		if assigned+dropped != 18 {
			t.Fatalf("round %d: assigned %d + dropped %d != scaled demand 18", round, assigned, dropped)
		}
	}
	if s.serveT != 3 {
		t.Fatalf("serve slot index %d after 3 replans, want 3", s.serveT)
	}
}

// TestHierarchicalDenseEngineComposes pins the flag-validation audit's
// finding: -dense -hier is NOT contradictory — hierarchical sub-schedulers
// inherit DenseEngine (hierarchy.go copies the parent config), so the
// combination A/Bs the dense LP engine inside every domain. Both engine
// choices certify the same optima, so the composed run must stay
// byte-identical across worker counts like any other configuration.
func TestHierarchicalDenseEngineComposes(t *testing.T) {
	c := cluster.Default()
	apps := models.Catalogue(1, 3)
	run := func(workers int) []byte {
		s, err := New(Config{
			Cluster: c, Apps: apps, Workers: workers,
			Domains: 3, DenseEngine: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s.hier == nil {
			t.Fatal("Domains=3 did not enable hierarchical mode")
		}
		for _, sub := range s.hier.subs {
			if !sub.cfg.DenseEngine {
				t.Fatal("DenseEngine not inherited by a domain sub-scheduler")
			}
		}
		var out []byte
		for tt := 0; tt < 4; tt++ {
			plan, err := s.Decide(tt, [][]int{{5, 2, 7, 1, 4, 3}})
			if err != nil {
				t.Fatalf("workers=%d slot %d: %v", workers, tt, err)
			}
			out = append(out, []byte(fmt.Sprintf("%+v\n", plan))...)
		}
		return out
	}
	if got1, got4 := run(1), run(4); string(got1) != string(got4) {
		t.Fatal("dense+hierarchical plans diverged across worker counts")
	}
}
