package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// planRecorder captures every plan a scheduler emits during a simulated run,
// so two runs can be compared decision-by-decision.
type planRecorder struct {
	*Scheduler
	plans []*edgesim.Plan
}

func (r *planRecorder) Decide(t int, arrivals [][]int) (*edgesim.Plan, error) {
	p, err := r.Scheduler.Decide(t, arrivals)
	if err == nil {
		r.plans = append(r.plans, p)
	}
	return p, err
}

// recordRun drives a freshly-built scheduler with the given worker count
// through a seeded closed-loop simulation (Decide + Observe feedback every
// slot) and returns the full plan sequence.
func recordRun(t *testing.T, c *cluster.Cluster, apps []*models.Application, workers, slots int, seed int64, mode SolveMode) []*edgesim.Plan {
	t.Helper()
	s, err := New(Config{
		Cluster: c, Apps: apps, Workers: workers, SolveMode: mode,
		Provider: NewOnlineTuner(0.04, 0.07),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &planRecorder{Scheduler: s}
	runSim(t, rec, c, apps, slots, seed)
	return rec.plans
}

// TestDecideWorkerCountInvariantSmallScale is the PR's headline determinism
// claim at the scheduler level: with identical seeds, a Workers:8 scheduler
// must emit plans byte-identical to a Workers:1 scheduler over a closed-loop
// run where every slot's tuner feedback depends on the previous decisions —
// so a single divergent decision would cascade and be caught.
func TestDecideWorkerCountInvariantSmallScale(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	serial := recordRun(t, c, apps, 1, 25, 9, SolveModeDecomposed)
	par := recordRun(t, c, apps, 8, 25, 9, SolveModeDecomposed)
	if !reflect.DeepEqual(serial, par) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Fatalf("slot %d: plans diverged\nserial: %+v\npar:    %+v", i, serial[i], par[i])
			}
		}
		t.Fatalf("plan sequences diverged (lengths %d vs %d)", len(serial), len(par))
	}
}

// TestDecideWorkerCountInvariantJoint repeats the invariance check through
// the joint exact program, whose branch and bound runs with the full worker
// pool rather than splitting it across edges.
func TestDecideWorkerCountInvariantJoint(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	serial := recordRun(t, c, apps, 1, 10, 5, SolveModeJoint)
	par := recordRun(t, c, apps, 8, 10, 5, SolveModeJoint)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("joint-mode plans diverged across worker counts")
	}
}

// TestDecideWorkerCountInvariantLargeScale runs the paper's large-scale
// instance (6 edges × 5 apps × 5 versions) for a few open-loop slots: this
// is the configuration where the per-edge fan-out actually dispatches
// concurrent MILPs and the drop-repair loop re-solves dirty edges.
func TestDecideWorkerCountInvariantLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	tr, err := trace.Generate(trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []*edgesim.Plan {
		s, err := New(Config{Cluster: c, Apps: apps, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var plans []*edgesim.Plan
		for tt := 0; tt < 4; tt++ {
			p, err := s.Decide(tt, tr.R[tt])
			if err != nil {
				t.Fatalf("workers=%d slot %d: %v", workers, tt, err)
			}
			plans = append(plans, p)
		}
		return plans
	}
	serial := run(1)
	par := run(8)
	if !reflect.DeepEqual(serial, par) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Fatalf("slot %d: large-scale plans diverged\nserial: %+v\npar:    %+v", i, serial[i], par[i])
			}
		}
		t.Fatal("large-scale plan sequences diverged")
	}
}
