package core

import (
	"math"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/miqp"
	"repro/internal/par"
)

// defaultCoordRounds bounds the coordinator's cross-domain balancing passes
// per slot when Config.CoordRounds is zero. Two rounds settle the bulk of the
// imbalance (the first pairs extremes, the second catches what the first
// round's bandwidth limits deferred); further rounds rarely move anything.
const defaultCoordRounds = 2

// coordBwShare is the fraction of the stage-1 forwarding budget
// (BwFrac · N^t_k) the coordinator may spend on cross-domain transfers at any
// single edge. Capping it below 1 guarantees every domain solver still has
// forwarding room for intra-domain redistribution even at edges the
// coordinator leaned on.
const coordBwShare = 0.5

// hierState is the hierarchical decomposition of a scheduler: the fleet is
// partitioned into bounded-size collaboration domains, each owning a full
// monolithic sub-scheduler over a restricted cluster view, plus the caches the
// top-level coordinator needs to settle cross-domain workload flow.
//
// Determinism argument (the Workers-invariance contract extends to
// hierarchical mode):
//
//  1. The partition (cluster.Partition) is a pure function of the edge specs.
//  2. The coordinator runs serially before any fan-out, iterates domains,
//     edges, and apps in fixed index order, and reads only deterministic
//     inputs (arrivals, the γ cache, per-slot bandwidth draws, down flags) —
//     so the cross-domain transfers and reserved-bandwidth vectors are
//     byte-identical across runs and worker counts.
//  3. Each domain solve is the existing decomposed path, already byte-identical
//     across worker counts; domains touch disjoint state (own sub-scheduler,
//     own cluster view, own reuse layer), so running them concurrently cannot
//     interact. The shared TIR provider is warmed over every (edge, app,
//     version) key at construction, after which concurrent Params reads are
//     pure map lookups (bandit.Tuner.Params mutates nothing).
//  4. The merge gathers domain plans in domain index order.
//
// Warming the provider at construction is state-equivalent to the monolithic
// scheduler: monolithic stage 1 touches every (i, j, k) key in its first
// Decide, and a tuner created at t=0 that receives every subsequent broadcast
// Tick is indistinguishable from one lazily created at its first read.
type hierState struct {
	domains  [][]int // global edge indices per domain, each ascending
	domainOf []int   // global edge index -> domain index
	localOf  []int   // global edge index -> index within its domain
	subs     []*Scheduler
	rounds   int
	outer    int // concurrent domain solves (par.TwoLevel outer width)
	// gamma[k][i][j] caches the γ predictor for every global (edge, app,
	// version) so concurrent domain solves never invoke a caller-supplied
	// GammaMS func in parallel. minGamma[i][k] = min_j gamma[k][i][j] is the
	// coordinator's optimistic per-request cost estimate (Eq. 3 currency).
	gamma    [][][]float64
	minGamma [][]float64
}

// domainProvider presents a domain's local edge indices to a sub-scheduler
// while reading the fleet-wide shared provider. Tick is a no-op: the outer
// Decide ticks the shared provider exactly once per slot, and the sub-
// schedulers' Decide (which would tick again) is bypassed in favor of their
// decideDecomposed core.
type domainProvider struct {
	p      ParamsProvider
	global []int // local edge index -> global edge index
}

func (dp *domainProvider) Params(k ModelKey) bandit.TIRParams {
	k.Edge = dp.global[k.Edge]
	return dp.p.Params(k)
}

func (dp *domainProvider) Observe(k ModelKey, batch int, tir float64) {
	k.Edge = dp.global[k.Edge]
	dp.p.Observe(k, batch, tir)
}

func (dp *domainProvider) Tick() {}

// newHierState partitions s's fleet and builds one monolithic sub-scheduler
// per domain. Called from New after the top-level scheduler is fully reset.
func newHierState(s *Scheduler) (*hierState, error) {
	c := s.cfg.Cluster
	K := c.N()
	I := len(s.cfg.Apps)
	h := &hierState{
		domains:  clusterPartition(s),
		domainOf: make([]int, K),
		localOf:  make([]int, K),
		rounds:   s.cfg.CoordRounds,
	}
	if h.rounds <= 0 {
		h.rounds = defaultCoordRounds
	}
	for d, dom := range h.domains {
		for li, gk := range dom {
			h.domainOf[gk] = d
			h.localOf[gk] = li
		}
	}

	// Warm the shared provider over every key (serially — first reads
	// materialize tuner state) and cache γ while we're at it.
	h.gamma = make([][][]float64, K)
	h.minGamma = make([][]float64, I)
	for i := range h.minGamma {
		h.minGamma[i] = make([]float64, K)
	}
	for k := 0; k < K; k++ {
		h.gamma[k] = make([][]float64, I)
		for i, app := range s.cfg.Apps {
			h.gamma[k][i] = make([]float64, len(app.Models))
			best := math.Inf(1)
			for j := range app.Models {
				key := ModelKey{Edge: k, App: i, Version: j}
				s.provider.Params(key)
				g := s.gamma(key)
				h.gamma[k][i][j] = g
				if g < best {
					best = g
				}
			}
			h.minGamma[i][k] = best
		}
	}

	D := len(h.domains)
	outer, inner := par.TwoLevel(par.CapWorkers(s.cfg.Workers), D)
	h.outer = outer
	for d, dom := range h.domains {
		dom := dom
		sub, err := c.Sub(dom)
		if err != nil {
			return nil, err
		}
		subCfg := s.cfg
		subCfg.Cluster = sub
		subCfg.Domains = 0
		subCfg.DomainSize = 0
		subCfg.CoordRounds = 0
		subCfg.Provider = &domainProvider{p: s.provider, global: dom}
		subCfg.GammaMS = func(k ModelKey) float64 {
			return h.gamma[dom[k.Edge]][k.App][k.Version]
		}
		subCfg.Workers = inner(d)
		subCfg.Redist.DownEdges = nil
		subCfg.Redist.Scratch = nil
		if subCfg.Redist.RoundRNG != nil || subCfg.RoundSeed != 0 {
			// Randomized rounding: each domain needs its own deterministic
			// stream (a shared *rand.Rand would race across domains and make
			// draw order depend on scheduling).
			subCfg.Redist.RoundRNG = nil
			subCfg.RoundSeed = subCfg.RoundSeed ^ (int64(d+1) * 0x5851F42D4C957F2D)
			if subCfg.RoundSeed == 0 {
				subCfg.RoundSeed = int64(d + 1)
			}
		}
		ss, err := New(subCfg)
		if err != nil {
			return nil, err
		}
		h.subs = append(h.subs, ss)
	}
	return h, nil
}

// clusterPartition applies the configured partitioning knobs.
func clusterPartition(s *Scheduler) [][]int {
	return cluster.Partition(s.cfg.Cluster, s.cfg.Domains, s.cfg.DomainSize)
}

// decideHierarchical is the hierarchical slot decision: a serial top-level
// coordinator settles coarse cross-domain workload flow (bounded greedy
// dual-adjustment over the Eq. 3 conservation constraint), then every domain
// solves its own redistribution LP + per-edge MILPs concurrently, and the
// domain plans are merged in domain index order.
func (s *Scheduler) decideHierarchical(t int, arrivals [][]int) (*edgesim.Plan, error) {
	h := s.hier
	c := s.cfg.Cluster
	I := len(s.cfg.Apps)
	K := c.N()
	D := len(h.domains)

	// Working copy: the coordinator re-homes arrivals, and each domain then
	// plans against its post-coordination share.
	adj := make([][]int, I)
	for i := range arrivals {
		adj[i] = append([]int(nil), arrivals[i]...)
	}
	reserved := make([]float64, K)
	var cross []edgesim.Transfer
	if D > 1 {
		for r := 0; r < h.rounds; r++ {
			if !s.balanceOnce(t, adj, reserved, &cross) {
				break
			}
		}
	}

	// Serial pre-pass: hand each sub-scheduler its local arrivals and the
	// coordinator's bandwidth spend at its edges.
	localArr := make([][][]int, D)
	for d, dom := range h.domains {
		la := make([][]int, I)
		for i := 0; i < I; i++ {
			la[i] = make([]int, len(dom))
			for li, gk := range dom {
				la[i][li] = adj[i][gk]
			}
		}
		localArr[d] = la
		var local []float64
		for _, gk := range dom {
			if reserved[gk] > 0 {
				local = make([]float64, len(dom))
				break
			}
		}
		if local != nil {
			for li, gk := range dom {
				local[li] = reserved[gk]
			}
		}
		h.subs[d].bwReserved = local
	}

	// Concurrent domain solves. Each sub-scheduler is owned by exactly one
	// item, so the only shared state is the (pre-warmed, read-only during the
	// fan-out) TIR provider and the parent cluster's bandwidth cache
	// (sync.Map of pure values).
	plans := make([]*edgesim.Plan, D)
	if err := par.ForEach(h.outer, D, func(_, d int) error {
		p, err := h.subs[d].decideDecomposed(t, localArr[d])
		if err != nil {
			return err
		}
		plans[d] = p
		return nil
	}); err != nil {
		return nil, err
	}

	// Merge in domain index order: remap local edge indices to global ones.
	merged := &edgesim.Plan{Transfers: append([]edgesim.Transfer(nil), cross...)}
	merged.Dropped = make([][]int, I)
	for i := range merged.Dropped {
		merged.Dropped[i] = make([]int, K)
	}
	var slotSolver miqp.Stats
	for d, dom := range h.domains {
		p := plans[d]
		for _, dep := range p.Deployments {
			dep.Edge = dom[dep.Edge]
			merged.Deployments = append(merged.Deployments, dep)
		}
		for _, tr := range p.Transfers {
			tr.From, tr.To = dom[tr.From], dom[tr.To]
			merged.Transfers = append(merged.Transfers, tr)
		}
		for _, pl := range p.Preloads {
			pl.Edge = dom[pl.Edge]
			merged.Preloads = append(merged.Preloads, pl)
		}
		for i := 0; i < I; i++ {
			for li, v := range p.Dropped[i] {
				merged.Dropped[i][dom[li]] = v
			}
		}
		if p.Solver != nil {
			slotSolver.Add(*p.Solver)
		}
	}
	if len(cross) > 0 {
		// Relay elimination. A coordinator transfer into an edge whose domain
		// solver then forwards onward would make the merged plan a multi-hop
		// relay, and Eq. 3 (and the executor) forbid an edge forwarding more
		// than its own arrivals. Re-derive the pairwise realization from the
		// net flow: each edge's charge becomes |out − in| ≤ out + in per app,
		// so bandwidth feasibility is preserved, conservation is unchanged
		// (served + dropped still equals arrivals − out + in at every edge),
		// and matchTransfers is a deterministic serial pass. Without cross
		// transfers the domains are disjoint and relays cannot arise.
		eff := make([][]int, I)
		for i := 0; i < I; i++ {
			eff[i] = append([]int(nil), arrivals[i]...)
		}
		for _, tr := range merged.Transfers {
			eff[tr.App][tr.From] -= tr.Count
			eff[tr.App][tr.To] += tr.Count
		}
		merged.Transfers = matchTransfers(arrivals, eff)
	}
	merged.Solver = &slotSolver
	s.solver.Add(slotSolver)
	return merged, nil
}

// balanceOnce runs one coordinator round: domains are ranked by congestion
// (estimated demand-milliseconds over up-edge slot capacity), the most- and
// least-loaded are paired off (first with last, second with second-to-last,
// ...), and workload moves from each pair's overloaded side toward the
// equalizing level r = (demand_a + demand_b)/(cap_a + cap_b), subject to the
// coordinator's per-edge bandwidth budget (coordBwShare of the stage-1
// forwarding reserve, charged to both transfer endpoints, Eq. 9). Arrivals
// move in adj, spend accumulates in reserved, transfers append to cross; the
// return value reports whether anything moved (false terminates the round
// loop early).
//
// Everything here is serial, iterates in fixed index order, and reads only
// deterministic inputs — see the hierState determinism argument.
func (s *Scheduler) balanceOnce(t int, adj [][]int, reserved []float64, cross *[]edgesim.Transfer) bool {
	h := s.hier
	c := s.cfg.Cluster
	I := len(s.cfg.Apps)
	K := c.N()
	D := len(h.domains)
	slotMS := c.SlotMS()
	bwFrac := orDefault(s.cfg.Redist.BwFrac, 0.7)

	// Per-edge optimistic demand estimate and capacity.
	demandMS := make([]float64, K)
	capMS := make([]float64, K)
	for k := 0; k < K; k++ {
		if !s.down[k] {
			capMS[k] = slotMS
		}
		for i := 0; i < I; i++ {
			demandMS[k] += float64(adj[i][k]) * h.minGamma[i][k]
		}
	}
	domDemand := make([]float64, D)
	domCap := make([]float64, D)
	util := make([]float64, D)
	for d, dom := range h.domains {
		for _, gk := range dom {
			domDemand[d] += demandMS[gk]
			domCap[d] += capMS[gk]
		}
		if domCap[d] > 0 {
			util[d] = domDemand[d] / domCap[d]
		} else if domDemand[d] > 0 {
			util[d] = math.Inf(1)
		}
	}
	order := argsortDesc(util)

	// Remaining coordinator bandwidth per edge, lazily realized.
	budget := func(k int) float64 {
		b := coordBwShare*bwFrac*c.BandwidthMBAt(t, k) - reserved[k]
		if b < 0 {
			return 0
		}
		return b
	}

	const tol = 0.05
	moved := false
	for p := 0; p < D/2; p++ {
		src, dst := order[p], order[D-1-p]
		if domCap[dst] <= 0 {
			continue // a fully failed domain cannot receive
		}
		gap := util[src] - util[dst]
		if !(gap > tol) {
			continue
		}
		// Equalizing level: move until src's estimated utilization drops to
		// the pair's pooled ratio.
		r := (domDemand[src] + domDemand[dst]) / (domCap[src] + domCap[dst])
		moveMS := domDemand[src] - r*domCap[src]
		if moveMS <= 0 {
			continue
		}
		for _, a := range h.domains[src] {
			if moveMS <= 0 {
				break
			}
			for i := 0; i < I && moveMS > 0; i++ {
				avail := adj[i][a]
				if avail <= 0 {
					continue
				}
				g := h.minGamma[i][a]
				if g <= 0 {
					continue
				}
				// Receiver: the dst-domain edge with the most headroom
				// (capacity minus estimated demand), ties to the lowest index.
				b, headroom := -1, 0.0
				for _, cand := range h.domains[dst] {
					if s.down[cand] {
						continue
					}
					hr := capMS[cand] - demandMS[cand]
					if hr > headroom {
						b, headroom = cand, hr
					}
				}
				if b < 0 {
					break
				}
				gb := h.minGamma[i][b]
				if gb <= 0 {
					continue
				}
				n := avail
				if byMove := int(moveMS / g); byMove < n {
					n = byMove
				}
				if byHead := int(headroom / gb); byHead < n {
					n = byHead
				}
				per := s.cfg.Apps[i].RequestMB
				if per > 0 {
					if byBw := int(math.Min(budget(a), budget(b)) / per); byBw < n {
						n = byBw
					}
				}
				if n <= 0 {
					continue
				}
				mb := float64(n) * per
				adj[i][a] -= n
				adj[i][b] += n
				reserved[a] += mb
				reserved[b] += mb
				demandMS[a] -= float64(n) * g
				demandMS[b] += float64(n) * gb
				domDemand[src] -= float64(n) * g
				domDemand[dst] += float64(n) * gb
				moveMS -= float64(n) * g
				*cross = append(*cross, edgesim.Transfer{App: i, From: a, To: b, Count: n})
				moved = true
			}
		}
	}
	return moved
}
