package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// recordHierRun drives a hierarchical scheduler through the same seeded
// closed-loop simulation recordRun uses and returns the plan sequence.
func recordHierRun(t *testing.T, c *cluster.Cluster, apps []*models.Application, workers, slots int, seed int64, domains, domainSize int) []*edgesim.Plan {
	t.Helper()
	s, err := New(Config{
		Cluster: c, Apps: apps, Workers: workers,
		Domains: domains, DomainSize: domainSize,
		Provider: NewOnlineTuner(0.04, 0.07),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &planRecorder{Scheduler: s}
	runSim(t, rec, c, apps, slots, seed)
	return rec.plans
}

// TestHierarchicalWorkerCountInvariantK6 extends the byte-identity contract to
// hierarchical mode at testbed scale: three 2-edge domains, closed loop, so a
// single divergent coordinator or domain decision would cascade into the tuner
// feedback and be caught.
func TestHierarchicalWorkerCountInvariantK6(t *testing.T) {
	c := cluster.Default()
	apps := models.Catalogue(1, 3)
	serial := recordHierRun(t, c, apps, 1, 20, 9, 3, 0)
	par := recordHierRun(t, c, apps, 8, 20, 9, 3, 0)
	if !reflect.DeepEqual(serial, par) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Fatalf("slot %d: hierarchical plans diverged across worker counts\nserial: %+v\npar:    %+v", i, serial[i], par[i])
			}
		}
		t.Fatalf("hierarchical plan sequences diverged (lengths %d vs %d)", len(serial), len(par))
	}
}

// TestHierarchicalWorkerCountInvariantK50 repeats the invariance check at a
// scale where the domain fan-out actually runs concurrently (4 domains of
// ~13 edges) and the coordinator genuinely moves workload between domains.
func TestHierarchicalWorkerCountInvariantK50(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	c, err := cluster.Scaled(50, cluster.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	apps := models.Catalogue(2, 3)
	tr, err := trace.Generate(trace.Config{
		Apps: len(apps), Edges: c.N(), Slots: 3, Seed: 4,
		MeanPerSlot: 5, Imbalance: 0.9, BurstProb: 0.1, BurstScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []*edgesim.Plan {
		s, err := New(Config{Cluster: c, Apps: apps, Workers: workers, DomainSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		var plans []*edgesim.Plan
		for tt := 0; tt < 3; tt++ {
			p, err := s.Decide(tt, tr.R[tt])
			if err != nil {
				t.Fatalf("workers=%d slot %d: %v", workers, tt, err)
			}
			plans = append(plans, p)
		}
		return plans
	}
	serial := run(1)
	par := run(4)
	if !reflect.DeepEqual(serial, par) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Fatalf("slot %d: K=50 hierarchical plans diverged across worker counts", i)
			}
		}
		t.Fatal("K=50 hierarchical plan sequences diverged")
	}
}

// TestHierarchicalOneDomainEquivalentToMonolithic: with a single domain the
// coordinator never runs, the cluster view is the identity, and the provider
// remap is the identity — so the hierarchical path must emit plans
// byte-identical to the monolithic scheduler over a closed-loop run.
func TestHierarchicalOneDomainEquivalentToMonolithic(t *testing.T) {
	c := cluster.Default()
	apps := models.Catalogue(1, 3)
	mono := recordRun(t, c, apps, 2, 25, 9, SolveModeDecomposed)
	hier := recordHierRun(t, c, apps, 2, 25, 9, 1, 0)
	if !reflect.DeepEqual(mono, hier) {
		for i := range mono {
			if !reflect.DeepEqual(mono[i], hier[i]) {
				t.Fatalf("slot %d: one-domain hierarchical diverged from monolithic\nmono: %+v\nhier: %+v", i, mono[i], hier[i])
			}
		}
		t.Fatalf("plan sequences diverged (lengths %d vs %d)", len(mono), len(hier))
	}
}

// TestHierarchicalRepeatable: two identically configured hierarchical runs —
// including the coordinator's balancing rounds — must produce byte-identical
// plan sequences (the partition, the coordinator, and the domain solves are
// all pure functions of the seeded inputs).
func TestHierarchicalRepeatable(t *testing.T) {
	c := cluster.Default()
	apps := models.Catalogue(2, 3)
	a := recordHierRun(t, c, apps, 4, 15, 3, 0, 2)
	b := recordHierRun(t, c, apps, 4, 15, 3, 0, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("hierarchical runs with identical configuration diverged")
	}
}

// TestHierarchicalPlansExecuteCleanly runs the hierarchical scheduler through
// the strict executor: merged plans (coordinator transfers + per-domain
// deployments with globally remapped indices) must satisfy conservation,
// memory, and bandwidth at fleet scope.
func TestHierarchicalPlansExecuteCleanly(t *testing.T) {
	c := cluster.Default()
	apps := models.Catalogue(2, 3)
	s, err := New(Config{Cluster: c, Apps: apps, Domains: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := runSim(t, s, c, apps, 30, 7)
	if len(res.Violations) != 0 {
		t.Fatalf("hierarchical plans violated executor constraints: %v",
			res.Violations[:min(3, len(res.Violations))])
	}
	if res.Served == 0 {
		t.Fatal("hierarchical scheduler served nothing")
	}
}

// TestHierarchicalRejectsJointMode: the hierarchy decomposes the decomposed
// solver; the joint program has no domain form.
func TestHierarchicalRejectsJointMode(t *testing.T) {
	_, err := New(Config{
		Cluster: cluster.Small(), Apps: models.Catalogue(1, 2),
		SolveMode: SolveModeJoint, Domains: 2,
	})
	if err == nil {
		t.Fatal("expected an error for hierarchical + joint")
	}
}

// TestHierarchicalEdgeDownForwarded: marking an edge down at the top level
// must keep workload away from it inside its domain too.
func TestHierarchicalEdgeDownForwarded(t *testing.T) {
	c := cluster.Default()
	apps := models.Catalogue(1, 3)
	s, err := New(Config{Cluster: c, Apps: apps, Domains: 2})
	if err != nil {
		t.Fatal(err)
	}
	const downEdge = 1
	s.SetEdgeDown(downEdge, true)
	arrivals := [][]int{{4, 4, 4, 4, 4, 4}}
	p, err := s.Decide(0, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range p.Deployments {
		if d.Edge == downEdge {
			t.Fatalf("deployment on downed edge: %+v", d)
		}
	}
	for _, tr := range p.Transfers {
		if tr.To == downEdge {
			t.Fatalf("transfer into downed edge: %+v", tr)
		}
	}
}
