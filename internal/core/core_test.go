package core

import (
	"math"
	"testing"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/models"
)

func testApps() []*models.Application { return models.Catalogue(2, 3) }

func flatParams(eta, beta, c float64) func(app, version int) bandit.TIRParams {
	return func(int, int) bandit.TIRParams { return bandit.TIRParams{Eta: eta, Beta: beta, C: c} }
}

func TestOnlineTunerLazyAndTick(t *testing.T) {
	o := NewOnlineTuner(0.04, 0.07)
	k := ModelKey{Edge: 1, App: 0, Version: 2}
	p := o.Params(k)
	if p.Beta < 1 || p.Eta < 0 {
		t.Fatalf("params = %+v", p)
	}
	o.Tick()
	o.Tick()
	// A tuner created after ticks must report the same shading as one
	// created before (slot counters synchronized).
	k2 := ModelKey{Edge: 0, App: 1, Version: 0}
	if o.Params(k2) != o.Params(k) {
		t.Fatalf("late tuner out of sync: %+v vs %+v", o.Params(k2), o.Params(k))
	}
	o.Observe(k, 4, 1.2)
	if h := o.Historical(k); h.Eta == bandit.InitEta {
		t.Fatal("observation did not reach the tuner")
	}
}

func TestOfflineProviderFallbackAndFixed(t *testing.T) {
	p := &OfflineProvider{Table: map[ModelKey]bandit.TIRParams{
		{Edge: 0, App: 0, Version: 0}: {Eta: 0.2, Beta: 8, C: 1.5},
	}}
	got := p.Params(ModelKey{Edge: 0, App: 0, Version: 0})
	if got.Eta != 0.2 {
		t.Fatalf("known key = %+v", got)
	}
	fb := p.Params(ModelKey{Edge: 9, App: 9, Version: 9})
	if fb.Beta != bandit.InitBeta {
		t.Fatalf("fallback = %+v", fb)
	}
	p.Observe(ModelKey{}, 4, 2.0) // must be a no-op
	p.Tick()
	if got2 := p.Params(ModelKey{Edge: 0, App: 0, Version: 0}); got2 != got {
		t.Fatal("offline provider must be immutable")
	}
}

func TestProfileOffline(t *testing.T) {
	c := cluster.Small()
	apps := testApps()
	prov, err := ProfileOffline(c, apps, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Table) != c.N()*2*3 {
		t.Fatalf("profiled %d keys, want %d", len(prov.Table), c.N()*2*3)
	}
	for k, p := range prov.Table {
		if p.Eta <= 0 || p.Eta > 1 || p.Beta < 2 || p.C < 1 {
			t.Fatalf("implausible profile %+v at %+v", p, k)
		}
	}
	if _, err := ProfileOffline(c, apps, 1); err == nil {
		t.Fatal("maxB < 2 must error")
	}
}

func edgeProblem(workload []int, mode BatchMode) *EdgeProblem {
	c := cluster.Small()
	apps := testApps()
	return &EdgeProblem{
		Edge: c.Edges[0], EdgeIdx: 0, Apps: apps, Workload: workload,
		Params:  flatParams(0.2, 16, 1.6),
		GammaMS: func(i, j int) float64 { return c.Edges[0].Device.SingleLatencyMS(apps[i].Models[j].Profile) },
		SlotMS:  c.SlotMS(), ShipBudgetMB: 1000,
		PrevDeployed: map[[2]int]bool{},
		Mode:         mode, FixedB0: 8,
	}
}

func TestSolveEdgeValidation(t *testing.T) {
	bad := []*EdgeProblem{
		{},
		func() *EdgeProblem { p := edgeProblem([]int{1}, ModeMerged); return p }(), // workload len mismatch
		func() *EdgeProblem { p := edgeProblem([]int{1, 1}, ModeMerged); p.Params = nil; return p }(),
		func() *EdgeProblem { p := edgeProblem([]int{1, 1}, ModeMerged); p.SlotMS = 0; return p }(),
		func() *EdgeProblem { p := edgeProblem([]int{1, 1}, ModeFixed); p.FixedB0 = 0; return p }(),
		func() *EdgeProblem { p := edgeProblem([]int{-1, 1}, ModeMerged); return p }(),
	}
	for i, p := range bad {
		if _, err := SolveEdge(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSolveEdgeMergedServesEverythingWhenEasy(t *testing.T) {
	p := edgeProblem([]int{5, 3}, ModeMerged)
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, d := range asg.Deployments {
		if len(d.BatchSizes) != 1 || d.BatchSizes[0] != d.Requests {
			t.Fatalf("merged mode must use one batch: %+v", d)
		}
		served += d.Requests
	}
	if served != 8 {
		t.Fatalf("served %d, want 8", served)
	}
	for i, d := range asg.Dropped {
		if d != 0 {
			t.Fatalf("app %d dropped %d requests on an easy instance", i, d)
		}
	}
	// With a roomy slot the solver must choose the most accurate model.
	for _, d := range asg.Deployments {
		if d.Version != len(p.Apps[d.App].Models)-1 {
			t.Fatalf("easy instance should use the best model, got version %d", d.Version)
		}
	}
	if asg.OverflowMS > 1e-6 {
		t.Fatalf("unexpected overflow %v", asg.OverflowMS)
	}
}

func TestSolveEdgeTightSlotPrefersSmallerModels(t *testing.T) {
	easy := edgeProblem([]int{8, 0}, ModeMerged)
	easyAsg, err := SolveEdge(easy)
	if err != nil {
		t.Fatal(err)
	}
	tight := edgeProblem([]int{8, 0}, ModeMerged)
	tight.SlotMS = 400 // barely room for the small model
	tightAsg, err := SolveEdge(tight)
	if err != nil {
		t.Fatal(err)
	}
	lossOf := func(asg *EdgeAssignment) float64 {
		var l float64
		for _, d := range asg.Deployments {
			l += easy.Apps[d.App].Models[d.Version].Loss * float64(d.Requests)
		}
		return l
	}
	if !(lossOf(tightAsg) > lossOf(easyAsg)) {
		t.Fatalf("tight slot should force higher loss: %v vs %v", lossOf(tightAsg), lossOf(easyAsg))
	}
}

func TestSolveEdgeSerialMode(t *testing.T) {
	p := edgeProblem([]int{4, 0}, ModeSerial)
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg.Deployments) == 0 {
		t.Fatal("no deployments")
	}
	for _, d := range asg.Deployments {
		if len(d.BatchSizes) != d.Requests {
			t.Fatalf("serial mode must emit one batch per request: %+v", d)
		}
		for _, b := range d.BatchSizes {
			if b != 1 {
				t.Fatalf("serial batches must be size 1: %+v", d)
			}
		}
	}
}

func TestSolveEdgeFixedMode(t *testing.T) {
	p := edgeProblem([]int{10, 0}, ModeFixed) // B0 = 8 → 2 padded batches
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, d := range asg.Deployments {
		served += d.Requests
		total := 0
		for _, b := range d.BatchSizes {
			if b != 8 {
				t.Fatalf("fixed mode must use B0-sized batches: %+v", d)
			}
			total += b
		}
		if total < d.Requests {
			t.Fatalf("batches cover %d < %d requests", total, d.Requests)
		}
	}
	if served+asg.Dropped[0] != 10 {
		t.Fatalf("conservation broken: served %d dropped %d", served, asg.Dropped[0])
	}
}

func TestSolveEdgeDropsUnderImpossibleLoad(t *testing.T) {
	p := edgeProblem([]int{500, 500}, ModeMerged)
	p.SlotMS = 200
	p.DropPenalty = 0.6 // cheap drops so the solver prefers them to overflow
	p.OverflowPenaltyPerMS = 10
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Dropped[0]+asg.Dropped[1] == 0 {
		t.Fatal("expected drops under impossible load")
	}
}

func TestSolveEdgeZeroWorkload(t *testing.T) {
	p := edgeProblem([]int{0, 0}, ModeMerged)
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg.Deployments) != 0 {
		t.Fatalf("zero workload must deploy nothing: %+v", asg.Deployments)
	}
}

func TestSolveEdgeShipBudgetForcesResidentModels(t *testing.T) {
	p := edgeProblem([]int{5, 0}, ModeMerged)
	// Only the smallest model of app 0 is resident; shipping budget is zero,
	// so the solver must reuse it despite its higher loss.
	p.ShipBudgetMB = 0
	p.PrevDeployed = map[[2]int]bool{{0, 0}: true}
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range asg.Deployments {
		if d.App == 0 && d.Version != 0 {
			t.Fatalf("no bandwidth to ship model v%d", d.Version)
		}
	}
	if len(asg.Deployments) == 0 {
		t.Fatal("resident model should still serve")
	}
}

func TestSolveEdgeMemoryLimitsBatch(t *testing.T) {
	p := edgeProblem([]int{30, 0}, ModeMerged)
	// Shrink memory so big batches of big models cannot fit.
	tiny := *p.Edge
	tiny.MemoryMB = 700
	p.Edge = &tiny
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	var mem float64
	seen := map[[2]int]bool{}
	for _, d := range asg.Deployments {
		m := p.Apps[d.App].Models[d.Version]
		if !seen[[2]int{d.App, d.Version}] {
			seen[[2]int{d.App, d.Version}] = true
			mem += m.WeightsMB
		}
		mem += m.IntermediateMB * float64(d.BatchSizes[0])
	}
	if mem > 700+1e-6 {
		t.Fatalf("memory plan %v exceeds 700", mem)
	}
}

func TestBatchModeAndSolveModeStrings(t *testing.T) {
	for _, m := range []BatchMode{ModeMerged, ModeSerial, ModeFixed, BatchMode(9)} {
		if m.String() == "" {
			t.Fatal("empty BatchMode string")
		}
	}
	for _, m := range []SolveMode{SolveModeDecomposed, SolveModeJoint, SolveMode(9)} {
		if m.String() == "" {
			t.Fatal("empty SolveMode string")
		}
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	if _, err := New(Config{Cluster: cluster.Small(), Apps: testApps(), Mode: ModeFixed}); err == nil {
		t.Fatal("ModeFixed without B0 must fail")
	}
}

func TestSchedulerDefaults(t *testing.T) {
	s, err := New(Config{Cluster: cluster.Small(), Apps: testApps()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "BIRP" {
		t.Fatalf("name = %q", s.Name())
	}
	if _, ok := s.Provider().(*OnlineTuner); !ok {
		t.Fatalf("default provider should be the online tuner, got %T", s.Provider())
	}
}

func TestGammaPredictionsInPaperEnvelope(t *testing.T) {
	s, err := New(Config{Cluster: cluster.Default(), Apps: models.Catalogue(5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for k := 0; k < s.cfg.Cluster.N(); k++ {
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				g := s.gamma(ModelKey{Edge: k, App: i, Version: j})
				lo = math.Min(lo, g)
				hi = math.Max(hi, g)
			}
		}
	}
	if lo < 3 || hi > 1200 {
		t.Fatalf("gamma envelope [%v, %v] outside plausible band", lo, hi)
	}
}
