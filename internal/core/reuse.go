package core

import (
	"math"

	"repro/internal/edgesim"
	"repro/internal/lp"
)

// This file is the cross-slot temporal acceleration layer of the decomposed
// scheduler (Config.DisableSlotReuse turns it off). Consecutive slots solve
// near-identical per-edge MILPs — only arrivals and the bandit's slowly
// drifting TIR estimates move — so the scheduler carries three kinds of state
// across slots:
//
//  1. the previous slot's assignment, re-seeded (after a deterministic
//     clamp-and-drop repair) as the branch & bound incumbent;
//  2. the optimal root-relaxation simplex basis, re-entered at the next
//     slot's root (falling back cold on any shape mismatch);
//  3. a fingerprint-keyed memo of full per-edge assignments: when a problem
//     hashes identically to one already solved, its plan fragment is returned
//     without invoking the solver at all.
//
// Determinism: fingerprints hash only solve inputs (never worker counts), are
// computed serially, and all reuse-state updates happen in the edge-order
// gather after the parallel fan-out, so plans remain byte-identical across
// worker counts. Reuse changes which certified incumbent a solve starts from,
// so reuse-on vs reuse-off agree only within the solver's 0.5% gap tolerance
// — the same bound PR 2 established for warm-vs-cold engines.
//
// When do the memo counters actually fire? The fingerprint covers every solve
// input, so memo_hits and delta_skipped_edges stay at zero unless the whole
// input vector repeats bit-for-bit. Under the default configuration two
// inputs drift every slot by design, keeping the memo legitimately cold:
//
//   - The online tuner's LCB shading √(ε²·ln(t+1)/(n+1)) (paper Eq. 17)
//     folds the slot counter t advanced by Tick(), so every arm's shaded
//     parameters move each slot even with no new observations. Skipping the
//     solve anyway would serve a plan computed for different parameters.
//   - Cluster bandwidth is redrawn per (slot, edge) from [Lo, Hi] Mbps, so
//     the ship budget repeats only when Lo == Hi.
//
// With an OfflineProvider (fixed parameters) and fixed bandwidth, repeated
// arrivals hit both paths — TestMemoAndDeltaCountersFireOnRepeatedInputs
// pins that down. The memo pays off exactly in that regime: stationary
// pre-profiled deployments, not the exploring online scheduler.

// defaultSlotCacheSize bounds the per-edge memo LRU when Config.SlotCacheSize
// is zero. Per-edge memory therefore stays O(1) and total memory O(K).
const defaultSlotCacheSize = 8

// edgeReuse is the per-edge cross-slot solver state.
type edgeReuse struct {
	// cur is the assignment the edge most recently received (fresh solve,
	// delta skip, or memo hit) and curFP the fingerprint of the problem that
	// produced it; hasCur gates both. cur seeds the next solve's incumbent.
	cur    *EdgeAssignment
	curFP  uint64
	hasCur bool
	// basis is the optimal root-relaxation basis of the last fresh solve.
	basis *lp.Basis
	// lru is the bounded fingerprint → assignment memo, most recent last.
	lru []memoEntry
	cap int
}

type memoEntry struct {
	fp  uint64
	asg *EdgeAssignment
}

// reuseFor returns edge k's reuse state, or nil when the layer is disabled.
func reuseFor(reuse []*edgeReuse, k int) *edgeReuse {
	if reuse == nil {
		return nil
	}
	return reuse[k]
}

func newEdgeReuse(cacheSize int) *edgeReuse {
	if cacheSize <= 0 {
		cacheSize = defaultSlotCacheSize
	}
	return &edgeReuse{cap: cacheSize}
}

// clear drops all carried state (edge failure: the rejoining edge re-solves
// cold, and stale plans must never resurface from the memo).
func (r *edgeReuse) clear() {
	r.cur, r.curFP, r.hasCur = nil, 0, false
	r.basis = nil
	r.lru = r.lru[:0]
}

// lookup returns the memoized assignment for fp and refreshes its recency.
// The recency slide is in place — the memo fires every slot in stationary
// regimes, so it must not churn the allocator.
func (r *edgeReuse) lookup(fp uint64) *EdgeAssignment {
	for i := len(r.lru) - 1; i >= 0; i-- {
		if r.lru[i].fp == fp {
			e := r.lru[i]
			copy(r.lru[i:], r.lru[i+1:])
			r.lru[len(r.lru)-1] = e
			return e.asg
		}
	}
	return nil
}

// store inserts (fp, asg) as most recent, evicting the least recent past cap.
// In-place like lookup; the backing array is bounded by cap+1 entries.
func (r *edgeReuse) store(fp uint64, asg *EdgeAssignment) {
	for i := len(r.lru) - 1; i >= 0; i-- {
		if r.lru[i].fp == fp {
			copy(r.lru[i:], r.lru[i+1:])
			r.lru = r.lru[:len(r.lru)-1]
			break
		}
	}
	r.lru = append(r.lru, memoEntry{fp, asg})
	if over := len(r.lru) - r.cap; over > 0 {
		copy(r.lru, r.lru[over:])
		for i := len(r.lru) - over; i < len(r.lru); i++ {
			r.lru[i] = memoEntry{}
		}
		r.lru = r.lru[:len(r.lru)-over]
	}
}

// noteFresh records a fresh solve's outcome: it becomes the seed, the memo
// gains it, and the captured root basis (when any) replaces the old one. An
// old basis is kept when capture failed — the Fits check plus cold fallback
// make a stale basis harmless, and it may still fit next slot.
func (r *edgeReuse) noteFresh(fp uint64, asg *EdgeAssignment) {
	r.cur, r.curFP, r.hasCur = asg, fp, true
	if asg.RootBasis != nil {
		r.basis = asg.RootBasis
	}
	r.store(fp, asg)
}

// noteReused records that the edge adopted a cached assignment for fp.
func (r *edgeReuse) noteReused(fp uint64, asg *EdgeAssignment) {
	r.cur, r.curFP, r.hasCur = asg, fp, true
}

// cloneAssignment deep-copies the parts of a cached assignment a consumer
// could mutate (deployment batch slices, the drop vector, the utilization
// map); scalar diagnostics are copied by value. The cached original must stay
// pristine for future hits.
func cloneAssignment(a *EdgeAssignment) *EdgeAssignment {
	cp := *a
	cp.Deployments = edgesim.CloneDeployments(a.Deployments)
	cp.Dropped = append([]int(nil), a.Dropped...)
	if a.Utilizations != nil {
		cp.Utilizations = make(map[string]float64, len(a.Utilizations))
		// Map→map copy: the destination is itself unordered, so iteration
		// order cannot leak.
		//birplint:ordered
		for k, v := range a.Utilizations {
			cp.Utilizations[k] = v
		}
	}
	return &cp
}

// fingerprintEdge hashes every input SolveEdge reads for edge k into a
// 64-bit FNV-1a fingerprint: the workload column, the ship budget, the
// snapshotted TIR parameters and γ predictions (exactly the keys the solve
// reads: apps with positive workload), the resident-model set, and all
// problem-shaping configuration. Workers is deliberately excluded — plans are
// worker-count invariant, and a fingerprint that saw Workers would defeat
// cross-worker byte-identity of cached plans. All composite state is iterated
// in index order (never map order), so the hash is deterministic.
func (s *Scheduler) fingerprintEdge(k int, w []int, shipMB float64, snap *paramSnapshot) uint64 {
	// Hand-rolled FNV-1a over the little-endian bytes of each word —
	// bit-identical to hash/fnv over the same byte stream, without the
	// hash.Hash64 interface allocation per call.
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	u64 := func(v uint64) {
		for b := 0; b < 8; b++ {
			h ^= uint64(byte(v >> (8 * b)))
			h *= fnvPrime64
		}
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	i64 := func(v int) { u64(uint64(int64(v))) }
	b1 := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}

	c := s.cfg.Cluster
	i64(len(w))
	for _, v := range w {
		i64(v)
	}
	f64(shipMB)
	f64(c.SlotMS())
	f64(c.Edges[k].MemoryMB)
	for i, app := range s.cfg.Apps {
		if w[i] <= 0 {
			continue
		}
		i64(i)
		i64(len(app.Models))
		for j := range app.Models {
			par := snap.par[i][j]
			f64(par.Eta)
			f64(par.Beta)
			f64(par.C)
			f64(snap.gamma[i][j])
		}
	}
	// Resident set, in (app, version) index order.
	for i, app := range s.cfg.Apps {
		for j := range app.Models {
			b1(s.prev[k][[2]int{i, j}])
		}
	}
	i64(int(s.cfg.Mode))
	i64(int(s.cfg.Mem))
	i64(s.cfg.FixedB0)
	i64(s.cfg.MaxBatch)
	i64(s.cfg.SolveNodes)
	b1(s.cfg.KneeCap)
	b1(s.cfg.SingleVersion)
	f64(s.cfg.DropPenalty)
	f64(s.cfg.OverflowPenaltyPerMS)
	return h
}
