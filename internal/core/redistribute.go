package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/models"
)

// RedistOptions parameterizes stage 1 of the decomposed solver: the
// fractional redistribution LP plus integer rounding.
type RedistOptions struct {
	// ComputeFrac scales the per-edge compute budget stage 1 plans against
	// (≤ 1 leaves headroom for the Eq. 24 fixed terms ignored here).
	ComputeFrac float64 // 0 = 0.95
	// MemFrac reserves memory for model weights (stage 1 only sees
	// activations).
	MemFrac float64 // 0 = 0.75
	// BwFrac reserves bandwidth for model shipping (stage 2 spends the rest).
	BwFrac float64 // 0 = 0.7
	// TransferCost is a tiny per-request objective cost discouraging
	// gratuitous transfers.
	TransferCost float64 // 0 = 1e-3
	// RoundRNG, when non-nil, switches from deterministic largest-remainder
	// rounding to randomized proportional rounding (OAEI's style).
	RoundRNG *rand.Rand
	// KneeCap mirrors EdgeProblem.KneeCap: cap per-(model, edge) shares at
	// the TIR knee β̂ and plan with the first-segment slope only.
	KneeCap bool
	// MaxBatch is the merged-batch cap used when KneeCap is off
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// Mem mirrors EdgeProblem.Mem.
	Mem MemModel
	// DownEdges marks failed edges: they receive no shares, no inbound
	// transfers, and their local arrivals are routed out or dropped.
	DownEdges []bool
	// BalanceWeight > 0 adds a convex utilization-balancing term
	// w·Σ_k util_k² to the stage-1 objective (utilization = planned compute
	// over the slot), implemented as a piecewise-linear epigraph so the
	// problem stays an LP. Balanced headroom cuts the tail risk correlated
	// slot noise creates on near-full edges.
	BalanceWeight float64
	// Scratch, when non-nil, is the caller-owned LP workspace the stage-1
	// solve reuses (the scheduler keeps one alive across slots so the arena
	// never shrinks back between Decide calls); nil uses the lp package pool.
	Scratch *lp.Scratch
	// DenseEngine solves the stage-1 LP with the legacy dense tableau engine
	// instead of the sparse revised simplex (A/B oracle switch; see
	// core.Config.DenseEngine).
	DenseEngine bool
	// ReservedMB[k] is bandwidth a parent coordinator already spent at edge k
	// this slot (cross-domain transfers charge both endpoints); the forwarding
	// budget rows plan against the remainder. Nil means nothing reserved.
	ReservedMB []float64
}

// reservedAt reads a reserved-bandwidth vector that may be nil or short.
func reservedAt(reserved []float64, k int) float64 {
	if k < len(reserved) {
		return reserved[k]
	}
	return 0
}

// Redistribution is the stage-1 outcome.
type Redistribution struct {
	// Alloc[i][k] is the integer number of requests of app i edge k serves.
	Alloc [][]int
	// Transfers realize the Alloc from the arrival pattern pairwise.
	Transfers []edgesim.Transfer
	// ForwardMB[k] is the request-forwarding bandwidth spent at edge k.
	ForwardMB []float64
}

// Redistribute solves the fractional redistribution LP and rounds it to an
// integer allocation realized by pairwise transfers (paper Eq. 3, the y
// variables). The LP minimizes Σ loss·f over fractional model shares f
// subject to per-edge compute/memory/bandwidth budgets — the continuous
// relaxation of P1/P2 with the per-model fixed terms dropped.
func Redistribute(
	c *cluster.Cluster,
	apps []*models.Application,
	arrivals [][]int,
	params func(k ModelKey) bandit.TIRParams,
	gammaMS func(k ModelKey) float64,
	slot int,
	opt RedistOptions,
) (*Redistribution, error) {
	I := len(apps)
	K := c.N()
	if len(arrivals) != I {
		return nil, fmt.Errorf("core: arrivals for %d apps, want %d", len(arrivals), I)
	}
	computeFrac := orDefault(opt.ComputeFrac, 0.95)
	memFrac := orDefault(opt.MemFrac, 0.75)
	bwFrac := orDefault(opt.BwFrac, 0.7)
	transferCost := orDefault(opt.TransferCost, 1e-3)
	maxBatch := opt.MaxBatch
	if maxBatch == 0 {
		maxBatch = DefaultMaxBatch
	}

	// Variable layout: f[i][j][k] fractions, then out[i][k], in[i][k],
	// slack[k] (compute overflow).
	nJ := make([]int, I)
	for i, a := range apps {
		nJ[i] = len(a.Models)
	}
	idx := 0
	fIdx := make([][][]int, I)
	for i := 0; i < I; i++ {
		fIdx[i] = make([][]int, nJ[i])
		for j := 0; j < nJ[i]; j++ {
			fIdx[i][j] = make([]int, K)
			for k := 0; k < K; k++ {
				fIdx[i][j][k] = idx
				idx++
			}
		}
	}
	outIdx := make([][]int, I)
	inIdx := make([][]int, I)
	for i := 0; i < I; i++ {
		outIdx[i] = make([]int, K)
		inIdx[i] = make([]int, K)
		for k := 0; k < K; k++ {
			outIdx[i][k] = idx
			idx++
			inIdx[i][k] = idx
			idx++
		}
	}
	slackIdx := make([]int, K)
	for k := 0; k < K; k++ {
		slackIdx[k] = idx
		idx++
	}
	// Per-(i,k) unserved slack keeps the LP feasible when arrivals exceed the
	// batch-cap capacity; rounding re-distributes these requests and stage 2
	// decides whether they are really dropped.
	dIdx := make([][]int, I)
	for i := 0; i < I; i++ {
		dIdx[i] = make([]int, K)
		for k := 0; k < K; k++ {
			dIdx[i][k] = idx
			idx++
		}
	}
	// Epigraph variables e_k ≥ util_k² (tangent cuts added below) for the
	// optional balancing term.
	eIdx := make([]int, K)
	if opt.BalanceWeight > 0 {
		for k := 0; k < K; k++ {
			eIdx[k] = idx
			idx++
		}
	}
	n := idx

	obj := make([]float64, n)
	ub := make([]float64, n)
	for i := range ub {
		ub[i] = math.Inf(1)
	}
	totalPerApp := make([]float64, I)
	for i := 0; i < I; i++ {
		for k := 0; k < K; k++ {
			totalPerApp[i] += float64(arrivals[i][k])
		}
	}
	for i := 0; i < I; i++ {
		for j := 0; j < nJ[i]; j++ {
			loss := apps[i].Models[j].Loss
			for k := 0; k < K; k++ {
				obj[fIdx[i][j][k]] = loss
				// The per-(model, edge) batch cap limits how much one edge
				// can absorb per slot; encoding it here keeps stage 1 from
				// concentrating more load on an edge than stage 2 can batch.
				cap := totalPerApp[i]
				if opt.KneeCap {
					// Paper-literal single batch: the share is capped at the
					// knee and, under time-sliced memory, at what fits
					// beside the weights.
					cap = math.Min(cap, params(ModelKey{Edge: k, App: i, Version: j}).Beta)
					if opt.Mem != MemSum {
						byMem := memFrac * c.Edges[k].MemoryMB / apps[i].Models[j].IntermediateMB
						cap = math.Min(cap, byMem)
					}
				}
				if len(opt.DownEdges) > k && opt.DownEdges[k] {
					cap = 0
				}
				ub[fIdx[i][j][k]] = cap
			}
		}
		for k := 0; k < K; k++ {
			obj[outIdx[i][k]] = transferCost
			obj[inIdx[i][k]] = transferCost
			ub[outIdx[i][k]] = float64(arrivals[i][k])
			ub[inIdx[i][k]] = totalPerApp[i]
			if len(opt.DownEdges) > k && opt.DownEdges[k] {
				ub[inIdx[i][k]] = 0 // nothing flows into a failed edge
			}
		}
	}
	for k := 0; k < K; k++ {
		obj[slackIdx[k]] = DefaultOverflowPenaltyPerMS
		if opt.BalanceWeight > 0 {
			obj[eIdx[k]] = opt.BalanceWeight
		}
	}
	for i := 0; i < I; i++ {
		for k := 0; k < K; k++ {
			obj[dIdx[i][k]] = DefaultDropPenalty
		}
	}

	var aeq [][]float64
	var beq []float64
	var aub [][]float64
	var bub []float64
	row := func() []float64 { return make([]float64, n) }

	// Conservation per (i, k): Σ_j f − in + out = arrivals.
	for i := 0; i < I; i++ {
		for k := 0; k < K; k++ {
			r := row()
			for j := 0; j < nJ[i]; j++ {
				r[fIdx[i][j][k]] = 1
			}
			r[inIdx[i][k]] = -1
			r[outIdx[i][k]] = 1
			r[dIdx[i][k]] = 1
			aeq = append(aeq, r)
			beq = append(beq, float64(arrivals[i][k]))
		}
	}
	// Flow balance per app: Σ_k out = Σ_k in.
	for i := 0; i < I; i++ {
		r := row()
		for k := 0; k < K; k++ {
			r[outIdx[i][k]] = 1
			r[inIdx[i][k]] = -1
		}
		aeq = append(aeq, r)
		beq = append(beq, 0)
	}
	// Compute per edge (soft): Σ γ(1−η)·f ≤ frac·τ + slack.
	slotMS := c.SlotMS()
	for k := 0; k < K; k++ {
		r := row()
		for i := 0; i < I; i++ {
			for j := 0; j < nJ[i]; j++ {
				key := ModelKey{Edge: k, App: i, Version: j}
				par := params(key)
				slope := 1 - par.Eta // Eq. 24 tangent (paper-literal)
				if !opt.KneeCap {
					// Multi-batch: per-request time at the throughput-optimal
					// batch size ≈ γ/TIR(β̂) = γ/Ĉ.
					slope = 1 / math.Max(par.C, 1)
				}
				r[fIdx[i][j][k]] = gammaMS(key) * slope
			}
		}
		r[slackIdx[k]] = -1
		aub = append(aub, r)
		bub = append(bub, computeFrac*slotMS)
		if opt.BalanceWeight > 0 {
			// util_k = (Σ coef·f)/slotMS reuses this row's coefficients;
			// e_k ≥ u² via tangents at u0 ∈ {0.25, 0.5, 0.75, 1.0}:
			// e ≥ 2·u0·u − u0²  ⇔  2·u0·(Σ coef·f)/τ − e ≤ u0².
			for _, u0 := range []float64{0.25, 0.5, 0.75, 1.0} {
				cut := row()
				for j := 0; j < n; j++ {
					if !mat.Zero(r[j]) && j != slackIdx[k] {
						cut[j] = 2 * u0 * r[j] / slotMS
					}
				}
				cut[eIdx[k]] = -1
				aub = append(aub, cut)
				bub = append(bub, u0*u0)
			}
		}
	}
	// Memory per edge. Under MemSum, activations of all shares accumulate
	// (Eq. 6 verbatim); under time-sliced memory the per-share caps above
	// already encode the peak-batch bound and no summed row is needed.
	if opt.Mem == MemSum {
		for k := 0; k < K; k++ {
			r := row()
			for i := 0; i < I; i++ {
				for j := 0; j < nJ[i]; j++ {
					r[fIdx[i][j][k]] = apps[i].Models[j].IntermediateMB
				}
			}
			aub = append(aub, r)
			bub = append(bub, memFrac*c.Edges[k].MemoryMB)
		}
	}
	// Bandwidth per edge (request forwarding only, hard with reserve; any
	// coordinator-reserved spend comes off the top).
	for k := 0; k < K; k++ {
		r := row()
		for i := 0; i < I; i++ {
			r[outIdx[i][k]] = apps[i].RequestMB
			r[inIdx[i][k]] = apps[i].RequestMB
		}
		budget := bwFrac*c.BandwidthMBAt(slot, k) - reservedAt(opt.ReservedMB, k)
		if budget < 0 {
			budget = 0
		}
		aub = append(aub, r)
		bub = append(bub, budget)
	}

	prob := &lp.Problem{C: obj, Aeq: aeq, Beq: beq, Aub: aub, Bub: bub, Ub: ub}
	lpOpt := lp.Options{}
	if opt.DenseEngine {
		lpOpt.Engine = lp.EngineDense
	}
	var res *lp.Result
	var err error
	if opt.Scratch != nil {
		res, err = lp.SolveScratch(prob, lpOpt, opt.Scratch)
	} else {
		res, err = lp.SolveOpts(prob, lpOpt)
	}
	if err != nil {
		return nil, fmt.Errorf("core: redistribution LP: %w", err)
	}
	if res.Status != lp.StatusOptimal {
		// Degenerate fallback: serve everything locally.
		return localRedistribution(arrivals, I, K), nil
	}

	// Fractional per-edge serve totals.
	serve := make([][]float64, I)
	for i := 0; i < I; i++ {
		serve[i] = make([]float64, K)
		for k := 0; k < K; k++ {
			for j := 0; j < nJ[i]; j++ {
				serve[i][k] += res.X[fIdx[i][j][k]]
			}
		}
	}
	alloc := roundAlloc(serve, arrivals, opt.RoundRNG)
	red := &Redistribution{Alloc: alloc, ForwardMB: make([]float64, K)}
	red.Transfers = matchTransfers(arrivals, alloc)
	red.enforceBandwidth(c, apps, arrivals, slot, bwFrac, opt.ReservedMB)
	for _, tr := range red.Transfers {
		mb := float64(tr.Count) * apps[tr.App].RequestMB
		red.ForwardMB[tr.From] += mb
		red.ForwardMB[tr.To] += mb
	}
	return red, nil
}

func orDefault(v, def float64) float64 {
	if mat.Zero(v) {
		return def
	}
	return v
}

// RealizeAllocation turns a target integer allocation into pairwise
// transfers from the arrival pattern, trimming transfers that exceed the
// per-edge forwarding budget (trimmed requests stay at their origin, and
// Alloc reflects the post-trim reality). reservedMB, which may be nil, is
// bandwidth a parent coordinator already spent per edge. Used by the
// drop-repair pass.
func RealizeAllocation(
	c *cluster.Cluster,
	apps []*models.Application,
	arrivals [][]int,
	alloc [][]int,
	slot int,
	bwFrac float64,
	reservedMB []float64,
) *Redistribution {
	K := c.N()
	cp := make([][]int, len(alloc))
	for i := range alloc {
		cp[i] = append([]int(nil), alloc[i]...)
	}
	red := &Redistribution{Alloc: cp, ForwardMB: make([]float64, K)}
	red.Transfers = matchTransfers(arrivals, cp)
	red.enforceBandwidth(c, apps, arrivals, slot, bwFrac, reservedMB)
	for _, tr := range red.Transfers {
		mb := float64(tr.Count) * apps[tr.App].RequestMB
		red.ForwardMB[tr.From] += mb
		red.ForwardMB[tr.To] += mb
	}
	return red
}

// localRedistribution serves every arrival where it landed.
func localRedistribution(arrivals [][]int, I, K int) *Redistribution {
	alloc := make([][]int, I)
	for i := 0; i < I; i++ {
		alloc[i] = append([]int(nil), arrivals[i]...)
	}
	return &Redistribution{Alloc: alloc, ForwardMB: make([]float64, K)}
}

// roundAlloc rounds fractional serve shares to integers preserving each
// app's total arrivals. Deterministic largest-remainder by default;
// randomized proportional when rng is non-nil (OAEI's randomized rounding).
func roundAlloc(serve [][]float64, arrivals [][]int, rng *rand.Rand) [][]int {
	I := len(serve)
	alloc := make([][]int, I)
	for i := 0; i < I; i++ {
		K := len(serve[i])
		alloc[i] = make([]int, K)
		total := 0
		for k := 0; k < K; k++ {
			total += arrivals[i][k]
		}
		if total == 0 {
			continue
		}
		floorSum := 0
		rem := make([]float64, K)
		for k := 0; k < K; k++ {
			fl := math.Floor(serve[i][k] + 1e-9)
			alloc[i][k] = int(fl)
			rem[k] = serve[i][k] - fl
			floorSum += alloc[i][k]
		}
		left := total - floorSum
		if left < 0 {
			// Numerical over-allocation: trim from smallest remainders.
			order := argsortDesc(rem)
			for idx := K - 1; idx >= 0 && left < 0; idx-- {
				k := order[idx]
				take := -left
				if take > alloc[i][k] {
					take = alloc[i][k]
				}
				alloc[i][k] -= take
				left += take
			}
		}
		if left > 0 {
			if rng == nil {
				// The leftover exceeds K whenever the LP parked workload in
				// its unserved slack, so keep cycling the remainder order
				// until everything is placed (stage 2 decides real drops).
				order := argsortDesc(rem)
				for left > 0 {
					for _, k := range order {
						if left == 0 {
							break
						}
						alloc[i][k]++
						left--
					}
				}
			} else {
				// Randomized rounding: distribute the leftover proportional
				// to the fractional remainders.
				for left > 0 {
					var sum float64
					for _, r := range rem {
						sum += r
					}
					k := 0
					if sum <= 0 {
						k = rng.Intn(K)
					} else {
						pick := rng.Float64() * sum
						for k = 0; k < K-1; k++ {
							pick -= rem[k]
							if pick <= 0 {
								break
							}
						}
					}
					alloc[i][k]++
					rem[k] = 0
					left--
				}
			}
		}
	}
	return alloc
}

func argsortDesc(v []float64) []int {
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return v[order[a]] > v[order[b]] })
	return order
}

// matchTransfers realizes an allocation from the arrival pattern with
// pairwise transfers (greedy surplus→deficit matching per app).
func matchTransfers(arrivals [][]int, alloc [][]int) []edgesim.Transfer {
	var out []edgesim.Transfer
	for i := range alloc {
		type pair struct{ k, n int }
		var surplus, deficit []pair
		for k := range alloc[i] {
			d := arrivals[i][k] - alloc[i][k]
			if d > 0 {
				surplus = append(surplus, pair{k, d})
			} else if d < 0 {
				deficit = append(deficit, pair{k, -d})
			}
		}
		si, di := 0, 0
		for si < len(surplus) && di < len(deficit) {
			n := surplus[si].n
			if deficit[di].n < n {
				n = deficit[di].n
			}
			out = append(out, edgesim.Transfer{App: i, From: surplus[si].k, To: deficit[di].k, Count: n})
			surplus[si].n -= n
			deficit[di].n -= n
			if surplus[si].n == 0 {
				si++
			}
			if deficit[di].n == 0 {
				di++
			}
		}
	}
	return out
}

// enforceBandwidth trims transfers that would exceed the per-edge forwarding
// budget after rounding (rare: rounding can nudge totals past the LP bound).
// Trimmed requests stay at their origin edge.
func (r *Redistribution) enforceBandwidth(
	c *cluster.Cluster,
	apps []*models.Application,
	arrivals [][]int,
	slot int,
	bwFrac float64,
	reservedMB []float64,
) {
	K := c.N()
	used := make([]float64, K)
	var kept []edgesim.Transfer
	for _, tr := range r.Transfers {
		mb := float64(tr.Count) * apps[tr.App].RequestMB
		fromBudget := bwFrac*c.BandwidthMBAt(slot, tr.From) - reservedAt(reservedMB, tr.From)
		toBudget := bwFrac*c.BandwidthMBAt(slot, tr.To) - reservedAt(reservedMB, tr.To)
		if used[tr.From]+mb <= fromBudget+1e-9 && used[tr.To]+mb <= toBudget+1e-9 {
			used[tr.From] += mb
			used[tr.To] += mb
			kept = append(kept, tr)
			continue
		}
		// Trim to whatever still fits.
		per := apps[tr.App].RequestMB
		fit := tr.Count
		if per > 0 {
			fitFrom := int((fromBudget - used[tr.From]) / per)
			fitTo := int((toBudget - used[tr.To]) / per)
			if fitFrom < fit {
				fit = fitFrom
			}
			if fitTo < fit {
				fit = fitTo
			}
		}
		if fit < 0 {
			fit = 0
		}
		if fit > 0 {
			mbFit := float64(fit) * per
			used[tr.From] += mbFit
			used[tr.To] += mbFit
			kept = append(kept, edgesim.Transfer{App: tr.App, From: tr.From, To: tr.To, Count: fit})
		}
		// Return the rest to the origin's allocation.
		back := tr.Count - fit
		r.Alloc[tr.App][tr.From] += back
		r.Alloc[tr.App][tr.To] -= back
	}
	r.Transfers = kept
}
