package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/miqp"
	"repro/internal/models"
	"repro/internal/par"
)

// SolveMode selects the per-slot solver strategy.
type SolveMode int

const (
	// SolveModeDecomposed runs the stage-1 redistribution LP followed by
	// per-edge exact MILPs — the scalable default.
	SolveModeDecomposed SolveMode = iota
	// SolveModeJoint solves the paper's full per-slot integer program over
	// all edges at once (exact, but only practical at small scale).
	SolveModeJoint
)

// String implements fmt.Stringer.
func (m SolveMode) String() string {
	switch m {
	case SolveModeDecomposed:
		return "decomposed"
	case SolveModeJoint:
		return "joint"
	default:
		return fmt.Sprintf("SolveMode(%d)", int(m))
	}
}

// Config assembles a BIRP-family scheduler.
type Config struct {
	Cluster *cluster.Cluster
	Apps    []*models.Application
	// Provider supplies TIR parameters. Nil means a fresh OnlineTuner with
	// the paper's chosen presets ε1 = 0.04, ε2 = 0.07 (§5.3).
	Provider ParamsProvider
	// DisplayName overrides the reported scheduler name.
	DisplayName string
	// Mode selects the batch execution style (BIRP: merged).
	Mode BatchMode
	// FixedB0 is required for ModeFixed (the MAX baseline).
	FixedB0 int
	// SolveMode selects joint vs decomposed solving.
	SolveMode SolveMode
	// MaxBatch caps merged batches (0 = DefaultMaxBatch).
	MaxBatch int
	// KneeCap enforces the paper's literal b ≤ β̂ batch cap (see
	// EdgeProblem.KneeCap); off by default.
	KneeCap bool
	// Mem selects the Eq. 6 memory interpretation (default MemTimeSliced).
	Mem MemModel
	// DropPenalty and OverflowPenaltyPerMS override the objective penalties
	// (0 = the package defaults).
	DropPenalty          float64
	OverflowPenaltyPerMS float64
	// SingleVersion restricts each application to one model version per edge
	// (the OAEI baseline's "model selection" granularity).
	SingleVersion bool
	// Preload enables predictive model pre-shipping: spare slot bandwidth
	// ships better model versions to edges whose EWMA-predicted demand
	// warrants them, so peaks find the models already resident instead of
	// competing with request forwarding for bandwidth (the workload-
	// prediction direction of the paper's related work [7]).
	Preload bool
	// PreloadMinDemand is the predicted per-(app, edge) demand below which
	// nothing is pre-shipped (0 = 3 requests/slot).
	PreloadMinDemand float64
	// Redist tunes stage 1 (decomposed mode only).
	Redist RedistOptions
	// SolveNodes bounds branch-and-bound effort per program (0 = default).
	SolveNodes int
	// GammaMS predicts single-request latency; nil uses the device model
	// (the paper plugs in the nn-Meter-style predictor here).
	GammaMS func(k ModelKey) float64
	// RoundSeed seeds the randomized rounding when Redist.RoundRNG is wanted
	// but not supplied directly.
	RoundSeed int64
	// Workers bounds the solve parallelism: concurrent per-edge MILPs in the
	// decomposed path and concurrent branch-and-bound relaxations inside each
	// program. Values ≤ 0 mean one worker per CPU (runtime.GOMAXPROCS(0)).
	// Plans are bit-identical for every worker count — the fan-out gathers
	// results in edge order and the B&B search is batch-synchronous — so
	// Workers only changes wall-clock time.
	Workers int
	// DisableSlotReuse turns off the cross-slot temporal acceleration layer
	// (incumbent seeding from the previous slot's plan, root-basis handoff,
	// plan memoization, per-edge delta skipping) and restores the cold
	// per-slot path, for equivalence testing and A/B measurement. Reuse only
	// changes which certified incumbent each solve starts from, so reuse-on
	// and reuse-off plans agree within the solver's 0.5% gap tolerance;
	// byte-identity across Workers values holds in both settings. Decomposed
	// mode only — the joint solver always runs cold.
	DisableSlotReuse bool
	// DenseEngine forces every LP relaxation (per-edge MILPs, the joint
	// program, and the redistribution LP) onto the legacy dense tableau
	// engine instead of the sparse revised simplex. A/B oracle switch: both
	// engines certify the same optima, so plans agree within solver
	// tolerance, and each engine is bit-identical across Workers values.
	DenseEngine bool
	// NoFactorReuse disables carrying LU factorizations across warm
	// dual-simplex re-entries inside each branch & bound tree, forcing a
	// refactorization on every warm entry (the pre-reuse behavior). A/B
	// switch for the fixed-cost-elimination layer: plans are byte-identical
	// with the knob on or off — only the Refactorizations/FactorReuses
	// counters move.
	NoFactorReuse bool
	// SlotCacheSize bounds the per-edge plan-memoization LRU (0 = 8 entries),
	// keeping the reuse layer's memory O(K·SlotCacheSize).
	SlotCacheSize int
	// Domains > 0 partitions the fleet into exactly that many collaboration
	// domains and enables hierarchical scheduling: each domain runs its own
	// redistribution LP + per-edge MILPs (concurrently across domains), and a
	// thin top-level coordinator settles cross-domain workload flow with a
	// deterministic greedy dual-adjustment pass over the Eq. 3 conservation
	// constraint before the domains solve. Decomposed mode only. See
	// hierarchy.go for the determinism argument; plans stay byte-identical
	// across Workers values in hierarchical mode too.
	Domains int
	// DomainSize bounds domain sizes instead of fixing their count: the fleet
	// splits into ⌈K/DomainSize⌉ domains. Either knob enables hierarchical
	// scheduling; when both are zero the scheduler is monolithic (the
	// historical behavior). With one resulting domain the hierarchical path
	// reduces exactly to the monolithic one.
	DomainSize int
	// CoordRounds bounds the coordinator's cross-domain balancing rounds per
	// slot (0 = 2). Each round pairs the most- and least-loaded domains and
	// moves workload until their congestion estimates meet or bandwidth runs
	// out; more rounds refine the balance at O(K) cost each.
	CoordRounds int
	// RootBasisHandoff re-enters each edge's root relaxation from the optimal
	// root basis captured in the previous slot (in addition to the incumbent
	// seeding the reuse layer always does). Off by default: the handoff is
	// correct — the crash re-derives reduced costs from the new slot's costs,
	// and objectives agree to solver tolerance either way — but re-entering an
	// alternative optimal root vertex perturbs branching enough that the
	// ModeFixed (MAX) benchmark trees grow ~35% (fig7 150 slots: 88.8k →
	// 119.6k nodes), outweighing the pivots saved at the root. Enable for
	// workloads whose slot-to-slot root relaxations are near-identical; no
	// effect when DisableSlotReuse is set.
	RootBasisHandoff bool
}

// Scheduler is the BIRP-family per-slot decision maker. BIRP itself, BIRP-OFF
// (offline provider), and MAX (fixed B0) are all configurations of this type;
// OAEI lives in package baseline with its own latency learner.
type Scheduler struct {
	cfg      Config
	provider ParamsProvider
	name     string
	prev     []map[[2]int]bool // per edge: models resident from last slot
	gamma    func(k ModelKey) float64
	down     []bool      // edges currently marked failed (SetEdgeDown)
	ewma     [][]float64 // per (app, edge) demand estimate for preloading
	solver   miqp.Stats  // cumulative MIQP counters across all Decide calls
	// Cross-slot temporal reuse state (see reuse.go); nil when
	// Config.DisableSlotReuse is set.
	reuse []*edgeReuse
	// pool and redistScratch keep the LP scratch arenas alive across slots —
	// unlike sync.Pool storage, they survive GC cycles, so the steady-state
	// slot loop allocates almost nothing for solver workspaces.
	pool          *miqp.ScratchPool
	redistScratch *lp.Scratch
	// edgeScr holds one SolveEdge model-build scratch per fan-out worker
	// (indexed by the par.ForEach worker id, so there is no contention);
	// grown lazily.
	edgeScr []*edgeScratch
	// Slot-loop buffers reused across Decide calls (decideDecomposed):
	// per-edge assignments, fingerprints, workload rows (cut from one
	// backing slab), ship budgets, parameter snapshots, and the pending
	// solve list. All are overwritten at the start of each slot; nothing
	// returned to the caller aliases them.
	slotAsgs   []*EdgeAssignment
	slotFP     []uint64
	slotWS     [][]int
	slotWSBack []int
	slotShips  []float64
	slotFPs    []uint64
	slotSnaps  []paramSnapshot
	slotSolve  []int
	// hier is the hierarchical decomposition state (domain partition,
	// per-domain sub-schedulers, coordinator caches); nil in monolithic mode.
	hier *hierState
	// serveT counts windowed re-solves (Replan in window.go): the online
	// serving layer has no simulator slot index, so Replan synthesizes a
	// monotone one to keep the provider ticking and the reuse layer keyed.
	serveT int
	// bwReserved[k] is forwarding bandwidth the parent coordinator already
	// spent at edge k this slot (cross-domain transfers charge both ends).
	// Stage 1, the ship budget, and preloading all plan against the remaining
	// budget. Nil at the top level; set per slot on domain sub-schedulers.
	bwReserved []float64
}

// reservedMB returns the coordinator's bandwidth spend at edge k this slot.
func (s *Scheduler) reservedMB(k int) float64 {
	if s.bwReserved == nil {
		return 0
	}
	return s.bwReserved[k]
}

// New builds a scheduler. The zero Config value is invalid; Cluster and Apps
// are required.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Cluster == nil || len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("core: scheduler needs a cluster and applications")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode == ModeFixed && cfg.FixedB0 <= 0 {
		return nil, fmt.Errorf("core: ModeFixed requires FixedB0 > 0")
	}
	s := &Scheduler{cfg: cfg, provider: cfg.Provider}
	if s.provider == nil {
		s.provider = NewOnlineTuner(0.04, 0.07)
	}
	s.name = cfg.DisplayName
	if s.name == "" {
		s.name = "BIRP"
	}
	s.gamma = cfg.GammaMS
	if s.gamma == nil {
		s.gamma = func(k ModelKey) float64 {
			m := cfg.Apps[k.App].Models[k.Version]
			return cfg.Cluster.Edges[k.Edge].Device.SingleLatencyMS(m.Profile)
		}
	}
	if cfg.Redist.RoundRNG == nil && cfg.RoundSeed != 0 {
		s.cfg.Redist.RoundRNG = rand.New(rand.NewSource(cfg.RoundSeed))
	}
	// Stage 1 and stage 2 must agree on the batch-cap and memory regimes.
	s.cfg.Redist.KneeCap = cfg.KneeCap
	s.cfg.Redist.MaxBatch = cfg.MaxBatch
	s.cfg.Redist.Mem = cfg.Mem
	s.reset()
	if cfg.Domains > 0 || cfg.DomainSize > 0 {
		if cfg.SolveMode != SolveModeDecomposed {
			return nil, fmt.Errorf("core: hierarchical scheduling requires SolveModeDecomposed")
		}
		h, err := newHierState(s)
		if err != nil {
			return nil, err
		}
		s.hier = h
	}
	return s, nil
}

func (s *Scheduler) reset() {
	s.prev = make([]map[[2]int]bool, s.cfg.Cluster.N())
	for k := range s.prev {
		s.prev[k] = map[[2]int]bool{}
	}
	s.down = make([]bool, s.cfg.Cluster.N())
	s.ewma = make([][]float64, len(s.cfg.Apps))
	for i := range s.ewma {
		s.ewma[i] = make([]float64, s.cfg.Cluster.N())
	}
	s.reuse = nil
	if !s.cfg.DisableSlotReuse {
		s.reuse = make([]*edgeReuse, s.cfg.Cluster.N())
		for k := range s.reuse {
			s.reuse[k] = newEdgeReuse(s.cfg.SlotCacheSize)
		}
	}
	s.pool = miqp.NewScratchPool()
	s.redistScratch = lp.NewScratch()
	s.edgeScr = nil
}

// edgeScratchFor returns the per-worker SolveEdge scratch, growing the table
// on first use. Callers are the sequential setup of a fan-out (never the
// workers themselves), so no locking is needed.
func (s *Scheduler) edgeScratchFor(w int) *edgeScratch {
	for len(s.edgeScr) <= w {
		s.edgeScr = append(s.edgeScr, &edgeScratch{b: miqp.NewBuilder()})
	}
	return s.edgeScr[w]
}

// SetEdgeDown marks an edge failed (true) or recovered (false). Failed edges
// receive no redistributed workload and no deployments; the distributed
// prototype calls this when an agent's connection dies so the remaining
// edges absorb the load.
func (s *Scheduler) SetEdgeDown(k int, down bool) {
	if k >= 0 && k < len(s.down) {
		s.down[k] = down
		if s.hier != nil {
			s.hier.subs[s.hier.domainOf[k]].SetEdgeDown(s.hier.localOf[k], down)
		}
	}
}

// Name implements edgesim.Scheduler.
func (s *Scheduler) Name() string { return s.name }

// SolverStats returns the cumulative MIQP solver counters across every Decide
// call so far (fresh solves only; cached per-edge assignments are not
// recounted). The experiment runners surface this through birpbench
// -solverstats.
func (s *Scheduler) SolverStats() miqp.Stats { return s.solver }

// Provider exposes the TIR parameter provider (tests, diagnostics).
func (s *Scheduler) Provider() ParamsProvider { return s.provider }

// Decide implements edgesim.Scheduler.
func (s *Scheduler) Decide(t int, arrivals [][]int) (*edgesim.Plan, error) {
	if len(arrivals) != len(s.cfg.Apps) {
		return nil, fmt.Errorf("core: arrivals for %d apps, want %d", len(arrivals), len(s.cfg.Apps))
	}
	for i, row := range arrivals {
		if len(row) != s.cfg.Cluster.N() {
			return nil, fmt.Errorf("core: arrivals row %d has %d edges, want %d", i, len(row), s.cfg.Cluster.N())
		}
		for k, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("core: negative arrivals at (%d, %d)", i, k)
			}
		}
	}
	s.provider.Tick()
	if s.cfg.SolveMode == SolveModeJoint {
		return s.decideJoint(t, arrivals)
	}
	if s.hier != nil {
		return s.decideHierarchical(t, arrivals)
	}
	return s.decideDecomposed(t, arrivals)
}

// repairAttempts bounds the drop-repair loop of the decomposed solver.
const repairAttempts = 3

func (s *Scheduler) decideDecomposed(t int, arrivals [][]int) (*edgesim.Plan, error) {
	c := s.cfg.Cluster
	I := len(s.cfg.Apps)
	K := c.N()
	bwFrac := orDefault(s.cfg.Redist.BwFrac, 0.7)

	redistOpts := s.cfg.Redist
	redistOpts.DownEdges = s.down
	redistOpts.Scratch = s.redistScratch
	redistOpts.DenseEngine = s.cfg.DenseEngine
	redistOpts.ReservedMB = s.bwReserved
	red, err := Redistribute(c, s.cfg.Apps, arrivals,
		s.provider.Params, s.gamma, t, redistOpts)
	if err != nil {
		return nil, err
	}

	// Stage 2 with drop repair: if an edge must drop requests (batch caps,
	// model-shipping budget, memory), move them to edges with compute
	// headroom and re-solve. The joint solver handles this coupling
	// natively; this loop recovers most of it at a fraction of the cost.
	//
	// The per-edge solves are independent, so each repair round fans them out
	// over a bounded worker pool and gathers results in edge order — the plan
	// is bit-identical to the serial path. SolveEdge is deterministic in its
	// inputs, which are summarized per edge into a fingerprint (reuse.go):
	// edges whose fingerprint is unchanged within the slot keep their
	// assignment, and — when cross-slot reuse is on — edges whose fingerprint
	// matches the previous slot's problem (delta skip) or a memoized one
	// (memo hit) adopt the cached plan fragment without solving at all.
	// Cap the fan-out at the schedulable CPUs: an oversubscribed pool pays
	// goroutine and merge overhead without any concurrency (plans are
	// pool-width independent, so the cap cannot change results).
	workers := par.CapWorkers(s.cfg.Workers)
	if cap(s.slotAsgs) < K {
		s.slotAsgs = make([]*EdgeAssignment, K)
		s.slotFP = make([]uint64, K)
		s.slotWS = make([][]int, K)
		s.slotShips = make([]float64, K)
		s.slotFPs = make([]uint64, K)
		s.slotSnaps = make([]paramSnapshot, K)
		s.slotSolve = make([]int, 0, K)
	}
	if cap(s.slotWSBack) < K*I {
		s.slotWSBack = make([]int, K*I)
	}
	asgs := s.slotAsgs[:K]
	for k := range asgs {
		asgs[k] = nil // a nil entry means "not yet assigned this slot"
	}
	curFP := s.slotFP[:K] // fingerprint behind asgs[k] (valid when non-nil)
	ws := s.slotWS[:K]
	ships := s.slotShips[:K]
	fps := s.slotFPs[:K]
	snaps := s.slotSnaps[:K]
	solve0 := s.slotSolve[:0]
	var plan *edgesim.Plan
	var slotSolver miqp.Stats // fresh solves only, accumulated across repairs
	for attempt := 0; ; attempt++ {
		// Serial pre-pass: compute workloads, ship budgets, parameter
		// snapshots (the online provider materializes per-key tuner state
		// lazily, so first reads mutate it and must not race) and the problem
		// fingerprints; then satisfy whatever the caches can. All reuse-state
		// reads and writes happen here or in the edge-order gather below,
		// never inside the fan-out.
		solve := solve0[:0]
		for k := 0; k < K; k++ {
			w := s.slotWSBack[k*I : (k+1)*I : (k+1)*I]
			for i := 0; i < I; i++ {
				w[i] = red.Alloc[i][k]
			}
			ws[k] = w
			if s.down[k] {
				// A failed edge cannot execute: whatever rounding left here
				// is dropped (stage 1 already steers flow away), and its
				// carried solver state would describe a world that no longer
				// exists — clear it so a recovered edge re-solves cold.
				asgs[k] = &EdgeAssignment{Dropped: w, PredictedMS: c.SlotMS() * 100}
				if s.reuse != nil {
					s.reuse[k].clear()
				}
				continue
			}
			// Stage 1 reserved (1 − bwFrac) of the bandwidth for shipping;
			// whatever forwarding left unspent is released to shipping too.
			// Cross-domain transfers the coordinator already booked come off
			// the top — that bandwidth is spent before this solver plans.
			ship := c.BandwidthMBAt(t, k) - red.ForwardMB[k] - s.reservedMB(k)
			if ship < 0 {
				ship = 0
			}
			ships[k] = ship
			s.snapshotParams(k, w, &snaps[k])
			fps[k] = s.fingerprintEdge(k, w, ship, &snaps[k])
			if asgs[k] != nil && fps[k] == curFP[k] {
				continue // unchanged within this slot
			}
			if ru := reuseFor(s.reuse, k); ru != nil {
				if ru.hasCur && ru.curFP == fps[k] {
					// Delta skip: the problem is identical to the one behind
					// the edge's previous plan.
					asgs[k] = cloneAssignment(ru.cur)
					curFP[k] = fps[k]
					slotSolver.DeltaSkippedEdges++
					continue
				}
				if hit := ru.lookup(fps[k]); hit != nil {
					asgs[k] = cloneAssignment(hit)
					curFP[k] = fps[k]
					slotSolver.MemoHits++
					ru.noteReused(fps[k], hit)
					continue
				}
			}
			solve = append(solve, k)
		}
		// Two-level split of the worker budget: with more pending edges than
		// workers each MILP runs serially and the fan-out is K-wide; with
		// fewer (small domains, late repair rounds, heavy cache hits) the
		// leftover workers parallelize the branch & bound inside each MILP
		// instead of idling.
		outer, inner := par.TwoLevel(workers, len(solve))
		if outer > 0 {
			s.edgeScratchFor(outer - 1) // pre-grow before the workers race
		}
		if err := par.ForEach(outer, len(solve), func(w, idx int) error {
			k := solve[idx]
			snap := &snaps[k]
			ep := &EdgeProblem{
				Edge: c.Edges[k], EdgeIdx: k, Apps: s.cfg.Apps, Workload: ws[k],
				Params:               snap.params,
				GammaMS:              snap.gammaAt,
				SlotMS:               c.SlotMS(),
				ShipBudgetMB:         ships[k],
				PrevDeployed:         s.prev[k],
				Mode:                 s.cfg.Mode,
				FixedB0:              s.cfg.FixedB0,
				MaxBatch:             s.cfg.MaxBatch,
				Mem:                  s.cfg.Mem,
				KneeCap:              s.cfg.KneeCap,
				SolveNodes:           s.cfg.SolveNodes,
				DropPenalty:          s.cfg.DropPenalty,
				OverflowPenaltyPerMS: s.cfg.OverflowPenaltyPerMS,
				SingleVersion:        s.cfg.SingleVersion,
				Workers:              inner(idx),
				DenseEngine:          s.cfg.DenseEngine,
				NoFactorReuse:        s.cfg.NoFactorReuse,
				Pool:                 s.pool,
				scratch:              s.edgeScr[w],
			}
			if ru := reuseFor(s.reuse, k); ru != nil {
				// Temporal warm starts: the previous plan seeds the incumbent
				// (after repair) and the previous root basis re-enters the
				// root relaxation. Read-only here; updates happen in the
				// sequential gather.
				if ru.hasCur {
					ep.Seed = ru.cur
				}
				if s.cfg.RootBasisHandoff {
					ep.RootBasis = ru.basis
					ep.CaptureRootBasis = true
				}
			}
			asg, err := SolveEdge(ep)
			if err != nil {
				return err
			}
			asgs[k] = asg
			return nil
		}); err != nil {
			return nil, err
		}
		// Gather in edge order so the assembled plan never depends on solve
		// completion order. Solver counters and reuse-state updates are
		// applied in the same order, so the aggregate — and every future
		// slot's seeds — are worker-count independent too.
		for _, k := range solve {
			slotSolver.Add(asgs[k].Solver)
			curFP[k] = fps[k]
			if ru := reuseFor(s.reuse, k); ru != nil {
				ru.noteFresh(fps[k], asgs[k])
			}
		}
		plan = &edgesim.Plan{Transfers: red.Transfers}
		plan.Dropped = make([][]int, I)
		for i := range plan.Dropped {
			plan.Dropped[i] = make([]int, K)
		}
		totalDrops := 0
		for k := 0; k < K; k++ {
			asg := asgs[k]
			plan.Deployments = append(plan.Deployments, asg.Deployments...)
			for i := 0; i < I; i++ {
				plan.Dropped[i][k] = asg.Dropped[i]
				totalDrops += asg.Dropped[i]
			}
		}
		if totalDrops == 0 || attempt >= repairAttempts-1 {
			break
		}
		moved := s.moveDrops(red.Alloc, plan.Dropped, asgs)
		if !moved {
			break
		}
		red = RealizeAllocation(c, s.cfg.Apps, arrivals, red.Alloc, t, bwFrac, s.bwReserved)
	}
	plan.Solver = &slotSolver
	s.solver.Add(slotSolver)
	s.maybePreload(t, arrivals, plan)
	s.noteDeployments(plan)
	return plan, nil
}

// paramSnapshot holds per-edge TIR parameters and γ predictions captured
// before the per-edge fan-out, so worker goroutines never touch the (lazily
// materializing) provider or a caller-supplied GammaMS func concurrently.
// Snapshots are pooled per edge slot (Scheduler.slotSnaps): rows of apps with
// zero workload may hold stale values from an earlier slot, and every reader
// (fingerprintEdge, SolveEdge via params/gammaAt) touches only apps with
// positive workload.
type paramSnapshot struct {
	par   [][]bandit.TIRParams // [app][version]; valid only where workload > 0
	gamma [][]float64
}

func (ps *paramSnapshot) params(i, j int) bandit.TIRParams { return ps.par[i][j] }
func (ps *paramSnapshot) gammaAt(i, j int) float64         { return ps.gamma[i][j] }

// snapshotParams captures the TIR/γ values edge k's solve will read, touching
// exactly the keys the serial path would (apps with positive workload),
// filling ps in place (allocation-free once its rows have grown).
func (s *Scheduler) snapshotParams(k int, w []int, ps *paramSnapshot) {
	I := len(s.cfg.Apps)
	if cap(ps.par) < I {
		ps.par = make([][]bandit.TIRParams, I)
		ps.gamma = make([][]float64, I)
	}
	ps.par = ps.par[:I]
	ps.gamma = ps.gamma[:I]
	for i, app := range s.cfg.Apps {
		if w[i] <= 0 {
			continue
		}
		nm := len(app.Models)
		if cap(ps.par[i]) < nm {
			ps.par[i] = make([]bandit.TIRParams, nm)
			ps.gamma[i] = make([]float64, nm)
		}
		ps.par[i] = ps.par[i][:nm]
		ps.gamma[i] = ps.gamma[i][:nm]
		for j := range app.Models {
			key := ModelKey{Edge: k, App: i, Version: j}
			ps.par[i][j] = s.provider.Params(key)
			ps.gamma[i][j] = s.gamma(key)
		}
	}
}

// moveDrops reassigns dropped requests to the edges with the most compute
// headroom. It mutates alloc in place and reports whether anything moved.
func (s *Scheduler) moveDrops(alloc [][]int, dropped [][]int, asgs []*EdgeAssignment) bool {
	K := s.cfg.Cluster.N()
	slotMS := s.cfg.Cluster.SlotMS()
	headroom := make([]float64, K)
	for k := 0; k < K; k++ {
		headroom[k] = slotMS - asgs[k].PredictedMS
	}
	moved := false
	for i := range dropped {
		for k := 0; k < K; k++ {
			n := dropped[i][k]
			if n <= 0 {
				continue
			}
			// Candidate targets: other edges, most headroom first.
			order := argsortDesc(headroom)
			for _, k2 := range order {
				if n == 0 {
					break
				}
				if k2 == k || headroom[k2] < 0.1*slotMS {
					continue
				}
				// A rough per-request cost estimate limits how much one
				// target absorbs this round.
				g := s.gamma(ModelKey{Edge: k2, App: i, Version: 0})
				fit := int(headroom[k2] / math.Max(g, 1))
				if fit <= 0 {
					continue
				}
				if fit > n {
					fit = n
				}
				alloc[i][k] -= fit
				alloc[i][k2] += fit
				headroom[k2] -= float64(fit) * g
				n -= fit
				moved = true
			}
		}
	}
	return moved
}

func (s *Scheduler) noteDeployments(plan *edgesim.Plan) {
	for k := range s.prev {
		// Clear in place: the maps live for the scheduler's lifetime and
		// deleting every key is iteration-order independent.
		//birplint:ordered
		for key := range s.prev[k] {
			delete(s.prev[k], key)
		}
	}
	for _, d := range plan.Deployments {
		s.prev[d.Edge][[2]int{d.App, d.Version}] = true
	}
	for _, pl := range plan.Preloads {
		s.prev[pl.Edge][[2]int{pl.App, pl.Version}] = true
	}
}

// preloadAlpha is the EWMA smoothing factor for demand prediction.
const preloadAlpha = 0.3

// maybePreload spends leftover slot bandwidth shipping better model versions
// to edges whose predicted demand justifies them. It appends to
// plan.Preloads; residency is recorded by noteDeployments.
func (s *Scheduler) maybePreload(t int, arrivals [][]int, plan *edgesim.Plan) {
	// Update demand estimates first (predict t+1 from everything ≤ t).
	for i := range arrivals {
		for k, v := range arrivals[i] {
			s.ewma[i][k] += preloadAlpha * (float64(v) - s.ewma[i][k])
		}
	}
	if !s.cfg.Preload {
		return
	}
	minDemand := s.cfg.PreloadMinDemand
	if mat.Zero(minDemand) {
		minDemand = 3
	}
	c := s.cfg.Cluster
	K := c.N()
	// Spare bandwidth per edge after this plan's forwarding and shipping
	// (and any budget the parent coordinator already committed).
	spare := make([]float64, K)
	for k := 0; k < K; k++ {
		spare[k] = c.BandwidthMBAt(t, k) - s.reservedMB(k)
	}
	for _, tr := range plan.Transfers {
		mb := float64(tr.Count) * s.cfg.Apps[tr.App].RequestMB
		spare[tr.From] -= mb
		spare[tr.To] -= mb
	}
	shipped := make([]map[[2]int]bool, K)
	for k := range shipped {
		shipped[k] = map[[2]int]bool{}
	}
	for _, d := range plan.Deployments {
		key := [2]int{d.App, d.Version}
		if !s.prev[d.Edge][key] && !shipped[d.Edge][key] {
			shipped[d.Edge][key] = true
			spare[d.Edge] -= s.cfg.Apps[d.App].Models[d.Version].CompressedMB
		}
	}
	for k := 0; k < K; k++ {
		if s.down[k] || spare[k] <= 0 {
			continue
		}
		// Best candidate: the highest-demand app whose next-better version
		// (above anything resident or deployed this slot) fits the spare.
		bestApp, bestVer := -1, -1
		bestDemand := minDemand
		for i := range s.cfg.Apps {
			if s.ewma[i][k] < bestDemand {
				continue
			}
			top := -1
			for j := range s.cfg.Apps[i].Models {
				key := [2]int{i, j}
				if s.prev[k][key] || shipped[k][key] {
					if j > top {
						top = j
					}
				}
			}
			for j := len(s.cfg.Apps[i].Models) - 1; j > top; j-- {
				if s.cfg.Apps[i].Models[j].CompressedMB <= spare[k] {
					bestApp, bestVer = i, j
					bestDemand = s.ewma[i][k]
					break
				}
			}
		}
		if bestApp >= 0 {
			plan.Preloads = append(plan.Preloads, edgesim.Preload{App: bestApp, Version: bestVer, Edge: k})
			spare[k] -= s.cfg.Apps[bestApp].Models[bestVer].CompressedMB
		}
	}
}

// Observe implements edgesim.Scheduler: realized TIR measurements flow into
// the MAB tuners (Eq. 15–22).
func (s *Scheduler) Observe(t int, fbs []edgesim.Feedback) {
	for _, fb := range fbs {
		s.provider.Observe(ModelKey{Edge: fb.Edge, App: fb.App, Version: fb.Version}, fb.Batch, fb.TIR)
	}
}
