package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

func TestSLOClassesHelper(t *testing.T) {
	apps := models.Catalogue(3, 2)
	apps[0].SLOFrac = 0.5
	apps[1].SLOFrac = 1.0
	apps[2].SLOFrac = 0.5
	got := sloClasses(apps, []int{1, 1, 1})
	if len(got) != 2 || got[0] != 0.5 || got[1] != 1.0 {
		t.Fatalf("classes = %v, want [0.5 1.0]", got)
	}
	// Zero-workload apps contribute no class.
	got = sloClasses(apps, []int{0, 1, 0})
	if len(got) != 1 || got[0] != 1.0 {
		t.Fatalf("classes = %v, want [1.0]", got)
	}
	// Empty input defaults to the slot itself.
	got = sloClasses(nil, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("classes = %v, want [1]", got)
	}
}

func TestTightSLOBudgetsConstrainPlanning(t *testing.T) {
	apps := models.Catalogue(1, 3)
	apps[0].SLOFrac = 0.25 // must finish in a quarter slot
	p := edgeProblem(nil, ModeMerged)
	p.Apps = apps
	p.Workload = []int{60}
	asg, err := SolveEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	// The planned time must respect the tightened budget (within the small
	// overflow the penalty admits).
	if asg.PredictedMS > 0.25*p.SlotMS+asg.OverflowMS+1e-6 {
		t.Fatalf("planned %v ms exceeds tight budget %v + overflow %v",
			asg.PredictedMS, 0.25*p.SlotMS, asg.OverflowMS)
	}
	// Against the full-slot variant, the tight-SLO plan must not serve with
	// strictly better models (it has a quarter of the compute).
	full := edgeProblem(nil, ModeMerged)
	full.Apps = models.Catalogue(1, 3)
	full.Workload = []int{60}
	fullAsg, err := SolveEdge(full)
	if err != nil {
		t.Fatal(err)
	}
	lossOf := func(a *EdgeAssignment, apps []*models.Application) float64 {
		var l float64
		for _, d := range a.Deployments {
			l += apps[d.App].Models[d.Version].Loss * float64(d.Requests)
		}
		return l
	}
	if lossOf(asg, apps) < lossOf(fullAsg, full.Apps)-1e-9 {
		t.Fatalf("quarter-slot budget cannot beat full slot: %v vs %v",
			lossOf(asg, apps), lossOf(fullAsg, full.Apps))
	}
}

func TestMixedSLOsEndToEnd(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	apps[0].SLOFrac = 0.3 // latency-critical application
	s, err := New(Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.Generate(trace.Config{
		Apps: 2, Edges: c.N(), Slots: 30, Seed: 4, MeanPerSlot: 35, Imbalance: 0.8,
	})
	res, err := sim.Run(s, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	// With the planner honoring the nested budget and the executor running
	// the tight class first, the latency-critical app's failures must stay
	// manageable even at a 0.3-slot deadline.
	if fr := res.FailureRate(); fr > 0.10 {
		t.Fatalf("failure rate %v too high for SLO-aware planning", fr)
	}
}

func TestSLOAwareBeatsUnawareExecutorOrder(t *testing.T) {
	// The same plans executed with the tight class first must produce fewer
	// tight-class violations than the app-order baseline. We approximate by
	// comparing failure rates with SLOFrac set vs cleared on the SAME
	// workload: the cleared run treats 1.0 as the deadline for everyone, so
	// instead we assert the tight-SLO run is not catastrophically worse than
	// the default run's overall failure rate.
	c := cluster.Small()
	mk := func(tight bool) float64 {
		apps := models.Catalogue(2, 3)
		if tight {
			apps[0].SLOFrac = 0.4
		}
		s, err := New(Config{Cluster: c, Apps: apps})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := trace.Generate(trace.Config{
			Apps: 2, Edges: c.N(), Slots: 25, Seed: 6, MeanPerSlot: 30, Imbalance: 0.8,
		})
		res, err := sim.Run(s, tr.R)
		if err != nil {
			t.Fatal(err)
		}
		return res.FailureRate()
	}
	tightFR := mk(true)
	baseFR := mk(false)
	if tightFR > baseFR+0.1 {
		t.Fatalf("tight-SLO failure rate %v far above baseline %v", tightFR, baseFR)
	}
}
