package core

import (
	"testing"

	"repro/internal/cluster"
)

func clusterSmallForCover() *cluster.Cluster { return cluster.Small() }

func TestSmallHelperCoverage(t *testing.T) {
	if MemTimeSliced.String() != "time-sliced" || MemSum.String() != "eq6-sum" || MemModel(9).String() == "" {
		t.Fatal("MemModel strings wrong")
	}
	if orDefault(0, 5) != 5 || orDefault(2, 5) != 2 {
		t.Fatal("orDefault wrong")
	}
	red := localRedistribution([][]int{{3, 1}}, 1, 2)
	if red.Alloc[0][0] != 3 || red.Alloc[0][1] != 1 || len(red.Transfers) != 0 {
		t.Fatalf("localRedistribution = %+v", red)
	}
	// SetEdgeDown bounds are forgiving.
	s, err := New(Config{Cluster: clusterSmallForCover(), Apps: testApps()})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEdgeDown(-1, true) // no-op, no panic
	s.SetEdgeDown(99, true) // no-op, no panic
	s.SetEdgeDown(0, true)
	s.SetEdgeDown(0, false)
}

func TestDecideInputValidation(t *testing.T) {
	s, err := New(Config{Cluster: clusterSmallForCover(), Apps: testApps()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decide(0, [][]int{{1, 2, 3}}); err == nil {
		t.Fatal("wrong app count must error")
	}
	if _, err := s.Decide(0, [][]int{{1, 2}, {1, 2}}); err == nil {
		t.Fatal("wrong edge count must error")
	}
	if _, err := s.Decide(0, [][]int{{1, -2, 3}, {0, 0, 0}}); err == nil {
		t.Fatal("negative arrivals must error")
	}
}
