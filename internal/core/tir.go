// Package core implements the BIRP scheduler: batch-aware inference workload
// redistribution with online TIR hyperparameter tuning (paper §4).
//
// Per slot the scheduler (1) shades its TIR hyperparameter estimates with the
// MAB lower-confidence rule of §4.2, (2) linearizes the batch-time law via
// the Taylor expansion of §4.3, (3) solves the redistribution + model
// selection + batch sizing problem P1/P2, and (4) feeds realized TIR
// observations back into the tuners.
//
// Two solver strategies are provided. SolveModeJoint builds the paper's full
// per-slot integer program over all edges at once and solves it exactly with
// the miqp branch-and-bound — faithful but only practical at small scale
// (the paper hands this to Gurobi). SolveModeDecomposed first fixes the
// redistribution with a fractional LP (stage 1) and then solves each edge's
// model-selection/batch-sizing program exactly and independently (stage 2);
// it is the scalable default, and the abl-solver bench quantifies the gap
// between the two on instances where both run.
package core

import (
	"fmt"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/fit"
	"repro/internal/mat"
	"repro/internal/models"
)

// ModelKey identifies one (edge, app, version) combination.
type ModelKey struct {
	Edge, App, Version int
}

// ParamsProvider supplies TIR hyperparameters per (edge, model).
type ParamsProvider interface {
	// Params returns the TIR-law parameters to plan with.
	Params(k ModelKey) bandit.TIRParams
	// Observe feeds a realized TIR measurement at batch size b.
	Observe(k ModelKey, b int, tir float64)
	// Tick advances one scheduling slot.
	Tick()
}

// OnlineTuner is the paper's §4.2 provider: one MAB tuner per (edge, model).
type OnlineTuner struct {
	Eps1, Eps2 float64
	// LiteralEq22 is forwarded to each bandit.Tuner.
	LiteralEq22 bool
	tuners      map[ModelKey]*bandit.Tuner
	slots       int // Ticks so far; late-created tuners catch up
}

// NewOnlineTuner builds an empty online provider with the given presets.
func NewOnlineTuner(eps1, eps2 float64) *OnlineTuner {
	return &OnlineTuner{Eps1: eps1, Eps2: eps2, tuners: map[ModelKey]*bandit.Tuner{}}
}

func (o *OnlineTuner) tuner(k ModelKey) *bandit.Tuner {
	t, ok := o.tuners[k]
	if !ok {
		t = bandit.NewTuner(o.Eps1, o.Eps2)
		t.LiteralEq22 = o.LiteralEq22
		for i := 0; i < o.slots; i++ {
			t.Tick()
		}
		o.tuners[k] = t
	}
	return t
}

// Params implements ParamsProvider.
func (o *OnlineTuner) Params(k ModelKey) bandit.TIRParams { return o.tuner(k).Params() }

// Observe implements ParamsProvider.
func (o *OnlineTuner) Observe(k ModelKey, b int, tir float64) { o.tuner(k).Observe(b, tir) }

// Tick implements ParamsProvider: every tuner's slot counter advances, so the
// Eq. 17 padding keeps its ln(t+1) numerator in sync with wall-clock slots.
func (o *OnlineTuner) Tick() {
	// Each tuner only advances its own slot counter, so iteration order is
	// unobservable.
	//birplint:ordered
	for _, t := range o.tuners {
		t.Tick()
	}
	o.slots++
}

// Historical returns the unshaded estimates for a key (tests/diagnostics).
func (o *OnlineTuner) Historical(k ModelKey) bandit.TIRParams { return o.tuner(k).Historical() }

// OfflineProvider serves fixed, pre-profiled parameters (BIRP-OFF): no
// shading, no updates.
type OfflineProvider struct {
	Table map[ModelKey]bandit.TIRParams
	// Fallback is returned for unknown keys (defaults to Eq. 23 values).
	Fallback bandit.TIRParams
}

// Params implements ParamsProvider.
func (p *OfflineProvider) Params(k ModelKey) bandit.TIRParams {
	if v, ok := p.Table[k]; ok {
		return v
	}
	if mat.Zero(p.Fallback.Beta) {
		return bandit.TIRParams{Eta: bandit.InitEta, Beta: bandit.InitBeta, C: bandit.InitC}
	}
	return p.Fallback
}

// Observe implements ParamsProvider (no-op: offline profiles are fixed).
func (p *OfflineProvider) Observe(ModelKey, int, float64) {}

// Tick implements ParamsProvider (no-op).
func (p *OfflineProvider) Tick() {}

// ProfileOffline measures each (edge, model) TIR curve on the deterministic
// device model and fits the Eq. 2 law — the "offline analysis of the
// relationship between batch size and TIR" that BIRP-OFF performs. maxB
// bounds the profiled batch range (the paper profiles up to 16).
func ProfileOffline(c *cluster.Cluster, apps []*models.Application, maxB int) (*OfflineProvider, error) {
	if maxB < 2 {
		return nil, fmt.Errorf("core: ProfileOffline needs maxB ≥ 2, got %d", maxB)
	}
	out := &OfflineProvider{Table: map[ModelKey]bandit.TIRParams{}}
	for kIdx, e := range c.Edges {
		for _, app := range apps {
			for _, m := range app.Models {
				var samples []fit.Sample
				for b := 1; b <= maxB; b++ {
					samples = append(samples, fit.Sample{B: b, TIR: e.Device.TIR(m.Profile, b)})
				}
				p, err := fit.Piecewise(samples)
				if err != nil {
					return nil, fmt.Errorf("core: profiling %s on %s: %w", m.Name, e.Name, err)
				}
				out.Table[ModelKey{Edge: kIdx, App: app.Index, Version: m.Version}] = p
			}
		}
	}
	return out, nil
}
