package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// seedTol is the acceptance band for seeded-vs-cold objective comparison. The
// branch & bound certifies optimality only to its relative gap tolerance,
// 0.005·(1 + initial incumbent objective) — and the initial incumbent is the
// greedy point, whose objective is bounded by the all-drop objective
// (dropPen·Σ workload, the point greedy starts from). Two certified solves of
// the same instance can therefore differ by up to the sum of their bands;
// allDrop over-approximates both initial incumbents.
func seedTol(a, b, allDrop float64) float64 {
	return 0.005 * (2 + math.Abs(a) + math.Abs(b) + 2*allDrop)
}

// TestSolveEdgeSeedVsColdEquivalence is the reuse layer's core correctness
// property, checked over 125 random slot transitions: seeding a solve with
// the previous slot's (repaired) assignment must not change the certified
// objective beyond the solver's gap tolerance. The cold chain's outputs
// define the next slot's seed and resident set for BOTH chains, so the two
// solves of each slot see identical problems and differ only in the seed.
func TestSolveEdgeSeedVsColdEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	modes := []BatchMode{ModeMerged, ModeSerial, ModeFixed}
	seeded, repaired := 0, 0
	for seq := 0; seq < 25; seq++ {
		mode := modes[seq%len(modes)]
		var prevAsg *EdgeAssignment
		prevDep := map[[2]int]bool{}
		// Base workload drifts slowly across the chain (the temporal-locality
		// regime the reuse layer targets); the slot is tight enough that the
		// exact optimum differs from the greedy incumbent, so the previous
		// optimum genuinely has something to contribute.
		base := []int{4 + rng.Intn(10), 4 + rng.Intn(10)}
		for slot := 0; slot < 5; slot++ {
			w := []int{base[0] + rng.Intn(5) - 2, base[1] + rng.Intn(5) - 2}
			for i := range w {
				if w[i] < 0 {
					w[i] = 0
				}
			}
			jitter := 0.02 * rng.Float64()
			// A small explicit drop penalty keeps the solver's adaptive gap
			// band (which scales with the greedy incumbent's objective, itself
			// bounded by the all-drop objective) tight enough for the
			// comparison below to have teeth.
			const dropPen = 1.0
			mk := func() *EdgeProblem {
				p := edgeProblem(w, mode)
				p.Params = func(i, j int) bandit.TIRParams {
					return bandit.TIRParams{
						Eta:  0.1 + 0.05*float64((i+j)%4) + jitter,
						Beta: 6 + float64((3*i+2*j)%10),
						C:    1.2 + 0.2*float64(j),
					}
				}
				p.SlotMS = 1200
				p.DropPenalty = dropPen
				// Tight instances can exhaust the default 4000-node budget,
				// and a node-limited solve certifies no gap — give the search
				// room so the equivalence band below is actually guaranteed.
				p.SolveNodes = 200000
				p.PrevDeployed = prevDep
				return p
			}
			allDrop := dropPen * float64(w[0]+w[1])
			cold, err := SolveEdge(mk())
			if err != nil {
				t.Fatalf("seq %d slot %d cold: %v", seq, slot, err)
			}
			wp := mk()
			wp.Seed = prevAsg
			warm, err := SolveEdge(wp)
			if err != nil {
				t.Fatalf("seq %d slot %d seeded: %v", seq, slot, err)
			}
			if d := math.Abs(cold.Obj - warm.Obj); d > seedTol(cold.Obj, warm.Obj, allDrop) {
				t.Fatalf("seq %d slot %d (mode %v): seeded obj %v vs cold %v (Δ=%v > tol %v)",
					seq, slot, mode, warm.Obj, cold.Obj, d, seedTol(cold.Obj, warm.Obj, allDrop))
			}
			seeded += warm.Solver.IncumbentSeeded
			repaired += warm.Solver.IncumbentRepaired
			prevAsg = cold
			nd := map[[2]int]bool{}
			for _, dep := range cold.Deployments {
				nd[[2]int{dep.App, dep.Version}] = true
			}
			prevDep = nd
		}
	}
	if seeded == 0 {
		t.Fatal("no solve ever accepted the seed incumbent — the reuse path is dead")
	}
	t.Logf("seeded=%d repaired=%d across 125 transitions", seeded, repaired)
}

// TestDecideWorkerCountInvariantWithAndWithoutReuse pins the determinism
// contract in both reuse settings: plans must be byte-identical across worker
// counts whether the temporal reuse layer is on (default) or off. Reuse state
// updates happen in the sequential edge-order gather, so this holds even
// though seeds flow from slot to slot.
func TestDecideWorkerCountInvariantWithAndWithoutReuse(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	for _, disable := range []bool{false, true} {
		run := func(workers int) []*edgesim.Plan {
			s, err := New(Config{
				Cluster: c, Apps: apps, Workers: workers,
				DisableSlotReuse: disable,
				Provider:         NewOnlineTuner(0.04, 0.07),
			})
			if err != nil {
				t.Fatal(err)
			}
			rec := &planRecorder{Scheduler: s}
			runSim(t, rec, c, apps, 20, 11)
			return rec.plans
		}
		if !reflect.DeepEqual(run(1), run(8)) {
			t.Fatalf("DisableSlotReuse=%v: plans diverged across worker counts", disable)
		}
	}
}

// TestSchedulerReuseCountersFire guards against the reuse layer silently
// dying: over a closed-loop run the per-slot solver stats must show incumbent
// seeds being accepted, and disabling reuse must zero them.
func TestSchedulerReuseCountersFire(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	// The paper's small-scale load (mean 95 requests/slot) pushes edges into
	// the regime where the exact optimum beats greedy, so seeds get accepted;
	// the light default test trace never exercises that.
	tr, err := trace.Generate(trace.Config{
		Apps: len(apps), Edges: c.N(), Slots: 15, Seed: 13,
		MeanPerSlot: 95, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	count := func(disable bool) int {
		s, err := New(Config{
			Cluster: c, Apps: apps, Workers: 1,
			DisableSlotReuse: disable,
			Provider:         NewOnlineTuner(0.04, 0.07),
		})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		rec := &planRecorder{Scheduler: s}
		if _, err := sim.Run(rec, tr.R); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, p := range rec.plans {
			if p.Solver != nil {
				total += p.Solver.IncumbentSeeded
			}
		}
		return total
	}
	if on := count(false); on == 0 {
		t.Fatal("reuse enabled but no incumbent was ever seeded")
	}
	if off := count(true); off != 0 {
		t.Fatalf("reuse disabled but %d incumbents were seeded", off)
	}
}

// FuzzIncumbentRepair mutates the arrival vector between two consecutive
// solves and checks that the repaired seed never breaks the solve: the seeded
// result must conserve requests (served + dropped = workload per app) and
// agree with the cold solve to the solver's gap tolerance.
func FuzzIncumbentRepair(f *testing.F) {
	f.Add(uint8(3), uint8(5), uint8(2), uint8(9), uint8(0))
	f.Add(uint8(0), uint8(31), uint8(31), uint8(0), uint8(1))
	f.Add(uint8(12), uint8(12), uint8(1), uint8(1), uint8(2))
	modes := []BatchMode{ModeMerged, ModeSerial, ModeFixed}
	f.Fuzz(func(t *testing.T, w0a, w0b, w1a, w1b, sel uint8) {
		mode := modes[int(sel)%len(modes)]
		p1 := edgeProblem([]int{int(w0a % 32), int(w0b % 32)}, mode)
		prev, err := SolveEdge(p1)
		if err != nil {
			t.Fatalf("slot 1: %v", err)
		}
		w2 := []int{int(w1a % 32), int(w1b % 32)}
		cold, err := SolveEdge(edgeProblem(w2, mode))
		if err != nil {
			t.Fatalf("slot 2 cold: %v", err)
		}
		sp := edgeProblem(w2, mode)
		sp.Seed = prev
		warm, err := SolveEdge(sp)
		if err != nil {
			t.Fatalf("slot 2 seeded: %v", err)
		}
		if math.IsNaN(warm.Obj) || math.IsInf(warm.Obj, 0) {
			t.Fatalf("seeded objective is %v", warm.Obj)
		}
		for i := range w2 {
			served := 0
			for _, d := range warm.Deployments {
				if d.App == i {
					served += d.Requests
				}
			}
			if served+warm.Dropped[i] != w2[i] {
				t.Fatalf("app %d: served %d + dropped %d != workload %d",
					i, served, warm.Dropped[i], w2[i])
			}
		}
		allDrop := DefaultDropPenalty * float64(w2[0]+w2[1])
		if d := math.Abs(cold.Obj - warm.Obj); d > seedTol(cold.Obj, warm.Obj, allDrop) {
			t.Fatalf("seeded obj %v vs cold %v (Δ=%v)", warm.Obj, cold.Obj, d)
		}
	})
}

// BenchmarkSlotLoop measures the steady-state closed Decide loop — the path
// the reuse layer and the persistent scratch pools accelerate. Allocations
// per op are the satellite metric: pooled LP arenas keep the loop's solver
// workspace allocations near zero.
func BenchmarkSlotLoop(b *testing.B) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	tr, err := trace.Generate(trace.Config{
		Apps: 1, Edges: c.N(), Slots: 64, Seed: 3,
		MeanPerSlot: 60, Imbalance: 0.8,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Cluster: c, Apps: apps, Workers: 1, Provider: NewOnlineTuner(0.04, 0.07)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := s.Decide(n%64, tr.R[n%64]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMemoAndDeltaCountersFireOnRepeatedInputs pins down when the plan-memo
// layer actually fires. The fingerprint hashes everything SolveEdge reads —
// workload, ship budget, TIR parameters, γ, resident set — so the counters
// stay at zero unless every input repeats exactly. Two scheduler inputs drift
// by construction in the default configuration and keep the memo cold there:
//
//   - The online tuner's LCB padding √(ε²·ln(t+1)/(n+1)) folds the slot
//     counter t (paper Eq. 17), so every arm's shaded parameters move every
//     slot even without observations. That is mandated exploration decay, not
//     a bug; an OfflineProvider serves fixed parameters.
//   - Cluster bandwidth is redrawn per (slot, edge) from [Lo, Hi]; the ship
//     budget only repeats when Lo == Hi.
//
// With both sources pinned (offline provider, fixed bandwidth) a repeated
// arrivals trace must hit the delta-skip path (consecutive identical slots)
// and the LRU memo (alternating between two recurring patterns).
func TestMemoAndDeltaCountersFireOnRepeatedInputs(t *testing.T) {
	c, err := cluster.Custom([]cluster.EdgeSpec{
		{Device: &accel.JetsonNX, BandwidthLoMbps: 75, BandwidthHiMbps: 75},
		{Device: &accel.JetsonNano, BandwidthLoMbps: 75, BandwidthHiMbps: 75},
	})
	if err != nil {
		t.Fatal(err)
	}
	apps := models.Catalogue(1, 3)
	prov, err := ProfileOffline(c, apps, 16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cluster: c, Apps: apps, Workers: 1, Provider: prov})
	if err != nil {
		t.Fatal(err)
	}
	arrA := [][]int{{8, 6}}
	arrB := [][]int{{5, 9}}
	var delta, memo int
	for slot := 0; slot < 16; slot++ {
		arr := arrA
		// Slots 0–7 repeat pattern A (delta-skip regime: identical problem on
		// consecutive slots once the resident set settles). Slots 8–15
		// alternate A and B (memo regime: the previous occurrence is two
		// slots back, behind one intervening fingerprint).
		if slot >= 8 && slot%2 == 1 {
			arr = arrB
		}
		plan, err := s.Decide(slot, arr)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		delta += plan.Solver.DeltaSkippedEdges
		memo += plan.Solver.MemoHits
		t.Logf("slot %2d: delta=%d memo=%d", slot, plan.Solver.DeltaSkippedEdges, plan.Solver.MemoHits)
	}
	if delta == 0 {
		t.Fatal("repeated identical slots never took the delta-skip path")
	}
	if memo == 0 {
		t.Fatal("alternating recurring patterns never hit the plan memo")
	}
	st := s.SolverStats()
	if st.DeltaSkippedEdges != delta || st.MemoHits != memo {
		t.Fatalf("cumulative stats (%d, %d) disagree with per-plan sums (%d, %d)",
			st.DeltaSkippedEdges, st.MemoHits, delta, memo)
	}
}
