// Package trace generates synthetic inference workload traces standing in
// for the MLaaS-in-the-wild production trace the paper replays ([34]).
//
// The generator reproduces the trace features that drive redistribution:
//
//   - a diurnal load cycle (slots are 15 paper-minutes; one day = 96 slots);
//   - per-edge phase skew, so at any instant some edges are hot and others
//     idle (the hot/idle imbalance of Fig. 1);
//   - application popularity differences;
//   - Poisson arrival noise plus occasional multiplicative bursts.
//
// Everything is driven by a single seed, so experiments replay bit-identically.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// SlotsPerDay matches the paper's 15-minute slots over a 24-hour cycle.
const SlotsPerDay = 96

// Config parameterizes the generator.
type Config struct {
	Apps  int
	Edges int
	Slots int
	Seed  int64
	// MeanPerSlot is the average number of requests per (app, edge) pair per
	// slot, before diurnal/skew modulation.
	MeanPerSlot float64
	// Imbalance in [0, 1] controls how strongly load concentrates on hot
	// edges (0 = uniform, 1 = peak edges carry ~double the mean while
	// off-peak edges are near idle).
	Imbalance float64
	// BurstProb is the per-(slot, edge) probability of a burst.
	BurstProb float64
	// BurstScale multiplies arrivals during a burst.
	BurstScale float64
}

// DefaultConfig is the evaluation setting: 5 applications, 6 edges (three
// heterogeneous types × two instances), 3 days of 15-minute slots.
func DefaultConfig() Config {
	return Config{
		Apps:        5,
		Edges:       6,
		Slots:       3 * SlotsPerDay,
		Seed:        1,
		MeanPerSlot: 8,
		Imbalance:   0.8,
		BurstProb:   0.05,
		BurstScale:  2.5,
	}
}

// Trace holds arrivals R[t][i][k]: requests of application i arriving in the
// region of edge k during slot t (the paper's r^t_{ik}).
type Trace struct {
	Apps, Edges, Slots int
	R                  [][][]int
}

// Generate builds a trace from the config.
func Generate(cfg Config) (*Trace, error) {
	if cfg.Apps <= 0 || cfg.Edges <= 0 || cfg.Slots <= 0 {
		return nil, fmt.Errorf("trace: dimensions must be positive, got apps=%d edges=%d slots=%d",
			cfg.Apps, cfg.Edges, cfg.Slots)
	}
	if cfg.MeanPerSlot < 0 {
		return nil, fmt.Errorf("trace: negative mean load %v", cfg.MeanPerSlot)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Application popularity: geometric-ish weights normalized to mean 1.
	appW := make([]float64, cfg.Apps)
	var sum float64
	for i := range appW {
		appW[i] = 0.5 + rng.Float64()*1.5
		sum += appW[i]
	}
	for i := range appW {
		appW[i] *= float64(cfg.Apps) / sum
	}
	// Per-edge diurnal phase: hot windows rotate around the cluster.
	phase := make([]float64, cfg.Edges)
	for k := range phase {
		phase[k] = 2 * math.Pi * float64(k) / float64(cfg.Edges)
	}

	tr := &Trace{Apps: cfg.Apps, Edges: cfg.Edges, Slots: cfg.Slots}
	tr.R = make([][][]int, cfg.Slots)
	for t := 0; t < cfg.Slots; t++ {
		tr.R[t] = make([][]int, cfg.Apps)
		day := 2 * math.Pi * float64(t%SlotsPerDay) / SlotsPerDay
		burst := make([]float64, cfg.Edges)
		for k := range burst {
			burst[k] = 1
			if rng.Float64() < cfg.BurstProb {
				burst[k] = cfg.BurstScale
			}
		}
		for i := 0; i < cfg.Apps; i++ {
			tr.R[t][i] = make([]int, cfg.Edges)
			for k := 0; k < cfg.Edges; k++ {
				mod := 1 + cfg.Imbalance*math.Sin(day+phase[k])
				if mod < 0 {
					mod = 0
				}
				lambda := cfg.MeanPerSlot * appW[i] * mod * burst[k]
				tr.R[t][i][k] = poisson(rng, lambda)
			}
		}
	}
	return tr, nil
}

// poisson samples a Poisson variate by inversion (fine for λ ≲ 100) and a
// normal approximation above that.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 100 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Slot returns the arrivals matrix R[i][k] for slot t.
func (tr *Trace) Slot(t int) [][]int { return tr.R[t] }

// TotalAt returns the total arrivals across apps and edges in slot t.
func (tr *Trace) TotalAt(t int) int {
	total := 0
	for _, row := range tr.R[t] {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// Total returns the total arrivals over the whole trace.
func (tr *Trace) Total() int {
	total := 0
	for t := 0; t < tr.Slots; t++ {
		total += tr.TotalAt(t)
	}
	return total
}

// EdgeLoadAt returns per-edge totals (summed over apps) for slot t.
func (tr *Trace) EdgeLoadAt(t int) []int {
	out := make([]int, tr.Edges)
	for _, row := range tr.R[t] {
		for k, v := range row {
			out[k] += v
		}
	}
	return out
}

// ImbalanceAt returns max/mean of per-edge load in slot t (1 = balanced);
// it returns 0 for an empty slot.
func (tr *Trace) ImbalanceAt(t int) float64 {
	loads := tr.EdgeLoadAt(t)
	maxv, sum := 0, 0
	for _, v := range loads {
		if v > maxv {
			maxv = v
		}
		sum += v
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(maxv) / mean
}
