package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := Config{Apps: 2, Edges: 3, Slots: 5, Seed: 4, MeanPerSlot: 7, Imbalance: 0.5}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Apps != 2 || got.Edges != 3 || got.Slots != 5 {
		t.Fatalf("dims = %d/%d/%d", got.Apps, got.Edges, got.Slots)
	}
	for tt := 0; tt < 5; tt++ {
		for i := 0; i < 2; i++ {
			for k := 0; k < 3; k++ {
				if got.R[tt][i][k] != tr.R[tt][i][k] {
					t.Fatalf("mismatch at (%d,%d,%d)", tt, i, k)
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"apps":0,"edges":1,"slots":1,"r":[[[1]]]}`,
		`{"apps":1,"edges":1,"slots":2,"r":[[[1]]]}`,  // slot count mismatch
		`{"apps":2,"edges":1,"slots":1,"r":[[[1]]]}`,  // app row mismatch
		`{"apps":1,"edges":2,"slots":1,"r":[[[1]]]}`,  // edge width mismatch
		`{"apps":1,"edges":1,"slots":1,"r":[[[-3]]]}`, // negative
		`{"apps":1,"edges":1,"slots":1}`,              // missing R
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestValidateAcceptsGenerated(t *testing.T) {
	tr, _ := Generate(DefaultConfig())
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Apps: 1, Edges: 2, Slots: 2, R: [][][]int{
		{{4, 0}},
		{{2, 2}},
	}}
	s := tr.Summarize()
	if s.Total != 8 {
		t.Fatalf("total %d", s.Total)
	}
	if s.MeanPerSlot != 2 {
		t.Fatalf("mean per slot %v", s.MeanPerSlot)
	}
	if s.PeakSlotTotal != 4 {
		t.Fatalf("peak slot %d", s.PeakSlotTotal)
	}
	if s.PeakEdgeLoad != 4 {
		t.Fatalf("peak edge %d", s.PeakEdgeLoad)
	}
	// Slot 0 imbalance: max 4 / mean 2 = 2; slot 1: 1 → mean 1.5.
	if s.MeanImbalance != 1.5 {
		t.Fatalf("imbalance %v", s.MeanImbalance)
	}
	if s.CV != 0 { // totals are 4 and 4 → zero variance
		t.Fatalf("cv %v", s.CV)
	}
}

func TestSummarizeRealTrace(t *testing.T) {
	tr, _ := Generate(DefaultConfig())
	s := tr.Summarize()
	if s.Total <= 0 || s.CV <= 0 || s.MeanImbalance < 1 {
		t.Fatalf("implausible stats %+v", s)
	}
	// The default config's diurnal swing must leave a visible footprint.
	if s.CV < 0.08 {
		t.Fatalf("diurnal trace too flat: CV %v", s.CV)
	}
}
