package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// persisted is the on-disk JSON schema of a trace.
type persisted struct {
	Apps  int       `json:"apps"`
	Edges int       `json:"edges"`
	Slots int       `json:"slots"`
	R     [][][]int `json:"r"`
}

// Save writes the trace as JSON. Saved traces let distributed runs and
// cross-machine experiments replay the exact same workload.
func (tr *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(persisted{Apps: tr.Apps, Edges: tr.Edges, Slots: tr.Slots, R: tr.R})
}

// Load reads a trace previously written by Save and validates its shape.
// Malformed, truncated, or trailing-garbage input returns an error — a
// replay must never start from a half-read workload.
func Load(r io.Reader) (*Trace, error) {
	var p persisted
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	// A concatenated or corrupted file decodes one object and leaves bytes
	// behind; that is not a trace Save wrote.
	if dec.More() {
		return nil, fmt.Errorf("trace: trailing data after trace object")
	}
	tr := &Trace{Apps: p.Apps, Edges: p.Edges, Slots: p.Slots, R: p.R}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Validate checks internal consistency (shape and non-negativity).
func (tr *Trace) Validate() error {
	if tr.Apps <= 0 || tr.Edges <= 0 || tr.Slots <= 0 {
		return fmt.Errorf("trace: non-positive dimensions %d/%d/%d", tr.Apps, tr.Edges, tr.Slots)
	}
	if len(tr.R) != tr.Slots {
		return fmt.Errorf("trace: %d slot rows, want %d", len(tr.R), tr.Slots)
	}
	for t, slot := range tr.R {
		if len(slot) != tr.Apps {
			return fmt.Errorf("trace: slot %d has %d app rows, want %d", t, len(slot), tr.Apps)
		}
		for i, row := range slot {
			if len(row) != tr.Edges {
				return fmt.Errorf("trace: slot %d app %d has %d edges, want %d", t, i, len(row), tr.Edges)
			}
			for k, v := range row {
				if v < 0 {
					return fmt.Errorf("trace: negative arrivals at (%d,%d,%d)", t, i, k)
				}
			}
		}
	}
	return nil
}

// Stats summarizes a trace for reports and sanity checks.
type Stats struct {
	Total         int
	MeanPerSlot   float64 // per (app, edge)
	PeakSlotTotal int     // largest single-slot total
	PeakEdgeLoad  int     // largest per-edge single-slot load
	MeanImbalance float64 // average max/mean edge-load ratio
	CV            float64 // coefficient of variation of slot totals
}

// Summarize computes trace statistics.
func (tr *Trace) Summarize() Stats {
	s := Stats{}
	var totals []float64
	var imbSum float64
	imbN := 0
	for t := 0; t < tr.Slots; t++ {
		st := tr.TotalAt(t)
		s.Total += st
		totals = append(totals, float64(st))
		if st > s.PeakSlotTotal {
			s.PeakSlotTotal = st
		}
		for _, l := range tr.EdgeLoadAt(t) {
			if l > s.PeakEdgeLoad {
				s.PeakEdgeLoad = l
			}
		}
		if v := tr.ImbalanceAt(t); v > 0 {
			imbSum += v
			imbN++
		}
	}
	s.MeanPerSlot = float64(s.Total) / float64(tr.Slots*tr.Apps*tr.Edges)
	if imbN > 0 {
		s.MeanImbalance = imbSum / float64(imbN)
	}
	// Coefficient of variation of slot totals.
	mean := float64(s.Total) / float64(tr.Slots)
	var variance float64
	for _, v := range totals {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(totals))
	if mean > 0 {
		s.CV = math.Sqrt(variance) / mean
	}
	return s
}
