package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad hardens the persistence seam: arbitrary bytes must either load a
// trace that passes Validate or return an error — never panic, and never
// hand back a half-read workload. A loaded trace must survive a Save→Load
// round trip byte-identically (canonical form is a fixed point).
func FuzzLoad(f *testing.F) {
	// Seed with a real trace, the classic corruptions, and the trailing-data
	// regression that motivated dec.More().
	tr, err := Generate(Config{Apps: 2, Edges: 3, Slots: 4, Seed: 1, MeanPerSlot: 5})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := tr.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"apps":1,"edges":1,"slots":2,"r":[[[1]]]}`))            // short slot rows
	f.Add([]byte(`{"apps":1,"edges":2,"slots":1,"r":[[[1]]]}`))            // short edge row
	f.Add([]byte(`{"apps":1,"edges":1,"slots":1,"r":[[[-3]]]}`))           // negative arrivals
	f.Add([]byte(`{"apps":0,"edges":1,"slots":1,"r":[]}`))                 // degenerate dims
	f.Add(append(append([]byte(nil), valid.Bytes()...), valid.Bytes()...)) // concatenated objects
	f.Add([]byte(valid.String() + "trailing"))
	f.Add(valid.Bytes()[:valid.Len()/2]) // truncated mid-object

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Load returned an invalid trace: %v", err)
		}
		var first, second bytes.Buffer
		if err := got.Save(&first); err != nil {
			t.Fatalf("re-save: %v", err)
		}
		again, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-load of a saved trace: %v", err)
		}
		if err := again.Save(&second); err != nil {
			t.Fatalf("second save: %v", err)
		}
		// Compare the two canonical serializations, not input vs output —
		// the fuzzer may feed semantically-equal JSON with different spacing.
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Save→Load→Save not a fixed point:\n%s\n%s", first.Bytes(), second.Bytes())
		}
	})
}

// TestLoadRejectsTrailingData pins the concatenated-file regression as a
// plain unit test so it runs in every `go test` invocation, not just fuzzing.
func TestLoadRejectsTrailingData(t *testing.T) {
	tr, err := Generate(Config{Apps: 1, Edges: 2, Slots: 2, Seed: 3, MeanPerSlot: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	doubled := buf.String() + buf.String()
	if _, err := Load(strings.NewReader(doubled)); err == nil {
		t.Fatal("concatenated trace objects accepted")
	}
	if _, err := Load(strings.NewReader(buf.String() + "garbage")); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := Load(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("clean trace rejected: %v", err)
	}
}
