package trace

import "fmt"

// Scale returns a copy of the trace with every arrival count multiplied by
// factor (rounded to nearest); workload engineering for sensitivity studies.
func (tr *Trace) Scale(factor float64) (*Trace, error) {
	if factor < 0 {
		return nil, fmt.Errorf("trace: negative scale factor %v", factor)
	}
	out := &Trace{Apps: tr.Apps, Edges: tr.Edges, Slots: tr.Slots}
	out.R = make([][][]int, tr.Slots)
	for t := range tr.R {
		out.R[t] = make([][]int, tr.Apps)
		for i := range tr.R[t] {
			out.R[t][i] = make([]int, tr.Edges)
			for k, v := range tr.R[t][i] {
				out.R[t][i][k] = int(float64(v)*factor + 0.5)
			}
		}
	}
	return out, nil
}

// Slice returns the sub-trace of slots [from, to).
func (tr *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 || to > tr.Slots || from >= to {
		return nil, fmt.Errorf("trace: bad slice [%d, %d) of %d slots", from, to, tr.Slots)
	}
	out := &Trace{Apps: tr.Apps, Edges: tr.Edges, Slots: to - from}
	out.R = append([][][]int(nil), tr.R[from:to]...)
	return out, nil
}

// Concat appends other's slots after tr's; shapes must match.
func (tr *Trace) Concat(other *Trace) (*Trace, error) {
	if tr.Apps != other.Apps || tr.Edges != other.Edges {
		return nil, fmt.Errorf("trace: shape mismatch %dx%d vs %dx%d",
			tr.Apps, tr.Edges, other.Apps, other.Edges)
	}
	out := &Trace{Apps: tr.Apps, Edges: tr.Edges, Slots: tr.Slots + other.Slots}
	out.R = append(append([][][]int(nil), tr.R...), other.R...)
	return out, nil
}
