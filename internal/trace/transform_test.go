package trace

import "testing"

func mkTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := Generate(Config{Apps: 2, Edges: 3, Slots: 6, Seed: 1, MeanPerSlot: 5})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestScale(t *testing.T) {
	tr := mkTrace(t)
	doubled, err := tr.Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	if doubled.Total() != 2*tr.Total() {
		t.Fatalf("scaled total %d, want %d", doubled.Total(), 2*tr.Total())
	}
	zero, err := tr.Scale(0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Total() != 0 {
		t.Fatal("zero scale should empty the trace")
	}
	if _, err := tr.Scale(-1); err == nil {
		t.Fatal("negative scale must error")
	}
	if err := doubled.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceAndConcat(t *testing.T) {
	tr := mkTrace(t)
	head, err := tr.Slice(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := tr.Slice(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if head.Slots != 2 || tail.Slots != 4 {
		t.Fatalf("slice sizes %d/%d", head.Slots, tail.Slots)
	}
	back, err := head.Concat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != tr.Total() || back.Slots != tr.Slots {
		t.Fatal("slice + concat must reconstruct the trace")
	}
	if _, err := tr.Slice(4, 2); err == nil {
		t.Fatal("inverted slice must error")
	}
	if _, err := tr.Slice(-1, 2); err == nil {
		t.Fatal("negative slice must error")
	}
	other, _ := Generate(Config{Apps: 1, Edges: 3, Slots: 2, Seed: 2, MeanPerSlot: 5})
	if _, err := tr.Concat(other); err == nil {
		t.Fatal("shape mismatch must error")
	}
}
