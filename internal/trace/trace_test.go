package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDimensions(t *testing.T) {
	cfg := DefaultConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Slots != 288 || tr.Apps != 5 || tr.Edges != 6 {
		t.Fatalf("dims = %d/%d/%d", tr.Slots, tr.Apps, tr.Edges)
	}
	if len(tr.R) != 288 || len(tr.R[0]) != 5 || len(tr.R[0][0]) != 6 {
		t.Fatal("R array shape wrong")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Apps: 0, Edges: 1, Slots: 1},
		{Apps: 1, Edges: 0, Slots: 1},
		{Apps: 1, Edges: 1, Slots: 0},
		{Apps: 1, Edges: 1, Slots: 1, MeanPerSlot: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for ti := 0; ti < cfg.Slots; ti++ {
		for i := 0; i < cfg.Apps; i++ {
			for k := 0; k < cfg.Edges; k++ {
				if a.R[ti][i][k] != b.R[ti][i][k] {
					t.Fatalf("trace not deterministic at (%d,%d,%d)", ti, i, k)
				}
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 99
	b, _ := Generate(cfg)
	if a.Total() == b.Total() {
		// Totals could coincide, but the full tensors should not.
		same := true
	outer:
		for ti := 0; ti < cfg.Slots; ti++ {
			for i := 0; i < cfg.Apps; i++ {
				for k := 0; k < cfg.Edges; k++ {
					if a.R[ti][i][k] != b.R[ti][i][k] {
						same = false
						break outer
					}
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestMeanLoadApproximatelyCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurstProb = 0 // remove burst inflation for this check
	cfg.Slots = 4 * SlotsPerDay
	tr, _ := Generate(cfg)
	got := float64(tr.Total()) / float64(cfg.Slots*cfg.Apps*cfg.Edges)
	// The diurnal modulation integrates to 1 over whole days, so the
	// realized mean should land near MeanPerSlot.
	if math.Abs(got-cfg.MeanPerSlot)/cfg.MeanPerSlot > 0.1 {
		t.Fatalf("mean per (app, edge) slot = %v, want ≈ %v", got, cfg.MeanPerSlot)
	}
}

func TestImbalanceCreatesHotAndIdleEdges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Imbalance = 0.9
	cfg.BurstProb = 0
	tr, _ := Generate(cfg)
	// Average the imbalance statistic over slots; with phase-shifted
	// diurnal curves it must be clearly above 1.
	var sum float64
	n := 0
	for ti := 0; ti < tr.Slots; ti++ {
		if v := tr.ImbalanceAt(ti); v > 0 {
			sum += v
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 1.3 {
		t.Fatalf("average max/mean edge load = %v, want hot/idle spread > 1.3", avg)
	}
}

func TestZeroImbalanceIsFlat(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Imbalance = 0
	cfg.BurstProb = 0
	cfg.MeanPerSlot = 50
	tr, _ := Generate(cfg)
	var sum float64
	n := 0
	for ti := 0; ti < tr.Slots; ti++ {
		if v := tr.ImbalanceAt(ti); v > 0 {
			sum += v
			n++
		}
	}
	avg := sum / float64(n)
	if avg > 1.35 {
		t.Fatalf("uniform trace should be near-balanced, got max/mean %v", avg)
	}
}

func TestBurstsIncreaseLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurstProb = 0
	base, _ := Generate(cfg)
	cfg.BurstProb = 0.3
	cfg.BurstScale = 4
	bursty, _ := Generate(cfg)
	if bursty.Total() <= base.Total() {
		t.Fatalf("bursts should raise total load: %d vs %d", bursty.Total(), base.Total())
	}
}

func TestAccessors(t *testing.T) {
	cfg := Config{Apps: 2, Edges: 3, Slots: 4, Seed: 7, MeanPerSlot: 5}
	tr, _ := Generate(cfg)
	slot := tr.Slot(0)
	if len(slot) != 2 || len(slot[0]) != 3 {
		t.Fatal("Slot shape wrong")
	}
	loads := tr.EdgeLoadAt(0)
	if len(loads) != 3 {
		t.Fatal("EdgeLoadAt length wrong")
	}
	sum := 0
	for _, v := range loads {
		sum += v
	}
	if sum != tr.TotalAt(0) {
		t.Fatalf("edge loads sum %d != slot total %d", sum, tr.TotalAt(0))
	}
}

func TestImbalanceEmptySlot(t *testing.T) {
	tr := &Trace{Apps: 1, Edges: 2, Slots: 1, R: [][][]int{{{0, 0}}}}
	if got := tr.ImbalanceAt(0); got != 0 {
		t.Fatalf("empty slot imbalance = %v, want 0", got)
	}
}

// Property: all arrivals are non-negative and totals are consistent.
func TestQuickNonNegativeAndConsistent(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{
			Apps: 1 + int(seed&3), Edges: 1 + int(seed>>2&3), Slots: 10,
			Seed: seed, MeanPerSlot: 5, Imbalance: 0.5, BurstProb: 0.1, BurstScale: 2,
		}
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		total := 0
		for ti := 0; ti < cfg.Slots; ti++ {
			for i := 0; i < cfg.Apps; i++ {
				for k := 0; k < cfg.Edges; k++ {
					if tr.R[ti][i][k] < 0 {
						return false
					}
					total += tr.R[ti][i][k]
				}
			}
		}
		return total == tr.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMoments(t *testing.T) {
	// poisson() is internal; exercise via a high-λ config using the normal
	// approximation branch and a low-λ config using inversion.
	cfg := Config{Apps: 1, Edges: 1, Slots: 4000, Seed: 5, MeanPerSlot: 150, Imbalance: 0}
	tr, _ := Generate(cfg)
	mean := float64(tr.Total()) / float64(cfg.Slots)
	if math.Abs(mean-150)/150 > 0.05 {
		t.Fatalf("high-λ mean = %v, want ≈150", mean)
	}
}
