// Package mat provides small dense linear-algebra primitives used by the
// LP/QP/MIQP solver stack: vectors, row-major matrices, LU and Cholesky
// factorizations, and linear solves.
//
// The package is deliberately minimal: the per-slot optimization problems BIRP
// produces have at most a few hundred variables, so dense O(n^3) methods with
// partial pivoting are both fast enough and easy to verify.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular (or numerically indistinguishable from singular).
var ErrSingular = errors.New("mat: matrix is singular")

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Vec is a dense vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 {
	// Scaled accumulation avoids overflow for large entries.
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of v.
func (v Vec) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AddScaled sets v = v + alpha*w in place. It panics if lengths differ.
func (v Vec) AddScaled(alpha float64, w Vec) {
	if len(v) != len(w) {
		panic("mat: AddScaled length mismatch")
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies every entry of v by alpha in place.
func (v Vec) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MulVec returns m * v. It panics if v has the wrong length.
func (m *Matrix) MulVec(v Vec) Vec {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec shape %dx%d by %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVec(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// MulTransVec returns mᵀ * v. It panics if v has the wrong length.
func (m *Matrix) MulTransVec(v Vec) Vec {
	if len(v) != m.Rows {
		panic("mat: MulTransVec shape mismatch")
	}
	out := NewVec(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		vi := v[i]
		if vi == 0 {
			continue
		}
		for j, a := range row {
			out[j] += a * vi
		}
	}
	return out
}

// Mul returns m * b as a new matrix. It panics on shape mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// Symmetrize sets m = (m + mᵀ)/2 in place. It panics if m is not square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize of non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix // packed L (unit diagonal, below) and U (on/above diagonal)
	piv  []int   // row permutation
	sign int     // determinant sign of the permutation
}

// FactorizeLU computes the LU factorization of square matrix a with partial
// pivoting. It returns ErrSingular for (numerically) singular inputs.
func FactorizeLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest |entry| in column k at or below row k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				max = a
				p = i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.Data[k*n : (k+1)*n]
			rp := lu.Data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.Data[i*n : (i+1)*n]
			rk := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A*x = b using the factorization. b is not modified.
func (f *LU) Solve(b Vec) (Vec, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: LU solve rhs length %d want %d", ErrShape, len(b), n)
	}
	x := NewVec(n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		var s float64
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		d := row[i]
		if d == 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		x[i] = (x[i] - s) / d
	}
	return x, nil
}

// Solve solves the square system A*x = b by LU with partial pivoting.
func Solve(a *Matrix, b Vec) (Vec, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Cholesky holds a lower-triangular Cholesky factor: A = L*Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorizeCholesky computes the Cholesky factorization of a symmetric
// positive-definite matrix. Only the lower triangle of a is read.
func FactorizeCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += l.At(j, k) * l.At(j, k)
		}
		d = a.At(j, j) - d
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A*x = b using the Cholesky factorization.
func (c *Cholesky) Solve(b Vec) (Vec, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: Cholesky solve rhs length %d want %d", ErrShape, len(b), n)
	}
	// Forward: L*y = b.
	y := b.Clone()
	for i := 0; i < n; i++ {
		row := c.l.Data[i*n : (i+1)*n]
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * y[j]
		}
		y[i] = (y[i] - s) / row[i]
	}
	// Backward: Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += c.l.At(j, i) * y[j]
		}
		y[i] = (y[i] - s) / c.l.At(i, i)
	}
	return y, nil
}

// L returns the lower-triangular Cholesky factor (aliasing internal storage).
func (c *Cholesky) L() *Matrix { return c.l }

// Eq reports whether two scalars agree within tol: |a - b| <= tol. This is
// the approved way to compare computed floating-point quantities — raw == on
// floats is flagged by birplint because two mathematically equal values
// computed along different code paths can differ in the last bit.
func Eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Zero reports whether x is exactly IEEE zero. Use it where exactness is the
// semantic — "this option was left unset" sentinels and skip-zero fast paths
// over values that were stored, not computed — so the intent survives review;
// for "is this computed value negligible", use Eq(x, 0, tol).
func Zero(x float64) bool { return x == 0 }

// ApproxEqual reports whether a and b have the same shape and all entries
// within tol of each other.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// VecApproxEqual reports whether two vectors match entrywise within tol.
func VecApproxEqual(a, b Vec, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
