package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, -5, 6}
	if got := v.Dot(w); got != 4-10+18 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestVecDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestVecNorm2(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := (Vec{}).Norm2(); got != 0 {
		t.Fatalf("empty Norm2 = %v, want 0", got)
	}
}

func TestVecNorm2LargeEntriesNoOverflow(t *testing.T) {
	v := Vec{1e200, 1e200}
	got := v.Norm2()
	want := math.Sqrt2 * 1e200
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
}

func TestVecNormInf(t *testing.T) {
	v := Vec{1, -7, 3}
	if got := v.NormInf(); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
}

func TestVecAddScaledAndScale(t *testing.T) {
	v := Vec{1, 2}
	v.AddScaled(2, Vec{3, 4})
	if v[0] != 7 || v[1] != 10 {
		t.Fatalf("AddScaled got %v", v)
	}
	v.Scale(0.5)
	if v[0] != 3.5 || v[1] != 5 {
		t.Fatalf("Scale got %v", v)
	}
}

func TestMatrixBasicOps(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatalf("Set failed")
	}
	r := m.Row(0)
	r[1] = 42
	if m.At(0, 1) != 42 {
		t.Fatalf("Row should alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatalf("Clone should not alias storage")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec(Vec{1, -1})
	want := Vec{-1, -1, -1}
	if !VecApproxEqual(got, want, 0) {
		t.Fatalf("MulVec = %v, want %v", got, want)
	}
}

func TestMulTransVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulTransVec(Vec{1, 1, 1})
	want := Vec{9, 12}
	if !VecApproxEqual(got, want, 0) {
		t.Fatalf("MulTransVec = %v, want %v", got, want)
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !ApproxEqual(got, want, 1e-14) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestIdentityMul(t *testing.T) {
	a := FromRows([][]float64{{2, -1, 0}, {0, 3, 7}, {1, 1, 1}})
	if !ApproxEqual(Identity(3).Mul(a), a, 0) {
		t.Fatalf("I*A != A")
	}
	if !ApproxEqual(a.Mul(Identity(3)), a, 0) {
		t.Fatalf("A*I != A")
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 4}, {2, 5}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("Symmetrize got %v", a)
	}
}

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		a := randomMatrix(rng, n)
		// Diagonal boost keeps the random instance well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		want := NewVec(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if !VecApproxEqual(got, want, 1e-8) {
			t.Fatalf("trial %d: solve mismatch\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Vec{1, 1}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestLUNonSquare(t *testing.T) {
	a := New(2, 3)
	if _, err := FactorizeLU(a); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-6)) > 1e-12 {
		t.Fatalf("Det = %v, want -6", got)
	}
}

func TestLUSolveRHSLengthMismatch(t *testing.T) {
	f, err := FactorizeLU(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(Vec{1, 2, 3}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCholeskySPD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(15)
		g := randomMatrix(rng, n)
		// A = GᵀG + n*I is SPD.
		a := g.T().Mul(g)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		c, err := FactorizeCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: Cholesky: %v", trial, err)
		}
		// Reconstruct: L*Lᵀ should equal a.
		recon := c.L().Mul(c.L().T())
		if !ApproxEqual(recon, a, 1e-8) {
			t.Fatalf("trial %d: L*Lᵀ != A", trial)
		}
		want := NewVec(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := c.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !VecApproxEqual(got, want, 1e-7) {
			t.Fatalf("trial %d: Cholesky solve mismatch", trial)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorizeCholesky(a); err == nil {
		t.Fatal("expected not-positive-definite error")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := FactorizeCholesky(New(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCholeskySolveRHSMismatch(t *testing.T) {
	c, err := FactorizeCholesky(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(Vec{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

// Property: for random well-conditioned A and x, Solve(A, A*x) ≈ x.
func TestQuickSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomMatrix(r, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(2*n))
		}
		x := NewVec(n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got, err := Solve(a, a.MulVec(x))
		if err != nil {
			return false
		}
		return VecApproxEqual(got, x, 1e-7)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: determinant of a permutation-scaled identity matches the product
// of its diagonal scaling.
func TestQuickDetDiagonal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := New(n, n)
		prod := 1.0
		for i := 0; i < n; i++ {
			d := 1 + r.Float64()*5
			a.Set(i, i, d)
			prod *= d
		}
		f2, err := FactorizeLU(a)
		if err != nil {
			return false
		}
		return math.Abs(f2.Det()-prod) < 1e-9*math.Abs(prod)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixString(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Fatal("String should not be empty")
	}
}

func TestFromRowsEmptyAndRagged(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows got %dx%d", m.Rows, m.Cols)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1}, {1, 2}})
}

func TestApproxEqualShapeMismatch(t *testing.T) {
	if ApproxEqual(New(1, 2), New(2, 1), 1) {
		t.Fatal("shape mismatch should not be equal")
	}
	if VecApproxEqual(Vec{1}, Vec{1, 2}, 1) {
		t.Fatal("length mismatch should not be equal")
	}
}
