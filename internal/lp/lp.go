// Package lp implements bounded-variable simplex solvers for linear programs
// in the general form
//
//	minimize    cᵀx
//	subject to  Aeq·x  = beq
//	            Aub·x ≤ bub
//	            lb ≤ x ≤ ub        (entries may be ±Inf)
//
// The general form is mechanically reduced to the boxed standard form
// "min cᵀx, A·x = b, 0 ≤ x ≤ u" (shifting finite lower bounds, splitting
// free variables, adding slack variables for inequalities; upper bounds stay
// native): nonbasic variables rest at either bound and the ratio test admits
// bound flips, so a box constraint costs no extra row. Phase I finds a basic
// feasible point with artificial variables only for rows whose slack cannot
// seed the basis; Phase II optimizes the true objective. Bland's rule is
// engaged after a stall to guarantee termination.
//
// Two interchangeable kernels implement that scheme. The default
// EngineRevised (revised.go) is a sparse revised simplex: the constraint
// matrix stays in CSC form, the basis is an LU factorization with eta-file
// updates and a deterministic refactorization trigger, iterations price with
// BTRAN and update with FTRAN, and warm re-entry after a bound tightening
// runs the dual simplex. EngineDense (bounded.go) is the original dense
// tableau, kept as an A/B oracle and as the fallback when a factorization is
// numerically singular. Both target the small per-slot instances produced by
// the BIRP scheduler (tens to a few hundred variables) and both are
// bit-deterministic: identical inputs produce identical pivot trajectories.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/mat"
)

// Status describes the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below on the feasible set.
	StatusUnbounded
	// StatusIterLimit means the iteration budget was exhausted.
	StatusIterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProblem is returned for structurally invalid inputs (mismatched
// dimensions, NaN coefficients, crossed bounds).
var ErrBadProblem = errors.New("lp: malformed problem")

// Inf is a convenience alias for +Inf used in bound slices.
var Inf = math.Inf(1)

// Problem is a linear program in general form. Nil matrices/slices denote
// "no constraints of that kind". Bounds default to [0, +Inf) when nil.
type Problem struct {
	C   []float64   // objective coefficients, length n
	Aeq [][]float64 // equality constraint rows, each length n
	Beq []float64
	Aub [][]float64 // inequality (≤) constraint rows, each length n
	Bub []float64
	Lb  []float64 // lower bounds; nil means all zeros
	Ub  []float64 // upper bounds; nil means all +Inf
}

// Result carries the solver outcome.
type Result struct {
	Status     Status
	X          []float64 // primal solution in original variables (valid when optimal)
	Obj        float64   // objective value cᵀx
	Iterations int
	// IneqDuals[i] is the shadow price of inequality row i (≥ 0; how much
	// the optimum would improve per unit of extra bub[i]). Valid when
	// optimal. Equality-row duals are not exposed.
	IneqDuals []float64
	// Basis is the optimal simplex basis, captured when Options.CaptureBasis
	// is set and the solve ends optimal. It never aliases scratch memory and
	// can seed a warm re-entry solve (SolveWarm) of a problem with the same
	// structure and equal-or-tighter bounds.
	Basis *Basis
	// ReducedCosts[j] is the reduced cost of original variable j at the
	// optimum, filled when Options.WantReducedCosts is set: rc > 0 means x_j
	// rests at its lower bound and raising it by δ worsens the objective by
	// rc·δ; rc < 0 means x_j rests at its upper bound and lowering it costs
	// |rc|·δ; 0 means basic, free, or degenerate (no information).
	ReducedCosts []float64
	// Warm reports that this solve re-entered from a caller-supplied basis
	// (crash + repair + polish) instead of the cold two-phase path.
	Warm bool
	// WarmFallback reports that a warm attempt was made but abandoned
	// (singular crash pivot, repair stall, …) and the result came from the
	// cold path instead.
	WarmFallback bool
	// CrashPivots and RepairPivots count the extra pivots of a warm solve's
	// basis crash and feasibility repair; Iterations counts the simplex
	// iterations of the main loop (Phase I + II when cold, polish when warm).
	CrashPivots  int
	RepairPivots int
	// DualReentry reports that a revised-engine warm solve re-entered through
	// the dual simplex under the caller's PreferDual guarantee; DualPivots
	// counts its dual pivots (also included in RepairPivots so Pivots() stays
	// comparable across engines).
	DualReentry bool
	DualPivots  int
	// Refactorizations and EtaLen are revised-engine observability: basis
	// refactorization count and total eta-file updates of the solve.
	Refactorizations int
	EtaLen           int
	// FactorReuses counts warm entries that loaded the parent basis's captured
	// canonical LU factorization instead of refactorizing (0 or 1 per solve).
	// The loaded factors are bit-identical to what a fresh factorization would
	// produce, so reuse changes no solver decision — only the Refactorizations
	// work counter.
	FactorReuses int
}

// Pivots returns the total pivot work of the solve: crash and repair pivots
// (warm path) plus the main-loop simplex iterations.
func (r *Result) Pivots() int { return r.CrashPivots + r.RepairPivots + r.Iterations }

// Options tunes the solver.
type Options struct {
	MaxIter int     // 0 means automatic (20·(m+n)+200)
	Tol     float64 // 0 means 1e-9
	// CaptureBasis records the optimal basis in Result.Basis (two small
	// allocations per solve; off by default to keep the steady-state
	// allocation profile).
	CaptureBasis bool
	// WantReducedCosts fills Result.ReducedCosts at optimality.
	WantReducedCosts bool
	// AssumeValid skips the structural input validation (dimension checks,
	// NaN scan, bound-order scan). Strictly for trusted hot paths that
	// construct problems programmatically and re-solve them thousands of
	// times — e.g. the branch & bound relaxation loop, which derives every
	// child from an already-validated parent by tightening one bound. A
	// malformed problem solved with AssumeValid may panic or return
	// nonsense instead of ErrBadProblem.
	AssumeValid bool
	// Engine selects the simplex kernel; the zero value is the sparse
	// revised simplex (EngineRevised). EngineDense forces the legacy dense
	// tableau, the A/B oracle.
	Engine Engine
	// PreferDual asserts that the warm basis passed to SolveWarm was optimal
	// for a problem differing from this one only in variable bounds, so it
	// is dual feasible here. The revised engine then trusts a dual-simplex
	// dead-end as a certified StatusInfeasible instead of falling back to a
	// cold solve. Never set it when costs or constraint data changed.
	// Ignored by the dense engine and by cold solves.
	PreferDual bool
	// NoFactorReuse disables the factorization handoff of the revised engine:
	// captured bases then carry no LU snapshot and warm re-entries always
	// refactorize from scratch, exactly the pre-reuse behavior. Debug knob for
	// A/B equivalence runs — plans are byte-identical either way (the snapshot
	// is bit-exact by construction); only the Refactorizations counter moves.
	NoFactorReuse bool
}

const defaultTol = 1e-9

// Scratch is reusable storage for the solver's large allocations (the
// standard-form rows and the simplex tableau). A Scratch amortizes the
// steady-state allocation cost of repeated solves — the branch-and-bound node
// loop in package miqp holds one per worker — and may be reused across any
// number of sequential SolveScratch calls. It is NOT safe for concurrent use:
// concurrent solvers must hold one Scratch each. Results returned by the
// solver never alias scratch memory, so they stay valid after the scratch is
// reused.
type Scratch struct {
	buf  []float64
	used int
	// rev is the lazily created revised-simplex engine state (LU storage,
	// eta file, work vectors), reused across solves under the same
	// single-owner discipline as the arena.
	rev *revEngine
}

// NewScratch returns an empty reusable scratch.
func NewScratch() *Scratch { return &Scratch{} }

// BeginTree marks the start of a branch & bound tree on this scratch: it
// recycles the factor-snapshot arena, invalidating every snapshot handed out
// through this scratch since the previous call. The caller must guarantee no
// Basis captured before the call is re-entered after it (bases that escape the
// tree go through Basis.CloneForHandoff, which drops the snapshot). Solvers
// that never capture bases need not call it.
func (s *Scratch) BeginTree() {
	if s.rev != nil {
		s.rev.snapUsed = 0
		s.rev.basisUsed = 0
	}
}

// reserve begins a new solve: it rewinds the arena and grows it to hold at
// least n floats. It must be called before any take of the same solve, since
// growing reallocates the backing array.
func (s *Scratch) reserve(n int) {
	s.used = 0
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	s.buf = s.buf[:cap(s.buf)]
}

// take returns a zeroed length-n slice carved from the reserved arena (full
// slice expressions keep appends from bleeding into the next take). If the
// reservation was undersized it falls back to the heap rather than corrupt
// earlier takes.
func (s *Scratch) take(n int) []float64 {
	if s.used+n > len(s.buf) {
		return make([]float64, n)
	}
	out := s.buf[s.used : s.used+n : s.used+n]
	s.used += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// takeNoZero is take without the zero fill, for slices every element of which
// the caller immediately overwrites (tableau rows built by copy, bound vectors
// filled by an exhaustive loop). Using it for a slice that is only *partially*
// written leaks stale floats from the previous solve into this one.
func (s *Scratch) takeNoZero(n int) []float64 {
	if s.used+n > len(s.buf) {
		return make([]float64, n)
	}
	out := s.buf[s.used : s.used+n : s.used+n]
	s.used += n
	return out
}

// scratchPool backs the scratch-less entry points so every caller gets the
// steady-state allocation profile without threading a Scratch through.
var scratchPool = sync.Pool{New: func() interface{} { return NewScratch() }}

// Solve solves the problem with default options.
func Solve(p *Problem) (*Result, error) { return SolveOpts(p, Options{}) }

// SolveOpts solves the problem with the given options.
func SolveOpts(p *Problem, opt Options) (*Result, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return SolveScratch(p, opt, sc)
}

// SolveScratch solves the problem reusing sc's storage for the solver's
// internal matrices. sc may be nil (a fresh scratch is used); otherwise it
// must not be shared with a concurrent solve.
func SolveScratch(p *Problem, opt Options, sc *Scratch) (*Result, error) {
	return SolveWarm(p, opt, sc, nil)
}

// SolveWarm solves the problem like SolveScratch but, when warm is non-nil,
// first tries to re-enter the simplex from the supplied basis: the tableau is
// rebuilt under the (possibly tightened) bounds, crashed onto the basis, made
// primal feasible again with dual-simplex-style pivots, and polished to
// optimality. Whenever the warm path cannot finish — basis shape mismatch,
// singular crash pivot, repair stall — it falls back to the cold two-phase
// solve, so the returned result is always exactly what SolveScratch computes
// modulo the vertex chosen among ties. warm may be nil (plain cold solve).
func SolveWarm(p *Problem, opt Options, sc *Scratch, warm *Basis) (*Result, error) {
	if sc == nil {
		sc = NewScratch()
	}
	n := len(p.C)
	if !opt.AssumeValid {
		if err := validate(p, n); err != nil {
			return nil, err
		}
	}
	tol := opt.Tol
	if mat.Zero(tol) {
		tol = defaultTol
	}
	if warm != nil {
		if opt.Engine == EngineDense {
			if res, ok := solveWarmAttempt(p, n, opt, tol, sc, warm); ok {
				return res, nil
			}
		} else if res, ok := revWarmSolve(p, n, opt, tol, sc, warm); ok {
			return res, nil
		}
	}
	res, err := solveCold(p, n, opt, tol, sc)
	if err == nil && warm != nil {
		res.WarmFallback = true
	}
	return res, err
}

// revWarmSolve is the package-level revised warm entry: build the standard
// form for the problem, then attempt the factorized re-entry.
func revWarmSolve(p *Problem, n int, opt Options, tol float64, sc *Scratch, warm *Basis) (*Result, bool) {
	reserveFor(p, n, sc)
	sf, err := toStandardForm(p, n, sc)
	if err != nil {
		return nil, false
	}
	return revWarmAttempt(p, n, sf, nil, opt, tol, sc, warm)
}

// reserveFor sizes the scratch arena for one solve of the problem's standard
// form and returns (nCols, m). Growing the arena after slices have been handed
// out would invalidate them, so every path reserves up front for the widest
// (cold, artificial-bearing) tableau.
func reserveFor(p *Problem, n int, sc *Scratch) (int, int) {
	nStruct := 0
	for j := 0; j < n; j++ {
		lb, ub := boundsAt(p, j)
		if math.IsInf(lb, -1) && math.IsInf(ub, 1) {
			nStruct += 2 // free variables split into x⁺ − x⁻
		} else {
			nStruct++
		}
	}
	nCols := nStruct + len(p.Aub)
	m := len(p.Aeq) + len(p.Aub)
	width := nCols + m + 1 // artificials ≤ m, plus the rhs column
	sc.reserve(m*nCols + m + 2*nCols + 2*n + (m+1)*width + width + nCols + m)
	return nCols, m
}

func solveCold(p *Problem, n int, opt Options, tol float64, sc *Scratch) (*Result, error) {
	reserveFor(p, n, sc)
	sf, err := toStandardForm(p, n, sc)
	if err != nil {
		return nil, err
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 20*(len(sf.b)+sf.nCols) + 200
	}
	if opt.Engine != EngineDense && len(sf.a) > 0 {
		if res, ok := revSolveCold(p, n, sf, nil, opt, tol, sc, maxIter); ok {
			return res, nil
		}
		// Numerical failure in the revised kernel (singular factorization,
		// un-invertible pivot): the dense oracle answers. The failure is a
		// pure function of the input, so the fallback is deterministic.
	}
	st, xs, duals, iters, bt := solveBounded(sf, sf.colUB, tol, maxIter, sc)
	res := &Result{Status: st, Iterations: iters}
	if st != StatusOptimal {
		return res, nil
	}
	finish(p, n, opt, tol, sf, bt, xs, duals, res)
	return res, nil
}

// finish recovers the original-variable solution, objective, duals, and the
// optional basis/reduced-cost captures shared by the cold and warm paths.
func finish(p *Problem, n int, opt Options, tol float64, sf *standardForm, bt *boundedTableau, xs, duals []float64, res *Result) {
	x := sf.recover(xs)
	res.X = x
	for j := 0; j < n; j++ {
		res.Obj += p.C[j] * x[j]
	}
	// Map standard-form row duals back to the caller's inequality rows: the
	// inequality block starts right after the equalities.
	res.IneqDuals = make([]float64, len(p.Aub))
	for i := range p.Aub {
		res.IneqDuals[i] = duals[len(p.Aeq)+i]
	}
	if bt == nil {
		return
	}
	if opt.CaptureBasis {
		res.Basis = captureBasis(bt)
	}
	if opt.WantReducedCosts {
		res.ReducedCosts = reducedCosts(bt, sf, n, tol)
	}
}

func validate(p *Problem, n int) error {
	check := func(v float64, what string) error {
		if math.IsNaN(v) {
			return fmt.Errorf("%w: NaN in %s", ErrBadProblem, what)
		}
		return nil
	}
	for _, v := range p.C {
		if err := check(v, "objective"); err != nil {
			return err
		}
	}
	if len(p.Aeq) != len(p.Beq) {
		return fmt.Errorf("%w: %d equality rows but %d rhs entries", ErrBadProblem, len(p.Aeq), len(p.Beq))
	}
	if len(p.Aub) != len(p.Bub) {
		return fmt.Errorf("%w: %d inequality rows but %d rhs entries", ErrBadProblem, len(p.Aub), len(p.Bub))
	}
	for i, row := range p.Aeq {
		if len(row) != n {
			return fmt.Errorf("%w: equality row %d has %d cols, want %d", ErrBadProblem, i, len(row), n)
		}
		for _, v := range row {
			if err := check(v, "Aeq"); err != nil {
				return err
			}
		}
	}
	for i, row := range p.Aub {
		if len(row) != n {
			return fmt.Errorf("%w: inequality row %d has %d cols, want %d", ErrBadProblem, i, len(row), n)
		}
		for _, v := range row {
			if err := check(v, "Aub"); err != nil {
				return err
			}
		}
	}
	return validateBounds(p, n)
}

// validateBounds checks only the bound vectors — the per-solve piece of
// validate, split out so Form.SolveWarm (whose matrices were validated once by
// NewForm) can validate just what changes between solves.
func validateBounds(p *Problem, n int) error {
	if p.Lb != nil && len(p.Lb) != n {
		return fmt.Errorf("%w: lb length %d, want %d", ErrBadProblem, len(p.Lb), n)
	}
	if p.Ub != nil && len(p.Ub) != n {
		return fmt.Errorf("%w: ub length %d, want %d", ErrBadProblem, len(p.Ub), n)
	}
	for j := 0; j < n; j++ {
		lb, ub := boundsAt(p, j)
		if math.IsNaN(lb) || math.IsNaN(ub) {
			return fmt.Errorf("%w: NaN bound on variable %d", ErrBadProblem, j)
		}
		if lb > ub {
			return fmt.Errorf("%w: variable %d has lb %g > ub %g", ErrBadProblem, j, lb, ub)
		}
	}
	return nil
}

func boundsAt(p *Problem, j int) (lb, ub float64) {
	lb, ub = 0, math.Inf(1)
	if p.Lb != nil {
		lb = p.Lb[j]
	}
	if p.Ub != nil {
		ub = p.Ub[j]
	}
	return lb, ub
}

// standardForm is "min csᵀ·xs  s.t.  A·xs = b, xs ≥ 0" plus the bookkeeping to
// map a standard-form solution back to the original variables.
type standardForm struct {
	a     [][]float64
	b     []float64
	c     []float64
	nCols int
	// slackCol[i] is the column of row i's slack variable, or -1. When the
	// row's rhs is non-negative and the slack coefficient is +1 the slack can
	// seed the Phase-I basis directly, avoiding an artificial variable.
	slackCol []int
	// colUB[j] is column j's native upper bound (+Inf when absent); the
	// bounded-variable engine honors it without materializing a row.
	colUB []float64
	// recovery data: original variable j maps to
	//   x[j] = shift[j] + sign[j]·xs[pos[j]] - (xs[neg[j]] if neg[j] >= 0)
	// where sign[j] is −1 only for the x = ub − x′ substitution (lb = −Inf
	// with a finite ub) and +1 otherwise.
	shift []float64
	sign  []float64
	pos   []int
	neg   []int
}

func (s *standardForm) recover(xs []float64) []float64 {
	x := make([]float64, len(s.pos))
	for j := range x {
		x[j] = s.shift[j] + s.sign[j]*xs[s.pos[j]]
		if s.neg[j] >= 0 {
			x[j] -= xs[s.neg[j]]
		}
	}
	return x
}

// toStandardForm rewrites the general-form problem:
//
//   - finite lb: substitute x = lb + x′, x′ ≥ 0
//   - lb = -Inf, finite ub: substitute x = ub − x′, x′ ≥ 0
//   - free variable: split x = x⁺ − x⁻
//   - both bounds finite: shift by lb; the residual upper bound ub − lb is
//     kept native in colUB for the bounded engine
//   - each ≤ row gains a slack variable
func toStandardForm(p *Problem, n int, sc *Scratch) (*standardForm, error) {
	sf := &standardForm{
		shift: sc.take(n),
		pos:   make([]int, n),
		neg:   make([]int, n),
	}
	// sign[j] is +1 when x = shift + x′ and −1 when x = shift − x′.
	sign := sc.take(n)
	sf.sign = sign
	nStructPre := 0
	for j := 0; j < n; j++ {
		lb, ub := boundsAt(p, j)
		if math.IsInf(lb, -1) && math.IsInf(ub, 1) {
			nStructPre += 2
		} else {
			nStructPre++
		}
	}
	col := 0
	colUB := sc.take(nStructPre + len(p.Aub))[:0]
	for j := 0; j < n; j++ {
		lb, ub := boundsAt(p, j)
		switch {
		case !math.IsInf(lb, -1):
			sf.shift[j] = lb
			sign[j] = 1
			sf.pos[j] = col
			sf.neg[j] = -1
			colUB = append(colUB, ub-lb) // +Inf−finite stays +Inf
			col++
		case !math.IsInf(ub, 1): // lb = -Inf, finite ub
			sf.shift[j] = ub
			sign[j] = -1
			sf.pos[j] = col
			sf.neg[j] = -1
			colUB = append(colUB, math.Inf(1))
			col++
		default: // free
			sf.shift[j] = 0
			sign[j] = 1
			sf.pos[j] = col
			sf.neg[j] = col + 1
			colUB = append(colUB, math.Inf(1), math.Inf(1))
			col += 2
		}
	}
	nStruct := col
	nSlack := len(p.Aub)
	sf.nCols = nStruct + nSlack
	for s := 0; s < nSlack; s++ {
		colUB = append(colUB, math.Inf(1))
	}
	sf.colUB = colUB
	m := len(p.Aeq) + len(p.Aub)
	sf.a = make([][]float64, m)
	sf.b = sc.take(m)
	sf.c = sc.take(sf.nCols)

	// Objective in the substituted variables. Constant offsets (cᵀ·shift) do
	// not affect the argmin, so they are dropped; Obj is recomputed from the
	// recovered x.
	for j := 0; j < n; j++ {
		cj := p.C[j]
		sf.c[sf.pos[j]] += cj * sign[j]
		if sf.neg[j] >= 0 {
			sf.c[sf.neg[j]] -= cj
		}
	}

	sf.slackCol = make([]int, m)
	for i := range sf.slackCol {
		sf.slackCol[i] = -1
	}
	row := 0
	emit := func(coef []float64, rhs float64, slackCol int) {
		r := sc.take(sf.nCols)
		for j := 0; j < n; j++ {
			a := coef[j]
			if mat.Zero(a) {
				continue
			}
			r[sf.pos[j]] += a * sign[j]
			if sf.neg[j] >= 0 {
				r[sf.neg[j]] -= a
			}
			rhs -= a * sf.shift[j]
		}
		if slackCol >= 0 {
			r[slackCol] = 1
			sf.slackCol[row] = slackCol
		}
		sf.a[row] = r
		sf.b[row] = rhs
		row++
	}
	for i, r := range p.Aeq {
		emit(r, p.Beq[i], -1)
	}
	slack := nStruct
	for i, r := range p.Aub {
		emit(r, p.Bub[i], slack)
		slack++
	}
	// Normalize: standard form needs b ≥ 0 for the Phase-I construction.
	// Negating a row flips its slack coefficient to −1, which disqualifies
	// the slack from seeding the basis.
	for i := range sf.a {
		if sf.b[i] < 0 {
			sf.b[i] = -sf.b[i]
			for j := range sf.a[i] {
				sf.a[i][j] = -sf.a[i][j]
			}
			sf.slackCol[i] = -1
		}
	}
	return sf, nil
}

func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
