package lp

import (
	"math"

	"repro/internal/mat"
)

// Basis is a combinatorial snapshot of an optimal simplex basis: which
// standard-form column is basic in each row and which columns rest at their
// upper bound. It deliberately stores no tableau numbers — a warm re-entry
// rebuilds the tableau under the child's bounds and crashes onto this basis —
// so a Basis stays valid when bounds tighten, and it never aliases scratch
// memory.
type Basis struct {
	cols    []int  // cols[i] = standard-form column basic in row i
	flipped []bool // flipped[j]: column j rests at its upper bound
	nCols   int    // structural+slack column count of the captured form
	m       int    // row count of the captured form
	// d is the exit reduced-cost vector of the capturing solve (revised
	// engine only; nil otherwise). It is valid exactly when the re-entering
	// problem has the same objective as the captured one — the
	// Options.PreferDual contract — and then lets the dual re-entry skip its
	// entry pricing pass (one BTRAN plus a full pricing sweep). Advisory
	// numbers only: pivot selection uses them, certificates never do (the
	// infeasibility proof and the polish pass both reprice from scratch), so
	// carrying the parent's incremental drift is safe.
	d []float64
	// snap is the canonical LU factorization of this basis (revised engine,
	// Form path only; nil otherwise). A child re-entering from this basis
	// loads the factors instead of refactorizing — bit-identical by the
	// factorSnapshot invariant — unless Options.NoFactorReuse disables it.
	// Must be stripped (StripFactors) whenever the basis outlives the branch &
	// bound tree whose Form it was factorized against.
	snap *factorSnapshot
}

// CloneForHandoff returns a deep copy of the basis with no factorization
// snapshot attached, for carrying across branch & bound trees (e.g. the
// cross-slot root-basis handoff). The copy is mandatory on two counts: the
// original may live in pooled per-tree storage that a later tree rewrites, and
// the snapshot pins — and is keyed by pointer identity to — the dead tree's
// compiled matrix, whose storage may likewise be pooled and rewritten, which
// would make the identity guard meaningless. Returns nil for a nil receiver.
func (b *Basis) CloneForHandoff() *Basis {
	if b == nil {
		return nil
	}
	cp := &Basis{nCols: b.nCols, m: b.m}
	cp.cols = append(cp.cols, b.cols...)
	cp.flipped = append(cp.flipped, b.flipped...)
	cp.d = append(cp.d, b.d...)
	return cp
}

// Shape returns the standard-form dimensions (rows, columns) of the problem
// the basis was captured from. A basis can only re-enter a problem whose
// standard form has exactly these dimensions; see ShapeOf for computing a
// candidate problem's shape without solving it.
func (b *Basis) Shape() (rows, cols int) { return b.m, b.nCols }

// Fits reports whether the basis could re-enter a solve of p: the standard
// form SolveWarm would build for p has exactly the captured dimensions. A
// true result does not guarantee the re-entry succeeds (the crash can still
// hit a singular pivot and fall back cold), but a false result guarantees it
// would be rejected, so callers carrying a basis across *different* problems
// — e.g. consecutive time slots of a rolling-horizon scheduler — can skip
// the attempt when the deployment set changed the column space.
func (b *Basis) Fits(p *Problem) bool {
	rows, cols := ShapeOf(p)
	return b != nil && b.m == rows && b.nCols == cols
}

// ShapeOf computes the standard-form dimensions (rows, columns) the solver
// would build for p, without solving: rows = equalities + inequalities,
// columns = structural columns (free variables split in two) + one slack per
// inequality. Used with Basis.Shape to test cross-problem basis re-entry.
func ShapeOf(p *Problem) (rows, cols int) {
	n := len(p.C)
	nStruct := 0
	for j := 0; j < n; j++ {
		lb, ub := boundsAt(p, j)
		if math.IsInf(lb, -1) && math.IsInf(ub, 1) {
			nStruct += 2
		} else {
			nStruct++
		}
	}
	return len(p.Aeq) + len(p.Aub), nStruct + len(p.Aub)
}

// captureBasis snapshots the tableau's basis. It returns nil when the basis
// is not reusable: any row whose basic column is an artificial (or a dead row
// zeroed in Phase I) cannot seed a warm start.
func captureBasis(bt *boundedTableau) *Basis {
	m := len(bt.basis)
	b := &Basis{
		cols:    make([]int, m),
		flipped: make([]bool, bt.nCols),
		nCols:   bt.nCols,
		m:       m,
	}
	for i, c := range bt.basis {
		if c >= bt.nCols {
			return nil
		}
		b.cols[i] = c
	}
	copy(b.flipped, bt.flipped[:bt.nCols])
	return b
}

// reducedCosts maps the tableau's objective row back to the original
// variables. For original variable j: rc > 0 means x_j is nonbasic at its
// lower bound and raising it by δ worsens the objective by rc·δ; rc < 0 means
// x_j is nonbasic at its upper bound and lowering it costs |rc|·δ; 0 carries
// no information (basic, free-split, or degenerate).
func reducedCosts(bt *boundedTableau, sf *standardForm, n int, tol float64) []float64 {
	m := len(bt.basis)
	rc := make([]float64, n)
	for j := 0; j < n; j++ {
		if sf.neg[j] >= 0 {
			continue // free variable split: no resting bound
		}
		col := sf.pos[j]
		if bt.isBasic(col) {
			continue
		}
		e := bt.t[m][col] // ≥ 0 at optimality, substituted coordinates
		if e <= tol {
			continue
		}
		// Substituted column rests at 0. Unflipped: x′ at its lower bound,
		// rc_{x′} = +e. Flipped (x′ = u − v): x′ at its upper bound,
		// rc_{x′} = −e.
		rcStd := e
		if bt.flipped[col] {
			rcStd = -e
		}
		// x = shift + sign·x′, so sign = −1 (the x = ub − x′ substitution)
		// swaps which original bound the variable rests at.
		rc[j] = sf.sign[j] * rcStd
	}
	return rc
}

// crashPivTol rejects crash pivots whose magnitude suggests a numerically
// singular basis; the warm attempt then falls back to the cold path.
const crashPivTol = 1e-7

// solveWarmAttempt re-enters the simplex from a previously captured basis:
// rebuild the standard form under the (tightened) bounds, apply the captured
// bound flips, crash the basis in with Gauss-Jordan pivots, restore the
// Phase-II objective row, repair primal feasibility with dual-simplex-style
// pivots (the parent-optimal basis stays dual feasible when only bounds
// change), and polish with the primal iterate. The second return value is
// false whenever the attempt cannot certify an optimal solution — shape
// mismatch, singular crash pivot, repair dead-end (including genuinely
// infeasible children), or any non-optimal polish — and the caller must run
// the cold path, which keeps status classification and error behavior
// identical to a cold solve.
func solveWarmAttempt(p *Problem, n int, opt Options, tol float64, sc *Scratch, warm *Basis) (*Result, bool) {
	reserveFor(p, n, sc)
	sf, err := toStandardForm(p, n, sc)
	if err != nil {
		return nil, false
	}
	return warmAttemptSF(p, n, sf, opt, tol, sc, warm)
}

// warmAttemptSF is the standard-form-independent tail of the warm attempt,
// shared between solveWarmAttempt (which builds the form per solve) and
// Form.SolveWarm (which instantiates a precompiled form). The scratch must
// already be reserved; sf may alias scratch or Form-owned storage — it is
// read-only here.
func warmAttemptSF(p *Problem, n int, sf *standardForm, opt Options, tol float64, sc *Scratch, warm *Basis) (*Result, bool) {
	m := len(sf.a)
	if m == 0 || warm.m != m || warm.nCols != sf.nCols {
		return nil, false
	}
	nCols := sf.nCols
	width := nCols + 1 // no artificials on the warm path
	bt := &boundedTableau{
		rhs:     width - 1,
		basis:   make([]int, m),
		ub:      sc.takeNoZero(width), // fully overwritten by the copy + rhs below
		flipped: make([]bool, width),
		basic:   make([]bool, width),
		nCols:   nCols,
	}
	bt.t = make([][]float64, m+1)
	for i := 0; i < m; i++ {
		// The copy covers [0, nCols) and the rhs assignment the final column,
		// so no zero fill is needed (width = nCols+1: no artificials).
		bt.t[i] = sc.takeNoZero(width)
		copy(bt.t[i], sf.a[i])
		bt.t[i][bt.rhs] = sf.b[i]
	}
	bt.t[m] = sc.take(width) // objective row stays zero until after the crash
	copy(bt.ub, sf.colUB)
	bt.ub[bt.rhs] = math.Inf(1)

	// Re-apply the captured bound flips. A flip needs a finite upper bound;
	// bound tightening cannot un-finite an upper bound, so a mismatch means
	// the basis belongs to a structurally different problem.
	for j := 0; j < nCols; j++ {
		if warm.flipped[j] {
			if math.IsInf(bt.ub[j], 1) {
				return nil, false
			}
			bt.flip(j)
		}
	}

	// Crash the basis in. The captured cols are a basis *set* — which row each
	// column was basic in depends on the parent's pivot history and need not
	// survive the rebuild. Slack columns go first: in the freshly built
	// tableau slack s of inequality row i is ±e_i, so assigning it to its own
	// row costs one row normalization instead of a dense pivot, and — because
	// no later pivot row can then carry a nonzero in that slack column — the
	// column stays unit through the structural pivots. (Cramer expansion
	// along the unit column shows the remaining rows × structural columns
	// stay nonsingular, so this assignment never loses a recoverable basis.)
	// Structural columns follow, pivoting on the largest-magnitude entry
	// among still-unassigned rows (partial pivoting). Failing to find a
	// usable pivot means the basis is (numerically) singular under the
	// child's data.
	res := &Result{Status: StatusOptimal, Warm: true}
	assigned := make([]bool, m)
	nStruct := nCols - len(p.Aub)
	for _, col := range warm.cols {
		if col >= nCols || bt.basic[col] {
			return nil, false
		}
		if col < nStruct {
			continue // structural columns crash in the second pass
		}
		row := len(p.Aeq) + (col - nStruct)
		piv := bt.t[row][col]
		if math.Abs(piv) <= crashPivTol {
			return nil, false
		}
		// Exactness is the point: a slack already at +1 (the common,
		// unnegated-row case) must skip the scaling loop without perturbing
		// the row by a multiply with 1/piv ≈ 1.
		//birplint:ignore floateq
		if piv != 1 {
			inv := 1 / piv
			ri := bt.t[row]
			for j := range ri {
				ri[j] *= inv
			}
			ri[col] = 1
		}
		assigned[row] = true
		bt.basis[row] = col
		bt.basic[col] = true
	}
	for _, col := range warm.cols {
		if col >= nStruct {
			continue
		}
		best, bestAbs := -1, crashPivTol
		for i := 0; i < m; i++ {
			if assigned[i] {
				continue
			}
			if a := math.Abs(bt.t[i][col]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 {
			return nil, false
		}
		assigned[best] = true
		// pivotAt clears bt.basic[bt.basis[row]]; rows start at basis=0, so
		// seed the slot with the column we are about to make basic.
		bt.basis[best] = col
		bt.basic[col] = true
		bt.pivotAt(best, col)
		res.CrashPivots++
	}

	// Phase-II objective row in substituted coordinates, then eliminate the
	// basic columns so the row holds reduced costs. Because the cost vector is
	// unchanged from the parent solve, this row is the parent's optimal
	// (dual-feasible) row: only the rhs and bounds moved.
	objRow := bt.t[m]
	for j := 0; j < nCols; j++ {
		cj := sf.c[j]
		if bt.flipped[j] {
			cj = -cj
		}
		objRow[j] = cj
	}
	for i := 0; i < m; i++ {
		bj := bt.basis[i]
		if cb := objRow[bj]; !mat.Zero(cb) {
			axpyNeg(objRow, bt.t[i][:width], cb)
			objRow[bj] = 0
		}
	}

	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 20*(m+nCols) + 200
	}
	if !repairFeasibility(bt, tol, maxIter, res) {
		return nil, false
	}

	// Polish: the repair restores primal feasibility and preserves dual
	// feasibility up to numerical drift, so this usually certifies optimality
	// in zero iterations. Any non-optimal outcome (stall, drift-induced
	// unboundedness) falls back to the cold path for a trustworthy answer.
	iters, st := bt.iterate(nCols, tol, maxIter)
	res.Iterations = iters
	if st != StatusOptimal {
		return nil, false
	}

	// Paranoid final scan: crash pivots on an ill-conditioned basis can leave
	// residual infeasibility that the reduced-cost test cannot see.
	feasTol := 1e-7 * (1 + maxAbs(sf.b))
	for i := 0; i < m; i++ {
		bi := bt.t[i][bt.rhs]
		if bi < -feasTol {
			return nil, false
		}
		if u := bt.ub[bt.basis[i]]; !math.IsInf(u, 1) && bi > u+feasTol {
			return nil, false
		}
	}

	xs, duals := extractSolution(bt, sf, sc)
	finish(p, n, opt, tol, sf, bt, xs, duals, res)
	return res, true
}

// repairFeasibility runs dual-simplex-style pivots until every basic variable
// sits inside its bounds. A basic variable above its upper bound is first
// flipped (x ← u − x) and its row renormalized, turning the violation into a
// negative rhs; a negative-rhs row then pivots against the entering column
// that minimizes the dual ratio objRow[j]/(−row[j]) (ties to the smallest
// index, keeping the repair deterministic). Returns false on a dead-end (no
// admissible entering column — the child is infeasible or the basis is too
// degraded) or when the pivot budget runs out.
func repairFeasibility(bt *boundedTableau, tol float64, maxIter int, res *Result) bool {
	m := len(bt.basis)
	objRow := bt.t[m]
	for iter := 0; iter < maxIter; iter++ {
		// Normalize upper-bound violations into negative-rhs violations.
		for i := 0; i < m; i++ {
			bj := bt.basis[i]
			u := bt.ub[bj]
			if math.IsInf(u, 1) || bt.t[i][bt.rhs] <= u+tol {
				continue
			}
			bt.flip(bj) // row i becomes: −1·x′ column, rhs − u
			ri := bt.t[i]
			for j := range ri {
				ri[j] = -ri[j]
			}
		}
		// Most-violated row, ties to the smallest index.
		row := -1
		worst := -tol
		for i := 0; i < m; i++ {
			if bi := bt.t[i][bt.rhs]; bi < worst {
				worst = bi
				row = i
			}
		}
		if row < 0 {
			return true
		}
		// Dual ratio test over nonbasic columns that can absorb the violation.
		enter := -1
		bestRatio := math.Inf(1)
		ri := bt.t[row]
		for j := 0; j < bt.nCols; j++ {
			if ri[j] >= -tol || bt.basic[j] {
				continue
			}
			ratio := objRow[j] / -ri[j]
			if ratio < bestRatio-tol {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			return false
		}
		bt.pivotAt(row, enter)
		res.RepairPivots++
	}
	return false
}
