package lp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// mixedBoundsLP extends randomLP with explicit bounds covering all three
// substitution patterns: most variables keep finite lb = 0, one may become
// upper-bound-only and one free. Rows have nonnegative coefficients with
// positive rhs, so x = 0 stays feasible; free/ub-only variables can make an
// instance unbounded, which the differential tests treat as a valid outcome.
func mixedBoundsLP(rng *rand.Rand) *Problem {
	p := randomLP(rng)
	n := len(p.C)
	p.Lb = make([]float64, n)
	if rng.Intn(2) == 0 {
		j := rng.Intn(n)
		p.Lb[j] = math.Inf(-1) // ub stays finite → patUBOnly
	}
	if rng.Intn(2) == 0 {
		j := rng.Intn(n)
		p.Lb[j] = math.Inf(-1)
		p.Ub[j] = math.Inf(1) // patFree
	}
	return p
}

// TestFormColdMatchesSolveScratch: with no warm basis, Form.SolveWarm must be
// indistinguishable from SolveScratch on the equivalent Problem — field for
// field, since both run the same cold pipeline.
func TestFormColdMatchesSolveScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sc1, sc2 := NewScratch(), NewScratch()
	for i := 0; i < 60; i++ {
		p := mixedBoundsLP(rng)
		f, err := NewForm(p)
		if err != nil {
			t.Fatalf("instance %d NewForm: %v", i, err)
		}
		want, err := SolveScratch(p, Options{}, sc1)
		if err != nil {
			t.Fatalf("instance %d SolveScratch: %v", i, err)
		}
		got, err := f.SolveWarm(p.Lb, p.Ub, Options{}, sc2, nil)
		if err != nil {
			t.Fatalf("instance %d Form.SolveWarm: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("instance %d: form cold solve diverged:\nproblem: %+v\nform:    %+v", i, want, got)
		}
	}
}

// TestFormWarmChainMatchesCold exercises the compiled warm path the way
// branch & bound does: capture the basis at the original bounds, tighten the
// box (same pattern), and re-enter through the Form. The warm result must
// certify the same optimum as a cold solve of the tightened problem.
func TestFormWarmChainMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	sc := NewScratch()
	warmCertified := 0
	for i := 0; i < 60; i++ {
		p := mixedBoundsLP(rng)
		f, err := NewForm(p)
		if err != nil {
			t.Fatalf("instance %d NewForm: %v", i, err)
		}
		root, err := SolveScratch(p, Options{CaptureBasis: true}, sc)
		if err != nil {
			t.Fatalf("instance %d root: %v", i, err)
		}
		if root.Status != StatusOptimal {
			continue
		}
		// Tighten: shrink finite upper bounds toward the root optimum, the
		// same single-sided move branching performs.
		lb2 := append([]float64(nil), p.Lb...)
		ub2 := append([]float64(nil), p.Ub...)
		for j := range ub2 {
			if !math.IsInf(ub2[j], 1) && rng.Intn(2) == 0 {
				ub2[j] = math.Max(root.X[j]*(0.5+0.5*rng.Float64()), lb2[j])
				if math.IsInf(lb2[j], -1) {
					ub2[j] = root.X[j]
				}
			}
		}
		p2 := &Problem{C: p.C, Aeq: p.Aeq, Beq: p.Beq, Aub: p.Aub, Bub: p.Bub, Lb: lb2, Ub: ub2}
		cold, err := SolveScratch(p2, Options{}, sc)
		if err != nil {
			t.Fatalf("instance %d cold: %v", i, err)
		}
		warm, err := f.SolveWarm(lb2, ub2, Options{}, sc, root.Basis)
		if err != nil {
			t.Fatalf("instance %d warm: %v", i, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("instance %d: status warm=%v cold=%v", i, warm.Status, cold.Status)
		}
		if cold.Status == StatusOptimal {
			if math.Abs(warm.Obj-cold.Obj) > 1e-7*(1+math.Abs(cold.Obj)) {
				t.Fatalf("instance %d: obj warm=%.12g cold=%.12g", i, warm.Obj, cold.Obj)
			}
			if !warm.WarmFallback {
				warmCertified++
			}
		}
	}
	if warmCertified == 0 {
		t.Fatal("no instance certified through the compiled warm path; the test is vacuous")
	}
}

// TestFormPatternMismatchFallsBack: bounds whose substitution pattern differs
// from the compiled one (a free variable gaining a finite lower bound) must
// take the cold fallback — and still return the correct answer.
func TestFormPatternMismatchFallsBack(t *testing.T) {
	p := &Problem{
		C:   []float64{-1, -2},
		Aub: [][]float64{{1, 1}},
		Bub: []float64{4},
		Lb:  []float64{math.Inf(-1), 0},
		Ub:  []float64{math.Inf(1), 3},
	}
	f, err := NewForm(p)
	if err != nil {
		t.Fatal(err)
	}
	root, err := SolveScratch(p, Options{CaptureBasis: true}, NewScratch())
	if err != nil || root.Status != StatusOptimal {
		t.Fatalf("root: %v (%v)", err, root)
	}
	// Variable 0 switches patFree → patFiniteLB.
	lb2 := []float64{-1, 0}
	ub2 := []float64{math.Inf(1), 3}
	warm, err := f.SolveWarm(lb2, ub2, Options{}, NewScratch(), root.Basis)
	if err != nil {
		t.Fatalf("mismatched solve: %v", err)
	}
	if !warm.WarmFallback {
		t.Fatal("pattern mismatch did not report a warm fallback")
	}
	want, err := SolveScratch(&Problem{C: p.C, Aub: p.Aub, Bub: p.Bub, Lb: lb2, Ub: ub2}, Options{}, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != want.Status || math.Abs(warm.Obj-want.Obj) > 1e-9 {
		t.Fatalf("fallback result %v/%v, want %v/%v", warm.Status, warm.Obj, want.Status, want.Obj)
	}
}

// TestNewFormRejectsMalformed: the one-time compile performs the full matrix
// validation the per-solve path skips afterwards.
func TestNewFormRejectsMalformed(t *testing.T) {
	if _, err := NewForm(&Problem{C: []float64{math.NaN()}}); err == nil {
		t.Fatal("NaN objective accepted")
	}
	if _, err := NewForm(&Problem{C: []float64{1, 2}, Aub: [][]float64{{1}}, Bub: []float64{1}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}
