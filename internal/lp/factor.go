package lp

import "math"

// Basis factorization for the revised simplex: a dense column-major LU with
// partial pivoting, extended by a product-form eta file so that pivots update
// the factorization in O(m + eta nnz) instead of refactorizing.
//
// Determinism contract: pivot row selection is largest |value| with ties
// broken by smallest row index; the eta file is rebuilt from scratch after a
// fixed number of updates (refactorEvery pivots), never on a wall-clock or
// condition-estimate trigger. Every decision is a pure function of the input
// bits, so solves are bit-identical across runs and worker counts.
//
// Math recap. After pivot k the new basis is B' = B·E with
//
//	E = I + (w − e_r)·e_rᵀ,   w = B⁻¹ A_q  (the FTRAN of the entering column)
//
// so E⁻¹ = I − (1/w_r)(w − e_r)e_rᵀ. FTRAN applies E⁻¹ factors in creation
// order after the LU solve; BTRAN applies their transposes in reverse order
// before the LUᵀ solve.

const (
	// refactorEvery is the deterministic refactorization trigger: after this
	// many eta updates the basis is refactorized from scratch and the basic
	// solution recomputed. A fixed pivot count (rather than drift estimates)
	// keeps the trigger, and therefore the whole pivot trajectory,
	// reproducible.
	refactorEvery = 64

	// luWarmSingularTol rejects wobbly pivots when factorizing a basis
	// inherited from another solve (warm re-entry): such a basis may be stale,
	// and falling back to a cold solve is cheap. luColdSingularTol is the
	// looser in-solve threshold: a basis built by our own tolerance-guarded
	// ratio tests is nonsingular unless something is numerically wrong.
	luWarmSingularTol = 1e-8
	luColdSingularTol = 1e-11
)

// factorSnapshot holds a basis LU factorization, attached to a captured Basis
// so that child solves re-entering the same basis can load the factors instead
// of refactorizing from scratch. A snapshot is immutable while any basis of
// the current branch & bound tree references it; the backing objects are
// recycled per tree by the revEngine arena (see Scratch.BeginTree). Bit-exactness contract: the
// snapshot is only ever taken when the engine's LU is *canonical* — i.e. the
// eta file is empty, so lu = LU(current basis, matrix) exactly as a fresh
// factorize would compute it (factorize is a pure function of the basis columns
// and the matrix). A loading child therefore proceeds on the identical bits it
// would have produced itself, keeping plans byte-identical across worker counts
// and across the Options.NoFactorReuse knob.
//
// mat pins the matrix identity: a snapshot is reusable only against the exact
// cscMatrix it was factorized from (the Form-owned compiled matrix, shared by
// every worker of a branch & bound tree). minPiv carries the smallest pivot
// magnitude of the factorization so the warm-entry singularity rejection
// (luWarmSingularTol) behaves exactly as if the child had factorized itself.
type factorSnapshot struct {
	mat    *cscMatrix
	m      int
	minPiv float64
	lu     []float64
	piv    []int32
	lLast  []int32
	uFirst []int32
}

// basisFactor holds the LU factors of the current basis matrix plus the eta
// file of post-factorization pivots. Storage is reused across refactorizations
// and across solves (the owning revEngine lives in a Scratch).
type basisFactor struct {
	m  int
	lu []float64 // column-major m×m; L unit-lower, U upper
	// piv records the partial-pivoting row swaps: at elimination step k rows k
	// and piv[k] were exchanged (piv[k] >= k).
	piv []int32

	// lu/piv/lLast/uFirst above are the *active* views. Normally they alias the
	// own* storage below; after loadSnapshot they alias the snapshot's arrays
	// instead (borrowed — snapshots are immutable while live, and nothing
	// writes the factor arrays outside factorize, so borrowing is race-free
	// even when several workers load the same snapshot). reset restores the
	// own* views, so any factorize writes into engine-owned storage.
	ownLu                       []float64
	ownPiv, ownLLast, ownUFirst []int32

	// minPivot is the smallest pivot magnitude of the last factorize (or the
	// loaded snapshot's); src points at the snapshot the factors were loaded
	// from, while they still equal it bit-for-bit (cleared by any factorize or
	// eta append), so a re-capture of an unchanged basis can share the snapshot
	// instead of copying the LU again.
	minPivot float64
	src      *factorSnapshot

	// Per-column nonzero extents of the factors, computed once per
	// factorization: lLast[k] is the largest row > k holding a nonzero L
	// multiplier in column k (k when the column has none), uFirst[k] the
	// smallest row < k holding a nonzero U entry (k when none). Slack-heavy
	// BIRP bases leave most L columns empty and U columns short, so bounding
	// the triangular-solve loops by these extents skips the bulk of the m²
	// scan. Skipped terms are exact zeros, so the solves stay bit-identical
	// to the full loops.
	lLast  []int32
	uFirst []int32

	// Eta file: update t replaced the basis column in row etaRow[t] with a
	// column whose FTRAN image w is stored as the diagonal etaDiag[t] = w_r
	// plus the off-diagonal sparse entries in [etaStart[t], etaStart[t+1]).
	etaRow   []int32
	etaDiag  []float64
	etaStart []int32
	etaInd   []int32
	etaVal   []float64
}

func (f *basisFactor) reset(m int) {
	f.m = m
	if cap(f.ownLu) < m*m {
		f.ownLu = make([]float64, m*m)
	}
	f.ownLu = f.ownLu[:m*m]
	if cap(f.ownPiv) < m {
		f.ownPiv = make([]int32, m)
	}
	f.ownPiv = f.ownPiv[:m]
	if cap(f.ownLLast) < m {
		f.ownLLast = make([]int32, m)
	}
	f.ownLLast = f.ownLLast[:m]
	if cap(f.ownUFirst) < m {
		f.ownUFirst = make([]int32, m)
	}
	f.ownUFirst = f.ownUFirst[:m]
	f.lu, f.piv, f.lLast, f.uFirst = f.ownLu, f.ownPiv, f.ownLLast, f.ownUFirst
	f.etaRow = f.etaRow[:0]
	f.etaDiag = f.etaDiag[:0]
	f.etaStart = append(f.etaStart[:0], 0)
	f.etaInd = f.etaInd[:0]
	f.etaVal = f.etaVal[:0]
}

func (f *basisFactor) etaCount() int { return len(f.etaRow) }

// factorize computes P·B = L·U for the basis whose column i is scattered by
// load(i, col) into a pre-zeroed col. Right-looking Gaussian elimination with
// partial pivoting;
// columns of a BIRP basis are mostly slacks (one nonzero), so the trailing
// update skips zero multiplier columns and is far cheaper than m³/3 in
// practice. Returns false when a pivot falls below singularTol.
func (f *basisFactor) factorize(m int, load func(i int, col []float64), singularTol float64) bool {
	f.reset(m)
	f.minPivot = 0
	f.src = nil
	lu := f.lu
	// One bulk clear beats m per-column clears; load only scatters nonzeros.
	for i := range lu {
		lu[i] = 0
	}
	for i := 0; i < m; i++ {
		load(i, lu[i*m:(i+1)*m])
	}
	minPiv := math.Inf(1)
	for k := 0; k < m; k++ {
		colK := lu[k*m : (k+1)*m]
		// Partial pivoting: largest |value| at or below the diagonal, ties to
		// the smallest row index.
		p, best := k, abs64(colK[k])
		for r := k + 1; r < m; r++ {
			if v := abs64(colK[r]); v > best {
				p, best = r, v
			}
		}
		if best <= singularTol {
			return false
		}
		if best < minPiv {
			minPiv = best
		}
		f.piv[k] = int32(p)
		if p != k {
			for c := 0; c < m; c++ {
				col := lu[c*m : (c+1)*m]
				col[k], col[p] = col[p], col[k]
			}
		}
		piv := colK[k]
		anyMult := false
		for r := k + 1; r < m; r++ {
			colK[r] /= piv
			//birplint:ignore floateq
			if colK[r] != 0 {
				anyMult = true
			}
		}
		// Unit pivot columns (slacks, and any column already upper-triangular
		// here) have no multipliers, so the whole trailing update is a no-op;
		// most steps of a slack-heavy basis take this exit.
		if !anyMult {
			continue
		}
		for c := k + 1; c < m; c++ {
			col := lu[c*m : (c+1)*m]
			u := col[k]
			// Zero-multiplier skip: slack-heavy bases leave most of the
			// trailing block untouched. Exact zero test on purpose.
			//birplint:ignore floateq
			if u == 0 {
				continue
			}
			for r := k + 1; r < m; r++ {
				col[r] -= colK[r] * u
			}
		}
	}
	// Nonzero extents for the triangular solves. Scanned after elimination
	// because later row swaps permute the already-stored L multipliers; the
	// one m² pass here is repaid many times over by the bounded solve loops
	// (each basis factorization serves ~a dozen FTRANs/BTRANs).
	for k := 0; k < m; k++ {
		col := lu[k*m : (k+1)*m]
		last := k
		for r := m - 1; r > k; r-- {
			//birplint:ignore floateq
			if col[r] != 0 {
				last = r
				break
			}
		}
		f.lLast[k] = int32(last)
		first := k
		for r := 0; r < k; r++ {
			//birplint:ignore floateq
			if col[r] != 0 {
				first = r
				break
			}
		}
		f.uFirst[k] = int32(first)
	}
	f.minPivot = minPiv
	return true
}

// loadSnapshot installs a previously captured canonical factorization: the
// factors become bit-identical to what factorize would compute for the same
// basis and matrix (that is the snapshot invariant), with an empty eta file.
// The snapshot's arrays are borrowed, not copied — the active views alias them
// until the next reset (any factorize), which restores the engine-owned
// storage before writing.
func (f *basisFactor) loadSnapshot(s *factorSnapshot) {
	f.reset(s.m)
	f.lu, f.piv, f.lLast, f.uFirst = s.lu, s.piv, s.lLast, s.uFirst
	f.minPivot = s.minPiv
	f.src = s
}

// snapshot moves the current factors into s (an arena-recycled or fresh
// factorSnapshot) by swapping array ownership: s takes the engine-owned factor
// arrays and the engine keeps s's old storage for its next factorize. O(1) —
// no copying — which matters because this runs once per captured pivoting
// node. The caller must guarantee the factors are canonical (empty eta file),
// engine-owned (the active views alias own*; true after any factorize), and
// must not use them again before the next reset: on return the active views
// hold s's stale previous contents.
func (f *basisFactor) snapshot(mat *cscMatrix, s *factorSnapshot) *factorSnapshot {
	s.mat, s.m, s.minPiv = mat, f.m, f.minPivot
	s.lu, f.ownLu = f.ownLu, s.lu
	s.piv, f.ownPiv = f.ownPiv, s.piv
	s.lLast, f.ownLLast = f.ownLLast, s.lLast
	s.uFirst, f.ownUFirst = f.ownUFirst, s.uFirst
	f.lu, f.piv, f.lLast, f.uFirst = f.ownLu, f.ownPiv, f.ownLLast, f.ownUFirst
	f.src = s
	return s
}

// ftran solves B·z = rhs in place (z == rhs on entry): permute, L-solve,
// U-solve, then the eta factors in creation order.
func (f *basisFactor) ftran(z []float64) {
	m := f.m
	lu := f.lu
	for k := 0; k < m; k++ {
		if p := f.piv[k]; int(p) != k {
			z[k], z[p] = z[p], z[k]
		}
	}
	for k := 0; k < m; k++ {
		zk := z[k]
		//birplint:ignore floateq
		if zk == 0 {
			continue
		}
		last := int(f.lLast[k])
		if last == k {
			continue
		}
		col := lu[k*m : (k+1)*m]
		for r := k + 1; r <= last; r++ {
			z[r] -= col[r] * zk
		}
	}
	for k := m - 1; k >= 0; k-- {
		// Skip-before-divide: 0/d is exactly 0, so zero entries (common with
		// a sparse FTRAN rhs) need neither the division nor the scatter.
		zk := z[k]
		//birplint:ignore floateq
		if zk == 0 {
			continue
		}
		col := lu[k*m : (k+1)*m]
		zk /= col[k]
		z[k] = zk
		//birplint:ignore floateq
		if zk == 0 {
			continue
		}
		for r := int(f.uFirst[k]); r < k; r++ {
			z[r] -= col[r] * zk
		}
	}
	for t := range f.etaRow {
		r := f.etaRow[t]
		//birplint:ignore floateq
		if z[r] == 0 {
			continue
		}
		zr := z[r] / f.etaDiag[t]
		z[r] = zr
		//birplint:ignore floateq
		if zr == 0 {
			continue
		}
		for k := f.etaStart[t]; k < f.etaStart[t+1]; k++ {
			z[f.etaInd[k]] -= f.etaVal[k] * zr
		}
	}
}

// btran solves Bᵀ·y = rhs in place: eta transposes in reverse creation order,
// then Uᵀ-solve, Lᵀ-solve, and the inverse permutation. Column-major storage
// makes both transpose solves walk contiguous memory.
func (f *basisFactor) btran(y []float64) {
	m := f.m
	lu := f.lu
	for t := len(f.etaRow) - 1; t >= 0; t-- {
		r := f.etaRow[t]
		s := y[r]
		for k := f.etaStart[t]; k < f.etaStart[t+1]; k++ {
			s -= f.etaVal[k] * y[f.etaInd[k]]
		}
		y[r] = s / f.etaDiag[t]
	}
	// Leading zeros of the rhs stay zero through the Uᵀ forward solve (row k
	// only mixes rows above it), so both loops can start at the first nonzero
	// — the dual ratio test's ρ = B⁻ᵀe_r rhs is a unit vector, making this
	// skip the dominant cost of the solve for late rows.
	nz := 0
	//birplint:ignore floateq
	for nz < m && y[nz] == 0 {
		nz++
	}
	for k := nz; k < m; k++ {
		col := lu[k*m : (k+1)*m]
		s := y[k]
		lo := int(f.uFirst[k])
		if lo < nz {
			lo = nz
		}
		for r := lo; r < k; r++ {
			s -= col[r] * y[r]
		}
		y[k] = s / col[k]
	}
	for k := m - 2; k >= 0; k-- {
		last := int(f.lLast[k])
		if last == k {
			continue
		}
		col := lu[k*m : (k+1)*m]
		s := y[k]
		for r := k + 1; r <= last; r++ {
			s -= col[r] * y[r]
		}
		y[k] = s
	}
	for k := m - 1; k >= 0; k-- {
		if p := f.piv[k]; int(p) != k {
			z := y
			z[k], z[p] = z[p], z[k]
		}
	}
}

// appendEta records a pivot (entering column with FTRAN image w, leaving row
// r) as a product-form update. Returns false when the pivot element is too
// small to invert safely, in which case the caller must refactorize or fail.
func (f *basisFactor) appendEta(r int, w []float64) bool {
	d := w[r]
	if abs64(d) < 1e-11 {
		return false
	}
	f.src = nil // factors no longer equal any captured snapshot
	f.etaRow = append(f.etaRow, int32(r))
	f.etaDiag = append(f.etaDiag, d)
	for i, v := range w {
		//birplint:ignore floateq
		if i == r || v == 0 {
			continue
		}
		f.etaInd = append(f.etaInd, int32(i))
		f.etaVal = append(f.etaVal, v)
	}
	f.etaStart = append(f.etaStart, int32(len(f.etaInd)))
	return true
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
