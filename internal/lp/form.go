package lp

import (
	"math"

	"repro/internal/mat"
)

// bound-pattern categories: which standard-form substitution a variable uses.
// The category depends only on which bounds are finite, not on their values,
// so it is stable across branch & bound nodes (branching tightens integer
// bounds, which are finite on both sides already, and presolve never turns a
// finite bound infinite).
const (
	patFiniteLB uint8 = iota // finite lb: x = lb + x′
	patUBOnly                // lb = −Inf, finite ub: x = ub − x′
	patFree                  // both infinite: x = x⁺ − x⁻
)

func patternOf(lb, ub float64) uint8 {
	switch {
	case !math.IsInf(lb, -1):
		return patFiniteLB
	case !math.IsInf(ub, 1):
		return patUBOnly
	default:
		return patFree
	}
}

// Form is a reusable compilation of the standard form shared by a family of
// problems that differ only in their variable bounds — exactly the branch &
// bound situation, where thousands of node relaxations reuse one matrix and
// only tighten bounds. NewForm performs the coefficient transform (lower-bound
// shift, free-variable split, slack columns) once; each Form.SolveWarm then
// recomputes only the bound-dependent pieces: the shift vector, the shifted
// rhs (via a per-row nonzero index, O(nnz) instead of O(m·n)), and the native
// column upper bounds.
//
// The compiled rows skip the b ≥ 0 normalization that the cold path needs for
// its Phase-I construction: the warm path never runs Phase I, and row signs
// are irrelevant to the crash/repair/polish pipeline. Slack-column duals stay
// valid — an unnegated ≤ row always keeps its +1 slack.
//
// A Form is immutable after NewForm and safe to share across concurrent
// solvers, each holding its own Scratch. The matrices are aliased, not copied:
// the caller must not mutate them while the Form is in use.
type Form struct {
	c   []float64
	aeq [][]float64
	beq []float64
	aub [][]float64
	bub []float64

	n, m, nCols int
	pattern     []uint8

	// Shift-independent standard-form data, computed once.
	sfA      [][]float64 // transformed rows, unnormalized, each length nCols
	sfC      []float64
	slackCol []int
	pos, neg []int
	sign     []float64

	// Per-row nonzeros over the *original* variables, for the O(nnz) rhs
	// shift: b[i] = B[i] − Σ_k rowVal[i][k]·shift[rowNZ[i][k]].
	rowNZ  [][]int32
	rowVal [][]float64

	// csc is the compiled sparse column form of sfA for the revised engine:
	// one compression per tree instead of one per solve. Read-only after
	// NewForm, like everything else here.
	csc cscMatrix

	// Backing slabs for the per-row slices above, recycled by NewFormReuse.
	sfASlab    []float64
	rowNZSlab  []int32
	rowValSlab []float64
}

// NewForm compiles p's matrices and bound pattern into a reusable Form. The
// bound *values* in p.Lb/p.Ub are not retained — only which bounds are finite
// — so subsequent SolveWarm calls may pass any bounds with the same pattern.
// The matrices are validated here, once, in full.
func NewForm(p *Problem) (*Form, error) { return NewFormReuse(nil, p) }

// NewFormReuse compiles p exactly like NewForm but recycles prev's storage
// (prev may be nil, and any shape difference is handled by regrowing). The
// returned Form is prev when prev was non-nil. Caller contract: prev must no
// longer be in use by any solver — in particular, factor snapshots captured
// against prev's compiled matrix must all be dead (see Scratch.BeginTree),
// because the recycled matrix keeps its pointer identity while changing
// contents.
func NewFormReuse(prev *Form, p *Problem) (*Form, error) {
	n := len(p.C)
	if err := validate(p, n); err != nil {
		return nil, err
	}
	f := prev
	if f == nil {
		f = &Form{}
	}
	f.c = p.C
	f.aeq, f.beq = p.Aeq, p.Beq
	f.aub, f.bub = p.Aub, p.Bub
	f.n = n
	f.m = len(p.Aeq) + len(p.Aub)
	f.pattern = growU8(f.pattern, n)
	f.pos = growInt(f.pos, n)
	f.neg = growInt(f.neg, n)
	f.sign = growF64(f.sign, n)
	col := 0
	for j := 0; j < n; j++ {
		lb, ub := boundsAt(p, j)
		f.pattern[j] = patternOf(lb, ub)
		switch f.pattern[j] {
		case patFiniteLB:
			f.sign[j] = 1
			f.pos[j], f.neg[j] = col, -1
			col++
		case patUBOnly:
			f.sign[j] = -1
			f.pos[j], f.neg[j] = col, -1
			col++
		default:
			f.sign[j] = 1
			f.pos[j], f.neg[j] = col, col+1
			col += 2
		}
	}
	nStruct := col
	f.nCols = nStruct + len(p.Aub)

	f.sfC = growF64(f.sfC, f.nCols)
	for j := range f.sfC {
		f.sfC[j] = 0
	}
	for j := 0; j < n; j++ {
		cj := p.C[j]
		f.sfC[f.pos[j]] += cj * f.sign[j]
		if f.neg[j] >= 0 {
			f.sfC[f.neg[j]] -= cj
		}
	}

	f.sfA = growRows(f.sfA, f.m)
	f.slackCol = growInt(f.slackCol, f.m)
	f.rowNZ = growRowsI32(f.rowNZ, f.m)
	f.rowVal = growRows(f.rowVal, f.m)
	if need := f.m * f.nCols; cap(f.sfASlab) < need {
		f.sfASlab = make([]float64, need)
	}
	// The nonzero slabs are appended to (total nnz is not known up front), so
	// per-row headers are cut from recorded offsets after the fill — an append
	// may relocate the slab, which would invalidate slices taken earlier.
	f.rowNZSlab = f.rowNZSlab[:0]
	f.rowValSlab = f.rowValSlab[:0]
	rowOff := 0
	row := 0
	emit := func(coef []float64, slackCol int) {
		r := f.sfASlab[rowOff : rowOff+f.nCols : rowOff+f.nCols]
		rowOff += f.nCols
		for j := range r {
			r[j] = 0
		}
		for j := 0; j < n; j++ {
			a := coef[j]
			if mat.Zero(a) {
				continue
			}
			r[f.pos[j]] += a * f.sign[j]
			if f.neg[j] >= 0 {
				r[f.neg[j]] -= a
			}
			f.rowNZSlab = append(f.rowNZSlab, int32(j))
			f.rowValSlab = append(f.rowValSlab, a)
		}
		if slackCol >= 0 {
			r[slackCol] = 1
		}
		f.sfA[row] = r
		f.slackCol[row] = slackCol
		// Stash the end offset; the header pass below turns these into slices.
		f.rowNZ[row] = f.rowNZSlab[:len(f.rowNZSlab)]
		row++
	}
	for _, r := range p.Aeq {
		emit(r, -1)
	}
	for i := range p.Aub {
		emit(p.Aub[i], nStruct+i)
	}
	start := 0
	for i := 0; i < f.m; i++ {
		end := len(f.rowNZ[i])
		f.rowNZ[i] = f.rowNZSlab[start:end:end]
		f.rowVal[i] = f.rowValSlab[start:end:end]
		start = end
	}
	buildCSC(&f.csc, f.sfA, f.m, f.nCols)
	return f, nil
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growRows(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		return make([][]float64, n)
	}
	return s[:n]
}

func growRowsI32(s [][]int32, n int) [][]int32 {
	if cap(s) < n {
		return make([][]int32, n)
	}
	return s[:n]
}

// instantiate builds the per-solve standardForm for the given bounds from the
// compiled data. It reserves the scratch (so it must precede every take of the
// same solve) and returns ok = false when the bounds no longer match the
// compiled pattern — a variable changed substitution category, so the caller
// must rebuild from the raw problem instead.
func (f *Form) instantiate(lb, ub []float64, sc *Scratch) (*standardForm, bool) {
	n, m, nCols := f.n, f.m, f.nCols
	width := nCols + 1
	sc.reserve(n + nCols + m + (m+2)*width + nCols + m + 8)
	shift := sc.takeNoZero(n)
	colUB := sc.takeNoZero(nCols)
	for j := 0; j < n; j++ {
		lbj, ubj := lb[j], ub[j]
		if patternOf(lbj, ubj) != f.pattern[j] {
			return nil, false
		}
		switch f.pattern[j] {
		case patFiniteLB:
			shift[j] = lbj
			colUB[f.pos[j]] = ubj - lbj // +Inf−finite stays +Inf
		case patUBOnly:
			shift[j] = ubj
			colUB[f.pos[j]] = math.Inf(1)
		default:
			shift[j] = 0
			colUB[f.pos[j]] = math.Inf(1)
			colUB[f.neg[j]] = math.Inf(1)
		}
	}
	for s := nCols - len(f.aub); s < nCols; s++ {
		colUB[s] = math.Inf(1)
	}
	b := sc.takeNoZero(m)
	for i := 0; i < m; i++ {
		rhs := 0.0
		if i < len(f.beq) {
			rhs = f.beq[i]
		} else {
			rhs = f.bub[i-len(f.beq)]
		}
		nz, val := f.rowNZ[i], f.rowVal[i]
		for k, j := range nz {
			rhs -= val[k] * shift[j]
		}
		b[i] = rhs
	}
	return &standardForm{
		a:        f.sfA,
		b:        b,
		c:        f.sfC,
		nCols:    nCols,
		slackCol: f.slackCol,
		colUB:    colUB,
		shift:    shift,
		sign:     f.sign,
		pos:      f.pos,
		neg:      f.neg,
	}, true
}

// SolveWarm solves the compiled problem under the given bounds, re-entering
// from warm when non-nil, exactly like the package-level SolveWarm but
// skipping the per-solve coefficient transform. Bounds must have the pattern
// the Form was compiled with; a pattern mismatch (or any warm-path failure)
// falls back to the ordinary cold solve on the raw problem, so results are
// identical to SolveWarm on the equivalent Problem.
func (f *Form) SolveWarm(lb, ub []float64, opt Options, sc *Scratch, warm *Basis) (*Result, error) {
	if sc == nil {
		sc = NewScratch()
	}
	p := &Problem{C: f.c, Aeq: f.aeq, Beq: f.beq, Aub: f.aub, Bub: f.bub, Lb: lb, Ub: ub}
	if !opt.AssumeValid {
		// Matrices were validated by NewForm; only the bounds are new input.
		if err := validateBounds(p, f.n); err != nil {
			return nil, err
		}
	}
	tol := opt.Tol
	if mat.Zero(tol) {
		tol = defaultTol
	}
	if opt.Engine != EngineDense {
		// Revised engine: both the warm re-entry and the cold two-phase solve
		// run directly on the compiled (unnormalized) rows and the
		// precompiled CSC — sign-matched artificials make the b ≥ 0
		// normalization unnecessary, so the per-solve coefficient transform
		// is skipped entirely. Pattern mismatch or a numerical failure falls
		// through to the raw-problem cold path below.
		if sf, ok := f.instantiate(lb, ub, sc); ok {
			if warm != nil {
				if res, ok2 := revWarmAttempt(p, f.n, sf, &f.csc, opt, tol, sc, warm); ok2 {
					return res, nil
				}
			}
			maxIter := opt.MaxIter
			if maxIter == 0 {
				maxIter = 20*(f.m+f.nCols) + 200
			}
			if f.m > 0 {
				if res, ok2 := revSolveCold(p, f.n, sf, &f.csc, opt, tol, sc, maxIter); ok2 {
					if warm != nil {
						res.WarmFallback = true
					}
					return res, nil
				}
			}
		}
		res, err := solveCold(p, f.n, opt, tol, sc)
		if err == nil && warm != nil {
			res.WarmFallback = true
		}
		return res, err
	}
	if warm != nil {
		if sf, ok := f.instantiate(lb, ub, sc); ok {
			if res, ok := warmAttemptSF(p, f.n, sf, opt, tol, sc, warm); ok {
				return res, nil
			}
		}
		res, err := solveCold(p, f.n, opt, tol, sc)
		if err == nil {
			res.WarmFallback = true
		}
		return res, err
	}
	return solveCold(p, f.n, opt, tol, sc)
}
