package lp

// Compressed sparse column storage for the standard-form constraint matrix.
//
// The revised simplex engine never forms a tableau: every per-iteration
// quantity is a product against the original matrix (pricing, BTRAN row
// extraction) or against one of its columns (FTRAN), so the matrix is stored
// once, column-major and sparse, and each iteration costs O(nnz) matrix work
// instead of the dense engine's O(m·n) tableau sweep. BIRP's per-slot
// programs are built from small constraint groups (a handful of nonzeros per
// column), which is exactly the regime where this wins.
type cscMatrix struct {
	m, n int
	ptr  []int32 // column j occupies [ptr[j], ptr[j+1]) of ind/val; len n+1
	ind  []int32 // row indices, ascending within a column
	val  []float64
	next []int32 // fill cursor reused across rebuilds (no per-solve alloc)

	// CSR mirror of the same nonzeros, for pricing sweeps against a sparse
	// vector: rowSweep walks only the rows where y is nonzero, which is the
	// whole point when y = B⁻ᵀe_r (the dual ratio test's ρ). Column indices
	// ascend within a row.
	rowPtr []int32 // row i occupies [rowPtr[i], rowPtr[i+1]) of rowCol/rowVal
	rowCol []int32
	rowVal []float64
}

// buildCSC compresses dense standard-form rows (each length n) into csc form,
// reusing dst's storage. Exact zeros are skipped; no tolerance is applied, so
// the sparse matrix is bit-identical to the dense rows it came from.
func buildCSC(dst *cscMatrix, rows [][]float64, m, n int) {
	dst.m, dst.n = m, n
	if cap(dst.ptr) < n+1 {
		dst.ptr = make([]int32, n+1)
	}
	dst.ptr = dst.ptr[:n+1]
	for j := range dst.ptr {
		dst.ptr[j] = 0
	}
	nnz := 0
	for i := 0; i < m; i++ {
		row := rows[i]
		for j := 0; j < n; j++ {
			// Structural-zero skip: exact comparison is the point — a
			// tolerance here would silently drop tiny true coefficients.
			//birplint:ignore floateq
			if row[j] != 0 {
				dst.ptr[j+1]++
				nnz++
			}
		}
	}
	for j := 0; j < n; j++ {
		dst.ptr[j+1] += dst.ptr[j]
	}
	if cap(dst.ind) < nnz {
		dst.ind = make([]int32, nnz)
		dst.val = make([]float64, nnz)
	}
	dst.ind = dst.ind[:nnz]
	dst.val = dst.val[:nnz]
	if cap(dst.next) < n {
		dst.next = make([]int32, n)
	}
	next := dst.next[:n]
	for j := 0; j < n; j++ {
		next[j] = dst.ptr[j]
	}
	for i := 0; i < m; i++ {
		row := rows[i]
		for j := 0; j < n; j++ {
			//birplint:ignore floateq
			if row[j] != 0 {
				k := next[j]
				dst.ind[k] = int32(i)
				dst.val[k] = row[j]
				next[j] = k + 1
			}
		}
	}
	// CSR mirror: the row-major fill order above is exactly CSR order.
	if cap(dst.rowPtr) < m+1 {
		dst.rowPtr = make([]int32, m+1)
	}
	dst.rowPtr = dst.rowPtr[:m+1]
	if cap(dst.rowCol) < nnz {
		dst.rowCol = make([]int32, nnz)
		dst.rowVal = make([]float64, nnz)
	}
	dst.rowCol = dst.rowCol[:nnz]
	dst.rowVal = dst.rowVal[:nnz]
	k := 0
	dst.rowPtr[0] = 0
	for i := 0; i < m; i++ {
		row := rows[i]
		for j := 0; j < n; j++ {
			//birplint:ignore floateq
			if row[j] != 0 {
				dst.rowCol[k] = int32(j)
				dst.rowVal[k] = row[j]
				k++
			}
		}
		dst.rowPtr[i+1] = int32(k)
	}
}

// dot returns v·A_j, the sparse inner product driving reduced-cost pricing.
func (a *cscMatrix) dot(j int, v []float64) float64 {
	var s float64
	for k := a.ptr[j]; k < a.ptr[j+1]; k++ {
		s += a.val[k] * v[a.ind[k]]
	}
	return s
}

// rowSweep computes out[j] = y·A_j for every column at once by accumulating
// over the rows where y is nonzero (out must have length n). Each out[j]
// receives its terms in ascending row order — the same order dot uses — so
// the results are bit-identical to n individual dots; the zero-row skip only
// elides exact-zero terms.
func (a *cscMatrix) rowSweep(y, out []float64) {
	for j := range out[:a.n] {
		out[j] = 0
	}
	for i := 0; i < a.m; i++ {
		yi := y[i]
		//birplint:ignore floateq
		if yi == 0 {
			continue
		}
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			out[a.rowCol[k]] += yi * a.rowVal[k]
		}
	}
}

// scatter adds f·A_j into dst (dense, length m).
func (a *cscMatrix) scatter(j int, f float64, dst []float64) {
	for k := a.ptr[j]; k < a.ptr[j+1]; k++ {
		dst[a.ind[k]] += f * a.val[k]
	}
}
