package lp

// Tests for the sparse revised simplex engine: the LU+eta factorization is
// checked directly against explicit dense solves, the engine is checked
// differentially against the dense tableau oracle, dual re-entry is fuzzed
// through branch-like bound mutation sequences, and the scratch arena is
// checked for aliasing between solves.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// denseSolveRef solves B·x = rhs by Gaussian elimination with partial
// pivoting on an explicit copy — the reference the factorization is measured
// against. B is column-major m×m.
func denseSolveRef(bcol []float64, m int, rhs []float64) []float64 {
	a := make([]float64, m*m)
	copy(a, bcol)
	x := append([]float64(nil), rhs...)
	for k := 0; k < m; k++ {
		p := k
		for r := k + 1; r < m; r++ {
			if math.Abs(a[k*m+r]) > math.Abs(a[k*m+p]) {
				p = r
			}
		}
		if p != k {
			for c := 0; c < m; c++ {
				a[c*m+k], a[c*m+p] = a[c*m+p], a[c*m+k]
			}
			x[k], x[p] = x[p], x[k]
		}
		piv := a[k*m+k]
		for r := k + 1; r < m; r++ {
			f := a[k*m+r] / piv
			if f == 0 {
				continue
			}
			for c := k; c < m; c++ {
				a[c*m+r] -= f * a[c*m+k]
			}
			x[r] -= f * x[k]
		}
	}
	for k := m - 1; k >= 0; k-- {
		s := x[k]
		for c := k + 1; c < m; c++ {
			s -= a[c*m+k] * x[c]
		}
		x[k] = s / a[k*m+k]
	}
	return x
}

// matVec computes y = B·x (column-major B) into a fresh slice.
func matVec(bcol []float64, m int, x []float64) []float64 {
	y := make([]float64, m)
	for c := 0; c < m; c++ {
		v := x[c]
		if v == 0 {
			continue
		}
		for r := 0; r < m; r++ {
			y[r] += bcol[c*m+r] * v
		}
	}
	return y
}

// matTVec computes y = Bᵀ·x.
func matTVec(bcol []float64, m int, x []float64) []float64 {
	y := make([]float64, m)
	for c := 0; c < m; c++ {
		var s float64
		for r := 0; r < m; r++ {
			s += bcol[c*m+r] * x[r]
		}
		y[c] = s
	}
	return y
}

// randomBasisMatrix draws a well-conditioned column-major m×m matrix shaped
// like a BIRP basis: a mix of unit slack columns (one nonzero) and sparse
// structural columns with a dominant diagonal.
func randomBasisMatrix(rng *rand.Rand, m int) []float64 {
	b := make([]float64, m*m)
	for c := 0; c < m; c++ {
		if rng.Intn(3) == 0 { // slack column: exercises the anyMult skip
			b[c*m+c] = 1
			continue
		}
		b[c*m+c] = 3 + rng.Float64()
		for r := 0; r < m; r++ {
			if r != c && rng.Intn(3) == 0 {
				b[c*m+r] = rng.NormFloat64() * 0.5
			}
		}
	}
	return b
}

// TestFactorLUEtaAgainstExplicitInverse is the factorization's core property:
// through an initial factorize and a sequence of eta (product-form) updates,
// ftran must solve B·z = rhs and btran must solve Bᵀ·y = rhs, where B is the
// explicitly maintained dense basis with replaced columns. The reference
// solutions come from an independent dense Gaussian elimination, so this
// checks the LU factors, both triangular-solve sparsity extents (lLast,
// uFirst), the BTRAN first-nonzero skip, and the eta file in one property.
func TestFactorLUEtaAgainstExplicitInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(14)
		bcol := randomBasisMatrix(rng, m)
		var f basisFactor
		ok := f.factorize(m, func(i int, col []float64) {
			for r := 0; r < m; r++ {
				if v := bcol[i*m+r]; v != 0 {
					col[r] = v
				}
			}
		}, luColdSingularTol)
		if !ok {
			t.Fatalf("trial %d: factorize rejected a well-conditioned basis", trial)
		}
		check := func(stage int) {
			for probe := 0; probe < 3; probe++ {
				rhs := make([]float64, m)
				switch probe {
				case 0: // unit vector: the sparse-rhs regime FTRAN/BTRAN optimize for
					rhs[rng.Intn(m)] = 1
				case 1:
					for i := range rhs {
						rhs[i] = rng.NormFloat64()
					}
				case 2: // sparse rhs with exact zeros
					for i := range rhs {
						if rng.Intn(3) == 0 {
							rhs[i] = rng.NormFloat64()
						}
					}
				}
				z := append([]float64(nil), rhs...)
				f.ftran(z)
				want := denseSolveRef(bcol, m, rhs)
				for i := range z {
					if math.Abs(z[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
						t.Fatalf("trial %d stage %d probe %d: ftran[%d]=%g want %g (etas=%d)",
							trial, stage, probe, i, z[i], want[i], f.etaCount())
					}
				}
				y := append([]float64(nil), rhs...)
				f.btran(y)
				back := matTVec(bcol, m, y)
				for i := range back {
					if math.Abs(back[i]-rhs[i]) > 1e-8*(1+math.Abs(rhs[i])) {
						t.Fatalf("trial %d stage %d probe %d: Bᵀ·btran(rhs) row %d = %g want %g",
							trial, stage, probe, i, back[i], rhs[i])
					}
				}
			}
		}
		check(0)
		// Eta updates: replace basis columns one at a time, exactly as a
		// simplex pivot does (w = FTRAN of the entering column).
		for upd := 1; upd <= 6; upd++ {
			r := rng.Intn(m)
			enter := make([]float64, m)
			enter[r] = 2 + rng.Float64() // keep the pivot w_r well away from 0
			for i := 0; i < m; i++ {
				if i != r && rng.Intn(2) == 0 {
					enter[i] = rng.NormFloat64()
				}
			}
			w := append([]float64(nil), enter...)
			f.ftran(w)
			if !f.appendEta(r, w) {
				continue // tiny pivot: a real solve would refactorize
			}
			copy(bcol[r*m:(r+1)*m], enter)
			check(upd)
		}
	}
}

// TestQuickRevisedMatchesDense is the engine A/B differential: on random
// boxed instances (with occasional equality rows) the revised and dense
// engines must agree on status, and at optimality on the objective, with the
// revised engine's point feasible for the original problem. Pivot
// trajectories legitimately differ, so X is only checked for feasibility.
func TestQuickRevisedMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		p := randomBoxLP(rng, n, m)
		if rng.Intn(3) == 0 && m > 1 {
			// Steal an inequality row into the equality block.
			last := len(p.Aub) - 1
			p.Aeq = append(p.Aeq, p.Aub[last])
			p.Beq = append(p.Beq, p.Bub[last])
			p.Aub, p.Bub = p.Aub[:last], p.Bub[:last]
		}
		rev, err1 := SolveOpts(p, Options{})
		den, err2 := SolveOpts(p, Options{Engine: EngineDense})
		if err1 != nil || err2 != nil {
			return false
		}
		if rev.Status == StatusIterLimit || den.Status == StatusIterLimit {
			return true // budget exhaustion is not an agreement failure
		}
		if rev.Status != den.Status {
			return false
		}
		if rev.Status != StatusOptimal {
			return true
		}
		if math.Abs(rev.Obj-den.Obj) > 1e-6*(1+math.Abs(den.Obj)) {
			return false
		}
		for j := range p.C {
			if rev.X[j] < p.Lb[j]-1e-7 || rev.X[j] > p.Ub[j]+1e-7 {
				return false
			}
		}
		for i, row := range p.Aub {
			var lhs float64
			for j, a := range row {
				lhs += a * rev.X[j]
			}
			if lhs > p.Bub[i]+1e-6 {
				return false
			}
		}
		for i, row := range p.Aeq {
			var lhs float64
			for j, a := range row {
				lhs += a * rev.X[j]
			}
			if math.Abs(lhs-p.Beq[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDualReentry drives the dual-simplex re-entry path through fuzzer-chosen
// bound mutation sequences — the branch & bound access pattern (tighten,
// tighten deeper, jump to a sibling) plus shapes the fuzzer invents. At every
// step the warm PreferDual solve must agree with a cold solve of the same
// child: same status, same objective at optimality, feasible point. The basis
// is re-captured from each optimal warm solve, so mutations chain through
// re-entered bases exactly as the node loop does.
func FuzzDualReentry(f *testing.F) {
	f.Add(int64(1), []byte{0x12, 0x8b, 0x31, 0x04})
	f.Add(int64(7), []byte{0xff, 0x00, 0x55, 0xaa, 0x17, 0x63})
	f.Add(int64(23), []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Fuzz(func(t *testing.T, seed int64, muts []byte) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(5)
		base := randomBoxLP(rng, n, m)
		sc := NewScratch()
		root, err := SolveScratch(base, Options{CaptureBasis: true}, sc)
		if err != nil {
			t.Fatalf("root: %v", err)
		}
		if root.Status != StatusOptimal {
			t.Skip("root not optimal")
		}
		basis := root.Basis
		cur := &Problem{
			C: base.C, Aub: base.Aub, Bub: base.Bub,
			Lb: append([]float64(nil), base.Lb...),
			Ub: append([]float64(nil), base.Ub...),
		}
		if len(muts) > 24 {
			muts = muts[:24]
		}
		for step, b := range muts {
			j := int(b>>2) % n
			frac := float64(b&3) / 4
			switch b % 3 {
			case 0: // tighten lower bound to an interior point
				cur.Lb[j] += (cur.Ub[j] - cur.Lb[j]) * frac
			case 1: // tighten upper bound
				cur.Ub[j] -= (cur.Ub[j] - cur.Lb[j]) * frac
			case 2: // sibling jump: restore the variable's original box
				cur.Lb[j], cur.Ub[j] = base.Lb[j], base.Ub[j]
			}
			cold, err1 := Solve(cur)
			warm, err2 := SolveWarm(cur, Options{PreferDual: true, CaptureBasis: true}, sc, basis)
			if err1 != nil || err2 != nil {
				t.Fatalf("step %d: cold err %v warm err %v", step, err1, err2)
			}
			if cold.Status == StatusIterLimit || warm.Status == StatusIterLimit {
				continue
			}
			if warm.Status != cold.Status {
				t.Fatalf("step %d: warm status %v, cold %v (fallback=%v)",
					step, warm.Status, cold.Status, warm.WarmFallback)
			}
			if cold.Status != StatusOptimal {
				continue
			}
			if math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
				t.Fatalf("step %d: warm obj %g, cold %g", step, warm.Obj, cold.Obj)
			}
			for v := range cur.C {
				if warm.X[v] < cur.Lb[v]-1e-7 || warm.X[v] > cur.Ub[v]+1e-7 {
					t.Fatalf("step %d: warm X[%d]=%g outside [%g, %g]",
						step, v, warm.X[v], cur.Lb[v], cur.Ub[v])
				}
			}
			if warm.Basis != nil {
				basis = warm.Basis
			}
		}
	})
}

// TestDegenerateDualReentryTerminates pins anti-cycling on the dual re-entry
// path. The fixture is massively degenerate — several ≤-rows through the
// starting vertex with zero rhs, so dual ratio tests tie everywhere — and the
// re-entry chain tightens bounds into the degenerate corner. Bland's rule
// must still terminate every solve within the iteration budget, agreeing
// with the cold engine at each step.
func TestDegenerateDualReentryTerminates(t *testing.T) {
	n := 4
	p := &Problem{
		C:  []float64{-1, -1, -1, -1},
		Lb: make([]float64, n),
		Ub: []float64{1, 1, 1, 1},
		Aub: [][]float64{
			{1, -1, 0, 0},
			{0, 1, -1, 0},
			{0, 0, 1, -1},
			{1, 1, -1, -1},
			{1, -1, 1, -1},
			{1, 1, 1, 1},
		},
		Bub: []float64{0, 0, 0, 0, 0, 2},
	}
	sc := NewScratch()
	root, err := SolveScratch(p, Options{CaptureBasis: true}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Status != StatusOptimal {
		t.Fatalf("root status %v", root.Status)
	}
	basis := root.Basis
	ubSeq := []float64{0.75, 0.5, 0.5, 0.25, 0.125, 0, 0}
	for step, ub := range ubSeq {
		child := &Problem{
			C: p.C, Aub: p.Aub, Bub: p.Bub,
			Lb: p.Lb,
			Ub: []float64{ub, 1, 1, 1},
		}
		if step >= 3 {
			child.Ub[1] = ub // second variable joins the squeeze
		}
		cold, err1 := Solve(child)
		warm, err2 := SolveWarm(child, Options{PreferDual: true, CaptureBasis: true}, sc, basis)
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: cold err %v warm err %v", step, err1, err2)
		}
		if warm.Status == StatusIterLimit {
			t.Fatalf("step %d: dual re-entry hit the iteration limit on a degenerate fixture (cycling?)", step)
		}
		if warm.Status != cold.Status {
			t.Fatalf("step %d: warm status %v, cold %v", step, warm.Status, cold.Status)
		}
		if cold.Status == StatusOptimal && math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("step %d: warm obj %g, cold %g", step, warm.Obj, cold.Obj)
		}
		if warm.Basis != nil {
			basis = warm.Basis
		}
	}
}

// TestRevisedScratchNoAliasing guards the arena discipline the revised
// engine's new work vectors (CSR sweeps into alpha, stored exit reduced
// costs, LU storage) must obey: results returned from a scratch solve —
// X, ReducedCosts, and the captured Basis including its d vector — must
// survive the scratch being reused for a differently-shaped solve, and a
// re-solve of the first problem in the dirty scratch must be bit-identical
// to the fresh solve. SolveWarm must also leave the caller's basis intact.
func TestRevisedScratchNoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	sc := NewScratch()
	opt := Options{CaptureBasis: true, WantReducedCosts: true}
	var p1 *Problem
	var r1 *Result
	for { // draw until the instance is optimal (random boxes can be infeasible)
		p1 = randomBoxLP(rng, 6, 4)
		var err error
		r1, err = SolveScratch(p1, opt, sc)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Status == StatusOptimal && r1.Basis != nil {
			break
		}
	}
	p2 := randomBoxLP(rng, 11, 9) // bigger shape: forces arena regrow/reuse
	x := append([]float64(nil), r1.X...)
	rc := append([]float64(nil), r1.ReducedCosts...)
	cols := append([]int(nil), r1.Basis.cols...)
	d := append([]float64(nil), r1.Basis.d...)
	if _, err := SolveScratch(p2, opt, sc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x, r1.X) || !reflect.DeepEqual(rc, r1.ReducedCosts) {
		t.Fatal("p2 solve in the same scratch mutated p1's result slices")
	}
	if !reflect.DeepEqual(cols, r1.Basis.cols) || !reflect.DeepEqual(d, r1.Basis.d) {
		t.Fatal("p2 solve in the same scratch mutated p1's captured basis")
	}
	r3, err := SolveScratch(p1, opt, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatalf("re-solve in a dirty scratch diverged from the fresh solve:\nfresh: %+v\ndirty: %+v", r1, r3)
	}
	// Warm re-entry must read, never write, the caller's basis.
	child := &Problem{
		C: p1.C, Aub: p1.Aub, Bub: p1.Bub,
		Lb: append([]float64(nil), p1.Lb...),
		Ub: append([]float64(nil), p1.Ub...),
	}
	child.Ub[0] = (child.Lb[0] + child.Ub[0]) / 2
	if _, err := SolveWarm(child, Options{PreferDual: true}, sc, r1.Basis); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, r1.Basis.cols) || !reflect.DeepEqual(d, r1.Basis.d) {
		t.Fatal("SolveWarm mutated the caller's basis")
	}
}
