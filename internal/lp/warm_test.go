package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBoxLP builds a random boxed LP with m inequality rows, the shape of
// the per-node relaxations the branch & bound loop produces.
func randomBoxLP(rng *rand.Rand, n, m int) *Problem {
	p := &Problem{C: make([]float64, n), Lb: make([]float64, n), Ub: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.C[j] = rng.NormFloat64()
		p.Lb[j] = -rng.Float64() * 2
		p.Ub[j] = p.Lb[j] + 0.5 + rng.Float64()*5
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		p.Aub = append(p.Aub, row)
		p.Bub = append(p.Bub, rng.NormFloat64()*4)
	}
	return p
}

// tightenLikeBranch mimics a branch & bound child: pick one variable and
// either raise its lower bound or lower its upper bound to an interior point.
func tightenLikeBranch(rng *rand.Rand, p *Problem) *Problem {
	q := &Problem{
		C: p.C, Aub: p.Aub, Bub: p.Bub,
		Lb: append([]float64(nil), p.Lb...),
		Ub: append([]float64(nil), p.Ub...),
	}
	j := rng.Intn(len(p.C))
	mid := q.Lb[j] + (q.Ub[j]-q.Lb[j])*rng.Float64()
	if rng.Intn(2) == 0 {
		q.Lb[j] = mid
	} else {
		q.Ub[j] = mid
	}
	return q
}

// Property: warm re-entry from the parent's basis agrees with a cold solve of
// the child — same status, objective within tolerance, and a feasible point.
// This is the correctness contract the warm-started B&B relies on.
func TestQuickWarmMatchesCold(t *testing.T) {
	warmHits := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		parent := randomBoxLP(rng, n, m)
		root, err := SolveOpts(parent, Options{CaptureBasis: true})
		if err != nil {
			return false
		}
		if root.Status != StatusOptimal || root.Basis == nil {
			return true // nothing to warm-start from
		}
		child := tightenLikeBranch(rng, parent)
		cold, err1 := Solve(child)
		warm, err2 := SolveWarm(child, Options{}, nil, root.Basis)
		if err1 != nil || err2 != nil {
			return false
		}
		if warm.Status != cold.Status {
			return false
		}
		if warm.Warm && !warm.WarmFallback {
			warmHits++
		}
		if cold.Status != StatusOptimal {
			return true
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			return false
		}
		for j := range child.C {
			if warm.X[j] < child.Lb[j]-1e-7 || warm.X[j] > child.Ub[j]+1e-7 {
				return false
			}
		}
		// The warm point must satisfy the rows too (optimal ties may pick a
		// different vertex; feasibility + equal objective is the contract).
		for i, row := range child.Aub {
			var lhs float64
			for j, a := range row {
				lhs += a * warm.X[j]
			}
			if lhs > child.Bub[i]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// The warm path must actually engage, not silently fall back everywhere.
	if warmHits < 50 {
		t.Fatalf("warm path succeeded only %d/300 times; re-entry is broken", warmHits)
	}
}

// Chained warm starts down a simulated branching path: each child reuses the
// basis captured from the previous warm solve.
func TestWarmChainedDownBranch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		p := randomBoxLP(rng, 6, 4)
		res, err := SolveOpts(p, Options{CaptureBasis: true})
		if err != nil {
			t.Fatal(err)
		}
		basis := res.Basis
		for depth := 0; depth < 5 && basis != nil; depth++ {
			p = tightenLikeBranch(rng, p)
			cold, err1 := Solve(p)
			warm, err2 := SolveWarm(p, Options{CaptureBasis: true}, nil, basis)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d depth %d: warm status %v, cold %v", trial, depth, warm.Status, cold.Status)
			}
			if cold.Status != StatusOptimal {
				break
			}
			if math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
				t.Fatalf("trial %d depth %d: warm obj %v, cold %v", trial, depth, warm.Obj, cold.Obj)
			}
			basis = warm.Basis
		}
	}
}

// A deliberately mismatched basis (wrong shape) must fall back to the cold
// path and still return the right answer, flagged as a fallback.
func TestWarmFallbackOnShapeMismatch(t *testing.T) {
	p := &Problem{
		C:   []float64{-1, -2},
		Aub: [][]float64{{1, 1}},
		Bub: []float64{3},
		Ub:  []float64{2, 2},
	}
	bogus := &Basis{cols: []int{0, 1, 2}, flipped: []bool{false}, nCols: 1, m: 3}
	res, err := SolveWarm(p, Options{}, nil, bogus)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmFallback || res.Warm {
		t.Fatalf("expected cold fallback, got Warm=%v WarmFallback=%v", res.Warm, res.WarmFallback)
	}
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-5)) > 1e-8 {
		t.Fatalf("fallback answer wrong: status %v obj %v", res.Status, res.Obj)
	}
}

// Warm re-entry on an infeasible child must classify it exactly like the cold
// path (the repair dead-ends and falls back).
func TestWarmInfeasibleChild(t *testing.T) {
	p := &Problem{
		C:   []float64{1, 1},
		Aeq: [][]float64{{1, 1}},
		Beq: []float64{4},
		Ub:  []float64{3, 3},
	}
	root, err := SolveOpts(p, Options{CaptureBasis: true})
	if err != nil || root.Status != StatusOptimal {
		t.Fatalf("root: %v %v", err, root)
	}
	child := &Problem{C: p.C, Aeq: p.Aeq, Beq: p.Beq, Ub: []float64{1, 1}} // 1+1 < 4
	res, err := SolveWarm(child, Options{}, nil, root.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

// Reduced costs: min −x−2y s.t. x+y ≤ 1, boxes [0,1]. Optimum (0,1) rests x at
// its lower bound... actually x+y≤1 binds; check semantics on a cleaner case.
func TestReducedCostsSemantics(t *testing.T) {
	// min x − 2y, boxes x∈[1,5], y∈[0,3], no rows: x rests at lb (rc = +1),
	// y rests at ub (rc = −2).
	p := &Problem{
		C:  []float64{1, -2},
		Lb: []float64{1, 0},
		Ub: []float64{5, 3},
		// A slack-only row keeps m > 0 so the tableau path (not the trivial
		// m == 0 shortcut) computes the reduced costs.
		Aub: [][]float64{{1, 1}},
		Bub: []float64{100},
	}
	res, err := SolveOpts(p, Options{WantReducedCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-8 || math.Abs(res.X[1]-3) > 1e-8 {
		t.Fatalf("x = %v, want (1,3)", res.X)
	}
	if rc := res.ReducedCosts[0]; math.Abs(rc-1) > 1e-8 {
		t.Fatalf("rc[0] = %v, want +1 (resting at lower bound)", rc)
	}
	if rc := res.ReducedCosts[1]; math.Abs(rc-(-2)) > 1e-8 {
		t.Fatalf("rc[1] = %v, want −2 (resting at upper bound)", rc)
	}
}

// Regression: the x = ub − x′ substitution (lb = −Inf with a finite ub) must
// recover x with the negated sign. Before the sign field this path returned
// shift + x′ instead of shift − x′.
func TestNegInfLowerBoundRecovery(t *testing.T) {
	p := &Problem{
		C:   []float64{-1},
		Aub: [][]float64{{1}},
		Bub: []float64{2},
		Lb:  []float64{math.Inf(-1)},
		Ub:  []float64{3},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-2) > 1e-8 || math.Abs(res.Obj-(-2)) > 1e-8 {
		t.Fatalf("x = %v obj = %v, want x=2 obj=-2", res.X, res.Obj)
	}
}

// Warm solves must stay within the arena: steady-state allocations of the
// re-entry path must not exceed the cold path's budget.
func BenchmarkWarmReentry(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n, m := 60, 20
	p := randomBoxLP(rng, n, m)
	root, err := SolveOpts(p, Options{CaptureBasis: true})
	if err != nil || root.Status != StatusOptimal || root.Basis == nil {
		b.Fatalf("root solve: %v %+v", err, root)
	}
	child := tightenLikeBranch(rng, p)
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveWarm(child, Options{}, sc, root.Basis); err != nil {
			b.Fatal(err)
		}
	}
}
