package lp

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomLP draws a seeded bounded LP; nonnegative rows with nonnegative
// right-hand sides keep x = 0 feasible.
func randomLP(rng *rand.Rand) *Problem {
	n := 3 + rng.Intn(8)
	m := 1 + rng.Intn(5)
	p := &Problem{
		C:  make([]float64, n),
		Ub: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.C[j] = -5 + 10*rng.Float64()
		p.Ub[j] = 1 + 9*rng.Float64()
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		var sum float64
		for j := range row {
			row[j] = 4 * rng.Float64()
			sum += row[j]
		}
		p.Aub = append(p.Aub, row)
		p.Bub = append(p.Bub, 0.3*sum*(0.5+rng.Float64()))
	}
	if rng.Intn(2) == 0 {
		// One equality row pinning the first variable inside its box.
		row := make([]float64, n)
		row[0] = 1
		p.Aeq = append(p.Aeq, row)
		p.Beq = append(p.Beq, 0.5*p.Ub[0])
	}
	return p
}

// TestSolveScratchMatchesSolve is the differential test for the scratch
// arena: solving through a caller-held (and reused) Scratch must return the
// same Result as the allocating path, field for field, across many shapes.
func TestSolveScratchMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sc := NewScratch()
	for i := 0; i < 50; i++ {
		p := randomLP(rng)
		want, err := Solve(p)
		if err != nil {
			t.Fatalf("instance %d Solve: %v", i, err)
		}
		got, err := SolveScratch(p, Options{}, sc)
		if err != nil {
			t.Fatalf("instance %d SolveScratch: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("instance %d: scratch solve diverged:\nfresh:   %+v\nscratch: %+v", i, want, got)
		}
	}
}

// TestSolveScratchResultsDoNotAlias ensures a Result survives later solves on
// the same Scratch: X and IneqDuals must be copied out of the arena, not
// views into it.
func TestSolveScratchResultsDoNotAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sc := NewScratch()
	p1 := randomLP(rng)
	first, err := SolveScratch(p1, Options{}, sc)
	if err != nil {
		t.Fatal(err)
	}
	snapX := append([]float64(nil), first.X...)
	snapD := append([]float64(nil), first.IneqDuals...)
	for i := 0; i < 10; i++ {
		if _, err := SolveScratch(randomLP(rng), Options{}, sc); err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(first.X, snapX) || !reflect.DeepEqual(first.IneqDuals, snapD) {
		t.Fatalf("first result mutated by later scratch reuse:\nX    %v want %v\nduals %v want %v",
			first.X, snapX, first.IneqDuals, snapD)
	}
}
