package lp

import "math"

// Sparse revised simplex engine.
//
// Unlike the dense tableau in bounded.go, nothing here materializes B⁻¹A:
// the constraint matrix stays in CSC form, the basis lives as an LU
// factorization with product-form eta updates (factor.go), and each iteration
// does two triangular solves (BTRAN for pricing, FTRAN for the entering
// column) plus an O(nnz) pricing sweep. Bound handling is native: a nonbasic
// variable rests at 0 or at its upper bound (atUpper), the rhs is adjusted by
// the at-upper columns, and the ratio test admits bound flips — no column
// substitution is ever performed, so values are always in original
// (unflipped) standard-form coordinates.
//
// The engine adds a dual simplex path (dualRepair) for warm re-entry: after a
// branch & bound bound tightening the parent basis is dual feasible and
// primal infeasible, the textbook dual-simplex entry state, and a handful of
// dual pivots restores feasibility where the dense path's crash-and-repair
// either spent O(m·n) per pivot or fell back to a full cold solve.
//
// Determinism: every selection rule (Dantzig pricing with smallest-index
// ties, Bland's rule after a degenerate stall, most-violated-row dual
// selection with smallest-index ties, the fixed refactorEvery trigger) is a
// pure function of the input bits, so solves are bit-identical across runs
// and worker counts — the repo-wide contract.

// Engine selects the simplex kernel.
type Engine int

const (
	// EngineRevised is the default sparse revised simplex: CSC constraint
	// matrix, LU basis factorization with eta-file updates, dual-simplex warm
	// re-entry. It falls back to the dense kernel only on numerical failure
	// (singular basis factorization), which is itself a deterministic
	// function of the input.
	EngineRevised Engine = iota
	// EngineDense is the legacy dense tableau kernel, kept as an A/B oracle
	// for bisecting regressions (birpbench -dense).
	EngineDense
)

// revised-engine tolerances: dualProofTol gates when a dual dead-end is
// trusted as an infeasibility certificate (the reduced costs must be dual
// feasible within this slack), revPivotTol rejects FTRAN pivot elements too
// small to divide by.
const (
	dualProofTol = 1e-7
	revPivotTol  = 1e-9
)

// dualRepair outcomes.
const (
	repairDone       = iota // primal feasible, ready for the polish pass
	repairStall             // numerical dead-end or budget exhausted: fall back
	repairInfeasible        // certified infeasible (dual unbounded from a dual-feasible start)
)

// revEngine is the reusable revised-simplex state. One lives lazily inside
// each Scratch, so the eta file, LU storage, and work vectors follow the same
// amortization discipline as the dense tableau arena; results never alias it.
type revEngine struct {
	f basisFactor

	m, nCols, nArt, width int

	csc    *cscMatrix // structural+slack columns; artificials are virtual
	ownCSC cscMatrix  // backing store for non-Form paths

	artRow  []int32   // artRow[a] = row of artificial column nCols+a
	artSign []float64 // ±1 coefficient of that artificial (sign of the rhs)

	basis   []int32   // basis[i] = column basic in row i
	inRow   []int32   // inRow[j] = row where j is basic, or −1
	atUpper []bool    // nonbasic column j rests at its upper bound
	ub      []float64 // column upper bounds, length width
	cost    []float64 // active phase costs, length width

	b     []float64 // standard-form rhs, length m
	xB    []float64 // basic variable values
	y     []float64 // BTRAN work vector
	w     []float64 // FTRAN work vector (entering column image)
	d     []float64 // reduced costs at exit, length width
	alpha []float64 // dual ratio-test row sensitivities, length width

	refactors int
	etaTotal  int

	// snapArena recycles factorSnapshot objects (and, via the snapshot swap,
	// their factor arrays) across the nodes of one branch & bound tree.
	// Snapshots are only referenced by that tree's captured bases, so
	// Scratch.BeginTree resets snapUsed and the next tree reuses the storage;
	// steady-state trees allocate no snapshot memory at all. Bases that
	// outlive the tree must not retain snapshots (Basis.CloneForHandoff).
	snapArena []*factorSnapshot
	snapUsed  int

	// basisArena recycles captured Basis objects under the same per-tree
	// discipline as snapArena (Form path only; bases that outlive the tree go
	// through Basis.CloneForHandoff).
	basisArena []*Basis
	basisUsed  int
}

// takeSnapSlot returns the next recycled snapshot from the per-tree arena,
// growing it on first use at each depth.
func (e *revEngine) takeSnapSlot() *factorSnapshot {
	if e.snapUsed < len(e.snapArena) {
		s := e.snapArena[e.snapUsed]
		e.snapUsed++
		return s
	}
	s := &factorSnapshot{}
	e.snapArena = append(e.snapArena, s)
	e.snapUsed++
	return s
}

func (sc *Scratch) revived() *revEngine {
	if sc.rev == nil {
		sc.rev = &revEngine{}
	}
	return sc.rev
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// init sizes the engine for an m×nCols standard form with nArt artificial
// columns and copies in the per-solve data (rhs, bounds). csc may be nil, in
// which case the matrix is compressed from sf.a into the engine-owned store.
func (e *revEngine) init(sf *standardForm, csc *cscMatrix, nArt int) {
	m, nCols := len(sf.a), sf.nCols
	e.m, e.nCols, e.nArt, e.width = m, nCols, nArt, nCols+nArt
	if csc == nil {
		buildCSC(&e.ownCSC, sf.a, m, nCols)
		csc = &e.ownCSC
	}
	e.csc = csc
	w := e.width
	e.artRow = growI32(e.artRow, nArt)
	e.artSign = growF64(e.artSign, nArt)
	e.basis = growI32(e.basis, m)
	e.inRow = growI32(e.inRow, w)
	e.atUpper = growBool(e.atUpper, w)
	e.ub = growF64(e.ub, w)
	e.cost = growF64(e.cost, w)
	e.b = growF64(e.b, m)
	e.xB = growF64(e.xB, m)
	e.y = growF64(e.y, m)
	e.w = growF64(e.w, m)
	e.d = growF64(e.d, w)
	e.alpha = growF64(e.alpha, w)
	copy(e.b, sf.b)
	copy(e.ub, sf.colUB)
	for j := nCols; j < w; j++ {
		e.ub[j] = math.Inf(1)
	}
	for j := 0; j < w; j++ {
		e.inRow[j] = -1
		e.atUpper[j] = false
	}
	e.refactors = 0
	e.etaTotal = 0
}

// colLoad scatters the current basis column of row i into dst (length m,
// pre-zeroed by factorize's bulk clear) for the LU factorization. Artificial
// columns are virtual ±unit vectors.
func (e *revEngine) colLoad(i int, dst []float64) {
	col := int(e.basis[i])
	if col < e.nCols {
		e.csc.scatter(col, 1, dst)
	} else {
		a := col - e.nCols
		dst[e.artRow[a]] = e.artSign[a]
	}
}

func (e *revEngine) factorize(singularTol float64) bool {
	if !e.f.factorize(e.m, e.colLoad, singularTol) {
		return false
	}
	e.refactors++
	return true
}

// computeXB recomputes the basic values from the rhs and the at-upper
// nonbasic set: xB = B⁻¹(b − Σ_{j at upper} u_j·A_j).
func (e *revEngine) computeXB() {
	copy(e.xB[:e.m], e.b[:e.m])
	for j := 0; j < e.nCols; j++ {
		if e.inRow[j] < 0 && e.atUpper[j] {
			if u := e.ub[j]; u > 0 {
				e.csc.scatter(j, -u, e.xB)
			}
		}
	}
	e.f.ftran(e.xB[:e.m])
}

// refactorize is the deterministic eta-file reset: rebuild the LU from the
// current basis and recompute xB from scratch, wiping accumulated drift.
func (e *revEngine) refactorize() bool {
	if !e.factorize(luColdSingularTol) {
		return false
	}
	e.computeXB()
	return true
}

// priceY computes the simplex multipliers y = B⁻ᵀ·c_B into e.y.
func (e *revEngine) priceY() {
	for i := 0; i < e.m; i++ {
		e.y[i] = e.cost[e.basis[i]]
	}
	e.f.btran(e.y[:e.m])
}

// ftranColumn computes w = B⁻¹·A_j into e.w.
func (e *revEngine) ftranColumn(j int) {
	for i := 0; i < e.m; i++ {
		e.w[i] = 0
	}
	e.csc.scatter(j, 1, e.w)
	e.f.ftran(e.w[:e.m])
}

// pivot replaces the basic variable of row r with entering column q (whose
// FTRAN image is in e.w), records the eta update, and refactorizes at the
// fixed trigger. leaveToUpper says the leaving variable exits at its upper
// bound. entVal is the entering variable's new value. Returns false on a
// numerically unusable pivot (caller falls back).
func (e *revEngine) pivot(r, q int, entVal float64, leaveToUpper bool) bool {
	l := int(e.basis[r])
	e.inRow[l] = -1
	e.atUpper[l] = leaveToUpper
	e.basis[r] = int32(q)
	e.inRow[q] = int32(r)
	e.atUpper[q] = false
	e.xB[r] = entVal
	if !e.f.appendEta(r, e.w[:e.m]) {
		return false
	}
	e.etaTotal++
	if e.f.etaCount() >= refactorEvery {
		return e.refactorize()
	}
	return true
}

// primal runs the bounded-variable revised primal simplex until optimality,
// unboundedness, or the iteration budget. Entering candidates are the
// structural+slack columns only (artificials may leave but never re-enter).
// Dantzig pricing with smallest-index ties; Bland's rule after a degenerate
// stall, mirroring the dense engine's anti-cycling. The bool result is false
// on numerical failure (the caller must fall back to the dense oracle).
func (e *revEngine) primal(tol float64, maxIter int) (int, Status, bool) {
	m, n := e.m, e.nCols
	degenerate, bland := 0, false
	for iter := 1; iter <= maxIter; iter++ {
		e.priceY()
		e.csc.rowSweep(e.y[:m], e.alpha[:n])
		enter := -1
		sigma := 1.0
		if bland {
			for j := 0; j < n; j++ {
				if e.inRow[j] >= 0 {
					continue
				}
				dj := e.cost[j] - e.alpha[j]
				e.d[j] = dj
				if !e.atUpper[j] && dj < -tol {
					enter, sigma = j, 1
					break
				}
				if e.atUpper[j] && dj > tol {
					enter, sigma = j, -1
					break
				}
			}
		} else {
			best := tol
			for j := 0; j < n; j++ {
				if e.inRow[j] >= 0 {
					continue
				}
				dj := e.cost[j] - e.alpha[j]
				e.d[j] = dj
				score := -dj
				if e.atUpper[j] {
					score = dj
				}
				if score > best {
					best = score
					enter = j
					if e.atUpper[j] {
						sigma = -1
					} else {
						sigma = 1
					}
				}
			}
		}
		if enter < 0 {
			// The sweep that certifies optimality is also the exit pricing:
			// e.d now holds every nonbasic reduced cost under the final basis,
			// so the extraction layer needs no separate repricing pass.
			for i := 0; i < m; i++ {
				e.d[e.basis[i]] = 0
			}
			return iter - 1, StatusOptimal, true
		}
		e.ftranColumn(enter)
		// Ratio test: the entering variable moves off its bound by t ≥ 0 until
		//   (a) a basic variable falls to 0,
		//   (b) a basic variable climbs to its (finite) upper bound, or
		//   (c) the entering variable reaches its own opposite bound.
		limit := e.ub[enter] // case (c); +Inf when unbounded above
		leave := -1
		leaveToUpper := false
		for i := 0; i < m; i++ {
			sw := sigma * e.w[i]
			if sw > tol { // case (a)
				ratio := e.xB[i] / sw
				if ratio < limit-tol || (ratio < limit+tol && leave >= 0 && e.basis[i] < e.basis[leave]) {
					limit, leave, leaveToUpper = ratio, i, false
				}
			} else if sw < -tol { // case (b)
				u := e.ub[e.basis[i]]
				if math.IsInf(u, 1) {
					continue
				}
				ratio := (u - e.xB[i]) / (-sw)
				if ratio < limit-tol || (ratio < limit+tol && leave >= 0 && e.basis[i] < e.basis[leave]) {
					limit, leave, leaveToUpper = ratio, i, true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return iter, StatusUnbounded, true
		}
		if limit <= tol {
			degenerate++
			if degenerate > 3*m {
				bland = true
			}
		} else {
			degenerate = 0
			bland = false
		}
		step := sigma * limit
		//birplint:ignore floateq
		if step != 0 {
			for i := 0; i < m; i++ {
				e.xB[i] -= step * e.w[i]
			}
		}
		if leave < 0 {
			// Case (c): pure bound flip, no basis change.
			e.atUpper[enter] = !e.atUpper[enter]
			continue
		}
		start := 0.0
		if e.atUpper[enter] {
			start = e.ub[enter]
		}
		if !e.pivot(leave, enter, start+step, leaveToUpper) {
			return iter, StatusOptimal, false
		}
	}
	return maxIter, StatusIterLimit, true
}

// dualRepair restores primal feasibility with dual-simplex pivots: pick the
// most out-of-bounds basic variable (ties to the smallest row after a stall,
// smallest violation row otherwise), price the leaving row with BTRAN, run
// the bounded dual ratio test over admissible entering columns (minimum
// |d|/|α| ratio, ties to the smallest column), and pivot. The entering
// variable may overshoot its own bound — that simply re-enters the loop as a
// new violation. A dead-end (no admissible column) certifies infeasibility
// when freshly recomputed reduced costs are dual feasible within
// dualProofTol; otherwise it is a numerical stall and the caller falls back
// to a cold solve.
//
// The caller must seed e.d before entry — either priceDual (fresh) or the
// captured exit costs of a same-objective parent (Basis.d). Across pivots d is
// maintained incrementally (d ← d − γ·α with γ the dual step), so the
// per-iteration work is one BTRAN for the leaving row plus one sparse pricing
// sweep for α — half the cost of recomputing d from scratch each time. The
// polish pass afterwards reprices in full, so neither the seed's provenance
// nor incremental drift ever reaches a certificate.
func (e *revEngine) dualRepair(tol float64, maxIter int, allowProof bool) (pivots int, outcome int) {
	m, n := e.m, e.nCols
	degenerate, smallestRow := 0, false
	for iter := 0; iter < maxIter; iter++ {
		// Leaving row: the basic variable most outside [0, ub].
		row, above := -1, false
		worst := tol
		for i := 0; i < m; i++ {
			if v := -e.xB[i]; v > worst {
				worst, row, above = v, i, false
				if smallestRow {
					break
				}
				continue
			}
			u := e.ub[e.basis[i]]
			if math.IsInf(u, 1) {
				continue
			}
			if v := e.xB[i] - u; v > worst {
				worst, row, above = v, i, true
				if smallestRow {
					break
				}
			}
		}
		if row < 0 {
			return pivots, repairDone
		}
		// Leaving-row sensitivities: α_j = (B⁻¹A_j)_row = ρ·A_j, ρ = B⁻ᵀe_row.
		// ρ is sparse (unit rhs through a slack-heavy basis), so the row
		// sweep prices every column in one pass over ρ's support.
		for i := 0; i < m; i++ {
			e.y[i] = 0
		}
		e.y[row] = 1
		e.f.btran(e.y[:m])
		e.csc.rowSweep(e.y[:m], e.alpha[:n])
		// Bounded dual ratio test. Admissible directions move the leaving
		// variable toward the bound it violated:
		//   below 0, exits at lower:  at-lower j needs α<0, at-upper j needs α>0
		//   above ub, exits at upper: at-lower j needs α>0, at-upper j needs α<0
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < n; j++ {
			if e.inRow[j] >= 0 {
				continue
			}
			alpha := e.alpha[j]
			var admissible bool
			if above {
				admissible = (!e.atUpper[j] && alpha > tol) || (e.atUpper[j] && alpha < -tol)
			} else {
				admissible = (!e.atUpper[j] && alpha < -tol) || (e.atUpper[j] && alpha > tol)
			}
			if !admissible {
				continue
			}
			// Clamp the reduced cost to its dual-feasible side so numerical
			// drift cannot produce a negative ratio.
			dj := e.d[j]
			if e.atUpper[j] {
				if dj > 0 {
					dj = 0
				}
			} else if dj < 0 {
				dj = 0
			}
			ratio := abs64(dj) / abs64(alpha)
			if ratio < bestRatio-tol {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			if allowProof && e.dualFeasibleFresh() {
				return pivots, repairInfeasible
			}
			return pivots, repairStall
		}
		e.ftranColumn(enter)
		pivAlpha := e.w[row]
		if abs64(pivAlpha) <= revPivotTol {
			return pivots, repairStall
		}
		target := 0.0
		if above {
			target = e.ub[e.basis[row]]
		}
		delta := (e.xB[row] - target) / pivAlpha
		//birplint:ignore floateq
		if delta != 0 {
			for i := 0; i < m; i++ {
				e.xB[i] -= delta * e.w[i]
			}
		}
		start := 0.0
		wasUpper := e.atUpper[enter]
		if wasUpper {
			start = e.ub[enter]
		}
		leaving := int(e.basis[row])
		if !e.pivot(row, enter, start+delta, above) {
			return pivots, repairStall
		}
		pivots++
		// Incremental dual update: the multipliers move along ρ by the dual
		// step γ = d_q/α_q (clamped d, so γ has the admissible sign), which
		// shifts every nonbasic reduced cost by −γ·α_j. The leaving variable
		// becomes nonbasic with α_l = 1 (its old column is e_row under B⁻¹),
		// hence d_l = −γ; the entering one becomes basic with d_q = 0.
		dq := e.d[enter]
		if wasUpper {
			if dq > 0 {
				dq = 0
			}
		} else if dq < 0 {
			dq = 0
		}
		gamma := dq / e.alpha[enter]
		//birplint:ignore floateq
		if gamma != 0 {
			for j := 0; j < n; j++ {
				if e.inRow[j] >= 0 {
					continue
				}
				e.d[j] -= gamma * e.alpha[j]
			}
		}
		e.d[enter] = 0
		e.d[leaving] = -gamma
		if abs64(delta) <= tol {
			degenerate++
			if degenerate > 3*m {
				smallestRow = true
			}
		} else {
			degenerate = 0
			smallestRow = false
		}
	}
	return pivots, repairStall
}

// priceDual computes the dual-repair entry reduced costs from scratch: one
// BTRAN for the multipliers plus a pricing sweep over the nonbasic columns.
func (e *revEngine) priceDual() {
	e.priceY()
	e.csc.rowSweep(e.y[:e.m], e.alpha[:e.nCols])
	for j := 0; j < e.nCols; j++ {
		if e.inRow[j] >= 0 {
			e.d[j] = 0
			continue
		}
		e.d[j] = e.cost[j] - e.alpha[j]
	}
}

// dualFeasibleFresh recomputes the reduced costs from scratch and reports
// whether they are dual feasible within dualProofTol — the gate for trusting
// a dual dead-end as an infeasibility certificate. Runs only at dead-ends, so
// its full-pricing cost is off the pivot path.
func (e *revEngine) dualFeasibleFresh() bool {
	e.priceY()
	e.csc.rowSweep(e.y[:e.m], e.alpha[:e.nCols])
	for j := 0; j < e.nCols; j++ {
		if e.inRow[j] >= 0 {
			continue
		}
		dj := e.cost[j] - e.alpha[j]
		if e.atUpper[j] {
			if dj > dualProofTol {
				return false
			}
		} else if dj < -dualProofTol {
			return false
		}
	}
	return true
}

// feasible is the paranoid exit scan shared with the dense warm path: every
// basic value must sit inside its bounds within the rhs-scaled tolerance.
func (e *revEngine) feasible(feasTol float64) bool {
	for i := 0; i < e.m; i++ {
		v := e.xB[i]
		if v < -feasTol {
			return false
		}
		if u := e.ub[e.basis[i]]; !math.IsInf(u, 1) && v > u+feasTol {
			return false
		}
	}
	return true
}

// captureBasis snapshots the basis in the shared combinatorial format (nil
// when an artificial is still basic, mirroring the dense capture). On the
// Form path the Basis object and its slices come from the per-tree arena
// (recycled by Scratch.BeginTree); elsewhere they are freshly allocated, so
// long-lived captures outside a tree discipline stay safe.
func (e *revEngine) captureBasis() *Basis {
	var b *Basis
	if e.csc != &e.ownCSC {
		if e.basisUsed < len(e.basisArena) {
			b = e.basisArena[e.basisUsed]
		} else {
			b = &Basis{}
			e.basisArena = append(e.basisArena, b)
		}
		e.basisUsed++
		b.snap = nil
	} else {
		b = &Basis{}
	}
	b.nCols, b.m = e.nCols, e.m
	b.cols = growInt(b.cols, e.m)
	b.flipped = growBool(b.flipped, e.nCols)
	b.d = growF64(b.d, e.nCols)
	for i := 0; i < e.m; i++ {
		c := int(e.basis[i])
		if c >= e.nCols {
			return nil
		}
		b.cols[i] = c
	}
	for j := 0; j < e.nCols; j++ {
		b.flipped[j] = e.inRow[j] < 0 && e.atUpper[j]
	}
	// Exit reduced costs ride along so a same-objective dual re-entry
	// (PreferDual) can skip its entry pricing; see Basis.d.
	copy(b.d, e.d[:e.nCols])
	return b
}

// reducedCosts maps the exit reduced costs back to the original variables
// with the same semantics as the dense reducedCosts: rc > 0 ⇒ resting at the
// lower bound, rc < 0 ⇒ resting at the upper bound, 0 ⇒ no information. In
// natural (unflipped) coordinates the substituted-column reduced cost equals
// d_j in both resting cases, so the mapping is just the sign factor.
func (e *revEngine) reducedCosts(sf *standardForm, n int, tol float64) []float64 {
	rc := make([]float64, n)
	for j := 0; j < n; j++ {
		if sf.neg[j] >= 0 {
			continue // free split: no resting bound
		}
		col := sf.pos[j]
		if e.inRow[col] >= 0 {
			continue
		}
		dj := e.d[col]
		if e.atUpper[col] {
			if dj >= -tol {
				continue
			}
		} else if dj <= tol {
			continue
		}
		rc[j] = sf.sign[j] * dj
	}
	return rc
}

// finishRev recovers the original-variable solution, objective, duals, and
// optional captures from the engine state — the revised twin of finish().
// Requires the reduced costs in e.d to be current (primal's optimal exit
// guarantees this).
func (e *revEngine) finishRev(p *Problem, n int, opt Options, tol float64, sf *standardForm, sc *Scratch, res *Result) {
	xs := sc.take(e.nCols)
	for j := 0; j < e.nCols; j++ {
		if r := e.inRow[j]; r >= 0 {
			xs[j] = e.xB[r]
		} else if e.atUpper[j] {
			xs[j] = e.ub[j]
		}
	}
	x := sf.recover(xs)
	res.X = x
	for j := 0; j < n; j++ {
		res.Obj += p.C[j] * x[j]
	}
	res.IneqDuals = make([]float64, len(p.Aub))
	for i := range p.Aub {
		// Rows whose shifted rhs is negative are the ones toStandardForm
		// negates on the normalized path, which disqualifies their slack from
		// dual reporting there; mirror that so both row encodings agree.
		if row := len(p.Aeq) + i; sf.slackCol[row] >= 0 && sf.b[row] >= 0 {
			res.IneqDuals[i] = e.d[sf.slackCol[row]]
		}
	}
	if opt.CaptureBasis {
		res.Basis = e.captureBasis()
	}
	if opt.WantReducedCosts {
		res.ReducedCosts = e.reducedCosts(sf, n, tol)
	}
	// attachFactors must come last: it may refactorize (changing the factor
	// bits the reduced-cost BTRANs would otherwise see, which would make the
	// reported costs depend on the NoFactorReuse knob) and its snapshot swap
	// leaves the engine's factor arrays stale until the next solve's reset.
	if opt.CaptureBasis {
		e.attachFactors(res.Basis, opt)
	}
	res.Refactorizations = e.refactors
	res.EtaLen = e.etaTotal
}

// attachFactors hangs the canonical LU factorization of the captured basis on
// b, so children re-entering from it skip their entry factorization. Only the
// Form path qualifies: the snapshot is keyed to the tree-shared compiled
// matrix by pointer identity, which an engine-owned matrix (rebuilt per solve)
// cannot provide. When the solve pivoted since the last factorization the eta
// file is non-empty and the factors are first canonicalized by refactorizing
// the exit basis — a deterministic in-solve step, counted in Refactorizations
// like any other rebuild. The refactorization this hoists to capture time is
// repaid once per *child* (most nodes have two), and the snapshot is shared
// unchanged down zero-pivot chains, so factorization work drops roughly by the
// warm-entry count minus the pivoting-node count. A singular canonicalization
// (possible only under numerical degradation) just skips the snapshot; the
// children then factorize themselves, which is the old behavior.
func (e *revEngine) attachFactors(b *Basis, opt Options) {
	if b == nil || opt.NoFactorReuse || e.csc == &e.ownCSC {
		return
	}
	if e.f.etaCount() > 0 && !e.factorize(luColdSingularTol) {
		return
	}
	if src := e.f.src; src != nil && src.mat == e.csc {
		// The factors still equal a live snapshot bit-for-bit (zero-pivot
		// node): share it instead of consuming an arena slot.
		b.snap = src
		return
	}
	b.snap = e.f.snapshot(e.csc, e.takeSnapSlot())
}

// revSolveCold is the revised-engine cold path: two-phase primal simplex with
// sign-matched artificials. Unlike the dense path it does not require b ≥ 0 —
// rows whose slack cannot seed the basis (missing, negated, or negative rhs)
// get an artificial whose coefficient matches the rhs sign, so the Form's
// unnormalized compiled rows solve directly. The bool result is false on
// numerical failure; the caller must then run the dense oracle. csc may be
// nil (compressed from sf.a).
func revSolveCold(p *Problem, n int, sf *standardForm, csc *cscMatrix, opt Options, tol float64, sc *Scratch, maxIter int) (*Result, bool) {
	m := len(sf.a)
	e := sc.revived()
	// Count artificials first: rows that can seed their slack need b ≥ 0 and
	// an un-negated (+1) slack column.
	nArt := 0
	for i := 0; i < m; i++ {
		if sf.slackCol[i] < 0 || sf.b[i] < 0 {
			nArt++
		}
	}
	e.init(sf, csc, nArt)
	a := 0
	for i := 0; i < m; i++ {
		if sf.slackCol[i] >= 0 && sf.b[i] >= 0 {
			e.basis[i] = int32(sf.slackCol[i])
			e.inRow[sf.slackCol[i]] = int32(i)
			continue
		}
		e.artRow[a] = int32(i)
		if sf.b[i] >= 0 {
			e.artSign[a] = 1
		} else {
			e.artSign[a] = -1
		}
		e.basis[i] = int32(e.nCols + a)
		e.inRow[e.nCols+a] = int32(i)
		a++
	}
	if !e.factorize(luColdSingularTol) {
		return nil, false
	}
	e.computeXB()

	res := &Result{Status: StatusOptimal}
	if nArt > 0 {
		// Phase I: minimize the artificial sum.
		for j := 0; j < e.nCols; j++ {
			e.cost[j] = 0
		}
		for k := 0; k < nArt; k++ {
			e.cost[e.nCols+k] = 1
		}
		iters, st, ok := e.primal(tol, maxIter)
		res.Iterations += iters
		if !ok || st == StatusUnbounded {
			// The phase-I objective is bounded below by 0; an "unbounded"
			// verdict can only be numerical noise.
			return nil, false
		}
		if st != StatusOptimal {
			res.Status = st
			return res, true
		}
		infeas := 0.0
		for i := 0; i < m; i++ {
			if int(e.basis[i]) >= e.nCols {
				infeas += e.xB[i]
			}
		}
		if infeas > 1e-7*(1+maxAbs(sf.b)) {
			res.Status = StatusInfeasible
			return res, true
		}
		// Pin the artificials at zero for phase II: a still-basic artificial
		// (degenerate or dead row) is forced out by the ratio test the moment
		// any pivot would move it, and can never re-enter (pricing is
		// restricted to structural+slack columns).
		for k := 0; k < nArt; k++ {
			e.ub[e.nCols+k] = 0
		}
	}

	for j := 0; j < e.nCols; j++ {
		e.cost[j] = sf.c[j]
	}
	for k := 0; k < nArt; k++ {
		e.cost[e.nCols+k] = 0
	}
	iters, st, ok := e.primal(tol, maxIter)
	res.Iterations += iters
	if !ok {
		return nil, false
	}
	if st != StatusOptimal {
		res.Status = st
		return res, true
	}
	if !e.feasible(1e-7 * (1 + maxAbs(sf.b))) {
		return nil, false
	}
	e.finishRev(p, n, opt, tol, sf, sc, res)
	return res, true
}

// revWarmAttempt re-enters the revised simplex from a captured basis: load
// the basis set and resting bounds, factorize, recompute xB under the child's
// bounds, repair primal feasibility with dual pivots, and certify with a
// primal polish plus the paranoid feasibility scan. With opt.PreferDual set —
// the caller guarantees only variable bounds changed since the basis was
// optimal, so it is dual feasible — a dual dead-end is returned as a
// certified StatusInfeasible instead of falling back to a cold solve; that is
// the warm-fallback killer for pruned branch & bound children. The bool
// result is false when the attempt cannot certify an answer (the caller runs
// the cold path, keeping classification identical to a cold solve).
func revWarmAttempt(p *Problem, n int, sf *standardForm, csc *cscMatrix, opt Options, tol float64, sc *Scratch, warm *Basis) (*Result, bool) {
	m := len(sf.a)
	if m == 0 || warm.m != m || warm.nCols != sf.nCols {
		return nil, false
	}
	e := sc.revived()
	e.init(sf, csc, 0)
	for i := 0; i < m; i++ {
		col := warm.cols[i]
		if col >= e.nCols || e.inRow[col] >= 0 {
			return nil, false
		}
		e.basis[i] = int32(col)
		e.inRow[col] = int32(i)
	}
	// Re-apply the captured resting bounds. A nonbasic column can only rest
	// at a finite upper bound; bound tightening never un-finites an upper
	// bound, so a mismatch means a structurally different problem.
	for j := 0; j < e.nCols; j++ {
		if warm.flipped[j] && e.inRow[j] < 0 {
			if math.IsInf(e.ub[j], 1) {
				return nil, false
			}
			e.atUpper[j] = true
		}
	}
	// Factorization handoff: when the warm basis carries the canonical LU of
	// exactly this matrix, load it instead of refactorizing. The snapshot's
	// minimum pivot stands in for the singularity test a fresh factorization
	// would have run, so rejection (→ cold fallback) happens on identical
	// inputs either way.
	factorReused := false
	if snap := warm.snap; snap != nil && !opt.NoFactorReuse && csc != nil && snap.mat == csc && snap.m == m {
		if snap.minPiv <= luWarmSingularTol {
			return nil, false
		}
		e.f.loadSnapshot(snap)
		factorReused = true
	} else if !e.factorize(luWarmSingularTol) {
		return nil, false
	}
	e.computeXB()
	for j := 0; j < e.nCols; j++ {
		e.cost[j] = sf.c[j]
	}

	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 20*(m+e.nCols) + 200
	}
	res := &Result{Status: StatusOptimal, Warm: true, DualReentry: opt.PreferDual}
	if factorReused {
		res.FactorReuses = 1
	}
	if opt.PreferDual && warm.d != nil && len(warm.d) == e.nCols {
		// Bounds-only re-entry: the parent's exit reduced costs are this
		// basis's reduced costs under the unchanged objective, so the entry
		// pricing pass is redundant. Selection-only numbers — certificates
		// reprice (see dualRepair).
		copy(e.d[:e.nCols], warm.d)
	} else {
		e.priceDual()
	}
	pivots, outcome := e.dualRepair(tol, maxIter, opt.PreferDual)
	res.DualPivots = pivots
	res.RepairPivots = pivots
	res.Refactorizations = e.refactors
	res.EtaLen = e.etaTotal
	switch outcome {
	case repairInfeasible:
		res.Status = StatusInfeasible
		return res, true
	case repairStall:
		return nil, false
	}

	// Polish: the dual repair preserves dual feasibility up to drift, so this
	// usually certifies optimality in zero iterations.
	iters, st, ok := e.primal(tol, maxIter)
	res.Iterations = iters
	if !ok || st != StatusOptimal {
		return nil, false
	}
	if !e.feasible(1e-7 * (1 + maxAbs(sf.b))) {
		return nil, false
	}
	e.finishRev(p, n, opt, tol, sf, sc, res)
	res.Refactorizations = e.refactors
	res.EtaLen = e.etaTotal
	return res, true
}
