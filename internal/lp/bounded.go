package lp

import (
	"math"

	"repro/internal/mat"
)

// Bounded-variable primal simplex.
//
// The general-form front end (toStandardForm) reduces every problem to
//
//	min cᵀx   s.t.  A·x = b (after slacks),  0 ≤ x ≤ u   (u may be +Inf)
//
// The engine here keeps the upper bounds native instead of materializing a
// row per bound: nonbasic variables rest at either bound, the ratio test
// admits bound flips, and columns are algebraically substituted
// (x ↔ u − x′) when a variable parks at its upper bound. For the BIRP
// per-slot programs — where almost every variable is boxed — this removes
// roughly half the rows and is the difference between minutes and seconds
// per 300-slot evaluation.
type boundedTableau struct {
	t     [][]float64 // m+1 rows: constraints then reduced-cost row
	rhs   int         // rhs column index
	basis []int
	ub    []float64 // current upper bounds in substituted coordinates
	// flipped[j] means column j currently represents u_j − x_j.
	flipped []bool
	// basic[j] mirrors "j ∈ basis" so membership tests are O(1) instead of
	// scanning the basis on every reduced-cost probe.
	basic []bool
	nCols int // structural+slack columns (artificials excluded)
}

// value recovers the original-coordinate value of column j given its
// substituted-coordinate value v.
func (bt *boundedTableau) value(j int, v float64) float64 {
	if bt.flipped[j] {
		return bt.ub[j] - v
	}
	return v
}

// flip substitutes column j: x_j ← u_j − x_j. Finite ub required.
func (bt *boundedTableau) flip(j int) {
	u := bt.ub[j]
	for i := range bt.t {
		row := bt.t[i]
		if mat.Zero(row[j]) {
			continue
		}
		row[bt.rhs] -= row[j] * u
		row[j] = -row[j]
	}
	bt.flipped[j] = !bt.flipped[j]
}

// axpyNeg computes dst[j] -= f·src[j] elementwise. It is the innermost loop of
// every simplex pivot, so it is unrolled four wide with the bounds checks
// hoisted; each dst[j] is still computed by the same single multiply-subtract
// as the naive loop, so results are bit-identical (no reassociation).
func axpyNeg(dst, src []float64, f float64) {
	dst = dst[:len(src)]
	j := 0
	for ; j+3 < len(src); j += 4 {
		dst[j] -= f * src[j]
		dst[j+1] -= f * src[j+1]
		dst[j+2] -= f * src[j+2]
		dst[j+3] -= f * src[j+3]
	}
	for ; j < len(src); j++ {
		dst[j] -= f * src[j]
	}
}

// pivotAt performs a Gauss-Jordan pivot at (row, col).
func (bt *boundedTableau) pivotAt(row, col int) {
	p := bt.t[row][col]
	inv := 1 / p
	r := bt.t[row]
	j := 0
	for ; j+3 < len(r); j += 4 {
		r[j] *= inv
		r[j+1] *= inv
		r[j+2] *= inv
		r[j+3] *= inv
	}
	for ; j < len(r); j++ {
		r[j] *= inv
	}
	r[col] = 1
	for i := range bt.t {
		if i == row {
			continue
		}
		f := bt.t[i][col]
		if mat.Zero(f) {
			continue
		}
		ri := bt.t[i]
		axpyNeg(ri, r, f)
		ri[col] = 0
	}
	bt.basic[bt.basis[row]] = false
	bt.basic[col] = true
	bt.basis[row] = col
}

// iterate runs the bounded-variable simplex until optimality, unboundedness,
// or the iteration budget. Columns ≥ nAllowed never enter. Bland's rule is
// engaged after a degenerate stall.
func (bt *boundedTableau) iterate(nAllowed int, tol float64, maxIter int) (int, Status) {
	m := len(bt.basis)
	obj := m // objective row index
	degenerate := 0
	bland := false
	for iter := 1; iter <= maxIter; iter++ {
		// Entering column: negative reduced cost among nonbasic columns
		// (every nonbasic rests at value 0 in substituted coordinates).
		enter := -1
		if bland {
			for j := 0; j < nAllowed; j++ {
				if bt.t[obj][j] < -tol && !bt.isBasic(j) {
					enter = j
					break
				}
			}
		} else {
			best := -tol
			for j := 0; j < nAllowed; j++ {
				if bt.t[obj][j] < best && !bt.isBasic(j) {
					best = bt.t[obj][j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return iter - 1, StatusOptimal
		}
		// Ratio test: the entering variable rises from 0 until
		//   (a) a basic variable falls to 0,
		//   (b) a basic variable climbs to its upper bound, or
		//   (c) the entering variable reaches its own upper bound.
		limit := bt.ub[enter] // case (c); +Inf when unbounded above
		leave := -1
		leaveToUpper := false
		for i := 0; i < m; i++ {
			a := bt.t[i][enter]
			bi := bt.t[i][bt.rhs]
			if a > tol { // case (a)
				ratio := bi / a
				if ratio < limit-tol || (ratio < limit+tol && leave >= 0 && bt.basis[i] < bt.basis[leave]) {
					limit = ratio
					leave = i
					leaveToUpper = false
				}
			} else if a < -tol { // case (b)
				ubi := bt.ub[bt.basis[i]]
				if math.IsInf(ubi, 1) {
					continue
				}
				ratio := (ubi - bi) / (-a)
				if ratio < limit-tol || (ratio < limit+tol && leave >= 0 && bt.basis[i] < bt.basis[leave]) {
					limit = ratio
					leave = i
					leaveToUpper = true
				}
			}
		}
		if math.IsInf(limit, 1) {
			return iter, StatusUnbounded
		}
		if limit <= tol {
			degenerate++
			if degenerate > 3*m {
				bland = true
			}
		} else {
			degenerate = 0
			bland = false
		}
		if leave < 0 {
			// Case (c): pure bound flip, no basis change.
			bt.flip(enter)
			continue
		}
		if leaveToUpper {
			// The leaving basic variable exits at its upper bound: substitute
			// it first so it exits at 0, then pivot normally.
			bt.flip(bt.basis[leave])
		}
		bt.pivotAt(leave, enter)
	}
	return maxIter, StatusIterLimit
}

func (bt *boundedTableau) isBasic(j int) bool {
	return bt.basic[j]
}

// extractSolution reads the optimal primal point and per-row duals off a
// solved tableau. xs[j] is standard-form column j's value in original
// (unflipped) coordinates; duals[i] is the reduced cost of row i's slack
// column (0 for rows without a usable slack). Shared by the cold Phase I+II
// path and the warm re-entry path.
func extractSolution(bt *boundedTableau, sf *standardForm, sc *Scratch) (xs, duals []float64) {
	m := len(bt.basis)
	n := bt.nCols
	xs = sc.take(n)
	for j := 0; j < n; j++ {
		if bt.flipped[j] && !bt.isBasic(j) {
			xs[j] = bt.ub[j] // nonbasic at (substituted) 0 = original upper bound
		}
	}
	for i := 0; i < m; i++ {
		if bt.basis[i] < n {
			xs[bt.basis[i]] = bt.value(bt.basis[i], bt.t[i][bt.rhs])
		}
	}
	// Duals: the reduced cost of row i's slack column is the shadow price of
	// that row (for a minimization with ≤ rows, it is ≥ 0 at optimality; a
	// flipped slack — nonbasic at its bound — cannot occur since slacks are
	// unbounded above).
	duals = sc.take(m)
	for i := 0; i < m; i++ {
		if sCol := sf.slackCol[i]; sCol >= 0 {
			duals[i] = bt.t[m][sCol]
		}
	}
	return xs, duals
}

// solveBounded runs Phase I + Phase II on standard-form data with native
// upper bounds. ubs[j] is the upper bound of standard-form column j
// (+Inf when absent). The third return value carries per-row duals (the
// reduced cost of each row's slack; 0 for rows without a usable slack). The
// final return value is the solved tableau for basis capture and reduced-cost
// inspection (nil on the trivial m == 0 path and on non-optimal exits).
func solveBounded(sf *standardForm, ubs []float64, tol float64, maxIter int, sc *Scratch) (Status, []float64, []float64, int, *boundedTableau) {
	m := len(sf.a)
	n := sf.nCols
	if m == 0 {
		xs := sc.take(n)
		for j, cj := range sf.c {
			if cj < -tol {
				if math.IsInf(ubs[j], 1) {
					return StatusUnbounded, nil, nil, 0, nil
				}
				xs[j] = ubs[j]
			}
		}
		return StatusOptimal, xs, nil, 0, nil
	}
	var needy []int
	for i := 0; i < m; i++ {
		if sf.slackCol[i] < 0 {
			needy = append(needy, i)
		}
	}
	nArt := len(needy)
	width := n + nArt + 1
	bt := &boundedTableau{
		rhs:     width - 1,
		basis:   make([]int, m),
		ub:      sc.take(width),
		flipped: make([]bool, width),
		basic:   make([]bool, width),
		nCols:   n,
	}
	bt.t = make([][]float64, m+1)
	for i := 0; i < m; i++ {
		bt.t[i] = sc.take(width)
		copy(bt.t[i], sf.a[i])
		bt.t[i][bt.rhs] = sf.b[i]
		bt.basis[i] = sf.slackCol[i]
	}
	bt.t[m] = sc.take(width)
	copy(bt.ub, ubs)
	for a := n; a < width-1; a++ {
		bt.ub[a] = math.Inf(1) // artificials are unbounded above
	}
	bt.ub[bt.rhs] = math.Inf(1)
	for a, i := range needy {
		bt.t[i][n+a] = 1
		bt.basis[i] = n + a
	}
	for _, bj := range bt.basis {
		bt.basic[bj] = true
	}

	iters := 0
	if nArt > 0 {
		// Phase I: minimize the artificial sum.
		for j := 0; j < width; j++ {
			var s float64
			for _, i := range needy {
				s += bt.t[i][j]
			}
			bt.t[m][j] = -s
		}
		for a := range needy {
			bt.t[m][n+a] = 0
		}
		var st Status
		iters, st = bt.iterate(n+nArt, tol, maxIter)
		if st != StatusOptimal {
			return st, nil, nil, iters, nil
		}
		if -bt.t[m][bt.rhs] > 1e-7*(1+maxAbs(sf.b)) {
			return StatusInfeasible, nil, nil, iters, nil
		}
		for i := 0; i < m; i++ {
			if bt.basis[i] < n {
				continue
			}
			pivoted := false
			for j := 0; j < n; j++ {
				if math.Abs(bt.t[i][j]) > tol {
					bt.pivotAt(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				for j := 0; j < n; j++ {
					bt.t[i][j] = 0
				}
				bt.t[i][bt.rhs] = 0
			}
		}
	}

	// Phase II objective in substituted coordinates: flipping x → u − x
	// negates the cost coefficient (constants drop out of the argmin).
	for j := 0; j < width; j++ {
		bt.t[m][j] = 0
	}
	for j := 0; j < n; j++ {
		cj := sf.c[j]
		if bt.flipped[j] {
			cj = -cj
		}
		bt.t[m][j] = cj
	}
	for i := 0; i < m; i++ {
		bj := bt.basis[i]
		if bj < n && !mat.Zero(bt.t[m][bj]) {
			cb := bt.t[m][bj]
			for j := 0; j < width; j++ {
				bt.t[m][j] -= cb * bt.t[i][j]
			}
		}
	}
	it2, st := bt.iterate(n, tol, maxIter)
	iters += it2
	if st != StatusOptimal {
		return st, nil, nil, iters, nil
	}
	xs, duals := extractSolution(bt, sf, sc)
	return StatusOptimal, xs, duals, iters, bt
}
