package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// materializeBounds rewrites every finite variable bound as an explicit
// inequality row (the formulation the pre-bounded engine used). Both
// formulations are mathematically identical, so the solver must return the
// same status and objective for each — a differential check of the native
// bound handling.
func materializeBounds(p *Problem) *Problem {
	n := len(p.C)
	q := &Problem{
		C:   append([]float64(nil), p.C...),
		Aeq: p.Aeq, Beq: p.Beq,
		Aub: append([][]float64(nil), p.Aub...),
		Bub: append([]float64(nil), p.Bub...),
	}
	lbs := make([]float64, n)
	for j := 0; j < n; j++ {
		lb, ub := boundsAt(p, j)
		lbs[j] = lb
		if !math.IsInf(ub, 1) {
			row := make([]float64, n)
			row[j] = 1
			q.Aub = append(q.Aub, row)
			q.Bub = append(q.Bub, ub)
		}
	}
	q.Lb = lbs
	return q
}

func solveBoth(t *testing.T, p *Problem) (*Result, *Result) {
	t.Helper()
	native, err := Solve(p)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	rows, err := Solve(materializeBounds(p))
	if err != nil {
		t.Fatalf("materialized: %v", err)
	}
	return native, rows
}

func TestBoundedMatchesMaterializedRows(t *testing.T) {
	cases := []*Problem{
		{C: []float64{-1, -1}, Ub: []float64{2, 3}},
		{C: []float64{-1, -1}, Aub: [][]float64{{1, 2}}, Bub: []float64{4}, Ub: []float64{3, 3}},
		{C: []float64{1, -2, 3}, Aeq: [][]float64{{1, 1, 1}}, Beq: []float64{4}, Ub: []float64{2, 2, 2}},
		{C: []float64{-5}, Lb: []float64{1}, Ub: []float64{7}},
		{C: []float64{2, -1}, Lb: []float64{-3, 0}, Ub: []float64{3, 5}},
	}
	for i, p := range cases {
		native, rows := solveBoth(t, p)
		if native.Status != rows.Status {
			t.Fatalf("case %d: status %v vs %v", i, native.Status, rows.Status)
		}
		if native.Status == StatusOptimal && math.Abs(native.Obj-rows.Obj) > 1e-7 {
			t.Fatalf("case %d: obj %v vs %v", i, native.Obj, rows.Obj)
		}
	}
}

// Property: native bounds and materialized-row bounds agree on random boxed
// LPs (status always; objective when optimal).
func TestQuickBoundedDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		m := rng.Intn(5)
		p := &Problem{C: make([]float64, n), Lb: make([]float64, n), Ub: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.C[j] = rng.NormFloat64()
			p.Lb[j] = -rng.Float64() * 3
			p.Ub[j] = p.Lb[j] + rng.Float64()*6
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			p.Aub = append(p.Aub, row)
			p.Bub = append(p.Bub, rng.NormFloat64()*4)
		}
		native, err1 := Solve(p)
		rows, err2 := Solve(materializeBounds(p))
		if err1 != nil || err2 != nil {
			return false
		}
		if native.Status != rows.Status {
			return false
		}
		if native.Status != StatusOptimal {
			return true
		}
		if math.Abs(native.Obj-rows.Obj) > 1e-6*(1+math.Abs(rows.Obj)) {
			return false
		}
		// The native solution must itself satisfy its box.
		for j := 0; j < n; j++ {
			if native.X[j] < p.Lb[j]-1e-7 || native.X[j] > p.Ub[j]+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: random equality-constrained boxed LPs agree too (these exercise
// the Phase-I artificial path together with bound flips).
func TestQuickBoundedDifferentialEqualities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		p := &Problem{C: make([]float64, n), Ub: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.C[j] = rng.NormFloat64()
			p.Ub[j] = 1 + rng.Float64()*4
		}
		// One feasible equality: Σ a_j x_j = a·x0 with x0 inside the box.
		row := make([]float64, n)
		var rhs float64
		for j := range row {
			row[j] = rng.NormFloat64()
			rhs += row[j] * (p.Ub[j] * rng.Float64())
		}
		p.Aeq = [][]float64{row}
		p.Beq = []float64{rhs}
		native, err1 := Solve(p)
		rows, err2 := Solve(materializeBounds(p))
		if err1 != nil || err2 != nil {
			return false
		}
		if native.Status != rows.Status {
			return false
		}
		if native.Status != StatusOptimal {
			return true
		}
		return math.Abs(native.Obj-rows.Obj) <= 1e-6*(1+math.Abs(rows.Obj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundFlipOnlyProblem(t *testing.T) {
	// No constraints at all: optimum is a pure sequence of bound flips.
	p := &Problem{
		C:  []float64{-2, 3, -1},
		Ub: []float64{5, 5, 5},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	want := []float64{5, 0, 5}
	for j, w := range want {
		if math.Abs(res.X[j]-w) > 1e-9 {
			t.Fatalf("x = %v, want %v", res.X, want)
		}
	}
}

func TestBasicVariableHitsUpperBound(t *testing.T) {
	// min −x−10y s.t. x + y ≤ 8, y ≤ 3 (native): push y to its bound while
	// it is basic — exercises the leave-to-upper path.
	p := &Problem{
		C:   []float64{-1, -10},
		Aub: [][]float64{{1, 1}},
		Bub: []float64{8},
		Ub:  []float64{Inf, 3},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-35)) > 1e-8 {
		t.Fatalf("obj = %v (x=%v), want -35 at (5,3)", res.Obj, res.X)
	}
}

func BenchmarkBoundedBoxLP(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	n, m := 120, 40
	p := &Problem{C: make([]float64, n), Ub: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.C[j] = rng.NormFloat64()
		p.Ub[j] = 1 + rng.Float64()*4
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.Aub = append(p.Aub, row)
		p.Bub = append(p.Bub, 10+rng.Float64()*20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIneqDualsShadowPrices(t *testing.T) {
	// max x + y (min −x−y) s.t. x + y ≤ 4 (binding), x ≤ 10 (slack row).
	p := &Problem{
		C:   []float64{-1, -1},
		Aub: [][]float64{{1, 1}, {1, 0}},
		Bub: []float64{4, 10},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if len(res.IneqDuals) != 2 {
		t.Fatalf("duals = %v", res.IneqDuals)
	}
	// Relaxing the binding row by 1 improves the objective by 1.
	if math.Abs(res.IneqDuals[0]-1) > 1e-8 {
		t.Fatalf("dual of binding row = %v, want 1", res.IneqDuals[0])
	}
	if math.Abs(res.IneqDuals[1]) > 1e-8 {
		t.Fatalf("dual of slack row = %v, want 0", res.IneqDuals[1])
	}
}

// Property: complementary slackness — a row with positive dual is tight, and
// duals are nonnegative; spot-checked by perturbation on the binding row.
func TestQuickDualsComplementarySlackness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		p := &Problem{C: make([]float64, n), Ub: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.C[j] = -rng.Float64() // maximize-ish: all rows can bind
			p.Ub[j] = 1 + rng.Float64()*3
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()
			}
			p.Aub = append(p.Aub, row)
			p.Bub = append(p.Bub, 0.5+rng.Float64()*3)
		}
		res, err := Solve(p)
		if err != nil || res.Status != StatusOptimal {
			return false
		}
		for i, d := range res.IneqDuals {
			if d < -1e-7 {
				return false // dual feasibility
			}
			if d > 1e-6 {
				var lhs float64
				for j := range p.C {
					lhs += p.Aub[i][j] * res.X[j]
				}
				if math.Abs(lhs-p.Bub[i]) > 1e-5 {
					return false // positive dual on a non-tight row
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
