package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func wantOptimal(t *testing.T, res *Result, obj float64, tol float64) {
	t.Helper()
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Obj-obj) > tol {
		t.Fatalf("obj = %v, want %v (x=%v)", res.Obj, obj, res.X)
	}
}

func TestSimple2DInequality(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6  →  min -(x+y); optimum at (8/5, 6/5), obj -14/5.
	p := &Problem{
		C:   []float64{-1, -1},
		Aub: [][]float64{{1, 2}, {3, 1}},
		Bub: []float64{4, 6},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, -14.0/5, 1e-8)
	if math.Abs(res.X[0]-1.6) > 1e-8 || math.Abs(res.X[1]-1.2) > 1e-8 {
		t.Fatalf("x = %v, want (1.6, 1.2)", res.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 3, x,y ≥ 0 → x=3, y=0, obj 3.
	p := &Problem{
		C:   []float64{1, 2},
		Aeq: [][]float64{{1, 1}},
		Beq: []float64{3},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, 3, 1e-9)
}

func TestInfeasible(t *testing.T) {
	// x ≥ 0, x ≤ -1 via inequality row.
	p := &Problem{
		C:   []float64{1},
		Aub: [][]float64{{1}},
		Bub: []float64{-1},
	}
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleEqualities(t *testing.T) {
	// x + y = 1 and x + y = 2.
	p := &Problem{
		C:   []float64{0, 0},
		Aeq: [][]float64{{1, 1}, {1, 1}},
		Beq: []float64{1, 2},
	}
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x ≥ 0 and no upper limit.
	p := &Problem{C: []float64{-1}}
	res := solveOK(t, p)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestUnboundedNoConstraints(t *testing.T) {
	p := &Problem{C: []float64{-1, 2}}
	res := solveOK(t, p)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestNoConstraintsOptimalAtZero(t *testing.T) {
	p := &Problem{C: []float64{1, 2}}
	res := solveOK(t, p)
	wantOptimal(t, res, 0, 0)
}

func TestUpperBounds(t *testing.T) {
	// min -x - y with 0 ≤ x ≤ 2, 0 ≤ y ≤ 3 → obj -5 at (2,3).
	p := &Problem{
		C:  []float64{-1, -1},
		Ub: []float64{2, 3},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, -5, 1e-9)
}

func TestFiniteLowerBounds(t *testing.T) {
	// min x + y with x ≥ 2, y ≥ -1 (ub +inf).
	p := &Problem{
		C:  []float64{1, 1},
		Lb: []float64{2, -1},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, 1, 1e-9)
	if res.X[0] != 2 || res.X[1] != -1 {
		t.Fatalf("x = %v, want (2,-1)", res.X)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x ≥ -5 modelled as a free variable with an inequality −x ≤ 5.
	p := &Problem{
		C:   []float64{1},
		Aub: [][]float64{{-1}},
		Bub: []float64{5},
		Lb:  []float64{math.Inf(-1)},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, -5, 1e-9)
}

func TestNegativeUpperBoundOnly(t *testing.T) {
	// min -x with x ∈ (−inf, −2]: optimum at the upper bound −2.
	p := &Problem{
		C:  []float64{-1},
		Lb: []float64{math.Inf(-1)},
		Ub: []float64{-2},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, 2, 1e-9)
	if res.X[0] != -2 {
		t.Fatalf("x = %v, want -2", res.X)
	}
}

func TestBothBoundsFinite(t *testing.T) {
	// min -x - 2y, 1 ≤ x ≤ 4, -3 ≤ y ≤ 5, x + y ≤ 6 → x=4? check: prefer y big.
	// y=5 then x ≤ 1 → x=1. obj = -1-10 = -11.
	p := &Problem{
		C:   []float64{-1, -2},
		Aub: [][]float64{{1, 1}},
		Bub: []float64{6},
		Lb:  []float64{1, -3},
		Ub:  []float64{4, 5},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, -11, 1e-8)
}

func TestDegenerateProblem(t *testing.T) {
	// Classic degenerate vertex: multiple constraints active at optimum.
	p := &Problem{
		C:   []float64{-1, -1},
		Aub: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		Bub: []float64{1, 1, 2},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, -2, 1e-9)
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows must not report infeasible.
	p := &Problem{
		C:   []float64{1, 1},
		Aeq: [][]float64{{1, 1}, {2, 2}},
		Beq: []float64{2, 4},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, 2, 1e-9)
}

func TestBeale1955CyclingInstance(t *testing.T) {
	// Beale's classic cycling example; Bland's fallback must terminate it.
	p := &Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		Aub: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		Bub: []float64{0, 0, 1},
	}
	res := solveOK(t, p)
	wantOptimal(t, res, -0.05, 1e-9)
}

func TestValidationErrors(t *testing.T) {
	cases := []*Problem{
		{C: []float64{1}, Aeq: [][]float64{{1, 2}}, Beq: []float64{1}},
		{C: []float64{1}, Aub: [][]float64{{1, 2}}, Bub: []float64{1}},
		{C: []float64{1}, Aeq: [][]float64{{1}}, Beq: []float64{1, 2}},
		{C: []float64{1}, Aub: [][]float64{{1}}, Bub: []float64{}},
		{C: []float64{math.NaN()}},
		{C: []float64{1}, Lb: []float64{2}, Ub: []float64{1}},
		{C: []float64{1}, Lb: []float64{1, 2}},
		{C: []float64{1}, Ub: []float64{}},
		{C: []float64{1}, Aub: [][]float64{{math.NaN()}}, Bub: []float64{0}},
		{C: []float64{1}, Aeq: [][]float64{{math.NaN()}}, Beq: []float64{0}},
		{C: []float64{1}, Lb: []float64{math.NaN()}},
	}
	for i, p := range cases {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusInfeasible, StatusUnbounded, StatusIterLimit, Status(99)} {
		if s.String() == "" {
			t.Fatalf("empty status string for %d", int(s))
		}
	}
}

func TestIterLimit(t *testing.T) {
	p := &Problem{
		C:   []float64{-1, -1, -1},
		Aub: [][]float64{{1, 2, 3}, {3, 2, 1}, {1, 1, 1}},
		Bub: []float64{10, 10, 5},
	}
	res, err := SolveOpts(p, Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusIterLimit {
		t.Fatalf("status = %v, want iteration-limit", res.Status)
	}
}

// knapsackLPValue solves the fractional knapsack greedily (the known optimum
// of the LP relaxation) for cross-checking the simplex.
func knapsackLPValue(value, weight []float64, cap float64) float64 {
	type item struct{ v, w float64 }
	items := make([]item, len(value))
	for i := range value {
		items[i] = item{value[i], weight[i]}
	}
	// insertion sort by density desc
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].v*items[j-1].w > items[j-1].v*items[j].w; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	var total float64
	for _, it := range items {
		if it.w <= cap {
			cap -= it.w
			total += it.v
		} else {
			total += it.v * cap / it.w
			break
		}
	}
	return total
}

func TestFractionalKnapsackAgainstGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		value := make([]float64, n)
		weight := make([]float64, n)
		row := make([]float64, n)
		c := make([]float64, n)
		ub := make([]float64, n)
		for i := 0; i < n; i++ {
			value[i] = 1 + rng.Float64()*9
			weight[i] = 1 + rng.Float64()*9
			row[i] = weight[i]
			c[i] = -value[i]
			ub[i] = 1
		}
		cap := rng.Float64() * 20
		p := &Problem{C: c, Aub: [][]float64{row}, Bub: []float64{cap}, Ub: ub}
		res := solveOK(t, p)
		want := -knapsackLPValue(value, weight, cap)
		if res.Status != StatusOptimal || math.Abs(res.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: obj %v want %v (status %v)", trial, res.Obj, want, res.Status)
		}
	}
}

// Property: any optimal solution must satisfy all constraints and bounds.
func TestQuickOptimalIsFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		p := &Problem{
			C:  make([]float64, n),
			Ub: make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = rng.NormFloat64()
			p.Ub[j] = 1 + rng.Float64()*10
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			p.Aub = append(p.Aub, row)
			p.Bub = append(p.Bub, rng.Float64()*10) // nonneg rhs keeps x=0 feasible
		}
		res, err := Solve(p)
		if err != nil || res.Status != StatusOptimal {
			return false // bounded (Ub) + feasible (0) instance must be optimal
		}
		for j := 0; j < n; j++ {
			if res.X[j] < -1e-7 || res.X[j] > p.Ub[j]+1e-7 {
				return false
			}
		}
		for i := 0; i < m; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += p.Aub[i][j] * res.X[j]
			}
			if s > p.Bub[i]+1e-6 {
				return false
			}
		}
		// Optimality sanity: x=0 is feasible, so optimum ≤ 0.
		return res.Obj <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property (weak duality spot check): the optimum of min cᵀx over a box with
// one coupling row is never better than the box-relaxation optimum.
func TestQuickBoxRelaxationBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		c := make([]float64, n)
		ub := make([]float64, n)
		row := make([]float64, n)
		boxOpt := 0.0
		for j := 0; j < n; j++ {
			c[j] = rng.NormFloat64()
			ub[j] = rng.Float64() * 5
			row[j] = rng.Float64()
			if c[j] < 0 {
				boxOpt += c[j] * ub[j]
			}
		}
		p := &Problem{
			C:   c,
			Aub: [][]float64{row},
			Bub: []float64{rng.Float64() * 10},
			Ub:  ub,
		}
		res, err := Solve(p)
		if err != nil {
			return false
		}
		if res.Status != StatusOptimal {
			return false
		}
		return res.Obj >= boxOpt-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTransportationProblem(t *testing.T) {
	// Two sources (supply 20, 30), three sinks (demand 10, 25, 15).
	// Costs: s1: [8,6,10], s2: [9,12,13]. Known optimum 395? Compute:
	// Greedy check by brute force below instead.
	cost := []float64{8, 6, 10, 9, 12, 13}
	p := &Problem{
		C: cost,
		Aeq: [][]float64{
			{1, 1, 1, 0, 0, 0}, // supply s1
			{0, 0, 0, 1, 1, 1}, // supply s2
			{1, 0, 0, 1, 0, 0}, // demand d1
			{0, 1, 0, 0, 1, 0}, // demand d2
			{0, 0, 1, 0, 0, 1}, // demand d3
		},
		Beq: []float64{20, 30, 10, 25, 15},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	// LP optimum equals the integral transportation optimum; verify against
	// an exhaustive search over integral flows.
	best := math.Inf(1)
	for a := 0; a <= 10; a++ { // x11
		for b := 0; b <= 25; b++ { // x12
			c3 := 20 - a - b // x13
			if c3 < 0 || c3 > 15 {
				continue
			}
			x21 := 10 - a
			x22 := 25 - b
			x23 := 15 - c3
			if x21 < 0 || x22 < 0 || x23 < 0 || x21+x22+x23 != 30 {
				continue
			}
			v := 8*float64(a) + 6*float64(b) + 10*float64(c3) + 9*float64(x21) + 12*float64(x22) + 13*float64(x23)
			if v < best {
				best = v
			}
		}
	}
	if math.Abs(res.Obj-best) > 1e-6 {
		t.Fatalf("obj = %v, brute force %v", res.Obj, best)
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n, m := 60, 40
	p := &Problem{C: make([]float64, n), Ub: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.C[j] = rng.NormFloat64()
		p.Ub[j] = 1 + rng.Float64()*4
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.Aub = append(p.Aub, row)
		p.Bub = append(p.Bub, 5+rng.Float64()*10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
