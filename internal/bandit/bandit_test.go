package bandit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTIRParamsPiecewise(t *testing.T) {
	p := TIRParams{Eta: 0.32, Beta: 5, C: 1.68}
	if got := p.TIR(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TIR(1) = %v, want 1", got)
	}
	if got := p.TIR(5); math.Abs(got-math.Pow(5, 0.32)) > 1e-12 {
		t.Fatalf("TIR(5) = %v", got)
	}
	if got := p.TIR(6); got != 1.68 {
		t.Fatalf("TIR(6) = %v, want plateau 1.68", got)
	}
	if got := p.TIR(0); got != 0 {
		t.Fatalf("TIR(0) = %v, want 0", got)
	}
	if got := p.TIR(-3); got != 0 {
		t.Fatalf("TIR(-3) = %v, want 0", got)
	}
}

func TestBatchTime(t *testing.T) {
	p := TIRParams{Eta: 0.5, Beta: 8, C: math.Pow(8, 0.5)}
	gamma := 10.0
	// f(b) = b·γ/b^0.5 = γ·b^0.5 on the power segment.
	if got, want := p.BatchTime(gamma, 4), 20.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("BatchTime(4) = %v, want %v", got, want)
	}
	// Beyond the knee execution is linear in b.
	if got, want := p.BatchTime(gamma, 16), 16*gamma/p.C; math.Abs(got-want) > 1e-9 {
		t.Fatalf("BatchTime(16) = %v, want %v", got, want)
	}
	if got := p.BatchTime(gamma, 0); got != 0 {
		t.Fatalf("BatchTime(0) = %v, want 0", got)
	}
}

func TestBatchTimeMonotoneInB(t *testing.T) {
	// Completion time must never decrease as the batch grows.
	p := TIRParams{Eta: 0.32, Beta: 5, C: 1.68}
	prev := 0.0
	for b := 1; b <= 32; b++ {
		cur := p.BatchTime(7, float64(b))
		if cur < prev-1e-12 {
			t.Fatalf("BatchTime not monotone at b=%d: %v < %v", b, cur, prev)
		}
		prev = cur
	}
}

func TestNewTunerInitialization(t *testing.T) {
	tu := NewTuner(0.04, 0.07)
	h := tu.Historical()
	if h.Eta != InitEta || h.Beta != InitBeta || math.Abs(h.C-InitC) > 1e-12 {
		t.Fatalf("init = %+v", h)
	}
	if math.Abs(InitC-1.3195) > 0.01 {
		t.Fatalf("InitC = %v, paper says ≈1.31", InitC)
	}
}

func TestObserveBeyondKneeMovesBetaAndC(t *testing.T) {
	tu := NewTuner(0.04, 0.07)
	// An observation well above (1+ε1)·C̄ triggers the Eq. 16 branch.
	tu.Observe(20, 2.0)
	h := tu.Historical()
	if h.Beta != 20 {
		t.Fatalf("β̄ = %v, want 20 (first n2 observation replaces the prior)", h.Beta)
	}
	if h.C != 2.0 {
		t.Fatalf("C̄ = %v, want 2.0", h.C)
	}
	n1, n2 := tu.Counts()
	if n1 != 0 || n2 != 1 {
		t.Fatalf("counts = (%d,%d), want (0,1)", n1, n2)
	}
	// A second surprise (2.4 ≥ 1.04·2.0) averages in with weight 1/2.
	tu.Observe(10, 2.4)
	h = tu.Historical()
	if math.Abs(h.Beta-15) > 1e-12 {
		t.Fatalf("β̄ = %v, want 15", h.Beta)
	}
	if math.Abs(h.C-2.2) > 1e-12 {
		t.Fatalf("C̄ = %v, want 2.2", h.C)
	}
	// A non-surprise (1.6 < 1.04·2.2) must land in the η branch instead.
	tu.Observe(12, 1.6)
	if _, n2 := tu.Counts(); n2 != 2 {
		t.Fatalf("n2 = %d, want 2 (third obs was not a surprise)", n2)
	}
}

func TestObserveWithinKneeMovesEta(t *testing.T) {
	tu := NewTuner(0.04, 0.07)
	// TIR = 4^0.15 ≈ 1.23 < (1+ε1)·1.32 → within-knee branch.
	tu.Observe(4, math.Pow(4, 0.15))
	h := tu.Historical()
	if math.Abs(h.Eta-0.15) > 1e-12 {
		t.Fatalf("η̄ = %v, want exactly the implied 0.15 after one obs", h.Eta)
	}
	n1, n2 := tu.Counts()
	if n1 != 1 || n2 != 0 {
		t.Fatalf("counts = (%d,%d), want (1,0)", n1, n2)
	}
}

func TestObserveBatchOneCarriesNoEtaInfo(t *testing.T) {
	tu := NewTuner(0.04, 0.07)
	before := tu.Historical().Eta
	tu.Observe(1, 1.0)
	if tu.Historical().Eta != before {
		t.Fatal("b=1 observation must not change η̄")
	}
	n1, _ := tu.Counts()
	if n1 != 1 {
		t.Fatalf("n1 = %d, want 1", n1)
	}
}

func TestObserveIgnoresGarbage(t *testing.T) {
	tu := NewTuner(0.04, 0.07)
	tu.Observe(0, 1)
	tu.Observe(-5, 1)
	tu.Observe(4, 0)
	tu.Observe(4, -1)
	tu.Observe(4, math.NaN())
	tu.Observe(4, math.Inf(1))
	n1, n2 := tu.Counts()
	if n1 != 0 || n2 != 0 {
		t.Fatalf("garbage observations must be dropped, counts (%d,%d)", n1, n2)
	}
}

func TestEtaConvergesToTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trueEta := 0.32
	tu := NewTuner(0.04, 0.07)
	for i := 0; i < 2000; i++ {
		tu.Tick()
		b := 2 + rng.Intn(4) // stay under the knee
		noise := 1 + rng.NormFloat64()*0.01
		tu.Observe(b, math.Pow(float64(b), trueEta)*noise)
	}
	if got := tu.Historical().Eta; math.Abs(got-trueEta) > 0.02 {
		t.Fatalf("η̄ = %v, want ≈ %v", got, trueEta)
	}
}

func TestPaddingShrinksWithObservations(t *testing.T) {
	tu := NewTuner(0.04, 0.07)
	for i := 0; i < 10; i++ {
		tu.Tick()
	}
	p0 := tu.Params()
	// Each observation exceeds the (1+ε1)-shaded plateau, so every one is a
	// "surprise": n2 rises and the Eq. 17 padding shrinks.
	for i := 0; i < 100; i++ {
		tu.Observe(20, tu.Historical().C*1.05)
	}
	p1 := tu.Params()
	h := tu.Historical()
	if p1.C <= p0.C {
		t.Fatalf("shaded C should rise toward C̄: before %v after %v", p0.C, p1.C)
	}
	if p1.C < 0.85*h.C {
		t.Fatalf("shaded C = %v should be within 15%% of C̄ = %v after 100 surprises", p1.C, h.C)
	}
}

func TestParamsClamps(t *testing.T) {
	tu := NewTuner(0.04, 5) // absurd ε2 makes padding saturate
	for i := 0; i < 1000; i++ {
		tu.Tick()
	}
	p := tu.Params()
	if p.Beta < 1 {
		t.Fatalf("β must be ≥ 1, got %v", p.Beta)
	}
	if p.C < 1 {
		t.Fatalf("C must be ≥ 1, got %v", p.C)
	}
	if p.Eta < 0 {
		t.Fatalf("η must be ≥ 0, got %v", p.Eta)
	}
}

func TestBetaIsCeiled(t *testing.T) {
	tu := NewTuner(0.04, 0.07)
	tu.Tick()
	p := tu.Params()
	if p.Beta != math.Trunc(p.Beta) {
		t.Fatalf("β = %v must be integral (Eq. 17 ceiling)", p.Beta)
	}
}

func TestLiteralEq22Toggle(t *testing.T) {
	mk := func(literal bool) TIRParams {
		tu := NewTuner(0.04, 0.07)
		tu.LiteralEq22 = literal
		for i := 0; i < 50; i++ {
			tu.Tick()
			tu.Observe(4, math.Pow(4, 0.3)) // only n1 grows
		}
		return tu.Params()
	}
	lit := mk(true)
	fix := mk(false)
	// With n1 = 50 and n2 = 0, the n1-based padding is much smaller, so the
	// shaded η must be closer to the estimate when LiteralEq22 is false.
	if !(fix.Eta > lit.Eta) {
		t.Fatalf("expected n1-based padding to shade less: literal %v fixed %v", lit.Eta, fix.Eta)
	}
}

func TestTunerString(t *testing.T) {
	tu := NewTuner(0.04, 0.07)
	if s := tu.String(); !strings.Contains(s, "tuner{") {
		t.Fatalf("String = %q", s)
	}
}

// Property: the shaded parameters never exceed the historical estimates
// (lower-confidence shading is pessimistic), for any observation stream.
func TestQuickShadedBelowHistorical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tu := NewTuner(0.01+rng.Float64()*0.06, 0.04+rng.Float64()*0.06)
		for i := 0; i < 200; i++ {
			tu.Tick()
			b := 1 + rng.Intn(20)
			tir := 0.8 + rng.Float64()*1.5
			tu.Observe(b, tir)
		}
		p, h := tu.Params(), tu.Historical()
		return p.Eta <= h.Eta+1e-12 &&
			p.C <= math.Max(h.C, 1)+1e-12 &&
			p.Beta <= math.Ceil(h.Beta)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: counts always equal the number of accepted observations.
func TestQuickCountsConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tu := NewTuner(0.04, 0.07)
		accepted := 0
		for i := 0; i < 100; i++ {
			b := rng.Intn(24) - 2
			tir := rng.Float64()*2.4 - 0.2
			if b > 0 && tir > 0 {
				accepted++
			}
			tu.Observe(b, tir)
		}
		n1, n2 := tu.Counts()
		return n1+n2 == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUCB1TriesEveryArmFirst(t *testing.T) {
	u := NewUCB1(4)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		a := u.Select()
		if seen[a] {
			t.Fatalf("arm %d selected twice before all arms tried", a)
		}
		seen[a] = true
		u.Update(a, 0.5)
	}
}

func TestUCB1ConvergesToBestArm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	means := []float64{0.2, 0.5, 0.8}
	u := NewUCB1(len(means))
	for i := 0; i < 3000; i++ {
		a := u.Select()
		r := 0.0
		if rng.Float64() < means[a] {
			r = 1
		}
		u.Update(a, r)
	}
	best := 0
	for i := 1; i < u.Arms(); i++ {
		if u.Mean(i) > u.Mean(best) {
			best = i
		}
	}
	if best != 2 {
		t.Fatalf("best arm = %d, want 2 (means: %v %v %v)", best, u.Mean(0), u.Mean(1), u.Mean(2))
	}
	if u.counts[2] < 2000 {
		t.Fatalf("UCB1 should pull the best arm most: counts %v", u.counts)
	}
}

func TestUCB1MeanUnpulled(t *testing.T) {
	u := NewUCB1(2)
	if u.Mean(0) != 0 {
		t.Fatal("unpulled arm mean should be 0")
	}
}

// TestTunerTracksDriftingPlateau reproduces the paper's §4.2 motivation:
// "when the inference workload changes gradually" the MAB padding keeps the
// estimator exploring, so a plateau that drifts upward over time is followed
// via Eq. 15/16 surprises.
func TestTunerTracksDriftingPlateau(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tu := NewTuner(0.04, 0.07)
	trueC := 1.3
	for slot := 0; slot < 600; slot++ {
		tu.Tick()
		if slot%2 == 0 {
			trueC += 0.001 // slow upward drift to 1.6
		}
		noise := 1 + rng.NormFloat64()*0.02
		tu.Observe(16, trueC*noise)
	}
	got := tu.Historical().C
	if math.Abs(got-trueC) > 0.12 {
		t.Fatalf("C̄ = %v did not follow the drift to %v", got, trueC)
	}
	_, n2 := tu.Counts()
	if n2 < 10 {
		t.Fatalf("drift should keep producing surprises, n2 = %d", n2)
	}
}
