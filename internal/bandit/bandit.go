// Package bandit implements the online hyperparameter tuning of BIRP §4.2:
// per (edge, model) estimation of the three TIR-law hyperparameters
//
//	TIR(b) = b^η  for b ≤ β,   TIR(b) = C  for b > β        (paper Eq. 2)
//
// from realized TIR observations, using running-mean historical estimates
// (Eq. 16, 19) shaded by a lower-confidence-bound padding term (Eq. 17, 22)
// in the Multi-Armed Bandit style, so the scheduler keeps exploring larger
// batch sizes instead of locking onto early noisy estimates.
//
// A classic UCB1 arm selector is also provided; it backs the ablation bench
// that swaps BIRP's structured tuner for unstructured arm pulls.
package bandit

import (
	"fmt"
	"math"
)

// TIRParams bundles the TIR-law hyperparameters for one (edge, model) pair.
type TIRParams struct {
	Eta  float64 // power-law growth exponent η
	Beta float64 // knee: largest batch size still on the power segment
	C    float64 // plateau value beyond the knee
}

// TIR evaluates the piecewise TIR law (Eq. 2) at batch size b.
func (p TIRParams) TIR(b float64) float64 {
	if b <= 0 {
		return 0
	}
	if b <= p.Beta {
		return math.Pow(b, p.Eta)
	}
	return p.C
}

// BatchTime returns the batch completion time f(b) = b·γ / TIR(b) (Eq. 7)
// for single-request latency gamma.
func (p TIRParams) BatchTime(gamma float64, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return b * gamma / p.TIR(b)
}

// Defaults per Eq. 23: a conservative initialization observed to lower-bound
// real devices (η ≥ 0.1, β ≤ 16, C = 16^0.1 ≈ 1.31).
const (
	InitEta  = 0.1
	InitBeta = 16
)

// InitC is the Eq. 23 initial plateau, 16^0.1.
var InitC = math.Pow(16, 0.1)

// Tuner tracks the historical estimates and observation counts for one
// (edge, model) pair and produces LCB-shaded parameters for the optimizer.
type Tuner struct {
	// Eps1 is the plateau-tolerance ε1 of Eq. 15: observations exceeding
	// (1+ε1)·C̄ mean the knee estimate is stale and must be re-tuned.
	Eps1 float64
	// Eps2 scales the confidence-interval padding of Eq. 17/22.
	Eps2 float64
	// LiteralEq22 selects the denominators of the Eq. 17/22 padding terms.
	// The paper literally divides every padding by n₂+1 (the beyond-knee
	// "surprise" count). For models whose true plateau never exceeds the
	// (1+ε1) surprise gate, n₂ stays 0 forever, so the padding grows like
	// sqrt(ln t) without bound and the shaded η, β, C decay toward their
	// floors — the scheduler becomes *more* pessimistic with experience.
	// The default (false) therefore scales η's padding by n₁ (the count of
	// observations that update η̄) and β/C's padding by n₁+n₂ (every
	// observation that fails to surprise is evidence the plateau estimate is
	// not too low). Set true for the paper-literal rule; the abl-lcb bench
	// quantifies the difference.
	LiteralEq22 bool

	etaBar, betaBar, cBar float64 // historical estimates (η̄, β̄, C̄)
	n1, n2                int     // observation counts within / beyond the knee
	t                     int     // time-slot counter
}

// NewTuner returns a Tuner initialized per Eq. 23.
func NewTuner(eps1, eps2 float64) *Tuner {
	return &Tuner{
		Eps1:        eps1,
		Eps2:        eps2,
		LiteralEq22: false,
		etaBar:      InitEta,
		betaBar:     InitBeta,
		cBar:        InitC,
	}
}

// Tick advances the time-slot counter once per scheduling slot. The paper's
// padding shrinks with ln(t+1)/(n+1); t counts slots, not observations.
func (tu *Tuner) Tick() { tu.t++ }

// Observe feeds one realized TIR measurement at batch size b.
//
// It implements the §4.2 case split: when the observation exceeds the
// (1+ε1)-shaded plateau estimate (Eq. 15) the knee and plateau move toward
// the observation (Eq. 16) and n₂ advances (Eq. 18); otherwise the exponent
// estimate moves toward the implied η̂ = ln(TIR)/ln(b) (Eq. 19, 21) and n₁
// advances (Eq. 20). Observations at b ≤ 1 carry no exponent information and
// only count toward n₁.
func (tu *Tuner) Observe(b int, tir float64) {
	if b <= 0 || tir <= 0 || math.IsNaN(tir) || math.IsInf(tir, 0) {
		return
	}
	if tir >= (1+tu.Eps1)*tu.cBar {
		// Beyond the knee: the plateau was underestimated.
		tu.betaBar += (float64(b) - tu.betaBar) / float64(tu.n2+1)
		tu.cBar += (tir - tu.cBar) / float64(tu.n2+1)
		tu.n2++
		return
	}
	if b > 1 {
		etaHat := math.Log(tir) / math.Log(float64(b))
		tu.etaBar += (etaHat - tu.etaBar) / float64(tu.n1+1)
	}
	tu.n1++
}

// padding returns the Eq. 17 confidence-interval ratio
// sqrt(ε2·ln(t+1)/(n+1)), clamped to [0, 1) so shaded values stay positive.
func (tu *Tuner) padding(n int) float64 {
	p := math.Sqrt(tu.Eps2 * math.Log(float64(tu.t+1)) / float64(n+1))
	if p >= 1 {
		p = 1 - 1e-9
	}
	return p
}

// Params returns the LCB-shaded hyperparameters (Eq. 17, 22) for use when
// building the next slot's optimization problem.
func (tu *Tuner) Params() TIRParams {
	pad2 := tu.padding(tu.n2)
	padEta := pad2
	if !tu.LiteralEq22 {
		pad2 = tu.padding(tu.n1 + tu.n2)
		padEta = tu.padding(tu.n1)
	}
	beta := math.Ceil(tu.betaBar * (1 - pad2))
	if beta < 1 {
		beta = 1
	}
	c := tu.cBar * (1 - pad2)
	if c < 1 {
		c = 1
	}
	eta := tu.etaBar * (1 - padEta)
	if eta < 0 {
		eta = 0
	}
	return TIRParams{Eta: eta, Beta: beta, C: c}
}

// Historical returns the unshaded running-mean estimates (η̄, β̄, C̄); tests
// and the offline baseline read these directly.
func (tu *Tuner) Historical() TIRParams {
	return TIRParams{Eta: tu.etaBar, Beta: tu.betaBar, C: tu.cBar}
}

// Counts returns (n₁, n₂), the within-knee and beyond-knee observation tallies.
func (tu *Tuner) Counts() (n1, n2 int) { return tu.n1, tu.n2 }

// String summarizes the tuner state for logs.
func (tu *Tuner) String() string {
	return fmt.Sprintf("tuner{η̄=%.3f β̄=%.1f C̄=%.3f n1=%d n2=%d t=%d}",
		tu.etaBar, tu.betaBar, tu.cBar, tu.n1, tu.n2, tu.t)
}

// UCB1 is a standard upper-confidence-bound arm selector over a fixed arm
// set, used by the abl-lcb ablation in place of the structured Tuner.
type UCB1 struct {
	counts  []int
	rewards []float64
	total   int
	// Explore scales the confidence radius (√2 in the textbook rule).
	Explore float64
}

// NewUCB1 creates a selector with n arms.
func NewUCB1(n int) *UCB1 {
	return &UCB1{counts: make([]int, n), rewards: make([]float64, n), Explore: math.Sqrt2}
}

// Select returns the arm with the highest upper confidence bound; unpulled
// arms are tried first in index order.
func (u *UCB1) Select() int {
	for i, c := range u.counts {
		if c == 0 {
			return i
		}
	}
	best, bestVal := 0, math.Inf(-1)
	for i := range u.counts {
		mean := u.rewards[i] / float64(u.counts[i])
		bound := mean + u.Explore*math.Sqrt(math.Log(float64(u.total))/float64(u.counts[i]))
		if bound > bestVal {
			bestVal = bound
			best = i
		}
	}
	return best
}

// Update records reward r for arm i.
func (u *UCB1) Update(i int, r float64) {
	u.counts[i]++
	u.rewards[i] += r
	u.total++
}

// Arms returns the number of arms.
func (u *UCB1) Arms() int { return len(u.counts) }

// Mean returns the empirical mean reward of arm i (0 if never pulled).
func (u *UCB1) Mean(i int) float64 {
	if u.counts[i] == 0 {
		return 0
	}
	return u.rewards[i] / float64(u.counts[i])
}
