package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTable1Rows(t *testing.T) {
	var buf bytes.Buffer
	rows := Table1(&buf)
	if len(rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8 (4 models × 2 devices)", len(rows))
	}
	out := buf.String()
	for _, want := range []string{"Yolov4-t", "Yolov4-n", "ResNet-18", "BERT", "Jetson Nano", "Atlas 200DK"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
	for _, r := range rows {
		if r.CPUPct < 0 || r.CPUPct > 100 {
			t.Errorf("%s/%s: CPU %v out of range", r.Model, r.Device, r.CPUPct)
		}
		if r.FPS <= 0 {
			t.Errorf("%s/%s: FPS %v", r.Model, r.Device, r.FPS)
		}
		// Exactly one of the accelerator column families should be set.
		if (r.AccelPct > 0) == (r.NPUCorePct > 0) {
			t.Errorf("%s/%s: GPU and NPU columns both (un)set", r.Model, r.Device)
		}
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	rows := Table1(nil)
	get := func(model, device string) Table1Row {
		for _, r := range rows {
			if r.Model == model && r.Device == device {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", model, device)
		return Table1Row{}
	}
	// Paper's qualitative regimes on the Nano: Yolov4-t and ResNet-18
	// host-bound, Yolov4-n and BERT device-bound.
	for _, m := range []string{"Yolov4-t", "ResNet-18"} {
		r := get(m, "Jetson Nano")
		if r.CPUPct < 90 || r.AccelPct > 80 {
			t.Errorf("%s on Nano should be host-bound: cpu=%v gpu=%v", m, r.CPUPct, r.AccelPct)
		}
	}
	for _, m := range []string{"Yolov4-n", "BERT"} {
		r := get(m, "Jetson Nano")
		if r.AccelPct < 85 {
			t.Errorf("%s on Nano should be device-bound: gpu=%v", m, r.AccelPct)
		}
	}
	// Paper's quantitative anchors within 15%: ResNet-18 Nano FPS 32.2,
	// Atlas FPS 78.8; BERT Nano FPS 1.1.
	anchors := []struct {
		model, device string
		fps           float64
	}{
		{"ResNet-18", "Jetson Nano", 32.2},
		{"ResNet-18", "Atlas 200DK", 78.8},
		{"BERT", "Jetson Nano", 1.1},
		{"Yolov4-t", "Atlas 200DK", 64.6},
	}
	for _, a := range anchors {
		r := get(a.model, a.device)
		if math.Abs(r.FPS-a.fps)/a.fps > 0.15 {
			t.Errorf("%s/%s FPS %v, paper %v (>15%% off)", a.model, a.device, r.FPS, a.fps)
		}
	}
	// Atlas must outperform the Nano on every model.
	for _, m := range []string{"Yolov4-t", "Yolov4-n", "ResNet-18", "BERT"} {
		if get(m, "Atlas 200DK").FPS <= get(m, "Jetson Nano").FPS {
			t.Errorf("%s: Atlas should beat Nano", m)
		}
	}
}

func TestFig2PanelsMatchPaper(t *testing.T) {
	var buf bytes.Buffer
	panels, err := Fig2(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("Fig 2 has %d panels, want 3", len(panels))
	}
	want := []struct {
		model  string
		eta, c float64
	}{
		{"LeNet", 0.32, 1.68},
		{"GoogLeNet", 0.12, 1.30},
		{"ResNet-18", 0.12, 1.28},
	}
	for i, p := range panels {
		if p.Model != want[i].model {
			t.Fatalf("panel %d is %s, want %s", i, p.Model, want[i].model)
		}
		if len(p.Samples) != 16*5 {
			t.Fatalf("%s: %d samples, want 80 (5 per batch size)", p.Model, len(p.Samples))
		}
		if math.Abs(p.Fit.Eta-want[i].eta) > 0.12 {
			t.Errorf("%s: η %.3f vs paper %.2f", p.Model, p.Fit.Eta, want[i].eta)
		}
		if math.Abs(p.Fit.C-want[i].c) > 0.15 {
			t.Errorf("%s: C %.3f vs paper %.2f", p.Model, p.Fit.C, want[i].c)
		}
	}
	if !strings.Contains(buf.String(), "LeNet") {
		t.Error("Fig 2 output missing model names")
	}
	// LeNet's TIR gain must be the largest (the paper's panel ordering).
	if !(panels[0].Fit.C > panels[1].Fit.C && panels[0].Fit.C > panels[2].Fit.C) {
		t.Errorf("LeNet should have the largest plateau: %v %v %v",
			panels[0].Fit.C, panels[1].Fit.C, panels[2].Fit.C)
	}
}

func TestFig6QuickShape(t *testing.T) {
	var buf bytes.Buffer
	results, err := Fig6(&buf, Options{Quick: true, Slots: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("Fig 6 compares %d algorithms, want 4", len(results))
	}
	birp := Find(results, "BIRP")
	off := Find(results, "BIRP-OFF")
	oaei := Find(results, "OAEI")
	max := Find(results, "MAX")
	if birp == nil || off == nil || oaei == nil || max == nil {
		t.Fatal("missing algorithm result")
	}
	// Paper Fig. 6a: BIRP and BIRP-OFF have (much) lower failure rates than
	// OAEI.
	if birp.FailureRate >= oaei.FailureRate {
		t.Errorf("BIRP p%% %.4f should beat OAEI %.4f", birp.FailureRate, oaei.FailureRate)
	}
	if off.FailureRate >= oaei.FailureRate {
		t.Errorf("BIRP-OFF p%% %.4f should beat OAEI %.4f", off.FailureRate, oaei.FailureRate)
	}
	// Paper Fig. 6c: BIRP tracks BIRP-OFF within a modest factor.
	if birp.TotalLoss() > off.TotalLoss()*1.25 {
		t.Errorf("BIRP loss %.0f too far above BIRP-OFF %.0f", birp.TotalLoss(), off.TotalLoss())
	}
	// MAX's loss is the worst of the batch-aware family (Fig. 6b).
	if max.TotalLoss() < birp.TotalLoss() {
		t.Errorf("MAX loss %.0f should not beat BIRP %.0f", max.TotalLoss(), birp.TotalLoss())
	}
	if !strings.Contains(buf.String(), "CDF") {
		t.Error("missing CDF panel in output")
	}
}

func TestFig7QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale comparison")
	}
	results, err := Fig7(nil, Options{Quick: true, Slots: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("Fig 7 compares %d algorithms, want 3 (no BIRP-OFF at scale)", len(results))
	}
	birp := Find(results, "BIRP")
	oaei := Find(results, "OAEI")
	if birp.FailureRate >= oaei.FailureRate {
		t.Errorf("BIRP p%% %.4f should beat OAEI %.4f", birp.FailureRate, oaei.FailureRate)
	}
	// Series lengths must match the horizon.
	if len(birp.PerSlot) != 60 || len(birp.Cumulative) != 60 {
		t.Fatalf("series lengths %d/%d, want 60", len(birp.PerSlot), len(birp.Cumulative))
	}
	// Cumulative must be nondecreasing.
	for i := 1; i < len(birp.Cumulative); i++ {
		if birp.Cumulative[i] < birp.Cumulative[i-1] {
			t.Fatal("cumulative loss decreased")
		}
	}
}

func TestPresetSweepQuick(t *testing.T) {
	var buf bytes.Buffer
	pts, err := PresetSweep(&buf, Options{Quick: true, Slots: 30}, []int{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*2 {
		t.Fatalf("quick sweep has %d points, want 6", len(pts))
	}
	for _, p := range pts {
		for _, tt := range []int{10, 30} {
			if _, ok := p.DeltaLoss[tt]; !ok {
				t.Fatalf("missing ΔLoss snapshot t=%d", tt)
			}
			if fp, ok := p.FailPct[tt]; !ok || fp < 0 || fp > 100 {
				t.Fatalf("bad p%% snapshot at t=%d: %v", tt, fp)
			}
		}
		// ΔLoss magnitude sanity: the tuner can't be catastrophically worse
		// than offline profiling.
		if math.Abs(p.DeltaLoss[30]) > 0.5*1e4 {
			t.Fatalf("ΔLoss %v implausibly large", p.DeltaLoss[30])
		}
	}
	if !strings.Contains(buf.String(), "Fig. 4") || !strings.Contains(buf.String(), "Fig. 5") {
		t.Error("sweep output missing figure headers")
	}
}

func TestFindMissing(t *testing.T) {
	if Find(nil, "x") != nil {
		t.Fatal("Find on empty should be nil")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Slots != 300 || o.Eps1 != 0.04 || o.Eps2 != 0.07 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Slots != 40 {
		t.Fatalf("quick slots = %d", q.Slots)
	}
}
