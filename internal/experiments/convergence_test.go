package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestConvergenceShapes(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Convergence(&buf, Options{Quick: true, Slots: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 { // snapshots every 5 slots in quick mode
		t.Fatalf("points = %d, want 6", len(pts))
	}
	for _, p := range pts {
		if p.Keys != 9 { // 3 edges × 1 app × 3 versions
			t.Fatalf("keys = %d, want 9", p.Keys)
		}
		if p.MeanAbsEtaErr < 0 || p.MeanAbsEtaErr > 1 {
			t.Fatalf("eta error %v implausible", p.MeanAbsEtaErr)
		}
		if p.MeanShading < 0 || p.MeanShading > 1 {
			t.Fatalf("shading %v out of range", p.MeanShading)
		}
	}
	// The LCB shading must shrink as observations accumulate.
	if !(pts[len(pts)-1].MeanShading < pts[0].MeanShading) {
		t.Fatalf("shading did not shrink: %v → %v",
			pts[0].MeanShading, pts[len(pts)-1].MeanShading)
	}
	if !strings.Contains(buf.String(), "Convergence") {
		t.Fatal("missing output header")
	}
}
