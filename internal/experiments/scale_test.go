package experiments

import "testing"

// TestScaleHierarchicalFeasibleAndComparable runs the fleet-scaling
// experiment both ways at a small K and checks the hierarchical arm stays
// executor-feasible (no conservation/memory/bandwidth findings) and lands in
// the same quality regime as the monolithic solver.
func TestScaleHierarchicalFeasibleAndComparable(t *testing.T) {
	base := Options{Seed: 1, Slots: 6, K: 12, Workers: 2}
	mono, err := Scale(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	hopt := base
	hopt.Hierarchical = true
	hopt.DomainSize = 6
	hier, err := Scale(nil, hopt)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Violations != 0 || hier.Violations != 0 {
		t.Fatalf("executor violations: mono %d, hier %d", mono.Violations, hier.Violations)
	}
	if !hier.Hierarchical || hier.Domains != 2 {
		t.Fatalf("hierarchical run reported %+v", hier)
	}
	if mono.Hierarchical || mono.Domains != 1 {
		t.Fatalf("monolithic run reported %+v", mono)
	}
	if hier.Served == 0 || mono.Served == 0 {
		t.Fatal("nothing served")
	}
	if mono.TotalLoss > 0 && hier.TotalLoss > 2*mono.TotalLoss {
		t.Fatalf("hierarchical loss %.0f far above monolithic %.0f", hier.TotalLoss, mono.TotalLoss)
	}
}

// TestScaleRepeatable: the scale experiment is a pure function of its options.
func TestScaleRepeatable(t *testing.T) {
	opt := Options{Seed: 3, Slots: 4, K: 10, Hierarchical: true, DomainSize: 4}
	a, err := Scale(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scale(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Solver != *b.Solver || a.TotalLoss != b.TotalLoss || a.Served != b.Served {
		t.Fatalf("scale runs diverged: %+v vs %+v", a, b)
	}
}
