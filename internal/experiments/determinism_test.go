package experiments

import (
	"reflect"
	"testing"
)

// TestAblationsWorkerCountInvariant checks the sweep-runner half of the
// determinism contract: a fanned-out experiment must produce results
// identical to the serial run — same values, same order — because each grid
// cell is written into its own pre-indexed slot.
func TestAblationsWorkerCountInvariant(t *testing.T) {
	serial, err := Ablations(nil, Options{Quick: true, Slots: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Ablations(nil, Options{Quick: true, Slots: 20, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("ablation results diverged across worker counts:\nserial: %+v\npar:    %+v", serial, par)
	}
}

// TestFig6WorkerCountInvariantWithAndWithoutReuse pins the determinism
// contract at the experiment level in both reuse settings: the comparison's
// full result set must be identical across worker counts whether the
// cross-slot reuse layer is on (the default) or disabled.
func TestFig6WorkerCountInvariantWithAndWithoutReuse(t *testing.T) {
	for _, disable := range []bool{false, true} {
		run := func(workers int) []EvalResult {
			res, err := Fig6(nil, Options{
				Quick: true, Slots: 10, Workers: workers, DisableSlotReuse: disable,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		if serial, par := run(1), run(4); !reflect.DeepEqual(serial, par) {
			t.Fatalf("DisableSlotReuse=%v: fig6 results diverged across worker counts:\nserial: %+v\npar:    %+v",
				disable, serial, par)
		}
	}
}

// TestPresetSweepWorkerCountInvariant repeats the check on the Fig. 4/5 grid
// sweep, whose cells share a trace and a BIRP-OFF reference run.
func TestPresetSweepWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opt := Options{Quick: true, Slots: 15}
	snaps := []int{15}
	opt.Workers = 1
	serial, err := PresetSweep(nil, opt, snaps)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	par, err := PresetSweep(nil, opt, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("sweep points diverged across worker counts:\nserial: %+v\npar:    %+v", serial, par)
	}
}
