package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestScorecardAllChecksPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full scorecard run")
	}
	var buf bytes.Buffer
	checks, err := Scorecard(&buf, Options{Quick: true, Slots: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 14 {
		t.Fatalf("scorecard has %d checks, want 14", len(checks))
	}
	for _, c := range checks {
		if !c.Passed {
			t.Errorf("%s FAILED: %s (measured: %s)", c.ID, c.Claim, c.Got)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "checks passed") {
		t.Fatal("missing summary line")
	}
}
