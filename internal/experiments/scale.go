package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/miqp"
	"repro/internal/models"
	"repro/internal/trace"
)

// ScaleResult is one fleet-scaling measurement: a BIRP run (monolithic or
// hierarchical) over a seeded K-edge fleet.
type ScaleResult struct {
	K            int
	Hierarchical bool
	// Domains is the realized collaboration-domain count (1 for monolithic).
	Domains     int
	Slots       int
	TotalLoss   float64
	FailureRate float64
	Served      int
	Dropped     int
	// Violations counts executor constraint findings (conservation, memory,
	// bandwidth); always 0 for a correct scheduler.
	Violations int
	Solver     *miqp.Stats
}

// Scale runs the fleet-scaling experiment (fig7-style workload on a seeded
// Scaled(K) fleet): one BIRP arm, monolithic or hierarchical per
// opt.Hierarchical/Domains/DomainSize. It reports quality (total loss, p%,
// drops) and executor-verified feasibility; wall-clock timing belongs to the
// caller (birpbench), which brackets this call.
func Scale(w io.Writer, opt Options) (*ScaleResult, error) {
	opt = opt.withDefaults()
	k := opt.K
	if k == 0 {
		k = 50
	}
	c, err := cluster.Scaled(k, cluster.WithSeed(opt.Seed))
	if err != nil {
		return nil, err
	}
	apps := models.Catalogue(largeScaleApps, largeScaleVersions)
	tr, err := trace.Generate(trace.Config{
		Apps: len(apps), Edges: c.N(), Slots: opt.Slots, Seed: opt.Seed,
		MeanPerSlot: largeScaleMean, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Cluster: c, Apps: apps,
		Provider: core.NewOnlineTuner(opt.Eps1, opt.Eps2),
	}
	coreMod(opt)(&cfg)
	sched, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	sim, err := edgesim.New(edgesim.Config{
		Cluster: c, Apps: apps,
		NoiseSigma: 0.02, SlotNoiseSigma: 0.05, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sched, tr.R)
	if err != nil {
		return nil, err
	}
	out := &ScaleResult{
		K:            k,
		Hierarchical: cfg.Domains > 0 || cfg.DomainSize > 0,
		Domains:      1,
		Slots:        opt.Slots,
		FailureRate:  res.FailureRate(),
		Served:       res.Served,
		Dropped:      res.Dropped,
		Violations:   len(res.Violations),
	}
	if cum := res.Loss.Cumulative(); len(cum) > 0 {
		out.TotalLoss = cum[len(cum)-1]
	}
	if out.Hierarchical {
		out.Domains = len(cluster.Partition(c, cfg.Domains, cfg.DomainSize))
	}
	st := sched.SolverStats()
	out.Solver = &st
	if w != nil {
		mode := "monolithic"
		if out.Hierarchical {
			mode = fmt.Sprintf("hierarchical (%d domains)", out.Domains)
		}
		tab := metrics.NewTable("K", "mode", "slots", "total loss", "p%", "served", "dropped", "violations")
		tab.AddRow(fmt.Sprintf("%d", out.K), mode, fmt.Sprintf("%d", out.Slots),
			fmt.Sprintf("%.0f", out.TotalLoss), fmt.Sprintf("%.2f%%", 100*out.FailureRate),
			fmt.Sprintf("%d", out.Served), fmt.Sprintf("%d", out.Dropped),
			fmt.Sprintf("%d", out.Violations))
		fmt.Fprintf(w, "== Fleet scaling — BIRP at K=%d ==\n\n%s\n", out.K, tab)
	}
	return out, nil
}
