package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationsQuick(t *testing.T) {
	var buf bytes.Buffer
	results, err := Ablations(&buf, Options{Quick: true, Slots: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d ablation rows, want 5", len(results))
	}
	def := results[0]
	if !strings.HasPrefix(def.Name, "default") {
		t.Fatalf("first row should be the default, got %q", def.Name)
	}
	for _, r := range results {
		if r.Loss <= 0 {
			t.Fatalf("%s: loss %v", r.Name, r.Loss)
		}
		if r.FailureRate < 0 || r.FailureRate > 1 {
			t.Fatalf("%s: p%% %v", r.Name, r.FailureRate)
		}
	}
	// The literal knee cap must be the clearly-worst configuration under a
	// workload beyond its Σβ̂ capacity.
	var knee *AblationResult
	for i := range results {
		if strings.Contains(results[i].Name, "batchcap") {
			knee = &results[i]
		}
	}
	if knee == nil {
		t.Fatal("missing knee-cap ablation")
	}
	if knee.Dropped == 0 {
		t.Fatal("knee-capped variant should drop under this load")
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Fatal("missing table header")
	}
}
