package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteComparisonCSV(t *testing.T) {
	dir := t.TempDir()
	results, err := Fig6(nil, Options{Quick: true, Slots: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteComparisonCSV(dir, "fig6", results); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig6_cdf.csv", "fig6_loss.csv", "fig6_cumloss.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) < 3 {
			t.Fatalf("%s too short: %d lines", name, len(lines))
		}
		if !strings.HasPrefix(lines[0], "x,BIRP-OFF,BIRP,OAEI,MAX") {
			t.Fatalf("%s header: %q", name, lines[0])
		}
	}
}

func TestWriteSweepCSV(t *testing.T) {
	dir := t.TempDir()
	pts, err := PresetSweep(nil, Options{Quick: true, Slots: 10}, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepCSV(dir, pts, []int{10}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig45_sweep.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "eps1,eps2,dloss_t10,pfail_t10") {
		t.Fatalf("header: %q", strings.Split(string(b), "\n")[0])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	if err := WriteComparisonCSV(t.TempDir(), "x", nil); err == nil {
		t.Fatal("empty results must error")
	}
	if err := WriteSweepCSV(t.TempDir(), nil, nil); err == nil {
		t.Fatal("empty sweep must error")
	}
}
