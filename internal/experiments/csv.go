package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
)

// WriteComparisonCSV exports a comparison experiment's three panels as CSV
// files under dir: <prefix>_cdf.csv (τ grid × algorithm), <prefix>_loss.csv
// (per-slot), and <prefix>_cumloss.csv (cumulative) — ready for any plotting
// tool.
func WriteComparisonCSV(dir, prefix string, results []EvalResult) error {
	if len(results) == 0 {
		return fmt.Errorf("experiments: nothing to export")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	header := append([]string{"x"}, names(results)...)

	cdfRows := [][]string{header}
	cdfs := make([]*metrics.CDF, len(results))
	for i := range results {
		cdfs[i] = results[i].CDF()
	}
	for i := 0; i <= 150; i++ {
		x := float64(i) / 100 // τ ∈ [0, 1.5]
		row := []string{fmt.Sprintf("%.2f", x)}
		for _, c := range cdfs {
			row = append(row, fmt.Sprintf("%.5f", c.At(x)))
		}
		cdfRows = append(cdfRows, row)
	}
	if err := writeCSV(filepath.Join(dir, prefix+"_cdf.csv"), cdfRows); err != nil {
		return err
	}

	series := func(pick func(*EvalResult) []float64) [][]string {
		rows := [][]string{header}
		n := len(pick(&results[0]))
		for t := 0; t < n; t++ {
			row := []string{fmt.Sprintf("%d", t)}
			for i := range results {
				row = append(row, fmt.Sprintf("%.4f", pick(&results[i])[t]))
			}
			rows = append(rows, row)
		}
		return rows
	}
	if err := writeCSV(filepath.Join(dir, prefix+"_loss.csv"),
		series(func(r *EvalResult) []float64 { return r.PerSlot })); err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, prefix+"_cumloss.csv"),
		series(func(r *EvalResult) []float64 { return r.Cumulative }))
}

// WriteSweepCSV exports the Fig. 4/5 preset surfaces: one row per (ε1, ε2)
// cell with a ΔLoss and p% column per snapshot.
func WriteSweepCSV(dir string, points []SweepPoint, snapshots []int) error {
	if len(points) == 0 {
		return fmt.Errorf("experiments: empty sweep")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	header := []string{"eps1", "eps2"}
	for _, t := range snapshots {
		header = append(header, fmt.Sprintf("dloss_t%d", t), fmt.Sprintf("pfail_t%d", t))
	}
	rows := [][]string{header}
	for _, p := range points {
		row := []string{fmt.Sprintf("%.2f", p.Eps1), fmt.Sprintf("%.2f", p.Eps2)}
		for _, t := range snapshots {
			row = append(row, fmt.Sprintf("%.3f", p.DeltaLoss[t]), fmt.Sprintf("%.4f", p.FailPct[t]))
		}
		rows = append(rows, row)
	}
	return writeCSV(filepath.Join(dir, "fig45_sweep.csv"), rows)
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
