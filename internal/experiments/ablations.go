package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/trace"
)

// AblationResult is one configuration's outcome in the ablation study.
type AblationResult struct {
	Name        string
	Loss        float64
	FailureRate float64
	Dropped     int
}

// Ablations runs the four design-choice ablations DESIGN.md documents on a
// shared small-scale workload: the corrected vs literal LCB padding, the
// multi-batch generalization vs the literal knee cap, the time-sliced vs
// summed Eq. 6 memory model, and the decomposed vs joint solver.
func Ablations(w io.Writer, opt Options) ([]AblationResult, error) {
	opt = opt.withDefaults()
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	slots := opt.Slots
	if slots > 120 && opt.Quick {
		slots = 40
	}
	tr, err := trace.Generate(trace.Config{
		Apps: 2, Edges: c.N(), Slots: slots, Seed: opt.Seed,
		MeanPerSlot: 45, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"default (all corrections)", nil},
		{"abl-lcb: literal Eq.17/22 padding", func(cfg *core.Config) {
			tuner := core.NewOnlineTuner(opt.Eps1, opt.Eps2)
			tuner.LiteralEq22 = true
			cfg.Provider = tuner
		}},
		{"abl-batchcap: literal single batch (Eq.11/12)", func(cfg *core.Config) { cfg.KneeCap = true }},
		{"abl-memmodel: literal Eq.6 summed activations", func(cfg *core.Config) { cfg.Mem = core.MemSum }},
		{"abl-solver: joint exact program", func(cfg *core.Config) { cfg.SolveMode = core.SolveModeJoint }},
	}

	// Variants share nothing but the (read-only) trace: run them concurrently
	// and gather into the variant order.
	out := make([]AblationResult, len(variants))
	if err := par.ForEach(par.CapWorkers(opt.Workers), len(variants), func(_, idx int) error {
		v := variants[idx]
		cfg := core.Config{
			Cluster: c, Apps: apps,
			Provider: core.NewOnlineTuner(opt.Eps1, opt.Eps2),
			Workers:  opt.Workers,
		}
		if v.mod != nil {
			v.mod(&cfg)
		}
		s, err := core.New(cfg)
		if err != nil {
			return fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		sim, err := edgesim.New(edgesim.Config{
			Cluster: c, Apps: apps,
			NoiseSigma: 0.02, SlotNoiseSigma: 0.05, Seed: opt.Seed,
		})
		if err != nil {
			return err
		}
		res, err := sim.Run(s, tr.R)
		if err != nil {
			return fmt.Errorf("experiments: ablation %q run: %w", v.name, err)
		}
		out[idx] = AblationResult{
			Name: v.name, Loss: res.Loss.Total(),
			FailureRate: res.FailureRate(), Dropped: res.Dropped,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "== Ablations — design choices vs the paper-literal formulation ==\n\n")
		tab := metrics.NewTable("configuration", "total loss", "p%", "dropped")
		for _, r := range out {
			tab.AddRow(r.Name, fmt.Sprintf("%.1f", r.Loss),
				fmt.Sprintf("%.2f%%", 100*r.FailureRate), fmt.Sprintf("%d", r.Dropped))
		}
		fmt.Fprintf(w, "%s\n", tab)
	}
	return out, nil
}
