package experiments

import (
	"fmt"
	"io"

	"repro/internal/accel"
	"repro/internal/metrics"
	"repro/internal/models"
)

// Table1Row is one measurement row of the paper's Table 1.
type Table1Row struct {
	Model  string
	Device string
	// CPUPct is host utilization; for GPU devices AccelPct is "GPU usage";
	// for NPU devices NPUPct is "NPU usage" (occupancy-weighted) and
	// NPUCorePct is "NPU core usage" (busy fraction).
	CPUPct     float64
	AccelPct   float64
	NPUPct     float64
	NPUCorePct float64
	FPS        float64
}

// Table1 reproduces the paper's Table 1: serial (batch-1) inference resource
// usage and FPS for Yolov4-t/Yolov4-n/ResNet-18/BERT on the Jetson Nano and
// Atlas 200DK.
func Table1(w io.Writer) []Table1Row {
	devices := []*accel.Device{&accel.JetsonNano, &accel.Atlas200DK}
	var rows []Table1Row
	for _, m := range models.Table1Models() {
		for _, d := range devices {
			cpu, busy, occ := d.Utilization(m.Profile, 1)
			row := Table1Row{
				Model:  m.Name,
				Device: d.Name,
				CPUPct: cpu,
				FPS:    d.Throughput(m.Profile, 1),
			}
			if d.Type == accel.GPU {
				row.AccelPct = busy
			} else {
				row.NPUPct = occ
				row.NPUCorePct = busy
			}
			rows = append(rows, row)
		}
	}
	if w != nil {
		tab := metrics.NewTable("Inference", "Edge Type", "CPU %", "GPU %", "NPU %", "NPU Core %", "Avg FPS")
		for _, r := range rows {
			gpu, npu, npuCore := "/", "/", "/"
			if r.AccelPct > 0 {
				gpu = fmt.Sprintf("%.1f", r.AccelPct)
			} else {
				npu = fmt.Sprintf("%.1f", r.NPUPct)
				npuCore = fmt.Sprintf("%.1f", r.NPUCorePct)
			}
			tab.AddRow(r.Model, r.Device, fmt.Sprintf("%.1f", r.CPUPct), gpu, npu, npuCore,
				fmt.Sprintf("%.1f", r.FPS))
		}
		fmt.Fprintf(w, "== Table 1 — serial inference resource usage and performance ==\n\n%s\n", tab)
	}
	return rows
}
