package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/bandit"
	"repro/internal/fit"
	"repro/internal/metrics"
	"repro/internal/models"
)

// Fig2Panel is one panel of Fig. 2: raw (batch, TIR) measurements on the
// Jetson Nano plus the fitted piecewise law.
type Fig2Panel struct {
	Model   string
	Samples []fit.Sample
	Fit     bandit.TIRParams
}

// Fig2 reproduces the paper's Fig. 2: five TIR measurements per batch size
// 1..16 for LeNet, GoogLeNet, and ResNet-18 on the Jetson Nano, with the
// piecewise power/constant fit of Eq. 2.
func Fig2(w io.Writer, seed int64) ([]Fig2Panel, error) {
	rng := rand.New(rand.NewSource(seed))
	var panels []Fig2Panel
	for _, m := range models.Fig2Models() {
		var samples []fit.Sample
		for b := 1; b <= 16; b++ {
			for rep := 0; rep < 5; rep++ {
				samples = append(samples, fit.Sample{
					B:   b,
					TIR: accel.JetsonNano.TIRNoisy(m.Profile, b, 0.02, rng),
				})
			}
		}
		p, err := fit.Piecewise(samples)
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting %s: %w", m.Name, err)
		}
		panels = append(panels, Fig2Panel{Model: m.Name, Samples: samples, Fit: p})
	}
	if w != nil {
		fmt.Fprintf(w, "== Fig. 2 — TIR fitting on the Jetson Nano ==\n\n")
		for _, p := range panels {
			fmt.Fprintf(w, "%s: TIR = b^%.2f for b ≤ %.0f, %.2f beyond (RMSE %.3f)\n",
				p.Model, p.Fit.Eta, p.Fit.Beta, p.Fit.C, fit.RMSE(p.Fit, p.Samples))
			tab := metrics.NewTable("b", "mean TIR", "fit")
			for b := 1; b <= 16; b++ {
				var sum float64
				n := 0
				for _, s := range p.Samples {
					if s.B == b {
						sum += s.TIR
						n++
					}
				}
				tab.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%.3f", sum/float64(n)),
					fmt.Sprintf("%.3f", p.Fit.TIR(float64(b))))
			}
			fmt.Fprintf(w, "%s\n", tab)
		}
	}
	return panels, nil
}
