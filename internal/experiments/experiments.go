// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: Table 1 (utilization/FPS),
// Fig. 2 (TIR laws), Fig. 4/5 (ε1/ε2 preset sweeps), and Fig. 6/7
// (small/large-scale comparisons of BIRP, BIRP-OFF, OAEI, MAX).
//
// Each experiment takes an Options value and writes the same rows/series the
// paper reports to an io.Writer; the structured results are also returned so
// tests and benches can assert on shapes (who wins, by what factor).
package experiments

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/miqp"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/trace"
)

// Options parameterizes an experiment run.
type Options struct {
	// Seed drives trace generation and execution noise.
	Seed int64
	// Slots is the evaluation horizon (0 = 300, the paper's three days of
	// 15-minute slots truncated to its plotted range).
	Slots int
	// Quick shrinks the run for benchmarks (fewer slots, coarser sweeps).
	Quick bool
	// Eps1/Eps2 are BIRP's presets; zero means the paper's §5.3 choice
	// (0.04, 0.07).
	Eps1, Eps2 float64
	// Workers bounds experiment parallelism: independent runs (comparison
	// arms, sweep grid cells, ablation variants) execute concurrently, and
	// the value is forwarded to core.Config.Workers for the solve engine.
	// Every run keeps its own seeded RNGs and results are gathered in a fixed
	// order, so output is identical for every worker count. ≤ 0 means one
	// worker per CPU.
	Workers int
	// DisableSlotReuse forwards core.Config.DisableSlotReuse to every
	// core-family arm (BIRP, BIRP-OFF, OAEI, MAX): cross-slot incumbent
	// seeding and plan memoization are switched off and each slot solves
	// cold. For A/B measurement; reuse-on and reuse-off runs agree within the
	// solver's certified gap tolerance.
	DisableSlotReuse bool
	// DenseEngine forwards core.Config.DenseEngine to every core-family arm:
	// all LP relaxations run on the legacy dense tableau engine instead of
	// the sparse revised simplex. A/B oracle switch — both engines certify
	// the same optima, so runs agree within the solver's gap tolerance.
	DenseEngine bool
	// NoFactorReuse forwards core.Config.NoFactorReuse to every core-family
	// arm: warm re-entries refactorize instead of reusing the parent's LU
	// snapshot. Byte-identical decisions either way (the A/B the equivalence
	// tests pin); only factorization counters change.
	NoFactorReuse bool
	// Hierarchical enables domain-decomposed scheduling for every core-family
	// arm: the fleet partitions into bounded-size collaboration domains
	// (DomainSize, default cluster.DefaultDomainSize) solved concurrently
	// behind a deterministic cross-domain coordinator. Domains > 0 fixes the
	// domain count instead; either field alone also enables the mode.
	Hierarchical bool
	// Domains fixes the number of collaboration domains (hierarchical mode).
	Domains int
	// DomainSize bounds domain sizes (hierarchical mode; 0 with Hierarchical
	// set means cluster.DefaultDomainSize).
	DomainSize int
	// K is the fleet size for the Scale experiment (0 = 50).
	K int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Slots == 0 {
		o.Slots = 300
		if o.Quick {
			o.Slots = 40
		}
	}
	if mat.Zero(o.Eps1) {
		o.Eps1 = 0.04
	}
	if mat.Zero(o.Eps2) {
		o.Eps2 = 0.07
	}
	return o
}

// Paper-calibrated operating points (see DESIGN.md §4 and the load scans in
// internal/baseline): means chosen so hot edges cross into the
// compute-bound band where serial execution violates the slot but batching
// fits — the regime the paper evaluates.
const (
	smallScaleApps     = 1
	smallScaleVersions = 3
	smallScaleMean     = 95
	largeScaleApps     = 5
	largeScaleVersions = 5
	largeScaleMean     = 31
)

// EvalResult is one algorithm's outcome in a comparison experiment.
type EvalResult struct {
	Name string
	// Completion is the per-request normalized completion time sample.
	Completion []float64
	// PerSlot and Cumulative are the Fig. 6b/c loss series.
	PerSlot    []float64
	Cumulative []float64
	// FailureRate is the paper's p% (fraction with τ > 1).
	FailureRate float64
	// Dropped counts shed requests.
	Dropped int
	// EnergyJ is total cluster energy over the run (extension metric).
	EnergyJ float64
	// Solver holds the cumulative MIQP solver counters for schedulers that
	// expose them (the core BIRP family); nil for the baselines.
	Solver *miqp.Stats
}

// CDF returns the completion-time CDF.
func (r *EvalResult) CDF() *metrics.CDF { return metrics.NewCDF(r.Completion) }

// TotalLoss returns the final cumulative loss.
func (r *EvalResult) TotalLoss() float64 {
	if len(r.Cumulative) == 0 {
		return 0
	}
	return r.Cumulative[len(r.Cumulative)-1]
}

// schedulerSpec names a comparison algorithm and its constructor.
type schedulerSpec struct {
	name string
	make func() (edgesim.Scheduler, error)
}

// coreMod forwards the option fields every core-family arm shares (solver
// parallelism, slot-reuse switch) into a core.Config.
func coreMod(opt Options) func(*core.Config) {
	return func(cfg *core.Config) {
		cfg.Workers = opt.Workers
		cfg.DisableSlotReuse = opt.DisableSlotReuse
		cfg.DenseEngine = opt.DenseEngine
		cfg.NoFactorReuse = opt.NoFactorReuse
		if opt.Hierarchical || opt.Domains > 0 || opt.DomainSize > 0 {
			cfg.Domains = opt.Domains
			cfg.DomainSize = opt.DomainSize
			if cfg.Domains == 0 && cfg.DomainSize == 0 {
				cfg.DomainSize = cluster.DefaultDomainSize
			}
		}
	}
}

func birpSpec(c *cluster.Cluster, apps []*models.Application, opt Options) schedulerSpec {
	return schedulerSpec{"BIRP", func() (edgesim.Scheduler, error) {
		cfg := core.Config{
			Cluster: c, Apps: apps,
			Provider: core.NewOnlineTuner(opt.Eps1, opt.Eps2),
		}
		coreMod(opt)(&cfg)
		return core.New(cfg)
	}}
}

func birpOffSpec(c *cluster.Cluster, apps []*models.Application, opt Options) schedulerSpec {
	return schedulerSpec{"BIRP-OFF", func() (edgesim.Scheduler, error) {
		return baseline.NewBIRPOffConfig(c, apps, 16, coreMod(opt))
	}}
}

func oaeiSpec(c *cluster.Cluster, apps []*models.Application, opt Options) schedulerSpec {
	return schedulerSpec{"OAEI", func() (edgesim.Scheduler, error) {
		return baseline.NewOAEIConfig(c, apps, opt.Seed, coreMod(opt))
	}}
}

func maxSpec(c *cluster.Cluster, apps []*models.Application, opt Options) schedulerSpec {
	return schedulerSpec{"MAX", func() (edgesim.Scheduler, error) {
		return baseline.NewMAXConfig(c, apps, 16, coreMod(opt))
	}}
}

// runComparison executes each scheduler against the same trace and noise.
func runComparison(c *cluster.Cluster, apps []*models.Application, specs []schedulerSpec, opt Options) ([]EvalResult, error) {
	mean := float64(smallScaleMean)
	if len(apps) > 1 {
		mean = largeScaleMean
	}
	tr, err := trace.Generate(trace.Config{
		Apps: len(apps), Edges: c.N(), Slots: opt.Slots, Seed: opt.Seed,
		MeanPerSlot: mean, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		return nil, err
	}
	// Each arm owns its scheduler, simulator, and seeded RNGs, so the arms
	// run concurrently; results land in per-arm slots so the output order is
	// the spec order regardless of completion order. The fan-out is capped at
	// the schedulable CPUs (CapWorkers) like the in-solver pools: arms are
	// CPU-bound, so a wider pool only interleaves them and pays switch and
	// cache-pressure overhead without finishing any sooner.
	out := make([]EvalResult, len(specs))
	if err := par.ForEach(par.CapWorkers(opt.Workers), len(specs), func(_, idx int) error {
		spec := specs[idx]
		sched, err := spec.make()
		if err != nil {
			return fmt.Errorf("experiments: building %s: %w", spec.name, err)
		}
		sim, err := edgesim.New(edgesim.Config{
			Cluster: c, Apps: apps,
			NoiseSigma: 0.02, SlotNoiseSigma: 0.05, Seed: opt.Seed,
		})
		if err != nil {
			return err
		}
		res, err := sim.Run(sched, tr.R)
		if err != nil {
			return fmt.Errorf("experiments: running %s: %w", spec.name, err)
		}
		out[idx] = EvalResult{
			Name:        spec.name,
			Completion:  res.Completion,
			PerSlot:     append([]float64(nil), res.Loss.PerSlot()...),
			Cumulative:  append([]float64(nil), res.Loss.Cumulative()...),
			FailureRate: res.FailureRate(),
			Dropped:     res.Dropped,
			EnergyJ:     res.EnergyJ,
		}
		if sp, ok := sched.(interface{ SolverStats() miqp.Stats }); ok {
			st := sp.SolverStats()
			out[idx].Solver = &st
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// writeComparison prints the three panels (CDF, per-slot loss, cumulative
// loss) the way the paper's figures report them.
func writeComparison(w io.Writer, title string, results []EvalResult) {
	fmt.Fprintf(w, "== %s ==\n\n", title)

	cdfTab := metrics.NewTable(append([]string{"tau"}, names(results)...)...)
	cdfs := make([]*metrics.CDF, len(results))
	for i := range results {
		cdfs[i] = results[i].CDF()
	}
	for _, x := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2, 1.5} {
		row := []string{fmt.Sprintf("%.1f", x)}
		for _, c := range cdfs {
			row = append(row, fmt.Sprintf("%.3f", c.At(x)))
		}
		cdfTab.AddRow(row...)
	}
	fmt.Fprintf(w, "(a) CDF of inference completion time\n%s\n", cdfTab)

	fail := metrics.NewTable("algorithm", "p% (SLO failures)", "dropped", "energy (kJ)", "completion percentiles (τ)")
	for _, r := range results {
		fail.AddRow(r.Name, fmt.Sprintf("%.2f%%", 100*r.FailureRate), fmt.Sprintf("%d", r.Dropped),
			fmt.Sprintf("%.1f", r.EnergyJ/1000),
			metrics.SummarizePercentiles(r.Completion).String())
	}
	fmt.Fprintf(w, "%s\n", fail)

	lossTab := metrics.NewTable(append([]string{"t"}, names(results)...)...)
	step := len(results[0].PerSlot) / 10
	if step == 0 {
		step = 1
	}
	for t := 0; t < len(results[0].PerSlot); t += step {
		row := []string{fmt.Sprintf("%d", t)}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.1f", r.PerSlot[t]))
		}
		lossTab.AddRow(row...)
	}
	fmt.Fprintf(w, "(b) per-slot inference loss\n%s\n", lossTab)
	spark := map[string][]float64{}
	for _, r := range results {
		spark[r.Name] = r.PerSlot
	}
	fmt.Fprintf(w, "per-slot loss over time:\n%s\n", metrics.SeriesChart(64, spark, names(results)))

	cumTab := metrics.NewTable(append([]string{"t"}, names(results)...)...)
	for t := 0; t < len(results[0].Cumulative); t += step {
		row := []string{fmt.Sprintf("%d", t)}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.0f", r.Cumulative[t]))
		}
		cumTab.AddRow(row...)
	}
	last := len(results[0].Cumulative) - 1
	row := []string{fmt.Sprintf("%d", last)}
	for _, r := range results {
		row = append(row, fmt.Sprintf("%.0f", r.Cumulative[last]))
	}
	cumTab.AddRow(row...)
	fmt.Fprintf(w, "(c) cumulative inference loss\n%s\n", cumTab)
}

func names(results []EvalResult) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Name
	}
	return out
}

// Fig6 runs the small-scale evaluation (one application, three model
// versions, one edge of each type; TIR profiled offline for BIRP-OFF).
func Fig6(w io.Writer, opt Options) ([]EvalResult, error) {
	opt = opt.withDefaults()
	c := cluster.Small()
	apps := models.Catalogue(smallScaleApps, smallScaleVersions)
	specs := []schedulerSpec{
		birpOffSpec(c, apps, opt),
		birpSpec(c, apps, opt),
		oaeiSpec(c, apps, opt),
		maxSpec(c, apps, opt),
	}
	results, err := runComparison(c, apps, specs, opt)
	if err != nil {
		return nil, err
	}
	if w != nil {
		writeComparison(w, "Fig. 6 — small-scale evaluation (1 app × 3 models, 3 edges)", results)
	}
	return results, nil
}

// Fig7 runs the large-scale evaluation (five applications × five versions on
// the full six-edge cluster; BIRP-OFF omitted as in the paper).
func Fig7(w io.Writer, opt Options) ([]EvalResult, error) {
	opt = opt.withDefaults()
	c := cluster.Default()
	apps := models.Catalogue(largeScaleApps, largeScaleVersions)
	specs := []schedulerSpec{
		birpSpec(c, apps, opt),
		oaeiSpec(c, apps, opt),
		maxSpec(c, apps, opt),
	}
	results, err := runComparison(c, apps, specs, opt)
	if err != nil {
		return nil, err
	}
	if w != nil {
		writeComparison(w, "Fig. 7 — large-scale evaluation (5 apps × 5 models, 6 edges)", results)
	}
	return results, nil
}

// Find returns the result with the given algorithm name, or nil.
func Find(results []EvalResult, name string) *EvalResult {
	for i := range results {
		if results[i].Name == name {
			return &results[i]
		}
	}
	return nil
}
