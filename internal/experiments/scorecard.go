package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/metrics"
	"repro/internal/par"
)

// Check is one shape assertion from the paper's evaluation, with its verdict.
type Check struct {
	ID     string
	Claim  string
	Got    string
	Passed bool
}

// Scorecard runs the motivation and evaluation experiments and grades every
// qualitative claim of the paper against the measured results: who wins, by
// roughly what factor, and where the curves sit. It is both the repository's
// headline integration test and the quickest way to see how faithful the
// reproduction is after a change.
func Scorecard(w io.Writer, opt Options) ([]Check, error) {
	opt = opt.withDefaults()
	var checks []Check
	add := func(id, claim string, passed bool, format string, args ...interface{}) {
		checks = append(checks, Check{
			ID: id, Claim: claim, Passed: passed, Got: fmt.Sprintf(format, args...),
		})
	}

	// The experiment groups are independent, so they run concurrently; each
	// writes into its own slot and the checks below are graded serially in
	// the established order, keeping the scorecard worker-count-invariant.
	sweepOpt := opt
	sweepOpt.Quick = true
	if sweepOpt.Slots > 60 {
		sweepOpt.Slots = 60
	}
	var (
		rows   []Table1Row
		panels []Fig2Panel
		small  []EvalResult
		large  []EvalResult
		pts    []SweepPoint
		abl    []AblationResult
	)
	groups := []func() error{
		func() error { rows = Table1(nil); return nil },
		func() (err error) { panels, err = Fig2(nil, opt.Seed); return },
		func() (err error) { small, err = Fig6(nil, opt); return },
		func() (err error) { large, err = Fig7(nil, opt); return },
		func() (err error) { pts, err = PresetSweep(nil, sweepOpt, []int{sweepOpt.Slots}); return },
		func() (err error) {
			abl, err = Ablations(nil, Options{Quick: true, Slots: 25, Seed: opt.Seed,
				Eps1: opt.Eps1, Eps2: opt.Eps2, Workers: opt.Workers})
			return
		},
	}
	if err := par.ForEach(par.CapWorkers(opt.Workers), len(groups), func(_, i int) error {
		return groups[i]()
	}); err != nil {
		return nil, err
	}

	// --- Table 1 -----------------------------------------------------------
	get := func(model, device string) Table1Row {
		for _, r := range rows {
			if r.Model == model && r.Device == device {
				return r
			}
		}
		return Table1Row{}
	}
	smallHostBound := get("Yolov4-t", "Jetson Nano").CPUPct > 90 &&
		get("ResNet-18", "Jetson Nano").CPUPct > 90 &&
		get("Yolov4-t", "Jetson Nano").AccelPct < 80
	add("table1-regimes",
		"small models host-bound, large models device-bound (Nano)",
		smallHostBound && get("BERT", "Jetson Nano").AccelPct > 85,
		"Yolov4-t cpu=%.0f%% gpu=%.0f%%, BERT gpu=%.0f%%",
		get("Yolov4-t", "Jetson Nano").CPUPct, get("Yolov4-t", "Jetson Nano").AccelPct,
		get("BERT", "Jetson Nano").AccelPct)
	resnetNano := get("ResNet-18", "Jetson Nano").FPS
	add("table1-fps",
		"ResNet-18 Nano FPS ≈ 32.2 (±15%)",
		math.Abs(resnetNano-32.2)/32.2 < 0.15,
		"measured %.1f FPS", resnetNano)

	// --- Fig. 2 -------------------------------------------------------------
	add("fig2-law",
		"TIR follows a power-then-constant law with plateaus near 1.68/1.30/1.28",
		math.Abs(panels[0].Fit.C-1.68) < 0.15 &&
			math.Abs(panels[1].Fit.C-1.30) < 0.10 &&
			math.Abs(panels[2].Fit.C-1.28) < 0.10,
		"plateaus %.2f / %.2f / %.2f", panels[0].Fit.C, panels[1].Fit.C, panels[2].Fit.C)
	add("fig2-ordering",
		"LeNet gains the most from batching",
		panels[0].Fit.C > panels[1].Fit.C && panels[0].Fit.C > panels[2].Fit.C,
		"LeNet %.2f vs GoogLeNet %.2f, ResNet %.2f",
		panels[0].Fit.C, panels[1].Fit.C, panels[2].Fit.C)

	// --- Fig. 6 (small scale) ------------------------------------------------
	sBIRP, sOFF := Find(small, "BIRP"), Find(small, "BIRP-OFF")
	sOAEI, sMAX := Find(small, "OAEI"), Find(small, "MAX")
	add("fig6-slo",
		"BIRP's SLO failures far below OAEI's (paper: 1.9% vs 10.0%)",
		sBIRP.FailureRate < 0.5*sOAEI.FailureRate,
		"BIRP %.2f%% vs OAEI %.2f%%", 100*sBIRP.FailureRate, 100*sOAEI.FailureRate)
	add("fig6-tracking",
		"BIRP's cumulative loss tracks BIRP-OFF closely (tuning is effective)",
		math.Abs(sBIRP.TotalLoss()-sOFF.TotalLoss()) < 0.10*sOFF.TotalLoss(),
		"BIRP %.0f vs BIRP-OFF %.0f", sBIRP.TotalLoss(), sOFF.TotalLoss())
	add("fig6-oaei-cdf",
		"OAEI's CDF is densest below τ=0.3 (serial front-loading) yet has the heaviest tail",
		sOAEI.CDF().At(0.3) >= sBIRP.CDF().At(0.3) &&
			sOAEI.CDF().At(1.0) <= sBIRP.CDF().At(1.0),
		"at τ=0.3: OAEI %.3f vs BIRP %.3f; at τ=1.0: %.3f vs %.3f",
		sOAEI.CDF().At(0.3), sBIRP.CDF().At(0.3), sOAEI.CDF().At(1.0), sBIRP.CDF().At(1.0))
	add("fig6-max-cdf",
		"MAX's CDF shifts right at low τ (batch padding delays individuals)",
		sMAX.CDF().At(0.2) <= sOAEI.CDF().At(0.2),
		"at τ=0.2: MAX %.3f vs OAEI %.3f", sMAX.CDF().At(0.2), sOAEI.CDF().At(0.2))
	add("fig6-max-loss",
		"MAX's loss is the worst (utilization without model quality)",
		sMAX.TotalLoss() >= sBIRP.TotalLoss(),
		"MAX %.0f vs BIRP %.0f", sMAX.TotalLoss(), sBIRP.TotalLoss())

	// --- Fig. 7 (large scale) ------------------------------------------------
	lBIRP, lOAEI := Find(large, "BIRP"), Find(large, "OAEI")
	ratio := math.Inf(1)
	if lOAEI.FailureRate > 0 {
		ratio = lBIRP.FailureRate / lOAEI.FailureRate
	}
	add("fig7-slo-headline",
		"BIRP's failure rate a small fraction of OAEI's (paper: 19.8%)",
		ratio < 0.5,
		"ratio %.1f%% (BIRP %.2f%%, OAEI %.2f%%)", 100*ratio,
		100*lBIRP.FailureRate, 100*lOAEI.FailureRate)
	add("fig7-loss-headline",
		"BIRP's cumulative loss below OAEI's (paper: −32.9%; ours is bounded by the calibrated TIR ≈ 1.3)",
		lBIRP.TotalLoss() < lOAEI.TotalLoss(),
		"BIRP %.0f vs OAEI %.0f (%+.1f%%)", lBIRP.TotalLoss(), lOAEI.TotalLoss(),
		100*(lBIRP.TotalLoss()/lOAEI.TotalLoss()-1))

	// --- Fig. 4/5 (quick sweep) ----------------------------------------------
	var dSum float64
	pOK := true
	for _, p := range pts {
		dSum += p.DeltaLoss[sweepOpt.Slots]
		if f := p.FailPct[sweepOpt.Slots]; f < 0 || f > 8 {
			pOK = false
		}
	}
	// The premium per slot must be tiny relative to per-slot loss (~80):
	// online tuning neither blows up nor magically beats the offline truth.
	meanPerSlot := dSum / float64(len(pts)) / float64(sweepOpt.Slots)
	add("fig4-bounded",
		"online tuning costs only a bounded premium over offline profiling",
		math.Abs(meanPerSlot) < 2,
		"mean ΔLoss %+.2f/slot over %d preset cells", meanPerSlot, len(pts))
	add("fig5-range",
		"preset p%% stays in the paper's sub-2%% band for every (ε1, ε2)",
		pOK,
		"%d cells inspected", len(pts))

	// --- Ablation: the literal single-batch formulation must be the worst ----
	var def, knee *AblationResult
	for i := range abl {
		if i == 0 {
			def = &abl[i]
		}
		if abl[i].Name[:12] == "abl-batchcap" {
			knee = &abl[i]
		}
	}
	add("abl-batchcap",
		"the paper-literal single-batch cap collapses under load the generalization carries",
		knee != nil && def != nil && knee.FailureRate > def.FailureRate && knee.Loss > def.Loss,
		"knee-cap loss %.0f / p%% %.1f vs default %.0f / %.1f",
		knee.Loss, 100*knee.FailureRate, def.Loss, 100*def.FailureRate)

	if w != nil {
		fmt.Fprintf(w, "== Reproduction scorecard ==\n\n")
		tab := metrics.NewTable("", "check", "paper claim", "measured")
		pass := 0
		for _, c := range checks {
			mark := "FAIL"
			if c.Passed {
				mark = "ok"
				pass++
			}
			tab.AddRow(mark, c.ID, c.Claim, c.Got)
		}
		fmt.Fprintf(w, "%s\n%d/%d checks passed\n", tab, pass, len(checks))
	}
	return checks, nil
}
