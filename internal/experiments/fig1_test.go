package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig1RedistributionStory(t *testing.T) {
	var buf bytes.Buffer
	stats, err := Fig1(&buf, Options{Quick: true, Slots: 25})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ArrivalImbalance < 1.5 {
		t.Fatalf("workload should be clearly imbalanced: %v", stats.ArrivalImbalance)
	}
	if stats.ForwardedFrac <= 0.05 {
		t.Fatalf("BIRP should forward a meaningful share: %v", stats.ForwardedFrac)
	}
	if len(stats.PerEdgeBusyFrac) != 6 {
		t.Fatalf("busy fractions for %d edges", len(stats.PerEdgeBusyFrac))
	}
	// Post-redistribution utilization must be far more even than arrivals:
	// the CV of busy fractions should be well below the (max/mean − 1)
	// spread of the raw workload.
	if stats.UtilizationCV >= stats.ArrivalImbalance-1 {
		t.Fatalf("redistribution failed to balance: CV %v vs arrival spread %v",
			stats.UtilizationCV, stats.ArrivalImbalance-1)
	}
	if !strings.Contains(buf.String(), "redistribution at work") {
		t.Fatal("missing output header")
	}
}
