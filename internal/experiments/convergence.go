package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

// ConvergencePoint is one snapshot of the online tuner's estimation error
// against the offline-profiled truth, averaged over every (edge, model) key
// the tuner has observed.
type ConvergencePoint struct {
	Slot int
	// MeanAbsEtaErr is mean |η̄ − η_true| over observed keys.
	MeanAbsEtaErr float64
	// MeanAbsCErr is mean |C̄ − C_true|.
	MeanAbsCErr float64
	// MeanShading is the mean relative LCB shading (1 − η̂/η̄): how much
	// exploration pessimism remains.
	MeanShading float64
	// Keys is the number of (edge, model) pairs with at least one observation.
	Keys int
}

// convergenceSpy snapshots the tuner after each slot's feedback.
type convergenceSpy struct {
	*core.Scheduler
	tuner  *core.OnlineTuner
	truth  *core.OfflineProvider
	keys   []core.ModelKey
	every  int
	points []ConvergencePoint
}

func (s *convergenceSpy) Observe(t int, fbs []edgesim.Feedback) {
	s.Scheduler.Observe(t, fbs)
	if (t+1)%s.every != 0 {
		return
	}
	pt := ConvergencePoint{Slot: t + 1}
	for _, k := range s.keys {
		h := s.tuner.Historical(k)
		shaded := s.tuner.Params(k)
		truth := s.truth.Params(k)
		pt.MeanAbsEtaErr += math.Abs(h.Eta - truth.Eta)
		pt.MeanAbsCErr += math.Abs(h.C - truth.C)
		if h.Eta > 0 {
			pt.MeanShading += 1 - shaded.Eta/h.Eta
		}
		pt.Keys++
	}
	if pt.Keys > 0 {
		pt.MeanAbsEtaErr /= float64(pt.Keys)
		pt.MeanAbsCErr /= float64(pt.Keys)
		pt.MeanShading /= float64(pt.Keys)
	}
	s.points = append(s.points, pt)
}

// Convergence runs BIRP on the small-scale system and tracks how the MAB
// tuner's TIR-law estimates approach the offline-profiled ground truth — an
// extension experiment the paper's §4.2 motivates but never plots.
func Convergence(w io.Writer, opt Options) ([]ConvergencePoint, error) {
	opt = opt.withDefaults()
	c := cluster.Small()
	apps := models.Catalogue(smallScaleApps, smallScaleVersions)
	truth, err := core.ProfileOffline(c, apps, 16)
	if err != nil {
		return nil, err
	}
	tuner := core.NewOnlineTuner(opt.Eps1, opt.Eps2)
	sched, err := core.New(core.Config{Cluster: c, Apps: apps, Provider: tuner})
	if err != nil {
		return nil, err
	}
	var keys []core.ModelKey
	for k := 0; k < c.N(); k++ {
		for _, app := range apps {
			for _, m := range app.Models {
				keys = append(keys, core.ModelKey{Edge: k, App: app.Index, Version: m.Version})
			}
		}
	}
	every := 10
	if opt.Quick {
		every = 5
	}
	spy := &convergenceSpy{Scheduler: sched, tuner: tuner, truth: truth, keys: keys, every: every}

	tr, err := trace.Generate(trace.Config{
		Apps: len(apps), Edges: c.N(), Slots: opt.Slots, Seed: opt.Seed,
		MeanPerSlot: smallScaleMean, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		return nil, err
	}
	sim, err := edgesim.New(edgesim.Config{
		Cluster: c, Apps: apps, NoiseSigma: 0.02, SlotNoiseSigma: 0.05, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	if _, err := sim.Run(spy, tr.R); err != nil {
		return nil, err
	}

	if w != nil {
		fmt.Fprintf(w, "== Convergence — online tuner vs offline-profiled TIR truth ==\n\n")
		tab := metrics.NewTable("slot", "mean |η̄−η*|", "mean |C̄−C*|", "LCB shading", "keys")
		for _, p := range spy.points {
			tab.AddRow(fmt.Sprintf("%d", p.Slot),
				fmt.Sprintf("%.4f", p.MeanAbsEtaErr),
				fmt.Sprintf("%.4f", p.MeanAbsCErr),
				fmt.Sprintf("%.1f%%", 100*p.MeanShading),
				fmt.Sprintf("%d", p.Keys))
		}
		fmt.Fprintf(w, "%s\n", tab)
	}
	return spy.points, nil
}
