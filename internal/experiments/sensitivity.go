package experiments

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/trace"
)

// SensitivityPoint is one workload-intensity operating point.
type SensitivityPoint struct {
	MeanPerSlot float64
	// Per algorithm name: total loss and failure rate.
	Loss map[string]float64
	Fail map[string]float64
}

// DefaultSensitivityLoads spans idle to far beyond the serial baseline's
// capacity on the small-scale system.
var DefaultSensitivityLoads = []float64{10, 25, 45, 70, 100}

// Sensitivity sweeps workload intensity and reports every algorithm's loss
// and SLO failures per operating point — the crossover analysis behind the
// evaluation's operating-point choice: at light load serial execution is
// fine, in the band where serial saturates batching wins both metrics, and
// far beyond it everyone degrades.
func Sensitivity(w io.Writer, opt Options, loads []float64) ([]SensitivityPoint, error) {
	opt = opt.withDefaults()
	if len(loads) == 0 {
		loads = DefaultSensitivityLoads
	}
	if opt.Quick && len(loads) > 3 {
		loads = []float64{loads[0], loads[len(loads)/2], loads[len(loads)-1]}
	}
	slots := opt.Slots
	if slots > 100 {
		slots = 100 // per-point horizon; the sweep is the object of interest
	}
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	algos := []struct {
		name string
		mk   func() (edgesim.Scheduler, error)
	}{
		{"BIRP", func() (edgesim.Scheduler, error) {
			return core.New(core.Config{Cluster: c, Apps: apps,
				Provider: core.NewOnlineTuner(opt.Eps1, opt.Eps2),
				Workers:  opt.Workers})
		}},
		{"OAEI", func() (edgesim.Scheduler, error) { return baseline.NewOAEI(c, apps, opt.Seed) }},
		{"MAX", func() (edgesim.Scheduler, error) { return baseline.NewMAX(c, apps, 16) }},
	}

	// Each operating point regenerates its own trace and schedulers, so the
	// load sweep fans out cleanly; gather preserves the loads order.
	points := make([]SensitivityPoint, len(loads))
	if err := par.ForEach(par.CapWorkers(opt.Workers), len(loads), func(_, idx int) error {
		mean := loads[idx]
		tr, err := trace.Generate(trace.Config{
			Apps: 2, Edges: c.N(), Slots: slots, Seed: opt.Seed,
			MeanPerSlot: mean, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
		})
		if err != nil {
			return err
		}
		pt := SensitivityPoint{
			MeanPerSlot: mean,
			Loss:        map[string]float64{},
			Fail:        map[string]float64{},
		}
		for _, a := range algos {
			sched, err := a.mk()
			if err != nil {
				return err
			}
			sim, err := edgesim.New(edgesim.Config{
				Cluster: c, Apps: apps,
				NoiseSigma: 0.02, SlotNoiseSigma: 0.05, Seed: opt.Seed,
			})
			if err != nil {
				return err
			}
			res, err := sim.Run(sched, tr.R)
			if err != nil {
				return fmt.Errorf("experiments: sensitivity %s at %.0f: %w", a.name, mean, err)
			}
			pt.Loss[a.name] = res.Loss.Total()
			pt.Fail[a.name] = res.FailureRate()
		}
		points[idx] = pt
		return nil
	}); err != nil {
		return nil, err
	}

	if w != nil {
		fmt.Fprintf(w, "== Sensitivity — loss and p%% vs workload intensity (small scale, %d slots/point) ==\n\n", slots)
		tab := metrics.NewTable("mean/slot",
			"BIRP loss", "OAEI loss", "MAX loss",
			"BIRP p%", "OAEI p%", "MAX p%")
		for _, p := range points {
			tab.AddRow(fmt.Sprintf("%.0f", p.MeanPerSlot),
				fmt.Sprintf("%.0f", p.Loss["BIRP"]),
				fmt.Sprintf("%.0f", p.Loss["OAEI"]),
				fmt.Sprintf("%.0f", p.Loss["MAX"]),
				fmt.Sprintf("%.2f%%", 100*p.Fail["BIRP"]),
				fmt.Sprintf("%.2f%%", 100*p.Fail["OAEI"]),
				fmt.Sprintf("%.2f%%", 100*p.Fail["MAX"]))
		}
		fmt.Fprintf(w, "%s\n", tab)
	}
	return points, nil
}
