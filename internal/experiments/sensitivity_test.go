package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSensitivityCrossoverBand(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Sensitivity(&buf, Options{Quick: true, Slots: 40}, []float64{10, 45, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		for _, name := range []string{"BIRP", "OAEI", "MAX"} {
			if p.Loss[name] <= 0 {
				t.Fatalf("%s loss %v at mean %v", name, p.Loss[name], p.MeanPerSlot)
			}
		}
	}
	// Loss grows with load for everyone.
	for _, name := range []string{"BIRP", "OAEI", "MAX"} {
		if !(pts[0].Loss[name] < pts[1].Loss[name] && pts[1].Loss[name] < pts[2].Loss[name]) {
			t.Fatalf("%s loss not increasing with load: %v %v %v",
				name, pts[0].Loss[name], pts[1].Loss[name], pts[2].Loss[name])
		}
	}
	// At the heavy end, BIRP's failure rate stays below OAEI's.
	last := pts[len(pts)-1]
	if last.Fail["BIRP"] >= last.Fail["OAEI"] {
		t.Fatalf("BIRP p%% %v should beat OAEI %v under load", last.Fail["BIRP"], last.Fail["OAEI"])
	}
	if !strings.Contains(buf.String(), "Sensitivity") {
		t.Fatal("missing header")
	}
}
