package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

// Fig1Stats quantifies the redistribution behaviour the paper's Fig. 1
// illustrates schematically: how imbalanced the raw arrivals are, how much
// workload BIRP forwards between edges, and how even the resulting per-edge
// utilization is.
type Fig1Stats struct {
	// ArrivalImbalance is the mean max/mean per-edge arrival ratio.
	ArrivalImbalance float64
	// ForwardedFrac is the fraction of all requests that crossed edges.
	ForwardedFrac float64
	// UtilizationCV is the coefficient of variation of realized per-edge
	// busy time after redistribution (lower = more balanced).
	UtilizationCV float64
	// PerEdgeBusyFrac is each edge's mean busy fraction over the run.
	PerEdgeBusyFrac []float64
}

// flowSpy counts transferred requests.
type flowSpy struct {
	edgesim.Scheduler
	forwarded int
}

func (f *flowSpy) Decide(t int, arrivals [][]int) (*edgesim.Plan, error) {
	plan, err := f.Scheduler.Decide(t, arrivals)
	if plan != nil {
		for _, tr := range plan.Transfers {
			f.forwarded += tr.Count
		}
	}
	return plan, err
}

// Fig1 runs BIRP on a strongly skewed workload and reports the
// redistribution statistics behind the paper's Fig. 1 story: hot edges shed
// load to idle ones until utilization evens out.
func Fig1(w io.Writer, opt Options) (*Fig1Stats, error) {
	opt = opt.withDefaults()
	c := cluster.Default()
	apps := models.Catalogue(3, 3)
	tr, err := trace.Generate(trace.Config{
		Apps: 3, Edges: c.N(), Slots: opt.Slots, Seed: opt.Seed,
		MeanPerSlot: 25, Imbalance: 0.9, BurstProb: 0.08, BurstScale: 2.5,
	})
	if err != nil {
		return nil, err
	}
	sched, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		return nil, err
	}
	spy := &flowSpy{Scheduler: sched}
	sim, err := edgesim.New(edgesim.Config{
		Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(spy, tr.R)
	if err != nil {
		return nil, err
	}

	stats := &Fig1Stats{PerEdgeBusyFrac: make([]float64, c.N())}
	var imbSum float64
	imbN := 0
	for t := 0; t < tr.Slots; t++ {
		if v := tr.ImbalanceAt(t); v > 0 {
			imbSum += v
			imbN++
		}
	}
	if imbN > 0 {
		stats.ArrivalImbalance = imbSum / float64(imbN)
	}
	total := res.Served + res.Dropped
	if total > 0 {
		stats.ForwardedFrac = float64(spy.forwarded) / float64(total)
	}
	// SlotMakespanMS is slot-major with K entries per slot.
	K := c.N()
	slotMS := c.SlotMS()
	for idx, ms := range res.SlotMakespanMS {
		stats.PerEdgeBusyFrac[idx%K] += ms / slotMS
	}
	slots := len(res.SlotMakespanMS) / K
	var mean float64
	for k := range stats.PerEdgeBusyFrac {
		stats.PerEdgeBusyFrac[k] /= float64(slots)
		mean += stats.PerEdgeBusyFrac[k]
	}
	mean /= float64(K)
	var variance float64
	for _, u := range stats.PerEdgeBusyFrac {
		variance += (u - mean) * (u - mean)
	}
	variance /= float64(K)
	if mean > 0 {
		stats.UtilizationCV = math.Sqrt(variance) / mean
	}

	if w != nil {
		fmt.Fprintf(w, "== Fig. 1 — redistribution at work ==\n\n")
		fmt.Fprintf(w, "arrival imbalance (max/mean per edge): %.2f\n", stats.ArrivalImbalance)
		fmt.Fprintf(w, "requests forwarded between edges:      %.1f%%\n", 100*stats.ForwardedFrac)
		fmt.Fprintf(w, "post-redistribution utilization CV:    %.3f\n\n", stats.UtilizationCV)
		tab := metrics.NewTable("edge", "mean busy fraction")
		for k, u := range stats.PerEdgeBusyFrac {
			tab.AddRow(c.Edges[k].Name, fmt.Sprintf("%.2f", u))
		}
		fmt.Fprintf(w, "%s\n", tab)
	}
	return stats, nil
}
