package experiments

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/trace"
)

// SweepPoint is one (ε1, ε2) grid cell of the Fig. 4/5 preset analysis.
type SweepPoint struct {
	Eps1, Eps2 float64
	// DeltaLoss[t] is Σ_{t'≤t}(loss_BIRP − loss_BIRP-OFF), Fig. 4's surface,
	// keyed by snapshot slot.
	DeltaLoss map[int]float64
	// FailPct[t] is the SLO failure percentage over the first t slots,
	// Fig. 5's surface.
	FailPct map[int]float64
}

// SweepGrid is the default preset grid: the paper plots ε1 ∈ [0.01, 0.07]
// and ε2 ∈ [0.04, 0.10].
var (
	SweepEps1 = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07}
	SweepEps2 = []float64{0.04, 0.06, 0.08, 0.10}
)

// PresetSweep runs the small-scale system under every (ε1, ε2) preset pair
// and records ΔLoss (Fig. 4) and p% (Fig. 5) at the snapshot slots.
// snapshots entries must be ≤ opt.Slots.
func PresetSweep(w io.Writer, opt Options, snapshots []int) ([]SweepPoint, error) {
	opt = opt.withDefaults()
	eps1s, eps2s := SweepEps1, SweepEps2
	if opt.Quick {
		eps1s = []float64{0.01, 0.04, 0.07}
		eps2s = []float64{0.04, 0.10}
	}
	c := cluster.Small()
	apps := models.Catalogue(smallScaleApps, smallScaleVersions)
	tr, err := trace.Generate(trace.Config{
		Apps: len(apps), Edges: c.N(), Slots: opt.Slots, Seed: opt.Seed,
		MeanPerSlot: smallScaleMean, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		return nil, err
	}
	run := func(s edgesim.Scheduler) (*edgesim.Results, error) {
		sim, err := edgesim.New(edgesim.Config{
			Cluster: c, Apps: apps,
			NoiseSigma: 0.02, SlotNoiseSigma: 0.05, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		return sim.Run(s, tr.R)
	}

	off, err := baseline.NewBIRPOff(c, apps, 16)
	if err != nil {
		return nil, err
	}
	offRes, err := run(off)
	if err != nil {
		return nil, fmt.Errorf("experiments: BIRP-OFF reference: %w", err)
	}
	offCum := offRes.Loss.Cumulative()

	// Grid cells are independent runs over the shared trace: fan them out and
	// write each into its (e1, e2) slot so the returned order — and every
	// seeded RNG inside a cell — matches the serial sweep exactly.
	points := make([]SweepPoint, len(eps1s)*len(eps2s))
	if err := par.ForEach(par.CapWorkers(opt.Workers), len(points), func(_, idx int) error {
		e1 := eps1s[idx/len(eps2s)]
		e2 := eps2s[idx%len(eps2s)]
		s, err := core.New(core.Config{
			Cluster: c, Apps: apps,
			Provider: core.NewOnlineTuner(e1, e2),
			Workers:  opt.Workers,
		})
		if err != nil {
			return err
		}
		res, err := run(s)
		if err != nil {
			return fmt.Errorf("experiments: BIRP(ε1=%v, ε2=%v): %w", e1, e2, err)
		}
		pt := SweepPoint{Eps1: e1, Eps2: e2, DeltaLoss: map[int]float64{}, FailPct: map[int]float64{}}
		cum := res.Loss.Cumulative()
		for _, t := range snapshots {
			idx := t - 1
			if idx >= len(cum) {
				idx = len(cum) - 1
			}
			if idx < 0 {
				idx = 0
			}
			pt.DeltaLoss[t] = cum[idx] - offCum[idx]
			pt.FailPct[t] = 100 * res.FailureRateUpTo(t)
		}
		points[idx] = pt
		return nil
	}); err != nil {
		return nil, err
	}
	if w != nil {
		for _, t := range snapshots {
			tabD := metrics.NewTable(append([]string{"ε1\\ε2 ΔLoss"}, fmtEps(eps2s)...)...)
			tabP := metrics.NewTable(append([]string{"ε1\\ε2 p%"}, fmtEps(eps2s)...)...)
			for _, e1 := range eps1s {
				rowD := []string{fmt.Sprintf("%.2f", e1)}
				rowP := []string{fmt.Sprintf("%.2f", e1)}
				for _, e2 := range eps2s {
					for _, pt := range points {
						// Grid lookup: the point stores the exact float it was built
						// from, so equality is an identity check, not arithmetic.
						//birplint:ignore floateq
						if pt.Eps1 == e1 && pt.Eps2 == e2 {
							rowD = append(rowD, fmt.Sprintf("%.1f", pt.DeltaLoss[t]))
							rowP = append(rowP, fmt.Sprintf("%.2f", pt.FailPct[t]))
						}
					}
				}
				tabD.AddRow(rowD...)
				tabP.AddRow(rowP...)
			}
			fmt.Fprintf(w, "== Fig. 4 — ΔLoss(ε1, ε2) at t=%d ==\n\n%s\n", t, tabD)
			fmt.Fprintf(w, "== Fig. 5 — p%%(ε1, ε2) at t=%d ==\n\n%s\n", t, tabP)
		}
	}
	return points, nil
}

func fmtEps(eps []float64) []string {
	out := make([]string, len(eps))
	for i, e := range eps {
		out[i] = fmt.Sprintf("%.2f", e)
	}
	return out
}
