// Package core seeds the wallclock analyzer's positive cases: its import
// path ends in "core", so it counts as a deterministic solve path where
// wall-clock reads are forbidden.
package core

import "time"

// Solve reads the wall clock inside a solve path.
func Solve() time.Duration {
	start := time.Now() // want "time.Now inside deterministic solve path"
	work()
	return time.Since(start) // want "time.Since inside deterministic solve path"
}

// Deadline uses time.Until in a solve path.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until inside deterministic solve path"
}

// ProfiledSolve is the waived stats seam.
func ProfiledSolve() time.Time {
	//birplint:ignore wallclock
	return time.Now() // wantwaived "time.Now"
}

// Elapsed manipulates durations without reading the clock: not flagged.
func Elapsed(d time.Duration) float64 { return d.Seconds() }

func work() {}
