// Package other is the wallclock analyzer's negative case: it is not one of
// the deterministic solve packages, so reading the clock is fine.
package other

import "time"

// Stamp reads the wall clock outside the solver stack: not flagged.
func Stamp() time.Time { return time.Now() }
