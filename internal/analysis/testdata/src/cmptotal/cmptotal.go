// Package cmptotal seeds the cmptotal analyzer: sort comparators must define
// a strict total order with a deterministic tie-break. Non-strict key
// comparisons, ignored index parameters, unstable single-key sorts, and
// unstable all-float sorts must be flagged; stable sorts and comparators with
// an integral or index tie-break must not.
package cmptotal

import "sort"

type pt struct{ x, y float64 }

type row struct {
	score float64
	id    int
}

// NonStrict uses <= on the key: less(i,i) is true, which is undefined for
// sort and reorders equal elements run to run.
func NonStrict(xs []int) {
	sort.Slice(xs, func(i, j int) bool {
		return xs[i] <= xs[j] // want "non-strict comparison"
	})
}

// IgnoresIndex never reads j: the comparator cannot define a total order.
func IgnoresIndex(xs []int) {
	sort.Slice(xs, func(i, j int) bool { // want "never reads its index parameter j"
		return xs[i] < 0
	})
}

// SingleKey sorts unstable on one key: equal keys keep input-dependent order.
func SingleKey(xs []float64) {
	sort.Slice(xs, func(i, j int) bool {
		return xs[i] < xs[j] // want "single-key comparator"
	})
}

// FloatKeys orders only by floating-point keys with no integral or index
// tie-break under an unstable sort.
func FloatKeys(ps []pt) {
	sort.Slice(ps, func(i, j int) bool { // want "only by floating-point keys"
		if ps[i].x != ps[j].x {
			return ps[i].x < ps[j].x
		}
		return ps[i].y < ps[j].y
	})
}

// Stable is exempt from the tie-break rules: stability IS the tie-break.
func Stable(xs []float64) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// TieBreak falls back to the index order: deterministic under unstable sort.
func TieBreak(ps []pt) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].x != ps[j].x {
			return ps[i].x < ps[j].x
		}
		return i < j
	})
}

// ByScoreThenID breaks float ties on an integral key: not flagged.
func ByScoreThenID(rs []row) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score < rs[j].score
		}
		return rs[i].id < rs[j].id
	})
}

// Waived keeps a deliberately unstable presentation sort under a waiver.
func Waived(xs []int) {
	//birplint:ignore cmptotal // presentation-only ordering; equal keys are never rendered
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // wantwaived "single-key comparator"
}
