// Package callgraph exercises the call-graph builder and the summary
// fixpoint: an interface call site must fan out to every module implementer
// (the sound fallback for dynamic dispatch), and self- and mutual recursion
// must reach a stable summary without diverging.
package callgraph

import "time"

// Stepper is implemented by alpha (value receiver) and beta (pointer
// receiver); Dispatch calls it dynamically.
type Stepper interface{ Step(n int) int }

type alpha struct{}

func (alpha) Step(n int) int { return n + 1 }

type beta struct{ k int }

func (b *beta) Step(n int) int { return n + b.k }

// Dispatch is a dynamic call site: resolution must include both implementers.
func Dispatch(s Stepper, n int) int { return s.Step(n) }

// Rec is self-recursive; its summary must stabilize.
func Rec(n int) int {
	if n <= 0 {
		return 0
	}
	return Rec(n - 1)
}

// Ping and Pong are mutually recursive and carry wall-clock taint through
// both summaries: the fixpoint must propagate the intrinsic bit around the
// cycle.
func Ping(n int) int64 {
	if n <= 0 {
		return time.Now().UnixNano()
	}
	return Pong(n - 1)
}

// Pong forwards to Ping; its return inherits the clock bit transitively.
func Pong(n int) int64 { return Ping(n - 1) }
