// Package droppederr seeds the droppederr analyzer: statements that discard
// an error returned by an intra-module call must be flagged; explicit _
// assignments, handled errors, and external-package calls must not.
package droppederr

import "fmt"

// save is the intra-module callee whose error the positives discard.
func save() error { return nil }

// pair returns a value and an error.
func pair() (int, error) { return 0, nil }

// DropPlain discards the error in a plain call statement.
func DropPlain() {
	save() // want "call statement discards the error from droppederr.save"
}

// DropGo discards the error in a go statement.
func DropGo() {
	go save() // want "go statement discards the error from droppederr.save"
}

// DropDefer discards the error in a defer statement.
func DropDefer() {
	defer save() // want "defer statement discards the error from droppederr.save"
}

// ExplicitBlank is a visible, greppable discard: not flagged.
func ExplicitBlank() {
	_ = save()
}

// Handled checks the error: not flagged.
func Handled() error {
	if err := save(); err != nil {
		return err
	}
	v, err := pair()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// External calls an error-returning stdlib function; outside the module, so
// not flagged.
func External() {
	fmt.Println("hello")
}

// Waived carries the waiver comment.
func Waived() {
	//birplint:ignore droppederr
	save() // wantwaived "call statement discards"
}
