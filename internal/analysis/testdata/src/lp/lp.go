// Package lp is a stand-in solver package for the maporder golden fixtures:
// its import path ends in "lp", so calls into it from a map-range body count
// as feeding solver input.
package lp

// Feed accepts one coefficient of solver input.
func Feed(x float64) {}

// SolveAll consumes a batch of solver input.
func SolveAll(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
