// Package loopcapture seeds the loopcapture analyzer: goroutine and defer
// closures that capture a loop variable must be flagged; closures that
// receive the variable as an argument — the par.ForEach convention — must
// not.
package loopcapture

import "sync"

// CaptureRange captures the range variable in a goroutine closure.
func CaptureRange(xs []int, out chan<- int) {
	for _, x := range xs {
		go func() {
			out <- x // want "captures loop variable x"
		}()
	}
}

// CaptureFor captures a classic for-loop index.
func CaptureFor(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		go func() {
			out <- i // want "captures loop variable i"
		}()
	}
}

// CaptureDefer captures a loop variable in a deferred closure.
func CaptureDefer(xs []int, out chan<- int) {
	for _, x := range xs {
		defer func() {
			out <- x // want "captures loop variable x"
		}()
	}
}

// PassArgument hands the loop variable to the goroutine explicitly, like
// par.ForEach hands each worker its index: not flagged.
func PassArgument(xs []int, out chan<- int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			out <- v
		}(x)
	}
	wg.Wait()
}

// OuterCapture closes over a variable declared outside the loop, which is a
// single shared binding either way: not flagged.
func OuterCapture(xs []int, out chan<- int) {
	total := 0
	for _, x := range xs {
		total += x
	}
	go func() { out <- total }()
}

// Waived keeps a deliberate capture under the waiver.
func Waived(xs []int, out chan<- int) {
	for _, x := range xs {
		go func() {
			//birplint:ignore loopcapture
			out <- x // wantwaived "captures loop variable x"
		}()
	}
}
