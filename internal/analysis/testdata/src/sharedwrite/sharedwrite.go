// Package sharedwrite seeds the sharedwrite analyzer: writes to
// closure-captured state from concurrent closures — launched with `go` or
// passed to a callee whose summary marks the parameter as
// invoked-on-goroutine — must be flagged unless a per-index slot, a mutex, or
// per-execution freshness makes them safe.
package sharedwrite

import "sync"

type box struct{ v int }

// Race accumulates into a captured counter from the fan-out: lost updates.
func Race(xs []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			total += x // want "write to captured total"
		}(x)
	}
	wg.Wait()
	return total
}

// PerIndex writes each goroutine's result into its own slot, the fan-out
// discipline the codebase standardizes on: not flagged.
func PerIndex(xs []int) []int {
	out := make([]int, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func(i, x int) {
			defer wg.Done()
			out[i] = x * x
		}(i, x)
	}
	wg.Wait()
	return out
}

// MapWrite writes a captured map per-key: concurrent map writes fault even on
// distinct keys, so the per-index exemption never applies to maps.
func MapWrite(xs []int) map[int]int {
	out := map[int]int{}
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func(i, x int) {
			defer wg.Done()
			out[i] = x // want "concurrent map write through captured out"
		}(i, x)
	}
	wg.Wait()
	return out
}

// Locked guards the shared write with a mutex: not flagged.
func Locked(xs []int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			mu.Lock()
			total += x
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return total
}

// Handoff constructs a per-iteration object and hands it to exactly one
// goroutine: each launch writes a distinct allocation, not shared state.
func Handoff(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		agg := &box{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			agg.v = 1
		}()
	}
	wg.Wait()
}

// fill writes through its pointer parameter; its summary carries the fact.
func fill(dst *box, v int) { dst.v = v }

// ViaCallee passes captured state to a writer from inside the fan-out: the
// write happens one call deep but is still shared.
func ViaCallee(xs []int) box {
	var shared box
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			fill(&shared, x) // want "captured shared is passed to .*fill, which writes through it"
		}(x)
	}
	wg.Wait()
	return shared
}

// each invokes fn once per item on a spawned goroutine — the par.ForEach
// shape; its summary marks fn as invoked-on-goroutine.
func each(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// FanOut's body literal runs concurrently via each, so its captured write is
// shared even though no `go` statement appears here.
func FanOut(n int) int {
	sum := 0
	each(n, func(i int) {
		sum += i // want "write to captured sum"
	})
	return sum
}

// Waived keeps a known-benign single-writer flag under a waiver.
func Waived(done chan struct{}) {
	ready := false
	go func() {
		//birplint:ignore sharedwrite // single writer; the reader is gated behind the done channel
		ready = true // wantwaived "write to captured ready"
		close(done)
	}()
	<-done
	_ = ready
}
