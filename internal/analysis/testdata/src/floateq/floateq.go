// Package floateq seeds positive and negative cases for the floateq
// analyzer: raw ==/!= on floats and switches over float tags must be
// flagged; integer comparisons, ordered comparisons, and tolerance-based
// comparisons must not.
package floateq

import "math"

// Equal compares two computed floats exactly.
func Equal(a, b float64) bool {
	return a == b // want "== on float operands"
}

// NotEqual32 flags float32 too.
func NotEqual32(a, b float32) bool {
	return a != b // want "!= on float operands"
}

// SwitchTag switches over a float expression.
func SwitchTag(x float64) int {
	switch x { // want "switch on float expression"
	case 0:
		return 0
	case 1:
		return 1
	}
	return -1
}

// Tolerance is the approved pattern: not flagged.
func Tolerance(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// Ordered comparisons are fine: not flagged.
func Ordered(a, b float64) bool { return a < b }

// Ints are exact: not flagged.
func Ints(a, b int) bool { return a == b }

// Waived keeps a deliberate exact comparison with the waiver comment.
func Waived(x float64) bool {
	//birplint:ignore floateq
	return x == 0 // wantwaived "== on float operands"
}

// NamedFloat catches defined types whose underlying type is float.
type Celsius float64

// SameTemp compares a defined float type exactly.
func SameTemp(a, b Celsius) bool {
	return a == b // want "== on float operands"
}
