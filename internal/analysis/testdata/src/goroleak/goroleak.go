// Package goroleak seeds the goroleak analyzer: goroutines with no reachable
// join — no completion signal at all, or signals only on locally declared
// objects the launcher never waits on — must be flagged. Joined, context-
// bounded, owner-escaping, and summary-mediated launches must not.
package goroleak

import (
	"context"
	"sync"
)

// Leak launches a goroutine nothing can ever join.
func Leak(xs []int) {
	go func() { // want "no completion signal"
		for range xs {
		}
	}()
}

// LocalNoWait signals on a local channel the function never receives from:
// the close can never be observed and the goroutine can outlive its launcher.
func LocalNoWait(xs []int) {
	done := make(chan struct{})
	go func() { // want "locally declared objects that this function never waits on"
		close(done)
	}()
}

// Joined drains the result channel: the goroutine is joined.
func Joined(xs []int) int {
	out := make(chan int)
	go func() {
		s := 0
		for _, x := range xs {
			s += x
		}
		out <- s
	}()
	return <-out
}

// WgJoined uses the WaitGroup protocol: Done inside, Wait outside.
func WgJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// CtxBounded is lifecycle-bounded by its context: not flagged.
func CtxBounded(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case tick <- 1:
			}
		}
	}()
}

type worker struct{ done chan struct{} }

// start launches the run loop; the worker escapes to the caller, who joins
// through Wait — the constructor-starts, owner-joins pattern, not flagged.
func start() *worker {
	w := &worker{done: make(chan struct{})}
	go func() {
		close(w.done)
	}()
	return w
}

// Wait joins a started worker.
func (w *worker) Wait() { <-w.done }

// pump sends every item then closes out; its summary marks the channel
// parameter as a completion signal.
func pump(xs []int, out chan int) {
	for _, x := range xs {
		out <- x
	}
	close(out)
}

// GoCallJoined launches pump by name and drains it: joined via the summary.
func GoCallJoined(xs []int) int {
	out := make(chan int)
	go pump(xs, out)
	total := 0
	for v := range out {
		total += v
	}
	return total
}

// GoCallLeak launches pump but never drains the channel it signals on.
func GoCallLeak(xs []int) {
	out := make(chan int, len(xs))
	go pump(xs, out) // want "locally declared objects that this function never waits on"
}

// Waived keeps a deliberate fire-and-forget goroutine under a waiver.
func Waived() {
	//birplint:ignore goroleak // fire-and-forget; bounded by process exit in this demo shape
	go func() { // wantwaived "no completion signal"
	}()
}
