// Package dettaint seeds the dettaint analyzer: intrinsically nondeterministic
// values (wall clock, unseeded rand, channel-drain order) reaching a
// determinism-sensitive output — a field of a *Report-suffixed struct, directly,
// through a callee's return, through a callee that stores its parameter, or via
// a composite literal — must be flagged, as must sort comparators reading such
// values. Values derived purely from the inputs, and explicitly seeded
// generators, must not.
package dettaint

import (
	"math/rand"
	"sort"
	"time"
)

// SlotReport is determinism-sensitive by naming convention (Report suffix):
// its fields are what the byte-identity benchmarks compare.
type SlotReport struct {
	Stamp  int64
	Jitter float64
	Count  int
}

// DirectStore writes a wall-clock read straight into a report field.
func DirectStore(r *SlotReport) {
	r.Stamp = time.Now().UnixNano() // want "wall clock.*stored into dettaint.SlotReport.Stamp"
}

// stampNow launders the clock through a helper return.
func stampNow() int64 { return time.Now().UnixNano() }

// ViaHelper stores a callee's wall-clock return: the taint crosses the call
// through the callee's Ret summary.
func ViaHelper(r *SlotReport) {
	r.Stamp = stampNow() // want "wall clock.*stored into dettaint.SlotReport.Stamp"
}

// record stores its argument into the report: a transitive sink.
func record(r *SlotReport, v float64) { r.Jitter = v }

// ViaSink hands an unseeded draw to a callee whose summary marks the
// parameter as sink-reaching: flagged at the call site.
func ViaSink(r *SlotReport) {
	record(r, rand.Float64()) // want "unseeded rand.*passed to .*record, which stores it into a determinism-sensitive output"
}

// LitStore builds a report literal around a rand draw.
func LitStore() SlotReport {
	return SlotReport{Jitter: rand.Float64()} // want "unseeded rand.*stored into a dettaint.SlotReport literal"
}

// DrainStore stores whichever worker result drains first: completion order.
func DrainStore(r *SlotReport, results chan int) {
	for v := range results {
		r.Count = v // want "channel-drain order.*stored into dettaint.SlotReport.Count"
		break
	}
}

// ShuffleSort perturbs the sort key with an unseeded draw: the permutation
// differs run to run.
func ShuffleSort(xs []float64) {
	j := rand.Float64()
	sort.Slice(xs, func(a, b int) bool {
		return xs[a]+j < xs[b]+j // want "sort comparator reads j, which carries nondeterminism"
	})
}

// SeededOK draws from an explicitly seeded generator: a pure function of the
// seed, not flagged.
func SeededOK(r *SlotReport, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	r.Jitter = rng.Float64()
}

// CountOK stores a pure function of the inputs: not flagged.
func CountOK(r *SlotReport, xs []int) {
	r.Count = len(xs)
}

// MapOrderOK: map-iteration taint is tracked through summaries but
// deliberately not reported at sinks — the commutative-merge / sorted-after
// idioms that make it safe are sequence-sensitive, and the per-file maporder
// analyzer owns that class.
func MapOrderOK(r *SlotReport, m map[int]int) {
	total := 0
	for k := range m {
		total += k
	}
	r.Count = total
}

// WaivedStamp keeps a deliberate timestamp under a waiver.
func WaivedStamp(r *SlotReport) {
	//birplint:ignore dettaint // telemetry field, excluded from byte-identity comparisons
	r.Stamp = time.Now().UnixNano() // wantwaived "wall clock.*stored into dettaint.SlotReport.Stamp"
}
