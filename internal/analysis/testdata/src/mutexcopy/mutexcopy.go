// Package mutexcopy seeds the mutexcopy analyzer: by-value receivers,
// parameters, assignments, and range clauses that copy lock-bearing structs
// must be flagged; pointers and fresh composite literals must not.
package mutexcopy

import "sync"

// Guarded embeds a mutex by value.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Nested embeds Guarded, so it is lock-bearing transitively.
type Nested struct {
	g Guarded
}

// ValueReceiver copies the lock on every call.
func (g Guarded) ValueReceiver() int { // want "receiver of lock-bearing type"
	return g.n
}

// PointerReceiver is the correct form: not flagged.
func (g *Guarded) PointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// ValueParam copies the caller's lock into the callee.
func ValueParam(g Guarded) int { // want "parameter of lock-bearing type"
	return g.n
}

// PointerParam is fine: not flagged.
func PointerParam(g *Guarded) int { return g.n }

// CopyAssign duplicates an existing lock-bearing value.
func CopyAssign(g *Guarded) {
	shadow := *g // want "copies lock-bearing value"
	_ = shadow
}

// CopyNested catches transitive lock fields.
func CopyNested(n Nested) { // want "parameter of lock-bearing type"
	local := n // want "copies lock-bearing value"
	_ = local
}

// FreshLiteral constructs a new value, which is fine: not flagged.
func FreshLiteral() *Guarded {
	g := Guarded{n: 1}
	return &g
}

// RangeCopy copies each element's lock into the loop variable.
func RangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want "range copies lock-bearing elements"
		total += g.n
	}
	return total
}

// RangeIndex iterates by index, which is fine: not flagged.
func RangeIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// Waived keeps a deliberate copy under the waiver.
func Waived(g *Guarded) {
	//birplint:ignore mutexcopy
	shadow := *g // wantwaived "copies lock-bearing value"
	_ = shadow
}
