// Package maporder seeds positive and negative cases for the maporder
// analyzer: map ranges whose iteration order escapes into slices, ordered
// output, float accumulators, or solver input must be flagged; sorted-key
// idioms and order-free aggregation must not.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis/testdata/src/lp"
)

// AppendUnsorted leaks map order into a slice that outlives the loop.
func AppendUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "appends to out"
		out = append(out, v)
	}
	return out
}

// CollectThenSort is the canonical deterministic idiom and must not be
// flagged: keys are collected and sorted before use.
func CollectThenSort(m map[int]string) []string {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// PrintDirect writes ordered output in map order.
func PrintDirect(m map[string]int) {
	for k, v := range m { // want "fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// BuildString writes into a strings.Builder in map order.
func BuildString(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "method WriteString"
		b.WriteString(k)
	}
	return b.String()
}

// AccumulateFloat sums float64 values in map order; float addition is not
// associative, so the low bits depend on iteration order.
func AccumulateFloat(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "accumulates float total"
		total += v
	}
	return total
}

// AccumulateInt sums integers, which is exact and commutative: not flagged.
func AccumulateInt(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// FeedSolver hands coefficients to an lp package in map order.
func FeedSolver(m map[int]float64) {
	for _, v := range m { // want "feeds solver package lp"
		lp.Feed(v)
	}
}

// WaivedPrint is deliberately order-dependent and carries the waiver.
func WaivedPrint(m map[string]int) {
	//birplint:ordered
	for k, v := range m { // wantwaived "fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// MaxValue is an order-free reduction over a map: not flagged.
func MaxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
