package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the forward dataflow/taint engine behind the interprocedural
// analyzers. Facts are bitmasks over a small lattice:
//
//   - four intrinsic source bits (wall clock, unseeded rand, map iteration
//     order, channel-drain completion order) mark values that can differ
//     between two runs on identical inputs;
//   - one bit per parameter (receiver first) marks values derived from that
//     parameter, which is how facts cross call boundaries: a function's
//     Summary says which parameters reach its returns, its sink writes, and
//     so on, and callers substitute argument masks for parameter bits.
//
// Summaries are computed to a module-wide fixpoint over the call graph: every
// function is re-summarized with its callees' current summaries until nothing
// changes. Masks only ever gain bits and the lattice is finite, so the
// fixpoint terminates; maxFixpointIters is a backstop, and the iteration
// count is exported so analysis-cost regressions show up in lint reports.
//
// Precision stance (documented, deliberate):
//   - flow- and path-insensitive: a variable tainted anywhere in a function
//     is tainted everywhere in it;
//   - field-insensitive: writing a tainted value into x.F taints all of x;
//   - unresolved calls (stdlib, computed function values) conservatively
//     pass argument taint through to their results but are assumed not to
//     store arguments into determinism-sensitive fields.

// taint is a fact bitmask: intrinsic source bits plus per-parameter bits.
type taint uint64

const (
	taintClock     taint = 1 << iota // time.Now / time.Since / time.Until
	taintRand                        // package-level math/rand draws (unseeded global source)
	taintMapOrder                    // map iteration order
	taintChanOrder                   // channel-drain / goroutine-completion order
	numSourceBits  = 4
	maxTaintParams = 59 // bits beyond this collapse onto the last tracked one
)

const intrinsicMask taint = 1<<numSourceBits - 1

// All four intrinsic bits are tracked through summaries, but dettaint only
// REPORTS a subset:
//
//   - sinks report clock, rand, and chan-order. Map iteration order is
//     excluded: flow- and field-insensitive propagation smears one map range
//     over everything downstream (every Plan transitively touches one), and
//     the sequence-sensitive per-file maporder analyzer already owns that
//     class with sorted-after detection. The bit still flows through
//     summaries so tests and future sequence-sensitive reporting can see it;
//   - comparators report clock and rand only: a comparator reading
//     map/chan-ordered data over a total-order key is not a bug, it is the
//     normalization idiom — sorting is how that taint gets cleansed.
const (
	reportSinkMask = taintClock | taintRand | taintChanOrder
	reportCmpMask  = taintClock | taintRand
)

func paramBit(i int) taint {
	if i >= maxTaintParams {
		i = maxTaintParams - 1
	}
	return 1 << (numSourceBits + i)
}

func intrinsicOf(m taint) taint { return m & intrinsicMask }
func paramsOf(m taint) taint    { return m &^ intrinsicMask }

// kindString names the intrinsic sources in a mask, for diagnostics.
func kindString(m taint) string {
	var parts []string
	if m&taintClock != 0 {
		parts = append(parts, "wall clock")
	}
	if m&taintRand != 0 {
		parts = append(parts, "unseeded rand")
	}
	if m&taintMapOrder != 0 {
		parts = append(parts, "map iteration order")
	}
	if m&taintChanOrder != 0 {
		parts = append(parts, "channel-drain order")
	}
	if len(parts) == 0 {
		return "nondeterminism"
	}
	return strings.Join(parts, ", ")
}

// Summary is one function's interprocedural fact set. All fields are masks
// whose parameter bits refer to Func.Params positions (receiver first).
type Summary struct {
	// Ret: intrinsic bits that can reach a return value, plus parameter bits
	// whose argument can flow to a return value.
	Ret taint
	// Sink: parameter bits whose argument is stored (possibly transitively)
	// into a determinism-sensitive output field (Plan/Report/Stats/Summary).
	Sink taint
	// Writes: parameter bits the function writes through (pointer, slice,
	// map, or field store through the parameter), directly or transitively.
	Writes taint
	// Signals: parameter bits the function completes through — closes or
	// sends on a channel parameter, or calls Done on a WaitGroup parameter.
	Signals taint
	// Conc: parameter bits of function-typed parameters the function invokes
	// on a spawned goroutine (directly or by forwarding to another Conc
	// callee). par.ForEach's fn parameter carries this bit.
	Conc taint
}

const (
	maxFixpointIters = 32
	maxLocalPasses   = 8
)

// computeSummaries drives the module fixpoint; it returns the number of
// whole-module iterations it took to stabilize.
func computeSummaries(m *Module) int {
	for iter := 1; iter <= maxFixpointIters; iter++ {
		changed := false
		for _, fn := range m.Graph.Funcs {
			s := summarize(m, fn, nil)
			if s != fn.Summary {
				fn.Summary = s
				changed = true
			}
		}
		if !changed {
			return iter
		}
	}
	return maxFixpointIters
}

// summarize runs the intraprocedural analysis of fn with its callees' current
// summaries. With p non-nil it additionally reports dettaint findings (direct
// and call-mediated sink writes of intrinsically tainted values, and tainted
// sort comparators) on a final sweep over the stabilized state.
func summarize(m *Module, fn *Func, p *ModulePass) Summary {
	fs := &funcState{
		m:       m,
		fn:      fn,
		info:    fn.Unit.Info,
		vt:      map[types.Object]taint{},
		paramIx: map[types.Object]int{},
	}
	for i, v := range fn.Params {
		fs.paramIx[v] = i
		fs.vt[v] = paramBit(i)
	}
	for pass := 0; pass < maxLocalPasses; pass++ {
		fs.changed = false
		fs.stmt(fn.Decl.Body, false)
		if !fs.changed {
			break
		}
	}
	if p != nil {
		fs.report = p
		fs.stmt(fn.Decl.Body, false)
	}
	return fs.sum
}

// funcState is one function's in-flight analysis.
type funcState struct {
	m       *Module
	fn      *Func
	info    *types.Info
	vt      map[types.Object]taint // variable → accumulated taint
	paramIx map[types.Object]int
	sum     Summary
	changed bool
	report  *ModulePass // non-nil only on the dettaint reporting sweep
}

func (fs *funcState) mark(obj types.Object, m taint) {
	if obj == nil || m == 0 {
		return
	}
	if fs.vt[obj]|m != fs.vt[obj] {
		fs.vt[obj] |= m
		fs.changed = true
	}
}

// rootObj unwraps an expression to the identifier object it is rooted at
// (x, x.F, x[i], *x, &x, x.(T) all root at x); nil when the root is not a
// simple identifier (call results, literals).
func (fs *funcState) rootObj(e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			e = v.X
		case *ast.Ident:
			return fs.info.ObjectOf(v)
		default:
			return nil
		}
	}
}

// --- statements ---

func (fs *funcState) stmt(s ast.Stmt, inGo bool) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, x := range st.List {
			fs.stmt(x, inGo)
		}
	case *ast.LabeledStmt:
		fs.stmt(st.Stmt, inGo)
	case *ast.ExprStmt:
		fs.eval(st.X, inGo)
	case *ast.AssignStmt:
		fs.assign(st.Lhs, st.Rhs, st.Tok, inGo)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				fs.assign(lhs, vs.Values, token.DEFINE, inGo)
			}
		}
	case *ast.IncDecStmt:
		fs.eval(st.X, inGo)
	case *ast.SendStmt:
		mv := fs.eval(st.Value, inGo)
		fs.eval(st.Chan, inGo)
		root := fs.rootObj(st.Chan)
		fs.mark(root, mv)
		if pi, ok := fs.paramIx[root]; ok {
			fs.sum.Signals |= paramBit(pi)
		}
	case *ast.GoStmt:
		fs.spawn(st.Call)
	case *ast.DeferStmt:
		fs.eval(st.Call, inGo)
	case *ast.ReturnStmt:
		if len(st.Results) == 0 {
			// Naked return: union the named results.
			if ft := fs.fn.Decl.Type.Results; ft != nil {
				for _, f := range ft.List {
					for _, name := range f.Names {
						fs.sum.Ret |= fs.vt[fs.info.ObjectOf(name)]
					}
				}
			}
			return
		}
		for _, r := range st.Results {
			fs.sum.Ret |= fs.eval(r, inGo)
		}
	case *ast.IfStmt:
		fs.stmt(st.Init, inGo)
		fs.eval(st.Cond, inGo)
		fs.stmt(st.Body, inGo)
		fs.stmt(st.Else, inGo)
	case *ast.ForStmt:
		fs.stmt(st.Init, inGo)
		if st.Cond != nil {
			fs.eval(st.Cond, inGo)
		}
		fs.stmt(st.Post, inGo)
		fs.stmt(st.Body, inGo)
	case *ast.RangeStmt:
		fs.rangeStmt(st, inGo)
	case *ast.SwitchStmt:
		fs.stmt(st.Init, inGo)
		if st.Tag != nil {
			fs.eval(st.Tag, inGo)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					fs.eval(e, inGo)
				}
				for _, b := range cc.Body {
					fs.stmt(b, inGo)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		fs.stmt(st.Init, inGo)
		var assertMask taint
		if as, ok := st.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			assertMask = fs.eval(as.Rhs[0], inGo)
		} else if es, ok := st.Assign.(*ast.ExprStmt); ok {
			assertMask = fs.eval(es.X, inGo)
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			// The per-clause implicit binding inherits the asserted value's
			// taint.
			if obj := fs.info.Implicits[cc]; obj != nil {
				fs.mark(obj, assertMask)
			}
			for _, b := range cc.Body {
				fs.stmt(b, inGo)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				fs.stmt(cc.Comm, inGo)
				for _, b := range cc.Body {
					fs.stmt(b, inGo)
				}
			}
		}
	}
}

// spawn handles `go call`: argument masks bind to the literal's parameters
// and the body is walked in goroutine context (for Conc detection).
func (fs *funcState) spawn(call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		fs.bindLitArgs(lit, call)
		fs.walkLit(lit, true)
		return
	}
	// `go f(...)` / `go x.m(...)`: an ordinary call evaluation, except a
	// parameter function launched directly gets its Conc bit.
	if obj := fs.rootObj(call.Fun); obj != nil {
		if pi, ok := fs.paramIx[obj]; ok {
			if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
				fs.sum.Conc |= paramBit(pi)
			}
		}
	}
	fs.evalCall(call, true)
}

// bindLitArgs propagates call-site argument taint onto a literal's parameters.
func (fs *funcState) bindLitArgs(lit *ast.FuncLit, call *ast.CallExpr) {
	var params []*ast.Ident
	for _, f := range lit.Type.Params.List {
		params = append(params, f.Names...)
	}
	for i, arg := range call.Args {
		if i < len(params) {
			fs.mark(fs.info.ObjectOf(params[i]), fs.eval(arg, false))
		}
	}
}

// walkLit analyzes a function literal's body in the enclosing function's
// state (captured variables are shared).
func (fs *funcState) walkLit(lit *ast.FuncLit, inGo bool) {
	fs.stmt(lit.Body, inGo)
}

func (fs *funcState) rangeStmt(st *ast.RangeStmt, inGo bool) {
	xMask := fs.eval(st.X, inGo)
	var keyMask, valMask taint
	t := fs.info.TypeOf(st.X)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			keyMask = xMask | taintMapOrder
			valMask = xMask | taintMapOrder
		case *types.Chan:
			keyMask = xMask | taintChanOrder
		default:
			// slice/array/string/int: positions are deterministic; elements
			// inherit the container's taint.
			valMask = xMask
		}
	}
	assignVar := func(e ast.Expr, m taint) {
		if e == nil {
			return
		}
		if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
			return
		}
		fs.mark(fs.rootObj(e), m)
	}
	assignVar(st.Key, keyMask)
	assignVar(st.Value, valMask)
	fs.stmt(st.Body, inGo)
}

func (fs *funcState) assign(lhs, rhs []ast.Expr, tok token.Token, inGo bool) {
	masks := make([]taint, len(lhs))
	if len(rhs) == 1 && len(lhs) > 1 {
		m := fs.eval(rhs[0], inGo)
		for i := range masks {
			masks[i] = m
		}
	} else {
		for i := range lhs {
			if i < len(rhs) {
				masks[i] = fs.eval(rhs[i], inGo)
			}
		}
	}
	for i, l := range lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		mask := masks[i]
		if tok != token.ASSIGN && tok != token.DEFINE {
			// Compound assignment reads the target too.
			mask |= fs.eval(l, inGo)
		}
		root := fs.rootObj(l)
		if _, plain := l.(*ast.Ident); !plain {
			fs.eval(l, inGo) // subscripts etc. may contain calls
			if pi, ok := fs.paramIx[root]; ok {
				fs.sum.Writes |= paramBit(pi)
			}
			if field := fs.sinkField(l); field != "" {
				fs.sum.Sink |= paramsOf(mask)
				if fs.report != nil && mask&reportSinkMask != 0 {
					fs.report.Reportf(l.Pos(), "nondeterministic value (%s) is stored into %s; determinism-sensitive outputs must be pure functions of the inputs — derive it deterministically or waive with //birplint:ignore dettaint",
						kindString(mask&reportSinkMask), field)
				}
			}
		}
		fs.mark(root, mask)
	}
}

// sinkField reports a non-empty description when lhs writes a field of a
// determinism-sensitive output type (named *Plan/*Report/*Stats/*Summary)
// anywhere along its access chain.
func (fs *funcState) sinkField(lhs ast.Expr) string {
	for {
		switch v := lhs.(type) {
		case *ast.ParenExpr:
			lhs = v.X
		case *ast.IndexExpr:
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		case *ast.SelectorExpr:
			if name := sinkTypeName(fs.info.TypeOf(v.X)); name != "" {
				return name + "." + v.Sel.Name
			}
			lhs = v.X
		default:
			return ""
		}
	}
}

// sinkSuffixes are the output-type name suffixes whose fields every consumer
// (bench JSON, reports, solver stats merges) expects to be reproducible.
var sinkSuffixes = []string{"Plan", "Report", "Stats", "Summary"}

// sinkTypeName returns the qualified name of t when it is (a pointer to) a
// named determinism-sensitive output struct, else "".
func sinkTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	name := n.Obj().Name()
	for _, suf := range sinkSuffixes {
		if strings.HasSuffix(name, suf) {
			if pkg := n.Obj().Pkg(); pkg != nil {
				return pathTail(pkg.Path()) + "." + name
			}
			return name
		}
	}
	return ""
}

// --- expressions ---

func (fs *funcState) eval(e ast.Expr, inGo bool) taint {
	switch v := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		return fs.vt[fs.info.ObjectOf(v)]
	case *ast.BasicLit:
		return 0
	case *ast.ParenExpr:
		return fs.eval(v.X, inGo)
	case *ast.SelectorExpr:
		// Qualified package identifiers have no value taint.
		if id, ok := v.X.(*ast.Ident); ok {
			if _, isPkg := fs.info.ObjectOf(id).(*types.PkgName); isPkg {
				return 0
			}
		}
		return fs.eval(v.X, inGo)
	case *ast.IndexExpr:
		return fs.eval(v.X, inGo) | fs.eval(v.Index, inGo)
	case *ast.SliceExpr:
		return fs.eval(v.X, inGo) | fs.eval(v.Low, inGo) | fs.eval(v.High, inGo) | fs.eval(v.Max, inGo)
	case *ast.StarExpr:
		return fs.eval(v.X, inGo)
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			// A single blocking receive yields whatever the sender sent; the
			// value itself inherits the channel's taint but not a new order
			// bit (ordering hazards come from drains, i.e. range-over-chan).
			return fs.eval(v.X, inGo)
		}
		return fs.eval(v.X, inGo)
	case *ast.BinaryExpr:
		return fs.eval(v.X, inGo) | fs.eval(v.Y, inGo)
	case *ast.TypeAssertExpr:
		return fs.eval(v.X, inGo)
	case *ast.KeyValueExpr:
		return fs.eval(v.Value, inGo)
	case *ast.CompositeLit:
		var m taint
		for _, elt := range v.Elts {
			em := fs.eval(elt, inGo)
			m |= em
			if name := sinkTypeName(fs.info.TypeOf(v)); name != "" {
				fs.sum.Sink |= paramsOf(em)
				if fs.report != nil && em&reportSinkMask != 0 {
					fs.report.Reportf(elt.Pos(), "nondeterministic value (%s) is stored into a %s literal; determinism-sensitive outputs must be pure functions of the inputs — derive it deterministically or waive with //birplint:ignore dettaint",
						kindString(em&reportSinkMask), name)
				}
			}
		}
		return m
	case *ast.FuncLit:
		// The literal's statements run in this function's scope; its value
		// carries no taint of its own.
		fs.walkLit(v, inGo)
		return 0
	case *ast.CallExpr:
		return fs.evalCall(v, inGo)
	default:
		return 0
	}
}

// sourceCall returns the intrinsic bit a call introduces, or 0.
func sourceCall(info *types.Info, call *ast.CallExpr) taint {
	if isPkgCall(info, call, "time", "Now", "Since", "Until") {
		return taintClock
	}
	obj := calleeObject(info, call)
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if path == "math/rand" || path == "math/rand/v2" {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				switch fn.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
					// Constructors of explicitly seeded generators.
				default:
					return taintRand
				}
			}
		}
	}
	return 0
}

func (fs *funcState) evalCall(call *ast.CallExpr, inGo bool) taint {
	// Type conversions pass their operand through.
	if tv, ok := fs.info.Types[call.Fun]; ok && tv.IsType() {
		var m taint
		for _, a := range call.Args {
			m |= fs.eval(a, inGo)
		}
		return m
	}

	obj := calleeObject(fs.info, call)
	if b, ok := obj.(*types.Builtin); ok {
		var m taint
		for _, a := range call.Args {
			m |= fs.eval(a, inGo)
		}
		if b.Name() == "close" {
			if pi, ok := fs.paramIx[fs.rootObj(call.Args[0])]; ok {
				fs.sum.Signals |= paramBit(pi)
			}
		}
		return m
	}

	if src := sourceCall(fs.info, call); src != 0 {
		for _, a := range call.Args {
			fs.eval(a, inGo)
		}
		return src
	}

	// sort.Slice / sort.SliceStable comparator: on the reporting sweep, a
	// comparator reading intrinsically nondeterministic state is a dettaint
	// finding — comparison results feed the permutation directly.
	if fs.report != nil && isPkgCall(fs.info, call, "sort", "Slice", "SliceStable") && len(call.Args) == 2 {
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
			fs.reportTaintedComparator(lit)
		}
	}

	// A parameter function invoked in goroutine context is concurrent.
	if pobj := fs.rootObj(call.Fun); pobj != nil {
		if pi, ok := fs.paramIx[pobj]; ok && inGo {
			if _, isFunc := pobj.Type().Underlying().(*types.Signature); isFunc {
				fs.sum.Conc |= paramBit(pi)
			}
		}
	}

	// Argument expressions, receiver first when the call is a method call
	// through a selector.
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := fs.info.Selections[sel]; isSel {
			args = append(args, sel.X)
		}
	}
	args = append(args, call.Args...)
	argMasks := make([]taint, len(args))
	for i, a := range args {
		argMasks[i] = fs.eval(a, inGo)
	}

	resolved := fs.m.Graph.Resolve(call)
	if resolved == nil {
		// Unknown callee (stdlib or computed value): conservative
		// pass-through of argument and receiver taint, plus the WaitGroup
		// completion signal.
		var m taint
		for _, am := range argMasks {
			m |= am
		}
		fs.noteWaitGroupDone(call)
		return m
	}

	var res taint
	for _, callee := range resolved.Callees {
		s := callee.Summary
		res |= intrinsicOf(s.Ret)
		for ai, am := range argMasks {
			pi := ai
			if len(callee.Params) == 0 {
				break
			}
			if pi >= len(callee.Params) {
				pi = len(callee.Params) - 1 // variadic tail
			}
			bit := paramBit(pi)
			if s.Ret&bit != 0 {
				res |= am
			}
			if s.Sink&bit != 0 {
				fs.sum.Sink |= paramsOf(am)
				if fs.report != nil && am&reportSinkMask != 0 {
					fs.report.Reportf(args[ai].Pos(), "nondeterministic value (%s) is passed to %s, which stores it into a determinism-sensitive output field; derive it deterministically or waive with //birplint:ignore dettaint",
						kindString(am&reportSinkMask), callee.ID)
				}
			}
			root := fs.rootObj(args[ai])
			if rpi, isParam := fs.paramIx[root]; isParam {
				if s.Writes&bit != 0 {
					fs.sum.Writes |= paramBit(rpi)
				}
				if s.Signals&bit != 0 {
					fs.sum.Signals |= paramBit(rpi)
				}
				if s.Conc&bit != 0 {
					if _, isFunc := root.Type().Underlying().(*types.Signature); isFunc {
						fs.sum.Conc |= paramBit(rpi)
					}
				}
			}
		}
	}
	return res
}

// noteWaitGroupDone records the Signals fact for wg.Done() on a WaitGroup
// parameter (sync is outside the module, so it has no summary).
func (fs *funcState) noteWaitGroupDone(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return
	}
	if !isWaitGroup(fs.info.TypeOf(sel.X)) {
		return
	}
	if pi, ok := fs.paramIx[fs.rootObj(sel.X)]; ok {
		fs.sum.Signals |= paramBit(pi)
	}
}

// isWaitGroup reports whether t is (a pointer to) sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "WaitGroup" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// reportTaintedComparator flags identifiers with intrinsic taint inside a
// sort comparator literal.
func (fs *funcState) reportTaintedComparator(lit *ast.FuncLit) {
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := fs.info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if m := fs.vt[obj] & reportCmpMask; m != 0 {
			fs.report.Reportf(id.Pos(), "sort comparator reads %s, which carries nondeterminism (%s); the resulting permutation differs run to run — sort a deterministic key or waive with //birplint:ignore dettaint",
				id.Name, kindString(m))
			reported = true
			return false
		}
		return true
	})
}
