package analysis

import (
	"go/ast"
	"strings"
)

// DroppedErr flags call statements (plain, go, and defer) that discard an
// error returned by an intra-module function. A swallowed solver error is a
// correctness hazard here: the deterministic engines report the
// lowest-indexed failure, and a dropped error turns "solve failed" into
// "solution is silently stale". Explicitly assigning to _ is treated as a
// visible, greppable discard and is not flagged; external-package calls
// (fmt.Println and friends) are the caller's business. Test files are exempt.
var DroppedErr = &Analyzer{
	Name:      "droppederr",
	Doc:       "flags discarded error returns from intra-module calls",
	SkipTests: true,
	Run:       runDroppedErr,
}

func runDroppedErr(p *Pass) {
	check := func(call *ast.CallExpr, how string) {
		obj := calleeObject(p.Unit.Info, call)
		if obj == nil || obj.Pkg() == nil {
			return
		}
		path := obj.Pkg().Path()
		if path != p.Unit.ModulePath && !strings.HasPrefix(path, p.Unit.ModulePath+"/") {
			return
		}
		if !returnsError(p.Unit.Info, call) {
			return
		}
		p.Reportf(call.Pos(), "%s discards the error from %s.%s; handle it or assign it to _ explicitly",
			how, pathTail(path), obj.Name())
	}
	for _, f := range p.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "call statement")
				}
			case *ast.GoStmt:
				check(st.Call, "go statement")
			case *ast.DeferStmt:
				check(st.Call, "defer statement")
			}
			return true
		})
	}
}
