package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LoopCapture flags goroutine (and deferred) closures in loop bodies that
// capture the loop variable instead of receiving it as an argument. Since Go
// 1.22 loop variables are per-iteration so this is no longer the classic
// data race, but the fan-out code in this module standardizes on explicit
// parameters (see par.ForEach handing each goroutine its worker index): the
// dependence on iteration state is visible in the signature, and the code
// stays correct if it is ever vendored into a pre-1.22 module.
var LoopCapture = &Analyzer{
	Name: "loopcapture",
	Doc:  "flags goroutine closures capturing loop variables in fan-out code",
	Run:  runLoopCapture,
}

func runLoopCapture(p *Pass) {
	for _, f := range p.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var vars map[types.Object]bool
			var body *ast.BlockStmt
			switch st := n.(type) {
			case *ast.RangeStmt:
				if st.Tok != token.DEFINE {
					return true
				}
				vars = loopVarObjects(p, st.Key, st.Value)
				body = st.Body
			case *ast.ForStmt:
				if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					vars = loopVarObjects(p, init.Lhs...)
				}
				body = st.Body
			default:
				return true
			}
			if len(vars) == 0 {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				var lit *ast.FuncLit
				switch sp := m.(type) {
				case *ast.GoStmt:
					lit, _ = ast.Unparen(sp.Call.Fun).(*ast.FuncLit)
				case *ast.DeferStmt:
					lit, _ = ast.Unparen(sp.Call.Fun).(*ast.FuncLit)
				}
				if lit == nil {
					return true
				}
				ast.Inspect(lit.Body, func(b ast.Node) bool {
					id, ok := b.(*ast.Ident)
					if !ok {
						return true
					}
					if obj := p.Unit.Info.Uses[id]; obj != nil && vars[obj] {
						p.Reportf(id.Pos(), "goroutine closure captures loop variable %s; pass it as an argument like par.ForEach does", id.Name)
					}
					return true
				})
				return true
			})
			return true
		})
	}
}

func loopVarObjects(p *Pass, exprs ...ast.Expr) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := p.Unit.Info.Defs[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}
