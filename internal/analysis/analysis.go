// Package analysis is birplint's engine: a small multichecker built purely on
// the standard library's go/ast, go/parser, go/token, and go/types (no
// golang.org/x/tools, preserving the module's stdlib-only pledge). It loads
// every package in the module, runs a set of analyzers tuned to the
// determinism and numeric-correctness invariants the BIRP solver stack
// promises (byte-identical output for every worker count), and reports
// findings with file:line positions.
//
// The rules the analyzers enforce exist because the scheduler's headline
// guarantee — parallelism never changes results — is otherwise unenforced
// convention: one unsorted map range in an aggregation path or one raw float
// == in a solver makes runs incomparable. See DESIGN.md, "Determinism rules
// and how they are enforced".
//
// Waivers: a site that is deliberately exempt carries a comment on the same
// line or the line directly above it:
//
//	//birplint:ordered            waives maporder at that site
//	//birplint:ignore name1,name2 waives the named analyzers
//	//birplint:ignore             waives every analyzer at that site
//
// Waived findings are still collected (and counted in the JSON report) but do
// not fail the run.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	// Waived marks findings suppressed by a //birplint: comment; they are
	// reported for visibility but do not make the run fail.
	Waived bool `json:"waived"`
}

func (d Diagnostic) String() string {
	suffix := ""
	if d.Waived {
		suffix = " (waived)"
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s%s", d.File, d.Line, d.Col, d.Analyzer, d.Message, suffix)
}

// Analyzer is one lint rule. Run inspects the unit reachable through the pass
// and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	// SkipTests drops findings positioned in _test.go files: test code is
	// allowed to compare floats exactly, time itself, and drop errors.
	SkipTests bool
	// Run is the per-unit entry point (intra-file analyzers). RunModule is
	// the whole-module entry point (interprocedural analyzers); it sees the
	// call graph and summary table through the ModulePass. An analyzer sets
	// exactly one of the two.
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// All returns the full analyzer registry in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		FloatEq,
		WallClock,
		DroppedErr,
		MutexCopy,
		LoopCapture,
		DetTaint,
		SharedWrite,
		GoroLeak,
		CmpTotal,
	}
}

// ByName resolves a comma-separated analyzer list against the registry.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Pass carries one analyzer's traversal of one unit.
type Pass struct {
	Unit     *Unit
	Analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Unit.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Unit.Info == nil {
		return nil
	}
	return p.Unit.Info.TypeOf(e)
}

// ObjectOf is a nil-safe Info.ObjectOf.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Unit.Info == nil {
		return nil
	}
	return p.Unit.Info.ObjectOf(id)
}

// Analyze runs the analyzers over the unit and returns the findings sorted by
// position, with waivers applied and test-file findings dropped where the
// analyzer asks for it.
func Analyze(u *Unit, analyzers []*Analyzer) []Diagnostic {
	waived := collectWaivers(u)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue // module-scoped analyzer; see AnalyzeModule
		}
		pass := &Pass{Unit: u, Analyzer: a}
		a.Run(pass)
		for _, d := range pass.diags {
			if u.OnlyFiles != nil && !u.OnlyFiles[d.File] {
				continue
			}
			if a.SkipTests && strings.HasSuffix(d.File, "_test.go") {
				continue
			}
			d.Waived = waived.covers(d.File, d.Line, a.Name)
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders findings by position then analyzer name — the
// stable order both Analyze and AnalyzeModule report in.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// waiverSet maps file → line → analyzer names waived there ("*" = all).
type waiverSet map[string]map[int][]string

// covers reports whether a finding by analyzer at (file, line) is waived: the
// waiver comment may sit on the finding's own line or the line directly above.
func (w waiverSet) covers(file string, line int, analyzer string) bool {
	lines := w[file]
	if lines == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		for _, name := range lines[l] {
			if name == "*" || name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectWaivers scans every comment in the unit for //birplint: directives.
func collectWaivers(u *Unit) waiverSet {
	ws := waiverSet{}
	add := func(pos token.Pos, names ...string) {
		p := u.Fset.Position(pos)
		if ws[p.Filename] == nil {
			ws[p.Filename] = map[int][]string{}
		}
		ws[p.Filename][p.Line] = append(ws[p.Filename][p.Line], names...)
	}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//birplint:")
				if !ok {
					continue
				}
				directive, rest, _ := strings.Cut(strings.TrimSpace(text), " ")
				switch directive {
				case "ordered":
					add(c.Pos(), MapOrder.Name)
				case "ignore":
					rest = strings.TrimSpace(rest)
					if rest == "" {
						add(c.Pos(), "*")
						continue
					}
					for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
						return r == ',' || r == ' '
					}) {
						add(c.Pos(), name)
					}
				}
			}
		}
	}
	return ws
}

// --- shared AST/type helpers used by several analyzers ---

// pathTail returns the last element of an import path.
func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeObject resolves the object a call expression invokes (function,
// method, or builtin), or nil when it cannot be determined (e.g. a call of a
// computed function value).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgCall reports whether call invokes pkgPath's function with one of the
// given names (empty names = any function of that package).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// returnsError reports whether the call's result tuple includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if types.Implements(rt.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Implements(rt, errorType)
	}
}
