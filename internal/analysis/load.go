package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one analyzed compilation unit: a package's parsed files plus the
// type information birplint's analyzers query. A directory with in-package
// test files yields a test-augmented unit (GoFiles + TestGoFiles, with
// OnlyFiles restricted to nothing — all files are reported); a directory with
// external test files additionally yields a <pkg>_test unit.
type Unit struct {
	// Path is the unit's import path (the _test suffix marks an external
	// test package).
	Path string
	// Dir is the absolute directory the files came from.
	Dir        string
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// OnlyFiles, when non-nil, restricts reporting to these absolute
	// filenames (used when a unit re-typechecks files another unit already
	// reported on).
	OnlyFiles map[string]bool
}

// Loader loads and typechecks the module's packages without golang.org/x/tools:
// directories are resolved with go/build, module-internal imports are
// typechecked recursively from source, and everything else (the standard
// library) is delegated to the stdlib source importer.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	ctx     build.Context
	std     types.Importer
	base    map[string]*types.Package // import path → GoFiles-only package
	loading map[string]bool
}

// NewLoader roots a loader at the directory containing go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	modulePath, err := readModulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	// The stdlib source importer reads build.Default; disabling cgo there
	// makes packages like net resolve to their pure-Go variants, which is
	// both hermetic and deterministic.
	build.Default.CgoEnabled = false
	ctx := build.Default
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modulePath,
		Fset:       fset,
		ctx:        ctx,
		std:        importer.ForCompiler(fset, "source", nil),
		base:       map[string]*types.Package{},
		loading:    map[string]bool{},
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if path, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(path), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Walk collects every package directory under root, skipping testdata,
// hidden, and underscore-prefixed directories the go tool also ignores. The
// root itself is always considered even when it sits inside a testdata tree,
// so fixture packages can be linted by naming them explicitly.
func (l *Loader) Walk(root string) ([]string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Load turns each directory into its analysis units. Directories without
// buildable Go files are skipped silently; any parse or type error aborts the
// load (the tree is expected to build).
func (l *Loader) Load(dirs []string) ([]*Unit, error) {
	var units []*Unit
	for _, dir := range dirs {
		us, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

func (l *Loader) loadDir(dir string) ([]*Unit, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	path := l.dirImportPath(dir)
	var units []*Unit

	if len(bp.GoFiles) > 0 {
		files := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
		pkg, info, asts, err := l.checkFiles(path, dir, files)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			Path: path, Dir: dir, ModulePath: l.ModulePath,
			Fset: l.Fset, Files: asts, Pkg: pkg, Info: info,
		})
	}
	if len(bp.XTestGoFiles) > 0 {
		pkg, info, asts, err := l.checkFiles(path+"_test", dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			Path: path + "_test", Dir: dir, ModulePath: l.ModulePath,
			Fset: l.Fset, Files: asts, Pkg: pkg, Info: info,
		})
	}
	return units, nil
}

func (l *Loader) dirImportPath(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) moduleLocal(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// Import implements types.Importer: module-internal paths are typechecked
// from source (GoFiles only, so test files can never create import cycles),
// everything else goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.moduleLocal(path) {
		return l.importBase(path)
	}
	return l.std.Import(path)
}

// importBase loads the GoFiles-only variant of a module package, memoized.
func (l *Loader) importBase(path string) (*types.Package, error) {
	if pkg, ok := l.base[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.ModuleRoot
	if path != l.ModulePath {
		dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %s: %w", path, err)
	}
	pkg, _, _, err := l.checkFiles(path, dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	l.base[path] = pkg
	return pkg, nil
}

func (l *Loader) checkFiles(path, dir string, files []string) (*types.Package, *types.Info, []*ast.File, error) {
	var asts []*ast.File
	for _, f := range files {
		parsed, err := parser.ParseFile(l.Fset, filepath.Join(dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("analysis: parse %s: %w", f, err)
		}
		asts = append(asts, parsed)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.Fset, asts, info)
	if firstErr != nil {
		return nil, nil, nil, fmt.Errorf("analysis: typecheck %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	return pkg, info, asts, nil
}
