package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// solverPkgs are the packages whose inputs and outputs must be bit-identical
// run to run; map iteration order must never reach them.
var solverPkgs = map[string]bool{"lp": true, "miqp": true, "core": true}

// MapOrder flags `range` over a map whose body makes iteration order
// observable: appending to a slice that outlives the loop (without a
// subsequent sort of that slice in the same block), writing ordered output
// (fmt.Fprint*/Print*, Write*/AddRow method calls, io.WriteString),
// accumulating floating-point values (addition is not associative, so the
// sum's low bits depend on order), or calling into the lp/miqp/core solver
// packages. Inside the solver packages themselves every map range is flagged
// unless it is the collect-keys-then-sort idiom. Waive a deliberate site with
// //birplint:ordered.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose order can leak into output or solver input",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	inSolver := solverPkgs[pathTail(p.Unit.Path)]
	for _, f := range p.Unit.Files {
		// The blanket "no map iteration in solver packages" rule is for
		// production solve paths; tests iterate maps to assert properties,
		// which is harmless unless a specific hazard applies.
		solverFile := inSolver &&
			!strings.HasSuffix(p.Unit.Fset.Position(f.Pos()).Filename, "_test.go")
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMap(p.TypeOf(rs.X)) {
				return true
			}
			list, idx := enclosingStmtList(stack)
			checkMapRange(p, rs, list, idx, solverFile)
			return true
		})
	}
}

// enclosingStmtList finds the statement list directly containing the node on
// top of the stack, and its index there.
func enclosingStmtList(stack []ast.Node) ([]ast.Stmt, int) {
	if len(stack) < 2 {
		return nil, -1
	}
	top := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		var list []ast.Stmt
		switch parent := stack[i].(type) {
		case *ast.LabeledStmt:
			continue // the label wraps the statement; keep looking upward
		case *ast.BlockStmt:
			list = parent.List
		case *ast.CaseClause:
			list = parent.Body
		case *ast.CommClause:
			list = parent.Body
		default:
			return nil, -1
		}
		for j, s := range list {
			if s == top || unlabel(s) == top {
				return list, j
			}
		}
		return nil, -1
	}
	return nil, -1
}

func unlabel(s ast.Stmt) ast.Stmt {
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = ls.Stmt
	}
}

func checkMapRange(p *Pass, rs *ast.RangeStmt, list []ast.Stmt, idx int, inSolver bool) {
	var hazards []string

	declaredOutside := func(e ast.Expr) bool {
		base := e
		for {
			switch b := base.(type) {
			case *ast.SelectorExpr:
				base = b.X
				continue
			case *ast.IndexExpr:
				base = b.X
				continue
			case *ast.StarExpr:
				base = b.X
				continue
			case *ast.ParenExpr:
				base = b.X
				continue
			}
			break
		}
		id, ok := base.(*ast.Ident)
		if !ok {
			return true // conservatively treat unrecognized targets as escaping
		}
		obj := p.ObjectOf(id)
		if obj == nil {
			return true
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	}

	// isSortedAppend reports whether stmt is `x = append(x, ...)` (or multi-
	// assign of appends) into slices that outlive the loop and are sorted
	// after it — the collect-keys-then-sort idiom.
	isSortedAppend := func(s ast.Stmt) bool {
		as, ok := unlabel(s).(*ast.AssignStmt)
		if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) || len(as.Lhs) != len(as.Rhs) {
			return false
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				return false
			}
			obj := calleeObject(p.Unit.Info, call)
			if _, builtin := obj.(*types.Builtin); !builtin || obj.Name() != "append" {
				return false
			}
			if !declaredOutside(as.Lhs[i]) || !sortedAfter(p, list, idx, as.Lhs[i]) {
				return false
			}
		}
		return true
	}
	pureCollect := len(rs.Body.List) > 0
	for _, s := range rs.Body.List {
		if !isSortedAppend(s) {
			pureCollect = false
			break
		}
	}
	if pureCollect {
		return
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range st.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || i >= len(st.Lhs) {
						continue
					}
					obj := calleeObject(p.Unit.Info, call)
					if _, builtin := obj.(*types.Builtin); !builtin || obj.Name() != "append" {
						continue
					}
					if !declaredOutside(st.Lhs[i]) {
						continue
					}
					if sortedAfter(p, list, idx, st.Lhs[i]) {
						continue // the collect-keys-then-sort idiom
					}
					hazards = append(hazards, "appends to "+types.ExprString(st.Lhs[i])+" which outlives the loop unsorted")
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range st.Lhs {
					if isFloat(p.TypeOf(lhs)) && declaredOutside(lhs) {
						hazards = append(hazards, "accumulates float "+types.ExprString(lhs)+" in map order (float addition is order-dependent)")
					}
				}
			}
		case *ast.CallExpr:
			if h := orderedSinkCall(p, st); h != "" {
				hazards = append(hazards, h)
			} else if obj := calleeObject(p.Unit.Info, st); obj != nil {
				if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil &&
					fn.Pkg() != p.Unit.Pkg && solverPkgs[pathTail(fn.Pkg().Path())] {
					hazards = append(hazards, "feeds solver package "+pathTail(fn.Pkg().Path())+" ("+fn.Name()+") in map order")
				}
			}
		}
		return true
	})

	if inSolver && len(hazards) == 0 {
		hazards = append(hazards, "map iteration inside a solver package; sort the keys first")
	}
	for _, h := range hazards {
		p.Reportf(rs.Pos(), "range over map %s: %s; sort keys first or add //birplint:ordered",
			types.ExprString(rs.X), h)
	}
}

// orderedSinkCall reports a non-empty hazard description when call writes to
// an ordered sink.
func orderedSinkCall(p *Pass, call *ast.CallExpr) string {
	if isPkgCall(p.Unit.Info, call, "io", "WriteString") {
		return "writes ordered output via io.WriteString"
	}
	if obj := calleeObject(p.Unit.Info, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		name := obj.Name()
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return "writes ordered output via fmt." + name
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if _, isMethod := p.Unit.Info.Selections[sel]; !isMethod {
		return ""
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "AddRow":
		return "writes ordered output via method " + sel.Sel.Name
	}
	return ""
}

// sortedAfter reports whether a statement after index idx in list sorts the
// slice denoted by lhs (sort.Ints/Strings/Float64s/Slice/SliceStable/Sort or
// slices.Sort*), which makes a key-collecting map range deterministic.
func sortedAfter(p *Pass, list []ast.Stmt, idx int, lhs ast.Expr) bool {
	if list == nil || idx < 0 {
		return false
	}
	want := types.ExprString(lhs)
	for _, s := range list[idx+1:] {
		es, ok := unlabel(s).(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		obj := calleeObject(p.Unit.Info, call)
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		if pkg := obj.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			continue
		}
		for _, arg := range call.Args {
			a := ast.Unparen(arg)
			// Unwrap single-arg conversions/wrappers like sort.Sort(byX(v)).
			if c, ok := a.(*ast.CallExpr); ok && len(c.Args) == 1 {
				a = ast.Unparen(c.Args[0])
			}
			if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
				a = ast.Unparen(u.X)
			}
			if types.ExprString(a) == want {
				return true
			}
		}
	}
	return false
}
