package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != on floating-point operands, and switch statements
// over a floating-point tag. Raw float equality is the classic way solver
// refactors silently change behaviour: two mathematically equal quantities
// computed along different code paths differ in the last bit, so an exact
// comparison that used to hold stops holding. Comparisons belong in the
// shared tolerance helpers (mat.Eq, mat.Zero, mat.ApproxEqual,
// mat.VecApproxEqual); internal/mat itself — where the helpers and the
// pivot-magnitude checks live — and test files are exempt. Sites where exact
// comparison is the point (IEEE sentinel checks, skip-zero fast paths over
// values never produced by arithmetic) carry //birplint:ignore floateq.
var FloatEq = &Analyzer{
	Name:      "floateq",
	Doc:       "flags raw ==/!=/switch on float operands outside internal/mat and tests",
	SkipTests: true,
	Run:       runFloatEq,
}

func runFloatEq(p *Pass) {
	if pathTail(p.Unit.Path) == "mat" {
		return // the tolerance helpers themselves
	}
	for _, f := range p.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if isFloat(p.TypeOf(e.X)) || isFloat(p.TypeOf(e.Y)) {
					p.Reportf(e.OpPos, "%s on float operands (%s %s %s); use mat.Eq/mat.Zero or //birplint:ignore floateq",
						e.Op, types.ExprString(e.X), e.Op, types.ExprString(e.Y))
				}
			case *ast.SwitchStmt:
				if e.Tag != nil && isFloat(p.TypeOf(e.Tag)) {
					p.Reportf(e.Switch, "switch on float expression %s compares exactly; use tolerance comparisons",
						types.ExprString(e.Tag))
				}
			}
			return true
		})
	}
}
