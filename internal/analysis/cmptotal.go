package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CmpTotal vets sort.Slice / sort.SliceStable comparators for the properties
// a deterministic sort needs:
//
//   - irreflexivity: `<=` / `>=` on sort keys makes less(i,i) true, which is
//     undefined behavior for sort and can reorder equal elements differently
//     run to run (rule A);
//   - totality: a comparator that never reads one of its index parameters
//     cannot order anything (rule B);
//   - tie-breaks under sort.Slice (unstable): a single-key comparison leaves
//     equal-key elements in input-dependent order (rule D), and all-float
//     keys with no integral or index tie-break do the same for exactly equal
//     floats (rule C). sort.SliceStable is exempt from C/D — stability IS the
//     tie-break.
//
// This is the bug class the B&B (bound, depth, id) ordering and the
// hierarchical domain-index merges exist to prevent; see DESIGN.md.
var CmpTotal = &Analyzer{
	Name:      "cmptotal",
	Doc:       "sort comparator lacks a total order or deterministic tie-break",
	SkipTests: true,
	RunModule: runCmpTotal,
}

func runCmpTotal(p *ModulePass) {
	for _, fn := range p.Module.Graph.Funcs {
		info := fn.Unit.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			stable := isPkgCall(info, call, "sort", "SliceStable")
			if !stable && !isPkgCall(info, call, "sort", "Slice") {
				return true
			}
			if len(call.Args) != 2 {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
				checkComparator(p, info, lit, stable)
			}
			return true
		})
	}
}

func checkComparator(p *ModulePass, info *types.Info, lit *ast.FuncLit, stable bool) {
	var params []*ast.Ident
	for _, f := range lit.Type.Params.List {
		params = append(params, f.Names...)
	}
	if len(params) != 2 {
		return
	}
	iObj := info.ObjectOf(params[0])
	jObj := info.ObjectOf(params[1])

	usesParam := func(e ast.Expr, obj types.Object) bool {
		if obj == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
		return found
	}
	containsIndexByParam := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if ix, ok := n.(*ast.IndexExpr); ok {
				if usesParam(ix.Index, iObj) || usesParam(ix.Index, jObj) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// One classifying sweep over the body.
	var (
		usedI, usedJ  bool
		nonStrictPos  = token.NoPos
		elemCmp       int  // comparisons indexing by i or j
		nonFloatElems int  // ...whose operands are not both floats
		indexTieBreak bool // a direct i-vs-j comparison
	)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(v)
			if obj != nil && obj == iObj {
				usedI = true
			}
			if obj != nil && obj == jObj {
				usedJ = true
			}
		case *ast.BinaryExpr:
			switch v.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
			default:
				return true
			}
			elem := containsIndexByParam(v.X) || containsIndexByParam(v.Y)
			direct := isIdentObj(info, v.X, iObj, jObj) && isIdentObj(info, v.Y, iObj, jObj)
			if direct {
				indexTieBreak = true
			}
			if (elem || direct) && (v.Op == token.LEQ || v.Op == token.GEQ) && nonStrictPos == token.NoPos {
				nonStrictPos = v.OpPos
			}
			if elem {
				elemCmp++
				if !isFloat(info.TypeOf(v.X)) || !isFloat(info.TypeOf(v.Y)) {
					nonFloatElems++
				}
			}
		}
		return true
	})

	// singleKeyReturn: the whole body is one `return X < Y` / `return X > Y`.
	var singleKeyReturn *ast.BinaryExpr
	if len(lit.Body.List) == 1 {
		if ret, ok := lit.Body.List[0].(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if be, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr); ok &&
				(be.Op == token.LSS || be.Op == token.GTR) {
				singleKeyReturn = be
			}
		}
	}

	// Rule A: non-strict key comparison breaks irreflexivity.
	if nonStrictPos != token.NoPos {
		p.Reportf(nonStrictPos, "sort comparator uses a non-strict comparison (<= or >=): less(i,i) must be false; use < or > so equal elements have a defined order")
		return
	}
	// Rule B: an ignored index parameter cannot induce an order.
	if !usedI || !usedJ {
		name := params[0].Name
		if usedI {
			name = params[1].Name
		}
		p.Reportf(lit.Pos(), "sort comparator never reads its index parameter %s; it cannot define a total order", name)
		return
	}
	if stable {
		return
	}
	// Rule D: unstable single-key comparison — equal keys keep their
	// input-dependent arrival order.
	if singleKeyReturn != nil && elemCmp <= 1 && !indexTieBreak {
		p.Reportf(singleKeyReturn.OpPos, "sort.Slice with a single-key comparator: equal keys keep input-dependent order; use sort.SliceStable or add a deterministic tie-break")
		return
	}
	// Rule C: unstable all-float keys with no integral/index tie-break.
	if elemCmp > 0 && nonFloatElems == 0 && !indexTieBreak {
		p.Reportf(lit.Pos(), "sort.Slice comparator orders only by floating-point keys with no integral or index tie-break; exactly equal floats keep input-dependent order — use sort.SliceStable or add a tie-break")
	}
}

// isIdentObj reports whether e is a plain identifier bound to one of objs.
func isIdentObj(info *types.Info, e ast.Expr, objs ...types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	for _, o := range objs {
		if obj == o {
			return true
		}
	}
	return false
}
