package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags `go` statements that launch a goroutine with no reachable
// join: nothing in the enclosing function (or, for completion signals on
// non-local channels/WaitGroups, nothing anywhere the owner can see) waits
// for it. Leaked goroutines are how "one slow edge costs one timeout"
// degrades back into unbounded resource growth under churn, and how a
// fan-out's late writers race with the merge that already ran.
//
// A goroutine counts as joined when any of these holds:
//
//   - it signals completion — wg.Done() (directly or via a callee whose
//     summary marks the WaitGroup parameter), a send on or close of a
//     channel — and the enclosing function waits on that object
//     (wg.Wait(), a receive/range/select on the channel), or the object is
//     non-local (a parameter, field, or package variable: its owner joins);
//   - it is lifecycle-bounded: it receives from a context's Done() channel;
//   - a non-literal `go f(...)` resolves to a callee that signals one of its
//     arguments (close/send/Done through the parameter), and that argument
//     is waited on or non-local as above. Unresolved non-literal launches
//     (stdlib, computed values) are skipped rather than guessed at.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "goroutine launched with no reachable join (WaitGroup.Wait, channel receive, or context-done bound)",
	SkipTests: true,
	RunModule: runGoroLeak,
}

func runGoroLeak(p *ModulePass) {
	for _, fn := range p.Module.Graph.Funcs {
		gl := &goroLeakScan{p: p, fn: fn, info: fn.Unit.Info}
		gl.run()
	}
}

type goroLeakScan struct {
	p    *ModulePass
	fn   *Func
	info *types.Info
}

func (gl *goroLeakScan) run() {
	ast.Inspect(gl.fn.Decl.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			gl.checkGoStmt(gs)
		}
		return true
	})
}

func (gl *goroLeakScan) checkGoStmt(gs *ast.GoStmt) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		gl.checkGoLit(gs, lit)
		return
	}
	gl.checkGoCall(gs)
}

// checkGoLit handles `go func(...){...}(args)`.
func (gl *goroLeakScan) checkGoLit(gs *ast.GoStmt, lit *ast.FuncLit) {
	signals, ctxBound := gl.litSignals(lit, gs.Call)
	gl.verdict(gs, signals, ctxBound)
}

// checkGoCall handles `go f(args)` / `go x.m(args)` via f's summary.
func (gl *goroLeakScan) checkGoCall(gs *ast.GoStmt) {
	call := gs.Call
	c := gl.p.Module.Graph.Resolve(call)
	if c == nil {
		return // unknown callee: no basis for a finding
	}
	// A context argument bounds the goroutine's lifecycle.
	for _, arg := range call.Args {
		if isContextType(gl.info.TypeOf(arg)) {
			return
		}
	}
	args := receiverFirstArgs(gl.info, call)
	var signals []types.Object
	for _, callee := range c.Callees {
		for ai, arg := range args {
			if ai >= len(callee.Params) {
				continue
			}
			if callee.Summary.Signals&paramBit(ai) != 0 {
				if root := exprRoot(gl.info, arg); root != nil {
					signals = append(signals, root)
				}
			}
		}
	}
	gl.verdict(gs, signals, false)
}

// verdict applies the join rules to the collected completion signals.
func (gl *goroLeakScan) verdict(gs *ast.GoStmt, signals []types.Object, ctxBound bool) {
	if ctxBound {
		return
	}
	if len(signals) == 0 {
		gl.p.Reportf(gs.Pos(), "goroutine has no completion signal (no WaitGroup.Done, channel send/close, or context-done bound); nothing can ever join it — add a WaitGroup or done channel, or waive with //birplint:ignore goroleak")
		return
	}
	waits, receives := gl.enclosingJoins(gs)
	for _, obj := range signals {
		if waits[obj] || receives[obj] {
			return
		}
		if !gl.localToFn(obj) {
			// Parameter, field, captured or package-level object: its owner
			// is responsible for (and positioned to do) the join.
			return
		}
	}
	gl.p.Reportf(gs.Pos(), "goroutine signals completion only on locally declared objects that this function never waits on (no Wait/receive on any return path); the goroutine can outlive its launcher — join it before returning or waive with //birplint:ignore goroleak")
}

// litSignals walks a go-literal's body for the completion signals it emits.
// Signals on the literal's own parameters map back to the call-site argument
// roots. Bodies of goroutines the literal itself launches are excluded —
// a grandchild's Done is not this goroutine's completion.
func (gl *goroLeakScan) litSignals(lit *ast.FuncLit, call *ast.CallExpr) (signals []types.Object, ctxBound bool) {
	var litParams []*ast.Ident
	for _, f := range lit.Type.Params.List {
		litParams = append(litParams, f.Names...)
	}
	mapParam := func(obj types.Object) types.Object {
		for i, id := range litParams {
			if gl.info.ObjectOf(id) == obj && i < len(call.Args) {
				return exprRoot(gl.info, call.Args[i])
			}
		}
		return obj
	}
	note := func(obj types.Object) {
		if obj = mapParam(obj); obj != nil {
			signals = append(signals, obj)
		}
	}

	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				// Skip the nested goroutine's body; its args still evaluate
				// in this goroutine.
				for _, a := range v.Call.Args {
					walk(a)
				}
				if _, isLit := ast.Unparen(v.Call.Fun).(*ast.FuncLit); !isLit {
					walk(v.Call.Fun)
				}
				return false
			case *ast.SendStmt:
				note(exprRoot(gl.info, v.Chan))
			case *ast.UnaryExpr:
				if isContextDoneRecv(gl.info, v) {
					ctxBound = true
				}
			case *ast.CallExpr:
				if b, ok := calleeObject(gl.info, v).(*types.Builtin); ok && b.Name() == "close" && len(v.Args) == 1 {
					note(exprRoot(gl.info, v.Args[0]))
					return true
				}
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWaitGroup(gl.info.TypeOf(sel.X)) {
					note(exprRoot(gl.info, sel.X))
					return true
				}
				// One call deep: a callee that signals through a parameter.
				if c := gl.p.Module.Graph.Resolve(v); c != nil {
					args := receiverFirstArgs(gl.info, v)
					for _, callee := range c.Callees {
						for ai, arg := range args {
							if ai < len(callee.Params) && callee.Summary.Signals&paramBit(ai) != 0 {
								note(exprRoot(gl.info, arg))
							}
						}
					}
				}
			}
			return true
		})
	}
	walk(lit.Body)
	return signals, ctxBound
}

// enclosingJoins collects the objects the enclosing function waits on,
// everywhere except inside the analyzed goroutine itself (a goroutine cannot
// join itself); sibling goroutines and deferred closures count — a drain is
// a drain wherever it runs.
func (gl *goroLeakScan) enclosingJoins(self *ast.GoStmt) (waits, receives map[types.Object]bool) {
	waits = map[types.Object]bool{}
	receives = map[types.Object]bool{}
	note := func(m map[types.Object]bool, obj types.Object) {
		if obj != nil {
			m[obj] = true
		}
	}
	ast.Inspect(gl.fn.Decl.Body, func(n ast.Node) bool {
		if n == self {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				note(receives, exprRoot(gl.info, v.X))
			}
		case *ast.RangeStmt:
			if _, isChan := typeUnderlying(gl.info.TypeOf(v.X)).(*types.Chan); isChan {
				note(receives, exprRoot(gl.info, v.X))
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroup(gl.info.TypeOf(sel.X)) {
				note(waits, exprRoot(gl.info, sel.X))
			}
		}
		return true
	})
	return waits, receives
}

// localToFn reports whether obj is confined to this function — declared
// lexically inside it, not a parameter/receiver (those are caller-owned), and
// never returned (a returned object escapes to an owner who can join it, the
// constructor-starts-a-goroutine / Close-joins-it pattern).
func (gl *goroLeakScan) localToFn(obj types.Object) bool {
	if obj.Pos() < gl.fn.Decl.Pos() || obj.Pos() > gl.fn.Decl.End() {
		return false
	}
	for _, v := range gl.fn.Params {
		if types.Object(v) == obj {
			return false
		}
	}
	escapes := false
	ast.Inspect(gl.fn.Decl.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				if exprRoot(gl.info, r) == obj {
					escapes = true
				}
			}
		}
		return !escapes
	})
	return !escapes
}

// --- small shared helpers ---

// exprRoot is rootObj without a funcState: the identifier object an
// expression chain is rooted at.
func exprRoot(info *types.Info, e ast.Expr) types.Object {
	fs := funcState{info: info}
	return fs.rootObj(e)
}

// receiverFirstArgs returns the call's arguments with the method receiver
// prepended when the call is a selector method call, mirroring Func.Params.
func receiverFirstArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := info.Selections[sel]; isSel {
			args = append(args, sel.X)
		}
	}
	return append(args, call.Args...)
}

// isContextDoneRecv matches `<-x.Done()` where Done is context.Context's.
func isContextDoneRecv(info *types.Info, u *ast.UnaryExpr) bool {
	if u.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(u.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObject(info, call)
	return obj != nil && obj.Name() == "Done" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Context" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

func typeUnderlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
