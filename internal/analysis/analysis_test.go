package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// sharedLoader returns a process-wide Loader so the cost of typechecking the
// stdlib from source is paid once across every fixture test in the package.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("shared loader: %v", loaderErr)
	}
	return loaderVal
}

// expectation is one // want "regex" or // wantwaived "regex" comment in a
// fixture file: the named line must produce a diagnostic whose message
// matches the regex, with Waived matching the comment form.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	waived  bool
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want(waived)?\s+"([^"]+)"`)

func readExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var exps []*expectation
	for _, entry := range entries {
		if entry.IsDir() || !strings.HasSuffix(entry.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, entry.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(lineText, -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, i+1, m[2], err)
				}
				exps = append(exps, &expectation{
					file:   path,
					line:   i + 1,
					re:     re,
					waived: m[1] == "waived",
				})
			}
		}
	}
	return exps
}

// analyzeFixture loads one fixture directory and runs a single analyzer over
// it — through AnalyzeModule, so per-unit and interprocedural (RunModule)
// analyzers go through the same door.
func analyzeFixture(t *testing.T, analyzer, rel string) (string, []Diagnostic) {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", rel))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	units, err := l.Load([]string{dir})
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	if len(units) == 0 {
		t.Fatalf("no units loaded from %s", rel)
	}
	anz, err := ByName(analyzer)
	if err != nil {
		t.Fatalf("ByName(%q): %v", analyzer, err)
	}
	diags, _ := AnalyzeModule(units, anz)
	return dir, diags
}

// TestFixtures checks every analyzer against its golden fixture package:
// each // want line must be hit by an unwaived diagnostic, each // wantwaived
// line by a waived one, and no diagnostic may appear on an unannotated line.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		dir      string
	}{
		{"maporder", "maporder"},
		{"floateq", "floateq"},
		{"wallclock", "wallclock/core"},
		{"wallclock", "wallclock/other"},
		{"droppederr", "droppederr"},
		{"mutexcopy", "mutexcopy"},
		{"loopcapture", "loopcapture"},
		{"dettaint", "dettaint"},
		{"sharedwrite", "sharedwrite"},
		{"goroleak", "goroleak"},
		{"cmptotal", "cmptotal"},
	}
	for _, c := range cases {
		t.Run(c.analyzer+"/"+filepath.Base(c.dir), func(t *testing.T) {
			dir, diags := analyzeFixture(t, c.analyzer, c.dir)
			exps := readExpectations(t, dir)
			for _, d := range diags {
				matched := false
				for _, e := range exps {
					if e.matched || e.file != d.File || e.line != d.Line || e.waived != d.Waived {
						continue
					}
					if e.re.MatchString(d.Message) {
						e.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic %s:%d [%s waived=%v] %s",
						filepath.Base(d.File), d.Line, d.Analyzer, d.Waived, d.Message)
				}
			}
			for _, e := range exps {
				if !e.matched {
					t.Errorf("missing diagnostic at %s:%d matching %q (waived=%v)",
						filepath.Base(e.file), e.line, e.re, e.waived)
				}
			}
		})
	}
}

// TestWaiverCoverage pins the waiver scoping rules: a directive covers its own
// line and the line directly below, names select specific analyzers, and a
// bare //birplint:ignore waives everything.
func TestWaiverCoverage(t *testing.T) {
	ws := waiverSet{
		"f.go": {
			10: {"floateq"},
			20: {"*"},
		},
	}
	checks := []struct {
		file     string
		line     int
		analyzer string
		want     bool
	}{
		{"f.go", 10, "floateq", true},
		{"f.go", 11, "floateq", true},  // line below the directive
		{"f.go", 12, "floateq", false}, // two lines below: out of scope
		{"f.go", 9, "floateq", false},  // line above: out of scope
		{"f.go", 10, "maporder", false},
		{"f.go", 20, "maporder", true}, // bare ignore waives all analyzers
		{"g.go", 10, "floateq", false},
	}
	for _, c := range checks {
		if got := ws.covers(c.file, c.line, c.analyzer); got != c.want {
			t.Errorf("covers(%s, %d, %s) = %v, want %v", c.file, c.line, c.analyzer, got, c.want)
		}
	}
}
