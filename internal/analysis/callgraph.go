package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// This file builds birplint's whole-module static call graph, the substrate
// the interprocedural analyzers (dettaint, sharedwrite, goroleak, cmptotal)
// walk. It stays stdlib-only: nodes are the module's declared functions and
// methods (anything with a body in a loaded Unit), and edges are resolved
// three ways:
//
//   - direct calls and concrete-method calls resolve through go/types object
//     identity, canonicalized by funcID so a call from one unit reaches the
//     declaration typechecked in another unit (the loader typechecks each
//     directory once as an import base and once as its own test-augmented
//     unit, so *types.Func pointers are not comparable across units);
//   - interface method calls resolve with the sound "all implementers"
//     fallback: every named type in the module whose method set satisfies the
//     interface contributes an edge to its implementation, so dataflow never
//     silently stops at a dynamic dispatch;
//   - calls of computed function values (fields, locals, returned closures)
//     produce no edge — a documented precision loss; the dataflow engine
//     treats such calls as conservative pass-throughs instead.
//
// Function literals are not separate nodes: a literal's statements are
// attributed to the function that (lexically) encloses it, which matches how
// the fan-out code here uses closures — created and run within one
// orchestration function — and keeps every captured variable visible to a
// single intraprocedural analysis.

// Func is one call-graph node: a declared function or method with a body.
type Func struct {
	// ID is the canonical cross-unit identity, "pkgpath.Name" for functions
	// and "pkgpath.Recv.Name" for methods (pointerness of the receiver is
	// erased; duplicate IDs — multiple init functions — get a position
	// suffix).
	ID   string
	Obj  *types.Func
	Decl *ast.FuncDecl
	Unit *Unit
	// Params is the receiver (if any) followed by the declared parameters, in
	// the order call-site arguments bind to them.
	Params []*types.Var
	// Calls are the resolved call sites lexically inside this function
	// (including inside its nested literals), in source order.
	Calls []*Call
	// Summary is the function's interprocedural fact set, filled in by the
	// fixpoint in taint.go.
	Summary Summary
}

// Call is one resolved call site.
type Call struct {
	Site *ast.CallExpr
	// Callees holds every module function the site can reach, sorted by ID.
	// Direct calls have one entry; interface calls have one per implementer.
	Callees []*Func
	// Iface marks a dynamically dispatched (interface method) site.
	Iface bool
}

// CallGraph is the whole-module graph plus the size counters the JSON report
// exposes so analysis-cost regressions stay visible across PRs.
type CallGraph struct {
	Funcs []*Func // sorted by ID
	// Edges is the number of resolved caller→callee links.
	Edges int

	byID  map[string]*Func
	calls map[*ast.CallExpr]*Call // every resolved site, across all units
}

// FuncByID looks a node up by its canonical ID ("" on miss returns nil).
func (g *CallGraph) FuncByID(id string) *Func { return g.byID[id] }

// Resolve returns the resolution of a call site, or nil when the site is
// unresolved (external callee, computed function value).
func (g *CallGraph) Resolve(call *ast.CallExpr) *Call { return g.calls[call] }

// funcID canonicalizes a function object across independent typechecks of the
// same source. The receiver's pointerness is erased so that the declaration's
// object and a method-set lookup through either T or *T agree.
func funcID(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := "?"
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		return pkg + "." + name + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// namedEntry is one candidate implementer for interface resolution.
type namedEntry struct {
	named *types.Named
	pkg   *types.Package
}

// BuildCallGraph indexes every declared function in the units and resolves
// their call sites. Units must share one FileSet (the loader guarantees it).
func BuildCallGraph(units []*Unit) *CallGraph {
	g := &CallGraph{
		byID:  map[string]*Func{},
		calls: map[*ast.CallExpr]*Call{},
	}

	// Pass 1: register nodes and collect the module's named types (the
	// interface-implementer candidate set).
	var named []namedEntry
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := funcID(obj)
				if _, taken := g.byID[id]; taken {
					// Multiple init functions (or a redeclaration across
					// GoFiles and TestGoFiles views): disambiguate by position.
					pos := u.Fset.Position(fd.Pos())
					id = fmt.Sprintf("%s@%s:%d", id, pathTail(pos.Filename), pos.Line)
				}
				fn := &Func{ID: id, Obj: obj, Decl: fd, Unit: u, Params: paramVars(obj)}
				g.byID[id] = fn
			}
		}
		if u.Pkg != nil {
			scope := u.Pkg.Scope()
			for _, name := range scope.Names() { // Names() is sorted
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				if n, ok := tn.Type().(*types.Named); ok {
					named = append(named, namedEntry{named: n, pkg: u.Pkg})
				}
			}
		}
	}
	for _, fn := range g.byID {
		g.Funcs = append(g.Funcs, fn)
	}
	sort.SliceStable(g.Funcs, func(i, j int) bool { return g.Funcs[i].ID < g.Funcs[j].ID })

	// Pass 2: resolve call sites.
	for _, fn := range g.Funcs {
		info := fn.Unit.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, iface := resolveCallees(g, info, call, named)
			if len(callee) == 0 {
				return true
			}
			c := &Call{Site: call, Callees: callee, Iface: iface}
			fn.Calls = append(fn.Calls, c)
			g.calls[call] = c
			g.Edges += len(callee)
			return true
		})
	}
	return g
}

// paramVars lists the receiver (if any) followed by the parameters.
func paramVars(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// resolveCallees maps one call expression to its module-internal targets.
func resolveCallees(g *CallGraph, info *types.Info, call *ast.CallExpr, named []namedEntry) ([]*Func, bool) {
	obj, ok := calleeObject(info, call).(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if types.IsInterface(rt) {
			return interfaceImplementers(g, rt, obj.Name(), named), true
		}
	}
	if target := g.byID[funcID(obj)]; target != nil {
		return []*Func{target}, false
	}
	return nil, false
}

// interfaceImplementers returns the implementation methods of every module
// named type satisfying iface — the sound "all implementers" fallback for
// dynamic dispatch. Results are deduplicated by ID and sorted.
func interfaceImplementers(g *CallGraph, ifaceType types.Type, method string, named []namedEntry) []*Func {
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	seen := map[string]*Func{}
	for _, e := range named {
		if types.IsInterface(e.named) {
			continue
		}
		if !types.Implements(e.named, iface) && !types.Implements(types.NewPointer(e.named), iface) {
			continue
		}
		mobj, _, _ := types.LookupFieldOrMethod(types.NewPointer(e.named), true, e.pkg, method)
		mfn, ok := mobj.(*types.Func)
		if !ok {
			continue
		}
		if target := g.byID[funcID(mfn)]; target != nil {
			seen[target.ID] = target
		}
	}
	out := make([]*Func, 0, len(seen))
	for _, fn := range seen {
		out = append(out, fn)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
