package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// Module is the whole-program view the interprocedural analyzers run against:
// every loaded unit, the call graph over them, and the summary table after
// the dataflow fixpoint.
type Module struct {
	Units []*Unit
	Fset  *token.FileSet
	Graph *CallGraph
	// FixpointIters is how many whole-module iterations the summary fixpoint
	// took (exported in the JSON report's callgraph block).
	FixpointIters int
}

// NewModule builds the call graph and runs the summary fixpoint.
func NewModule(units []*Unit) *Module {
	m := &Module{Units: units}
	if len(units) > 0 {
		m.Fset = units[0].Fset
	}
	m.Graph = BuildCallGraph(units)
	m.FixpointIters = computeSummaries(m)
	return m
}

// ModuleStats sizes the interprocedural machinery for the JSON report, so
// analysis-cost regressions (graph blow-ups, fixpoint divergence) are visible
// across PRs.
type ModuleStats struct {
	Functions     int `json:"functions"`
	Edges         int `json:"edges"`
	FixpointIters int `json:"fixpoint_iters"`
}

// ModulePass carries one module-scoped analyzer's traversal.
type ModulePass struct {
	Module   *Module
	Analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// AnalyzeModule runs per-unit analyzers on each unit and module analyzers on
// the whole-unit set, returning one globally sorted diagnostic list plus the
// call-graph stats (zero-valued when no module analyzer was selected — the
// graph is only built when something will walk it).
func AnalyzeModule(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, ModuleStats) {
	var perUnit, perModule []*Analyzer
	for _, a := range analyzers {
		if a.Run != nil {
			perUnit = append(perUnit, a)
		}
		if a.RunModule != nil {
			perModule = append(perModule, a)
		}
	}

	var out []Diagnostic
	for _, u := range units {
		out = append(out, Analyze(u, perUnit)...)
	}

	var stats ModuleStats
	if len(perModule) > 0 && len(units) > 0 {
		m := NewModule(units)
		stats = ModuleStats{
			Functions:     len(m.Graph.Funcs),
			Edges:         m.Graph.Edges,
			FixpointIters: m.FixpointIters,
		}

		// Module-wide waivers and reporting filter. A diagnostic is kept when
		// its file belongs to a unit with no OnlyFiles restriction or is
		// listed in some unit's OnlyFiles set.
		waived := waiverSet{}
		allowed := map[string]bool{}
		for _, u := range units {
			//birplint:ordered // merging into a membership-only set; covers() never observes order
			for file, lines := range collectWaivers(u) {
				if waived[file] == nil {
					waived[file] = map[int][]string{}
				}
				//birplint:ordered // same: per-line name lists are membership-checked, order unobservable
				for line, names := range lines {
					waived[file][line] = append(waived[file][line], names...)
				}
			}
			for _, f := range u.Files {
				name := u.Fset.Position(f.Pos()).Filename
				if u.OnlyFiles == nil || u.OnlyFiles[name] {
					allowed[name] = true
				}
			}
		}

		for _, a := range perModule {
			pass := &ModulePass{Module: m, Analyzer: a}
			a.RunModule(pass)
			for _, d := range pass.diags {
				if !allowed[d.File] {
					continue
				}
				if a.SkipTests && strings.HasSuffix(d.File, "_test.go") {
					continue
				}
				d.Waived = waived.covers(d.File, d.Line, a.Name)
				out = append(out, d)
			}
		}
	}

	sortDiagnostics(out)
	return out, stats
}
