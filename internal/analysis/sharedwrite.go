package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedWrite flags writes to closure-captured state from concurrent
// closures — function literals launched with `go` or passed to a callee that
// (per its call-graph summary) invokes them on a spawned goroutine, which is
// how par.ForEach's fan-out body is recognized without naming it. It
// complements the dynamic `go test -race` gate: the race detector only sees
// the schedules a run happens to exercise; this sees every textual write.
//
// A write inside a concurrent closure is reported unless one of the
// disciplines the codebase actually uses makes it safe:
//
//   - per-index slot: the write is `s[i] = v` where the index expression
//     mentions a variable declared inside the closure (loop-claimed index,
//     worker id, fan-out parameter) — each goroutine owns distinct elements.
//     Map writes never qualify: concurrent map writes fault even on distinct
//     keys;
//   - closure-local target: the root variable is declared inside the closure;
//   - mutex: the closure acquires a lock (any `.Lock()` call) — coarse, but
//     every guarded region here is a whole closure;
//   - atomics need no exemption: they are calls, not assignment statements.
//
// Writes are also traced one call deep: passing a captured variable (not
// indexed per-slot) to a module function whose summary says it writes through
// that parameter is reported at the call site.
var SharedWrite = &Analyzer{
	Name:      "sharedwrite",
	Doc:       "write to closure-captured state from a goroutine fan-out without mutex/atomic/per-index slot",
	SkipTests: true,
	RunModule: runSharedWrite,
}

func runSharedWrite(p *ModulePass) {
	for _, fn := range p.Module.Graph.Funcs {
		for _, cl := range concurrentLits(p.Module, fn) {
			checkConcurrentLit(p, fn, cl)
		}
	}
}

// concLit is one concurrent closure plus the innermost enclosing function
// literal or loop of its launch site. Objects declared inside that scope are
// fresh allocations per execution of it, so concurrent launches write
// DISTINCT objects — the per-iteration "construct, hand off to exactly one
// goroutine" idiom is not sharing. (Two goroutines launched from the same
// iteration both writing the same iteration-local object would be missed — a
// documented precision loss.)
type concLit struct {
	lit   *ast.FuncLit
	scope ast.Node // nil = launched from the function's top level
}

// concurrentLits collects the function literals inside fn whose bodies run on
// another goroutine: launched by a `go` statement, or passed in a parameter
// position some resolved callee marks Conc (invoked-on-goroutine).
func concurrentLits(m *Module, fn *Func) []concLit {
	var out []concLit
	seen := map[*ast.FuncLit]bool{}
	var stack []ast.Node
	freshScope := func() ast.Node {
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
				return stack[i]
			}
		}
		return nil
	}
	add := func(lit *ast.FuncLit) {
		if lit != nil && !seen[lit] {
			seen[lit] = true
			out = append(out, concLit{lit: lit, scope: freshScope()})
		}
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch v := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				add(lit)
			}
		case *ast.CallExpr:
			c := m.Graph.Resolve(v)
			if c != nil {
				for ai, arg := range v.Args {
					lit, ok := ast.Unparen(arg).(*ast.FuncLit)
					if !ok {
						continue
					}
					for _, callee := range c.Callees {
						if pi := calleeParamIndex(callee, v, ai); pi >= 0 && callee.Summary.Conc&paramBit(pi) != 0 {
							add(lit)
							break
						}
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return out
}

// calleeParamIndex maps a call-site argument position to the callee's Params
// index (receiver-first); -1 when out of range and the callee is not
// variadic-shaped.
func calleeParamIndex(callee *Func, call *ast.CallExpr, argIdx int) int {
	offset := 0
	if sig, ok := callee.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		offset = 1
	}
	pi := argIdx + offset
	if pi >= len(callee.Params) {
		if len(callee.Params) == 0 {
			return -1
		}
		pi = len(callee.Params) - 1 // variadic tail
	}
	return pi
}

// containsLockCall reports whether the subtree calls a .Lock()/.RLock()
// method — the coarse "this closure is mutex-guarded" signal. Whole closures
// are the locking granularity in this codebase, so one lock call exempts the
// closure; finer-grained mixed closures would need a waiver either way.
func containsLockCall(root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}

func checkConcurrentLit(p *ModulePass, fn *Func, cl concLit) {
	lit := cl.lit
	info := fn.Unit.Info
	if containsLockCall(lit.Body) {
		return
	}

	// Objects declared inside the literal (params included — lit.Type is part
	// of the inspected subtree).
	declared := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	// "inner" for safety purposes also covers objects declared inside the
	// launch site's fresh scope: per-execution allocations that concurrent
	// launches cannot share.
	inner := func(obj types.Object) bool {
		if declared[obj] {
			return true
		}
		return cl.scope != nil && obj.Pos() >= cl.scope.Pos() && obj.Pos() <= cl.scope.End()
	}
	mentionsInner := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && inner(obj) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// pathFacts walks an lvalue/argument chain down to its root identifier.
	pathFacts := func(e ast.Expr) (root types.Object, perIndex, mapStep bool) {
		for {
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.SelectorExpr:
				e = v.X
			case *ast.IndexExpr:
				if isMap(info.TypeOf(v.X)) {
					mapStep = true
				}
				if mentionsInner(v.Index) {
					perIndex = true
				}
				e = v.X
			case *ast.UnaryExpr:
				if v.Op != token.AND {
					return nil, perIndex, mapStep
				}
				e = v.X
			case *ast.Ident:
				return info.ObjectOf(v), perIndex, mapStep
			default:
				return nil, perIndex, mapStep
			}
		}
	}

	checkWrite := func(l ast.Expr) {
		if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
			return
		}
		root, perIndex, mapStep := pathFacts(l)
		if root == nil || inner(root) {
			return
		}
		name := root.Name()
		switch {
		case mapStep:
			p.Reportf(l.Pos(), "concurrent map write through captured %s inside a goroutine fan-out: concurrent map writes fault even on distinct keys; guard with a mutex or collect per-worker and merge", name)
		case perIndex:
			// Distinct-element discipline: each goroutine owns its slot.
		default:
			p.Reportf(l.Pos(), "write to captured %s inside a goroutine fan-out without mutex/atomic/per-index slot; a concurrent schedule can lose or interleave updates — use a per-index result slot or a mutex", name)
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, l := range v.Lhs {
				checkWrite(l)
			}
		case *ast.IncDecStmt:
			checkWrite(v.X)
		case *ast.CallExpr:
			c := p.Module.Graph.Resolve(v)
			if c == nil {
				return true
			}
			// Receiver-first argument list, mirroring Func.Params.
			args := make([]ast.Expr, 0, len(v.Args)+1)
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				if _, isSel := info.Selections[sel]; isSel {
					args = append(args, sel.X)
				}
			}
			args = append(args, v.Args...)
			for ai, arg := range args {
				root, perIndex, _ := pathFacts(arg)
				if root == nil || inner(root) || perIndex {
					continue
				}
				for _, callee := range c.Callees {
					if ai >= len(callee.Params) {
						continue
					}
					if callee.Summary.Writes&paramBit(ai) != 0 {
						p.Reportf(arg.Pos(), "captured %s is passed to %s, which writes through it; called from a goroutine fan-out this is a shared write — pass a per-worker copy or guard with a mutex", root.Name(), callee.ID)
						break
					}
				}
			}
		}
		return true
	})
}
