package analysis

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

var (
	repoUnitsOnce sync.Once
	repoUnitsVal  []*Unit
	repoUnitsErr  error
)

// repoUnits loads every package in the module once per test process; the
// repo-wide typecheck is the expensive part and both the self-check and the
// determinism test need the same units.
func repoUnits(t *testing.T) []*Unit {
	t.Helper()
	l := sharedLoader(t)
	repoUnitsOnce.Do(func() {
		dirs, err := l.Walk(l.ModuleRoot)
		if err != nil {
			repoUnitsErr = err
			return
		}
		repoUnitsVal, repoUnitsErr = l.Load(dirs)
	})
	if repoUnitsErr != nil {
		t.Fatalf("load repo units: %v", repoUnitsErr)
	}
	return repoUnitsVal
}

// TestRepoIsLintClean is the smoke test behind the `birplint ./...` gate: the
// repository itself must carry zero unwaived findings under all ten analyzers,
// including the interprocedural ones. Skipped under -short because it
// typechecks the whole module (including its stdlib dependencies) from source.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide typecheck is slow; covered by scripts/check.sh lint tier")
	}
	units := repoUnits(t)
	diags, stats := AnalyzeModule(units, All())
	waived := 0
	for _, d := range diags {
		if d.Waived {
			waived++
			continue
		}
		t.Errorf("unwaived finding: %s:%d:%d [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
	if waived == 0 {
		t.Error("expected at least one waived finding in the repo (the documented solver waivers); waiver collection may be broken")
	}
	if stats.Functions == 0 || stats.Edges == 0 {
		t.Errorf("call graph is implausibly empty: %+v", stats)
	}
	if stats.FixpointIters <= 0 || stats.FixpointIters >= maxFixpointIters {
		t.Errorf("summary fixpoint took %d iterations (backstop %d): divergence or a broken counter", stats.FixpointIters, maxFixpointIters)
	}
}

// TestLintJSONDeterministic pins the byte-identity contract of the lint
// report: two independent analysis runs over the same units — each building
// its own call graph and re-running the summary fixpoint — must serialize to
// identical bytes, diagnostics and call-graph stats included.
func TestLintJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide typecheck is slow; covered by scripts/check.sh lint tier")
	}
	units := repoUnits(t)
	run := func() []byte {
		diags, stats := AnalyzeModule(units, All())
		b, err := json.Marshal(struct {
			Diagnostics []Diagnostic `json:"diagnostics"`
			CallGraph   ModuleStats  `json:"callgraph"`
		}{diags, stats})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Errorf("two analysis runs serialized differently:\n run 1: %d bytes\n run 2: %d bytes", len(first), len(second))
	}
}

// TestFixturesAreSeeded guards the birplint exit-code contract from the other
// side: every analyzer must report at least one unwaived finding on its
// fixture package, so `birplint ./internal/analysis/testdata/src/...` exits
// nonzero.
func TestFixturesAreSeeded(t *testing.T) {
	fixtures := map[string]string{
		"maporder":    "maporder",
		"floateq":     "floateq",
		"wallclock":   "wallclock/core",
		"droppederr":  "droppederr",
		"mutexcopy":   "mutexcopy",
		"loopcapture": "loopcapture",
		"dettaint":    "dettaint",
		"sharedwrite": "sharedwrite",
		"goroleak":    "goroleak",
		"cmptotal":    "cmptotal",
	}
	for analyzer, dir := range fixtures {
		_, diags := analyzeFixture(t, analyzer, dir)
		unwaived := 0
		for _, d := range diags {
			if !d.Waived {
				unwaived++
			}
		}
		if unwaived == 0 {
			t.Errorf("analyzer %s: fixture %s seeds no unwaived findings", analyzer, dir)
		}
	}
}
