package analysis

import (
	"testing"
)

// TestRepoIsLintClean is the smoke test behind the `birplint ./...` gate: the
// repository itself must carry zero unwaived findings. Skipped under -short
// because it typechecks the whole module (including its stdlib dependencies)
// from source.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide typecheck is slow; covered by scripts/check.sh lint tier")
	}
	l := sharedLoader(t)
	dirs, err := l.Walk(l.ModuleRoot)
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	units, err := l.Load(dirs)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	waived := 0
	for _, u := range units {
		for _, d := range Analyze(u, All()) {
			if d.Waived {
				waived++
				continue
			}
			t.Errorf("unwaived finding: %s:%d:%d [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if waived == 0 {
		t.Error("expected at least one waived finding in the repo (the documented solver waivers); waiver collection may be broken")
	}
}

// TestFixturesAreSeeded guards the birplint exit-code contract from the other
// side: every analyzer must report at least one unwaived finding on its
// fixture package, so `birplint ./internal/analysis/testdata/src/...` exits
// nonzero.
func TestFixturesAreSeeded(t *testing.T) {
	fixtures := map[string]string{
		"maporder":    "maporder",
		"floateq":     "floateq",
		"wallclock":   "wallclock/core",
		"droppederr":  "droppederr",
		"mutexcopy":   "mutexcopy",
		"loopcapture": "loopcapture",
	}
	for analyzer, dir := range fixtures {
		_, diags := analyzeFixture(t, analyzer, dir)
		unwaived := 0
		for _, d := range diags {
			if !d.Waived {
				unwaived++
			}
		}
		if unwaived == 0 {
			t.Errorf("analyzer %s: fixture %s seeds no unwaived findings", analyzer, dir)
		}
	}
}
