package analysis

// DetTaint tracks nondeterministic sources — wall clock, unseeded math/rand,
// map iteration order, channel-drain order — interprocedurally through the
// call-graph summary table, and reports when such a value reaches a
// determinism-sensitive output: a field of a *Plan/*Report/*Stats/*Summary
// struct (directly, via composite literal, or through a callee that stores
// its parameter into one) or a sort comparator. These are exactly the outputs
// the byte-identity benchmarks compare, so any intrinsic taint reaching them
// breaks the "same inputs, same bytes" contract.
var DetTaint = &Analyzer{
	Name:      "dettaint",
	Doc:       "nondeterministic value (clock/rand/map-order/chan-order) flows into a Plan/Report/Stats/Summary field or sort comparator",
	SkipTests: true,
	RunModule: runDetTaint,
}

func runDetTaint(p *ModulePass) {
	// Summaries are already at fixpoint; re-run each function's local
	// analysis once in reporting mode to emit findings against the
	// stabilized state.
	for _, fn := range p.Module.Graph.Funcs {
		summarize(p.Module, fn, p)
	}
}
