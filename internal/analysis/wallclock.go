package analysis

import (
	"go/ast"
)

// wallclockPkgs are the deterministic solve paths: given the same problem,
// they must produce the same bytes on every run, so reading the wall clock
// inside them is either dead weight or — worse — an input that varies run to
// run (time-based cutoffs, timestamps in solutions). Profiling belongs in the
// callers (cmd/birpbench, cmd/tirprofile) or behind an explicitly waived
// stats seam.
var wallclockPkgs = map[string]bool{"lp": true, "miqp": true, "core": true, "par": true, "serve": true}

// WallClock flags time.Now/Since/Until calls inside the deterministic solver
// packages (internal/lp, internal/miqp, internal/core, internal/par).
// Profiling/stats seams that genuinely need wall time carry
// //birplint:ignore wallclock.
var WallClock = &Analyzer{
	Name:      "wallclock",
	Doc:       "flags wall-clock reads inside deterministic solve paths",
	SkipTests: true,
	Run:       runWallClock,
}

func runWallClock(p *Pass) {
	if !wallclockPkgs[pathTail(p.Unit.Path)] {
		return
	}
	for _, f := range p.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(p.Unit.Info, call, "time", "Now", "Since", "Until") {
				obj := calleeObject(p.Unit.Info, call)
				p.Reportf(call.Pos(), "time.%s inside deterministic solve path %s; move timing to the caller or waive the profiling seam with //birplint:ignore wallclock",
					obj.Name(), pathTail(p.Unit.Path))
			}
			return true
		})
	}
}
